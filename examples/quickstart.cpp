// Quickstart: the DWCS scheduler as a plain library.
//
// Creates two media streams with different loss-tolerances, queues frames,
// and runs scheduling cycles — no simulation machinery, no hardware models.
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "dwcs/scheduler.hpp"

using namespace nistream;
using sim::Time;

int main() {
  dwcs::DwcsScheduler scheduler{dwcs::DwcsScheduler::Config{}};

  // A news stream that tolerates 1 lost frame in every 8, at 30 fps, and a
  // preview stream that tolerates 6 in 8. Lossy: late frames are dropped.
  const auto news = scheduler.create_stream(
      {.tolerance = {1, 8}, .period = Time::ms(33), .lossy = true},
      Time::zero());
  const auto preview = scheduler.create_stream(
      {.tolerance = {6, 8}, .period = Time::ms(33), .lossy = true},
      Time::zero());

  // Queue 5 frames on each stream.
  for (std::uint64_t i = 0; i < 5; ++i) {
    scheduler.enqueue(news,
                      {.frame_id = i, .bytes = 1400,
                       .type = mpeg::FrameType::kP,
                       .enqueued_at = Time::zero()},
                      Time::zero());
    scheduler.enqueue(preview,
                      {.frame_id = 100 + i, .bytes = 1400,
                       .type = mpeg::FrameType::kP,
                       .enqueued_at = Time::zero()},
                      Time::zero());
  }

  // Run scheduling cycles. With equal deadlines, the tolerance rules give
  // the news stream precedence every time both are eligible.
  std::printf("%-8s %-10s %-8s %-14s %s\n", "cycle", "stream", "frame",
              "deadline(ms)", "late");
  Time now = Time::zero();
  for (int cycle = 0; cycle < 10; ++cycle) {
    const auto d = scheduler.schedule_next(now);
    if (!d) break;
    std::printf("%-8d %-10s %-8llu %-14.1f %s\n", cycle,
                d->stream == news ? "news" : "preview",
                static_cast<unsigned long long>(d->frame.frame_id),
                d->deadline.to_ms(), d->late ? "yes" : "no");
    now += Time::ms(16);  // the dispatch loop's pace
  }

  for (const auto id : {news, preview}) {
    const auto& st = scheduler.stats(id);
    std::printf("stream %u: on-time %llu, dropped %llu, violations %llu, "
                "bytes %llu\n",
                id, static_cast<unsigned long long>(st.serviced_on_time),
                static_cast<unsigned long long>(st.dropped),
                static_cast<unsigned long long>(st.violations),
                static_cast<unsigned long long>(st.bytes_sent));
  }
  return 0;
}
