// Reliable streaming over a degraded segment.
//
// The cluster interconnect is normally a clean switched LAN, but WAN-facing
// or congested segments drop frames. This example streams the same clip over
// a 12%-lossy segment two ways:
//   * plain board-resident UDP  — losses reach the player;
//   * the TCP-offload extension — the NI retransmits, the player sees a
//     gapless sequence, and the host posted nothing but SEND instructions.
#include <cstdio>
#include <set>

#include "apps/media_server.hpp"
#include "dvcm/tcp_offload_extension.hpp"
#include "mpeg/encoder.hpp"
#include "net/tcplite.hpp"
#include "net/udp.hpp"

using namespace nistream;
using sim::Time;

int main() {
  hw::Calibration cal;
  cal.ethernet.loss_rate = 0.12;
  cal.ethernet.loss_seed = 4242;

  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng, cal.ethernet};
  apps::NiSchedulerServer server{eng, bus, ether,
                                 dvcm::StreamService::Config{}, cal};
  auto tcp_ext = std::make_unique<dvcm::TcpOffloadExtension>(ether);
  server.runtime().load_extension(std::move(tcp_ext));

  const mpeg::MpegFile clip = mpeg::SyntheticEncoder{{.seed = 5}}.generate(200);

  // --- Plain UDP pass.
  std::set<std::uint64_t> udp_got;
  net::UdpEndpoint udp_rx{eng, ether, Time::us(100),
                          [&](const net::Packet& p, Time) {
                            udp_got.insert(p.seq);
                          }};
  net::UdpEndpoint udp_tx{eng, ether, cal.ethernet.stack_traversal,
                          net::UdpEndpoint::Receiver{}};
  // --- TCP-offload pass.
  std::vector<std::uint64_t> tcp_got;
  net::TcpLiteReceiver tcp_rx{eng, ether, Time::us(100),
                              [&](const net::Packet& p, Time) {
                                tcp_got.push_back(p.seq);
                              }};

  auto host_app = [&]() -> sim::Coro {
    // UDP: fire the clip, frame per frame.
    for (std::uint64_t i = 0; i < clip.frames.size(); ++i) {
      udp_tx.send(udp_rx.port(),
                  net::Packet{.seq = i, .bytes = clip.frames[i].bytes});
      co_await sim::Delay{eng, Time::ms(5)};
    }
    // TCP offload: open a connection via DVCM and post SENDs.
    hw::I2oMessage reply;
    co_await server.host_api().call(
        dvcm::kTcpOpen, &reply, static_cast<std::uint64_t>(tcp_rx.port()));
    const auto cid = reply.w0;
    for (std::uint64_t i = 0; i < clip.frames.size(); ++i) {
      auto req = std::make_shared<dvcm::TcpSendRequest>();
      req->packet = net::Packet{.seq = i, .bytes = clip.frames[i].bytes};
      co_await server.host_api().invoke(dvcm::kTcpSend, cid, req);
      co_await sim::Delay{eng, Time::ms(5)};
    }
    co_await sim::Delay{eng, Time::sec(2)};
    co_await server.host_api().call(dvcm::kTcpStatus, &reply, cid);
    std::printf("NI-side retransmissions: %llu (host posted none)\n",
                static_cast<unsigned long long>(reply.w1));
  };
  host_app().detach();
  eng.run_until(Time::sec(20));

  std::printf("link loss rate: %.0f%% (%llu frames eaten by the switch)\n",
              cal.ethernet.loss_rate * 100,
              static_cast<unsigned long long>(ether.frames_lost()));
  std::printf("plain UDP:    %zu of %zu frames reached the player (gaps!)\n",
              udp_got.size(), clip.frames.size());
  bool in_order = true;
  for (std::size_t i = 0; i < tcp_got.size(); ++i) {
    in_order = in_order && tcp_got[i] == i;
  }
  std::printf("TCP offload:  %zu of %zu frames, %s\n", tcp_got.size(),
              clip.frames.size(),
              in_order && tcp_got.size() == clip.frames.size()
                  ? "gapless and in order"
                  : "DEGRADED");
  return 0;
}
