// DVCM extensibility: loading a custom instruction-set extension at run time.
//
// The DVCM's point (paper §2) is that host applications can push their own
// "instructions" down to the NI CoProcessor. This example writes a small
// frame-statistics extension — counting frame types and bytes *on the NI*,
// so the host never touches the frame stream — loads it next to the DWCS
// media scheduler, and queries it from a host application over I2O.
#include <array>
#include <cstdio>

#include "apps/client.hpp"
#include "apps/media_server.hpp"
#include "dvcm/dwcs_extension.hpp"
#include "mpeg/encoder.hpp"
#include "mpeg/segmenter.hpp"

using namespace nistream;
using sim::Time;

namespace {

// Extension opcodes live above kExtensionBase; keep clear of the DWCS ones.
constexpr dvcm::InstructionId kStatsRecord = dvcm::kExtensionBase + 0x200;
constexpr dvcm::InstructionId kStatsQuery = dvcm::kExtensionBase + 0x201;

/// Counts frames by type on the NI. Producers record with kStatsRecord
/// (w0 = frame type, w1 = bytes); hosts query with kStatsQuery.
class FrameStatsExtension final : public dvcm::ExtensionModule {
 public:
  const char* name() const override { return "frame-stats"; }

  void install(dvcm::VcmRuntime& runtime) override {
    runtime.registry().add(kStatsRecord, [this](const hw::I2oMessage& m) {
      const auto type = static_cast<std::size_t>(m.w0);
      if (type >= 1 && type <= 3) {
        ++counts_[type - 1];
        bytes_ += m.w1;
      }
    });
    runtime.registry().add(kStatsQuery,
                           [this, &runtime](const hw::I2oMessage& m) {
                             runtime.reply(m, hw::I2oMessage{
                                                  .w0 = counts_[0],
                                                  .w1 = counts_[1] << 32 |
                                                        counts_[2]});
                           });
  }

  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  std::array<std::uint64_t, 3> counts_{};  // I, P, B
  std::uint64_t bytes_ = 0;
};

}  // namespace

int main() {
  sim::Engine engine;
  hw::PciBus bus{engine};
  hw::EthernetSwitch ether{engine};
  apps::NiSchedulerServer server{engine, bus, ether};
  apps::MpegClient client{engine, ether};

  // Load the custom extension at run time, next to the media scheduler.
  auto stats_ext = std::make_unique<FrameStatsExtension>();
  auto* stats = stats_ext.get();
  server.runtime().load_extension(std::move(stats_ext));
  std::printf("extensions loaded on the NI:\n");
  for (const auto& ext : server.runtime().extensions()) {
    std::printf("  - %s\n", ext->name());
  }

  // A host application: segment an MPEG file, stream it via the DWCS
  // extension, and report every frame to the stats extension — all through
  // DVCM instructions.
  const mpeg::MpegFile movie =
      mpeg::SyntheticEncoder{{.seed = 77}}.generate(60);
  const auto segments = mpeg::Segmenter::segment(movie.bitstream);

  dwcs::StreamId sid = dwcs::kInvalidStream;
  auto host_app = [&]() -> sim::Coro {
    auto req = std::make_shared<dvcm::CreateStreamRequest>();
    req->params = {.tolerance = {2, 8}, .period = Time::ms(33), .lossy = true};
    req->client_port = client.port();
    hw::I2oMessage reply;
    co_await server.host_api().call(dvcm::kDwcsCreateStream, &reply, 0, req);
    sid = static_cast<dwcs::StreamId>(reply.w0);

    for (const auto& seg : segments) {
      auto fr = std::make_shared<dvcm::EnqueueFrameRequest>();
      fr->bytes = seg.bytes;
      fr->type = seg.type;
      co_await server.host_api().invoke(dvcm::kDwcsEnqueueFrame, sid, fr);
      co_await server.host_api().invoke(
          kStatsRecord, static_cast<std::uint64_t>(seg.type), nullptr,
          nullptr, /*w1=*/seg.bytes);
    }

    // Query the NI-resident statistics.
    hw::I2oMessage stats_reply;
    co_await server.host_api().call(kStatsQuery, &stats_reply);
    const auto i_frames = stats_reply.w0;
    const auto p_frames = stats_reply.w1 >> 32;
    const auto b_frames = stats_reply.w1 & 0xFFFFFFFF;
    std::printf("NI-resident frame statistics: I=%llu P=%llu B=%llu "
                "(%llu bytes)\n",
                static_cast<unsigned long long>(i_frames),
                static_cast<unsigned long long>(p_frames),
                static_cast<unsigned long long>(b_frames),
                static_cast<unsigned long long>(stats->bytes()));
  };
  host_app().detach();

  engine.run_until(Time::sec(5));
  std::printf("frames delivered to the client: %llu of %zu\n",
              static_cast<unsigned long long>(client.frames_received(sid)),
              segments.size());
  std::printf("VCM instructions dispatched on the NI: %llu\n",
              static_cast<unsigned long long>(server.runtime().dispatched()));
  return 0;
}
