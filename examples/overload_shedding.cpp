// Overload shedding: differentiated QoS when capacity runs out.
//
// Three streams demand more service than exists. DWCS sheds the deficit
// onto the streams that declared they can tolerate loss, keeping the tight
// stream's window constraint intact; EDF — blind to tolerances — spreads
// misses arbitrarily and breaks it. This is the scheduling-policy argument
// of the paper's §5 made runnable.
#include <cstdio>

#include "dwcs/baselines.hpp"
#include "dwcs/monitor.hpp"
#include "dwcs/scheduler.hpp"

using namespace nistream;
using sim::Time;

namespace {

struct StreamSpec {
  const char* name;
  dwcs::WindowConstraint tolerance;
};

void run(dwcs::PacketScheduler& sched, const StreamSpec (&specs)[3]) {
  dwcs::WindowViolationMonitor monitor;
  std::vector<dwcs::StreamId> ids;
  for (const auto& spec : specs) {
    ids.push_back(sched.create_stream(
        {.tolerance = spec.tolerance, .period = Time::ms(10), .lossy = true},
        Time::zero()));
    monitor.add_stream(spec.tolerance);
  }

  std::uint64_t fid = 0;
  std::vector<std::uint64_t> seen_drops(ids.size(), 0);
  const auto pump = [&] {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto d = sched.stats(ids[i]).dropped;
      for (std::uint64_t k = seen_drops[i]; k < d; ++k) {
        monitor.record(ids[i], dwcs::WindowViolationMonitor::Outcome::kDropped);
      }
      seen_drops[i] = d;
    }
  };

  // 300 packets/s offered; ~80% service capacity.
  for (int t = 0; t < 60'000; t += 10) {
    for (const auto id : ids) {
      sched.enqueue(id,
                    {.frame_id = fid++, .bytes = 1000,
                     .type = mpeg::FrameType::kP,
                     .enqueued_at = Time::ms(t)},
                    Time::ms(t));
    }
    // 12 service slots per 5 arrival ticks (15 packets): 80%.
    for (int k = 0; k < (t % 50 == 0 ? 4 : 2); ++k) {
      const auto d = sched.schedule_next(Time::ms(t));
      pump();
      if (d) {
        monitor.record(d->stream,
                       d->late ? dwcs::WindowViolationMonitor::Outcome::kLate
                               : dwcs::WindowViolationMonitor::Outcome::kOnTime);
      }
    }
  }
  pump();

  std::printf("  %-10s %-10s %12s %10s %14s\n", "stream", "tolerance",
              "on-time", "dropped", "violations");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& st = sched.stats(ids[i]);
    std::printf("  %-10s %4lld/%-5lld %12llu %10llu %14llu\n", specs[i].name,
                static_cast<long long>(specs[i].tolerance.x),
                static_cast<long long>(specs[i].tolerance.y),
                static_cast<unsigned long long>(st.serviced_on_time),
                static_cast<unsigned long long>(st.dropped),
                static_cast<unsigned long long>(monitor.violating_windows(ids[i])));
  }
}

}  // namespace

int main() {
  // Created loosest-first so that id-based tie-breaking (which EDF and
  // round-robin fall back on) cannot accidentally protect the tight stream.
  const StreamSpec specs[3] = {
      {"thumbnail", {7, 8}},  // decorative: almost everything may go
      {"newscast", {4, 8}},   // can drop every other frame
      {"teleconf", {1, 8}},   // interactive: barely any loss allowed
  };

  std::printf("offered load: 3 x 100 pkt/s; capacity: ~80%%\n");
  std::printf("\nDWCS (window-constrained):\n");
  dwcs::DwcsScheduler dwcs_sched{dwcs::DwcsScheduler::Config{}};
  run(dwcs_sched, specs);

  std::printf("\nEDF (deadline only):\n");
  dwcs::EdfScheduler edf;
  run(edf, specs);

  std::printf("\nRound-robin:\n");
  dwcs::RoundRobinScheduler rr;
  run(rr, specs);

  std::printf("\nDWCS keeps the teleconference clean by dropping thumbnail\n"
              "frames — the attribute-blind policies violate it instead.\n");
  return 0;
}
