// Video server: the paper's headline scenario, end to end.
//
// Builds the full NI-based media server — an i960 RD board under VxWorks
// running the DVCM with the DWCS scheduler extension — generates two
// synthetic MPEG-1 files onto the board's disks, streams them to a remote
// client over switched 100 Mbps Ethernet (Path C: no host CPU, no host
// memory, no I/O-bus crossings), and prints the delivery report.
#include <cstdio>

#include "apps/client.hpp"
#include "apps/media_server.hpp"
#include "apps/producer.hpp"
#include "mpeg/encoder.hpp"

using namespace nistream;
using sim::Time;

int main() {
  sim::Engine engine;
  hw::PciBus bus{engine};
  hw::EthernetSwitch ether{engine};
  apps::NiSchedulerServer server{engine, bus, ether};
  apps::MpegClient client{engine, ether};

  // Two ten-second SIF MPEG-1 clips (synthetic but fully parseable).
  mpeg::EncoderParams enc_params;
  enc_params.seed = 2000;
  const mpeg::MpegFile movie_a =
      mpeg::SyntheticEncoder{enc_params}.generate(300);
  enc_params.seed = 2001;
  const mpeg::MpegFile movie_b =
      mpeg::SyntheticEncoder{enc_params}.generate(300);
  std::printf("movie A: %zu frames, %.2f Mbit/s\n", movie_a.frames.size(),
              movie_a.bitrate_bps() / 1e6);
  std::printf("movie B: %zu frames, %.2f Mbit/s\n", movie_b.frames.size(),
              movie_b.bitrate_bps() / 1e6);

  // Clients request the streams: A is premium (1 loss per 8 tolerated),
  // B is best-effort-ish (4 per 8).
  const auto sa = server.service().create_stream(
      {.tolerance = {1, 8}, .period = Time::ms(33.333), .lossy = true},
      client.port());
  const auto sb = server.service().create_stream(
      {.tolerance = {4, 8}, .period = Time::ms(33.333), .lossy = true},
      client.port());

  // Producers segment the files straight off the board's two SCSI disks.
  rtos::Task& ta = server.kernel().spawn("tProdA", 120);
  rtos::Task& tb = server.kernel().spawn("tProdB", 120);
  apps::ProducerStats stats_a, stats_b;
  apps::ni_disk_producer(engine, server.board().disk(0), ta, movie_a,
                         server.service(), stats_a, {.stream = sa})
      .detach();
  apps::ni_disk_producer(engine, server.board().disk(1), tb, movie_b,
                         server.service(), stats_b, {.stream = sb})
      .detach();

  engine.run_until(Time::sec(15));
  client.finish(Time::sec(15));

  std::printf("\ndelivery report after %.0f s:\n", engine.now().to_sec());
  for (const auto& [name, id] : {std::pair{"A", sa}, std::pair{"B", sb}}) {
    const auto& st = server.service().scheduler().stats(id);
    std::printf(
        "  stream %s: delivered %llu frames (%llu bytes), dropped %llu, "
        "violations %llu\n",
        name, static_cast<unsigned long long>(client.frames_received(id)),
        static_cast<unsigned long long>(st.bytes_sent),
        static_cast<unsigned long long>(st.dropped),
        static_cast<unsigned long long>(st.violations));
  }
  std::printf("  end-to-end frame latency: mean %.1f ms, max %.1f ms\n",
              client.latency_ms().mean(), client.latency_ms().max());
  std::printf("  PCI bus frame bytes moved: %llu (Path C: zero)\n",
              static_cast<unsigned long long>(bus.bytes_moved()));
  std::printf("  NI CPU busy: %.3f s of %.0f s\n",
              server.kernel().ni_cpu_busy().to_sec(), engine.now().to_sec());
  return 0;
}
