// Host vs NI: the paper's central comparison in one run.
//
// The same two MPEG streams are served twice — once by a DWCS process on the
// host CPU, once by the DWCS extension on an i960 NI — while an identical
// 60%-average web load hammers the host. Prints the Figure 7/9 story as a
// two-line verdict.
#include <cstdio>

#include "apps/experiments.hpp"

using namespace nistream;

int main() {
  apps::LoadExperimentConfig unloaded;
  unloaded.target_utilization = 0.0;
  apps::LoadExperimentConfig loaded = unloaded;
  loaded.target_utilization = 0.60;

  std::printf("running 4 experiments (host/NI x unloaded/60%% web load)...\n");
  const auto host_base = apps::run_host_load_experiment(unloaded);
  const auto host_load = apps::run_host_load_experiment(loaded);
  const auto ni_base = apps::run_ni_load_experiment(unloaded);
  const auto ni_load = apps::run_ni_load_experiment(loaded);

  const auto row = [](const char* name, const apps::LoadExperimentResult& r) {
    std::printf("  %-22s util %5.1f%%  s1 %7.0f bps  s2 %7.0f bps  "
                "maxQ %7.0f ms  frames %llu\n",
                name, r.avg_utilization, r.s1.settle_bandwidth_bps,
                r.s2.settle_bandwidth_bps, r.s1.max_qdelay_ms,
                static_cast<unsigned long long>(r.s1.frames_delivered +
                                                r.s2.frames_delivered));
  };
  std::printf("\nscheduler on the HOST CPU:\n");
  row("no web load", host_base);
  row("60% web load", host_load);
  std::printf("scheduler on the NI (i960):\n");
  row("no web load", ni_base);
  row("60% web load", ni_load);

  const double host_hit =
      host_load.s1.settle_bandwidth_bps / host_base.s1.settle_bandwidth_bps;
  const double ni_hit =
      ni_load.s1.settle_bandwidth_bps / ni_base.s1.settle_bandwidth_bps;
  std::printf("\nverdict: web load costs the host scheduler %.0f%% of its "
              "bandwidth;\n         the NI scheduler loses %.1f%% — it never "
              "shares a CPU with the web server.\n",
              (1.0 - host_hit) * 100.0, (1.0 - ni_hit) * 100.0);
  return 0;
}
