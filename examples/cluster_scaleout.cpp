// Cluster scale-out: the paper's closing architecture vision, runnable.
//
// A 4-node media cluster, each node carrying two scheduler-NIs (i960 boards
// running the DVCM + DWCS extension), serves hundreds of concurrent stream
// requests. The director places each request on the least-loaded node whose
// admission controller accepts it; requests beyond aggregate capacity are
// rejected up front instead of degrading everyone ("pre-negotiated bound on
// service degradation", §3.1).
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/client.hpp"
#include "apps/cluster.hpp"

using namespace nistream;
using sim::Time;

int main() {
  sim::Engine engine;
  hw::EthernetSwitch ether{engine};
  apps::MediaCluster cluster{engine, ether, /*nodes=*/4, /*nis_per_node=*/2};

  // 2000 clients request ~250 kbit/s streams; cluster capacity is ~8x315.
  const dwcs::StreamParams params{.tolerance = {2, 8},
                                  .period = Time::ms(33.333),
                                  .lossy = true};
  std::vector<std::unique_ptr<apps::MpegClient>> clients;
  std::vector<apps::StreamPlacement> placements;
  int rejected = 0;
  for (int i = 0; i < 2000; ++i) {
    clients.push_back(std::make_unique<apps::MpegClient>(engine, ether));
    const auto p = cluster.open_stream(params, 1000, clients.back()->port(),
                                       /*n_frames=*/150,
                                       static_cast<std::uint64_t>(4000 + i));
    if (p) {
      placements.push_back(*p);
    } else {
      ++rejected;
    }
  }

  engine.run_until(Time::sec(6));

  std::printf("requests: 2000, admitted: %zu, rejected: %d\n",
              placements.size(), rejected);
  for (int n = 0; n < cluster.node_count(); ++n) {
    auto& node = cluster.node(n);
    std::printf("  %s: %llu streams (", node.name().c_str(),
                static_cast<unsigned long long>(node.streams_opened()));
    for (int i = 0; i < node.ni_count(); ++i) {
      std::printf("%sNI%d cpu %.0f%%", i ? ", " : "", i,
                  100.0 * node.admission(i).cpu_utilization());
    }
    std::printf(")\n");
  }

  std::uint64_t frames = 0, bytes = 0;
  for (auto& c : clients) {
    frames += c->total_frames();
    bytes += c->total_bytes();
  }
  std::printf("delivered: %llu frames, %.1f Mbit/s aggregate over %.0f s\n",
              static_cast<unsigned long long>(frames),
              static_cast<double>(bytes) * 8.0 / engine.now().to_sec() / 1e6,
              engine.now().to_sec());
  return 0;
}
