// Ablation: scalable server architectures (paper abstract + §6).
//
// "Architectures to build scalable media scheduling servers are explored by
// distributing media schedulers ... among NIs within a server and clustering
// a number of such servers." We sweep the architecture — NIs per node and
// nodes per cluster — and report admitted stream capacity and delivered
// aggregate bandwidth, verifying near-linear scaling, plus the admission
// controller holding per-NI load under its headroom.
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/client.hpp"
#include "apps/cluster.hpp"
#include "bench_util.hpp"

using namespace nistream;
using sim::Time;

namespace {

struct Result {
  int admitted = 0;
  double delivered_mbps = 0;
  double max_ni_load = 0;
};

Result run(int nodes, int nis_per_node, int offered_streams) {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  apps::MediaCluster cluster{eng, ether, nodes, nis_per_node};
  std::vector<std::unique_ptr<apps::MpegClient>> clients;
  const dwcs::StreamParams params{.tolerance = {2, 8},
                                  .period = Time::ms(33.333),
                                  .lossy = true};
  constexpr int kFrames = 90;  // 3 s of 30 fps video per stream
  Result r;
  for (int i = 0; i < offered_streams; ++i) {
    clients.push_back(std::make_unique<apps::MpegClient>(eng, ether));
    if (cluster.open_stream(params, 1000, clients.back()->port(), kFrames,
                            static_cast<std::uint64_t>(9000 + i))) {
      ++r.admitted;
    }
  }
  const Time horizon = Time::sec(4);
  eng.run_until(horizon);
  std::uint64_t bytes = 0;
  for (auto& c : clients) bytes += c->total_bytes();
  r.delivered_mbps = static_cast<double>(bytes) * 8.0 / horizon.to_sec() / 1e6;
  for (int n = 0; n < cluster.node_count(); ++n) {
    for (int i = 0; i < cluster.node(n).ni_count(); ++i) {
      r.max_ni_load = std::max(
          r.max_ni_load, std::max(cluster.node(n).admission(i).cpu_utilization(),
                                  cluster.node(n).admission(i).link_utilization()));
    }
  }
  return r;
}

}  // namespace

int main() {
  bench::header("Ablation: server architecture scaling (offered: 1200 streams)");
  std::printf("  %-8s %-10s %10s %16s %14s\n", "nodes", "NIs/node", "admitted",
              "delivered Mb/s", "max NI load");
  int base = 0;
  for (const auto& [nodes, nis] :
       {std::pair{1, 1}, {1, 2}, {1, 4}, {2, 2}, {2, 4}, {4, 4}}) {
    const Result r = run(nodes, nis, 1200);
    if (base == 0) base = r.admitted;
    std::printf("  %-8d %-10d %10d %16.1f %14.2f\n", nodes, nis, r.admitted,
                r.delivered_mbps, r.max_ni_load);
  }
  bench::note("Admitted capacity scales linearly with scheduler-NIs (within");
  bench::note("a node and across nodes); per-NI load never exceeds the 0.90");
  bench::note("admission headroom.");
  return 0;
}
