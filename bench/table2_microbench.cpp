// Table 2 — Scheduler microbenchmarks, data cache ENABLED.
//
// Paper values (§4.2, Table 2), in microseconds:
//                         Software FP     Fixed Point
//   Total Sched time        17398.56        14295.60
//   Avg frame Sched time      115.20           94.60
//   Total time w/o Sched       4776.48         4195.68
//   Avg frame w/o Sched          31.40           27.78
#include "apps/experiments.hpp"
#include "bench_util.hpp"

using namespace nistream;

int main() {
  bench::header("Table 2: scheduler microbenchmarks (data cache enabled)");

  apps::MicrobenchConfig cfg;
  cfg.dcache_enabled = true;

  cfg.arith = dwcs::ArithMode::kSoftFloat;
  const auto soft = apps::run_microbench(cfg);
  std::printf(" Software FP:\n");
  bench::row("Total Sched time", 17398.56, soft.total_sched_us, "us");
  bench::row("Avg frame Sched time", 115.20, soft.avg_frame_sched_us, "us");
  bench::row("Total time w/o Scheduler", 4776.48, soft.total_wo_sched_us, "us");
  bench::row("Avg frame time w/o Scheduler", 31.40, soft.avg_frame_wo_sched_us,
             "us");

  cfg.arith = dwcs::ArithMode::kFixedPoint;
  const auto fixed = apps::run_microbench(cfg);
  std::printf(" Fixed Point:\n");
  bench::row("Total Sched time", 14295.60, fixed.total_sched_us, "us");
  bench::row("Avg frame Sched time", 94.60, fixed.avg_frame_sched_us, "us");
  bench::row("Total time w/o Scheduler", 4195.68, fixed.total_wo_sched_us, "us");
  bench::row("Avg frame time w/o Scheduler", 27.78,
             fixed.avg_frame_wo_sched_us, "us");

  // Cache benefit relative to Table 1 (~14.47us FP / ~13.88us fixed).
  apps::MicrobenchConfig off = cfg;
  off.dcache_enabled = false;
  off.arith = dwcs::ArithMode::kFixedPoint;
  const auto fixed_off = apps::run_microbench(off);
  off.arith = dwcs::ArithMode::kSoftFloat;
  const auto soft_off = apps::run_microbench(off);

  std::printf(" Checks:\n");
  bench::row("d-cache benefit per frame, software FP", 14.47,
             soft_off.avg_frame_sched_us - soft.avg_frame_sched_us, "us");
  bench::row("d-cache benefit per frame, fixed point", 13.88,
             fixed_off.avg_frame_sched_us - fixed.avg_frame_sched_us, "us");
  bench::row("Fixed-point scheduler overhead (~66.82us)", 66.82,
             fixed.overhead_us(), "us");
  bench::note("Headline: i960 RD (66 MHz) NI scheduling overhead ~65 us,");
  bench::note("comparable to the host-based DWCS's ~50 us on a 4x-faster CPU.");
  return 0;
}
