// Ingress chaos sweep: multi-tenant flood isolation at the NI front door,
// measured end to end.
//
// Every cell boots a full multi-tenant SessionServer (RTSP front door with
// per-tenant admission budgets, (scope, stream) violation monitoring) plus
// an IngressDemux raw-packet surface on the same simulated i960, then runs
// the same victim fleet twice:
//
//  * baseline — every tenant runs a polite fleet sized inside its admission
//               share. No raw traffic touches the demux port.
//  * flood    — the FIRST tenant on the --tenants list turns hostile: it
//               fires 10x its admission budget in SETUPs at the control
//               plane AND sprays raw packets (half from inside its /16 —
//               attributable; half from nobody's address block) at the
//               demux port for the whole storm window. The victim tenants'
//               fleets are byte-identical to the baseline (per-client seeds
//               are a function of (tenant, index) only).
//
// The gate IS the paper's claim at tenant granularity: flood isolation.
//  * every victim tenant's max per-stream violation rate in the flood run
//    stays within noise (+0.02) of its flood-free baseline;
//  * every victim stream admitted in the baseline is admitted in the flood
//    (the flooder exhausts only its OWN budget: tenant_rejected_453 > 0);
//  * the demux accounts for every raw packet (received == sum of verdicts,
//    attributed and unmatched drops both nonzero) and delivers none of the
//    garbage;
//  * both runs replay bit-identically from their seeds (FNV fingerprints
//    over every client outcome and every server/demux counter).
// The binary exits nonzero when any property fails, so CI can gate on it.
//
// Reproducible from the command line:
//   ingress_chaos_sweep [out.json] [--seed=u64] [--jobs=N] [--smoke]
//                       [--tenants=alpha,beta]
// Cells are independent simulations; results are emitted in grid order, so
// the JSON is byte-identical for any job count (only its "jobs" stamp
// differs). --smoke shrinks the fleets for CI gate runs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/client.hpp"
#include "bench_util.hpp"
#include "cli.hpp"
#include "ingress/demux.hpp"
#include "runner.hpp"
#include "session/client.hpp"
#include "session/server.hpp"

using namespace nistream;

namespace {

constexpr sim::Time kStormWindow = sim::Time::sec(1);
constexpr sim::Time kRunFor = sim::Time::sec(20);
constexpr sim::Time kFramePeriod = sim::Time::ms(10);

// Mirrors the SessionServer defaults (per_frame_cpu 120us, headroom 0.90):
// the CPU budget binds well before the link at 10 ms periods, so a tenant
// with share s admits about s * 0.90 / 0.012 streams.
constexpr double kCpuLoadPerStream = 120e-6 / 10e-3;
constexpr double kHeadroom = 0.90;

std::uint64_t splitmix64(std::uint64_t s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d4b9f2a6c3e1b5ull;
  return z ^ (z >> 31);
}

struct Fingerprint {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void add_double(double d) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof d);
    __builtin_memcpy(&bits, &d, sizeof bits);
    add(bits);
  }
};

struct TenantOutcome {
  std::string name;
  std::uint32_t scope = 0;
  std::uint64_t clients = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  double scope_max_violation_rate = 0;
  double scope_aggregate_violation_rate = 0;
  std::uint64_t scope_violating_streams = 0;
};

struct FleetResult {
  std::uint64_t fingerprint = 0;
  session::RtspFrontDoor::Stats door;
  ingress::IngressDemux::Stats demux;
  std::uint64_t attributed_to_flooder = 0;
  std::uint64_t responded = 0;
  std::uint64_t frames_delivered = 0;
  std::vector<TenantOutcome> tenants;  // index 0 = flooder
};

struct FleetSpec {
  const std::vector<std::string>* tenant_names = nullptr;
  std::size_t victim_n = 0;     // polite clients per tenant
  std::size_t flood_setups = 0; // extra flooder SETUPs (0 = baseline)
  std::size_t flood_packets = 0;// raw packets at the demux (0 = baseline)
};

FleetResult run_fleet(const FleetSpec& spec, std::uint64_t seed) {
  FleetResult r;
  const auto& names = *spec.tenant_names;
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};

  session::SessionServer::Config cfg;
  cfg.door.idle_timeout = sim::Time::ms(500);
  cfg.door.reap_interval = sim::Time::ms(125);
  const double share = 1.0 / static_cast<double>(names.size());
  for (const auto& name : names) {
    cfg.tenants.emplace_back(
        name, ingress::TenantBudget{.link_share = share, .cpu_share = share});
  }
  session::SessionServer server{eng, ether, cfg};

  // Raw ingress surface: the flooder's /16 is attributable (and dropped);
  // everything else the trie does not know is dropped unattributed. No
  // exact rules — admitted media rides the RTSP-established path, not the
  // raw port, so any delivery here would itself be a leak.
  const ingress::TenantId flooder = server.tenants().resolve(names[0]);
  ingress::FlowTable table{{.trie_nodes = 64, .trie_rules = 4}};
  table.add_category(ingress::kMatchFullTuple, 8);
  if (!table.insert_prefix(ingress::tenant_prefix_of(flooder), 16, flooder)) {
    std::fprintf(stderr, "flood prefix install failed\n");
    std::exit(1);
  }
  ingress::IngressDemux demux{eng, ether, server.kernel(), table,
                              server.service()};

  apps::MpegClient media{eng, ether};
  std::uint64_t rtcp_reports = 0;
  net::UdpEndpoint rtcp_sink{eng, ether, net::kHostStackCost,
                             [&rtcp_reports](const net::Packet&, sim::Time) {
                               ++rtcp_reports;
                             }};

  // Per-client seeds are a pure function of (tenant index, client index) and
  // the master seed, so the victim fleets are identical between the baseline
  // and flood runs of a cell — the comparison is apples to apples.
  const auto window_us = static_cast<std::uint64_t>(kStormWindow.to_us());
  const auto client_cfg = [&](std::size_t tenant_idx, std::size_t i) {
    const std::uint64_t s =
        splitmix64(seed ^ (static_cast<std::uint64_t>(tenant_idx) << 40) ^ i);
    session::RtspChurnClient::Config c;
    c.arrival = sim::Time::us(static_cast<double>(s % window_us));
    c.frames = 4 + splitmix64(s) % 8;
    c.period = kFramePeriod;
    c.uri = "rtsp://ni/" + names[tenant_idx] + "/s" + std::to_string(i);
    return c;
  };
  std::vector<std::unique_ptr<session::RtspChurnClient>> clients;
  std::vector<std::size_t> owner;  // tenant index per client
  const auto spawn = [&](std::size_t tenant_idx, std::size_t count,
                         std::size_t index_base) {
    for (std::size_t i = 0; i < count; ++i) {
      clients.push_back(std::make_unique<session::RtspChurnClient>(
          eng, ether, server.control_port(), media, rtcp_sink.port(),
          client_cfg(tenant_idx, index_base + i)));
      owner.push_back(tenant_idx);
      clients.back()->start();
    }
  };
  for (std::size_t t = 0; t < names.size(); ++t) spawn(t, spec.victim_n, 0);
  // The control-plane flood: 10x-budget SETUPs, distinct stream URIs so
  // every one is a fresh admission decision against the flooder's share.
  spawn(0, spec.flood_setups, spec.victim_n);

  // The data-plane flood: raw packets spread across the storm window,
  // alternating between the flooder's address block and nobody's.
  auto raw_flood = [&eng, &demux](net::UdpEndpoint& tx, std::size_t packets,
                                  ingress::TenantId from,
                                  std::uint64_t rng) -> sim::Coro {
    const double gap_us = kStormWindow.to_us() / static_cast<double>(packets);
    for (std::size_t i = 0; i < packets; ++i) {
      co_await sim::Delay{eng, sim::Time::us(gap_us)};
      net::Packet p;
      rng = splitmix64(rng);
      p.stream_id = i % 2 == 0
                        ? ingress::pack_flow(from, 1 << 20 | (rng & 0xFFFF))
                        : ingress::pack_flow(99, rng & 0xFFFF);
      p.bytes = 200;
      tx.send(demux.port(), p);
    }
  };
  net::UdpEndpoint flood_tx{eng, ether, net::kHostStackCost,
                            net::UdpEndpoint::Receiver{}};
  if (spec.flood_packets > 0) {
    raw_flood(flood_tx, spec.flood_packets, flooder, splitmix64(seed ^ 0xF10))
        .detach();
  }

  eng.run_until(kRunFor);

  Fingerprint fp;
  r.tenants.resize(names.size());
  for (std::size_t t = 0; t < names.size(); ++t) {
    r.tenants[t].name = names[t];
    r.tenants[t].scope = server.tenants().resolve(names[t]);
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const auto& o = clients[i]->outcome();
    auto& tn = r.tenants[owner[i]];
    ++tn.clients;
    if (o.responded_setup) ++r.responded;
    if (o.admitted) ++tn.admitted;
    if (o.completed) ++tn.completed;
    fp.add(static_cast<std::uint64_t>(o.setup_status));
    fp.add(o.admitted ? 1 : 0);
    fp.add(o.completed ? 1 : 0);
    fp.add(o.cseq_errors);
  }
  for (auto& tn : r.tenants) {
    const auto& mon = server.monitor();
    tn.scope_max_violation_rate = mon.scope_max_violation_rate(tn.scope);
    tn.scope_aggregate_violation_rate =
        mon.scope_aggregate_violation_rate(tn.scope);
    tn.scope_violating_streams = mon.scope_violating_streams(tn.scope);
    fp.add(tn.admitted);
    fp.add(tn.completed);
    fp.add(tn.scope_violating_streams);
    fp.add_double(tn.scope_max_violation_rate);
    fp.add_double(tn.scope_aggregate_violation_rate);
  }

  r.door = server.door().stats();
  r.demux = demux.stats();
  r.attributed_to_flooder = demux.tenant_counters(flooder).dropped;
  r.frames_delivered = media.total_frames();
  for (const std::uint64_t v :
       {r.door.requests, r.door.setups_ok, r.door.rejected_453,
        r.door.tenant_rejected_453, r.door.plays, r.door.teardowns,
        r.door.reaped_idle, r.door.eos, r.door.frames_pumped,
        r.door.post_play_admission_violations, r.demux.received,
        r.demux.delivered, r.demux.dropped_rule, r.demux.dropped_attributed,
        r.demux.dropped_unmatched, r.demux.ring_full, r.attributed_to_flooder,
        r.frames_delivered, rtcp_reports}) {
    fp.add(v);
  }
  r.fingerprint = fp.h;
  return r;
}

struct CellResult {
  const char* label = "";
  std::size_t victim_n = 0;
  std::size_t flood_setups = 0;
  std::size_t flood_packets = 0;
  FleetResult baseline;
  FleetResult flood;
  bool replay_identical = false;
  bool ok = true;
  std::string fail_reason;
};

CellResult run_cell(const char* label,
                    const std::vector<std::string>& tenant_names,
                    std::size_t victim_n, std::size_t flood_setups,
                    std::size_t flood_packets, std::uint64_t seed) {
  CellResult r;
  r.label = label;
  r.victim_n = victim_n;
  r.flood_setups = flood_setups;
  r.flood_packets = flood_packets;

  FleetSpec base{&tenant_names, victim_n, 0, 0};
  FleetSpec flood{&tenant_names, victim_n, flood_setups, flood_packets};
  r.baseline = run_fleet(base, seed);
  r.flood = run_fleet(flood, seed);
  // Replay gate: both halves of the cell rerun from the same seeds must
  // fingerprint identically, or the ingress plane leaked nondeterminism.
  r.replay_identical =
      run_fleet(base, seed).fingerprint == r.baseline.fingerprint &&
      run_fleet(flood, seed).fingerprint == r.flood.fingerprint;

  auto fail = [&r](const std::string& why) {
    r.ok = false;
    r.fail_reason += (r.fail_reason.empty() ? "" : "; ") + why;
  };
  if (!r.replay_identical) fail("same-seed replay diverged");
  if (r.flood.door.tenant_rejected_453 == 0) {
    fail("flooder never hit its tenant budget");
  }
  if (r.flood.door.post_play_admission_violations != 0 ||
      r.baseline.door.post_play_admission_violations != 0) {
    fail("admission decided after PLAY");
  }
  const std::size_t total_clients =
      tenant_names.size() * victim_n + flood_setups;
  if (r.flood.responded != total_clients) {
    fail("control plane dropped SETUPs under flood");
  }
  // The headline gate: no victim scope's max per-stream violation rate may
  // move beyond noise relative to its own flood-free baseline, and every
  // victim stream admitted without the flood is admitted with it.
  for (std::size_t t = 1; t < r.flood.tenants.size(); ++t) {
    const auto& b = r.baseline.tenants[t];
    const auto& f = r.flood.tenants[t];
    if (f.scope_max_violation_rate > b.scope_max_violation_rate + 0.02) {
      fail("victim " + f.name + " max violation rate " +
           std::to_string(f.scope_max_violation_rate) + " vs baseline " +
           std::to_string(b.scope_max_violation_rate));
    }
    if (f.admitted != b.admitted) {
      fail("victim " + f.name + " admissions moved under flood (" +
           std::to_string(f.admitted) + " vs " + std::to_string(b.admitted) +
           ")");
    }
  }
  const auto& d = r.flood.demux;
  if (d.received != d.delivered + d.dropped_rule + d.dropped_attributed +
                        d.dropped_unmatched + d.ring_full) {
    fail("demux lost packets (accounting mismatch)");
  }
  if (d.received != flood_packets) fail("raw flood not fully received");
  if (d.delivered != 0) fail("raw garbage reached a stream ring");
  if (flood_packets > 0 &&
      (d.dropped_attributed == 0 || d.dropped_unmatched == 0)) {
    fail("flood drops not split attributed/unmatched");
  }
  if (r.baseline.demux.received != 0) fail("baseline saw raw traffic");
  if (r.flood.frames_delivered == 0) fail("no media delivered at all");
  return r;
}

void write_fleet(std::ofstream& out, const char* key, const FleetResult& f) {
  out << "     \"" << key << "\": {\"setups_ok\": " << f.door.setups_ok
      << ", \"rejected_453\": " << f.door.rejected_453
      << ", \"tenant_rejected_453\": " << f.door.tenant_rejected_453
      << ", \"reaped_idle\": " << f.door.reaped_idle
      << ", \"frames_delivered\": " << f.frames_delivered
      << ",\n      \"demux\": {\"received\": " << f.demux.received
      << ", \"delivered\": " << f.demux.delivered
      << ", \"dropped_attributed\": " << f.demux.dropped_attributed
      << ", \"dropped_unmatched\": " << f.demux.dropped_unmatched
      << ", \"attributed_to_flooder\": " << f.attributed_to_flooder
      << "},\n      \"tenants\": [\n";
  for (std::size_t t = 0; t < f.tenants.size(); ++t) {
    const auto& tn = f.tenants[t];
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "       {\"name\": \"%s\", \"scope\": %u, \"clients\": "
                  "%llu, \"admitted\": %llu, \"completed\": %llu, "
                  "\"scope_max_violation_rate\": %.4f, "
                  "\"scope_aggregate_violation_rate\": %.6f, "
                  "\"scope_violating_streams\": %llu}",
                  tn.name.c_str(), tn.scope,
                  static_cast<unsigned long long>(tn.clients),
                  static_cast<unsigned long long>(tn.admitted),
                  static_cast<unsigned long long>(tn.completed),
                  tn.scope_max_violation_rate,
                  tn.scope_aggregate_violation_rate,
                  static_cast<unsigned long long>(tn.scope_violating_streams));
    out << buf << (t + 1 < f.tenants.size() ? ",\n" : "\n");
  }
  out << "      ]}";
}

void write_json(const std::vector<CellResult>& cells,
                const std::vector<std::string>& tenant_names,
                const std::string& path, std::uint64_t seed, unsigned jobs,
                bool all_ok) {
  std::ofstream out{path};
  if (!out) {
    std::printf("could not write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"ingress_chaos_sweep\",\n";
  bench::write_stamp(out, jobs);
  out << "  \"seed\": " << seed << ",\n  \"tenants\": [";
  for (std::size_t i = 0; i < tenant_names.size(); ++i) {
    out << "\"" << tenant_names[i] << "\""
        << (i + 1 < tenant_names.size() ? ", " : "");
  }
  out << "],\n  \"flooder\": \"" << tenant_names[0] << "\",\n"
      << "  \"ok\": " << (all_ok ? "true" : "false") << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    out << "    {\"cell\": \"" << c.label
        << "\", \"victims_per_tenant\": " << c.victim_n
        << ", \"flood_setups\": " << c.flood_setups
        << ", \"flood_packets\": " << c.flood_packets
        << ", \"replay_identical\": " << (c.replay_identical ? "true" : "false")
        << ", \"ok\": " << (c.ok ? "true" : "false");
    if (!c.ok) out << ", \"fail_reason\": \"" << c.fail_reason << "\"";
    out << ",\n";
    write_fleet(out, "baseline", c.baseline);
    out << ",\n";
    write_fleet(out, "flood", c.flood);
    out << "}" << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      bench::out_path(argc, argv, "BENCH_ingress.json");
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 0x16E55);
  const unsigned jobs = bench::flag_jobs(argc, argv);
  const bool smoke = bench::flag_present(argc, argv, "smoke");
  const std::vector<std::string> tenant_names =
      bench::flag_str_list(argc, argv, "tenants", "alpha,beta,gamma");
  if (tenant_names.size() < 2) {
    std::fprintf(stderr,
                 "--tenants needs at least a flooder and one victim\n");
    return 2;
  }

  // Per-tenant admission capacity in streams, from the server defaults.
  const double share = 1.0 / static_cast<double>(tenant_names.size());
  const auto capacity = static_cast<std::size_t>(share * kHeadroom /
                                                 kCpuLoadPerStream);
  struct CellSpec {
    const char* label;
    std::size_t victim_n;
    std::size_t flood_packets;
  };
  const std::vector<CellSpec> specs =
      smoke ? std::vector<CellSpec>{{"light", capacity / 2, 1'000}}
            : std::vector<CellSpec>{{"light", capacity / 2, 4'000},
                                    {"near-capacity", capacity - 2, 8'000}};
  const std::size_t flood_setups = 10 * capacity;

  std::printf("==== ingress chaos sweep: %zu tenants (flooder=%s), "
              "capacity=%zu streams/tenant, seed=%llu, jobs=%u%s ====\n",
              tenant_names.size(), tenant_names[0].c_str(), capacity,
              static_cast<unsigned long long>(seed), jobs,
              smoke ? " (smoke)" : "");
  std::vector<CellResult> cells(specs.size());
  bench::run_cells(specs.size(), jobs, [&](std::size_t i) {
    std::uint64_t coord = specs[i].victim_n * 8191 + specs[i].flood_packets;
    cells[i] = run_cell(specs[i].label, tenant_names, specs[i].victim_n,
                        flood_setups, specs[i].flood_packets, seed ^ coord);
  });

  std::printf("%14s %8s %8s %10s %10s %12s %12s %7s %5s\n", "cell", "victims",
              "t453", "attr_drop", "unmatched", "victim_max", "base_max",
              "replay", "ok");
  bool all_ok = true;
  for (const auto& c : cells) {
    double victim_max = 0, base_max = 0;
    for (std::size_t t = 1; t < c.flood.tenants.size(); ++t) {
      victim_max = std::max(victim_max,
                            c.flood.tenants[t].scope_max_violation_rate);
      base_max = std::max(base_max,
                          c.baseline.tenants[t].scope_max_violation_rate);
    }
    std::printf(
        "%14s %8zu %8llu %10llu %10llu %12.4f %12.4f %7s %5s\n", c.label,
        c.victim_n,
        static_cast<unsigned long long>(c.flood.door.tenant_rejected_453),
        static_cast<unsigned long long>(c.flood.demux.dropped_attributed),
        static_cast<unsigned long long>(c.flood.demux.dropped_unmatched),
        victim_max, base_max, c.replay_identical ? "yes" : "NO",
        c.ok ? "yes" : "NO");
    if (!c.ok) {
      std::printf("           ^ FAIL: %s\n", c.fail_reason.c_str());
      all_ok = false;
    }
  }
  write_json(cells, tenant_names, out_path, seed, jobs, all_ok);
  return all_ok ? 0 : 1;
}
