// Session churn sweep: the RTSP/RTP front door under million-client-class
// connection churn, measured.
//
// A scenario x session-count grid over the session control plane. Every cell
// boots a full SessionServer (RTSP front door + DWCS admission + dispatch
// monitor on the simulated NI substrate) and fires a fleet of scripted RTSP
// clients at it with pseudorandom arrivals inside a fixed storm window:
//
//  * storm     — 100% polite clients: SETUP/PLAY/<media>/TEARDOWN/FIN. The
//                pure churn workload: the front door must answer every SETUP
//                and decide admission for all of them AT SETUP time.
//  * slowstart — 30% of clients dribble their SETUP text one TCP segment at
//                a time across tens of milliseconds, crossing header and
//                message boundaries mid-request.
//  * halfopen  — 30% of clients vanish after PLAY (no TEARDOWN, no FIN) and
//                10% pause mid-media; the idle reaper must collect the
//                abandoned sessions and return their admission slots.
//
// What the JSON proves (the acceptance criteria of the session-plane work):
//  * every client that asked got an answer (setups_ok + rejected_453 == n);
//  * admission is decided at SETUP — zero post-PLAY admission violations;
//  * admitted streams keep their windows (max per-stream violation rate
//    bounded) even while the 453 storm rages on the control plane;
//  * the whole thing replays bit-identically: each cell runs its fleet
//    TWICE from the same seed and compares FNV-1a fingerprints over every
//    per-client outcome and every server counter.
// The bench exits nonzero when any property fails, so CI can gate on it.
//
// Reproducible from the command line:
//   session_churn_sweep [out.json] [--seed=u64] [--jobs=N] [--smoke]
// Cells are independent simulations, so they run in parallel under --jobs;
// results are emitted in grid order, so the JSON is byte-identical for any
// job count (only its "jobs" stamp differs). --smoke shrinks the fleets for
// CI gate runs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/client.hpp"
#include "bench_util.hpp"
#include "cli.hpp"
#include "runner.hpp"
#include "session/client.hpp"
#include "session/server.hpp"

using namespace nistream;

namespace {

// All arrivals land inside this window — the "storm". Sized so a 100k fleet
// hammers the control plane at ~50k SETUPs/sec of simulated time.
constexpr sim::Time kStormWindow = sim::Time::sec(2);
// Well past the last possible client lifecycle (arrival + dribble + media +
// drain slack + teardown) and several reaper generations beyond it.
constexpr sim::Time kRunFor = sim::Time::sec(45);
constexpr sim::Time kFramePeriod = sim::Time::ms(10);

struct Scenario {
  const char* name;
  // Behavior mix, cumulative percentages out of 100.
  std::uint64_t slow_below;    // r < slow_below           -> kSlowStart
  std::uint64_t vanish_below;  // r < vanish_below          -> kVanish
  std::uint64_t pause_below;   // r < pause_below           -> kPauseResume
                               // otherwise                 -> kPolite
};

constexpr Scenario kStorm{"storm", 0, 0, 0};
constexpr Scenario kSlowStart{"slowstart", 30, 30, 30};
constexpr Scenario kHalfOpen{"halfopen", 0, 30, 40};

std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d4b9f2a6c3e1b5ull;
  return z ^ (z >> 31);
}

struct Fingerprint {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void add_double(double d) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof d);
    __builtin_memcpy(&bits, &d, sizeof bits);
    add(bits);
  }
};

session::RtspChurnClient::Behavior pick_behavior(const Scenario& sc,
                                                 std::uint64_t r) {
  using B = session::RtspChurnClient::Behavior;
  const std::uint64_t p = r % 100;
  if (p < sc.slow_below) return B::kSlowStart;
  if (p < sc.vanish_below) return B::kVanish;
  if (p < sc.pause_below) return B::kPauseResume;
  return B::kPolite;
}

/// One complete fleet run: everything the fingerprint (and the JSON) needs.
struct FleetResult {
  std::uint64_t fingerprint = 0;
  session::RtspFrontDoor::Stats door;
  std::uint64_t responded = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t rtcp_reports = 0;
  double setup_ms_p50 = 0;
  double setup_ms_p99 = 0;
  double setup_ms_max = 0;
  double max_violation_rate = 0;
  double aggregate_violation_rate = 0;
  std::uint64_t violating_streams = 0;
};

FleetResult run_fleet(const Scenario& sc, std::size_t n, std::uint64_t seed) {
  FleetResult r;
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  session::SessionServer::Config cfg;
  cfg.door.idle_timeout = sim::Time::ms(500);
  cfg.door.reap_interval = sim::Time::ms(125);
  session::SessionServer server{eng, ether, cfg};
  apps::MpegClient media{eng, ether};
  std::uint64_t rtcp_reports = 0;
  net::UdpEndpoint rtcp_sink{eng, ether, net::kHostStackCost,
                             [&rtcp_reports](const net::Packet&, sim::Time) {
                               ++rtcp_reports;
                             }};

  std::vector<std::unique_ptr<session::RtspChurnClient>> clients;
  clients.reserve(n);
  std::uint64_t rng = seed;
  const auto window_us = static_cast<std::uint64_t>(kStormWindow.to_us());
  for (std::size_t i = 0; i < n; ++i) {
    session::RtspChurnClient::Config c;
    c.behavior = pick_behavior(sc, splitmix64(rng));
    c.arrival =
        sim::Time::us(static_cast<double>(splitmix64(rng) % window_us));
    c.frames = 4 + splitmix64(rng) % 8;
    c.period = kFramePeriod;
    clients.push_back(std::make_unique<session::RtspChurnClient>(
        eng, ether, server.control_port(), media, rtcp_sink.port(), c));
    clients.back()->start();
  }
  eng.run_until(kRunFor);

  Fingerprint fp;
  std::vector<double> setup_ms;
  setup_ms.reserve(n);
  for (const auto& c : clients) {
    const auto& o = c->outcome();
    if (o.responded_setup) {
      ++r.responded;
      setup_ms.push_back(o.setup_latency_ms);
    }
    if (o.admitted) ++r.admitted;
    if (o.completed) ++r.completed;
    fp.add(static_cast<std::uint64_t>(o.setup_status));
    fp.add_double(o.setup_latency_ms);
    fp.add(o.admitted ? 1 : 0);
    fp.add(o.completed ? 1 : 0);
    fp.add(o.cseq_errors);
  }
  std::sort(setup_ms.begin(), setup_ms.end());
  if (!setup_ms.empty()) {
    r.setup_ms_p50 = setup_ms[setup_ms.size() / 2];
    r.setup_ms_p99 = setup_ms[setup_ms.size() * 99 / 100];
    r.setup_ms_max = setup_ms.back();
  }

  r.door = server.door().stats();
  r.frames_delivered = media.total_frames();
  r.rtcp_reports = rtcp_reports;
  r.max_violation_rate = server.monitor().max_violation_rate();
  r.aggregate_violation_rate = server.monitor().aggregate_violation_rate();
  r.violating_streams = server.monitor().violating_streams();

  const auto& st = r.door;
  for (const std::uint64_t v :
       {st.requests, st.bad_requests, st.setups_ok, st.rejected_453, st.plays,
        st.resumes, st.pauses, st.teardowns, st.stale_454, st.bad_state_455,
        st.reaped_idle, st.conn_closed, st.eos, st.frames_pumped,
        st.post_play_admission_violations, r.frames_delivered, r.rtcp_reports,
        media.total_bytes(), media.frames_while_paused(),
        r.violating_streams}) {
    fp.add(v);
  }
  fp.add_double(r.max_violation_rate);
  fp.add_double(r.aggregate_violation_rate);
  r.fingerprint = fp.h;
  return r;
}

struct CellResult {
  const Scenario* scenario = nullptr;
  std::size_t sessions = 0;
  FleetResult fleet;
  bool replay_identical = false;
  bool ok = true;
  std::string fail_reason;
};

CellResult run_cell(const Scenario& sc, std::size_t n, std::uint64_t seed) {
  CellResult r;
  r.scenario = &sc;
  r.sessions = n;
  // Two full runs from the same seed: the replay gate IS the measurement —
  // a fingerprint mismatch means the session plane leaked nondeterminism
  // (container iteration order, time-dependent ids, ...).
  r.fleet = run_fleet(sc, n, seed);
  const FleetResult replay = run_fleet(sc, n, seed);
  r.replay_identical = replay.fingerprint == r.fleet.fingerprint;

  auto fail = [&r](const std::string& why) {
    r.ok = false;
    r.fail_reason += (r.fail_reason.empty() ? "" : "; ") + why;
  };
  if (!r.replay_identical) fail("same-seed replay diverged");
  if (r.fleet.door.post_play_admission_violations != 0) {
    fail("admission decided after PLAY");
  }
  if (r.fleet.responded != n) {
    fail(std::to_string(n - r.fleet.responded) + " clients got no answer");
  }
  if (r.fleet.door.setups_ok + r.fleet.door.rejected_453 != n) {
    fail("admissions not all decided at SETUP");
  }
  // Max is reported but the gate is population-level: at the ~90% CPU
  // utilization admission allows, one unlucky four-frame stream can pin the
  // max at 1.0 without the service degrading for anyone else.
  if (r.fleet.aggregate_violation_rate > 0.05) {
    fail("aggregate violation rate " +
         std::to_string(r.fleet.aggregate_violation_rate) + " exceeds 0.05");
  }
  if (r.fleet.frames_delivered == 0) fail("no media delivered at all");
  return r;
}

void write_json(const std::vector<CellResult>& cells, const std::string& path,
                std::uint64_t seed, unsigned jobs, bool all_ok) {
  std::ofstream out{path};
  if (!out) {
    std::printf("could not write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"session_churn_sweep\",\n";
  bench::write_stamp(out, jobs);
  out << "  \"seed\": " << seed << ",\n"
      << "  \"storm_window_sec\": " << kStormWindow.to_sec() << ",\n"
      << "  \"run_sec\": " << kRunFor.to_sec() << ",\n"
      << "  \"ok\": " << (all_ok ? "true" : "false") << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    const auto& d = c.fleet.door;
    char buf[1536];
    std::snprintf(
        buf, sizeof buf,
        "    {\"scenario\": \"%s\", \"sessions\": %zu,\n"
        "     \"requests\": %llu, \"setups_ok\": %llu, "
        "\"rejected_453\": %llu, \"reject_rate\": %.4f,\n"
        "     \"plays\": %llu, \"pauses\": %llu, \"resumes\": %llu, "
        "\"teardowns\": %llu, \"reaped_idle\": %llu, \"conn_closed\": %llu, "
        "\"eos\": %llu, \"stale_454\": %llu, \"bad_state_455\": %llu,\n"
        "     \"frames_pumped\": %llu, \"frames_delivered\": %llu, "
        "\"rtcp_reports\": %llu,\n"
        "     \"setup_ms_p50\": %.3f, \"setup_ms_p99\": %.3f, "
        "\"setup_ms_max\": %.3f,\n"
        "     \"max_violation_rate\": %.4f, "
        "\"aggregate_violation_rate\": %.6f, \"violating_streams\": %llu, "
        "\"post_play_admission_violations\": %llu, "
        "\"replay_identical\": %s,\n"
        "     \"ok\": %s%s%s%s}",
        c.scenario->name, c.sessions,
        static_cast<unsigned long long>(d.requests),
        static_cast<unsigned long long>(d.setups_ok),
        static_cast<unsigned long long>(d.rejected_453),
        c.sessions ? static_cast<double>(d.rejected_453) /
                         static_cast<double>(c.sessions)
                   : 0.0,
        static_cast<unsigned long long>(d.plays),
        static_cast<unsigned long long>(d.pauses),
        static_cast<unsigned long long>(d.resumes),
        static_cast<unsigned long long>(d.teardowns),
        static_cast<unsigned long long>(d.reaped_idle),
        static_cast<unsigned long long>(d.conn_closed),
        static_cast<unsigned long long>(d.eos),
        static_cast<unsigned long long>(d.stale_454),
        static_cast<unsigned long long>(d.bad_state_455),
        static_cast<unsigned long long>(d.frames_pumped),
        static_cast<unsigned long long>(c.fleet.frames_delivered),
        static_cast<unsigned long long>(c.fleet.rtcp_reports),
        c.fleet.setup_ms_p50, c.fleet.setup_ms_p99, c.fleet.setup_ms_max,
        c.fleet.max_violation_rate, c.fleet.aggregate_violation_rate,
        static_cast<unsigned long long>(c.fleet.violating_streams),
        static_cast<unsigned long long>(d.post_play_admission_violations),
        c.replay_identical ? "true" : "false", c.ok ? "true" : "false",
        c.ok ? "" : ", \"fail_reason\": \"", c.ok ? "" : c.fail_reason.c_str(),
        c.ok ? "" : "\"");
    out << buf << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      bench::out_path(argc, argv, "BENCH_session.json");
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 0x5E55);
  const unsigned jobs = bench::flag_jobs(argc, argv);
  const bool smoke = bench::flag_present(argc, argv, "smoke");

  struct CellSpec {
    const Scenario* sc;
    std::size_t sessions;
  };
  // --smoke keeps all three behavior mixes at a CI-budget fleet size; the
  // full grid adds the 100k storm cell the acceptance criteria name.
  const std::vector<CellSpec> specs =
      smoke ? std::vector<CellSpec>{{&kStorm, 1500},
                                    {&kSlowStart, 1500},
                                    {&kHalfOpen, 1500}}
            : std::vector<CellSpec>{{&kStorm, 20'000},
                                    {&kSlowStart, 20'000},
                                    {&kHalfOpen, 20'000},
                                    {&kStorm, 100'000}};

  std::printf("==== session churn sweep: scenario x sessions, seed=%llu, "
              "jobs=%u%s ====\n",
              static_cast<unsigned long long>(seed), jobs,
              smoke ? " (smoke)" : "");
  std::vector<CellResult> cells(specs.size());
  bench::run_cells(specs.size(), jobs, [&](std::size_t i) {
    // Distinct seed per cell, derived from the master — a function of the
    // cell's coordinates only, so parallel and sequential runs agree.
    std::uint64_t coord = specs[i].sessions;
    for (const char* p = specs[i].sc->name; *p; ++p) {
      coord = coord * 131 + static_cast<std::uint64_t>(*p);
    }
    cells[i] = run_cell(*specs[i].sc, specs[i].sessions, seed ^ coord);
  });

  std::printf("%10s %9s %9s %9s %9s %8s %9s %9s %10s %10s %7s %5s\n",
              "scenario", "sessions", "setup_ok", "rej453", "reaped", "eos",
              "frames", "p99_ms", "max_vrate", "agg_vrate", "replay", "ok");
  bool all_ok = true;
  for (const auto& c : cells) {
    std::printf(
        "%10s %9zu %9llu %9llu %9llu %8llu %9llu %9.2f %10.4f %10.6f %7s "
        "%5s\n",
        c.scenario->name, c.sessions,
        static_cast<unsigned long long>(c.fleet.door.setups_ok),
        static_cast<unsigned long long>(c.fleet.door.rejected_453),
        static_cast<unsigned long long>(c.fleet.door.reaped_idle),
        static_cast<unsigned long long>(c.fleet.door.eos),
        static_cast<unsigned long long>(c.fleet.frames_delivered),
        c.fleet.setup_ms_p99, c.fleet.max_violation_rate,
        c.fleet.aggregate_violation_rate, c.replay_identical ? "yes" : "NO",
        c.ok ? "yes" : "NO");
    if (!c.ok) {
      std::printf("           ^ FAIL: %s\n", c.fail_reason.c_str());
      all_ok = false;
    }
  }
  write_json(cells, out_path, seed, jobs, all_ok);
  return all_ok ? 0 : 1;
}
