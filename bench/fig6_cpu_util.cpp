// Figure 6 — Host CPU utilization variation with server load (perfmeter).
//
// Paper: with no web load the streaming host idles at ~15% average (peak
// ~35%); the "45% average utilization" load plateaus around 60-70%; the
// "60% average utilization" load exceeds 80% through the 40-80 s window.
// Two CPUs online, host-based DWCS bound to one of them.
#include "apps/experiments.hpp"
#include "bench_util.hpp"

#include <string>

using namespace nistream;

int main() {
  bench::header("Figure 6: CPU utilization variation with server load");

  for (const double target : {0.0, 0.45, 0.60}) {
    apps::LoadExperimentConfig cfg;
    cfg.target_utilization = target;
    const auto r = apps::run_host_load_experiment(cfg);
    std::printf("\n -- web load target: %s --\n",
                target == 0.0 ? "none" : (target == 0.45 ? "45%" : "60%"));
    bench::row("average utilization", target == 0.0 ? 15.0 : target * 100.0,
               r.avg_utilization, "%");
    bench::row("peak utilization",
               target == 0.0 ? 35.0 : (target == 0.45 ? 65.0 : 85.0),
               r.peak_utilization, "%");
    bench::print_series(r.cpu_utilization, "cpu_util_%", 20);
    bench::maybe_write_csv(r.cpu_utilization,
                           "fig6_util_" + std::to_string(int(target * 100)),
                           "cpu_util_pct");
  }
  bench::note("Shape: no-load < 45% < 60%; the 60% run exceeds 80% during");
  bench::note("the 40-80 s plateau, as in the paper's trace.");
  return 0;
}
