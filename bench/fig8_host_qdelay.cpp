// Figure 8 — Host-based scheduler: queuing delay vs frames sent under load.
//
// Paper: with no load the delay climbs to ~10,000 ms over the first ~300
// frames; at 45% load frames suffer ~2 s extra; at 60% the delay reaches up
// to three times the no-load value (~30,000 ms).
#include "apps/experiments.hpp"
#include "bench_util.hpp"

#include <string>

using namespace nistream;

namespace {

void print_qdelay(const std::vector<std::pair<std::uint64_t, double>>& q,
                  std::size_t max_rows = 15) {
  if (q.empty()) return;
  const std::size_t stride = q.size() > max_rows ? q.size() / max_rows : 1;
  std::printf("  %10s  %14s\n", "frame#", "qdelay_ms");
  for (std::size_t i = 0; i < q.size(); i += stride) {
    std::printf("  %10llu  %14.0f\n",
                static_cast<unsigned long long>(q[i].first), q[i].second);
  }
}

}  // namespace

int main() {
  bench::header("Figure 8: host scheduler queuing delay vs frames sent");

  double noload_max = 0;
  for (const double target : {0.0, 0.45, 0.60}) {
    apps::LoadExperimentConfig cfg;
    cfg.target_utilization = target;
    const auto r = apps::run_host_load_experiment(cfg);
    std::printf("\n -- web load target: %s --\n",
                target == 0.0 ? "none" : (target == 0.45 ? "45%" : "60%"));
    const double paper_max =
        target == 0.0 ? 10000.0 : (target == 0.45 ? 12000.0 : 30000.0);
    bench::row("s1 max queuing delay", paper_max, r.s1.max_qdelay_ms, "ms");
    bench::row("s1 delay at frame 300",
               target == 0.0 ? 10000.0 : (target == 0.45 ? 10500 : 11000),
               r.s1.qdelay_at_frame(300), "ms");
    if (target == 0.0) noload_max = r.s1.max_qdelay_ms;
    if (target == 0.60) {
      bench::row("60%-load max delay vs no-load", 3.0,
                 r.s1.max_qdelay_ms / noload_max, "x");
    }
    print_qdelay(r.s1.qdelay_ms);
    bench::maybe_write_frame_csv(
        r.s1.qdelay_ms, "fig8_qdelay_" + std::to_string(int(target * 100)),
        "qdelay_ms");
  }
  return 0;
}
