// Table 1 — Scheduler microbenchmarks, data cache DISABLED.
//
// Paper values (§4.2, Table 1), in microseconds:
//                         Software FP     Fixed Point
//   Total Sched time        19580.88        16425.36
//   Avg frame Sched time      129.67          108.48
//   Total time w/o Sched       5210.88         4583.28
//   Avg frame w/o Sched          34.6            30.35
#include "apps/experiments.hpp"
#include "bench_util.hpp"

using namespace nistream;

int main() {
  bench::header("Table 1: scheduler microbenchmarks (data cache disabled)");

  apps::MicrobenchConfig cfg;
  cfg.dcache_enabled = false;

  cfg.arith = dwcs::ArithMode::kSoftFloat;
  const auto soft = apps::run_microbench(cfg);
  std::printf(" Software FP:\n");
  bench::row("Total Sched time", 19580.88, soft.total_sched_us, "us");
  bench::row("Avg frame Sched time", 129.67, soft.avg_frame_sched_us, "us");
  bench::row("Total time w/o Scheduler", 5210.88, soft.total_wo_sched_us, "us");
  bench::row("Avg frame time w/o Scheduler", 34.6, soft.avg_frame_wo_sched_us,
             "us");

  cfg.arith = dwcs::ArithMode::kFixedPoint;
  const auto fixed = apps::run_microbench(cfg);
  std::printf(" Fixed Point:\n");
  bench::row("Total Sched time", 16425.36, fixed.total_sched_us, "us");
  bench::row("Avg frame Sched time", 108.48, fixed.avg_frame_sched_us, "us");
  bench::row("Total time w/o Scheduler", 4583.28, fixed.total_wo_sched_us, "us");
  bench::row("Avg frame time w/o Scheduler", 30.35,
             fixed.avg_frame_wo_sched_us, "us");

  std::printf(" Checks:\n");
  bench::row("FP-library overhead per decision (~20us)", 21.2,
             soft.avg_frame_sched_us - fixed.avg_frame_sched_us, "us");
  bench::row("Fixed-point overhead, cache off (~75us)", 78.1,
             fixed.overhead_us(), "us");
  return 0;
}
