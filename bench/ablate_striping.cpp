// Ablation: Tiger-style disk striping (paper §5).
//
// "DWCS could also take advantage of the stripe-based disk and machine
// scheduling methods advocated by the Tiger video server". The producer side
// of an NI is disk-bound when many streams pull from one spindle; striping
// the media volume across the board's SCSI ports multiplies the sustainable
// producer rate. We measure frames/second off the volume for 1..4 member
// disks under the media access pattern (64 KB stripe, 8 KB frames).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "hw/striped_volume.hpp"

using namespace nistream;
using sim::Time;

namespace {

double frames_per_second(int width) {
  sim::Engine eng;
  std::vector<std::unique_ptr<hw::ScsiDisk>> owned;
  std::vector<hw::ScsiDisk*> disks;
  for (int i = 0; i < width; ++i) {
    owned.push_back(std::make_unique<hw::ScsiDisk>(
        eng, hw::kScsiDisk, static_cast<std::uint64_t>(300 + i)));
    disks.push_back(owned.back().get());
  }
  hw::StripedVolume vol{eng, disks};
  // Interleaved multi-stream access: 8 concurrent readers sweeping separate
  // file regions (the worst case for a single spindle: every read seeks).
  constexpr int kReaders = 8;
  constexpr int kFramesEach = 60;
  constexpr std::uint32_t kFrameBytes = 8192;
  int done_readers = 0;
  for (int r = 0; r < kReaders; ++r) {
    [](sim::Engine&, hw::StripedVolume& v, int reader, int frames,
       int* done) -> sim::Coro {
      for (int k = 0; k < frames; ++k) {
        const std::uint64_t off =
            static_cast<std::uint64_t>(reader) * 400'000'000 +
            static_cast<std::uint64_t>(k) * 5'000'000;
        co_await v.read(off, kFrameBytes);
      }
      ++*done;
    }(eng, vol, r, kFramesEach, &done_readers)
        .detach();
  }
  const Time t = eng.run();
  (void)done_readers;
  return kReaders * kFramesEach / t.to_sec();
}

}  // namespace

int main() {
  bench::header("Ablation: striped media volume (producer-side disk bound)");
  std::printf("  %-8s %16s %10s\n", "disks", "frames/sec", "speedup");
  double base = 0;
  for (const int width : {1, 2, 3, 4}) {
    const double fps = frames_per_second(width);
    if (width == 1) base = fps;
    std::printf("  %-8d %16.1f %9.2fx\n", width, fps, fps / base);
  }
  bench::note("Stripe width multiplies the sustainable producer frame rate;");
  bench::note("the i960 RD's two SCSI ports buy ~2x before the NI CPU or the");
  bench::note("100 Mbps link becomes the binding constraint.");
  return 0;
}
