// Ablation: Tiger-style disk striping (paper §5).
//
// "DWCS could also take advantage of the stripe-based disk and machine
// scheduling methods advocated by the Tiger video server". The producer side
// of an NI is disk-bound when many streams pull from one spindle; striping
// the media volume across the board's SCSI ports multiplies the sustainable
// producer rate. We measure frames/second off the volume for 1..4 member
// disks under the media access pattern (64 KB stripe, 8 KB frames). Each
// reader is a path::FramePath over the striped volume — the same DiskStage
// the producer paths use.
//
// Reproducible from the command line:
//   `ablate_striping [out.json] [--seed=u64] [--out=path]`.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cli.hpp"
#include "hw/striped_volume.hpp"
#include "path/frame_path.hpp"

using namespace nistream;
using sim::Time;

namespace {

constexpr int kReaders = 8;
constexpr int kFramesEach = 60;
constexpr std::uint32_t kFrameBytes = 8192;

double frames_per_second(int width, std::uint64_t seed) {
  sim::Engine eng;
  std::vector<std::unique_ptr<hw::ScsiDisk>> owned;
  std::vector<hw::ScsiDisk*> disks;
  for (int i = 0; i < width; ++i) {
    owned.push_back(std::make_unique<hw::ScsiDisk>(
        eng, hw::kScsiDisk, seed + static_cast<std::uint64_t>(i)));
    disks.push_back(owned.back().get());
  }
  hw::StripedVolume vol{eng, disks};
  // Interleaved multi-stream access: 8 concurrent readers sweeping separate
  // file regions (the worst case for a single spindle: every read seeks).
  std::vector<std::unique_ptr<path::FramePath>> paths;
  std::vector<std::unique_ptr<path::PathStats>> stats;
  for (int r = 0; r < kReaders; ++r) {
    paths.push_back(std::make_unique<path::FramePath>(eng, "striped-read"));
    paths.back()->stage<path::DiskStage<hw::StripedVolume>>(vol);
    stats.push_back(std::make_unique<path::PathStats>());
    path::pump(*paths.back(),
               path::fixed_frame_source(
                   kFramesEach, kFrameBytes,
                   [r](std::uint64_t k) {
                     return static_cast<std::uint64_t>(r) * 400'000'000 +
                            k * 5'000'000;
                   },
                   /*stream=*/static_cast<dwcs::StreamId>(r),
                   path::Provenance::kStripedVolume),
               {}, *stats.back())
        .detach();
  }
  const Time t = eng.run();
  return kReaders * kFramesEach / t.to_sec();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = bench::out_path(argc, argv, "BENCH_striping.json");
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 300);

  bench::header("Ablation: striped media volume (producer-side disk bound)");
  std::printf("  %-8s %16s %10s\n", "disks", "frames/sec", "speedup");
  std::vector<std::pair<int, double>> rows;
  double base = 0;
  for (const int width : {1, 2, 3, 4}) {
    const double fps = frames_per_second(width, seed);
    if (width == 1) base = fps;
    std::printf("  %-8d %16.1f %9.2fx\n", width, fps, fps / base);
    rows.emplace_back(width, fps);
  }
  bench::note("Stripe width multiplies the sustainable producer frame rate;");
  bench::note("the i960 RD's two SCSI ports buy ~2x before the NI CPU or the");
  bench::note("100 Mbps link becomes the binding constraint.");

  std::ofstream json{out};
  if (json) {
    json << "{\n  \"seed\": " << seed << ",\n  \"readers\": " << kReaders
         << ",\n  \"frames_each\": " << kFramesEach
         << ",\n  \"frame_bytes\": " << kFrameBytes << ",\n  \"widths\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json << "    {\"disks\": " << rows[i].first
           << ", \"frames_per_sec\": " << rows[i].second
           << ", \"speedup\": " << rows[i].second / base << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("  wrote %s\n", out.c_str());
  }
  return 0;
}
