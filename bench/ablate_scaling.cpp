// Ablation: scheduler-overhead scaling with stream count (§6 future work:
// "bandwidth allocations for a large number of streams").
//
// Sweeps the number of concurrent streams and reports per-decision overhead
// of the embedded (i960, fixed-point, cache-on) scheduler configuration.
#include <cstdio>

#include "apps/experiments.hpp"
#include "bench_util.hpp"

using namespace nistream;

int main() {
  bench::header("Ablation: overhead scaling with stream count (dual-heap)");

  std::printf("  %8s %18s %18s\n", "streams", "avg sched (us)",
              "overhead (us)");
  for (const int n : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    apps::MicrobenchConfig cfg;
    cfg.arith = dwcs::ArithMode::kFixedPoint;
    cfg.dcache_enabled = true;
    cfg.n_streams = n;
    cfg.n_frames = n * 16;
    const auto r = apps::run_microbench(cfg);
    std::printf("  %8d %18.2f %18.2f\n", n, r.avg_frame_sched_us,
                r.overhead_us());
  }
  bench::note("Logarithmic growth with stream count: the dual-heap keeps the");
  bench::note("embedded scheduler viable well beyond the paper's testbed.");
  return 0;
}
