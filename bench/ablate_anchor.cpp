// Ablation: deadline anchoring — fixed grid vs completion-anchored.
//
// The paper defines the deadline as "the maximum allowable time between
// servicing consecutive packets". Two readings exist:
//  * grid:       D(k+1) = D(k) + T — long-run rate preserved exactly, but a
//                service stall makes every queued successor late at once
//                (a drop cascade on lossy streams);
//  * completion: D(k+1) = max(D(k), service time) + T — one late service
//                shifts the grid; successors get a fresh period.
// We inject a single scheduler stall into a paced stream and measure the
// damage under both anchorings.
//
// Reproducible from the command line:
//   `ablate_anchor [out.json] [--seed=u64] [--out=path]`.
// The scenario is fully deterministic (no randomness); --seed is accepted
// for CLI uniformity and recorded in the JSON for provenance.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cli.hpp"
#include "dwcs/scheduler.hpp"

using namespace nistream;
using sim::Time;

namespace {

struct Outcome {
  std::uint64_t on_time = 0;
  std::uint64_t dropped = 0;
  std::uint64_t violations = 0;
};

Outcome run(bool completion_anchor, int stall_ms) {
  dwcs::DwcsScheduler::Config cfg;
  cfg.deadline_from_completion = completion_anchor;
  cfg.ring_capacity = 600;
  dwcs::DwcsScheduler s{cfg};
  const auto id = s.create_stream(
      {.tolerance = {1, 8}, .period = Time::ms(10), .lossy = true},
      Time::zero());
  // A standing backlog (the pre-roll burst of the figure experiments)...
  for (std::uint64_t f = 0; f < 500; ++f) {
    s.enqueue(id,
              {.frame_id = f, .bytes = 1000, .type = mpeg::FrameType::kP,
               .enqueued_at = Time::zero()},
              Time::zero());
  }
  // ...served at its pace, with one `stall_ms` gap in the middle (the
  // scheduler was starved — what happens under Figure 7's load bursts).
  int t = 0;
  for (int step = 0; step < 500 && s.backlog(id) > 0; ++step) {
    t += (step == 250) ? stall_ms : 10;
    (void)s.schedule_next(Time::ms(t));
  }
  const auto& st = s.stats(id);
  return Outcome{st.serviced_on_time, st.dropped, st.violations};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = bench::out_path(argc, argv, "BENCH_anchor.json");
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 0);

  bench::header("Ablation: deadline anchoring after a scheduler stall");
  std::printf("  %-12s %-14s %10s %10s %12s\n", "anchoring", "stall (ms)",
              "on-time", "dropped", "violations");
  struct Row {
    bool anchor;
    int stall;
    Outcome o;
  };
  std::vector<Row> rows;
  for (const int stall : {50, 200, 500}) {
    for (const bool anchor : {false, true}) {
      const Outcome o = run(anchor, stall);
      std::printf("  %-12s %-14d %10llu %10llu %12llu\n",
                  anchor ? "completion" : "grid", stall,
                  static_cast<unsigned long long>(o.on_time),
                  static_cast<unsigned long long>(o.dropped),
                  static_cast<unsigned long long>(o.violations));
      rows.push_back({anchor, stall, o});
    }
  }
  bench::note("Grid anchoring charges the whole stall against the stream");
  bench::note("(drop cascade + violations); completion anchoring forgives the");
  bench::note("stall and only the frames due during it are lost.");

  std::ofstream json{out};
  if (json) {
    json << "{\n  \"seed\": " << seed << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      json << "    {\"anchoring\": \""
           << (r.anchor ? "completion" : "grid")
           << "\", \"stall_ms\": " << r.stall
           << ", \"on_time\": " << r.o.on_time
           << ", \"dropped\": " << r.o.dropped
           << ", \"violations\": " << r.o.violations << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("  wrote %s\n", out.c_str());
  }
  return 0;
}
