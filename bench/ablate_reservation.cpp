// Ablation: CPU reservations for the host scheduler (paper §5).
//
// "If DWCS performed its scheduling actions using a reservation-based CPU
// scheduler like that described in [Jones et al.], it would be able to
// closely couple its ... scheduling actions with the packet transmission
// actions required for packet streams." We give the host DWCS process a
// reservation (fraction of a CPU, replenished per period) and rerun the
// Figure 7 experiment at 60% web load: the reservation buys back most of the
// bandwidth the unreserved scheduler loses — the third point on the spectrum
// between "host scheduler" and "NI scheduler".
#include "apps/experiments.hpp"
#include "bench_util.hpp"

using namespace nistream;

int main() {
  bench::header("Ablation: CPU-reserved host scheduler under 60% web load");

  apps::LoadExperimentConfig base;
  base.target_utilization = 0.0;
  const auto unloaded = apps::run_host_load_experiment(base);

  std::printf("  %-26s %16s %16s\n", "configuration", "s1 settle (bps)",
              "vs no-load");
  std::printf("  %-26s %16.0f %15.2fx\n", "host, no load",
              unloaded.s1.settle_bandwidth_bps, 1.0);

  apps::LoadExperimentConfig loaded = base;
  loaded.target_utilization = 0.60;
  const auto no_resv = apps::run_host_load_experiment(loaded);
  std::printf("  %-26s %16.0f %15.2fx\n", "host, 60% load",
              no_resv.s1.settle_bandwidth_bps,
              no_resv.s1.settle_bandwidth_bps / unloaded.s1.settle_bandwidth_bps);

  for (const double resv : {0.1, 0.25}) {
    apps::LoadExperimentConfig cfg = loaded;
    cfg.scheduler_reservation = resv;
    const auto r = apps::run_host_load_experiment(cfg);
    std::printf("  host, 60%% load, resv %2.0f%% %16.0f %15.2fx\n",
                resv * 100, r.s1.settle_bandwidth_bps,
                r.s1.settle_bandwidth_bps / unloaded.s1.settle_bandwidth_bps);
  }

  apps::LoadExperimentConfig ni = loaded;
  const auto ni_r = apps::run_ni_load_experiment(ni);
  std::printf("  %-26s %16.0f %15.2fx\n", "NI scheduler, 60% load",
              ni_r.s1.settle_bandwidth_bps,
              ni_r.s1.settle_bandwidth_bps / unloaded.s1.settle_bandwidth_bps);

  bench::note("A modest reservation recovers most of the loss; the NI");
  bench::note("scheduler needs none — its CPU is structurally reserved.");
  return 0;
}
