// Parallel deterministic cell runner for the sweep benches.
//
// A sweep is a grid of independent cells, each a self-contained simulation
// (its own sim::Engine, seeded from the cell's coordinates). Cells therefore
// parallelize trivially — the only shared state in the simulation core is
// thread_local (the coroutine frame pool) or immutable (the null cost hook) —
// and the runner exploits that while keeping results DETERMINISTIC: workers
// pull cell indices from a shared counter, but every result is written to its
// cell's slot in a caller-owned, pre-sized vector, so the emitted table and
// JSON are in grid order (and, for pure-simulation sweeps, byte-identical)
// regardless of `--jobs` or thread scheduling.
//
// `--jobs 1` (or a single cell) runs on the calling thread with no thread
// machinery at all — exactly the historical sequential sweep.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "cli.hpp"

namespace nistream::bench {

/// Default worker count: one per hardware thread (never 0 — unknown
/// concurrency means sequential).
inline unsigned default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

/// Value of `--jobs=N`, defaulting to default_jobs(). 0 is treated as 1.
inline unsigned flag_jobs(int argc, char** argv) {
  const auto v = flag_u64(argc, argv, "jobs", default_jobs());
  if (v == 0) return 1;
  return static_cast<unsigned>(std::min<std::uint64_t>(v, 1024));
}

/// Run `fn(i)` for every i in [0, n), on up to `jobs` threads. Blocks until
/// all cells complete. `fn` must be callable concurrently from different
/// threads for distinct cells and must not throw (a sweep cell records its
/// failure in its result slot instead).
template <class Fn>
void run_cells(std::size_t n, unsigned jobs, Fn&& fn) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  const auto k = static_cast<unsigned>(
      std::min<std::size_t>(jobs, n));
  pool.reserve(k);
  for (unsigned t = 0; t < k; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
}

}  // namespace nistream::bench
