// Figure 7 — Host-based scheduler: per-stream bandwidth vs time under load.
//
// Paper: streams settle near 250 kbit/s with no load; at 45% average
// utilization bandwidth dips and settles ~230 kbit/s (-8%); at 60% it
// degrades severely, settling below 125 kbit/s (about half).
#include "apps/experiments.hpp"
#include "bench_util.hpp"

#include <string>

using namespace nistream;

int main() {
  bench::header("Figure 7: host scheduler bandwidth variation with load");

  double noload_settle = 0;
  for (const double target : {0.0, 0.45, 0.60}) {
    apps::LoadExperimentConfig cfg;
    cfg.target_utilization = target;
    const auto r = apps::run_host_load_experiment(cfg);
    std::printf("\n -- web load target: %s --\n",
                target == 0.0 ? "none" : (target == 0.45 ? "45%" : "60%"));
    const double paper_settle =
        target == 0.0 ? 250e3 : (target == 0.45 ? 230e3 : 120e3);
    bench::row("s1 settling bandwidth", paper_settle,
               r.s1.settle_bandwidth_bps, "bps");
    bench::row("s2 settling bandwidth", paper_settle,
               r.s2.settle_bandwidth_bps, "bps");
    if (target == 0.0) noload_settle = r.s1.settle_bandwidth_bps;
    if (target == 0.60) {
      bench::row("60%-load settle as fraction of no-load", 0.5,
                 r.s1.settle_bandwidth_bps / noload_settle, "x");
    }
    bench::print_series(r.s1.bandwidth_bps, "s1_bps", 20);
    bench::maybe_write_csv(r.s1.bandwidth_bps,
                           "fig7_bw_" + std::to_string(int(target * 100)),
                           "s1_bps");
  }
  return 0;
}
