// Ablation: coupled vs decoupled scheduling and dispatch (§3.1.1).
//
// "Scheduling and dispatch may be performed asynchronously with respect to
// each other. Asynchronous scheduling and dispatch may require an additional
// dispatch queue, but allows scheduling decisions to be made at a higher
// rate. Coupling scheduling and dispatch allows a single data structure to
// hold frame descriptors and conserves memory. Also, packets do not suffer
// additional queuing delay and jitter in dispatch queues."
//
// We run both organizations on the NI model and measure exactly those
// trade-offs: decision rate, extra dispatch-queue delay, jitter, and the
// extra descriptor memory.
#include <cstdio>

#include "bench_util.hpp"
#include "dwcs/hw_cost_hook.hpp"
#include "dwcs/scheduler.hpp"
#include "sim/stats.hpp"

using namespace nistream;
using sim::Time;

namespace {

struct Outcome {
  double decisions_per_frame_us;  // scheduling-decision latency per frame
  double mean_extra_delay_us;     // time spent in the dispatch queue
  std::size_t peak_queue_frames;  // extra descriptor storage needed
};

Outcome run(bool decoupled) {
  hw::CpuModel cpu{hw::kI960Rd};
  hw::Calibration cal;
  dwcs::CpuModelCostHook hook{cpu, cal.ni_int, cal.ni_softfp};
  dwcs::DwcsScheduler::Config cfg;
  constexpr int kStreams = 4;
  constexpr int kFrames = 4000;
  cfg.ring_capacity = kFrames / kStreams + 1;  // whole workload pre-loaded
  dwcs::DwcsScheduler sched{cfg, hook};
  std::vector<dwcs::StreamId> ids;
  for (int i = 0; i < kStreams; ++i) {
    // Tight periods keep the scheduler saturated relative to the wire.
    ids.push_back(sched.create_stream(
        {.tolerance = {1, 4}, .period = Time::us(300), .lossy = false},
        Time::zero()));
  }
  // The dispatch leg is wire-limited: driver cost plus the 100 Mbps
  // serialization of a ~3.3 KB frame (~300 us). In coupled mode the
  // scheduler sits through it; decoupled it keeps deciding.
  const std::int64_t decision_cy = 4100;
  const double hz = cpu.hz();
  const double decision_us = 1e6 * static_cast<double>(decision_cy) / hz;
  const double dispatch_us = 300.0;

  double now_us = 0;                  // scheduler-side clock
  double wire_free_at_us = 0;         // dispatcher availability
  sim::RunningStat extra_delay;
  std::size_t peak_q = 0;
  std::uint64_t fid = 0;

  for (int i = 0; i < kFrames; ++i) {
    sched.enqueue(ids[static_cast<std::size_t>(i % kStreams)],
                  dwcs::FrameDescriptor{.frame_id = fid++, .bytes = 1000,
                                        .type = mpeg::FrameType::kP,
                                        .enqueued_at = Time::zero()},
                  Time::zero());
  }
  int sent = 0;
  while (sent < kFrames) {
    const auto next = sched.earliest_backlog_deadline();
    if (!next) break;  // nothing left (defensive)
    if (next->to_us() > now_us) now_us = next->to_us();
    const auto d = sched.schedule_next(Time::us(now_us));
    if (!d) continue;
    now_us += decision_us;
    if (decoupled) {
      // Hand off to the dispatch queue; the dispatcher drains at wire rate.
      // The frame waits behind everything already committed to the wire.
      const double start = std::max(now_us, wire_free_at_us);
      wire_free_at_us = start + dispatch_us;
      extra_delay.add(start - now_us);
      const auto q_len = static_cast<std::size_t>(
          (wire_free_at_us - now_us) / dispatch_us);
      peak_q = std::max(peak_q, q_len);
    } else {
      // Coupled: the scheduler itself performs the dispatch before the next
      // decision — no queue, but the scheduler cycle absorbs the wire time.
      const double depart = std::max(now_us, wire_free_at_us) + dispatch_us;
      now_us = depart;
      wire_free_at_us = depart;
      extra_delay.add(0.0);
    }
    ++sent;
  }
  return Outcome{decision_us + (decoupled ? 0.0 : dispatch_us),
                 extra_delay.mean(), peak_q};
}

}  // namespace

int main() {
  bench::header("Ablation: coupled vs decoupled scheduling & dispatch");
  std::printf("  %-12s %20s %24s %16s\n", "mode", "sched cycle (us)",
              "dispatch-queue delay (us)", "peak queue");
  for (const bool decoupled : {false, true}) {
    const Outcome o = run(decoupled);
    std::printf("  %-12s %20.2f %24.2f %16zu\n",
                decoupled ? "decoupled" : "coupled", o.decisions_per_frame_us,
                o.mean_extra_delay_us, o.peak_queue_frames);
  }
  bench::note("Decoupling raises the decision rate (shorter scheduler cycle)");
  bench::note("at the price of dispatch-queue delay and extra descriptor");
  bench::note("memory for queued frames — the trade-off stated in §3.1.1.");
  return 0;
}
