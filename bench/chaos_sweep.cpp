// Chaos sweep: graceful degradation under injected faults, measured.
//
// A fault-rate × stream-count grid over the failover media server. Every
// cell runs the same deterministic scenario: paced producers feed MPEG-sized
// frames from the NI's disks through the NI-resident DWCS scheduler to a
// remote client, while the fault plane injects Ethernet loss/corruption, I2O
// message drops, PCI transaction errors, and disk faults at the cell's rate.
// Cells with a nonzero rate also crash the NI board mid-run and reboot it
// one second later, exercising the full watchdog-trip -> host-takeover ->
// fail-back cycle.
//
// What the JSON proves (the acceptance criteria of the fault-plane work):
//  * rate 0 == the old perfect world: zero faults injected, zero failovers;
//  * at >= 1% fault rates the watchdog completes failover AND failback, and
//    per-stream window violations stay bounded — QoS degrades, it does not
//    collapse.
// The bench exits nonzero when either property fails, so CI can gate on it.
//
// Reproducible from the command line:
//   chaos_sweep [out.json] [--seed=u64] [--jobs=N] [--smoke]
// Cells are independent simulations, so they run in parallel under --jobs
// (default: one worker per hardware thread); results are emitted in grid
// order, so the JSON is byte-identical for any job count (only its "jobs"
// stamp differs). --smoke shrinks the grid for CI gate runs.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "apps/client.hpp"
#include "apps/failover_server.hpp"
#include "bench_util.hpp"
#include "cli.hpp"
#include "fault/fault_plane.hpp"
#include "mpeg/frame.hpp"
#include "runner.hpp"

using namespace nistream;

namespace {

constexpr sim::Time kRunFor = sim::Time::sec(6);
constexpr sim::Time kCrashAt = sim::Time::sec(2);
constexpr sim::Time kRebootAfter = sim::Time::sec(1);
constexpr sim::Time kFramePeriod = sim::Time::ms(33);
constexpr std::uint32_t kFrameBytes = mpeg::kPaperFrameBytes;
// Frames fetched per disk I/O. Per-frame reads from interleaved streams pay a
// full seek+rotation (~4 ms) each, saturating two disks at 32 streams; block
// reads amortize the mechanical cost as a real media pump does.
constexpr std::uint32_t kFramesPerBlock = 8;

struct CellResult {
  double fault_rate = 0;
  std::size_t streams = 0;
  bool crash_scheduled = false;
  fault::FaultPlane::Summary faults;
  std::uint64_t frames_enqueued = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t frames_purged = 0;
  std::uint64_t violating_windows = 0;
  double max_stream_violation_rate = 0;
  std::uint64_t failovers = 0;
  std::uint64_t failbacks = 0;
  double failover_latency_ms = 0;
  double recovery_time_ms = 0;
  bool ok = true;
  std::string fail_reason;
};

/// Paced per-stream producer: prefetch the next frame from disk, then enqueue
/// it exactly on the period grid (a real pump reads ahead; pacing on
/// read-completion would drift by the read latency every period and smear
/// lateness into the rate-0 baseline). A rejected frame is NOT retried — it
/// stands in for a live source whose moment has passed (the router records it
/// as a drop against the stream's window).
sim::Coro chaos_producer(sim::Engine& engine, hw::ScsiDisk& disk,
                         apps::FailoverMediaServer& server, dwcs::StreamId id,
                         std::uint64_t disk_offset, sim::Time stagger,
                         sim::Time anchor, std::uint64_t* enqueued) {
  // Stagger admission phase so the per-disk block reads do not convoy on the
  // disk gate every refill cycle (real servers admit streams over time, not
  // in one burst).
  if (stagger > sim::Time::zero()) co_await sim::Delay{engine, stagger};
  std::uint64_t offset = disk_offset;
  co_await disk.read(offset, kFrameBytes * kFramesPerBlock);  // prime
  offset += kFrameBytes * kFramesPerBlock;
  // The pacing grid starts at `anchor` — fixed per stream, NOT at whatever
  // instant the primed read completed. Anchoring on read completion would
  // scatter grids by the (random) seek time, and any two streams landing
  // within the VCM's ~70 us serialized dispatch of each other would make
  // the later one structurally late on every frame. From the anchor on, any
  // lateness is caused by the system under test — disk contention, injected
  // faults, failover — never by the pump itself.
  sim::Time next = anchor;
  for (;;) {
    for (std::uint32_t k = 0; k < kFramesPerBlock; ++k) {
      if (engine.now() < next) {
        co_await sim::Delay{engine, next - engine.now()};
      }
      if (engine.now() >= kRunFor) co_return;
      if (server.enqueue(id, kFrameBytes, mpeg::FrameType::kP)) ++(*enqueued);
      next = next + kFramePeriod;
    }
    co_await disk.read(offset, kFrameBytes * kFramesPerBlock);
    offset += kFrameBytes * kFramesPerBlock;
  }
}

CellResult run_cell(double rate, std::size_t n_streams, std::uint64_t seed) {
  CellResult r;
  r.fault_rate = rate;
  r.streams = n_streams;
  r.crash_scheduled = rate > 0;

  sim::Engine eng;
  hostos::HostMachine host{eng, 2};
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  fault::FaultPlane plane{eng, fault::FaultProfile::uniform(rate, seed)};

  // Completion-anchored deadlines: with dozens of same-period streams the
  // VCM serializes near-tied dispatches at ~30 us each, so the last stream
  // in a tie is structurally a few tens of us past its own deadline. Grid
  // anchoring would turn that phase deficit into a permanent 100% drop rate
  // for that stream; completion anchoring absorbs it (see scheduler.hpp).
  apps::FailoverMediaServer::Config cfg;
  cfg.service.scheduler.deadline_from_completion = true;
  apps::FailoverMediaServer server{host, bus, ether, cfg};
  apps::MpegClient client{eng, ether};

  // Wire the injectors into every layer the frames traverse. Rate-0 cells
  // wire them too — proving the hooks are inert when the policy is zero.
  ether.set_fault(&plane.link());
  bus.set_fault(&plane.pci());
  server.ni().board().i2o().set_fault(&plane.i2o());
  server.ni().board().disk(0).set_fault(&plane.disk());
  server.ni().board().disk(1).set_fault(&plane.disk());
  server.ni().attach_health(plane.health());

  if (r.crash_scheduled) {
    plane.health().schedule_crash(kCrashAt, kRebootAfter);
  }

  sim::Trace dbg_trace{1u << 20};
  if (std::getenv("CHAOS_DEBUG") != nullptr) {
    server.ni().service().set_trace(sim::TraceSink{&dbg_trace});
  }

  std::uint64_t enqueued = 0;
  const std::size_t per_disk = (n_streams + 1) / 2;
  const double refill_us = kFramePeriod.to_us() * kFramesPerBlock;
  for (std::size_t i = 0; i < n_streams; ++i) {
    const auto id = server.create_stream(
        {.tolerance = {1, 4}, .period = kFramePeriod, .lossy = true},
        client.port());
    const auto stagger = sim::Time::us(
        refill_us * static_cast<double>(i / 2) / static_cast<double>(per_disk));
    // Grid anchor: stagger + a budget covering the worst-case fault-free
    // primed read (~9 ms) + a sub-period phase spreading the streams'
    // deadlines 733 us apart so no two fall within the VCM's serialized
    // dispatch window of each other.
    const auto anchor = stagger + sim::Time::ms(10) +
                        sim::Time::us(733.0 * static_cast<double>(i));
    chaos_producer(eng, server.ni().board().disk(static_cast<int>(i % 2)),
                   server, id, /*disk_offset=*/i * 0x0100'0000ull, stagger,
                   anchor, &enqueued)
        .detach();
  }

  eng.run_until(kRunFor);

  r.faults = plane.summary();
  r.frames_enqueued = enqueued;
  r.frames_delivered = client.total_frames();
  const auto m = server.metrics();
  r.frames_rejected = m.frames_rejected;
  r.frames_purged = m.frames_purged;
  r.failovers = m.failovers;
  r.failbacks = m.failbacks;
  r.failover_latency_ms = m.failover_latency_ms;
  r.recovery_time_ms = m.recovery_time_ms;
  r.violating_windows = server.monitor().total_violating_windows();
  for (std::size_t i = 0; i < n_streams; ++i) {
    const double vr =
        server.monitor().violation_rate(static_cast<dwcs::StreamId>(i));
    if (vr > r.max_stream_violation_rate) r.max_stream_violation_rate = vr;
  }

  if (std::getenv("CHAOS_DEBUG") != nullptr) {
    for (std::size_t i = 0; i < n_streams; ++i) {
      const auto sid = static_cast<dwcs::StreamId>(i);
      const auto& st = server.active().scheduler().stats(sid);
      std::printf(
          "  dbg stream %2zu: packets=%llu viol=%llu vrate=%.3f recv=%llu "
          "enq=%llu ontime=%llu late=%llu drop=%llu\n",
          i, static_cast<unsigned long long>(server.monitor().packets(sid)),
          static_cast<unsigned long long>(
              server.monitor().violating_windows(sid)),
          server.monitor().violation_rate(sid),
          static_cast<unsigned long long>(client.frames_received(sid)),
          static_cast<unsigned long long>(st.enqueued),
          static_cast<unsigned long long>(st.serviced_on_time),
          static_cast<unsigned long long>(st.serviced_late),
          static_cast<unsigned long long>(st.dropped));
    }
    // CHAOS_DEBUG_STREAM=<id> additionally dumps that stream's first few
    // service-trace records (enqueue/dispatch/drop timeline).
    if (const char* pick = std::getenv("CHAOS_DEBUG_STREAM")) {
      const auto want = std::strtoull(pick, nullptr, 10);
      int shown = 0;
      for (const auto& rec : dbg_trace.records()) {
        if (rec.a != want) continue;
        std::printf("  dbg trace t=%.3fms %s/%s stream=%llu frame=%llu\n",
                    rec.at.to_ms(), rec.category.c_str(), rec.label.c_str(),
                    static_cast<unsigned long long>(rec.a),
                    static_cast<unsigned long long>(rec.b));
        if (++shown >= 12) break;
      }
    }
  }

  // Pass/fail per cell.
  auto fail = [&r](const std::string& why) {
    r.ok = false;
    r.fail_reason += (r.fail_reason.empty() ? "" : "; ") + why;
  };
  if (rate == 0.0) {
    if (r.faults.total() != 0) fail("faults injected at rate 0");
    if (r.failovers != 0) fail("failover at rate 0");
    if (r.violating_windows != 0) fail("violations in the perfect world");
  } else {
    if (r.faults.total() == 0) fail("no faults injected at nonzero rate");
    if (r.failovers == 0) fail("watchdog never tripped on a dead board");
    if (r.failbacks == 0) fail("NI never re-instated after reboot");
    // "Bounded" = degradation, not collapse: even with the board dead for
    // over a second of a six-second run, most window positions must hold.
    if (r.max_stream_violation_rate > 0.5) {
      fail("violation rate " + std::to_string(r.max_stream_violation_rate) +
           " exceeds 0.5 on some stream");
    }
    if (r.frames_delivered < r.frames_enqueued / 2) {
      fail("fewer than half the enqueued frames were delivered");
    }
  }
  return r;
}

void write_json(const std::vector<CellResult>& cells, const std::string& path,
                std::uint64_t seed, unsigned jobs, bool all_ok) {
  std::ofstream out{path};
  if (!out) {
    std::printf("could not write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"chaos_sweep\",\n";
  bench::write_stamp(out, jobs);
  out << "  \"seed\": " << seed << ",\n"
      << "  \"run_sec\": " << kRunFor.to_sec() << ",\n"
      << "  \"crash_at_sec\": " << kCrashAt.to_sec() << ",\n"
      << "  \"reboot_after_sec\": " << kRebootAfter.to_sec() << ",\n"
      << "  \"ok\": " << (all_ok ? "true" : "false") << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "    {\"fault_rate\": %g, \"streams\": %zu, \"crash\": %s,\n"
        "     \"faults_injected\": %llu, \"frames_dropped\": %llu, "
        "\"frames_corrupted\": %llu, \"i2o_dropped\": %llu, "
        "\"pci_errors\": %llu, \"disk_read_errors\": %llu, "
        "\"disk_spikes\": %llu,\n"
        "     \"enqueued\": %llu, \"delivered\": %llu, \"rejected\": %llu, "
        "\"purged\": %llu,\n"
        "     \"violating_windows\": %llu, \"max_violation_rate\": %.4f,\n"
        "     \"failovers\": %llu, \"failbacks\": %llu, "
        "\"failover_latency_ms\": %.3f, \"recovery_time_ms\": %.3f,\n"
        "     \"ok\": %s%s%s%s}",
        c.fault_rate, c.streams, c.crash_scheduled ? "true" : "false",
        static_cast<unsigned long long>(c.faults.total()),
        static_cast<unsigned long long>(c.faults.frames_dropped),
        static_cast<unsigned long long>(c.faults.frames_corrupted),
        static_cast<unsigned long long>(c.faults.i2o_inbound_dropped +
                                        c.faults.i2o_outbound_dropped),
        static_cast<unsigned long long>(c.faults.pci_errors),
        static_cast<unsigned long long>(c.faults.disk_read_errors),
        static_cast<unsigned long long>(c.faults.disk_spikes),
        static_cast<unsigned long long>(c.frames_enqueued),
        static_cast<unsigned long long>(c.frames_delivered),
        static_cast<unsigned long long>(c.frames_rejected),
        static_cast<unsigned long long>(c.frames_purged),
        static_cast<unsigned long long>(c.violating_windows),
        c.max_stream_violation_rate,
        static_cast<unsigned long long>(c.failovers),
        static_cast<unsigned long long>(c.failbacks), c.failover_latency_ms,
        c.recovery_time_ms, c.ok ? "true" : "false",
        c.ok ? "" : ", \"fail_reason\": \"", c.ok ? "" : c.fail_reason.c_str(),
        c.ok ? "" : "\"");
    out << buf << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      bench::out_path(argc, argv, "BENCH_chaos.json");
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 0xFA017);
  const unsigned jobs = bench::flag_jobs(argc, argv);
  const bool smoke = bench::flag_present(argc, argv, "smoke");

  // --smoke keeps one perfect-world cell and one faulted cell: enough to
  // exercise both acceptance branches on a CI time budget.
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.01, 0.05};
  const std::vector<std::size_t> stream_counts =
      smoke ? std::vector<std::size_t>{8} : std::vector<std::size_t>{8, 32};

  struct CellSpec {
    double rate;
    std::size_t streams;
  };
  std::vector<CellSpec> specs;
  for (const double rate : rates) {
    for (const std::size_t n : stream_counts) specs.push_back({rate, n});
  }

  std::printf("==== chaos sweep: fault rate x streams, seed=%llu, "
              "jobs=%u%s ====\n",
              static_cast<unsigned long long>(seed), jobs,
              smoke ? " (smoke)" : "");
  std::vector<CellResult> cells(specs.size());
  bench::run_cells(specs.size(), jobs, [&](std::size_t i) {
    // Distinct seed per cell, derived from the master — a function of the
    // cell's coordinates only, so parallel and sequential runs agree.
    const std::uint64_t cell_seed =
        seed ^ (static_cast<std::uint64_t>(specs[i].rate * 1000) << 32) ^
        specs[i].streams;
    cells[i] = run_cell(specs[i].rate, specs[i].streams, cell_seed);
  });

  std::printf("%8s %8s %8s %10s %10s %8s %10s %12s %10s %5s\n", "rate",
              "streams", "faults", "delivered", "rejected", "viol",
              "max_vrate", "failover_ms", "recov_ms", "ok");
  bool all_ok = true;
  for (const auto& c : cells) {
    std::printf("%8g %8zu %8llu %10llu %10llu %8llu %10.4f %12.2f %10.2f %5s\n",
                c.fault_rate, c.streams,
                static_cast<unsigned long long>(c.faults.total()),
                static_cast<unsigned long long>(c.frames_delivered),
                static_cast<unsigned long long>(c.frames_rejected),
                static_cast<unsigned long long>(c.violating_windows),
                c.max_stream_violation_rate, c.failover_latency_ms,
                c.recovery_time_ms, c.ok ? "yes" : "NO");
    if (!c.ok) {
      std::printf("         ^ FAIL: %s\n", c.fail_reason.c_str());
      all_ok = false;
    }
  }
  write_json(cells, out_path, seed, jobs, all_ok);
  return all_ok ? 0 : 1;
}
