// Ablation: schedule-representation data structures (§3.1.1).
//
// "This allows different data structures to be used for experimentation
// (FCFS circular buffers, sorted lists, heaps or calendar queues)". We run
// the Table 2 microbenchmark under every representation and also sweep the
// stream count, showing where the O(n) structures cross over the heaps.
#include <cstdio>

#include "apps/experiments.hpp"
#include "bench_util.hpp"
#include "dwcs/repr.hpp"

using namespace nistream;

int main() {
  bench::header("Ablation: schedule representation (Table 2 conditions)");

  const dwcs::ReprKind kinds[] = {
      dwcs::ReprKind::kDualHeap, dwcs::ReprKind::kSingleHeap,
      dwcs::ReprKind::kSortedList, dwcs::ReprKind::kCalendarQueue,
      dwcs::ReprKind::kFcfs};

  std::printf("  %-16s", "streams");
  for (const auto k : kinds) std::printf(" %14s", dwcs::to_string(k));
  std::printf("   (avg frame sched time, us)\n");

  for (const int n_streams : {2, 4, 8, 16, 32, 64}) {
    std::printf("  %-16d", n_streams);
    for (const auto kind : kinds) {
      apps::MicrobenchConfig cfg;
      cfg.arith = dwcs::ArithMode::kFixedPoint;
      cfg.dcache_enabled = true;
      cfg.n_streams = n_streams;
      cfg.n_frames = n_streams * 38;  // constant frames per stream
      // Representation is a scheduler config knob:
      // run_microbench uses cfg.cal defaults; set via a custom config.
      cfg.repr = kind;
      const auto r = apps::run_microbench(cfg);
      std::printf(" %14.2f", r.avg_frame_sched_us);
    }
    std::printf("\n");
  }
  bench::note("Heaps stay near-flat in stream count; the sorted list grows");
  bench::note("linearly; FCFS is cheap but ignores the scheduling attributes.");
  return 0;
}
