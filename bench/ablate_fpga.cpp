// Ablation: FPGA-assisted scheduling (paper §6 future work).
//
// "We are looking at ways of improving scheduling decision time using FPGAs
// (Field Programmable Gate Arrays) to augment CoProcessor functionality."
// We model two augmentation levels against the stock i960 build:
//   * compare-unit: the window-constraint comparisons (the cross-multiplies
//     and deadline compares) execute in single-cycle combinational logic;
//   * priority-queue: additionally, the heap lives in a hardware systolic
//     priority queue, removing the scheduler's decision-loop overhead down
//     to a residual of control software.
#include "apps/experiments.hpp"
#include "bench_util.hpp"

using namespace nistream;

int main() {
  bench::header("Ablation: FPGA-assisted scheduling decision time");

  apps::MicrobenchConfig stock;
  stock.arith = dwcs::ArithMode::kFixedPoint;
  stock.dcache_enabled = true;
  const auto base = apps::run_microbench(stock);

  // Compare-unit offload: every arithmetic op is one cycle.
  apps::MicrobenchConfig cmp_unit = stock;
  cmp_unit.cal.ni_int = hw::ArithCosts{1, 1, 1, 1};
  cmp_unit.cal.ni_softfp = hw::ArithCosts{1, 1, 1, 1};
  const auto cmp_result = apps::run_microbench(cmp_unit);

  // Hardware priority queue: decision control flow collapses to a residual
  // (issue + readback of the hardware queue head).
  apps::MicrobenchConfig hw_pq = cmp_unit;
  hw_pq.decision_overhead_cycles = 600;
  const auto pq_result = apps::run_microbench(hw_pq);

  std::printf("  %-28s %18s %16s\n", "configuration", "avg sched (us)",
              "overhead (us)");
  std::printf("  %-28s %18.2f %16.2f\n", "stock i960 (Table 2)",
              base.avg_frame_sched_us, base.overhead_us());
  std::printf("  %-28s %18.2f %16.2f\n", "FPGA compare unit",
              cmp_result.avg_frame_sched_us, cmp_result.overhead_us());
  std::printf("  %-28s %18.2f %16.2f\n", "FPGA priority queue",
              pq_result.avg_frame_sched_us, pq_result.overhead_us());

  bench::note("An FPGA compare unit trims the arithmetic; the big win needs");
  bench::note("the priority queue in hardware, cutting the ~65 us software");
  bench::note("decision to a residual dominated by memory traffic.");
  return 0;
}
