// Cluster chaos sweep: NI-to-NI failover under a scripted board crash,
// measured across cluster sizes and load levels.
//
// Each cell builds a ClusterControlPlane over N scheduler-NIs, admits a
// stream population (capacity shaped by an inflated per-frame CPU cost so
// the interesting spill regimes are reachable with few streams), crashes
// board 0 at 2 s, reboots it at 3 s, and runs to 6 s. Every cell runs
// TWICE with the same seed and the two charge fingerprints must be
// identical — replay determinism is an acceptance criterion, not a test
// afterthought.
//
// What the JSON proves (the acceptance criteria of the cluster work):
//  * while siblings have admission headroom, host takeovers == 0 — the
//    board death is absorbed NI-to-NI, the host stays out of the data path;
//  * a deliberately tight cell (every sibling full) spills the remainder to
//    the host instead of refusing service;
//  * re-admission completes within 2x the single-board failover detection
//    latency (~251 ms in PR 2's chaos sweep -> 502 ms bound);
//  * one scripted crash -> exactly one failover and, after the reboot, one
//    fail-back with every migrated stream drained home.
// The bench exits nonzero when any property fails, so CI can gate on it.
//
// Reproducible from the command line:
//   cluster_chaos_sweep [--out out.json] [--seed=u64] [--jobs=N] [--smoke]
// Cells are independent simulations and run in parallel under --jobs;
// results are emitted in grid order, so the JSON is byte-identical for any
// job count (only its "jobs" stamp differs). --smoke trims the grid to one
// headroom cell and the spill cell for CI gate runs.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/client.hpp"
#include "bench_util.hpp"
#include "cli.hpp"
#include "cluster/control_plane.hpp"
#include "fault/board_health.hpp"
#include "runner.hpp"
#include "sim/random.hpp"

using namespace nistream;

namespace {

constexpr sim::Time kRunFor = sim::Time::sec(6);
constexpr sim::Time kCrashAt = sim::Time::sec(2);
constexpr sim::Time kRebootAfter = sim::Time::sec(1);
constexpr sim::Time kFramePeriod = sim::Time::ms(33);
// Inflated per-frame NI CPU cost: 3.3 ms at a 33 ms period = 0.1 CPU per
// stream, so one board holds 9 streams under the 0.90 headroom. Small
// per-board capacity keeps the spill cells cheap to run while exercising
// exactly the same re-admission arithmetic as a 300-stream board would.
constexpr sim::Time kPerFrameCpu = sim::Time::us(3300);
constexpr std::size_t kPerBoardCapacity = 9;

struct CellSpec {
  int boards;
  std::size_t streams;
  /// Expected spill count with board 0 dead: victims that exceed the
  /// surviving boards' joint headroom.
  bool expect_spill;
};

struct CellResult {
  CellSpec spec{};
  std::uint64_t streams_placed = 0;
  std::uint64_t frames_enqueued = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t frames_purged = 0;
  std::uint64_t violating_windows = 0;
  std::uint64_t failovers = 0;
  std::uint64_t failbacks = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t drainbacks_completed = 0;
  std::uint64_t host_takeovers = 0;
  std::uint64_t stale_adoptions = 0;
  double failover_latency_ms = 0;
  double readmission_complete_ms = 0;
  double recovery_time_ms = 0;
  std::uint64_t charge_fingerprint = 0;  // summed per-board CPU cycles
  bool replay_identical = true;
  bool ok = true;
  std::string fail_reason;
};

sim::Coro paced_producer(sim::Engine& eng, cluster::ClusterControlPlane& plane,
                         cluster::GlobalStreamId id, std::uint64_t seed,
                         sim::Time phase, std::uint64_t* enqueued) {
  sim::Rng rng{seed};
  co_await sim::Delay{eng, kFramePeriod + phase};
  for (;;) {
    if (eng.now() >= kRunFor) co_return;
    const auto bytes = static_cast<std::uint32_t>(
        std::max(128.0, rng.normal(1000.0, 150.0)));
    if (plane.enqueue(id, bytes, mpeg::FrameType::kP)) ++(*enqueued);
    co_await sim::Delay{eng, kFramePeriod};
  }
}

CellResult run_once(const CellSpec& spec, std::uint64_t seed) {
  CellResult r;
  r.spec = spec;

  sim::Engine eng;
  hostos::HostMachine host{eng, 2};
  hw::EthernetSwitch ether{eng};
  apps::MpegClient client{eng, ether};

  cluster::ClusterControlPlane::Config cfg;
  cfg.boards = spec.boards;
  cfg.service.scheduler.deadline_from_completion = true;
  cfg.per_frame_cpu = kPerFrameCpu;
  cluster::ClusterControlPlane plane{host, ether, cfg};

  std::vector<std::unique_ptr<fault::BoardHealth>> health;
  for (int b = 0; b < spec.boards; ++b) {
    health.push_back(std::make_unique<fault::BoardHealth>(eng));
    plane.attach_health(b, *health.back());
  }
  health[0]->schedule_crash(kCrashAt, kRebootAfter);

  std::uint64_t enqueued = 0;
  for (std::size_t i = 0; i < spec.streams; ++i) {
    const auto id = plane.open_stream(
        {.tolerance = {1, 4}, .period = kFramePeriod, .lossy = true}, 1000,
        client.port());
    if (!id) continue;
    paced_producer(eng, plane, *id, seed ^ (0x9E3779B97F4A7C15ull * (i + 1)),
                   sim::Time::us(733.0 * static_cast<double>(i)), &enqueued)
        .detach();
  }
  eng.run_until(kRunFor);

  const auto& m = plane.metrics();
  r.streams_placed = plane.streams_opened();
  r.frames_enqueued = enqueued;
  r.frames_delivered = client.total_frames();
  r.frames_rejected = m.frames_rejected;
  r.frames_purged = m.frames_purged;
  r.violating_windows = plane.monitor().total_violating_windows();
  r.failovers = m.failovers;
  r.failbacks = m.failbacks;
  r.migrations_completed = m.migrations_completed;
  r.drainbacks_completed = m.drainbacks_completed;
  r.host_takeovers = m.host_takeover_streams;
  r.stale_adoptions = m.stale_adoptions;
  r.failover_latency_ms = m.failover_latency_ms;
  r.readmission_complete_ms = m.readmission_complete_ms;
  r.recovery_time_ms = m.recovery_time_ms;
  for (int b = 0; b < spec.boards; ++b) {
    r.charge_fingerprint += static_cast<std::uint64_t>(
        plane.ni(b).board().cpu().cycles());
  }
  return r;
}

CellResult run_cell(const CellSpec& spec, std::uint64_t seed) {
  // Same-seed replay: the control plane's choreography must be
  // deterministic down to the charge stream.
  CellResult r = run_once(spec, seed);
  const CellResult again = run_once(spec, seed);
  r.replay_identical =
      r.charge_fingerprint == again.charge_fingerprint &&
      r.frames_delivered == again.frames_delivered &&
      r.violating_windows == again.violating_windows &&
      r.migrations_completed == again.migrations_completed &&
      r.host_takeovers == again.host_takeovers;

  auto fail = [&r](const std::string& why) {
    r.ok = false;
    r.fail_reason += (r.fail_reason.empty() ? "" : "; ") + why;
  };
  if (!r.replay_identical) fail("same-seed replay diverged");
  if (r.failovers != 1) fail("expected exactly one failover");
  if (r.failbacks != 1) fail("expected exactly one fail-back after reboot");
  if (spec.expect_spill) {
    if (r.host_takeovers == 0) {
      fail("tight cell should have spilled to the host");
    }
  } else {
    // The headline property: siblings with headroom absorb the board death
    // entirely — the host never enters the data path.
    if (r.host_takeovers != 0) {
      fail("host takeover despite sibling headroom");
    }
  }
  // Re-admission bound: 2x the single-board failover detection latency
  // measured by PR 2's chaos sweep (~251 ms).
  if (r.readmission_complete_ms <= 0 || r.readmission_complete_ms > 502.0) {
    fail("re-admission took " + std::to_string(r.readmission_complete_ms) +
         " ms (bound 502)");
  }
  if (r.frames_delivered < r.frames_enqueued / 2) {
    fail("fewer than half the enqueued frames were delivered");
  }
  return r;
}

void write_json(const std::vector<CellResult>& cells, const std::string& path,
                std::uint64_t seed, unsigned jobs, bool all_ok) {
  std::ofstream out{path};
  if (!out) {
    std::printf("could not write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"cluster_chaos_sweep\",\n";
  bench::write_stamp(out, jobs);
  out << "  \"seed\": " << seed << ",\n"
      << "  \"run_sec\": " << kRunFor.to_sec() << ",\n"
      << "  \"crash_at_sec\": " << kCrashAt.to_sec() << ",\n"
      << "  \"reboot_after_sec\": " << kRebootAfter.to_sec() << ",\n"
      << "  \"per_board_capacity\": " << kPerBoardCapacity << ",\n"
      << "  \"ok\": " << (all_ok ? "true" : "false") << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "    {\"boards\": %d, \"streams\": %zu, \"expect_spill\": %s,\n"
        "     \"placed\": %llu, \"enqueued\": %llu, \"delivered\": %llu, "
        "\"rejected\": %llu, \"purged\": %llu,\n"
        "     \"violating_windows\": %llu, \"failovers\": %llu, "
        "\"failbacks\": %llu, \"migrations\": %llu, \"drainbacks\": %llu, "
        "\"host_takeovers\": %llu, \"stale_adoptions\": %llu,\n"
        "     \"failover_latency_ms\": %.3f, "
        "\"readmission_complete_ms\": %.3f, \"recovery_time_ms\": %.3f,\n"
        "     \"charge_fingerprint\": %llu, \"replay_identical\": %s, "
        "\"ok\": %s%s%s%s}",
        c.spec.boards, c.spec.streams, c.spec.expect_spill ? "true" : "false",
        static_cast<unsigned long long>(c.streams_placed),
        static_cast<unsigned long long>(c.frames_enqueued),
        static_cast<unsigned long long>(c.frames_delivered),
        static_cast<unsigned long long>(c.frames_rejected),
        static_cast<unsigned long long>(c.frames_purged),
        static_cast<unsigned long long>(c.violating_windows),
        static_cast<unsigned long long>(c.failovers),
        static_cast<unsigned long long>(c.failbacks),
        static_cast<unsigned long long>(c.migrations_completed),
        static_cast<unsigned long long>(c.drainbacks_completed),
        static_cast<unsigned long long>(c.host_takeovers),
        static_cast<unsigned long long>(c.stale_adoptions),
        c.failover_latency_ms, c.readmission_complete_ms, c.recovery_time_ms,
        static_cast<unsigned long long>(c.charge_fingerprint),
        c.replay_identical ? "true" : "false", c.ok ? "true" : "false",
        c.ok ? "" : ", \"fail_reason\": \"", c.ok ? "" : c.fail_reason.c_str(),
        c.ok ? "" : "\"");
    out << buf << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      bench::out_path(argc, argv, "BENCH_cluster.json");
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 0xC1A57);
  const unsigned jobs = bench::flag_jobs(argc, argv);
  const bool smoke = bench::flag_present(argc, argv, "smoke");

  // Cells: (boards, streams). Light cells leave sibling headroom (board 0's
  // share fits on the survivors); the tight 2-board cell fills both boards
  // so the evacuation must spill. --smoke keeps one of each regime.
  const std::vector<CellSpec> cells_spec =
      smoke ? std::vector<CellSpec>{
                  {.boards = 3, .streams = 6, .expect_spill = false},
                  {.boards = 2, .streams = 18, .expect_spill = true},
              }
            : std::vector<CellSpec>{
                  {.boards = 3, .streams = 6, .expect_spill = false},
                  {.boards = 3, .streams = 12, .expect_spill = false},
                  {.boards = 2, .streams = 8, .expect_spill = false},
                  {.boards = 2, .streams = 18, .expect_spill = true},
              };

  std::printf("==== cluster chaos sweep: NI-to-NI failover, seed=%llu, "
              "jobs=%u%s ====\n",
              static_cast<unsigned long long>(seed), jobs,
              smoke ? " (smoke)" : "");
  std::vector<CellResult> cells(cells_spec.size());
  bench::run_cells(cells_spec.size(), jobs, [&](std::size_t i) {
    const auto& spec = cells_spec[i];
    const std::uint64_t cell_seed =
        seed ^ (static_cast<std::uint64_t>(spec.boards) << 32) ^ spec.streams;
    cells[i] = run_cell(spec, cell_seed);
  });

  std::printf("%7s %8s %7s %10s %9s %6s %6s %6s %11s %11s %7s %5s\n", "boards",
              "streams", "placed", "delivered", "migrated", "drain", "spill",
              "viol", "detect_ms", "readmit_ms", "replay", "ok");
  bool all_ok = true;
  for (const auto& c : cells) {
    std::printf("%7d %8zu %7llu %10llu %9llu %6llu %6llu %6llu %11.2f %11.2f "
                "%7s %5s\n",
                c.spec.boards, c.spec.streams,
                static_cast<unsigned long long>(c.streams_placed),
                static_cast<unsigned long long>(c.frames_delivered),
                static_cast<unsigned long long>(c.migrations_completed),
                static_cast<unsigned long long>(c.drainbacks_completed),
                static_cast<unsigned long long>(c.host_takeovers),
                static_cast<unsigned long long>(c.violating_windows),
                c.failover_latency_ms, c.readmission_complete_ms,
                c.replay_identical ? "same" : "DIFF", c.ok ? "yes" : "NO");
    if (!c.ok) {
      std::printf("        ^ FAIL: %s\n", c.fail_reason.c_str());
      all_ok = false;
    }
  }
  write_json(cells, out_path, seed, jobs, all_ok);
  return all_ok ? 0 : 1;
}
