// Figure 10 — NI-based scheduler queuing delay: "unaffected by system load".
//
// Paper: maximum queuing delay ~11,000 ms for s1 (cf. ~10,000 ms for the
// host-based scheduler without load, Figure 8), identical with and without
// the 60% web load on the host.
#include "apps/experiments.hpp"
#include "bench_util.hpp"

using namespace nistream;

int main() {
  bench::header("Figure 10: NI scheduler queuing delay, immune to host load");

  apps::LoadExperimentConfig unloaded;
  unloaded.target_utilization = 0.0;
  const auto base = apps::run_ni_load_experiment(unloaded);

  apps::LoadExperimentConfig loaded;
  loaded.target_utilization = 0.60;
  const auto under_load = apps::run_ni_load_experiment(loaded);

  std::printf(" -- no web load --\n");
  bench::row("s1 max queuing delay", 11000.0, base.s1.max_qdelay_ms, "ms");
  std::printf(" -- 60%% web load on the host --\n");
  bench::row("s1 max queuing delay", 11000.0, under_load.s1.max_qdelay_ms,
             "ms");
  bench::row("s2 max queuing delay", 11000.0, under_load.s2.max_qdelay_ms,
             "ms");

  std::printf(" Checks:\n");
  bench::row("loaded/unloaded max-delay ratio (immunity)", 1.0,
             under_load.s1.max_qdelay_ms / base.s1.max_qdelay_ms, "x");

  bench::maybe_write_frame_csv(under_load.s1.qdelay_ms, "fig10_qdelay_loaded",
                               "qdelay_ms");
  std::printf("  %10s  %14s\n", "frame#", "qdelay_ms");
  const auto& q = under_load.s1.qdelay_ms;
  const std::size_t stride = q.size() > 15 ? q.size() / 15 : 1;
  for (std::size_t i = 0; i < q.size(); i += stride) {
    std::printf("  %10llu  %14.0f\n",
                static_cast<unsigned long long>(q[i].first), q[i].second);
  }
  return 0;
}
