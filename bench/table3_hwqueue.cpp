// Table 3 — Scheduler microbenchmarks with frame descriptors in the i960's
// memory-mapped "hardware queue" registers (1004 x 32-bit), data cache
// enabled, fixed-point build.
//
// Paper values (§4.2.1, Table 3), microseconds:
//   Total Sched time          14569.68
//   Avg frame Sched time      72.48, 96.48   (two reported runs)
//   Total time w/o Scheduler   4199.04
//   Avg frame w/o Scheduler      27.80
//
// The finding to reproduce: descriptor access through the register file is
// *comparable* to pinned cacheable memory (Table 2) — on-chip registers cost
// no external bus cycles, much like warm cache lines.
#include "apps/experiments.hpp"
#include "bench_util.hpp"

using namespace nistream;

int main() {
  bench::header("Table 3: 'hardware queue' descriptor microbenchmarks");

  apps::MicrobenchConfig cfg;
  cfg.arith = dwcs::ArithMode::kFixedPoint;
  cfg.dcache_enabled = true;
  cfg.residency = dwcs::DescriptorResidency::kHardwareQueue;
  const auto hwq = apps::run_microbench(cfg);

  bench::row("Total Sched time", 14569.68, hwq.total_sched_us, "us");
  bench::row("Avg frame Sched time", 96.48, hwq.avg_frame_sched_us, "us");
  bench::row("Total time w/o Scheduler", 4199.04, hwq.total_wo_sched_us, "us");
  bench::row("Avg frame time w/o Scheduler", 27.80,
             hwq.avg_frame_wo_sched_us, "us");

  cfg.residency = dwcs::DescriptorResidency::kPinnedMemory;
  const auto pinned = apps::run_microbench(cfg);
  std::printf(" Checks (comparable to Table 2's pinned-memory numbers):\n");
  bench::row("Avg sched time delta vs pinned memory", 96.48 - 94.60,
             hwq.avg_frame_sched_us - pinned.avg_frame_sched_us, "us");
  bench::note("Register-file descriptors perform comparably to pinned memory");
  bench::note("with a warm d-cache: neither pays external bus cycles.");
  return 0;
}
