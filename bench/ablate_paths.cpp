// Ablation: the frame-transfer paths of Figure 3 — plus the distributed
// path the paper's §1 adds — compared on one table: per-frame latency and
// which server resources each path consumes.
//
//   A: disk -> host CPU/fs -> I/O bus -> host NIC -> network
//   B: NI disk -> PCI peer-to-peer -> scheduler NI -> network
//   C: NI disk -> same NI -> network
//   D: producer NI -> cluster interconnect -> scheduler NI -> network (§1's
//      "media streams entering the NI from the network")
#include <cstdio>

#include "apps/client.hpp"
#include "bench_util.hpp"
#include "hostos/filesystem.hpp"
#include "hw/nic_board.hpp"
#include "net/udp.hpp"

using namespace nistream;
using sim::Time;

namespace {

struct PathResult {
  double latency_ms = 0;       // mean per frame
  bool host_cpu_on_path = false;
  std::uint64_t pci_bytes = 0;
  std::uint64_t lan_hops = 0;  // interconnect crossings per frame
};

constexpr int kFrames = 400;
constexpr std::uint32_t kFrameBytes = 1000;

PathResult run_path(char path) {
  hw::Calibration cal;
  sim::Engine eng;
  hw::PciBus bus{eng, cal.pci};
  hw::EthernetSwitch ether{eng, cal.ethernet};
  hw::ScsiDisk disk{eng, cal.disk, 55};
  hostos::UfsFilesystem fs{eng, disk, cal.fs};
  apps::MpegClient client{eng, ether, cal.ethernet.stack_traversal};
  net::UdpEndpoint ni_ep{eng, ether, cal.ethernet.stack_traversal,
                         net::UdpEndpoint::Receiver{}};
  net::UdpEndpoint host_ep{eng, ether, net::kHostStackCost,
                           net::UdpEndpoint::Receiver{}};
  net::UdpEndpoint producer_ep{eng, ether, cal.ethernet.stack_traversal,
                               net::UdpEndpoint::Receiver{}};

  PathResult r;
  auto proc = [&]() -> sim::Coro {
    for (int i = 0; i < kFrames; ++i) {
      const Time t0 = eng.now();
      const auto scattered = static_cast<std::uint64_t>(i) * 10'000'000;
      net::Packet pkt{.seq = static_cast<std::uint64_t>(i),
                      .bytes = kFrameBytes,
                      .frame_type = mpeg::FrameType::kP,
                      .enqueued_at = t0};
      switch (path) {
        case 'A':
          co_await fs.read(static_cast<std::uint64_t>(i) * kFrameBytes,
                           kFrameBytes);
          pkt.dispatched_at = eng.now();
          host_ep.send(client.port(), pkt);
          break;
        case 'B':
          co_await disk.read(scattered, kFrameBytes);
          co_await bus.dma(kFrameBytes);
          pkt.dispatched_at = eng.now();
          ni_ep.send(client.port(), pkt);
          break;
        case 'C':
          co_await disk.read(scattered, kFrameBytes);
          pkt.dispatched_at = eng.now();
          ni_ep.send(client.port(), pkt);
          break;
        case 'D':
          co_await disk.read(scattered, kFrameBytes);
          // Hop 1: producer NI -> scheduler NI across the interconnect;
          // hop 2: scheduler NI -> client. Model hop 1 as an extra
          // NI-to-NI UDP leg before the dispatch timestamp.
          producer_ep.send(ni_ep.port(), pkt);
          co_await sim::Delay{eng, Time::ms(1.3)};  // hop-1 pipeline latency
          pkt.dispatched_at = eng.now();
          ni_ep.send(client.port(), pkt);
          break;
      }
      co_await sim::Delay{eng, Time::ms(3)};
    }
  };
  proc().detach();
  eng.run();
  r.latency_ms = client.latency_ms().mean();
  r.host_cpu_on_path = (path == 'A');
  r.pci_bytes = bus.bytes_moved();
  r.lan_hops = (path == 'D') ? 2 : 1;
  return r;
}

}  // namespace

int main() {
  bench::header("Ablation: frame-transfer paths (Figure 3 + the network path)");
  std::printf("  %-6s %16s %12s %14s %10s\n", "path", "latency (ms)",
              "host CPU?", "PCI bytes", "LAN hops");
  const char* names[] = {"A", "B", "C", "D"};
  for (const char* n : names) {
    const PathResult r = run_path(*n);
    std::printf("  %-6s %16.3f %12s %14llu %10llu\n", n, r.latency_ms,
                r.host_cpu_on_path ? "yes" : "no",
                static_cast<unsigned long long>(r.pci_bytes),
                static_cast<unsigned long long>(r.lan_hops));
  }
  bench::note("A is fastest per frame (cached UFS) but owns the host; B/C");
  bench::note("bypass the host at ~5.4 ms; D adds one interconnect hop and");
  bench::note("lets a whole cluster feed one scheduler NI.");
  return 0;
}
