// Ablation: the frame-transfer paths of Figure 3 — plus the distributed
// path the paper's §1 adds — compared on one table: per-frame latency and
// which server resources each path consumes. Every path is a declarative
// path::FramePath composition; the per-stage breakdown column comes from
// the path's own stage stamps, not hand-kept timers.
//
//   A: disk -> host CPU/fs -> I/O bus -> host NIC -> network
//   B: NI disk -> PCI peer-to-peer -> scheduler NI -> network
//   C: NI disk -> same NI -> network
//   D: producer NI -> cluster interconnect -> scheduler NI -> network (§1's
//      "media streams entering the NI from the network")
#include <cstdio>
#include <string>

#include "apps/client.hpp"
#include "bench_util.hpp"
#include "hostos/filesystem.hpp"
#include "hw/nic_board.hpp"
#include "net/udp.hpp"
#include "path/paths.hpp"

using namespace nistream;
using sim::Time;

namespace {

struct PathResult {
  double latency_ms = 0;       // mean per frame
  bool host_cpu_on_path = false;
  std::uint64_t pci_bytes = 0;
  std::uint64_t lan_hops = 0;  // interconnect crossings per frame
  std::string breakdown;       // per-stage means, from the path's stamps
};

constexpr int kFrames = 400;

PathResult run_path(char which) {
  hw::Calibration cal;
  sim::Engine eng;
  hw::PciBus bus{eng, cal.pci};
  hw::EthernetSwitch ether{eng, cal.ethernet};
  hw::ScsiDisk disk{eng, cal.disk, 55};
  hostos::UfsFilesystem fs{eng, disk, cal.fs};
  apps::MpegClient client{eng, ether, cal.ethernet.stack_traversal};
  net::UdpEndpoint ni_ep{eng, ether, cal.ethernet.stack_traversal,
                         net::UdpEndpoint::Receiver{}};
  net::UdpEndpoint host_ep{eng, ether, net::kHostStackCost,
                           net::UdpEndpoint::Receiver{}};
  net::UdpEndpoint producer_ep{eng, ether, cal.ethernet.stack_traversal,
                               net::UdpEndpoint::Receiver{}};

  // The host path reads the file sequentially (UFS read-ahead applies);
  // the NI paths pay the scattered random-access layout.
  const std::uint64_t stride =
      which == 'A' ? mpeg::kPaperFrameBytes : 10'000'000;
  auto p = [&]() -> path::FramePath {
    switch (which) {
      case 'A':
        return path::critical_path_a(eng, fs, host_ep, client.port());
      case 'B':
        return path::critical_path_b(eng, disk, bus, ni_ep, client.port());
      case 'D': {
        // Hop 1: producer NI -> scheduler NI across the interconnect;
        // hop 2: scheduler NI -> client. Hop 1 is a relay leg, so it does
        // not stamp the dispatch time.
        path::FramePath d{eng, "path-d"};
        d.stage<path::DiskStage<hw::ScsiDisk>>(disk)
            .stage<path::UdpSendStage>(eng, producer_ep, ni_ep.port(),
                                       /*stamp_dispatch=*/false)
            .stage<path::DelayStage>(eng, Time::ms(1.3), "hop")
            .stage<path::UdpSendStage>(eng, ni_ep, client.port());
        return d;
      }
      default:
        return path::critical_path_c(eng, disk, ni_ep, client.port());
    }
  }();

  path::PathStats stats;
  path::pump(p,
             path::fixed_frame_source(
                 kFrames, mpeg::kPaperFrameBytes,
                 [stride](std::uint64_t seq) { return seq * stride; },
                 /*stream=*/0,
                 which == 'A' ? path::Provenance::kHostFile
                              : path::Provenance::kNiDisk),
             path::Pacing{.burst_frames = 0, .gap = Time::ms(3),
                          .where = path::Pacing::Where::kAfterFrame},
             stats)
      .detach();
  eng.run();

  PathResult r;
  r.latency_ms = client.latency_ms().mean();
  r.host_cpu_on_path = (which == 'A');
  r.pci_bytes = bus.bytes_moved();
  r.lan_hops = (which == 'D') ? 2 : 1;
  for (const auto& s : stats.stages) {
    if (s.ms.mean() < 0.0005) continue;  // hide the free send stamps
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s%s %.2f", r.breakdown.empty() ? "" : "+",
                  s.name.c_str(), s.ms.mean());
    r.breakdown += buf;
  }
  return r;
}

}  // namespace

int main() {
  bench::header("Ablation: frame-transfer paths (Figure 3 + the network path)");
  std::printf("  %-6s %16s %12s %14s %10s   %s\n", "path", "latency (ms)",
              "host CPU?", "PCI bytes", "LAN hops", "stage means (ms)");
  const char* names[] = {"A", "B", "C", "D"};
  for (const char* n : names) {
    const PathResult r = run_path(*n);
    std::printf("  %-6s %16.3f %12s %14llu %10llu   %s\n", n, r.latency_ms,
                r.host_cpu_on_path ? "yes" : "no",
                static_cast<unsigned long long>(r.pci_bytes),
                static_cast<unsigned long long>(r.lan_hops),
                r.breakdown.c_str());
  }
  bench::note("A is fastest per frame (cached UFS) but owns the host; B/C");
  bench::note("bypass the host at ~5.4 ms; D adds one interconnect hop and");
  bench::note("lets a whole cluster feed one scheduler NI.");
  return 0;
}
