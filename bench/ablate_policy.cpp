// Ablation: scheduling policy under overload.
//
// DWCS vs EDF vs static-priority vs round-robin on a feasible-but-tight
// two-class workload (a tight 3/8-tolerance stream and a loose 7/8 one at
// 90% aggregate service capacity). Scored by the sliding-window violation
// monitor: only DWCS satisfies both constraints, because only DWCS sheds
// losses selectively by tolerance.
#include <array>
#include <cstdio>

#include "bench_util.hpp"
#include "dwcs/baselines.hpp"
#include "dwcs/monitor.hpp"
#include "dwcs/scheduler.hpp"

using namespace nistream;
using sim::Time;

namespace {

struct Score {
  std::uint64_t tight_violations;
  std::uint64_t loose_violations;
  std::uint64_t tight_ontime;
  std::uint64_t loose_ontime;
};

Score run(dwcs::PacketScheduler& s) {
  dwcs::WindowViolationMonitor monitor;
  const dwcs::WindowConstraint loose{7, 8}, tight{3, 8};
  const auto l_id = s.create_stream(
      {.tolerance = loose, .period = Time::ms(10), .lossy = true}, Time::zero());
  const auto t_id = s.create_stream(
      {.tolerance = tight, .period = Time::ms(10), .lossy = true}, Time::zero());
  monitor.add_stream(loose);
  monitor.add_stream(tight);

  std::uint64_t fid = 0;
  std::array<std::uint64_t, 2> seen_drops{0, 0};
  const auto pump = [&] {
    for (const auto id : {l_id, t_id}) {
      const auto d = s.stats(id).dropped;
      for (std::uint64_t k = seen_drops[id]; k < d; ++k) {
        monitor.record(id, dwcs::WindowViolationMonitor::Outcome::kDropped);
      }
      seen_drops[id] = d;
    }
  };
  for (int t = 0; t < 60000; t += 10) {
    const dwcs::FrameDescriptor f{.frame_id = fid++, .bytes = 1000,
                                  .type = mpeg::FrameType::kP,
                                  .enqueued_at = Time::ms(t)};
    s.enqueue(t_id, f, Time::ms(t));
    s.enqueue(l_id, f, Time::ms(t));
    if (t % 100 < 90) {  // 90% service capacity
      const auto d = s.schedule_next(Time::ms(t));
      pump();
      if (d) {
        monitor.record(d->stream,
                       d->late ? dwcs::WindowViolationMonitor::Outcome::kLate
                               : dwcs::WindowViolationMonitor::Outcome::kOnTime);
      }
    }
  }
  pump();
  return Score{monitor.violating_windows(t_id), monitor.violating_windows(l_id),
               s.stats(t_id).serviced_on_time, s.stats(l_id).serviced_on_time};
}

}  // namespace

int main() {
  bench::header("Ablation: policy comparison under overload (90% capacity)");
  std::printf("  %-18s %16s %16s %12s %12s\n", "policy", "tight-violations",
              "loose-violations", "tight-sent", "loose-sent");

  dwcs::DwcsScheduler dwcs_sched{dwcs::DwcsScheduler::Config{}};
  dwcs::EdfScheduler edf;
  dwcs::StaticPriorityScheduler sp;
  dwcs::RoundRobinScheduler rr;
  dwcs::PacketScheduler* scheds[] = {&dwcs_sched, &edf, &sp, &rr};
  for (auto* s : scheds) {
    const Score sc = run(*s);
    std::printf("  %-18s %16llu %16llu %12llu %12llu\n", s->name(),
                static_cast<unsigned long long>(sc.tight_violations),
                static_cast<unsigned long long>(sc.loose_violations),
                static_cast<unsigned long long>(sc.tight_ontime),
                static_cast<unsigned long long>(sc.loose_ontime));
  }
  bench::note("Only DWCS keeps the tight stream's window constraint intact");
  bench::note("while still giving the loose stream its reserved share.");
  return 0;
}
