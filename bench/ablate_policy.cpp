// Ablation: scheduling policy under load, on ONE engine.
//
// Every cell is the same DwcsScheduler core — late processing, rule-(A)/(B)
// window accounting, lossy drops — running the PIFO rank engine
// (ReprKind::kPifo) under a different rank policy: DWCS, EDF, static
// priority, and WFQ (virtual finish times, weight = outstanding on-time
// obligation y-x). Since only the rank function differs between cells, the
// violation-rate deltas are attributable to the policy alone.
//
// Workload: a loose 7/8-tolerance stream (id 0) and a tight 3/8 one (id 1),
// both lossy, sharing a 10 ms period over a 60 s horizon. Satisfying both
// windows needs 1/8 + 5/8 = 0.75 on-time services per slot; the service
// gate admits floor(75/(load/100)) percent of slots, spread evenly
// (Bresenham over the slot index, phase-rotated by `--seed`), so load 90
// leaves headroom and load 110 is infeasible by construction. Even spacing
// matters: a random gate of the same average bunches idle slots, and
// bunched consecutive losses drive every window to its violated x'=0
// regime regardless of policy, hiding the policy effect the bench exists
// to measure. Scored by the sliding-window violation monitor; only DWCS
// sheds losses selectively by tolerance, so only it keeps the tight
// stream's windows intact at 90% while still feeding the loose stream its
// 1/8 reserved share.
//
// The DWCS cells double as an engine cross-check: a dual-heap shadow
// scheduler consumes the identical frame/gate sequence and must dispatch
// and drop identically at every slot ("dual_heap_identical" in the JSON;
// any mismatch fails the run). Output: stdout table + schema-versioned
// JSON (default BENCH_policy.json) with `--seed`, `--out`, `--jobs`.
#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cli.hpp"
#include "dwcs/monitor.hpp"
#include "dwcs/scheduler.hpp"
#include "runner.hpp"

using namespace nistream;
using sim::Time;

namespace {

constexpr int kSlotMs = 10;
constexpr int kHorizonMs = 60'000;
// On-time services per slot both windows need: 1/8 (loose) + 5/8 (tight).
constexpr std::uint64_t kRequiredBp = 7'500;  // basis points of one slot

const char* engine_of(dwcs::PolicyKind p) {
  switch (p) {
    case dwcs::PolicyKind::kDwcs: return "pifo-dwcs";
    case dwcs::PolicyKind::kEdf: return "pifo-edf";
    case dwcs::PolicyKind::kStaticPriority: return "pifo-sp";
    case dwcs::PolicyKind::kWfq: return "pifo-wfq";
  }
  return "?";
}

struct StreamCell {
  std::uint64_t violating_windows = 0;
  std::uint64_t window_positions = 0;
  double violation_rate = 0;
  std::uint64_t on_time = 0;
  std::uint64_t dropped = 0;   // scheduler-internal late drops
  std::uint64_t rejected = 0;  // enqueue refused, ring full
};

struct Cell {
  dwcs::PolicyKind policy{};
  unsigned load_pct = 0;
  std::uint64_t service_share_pct = 0;
  bool checked_identity = false;    // true only for the DWCS cells
  bool dual_heap_identical = true;  // vacuously true when unchecked
  StreamCell loose, tight;
  double aggregate_rate = 0;
};

std::unique_ptr<dwcs::DwcsScheduler> make_sched(dwcs::ReprKind repr,
                                                dwcs::PolicyKind policy) {
  dwcs::DwcsScheduler::Config cfg;
  cfg.repr = repr;
  cfg.policy = policy;
  return std::make_unique<dwcs::DwcsScheduler>(cfg);
}

Cell run_cell(dwcs::PolicyKind policy, unsigned load_pct, std::uint64_t seed) {
  Cell c;
  c.policy = policy;
  c.load_pct = load_pct;
  c.service_share_pct = kRequiredBp / load_pct;  // 83 at 90%, 68 at 110%

  auto sched = make_sched(dwcs::ReprKind::kPifo, policy);
  std::unique_ptr<dwcs::DwcsScheduler> shadow;
  if (policy == dwcs::PolicyKind::kDwcs) {
    shadow = make_sched(dwcs::ReprKind::kDualHeap, policy);
    c.checked_identity = true;
  }

  const dwcs::WindowConstraint loose{7, 8}, tight{3, 8};
  dwcs::WindowViolationMonitor monitor;
  const auto create = [&](dwcs::DwcsScheduler& s) {
    (void)s.create_stream(
        {.tolerance = loose, .period = Time::ms(kSlotMs), .lossy = true},
        Time::zero());
    (void)s.create_stream(
        {.tolerance = tight, .period = Time::ms(kSlotMs), .lossy = true},
        Time::zero());
  };
  create(*sched);
  if (shadow) create(*shadow);
  const dwcs::StreamId l_id = 0, t_id = 1;
  monitor.add_stream(loose);
  monitor.add_stream(tight);

  // The gate depends on (seed, load) only — every policy at a given load
  // sees the identical service-opportunity sequence, and so does the
  // dual-heap shadow.
  const std::uint64_t gate_phase = seed % 100;
  std::uint64_t fid = 0;
  std::array<std::uint64_t, 2> seen_drops{0, 0};
  std::array<std::uint64_t, 2> rejected{0, 0};
  const auto pump = [&] {
    for (const auto id : {l_id, t_id}) {
      const auto d = sched->stats(id).dropped;
      for (std::uint64_t k = seen_drops[id]; k < d; ++k) {
        monitor.record(id, dwcs::WindowViolationMonitor::Outcome::kDropped);
      }
      seen_drops[id] = d;
    }
  };

  for (int t = 0; t < kHorizonMs; t += kSlotMs) {
    const Time now = Time::ms(t);
    for (const auto id : {t_id, l_id}) {
      const dwcs::FrameDescriptor f{.frame_id = fid++, .bytes = 1000,
                                    .type = mpeg::FrameType::kP,
                                    .enqueued_at = now};
      const bool ok = sched->enqueue(id, f, now);
      if (!ok) {
        // A refused frame is a loss of that stream's packet this period.
        ++rejected[id];
        monitor.record(id, dwcs::WindowViolationMonitor::Outcome::kDropped);
      }
      if (shadow) {
        const bool sok = shadow->enqueue(id, f, now);
        c.dual_heap_identical = c.dual_heap_identical && sok == ok;
      }
    }
    const std::uint64_t slot = static_cast<std::uint64_t>(t / kSlotMs) +
                               gate_phase;
    if ((slot + 1) * c.service_share_pct / 100 >
        slot * c.service_share_pct / 100) {
      const auto d = sched->schedule_next(now);
      pump();
      if (d) {
        monitor.record(d->stream,
                       d->late ? dwcs::WindowViolationMonitor::Outcome::kLate
                               : dwcs::WindowViolationMonitor::Outcome::kOnTime);
      }
      if (shadow) {
        const auto ds = shadow->schedule_next(now);
        c.dual_heap_identical =
            c.dual_heap_identical && d.has_value() == ds.has_value() &&
            (!d || d->stream == ds->stream);
      }
    }
    if (shadow) {
      for (const auto id : {l_id, t_id}) {
        c.dual_heap_identical =
            c.dual_heap_identical &&
            shadow->stats(id).dropped == sched->stats(id).dropped;
      }
    }
  }
  pump();

  const auto fill = [&](dwcs::StreamId id, StreamCell& out) {
    out.violating_windows = monitor.violating_windows(id);
    out.window_positions =
        monitor.window_positions(dwcs::WindowViolationMonitor::StreamKey{0, id});
    out.violation_rate = monitor.violation_rate(id);
    out.on_time = sched->stats(id).serviced_on_time;
    out.dropped = sched->stats(id).dropped;
    out.rejected = rejected[id];
  };
  fill(l_id, c.loose);
  fill(t_id, c.tight);
  c.aggregate_rate = monitor.aggregate_violation_rate();
  return c;
}

bool write_json(const std::vector<Cell>& cells, const std::string& path,
                std::uint64_t seed, unsigned jobs) {
  std::ofstream out{path};
  if (!out) {
    std::printf("could not write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"ablate_policy\",\n";
  bench::write_stamp(out, jobs);
  out << "  \"seed\": " << seed << ",\n"
      << "  \"workload\": {\"streams\": 2, \"period_ms\": " << kSlotMs
      << ", \"horizon_ms\": " << kHorizonMs
      << ", \"loose_tolerance\": \"7/8\", \"tight_tolerance\": \"3/8\", "
         "\"required_ontime_per_slot_bp\": "
      << kRequiredBp << "},\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    const auto stream_json = [&](const char* key, const StreamCell& s) {
      char buf[320];
      std::snprintf(buf, sizeof buf,
                    "\"%s\": {\"violating_windows\": %llu, "
                    "\"window_positions\": %llu, \"violation_rate\": %.4f, "
                    "\"on_time\": %llu, \"dropped\": %llu, "
                    "\"rejected\": %llu}",
                    key,
                    static_cast<unsigned long long>(s.violating_windows),
                    static_cast<unsigned long long>(s.window_positions),
                    s.violation_rate,
                    static_cast<unsigned long long>(s.on_time),
                    static_cast<unsigned long long>(s.dropped),
                    static_cast<unsigned long long>(s.rejected));
      return std::string{buf};
    };
    out << "    {\"policy\": \"" << dwcs::to_string(c.policy)
        << "\", \"engine\": \"" << engine_of(c.policy)
        << "\", \"load_pct\": " << c.load_pct
        << ", \"service_share_pct\": " << c.service_share_pct << ",\n     ";
    if (c.checked_identity) {
      out << "\"dual_heap_identical\": "
          << (c.dual_heap_identical ? "true" : "false") << ", ";
    }
    char agg[64];
    std::snprintf(agg, sizeof agg, "%.4f", c.aggregate_rate);
    out << stream_json("tight", c.tight) << ",\n     "
        << stream_json("loose", c.loose) << ",\n     "
        << "\"aggregate_violation_rate\": " << agg << "}"
        << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 42);
  const unsigned jobs = bench::flag_jobs(argc, argv);
  const std::string out = bench::out_path(argc, argv, "BENCH_policy.json");

  const std::vector<dwcs::PolicyKind> policies{
      dwcs::PolicyKind::kDwcs, dwcs::PolicyKind::kEdf,
      dwcs::PolicyKind::kStaticPriority, dwcs::PolicyKind::kWfq};
  const std::vector<unsigned> loads{90, 110};

  std::vector<Cell> cells(policies.size() * loads.size());
  bench::run_cells(cells.size(), jobs, [&](std::size_t i) {
    cells[i] = run_cell(policies[i / loads.size()], loads[i % loads.size()],
                        seed);
  });

  bench::header("Ablation: rank policy under load (one PIFO engine)");
  std::printf("  %-16s %6s %12s %12s %11s %11s %10s\n", "policy", "load%",
              "tight-vrate", "loose-vrate", "tight-sent", "loose-sent",
              "identity");
  bool ok = true;
  for (const auto& c : cells) {
    ok = ok && c.dual_heap_identical;
    std::printf("  %-16s %6u %12.4f %12.4f %11llu %11llu %10s\n",
                dwcs::to_string(c.policy), c.load_pct,
                c.tight.violation_rate, c.loose.violation_rate,
                static_cast<unsigned long long>(c.tight.on_time),
                static_cast<unsigned long long>(c.loose.on_time),
                !c.checked_identity        ? "-"
                : c.dual_heap_identical    ? "ok"
                                           : "MISMATCH");
  }
  bench::note("Every cell is the same scheduler core; only the rank function");
  bench::note("differs. DWCS sheds losses by tolerance, so the tight stream's");
  bench::note("windows survive overload that breaks them under EDF/SP.");

  if (!write_json(cells, out, seed, jobs)) return 1;
  if (!ok) {
    std::printf("PIFO-DWCS vs dual-heap DECISION MISMATCH\n");
    return 1;
  }
  return 0;
}
