// Native wall-clock microbenchmarks of the DWCS primitives (google-benchmark).
//
// These are NOT reproduction targets — the paper's numbers belong to a
// 66 MHz i960 — but a modern-hardware datum for the library itself: what a
// scheduling decision, an enqueue, and the arithmetic comparisons cost on
// the build machine.
#include <benchmark/benchmark.h>

#include "dwcs/baselines.hpp"
#include "dwcs/comparator.hpp"
#include "dwcs/scheduler.hpp"
#include "fixedpt/softfloat.hpp"
#include "sim/random.hpp"

using namespace nistream;
using sim::Time;

namespace {

void setup_streams(dwcs::PacketScheduler& s, int n) {
  sim::Rng rng{7};
  for (int i = 0; i < n; ++i) {
    const auto y = 2 + static_cast<std::int64_t>(rng.below(8));
    const auto x = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(y)));
    s.create_stream({.tolerance = {x, y},
                     .period = Time::ms(10 + 10 * static_cast<double>(i % 4)),
                     .lossy = true},
                    Time::zero());
  }
}

void BM_ScheduleNext(benchmark::State& state) {
  const int n_streams = static_cast<int>(state.range(0));
  dwcs::DwcsScheduler sched{dwcs::DwcsScheduler::Config{}};
  setup_streams(sched, n_streams);
  std::uint64_t fid = 0;
  std::int64_t t_ms = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (dwcs::StreamId i = 0; i < static_cast<dwcs::StreamId>(n_streams); ++i) {
      sched.enqueue(i,
                    dwcs::FrameDescriptor{.frame_id = fid++, .bytes = 1000,
                                          .type = mpeg::FrameType::kP,
                                          .enqueued_at = Time::ms(static_cast<double>(t_ms))},
                    Time::ms(static_cast<double>(t_ms)));
    }
    state.ResumeTiming();
    for (int i = 0; i < n_streams; ++i) {
      benchmark::DoNotOptimize(sched.schedule_next(Time::ms(static_cast<double>(t_ms))));
    }
    ++t_ms;
  }
  state.SetItemsProcessed(state.iterations() * n_streams);
}
BENCHMARK(BM_ScheduleNext)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_Enqueue(benchmark::State& state) {
  dwcs::DwcsScheduler::Config cfg;
  cfg.ring_capacity = 1 << 16;
  dwcs::DwcsScheduler sched{cfg};
  setup_streams(sched, 1);
  std::uint64_t fid = 0;
  for (auto _ : state) {
    if (!sched.enqueue(0,
                       dwcs::FrameDescriptor{.frame_id = fid++, .bytes = 1000,
                                             .type = mpeg::FrameType::kP,
                                             .enqueued_at = Time::zero()},
                       Time::zero())) {
      state.PauseTiming();
      while (sched.schedule_next(Time::zero())) {}
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Enqueue);

void BM_ToleranceCompare(benchmark::State& state) {
  const auto mode = static_cast<dwcs::ArithMode>(state.range(0));
  dwcs::Comparator cmp{mode, dwcs::null_cost_hook()};
  sim::Rng rng{3};
  std::vector<dwcs::WindowConstraint> cs;
  for (int i = 0; i < 1024; ++i) {
    const auto y = 1 + static_cast<std::int64_t>(rng.below(64));
    cs.push_back({static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(y) + 1)), y});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cmp.cmp_tolerance(cs[i % 1024], cs[(i + 7) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_ToleranceCompare)
    ->Arg(static_cast<int>(dwcs::ArithMode::kFixedPoint))
    ->Arg(static_cast<int>(dwcs::ArithMode::kSoftFloat))
    ->Arg(static_cast<int>(dwcs::ArithMode::kNativeFloat));

void BM_SoftFloatDiv(benchmark::State& state) {
  sim::Rng rng{5};
  const auto a = fixedpt::SoftFloat::from_float(
      static_cast<float>(rng.uniform(1.0, 100.0)));
  const auto b = fixedpt::SoftFloat::from_float(
      static_cast<float>(rng.uniform(1.0, 100.0)));
  for (auto _ : state) benchmark::DoNotOptimize(a / b);
}
BENCHMARK(BM_SoftFloatDiv);

void BM_EdfScheduleNext(benchmark::State& state) {
  dwcs::EdfScheduler sched;
  setup_streams(sched, 8);
  std::uint64_t fid = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (dwcs::StreamId i = 0; i < 8; ++i) {
      sched.enqueue(i,
                    dwcs::FrameDescriptor{.frame_id = fid++, .bytes = 1000,
                                          .type = mpeg::FrameType::kP,
                                          .enqueued_at = Time::zero()},
                    Time::zero());
    }
    state.ResumeTiming();
    for (int i = 0; i < 8; ++i) {
      benchmark::DoNotOptimize(sched.schedule_next(Time::zero()));
    }
  }
}
BENCHMARK(BM_EdfScheduleNext);

}  // namespace

BENCHMARK_MAIN();
