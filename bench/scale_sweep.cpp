// Wall-clock scale sweep: host-side decisions/sec and per-decision latency
// of `DwcsScheduler::schedule_next` at 1k / 10k / 100k / 1M concurrent
// streams, per schedule representation. The hierarchical (sharded multi-core)
// representation is swept over `--shards=1,2,4,8,16` as an ablation: shard
// count is the one new axis, everything else identical.
//
// This bench measures the HOST clock, not the simulated i960 clock: the
// scheduler runs with the null cost hook, so no cycles are charged and the
// numbers are pure data-structure throughput (see docs/performance.md for
// the two-clock model). Hierarchical cells additionally run a SIMULATED-clock
// pass (`sim_decisions_per_s`, `num_cores` in the JSON): the same decision
// stream replayed as parallel work on an N-core WindKernel — one rtos:: task
// per shard plus a root-arbiter task (dwcs/parallel.hpp) — so the multi-core
// NI's parallel mutation capacity is a measured number, not an assertion. The workload mirrors the paper's testbed shape —
// mostly-peer streams with a shared period, so deadline ties are the common
// case and the tie-break path dominates.
//
// A second family of configs measures the FULL simulated datapath, not just
// the scheduler: producer_path_a/b/c pipelines (disk/filesystem ->
// segmentation -> [bus] -> scheduler ring -> dispatch -> client) at 1k/10k
// concurrent streams, reported as host wall-clock frames/sec. This is the
// tracked number for the allocation-free event/coroutine core: every frame
// traversal is a coroutine chain over pooled frames and inline-storage
// events, so regressions in either show up here before anywhere else.
//
// A third family measures the ingress classification fast path
// (ingress::FlowTable): host wall-clock classification decisions/sec and
// per-decision latency at 1k/10k/100k/1M installed flows, ablated over the
// wildcard rule count (`--rules=w0,w64,w1024` — trie prefixes installed
// alongside the exact tuples). The lookup mix is ~80% exact hits / ~10%
// prefix-attributed / ~10% unmatched, the demux's steady state under a
// flood. Same two-pass discipline as the scheduler family: a 512-batch
// throughput pass, then an individually-timed latency pass.
//
// Output: a human-readable table on stdout plus BENCH_scale.json (path
// overridable via the positional arg) so successive PRs have a tracked perf
// trajectory. `--seed=<u64>` re-seeds the workload generator (default
// 0x5ca1e, the historical constant) and is echoed into the JSON.
// `--jobs=N` runs grid cells on N threads (cells are independent engines;
// results are emitted in grid order regardless). NOTE: parallel cells
// contend for cores, so publication-grade wall-clock numbers should use
// `--jobs 1`. `--smoke` shrinks the grid and budgets for CI gate runs.
// `--repr=<list>` selects the scheduler-family representations (default all
// six flat kinds including `pifo`, the DWCS-ranked PIFO engine; the
// hierarchical repr is swept separately via `--shards`).
//
// `--identity` switches to the CI decision-identity contract instead of a
// timed sweep: dual-heap, the PIFO rank engine (DWCS rank), hierarchical
// (each `--shards` value), and the simulated-parallel execution mode
// (hierarchical-par, each `--shards` value) each take the SAME fixed number
// of decisions at
// `--streams=N` (default 100k) from identically seeded workloads, and the
// binary exits non-zero unless every row dispatched the exact same stream
// sequence (count + FNV hash) as the dual-heap reference. This is the
// machine-checked form of the total-order argument: rules 1-5 end at
// "lowest stream id", so the full DWCS order has no ties — one rank
// function, one order, whatever structure holds it (dual heap, PIFO heap,
// min over per-shard minima at any shard count).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/client.hpp"
#include "apps/media_server.hpp"
#include "apps/producer.hpp"
#include "bench_util.hpp"
#include "cli.hpp"
#include "dwcs/hierarchical.hpp"
#include "dwcs/parallel.hpp"
#include "dwcs/scheduler.hpp"
#include "dwcs/shard_exec.hpp"
#include "hostos/filesystem.hpp"
#include "hw/nic_board.hpp"
#include "ingress/flow_table.hpp"
#include "mpeg/frame.hpp"
#include "runner.hpp"
#include "sim/random.hpp"

using namespace nistream;
using Clock = std::chrono::steady_clock;

namespace {

struct SweepResult {
  std::string repr;
  std::uint32_t shards = 0;  // non-zero only for the hierarchical repr
  std::size_t streams = 0;
  bool skipped = false;
  const char* skip_reason = "";
  std::uint64_t decisions = 0;
  double elapsed_sec = 0;
  double decisions_per_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  // Simulated-parallel pass (hierarchical cells only; num_cores == 0 means
  // the pass did not run): decisions/s on the SIMULATED clock with one
  // rtos:: task per shard on an N-core WindKernel.
  std::uint32_t num_cores = 0;
  std::uint64_t sim_decisions = 0;
  double sim_elapsed_sec = 0;
  double sim_decisions_per_s = 0;
};

double elapsed_sec(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Build a scheduler with `n` mostly-peer streams (75% share one period, so
/// deadline ties are the common case, as in the paper's testbed) and a small
/// standing backlog per stream.
std::unique_ptr<dwcs::DwcsScheduler> make_loaded_scheduler(
    dwcs::ReprKind kind, std::uint32_t shards, std::size_t n,
    std::uint64_t seed, dwcs::CostHook* hook = nullptr) {
  dwcs::DwcsScheduler::Config cfg;
  cfg.repr = kind;
  cfg.hierarchical.shards = shards == 0 ? 1 : shards;
  cfg.ring_capacity = 8;
  auto sched = hook != nullptr
                   ? std::make_unique<dwcs::DwcsScheduler>(cfg, *hook)
                   : std::make_unique<dwcs::DwcsScheduler>(cfg);
  sim::Rng rng{seed ^ n};
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t y = 2 + static_cast<std::int64_t>(rng.below(6));
    const std::int64_t x = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(y)));
    const double period_ms = rng.chance(0.75) ? 33.0 : 40.0;
    sched->create_stream({.tolerance = {x, y},
                          .period = sim::Time::ms(period_ms),
                          .lossy = rng.chance(0.7)},
                         sim::Time::zero());
  }
  for (std::size_t i = 0; i < n; ++i) {
    dwcs::FrameDescriptor d;
    d.frame_id = i;
    d.bytes = mpeg::kPaperFrameBytes;
    d.enqueued_at = sim::Time::zero();
    (void)sched->enqueue(static_cast<dwcs::StreamId>(i), d, sim::Time::zero());
  }
  return sched;
}

/// One scheduling step: advance simulated time to the earliest backlogged
/// deadline, take a decision, and immediately re-enqueue a frame to the
/// dispatched stream so the backlog (and the representation's population)
/// stays at exactly `n` streams throughout the measurement.
bool step(dwcs::DwcsScheduler& sched, sim::Time& now, std::uint64_t& next_fid) {
  if (const auto next = sched.earliest_backlog_deadline(); next && *next > now) {
    now = *next;
  }
  const auto d = sched.schedule_next(now);
  if (!d) return false;
  dwcs::FrameDescriptor refill;
  refill.frame_id = next_fid++;
  refill.bytes = mpeg::kPaperFrameBytes;
  refill.enqueued_at = now;
  (void)sched.enqueue(d->stream, refill, now);
  return true;
}

// ---------------------------------------------------------------------------
// Simulated-parallel pass: replay the hierarchical scheduler's cycle trace on
// an N-core WindKernel (one equal-priority task per shard plus one arbiter
// task; dwcs/parallel.hpp) and measure decisions/s on the SIMULATED clock —
// the number the serial host loop structurally cannot show. The dispatch FNV
// is folded exactly like the identity cells, so parallel-mode rows join the
// --identity gate: parallel TIME modeling, bit-identical DISPATCH sequence.
// ---------------------------------------------------------------------------

struct SimParallelResult {
  std::uint64_t decisions = 0;
  std::uint64_t dispatch_fnv = 0;
  double sim_elapsed_sec = 0;
  std::uint32_t num_cores = 0;
};

/// Driver process: rounds of up to 256 decisions posted as shard/arbiter work
/// items, a fence between rounds so each round has a well-defined simulated
/// end time, shutdown once the budget is spent.
sim::Coro drive_parallel(sim::Engine& eng, dwcs::DwcsScheduler& sched,
                         dwcs::ShardCycleMeter& meter,
                         dwcs::ParallelShardExecutor& exec, std::size_t n,
                         std::uint64_t budget, SimParallelResult& r) {
  const std::uint32_t shards = exec.shards();
  sim::Time now = sim::Time::zero();  // scheduler-logical deadline clock
  std::uint64_t fid = n;
  std::uint64_t fnv = 14695981039346656037ull;
  while (r.decisions < budget) {
    const std::uint64_t round =
        std::min<std::uint64_t>(256, budget - r.decisions);
    for (std::uint64_t k = 0; k < round; ++k) {
      if (const auto next = sched.earliest_backlog_deadline();
          next && *next > now) {
        now = *next;
      }
      const std::int64_t t0 = meter.total();
      const auto d = sched.schedule_next(now);
      if (!d) {
        budget = r.decisions;  // drained; fall through to the final fence
        break;
      }
      ++r.decisions;
      fnv = (fnv ^ static_cast<std::uint64_t>(d->stream)) * 1099511628211ull;
      dwcs::FrameDescriptor refill;
      refill.frame_id = fid++;
      refill.bytes = mpeg::kPaperFrameBytes;
      refill.enqueued_at = now;
      (void)sched.enqueue(d->stream, refill, now);
      // Bracket covers decision + refill: every cycle the meter charged
      // beyond the traced shard/root mutations (decision overhead, ring
      // ops, window adjustments, stream-state touches) is service work for
      // the dispatched stream and runs on its owning core.
      exec.finish_decision(dwcs::shard_of(d->stream, shards),
                           meter.total() - t0);
    }
    co_await exec.fence();
  }
  r.dispatch_fnv = fnv;
  r.sim_elapsed_sec = eng.now().to_sec();
  exec.shutdown();
}

SimParallelResult run_sim_parallel(std::uint32_t shards, std::size_t n,
                                   std::uint64_t seed, std::uint64_t budget) {
  SimParallelResult r;
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  hw::Calibration cal;
  // One knob drives both models: the board builds `shards` cores
  // (cal.interconnect.cores), and the wind kernel schedules across exactly
  // board.num_cores() — the cycle model and the task model cannot disagree.
  cal.interconnect.cores = static_cast<int>(shards == 0 ? 1 : shards);
  hw::NicBoard board{"ni0", eng, bus, ether, /*rx=*/{}, cal};
  r.num_cores = static_cast<std::uint32_t>(board.num_cores());
  rtos::WindKernel kernel{eng, board.cpu(), cal.rtos, board.num_cores()};
  dwcs::ShardCycleMeter meter{cal, shards, /*heap_base=*/0x0100'0000,
                              dwcs::kCoreStride};
  auto sched = make_loaded_scheduler(dwcs::ReprKind::kHierarchical, shards, n,
                                     seed, &meter);
  dwcs::ParallelShardExecutor exec{kernel, shards};
  // Attach AFTER setup so the bulk-load mutations are not replayed as work.
  static_cast<dwcs::HierarchicalScheduler&>(sched->repr())
      .set_exec_trace(&exec, &meter);
  drive_parallel(eng, *sched, meter, exec, n, budget, r).detach();
  eng.run_until(sim::Time::sec(1e9));
  return r;
}

SweepResult run_config(dwcs::ReprKind kind, std::uint32_t shards,
                       std::size_t n, std::uint64_t seed,
                       double throughput_budget_sec,
                       double latency_budget_sec, std::uint64_t sim_budget) {
  SweepResult r;
  r.repr = dwcs::to_string(kind);
  r.shards = kind == dwcs::ReprKind::kHierarchical ? shards : 0;
  r.streams = n;
  if (kind == dwcs::ReprKind::kSortedList && n > 20'000) {
    // O(n) insert per enqueue makes even the setup phase O(n^2); at 100k
    // streams that is minutes of wall-clock for a number that is already
    // unambiguous at 10k. Recorded as skipped, not silently dropped.
    r.skipped = true;
    r.skip_reason = "setup is O(n^2) at this scale";
    return r;
  }
  if (kind == dwcs::ReprKind::kFcfs && n >= 1'000'000) {
    // pick() and earliest_deadline() are O(n) scans, so one 512-decision
    // batch of the throughput loop touches ~10^9 stream views at 1M streams
    // — minutes of wall-clock for a number already unambiguous at 100k.
    r.skipped = true;
    r.skip_reason = "O(n)-scan pick makes the measurement loop O(n^2) at "
                    "this scale";
    return r;
  }

  // Throughput pass: no per-decision clock reads; check the budget every
  // 512 decisions so timer overhead does not pollute decisions/sec.
  {
    auto sched = make_loaded_scheduler(kind, shards, n, seed);
    sim::Time now = sim::Time::zero();
    std::uint64_t fid = n;
    const auto t0 = Clock::now();
    double el = 0;
    std::uint64_t decisions = 0;
    for (;;) {
      for (int k = 0; k < 512; ++k) {
        if (step(*sched, now, fid)) ++decisions;
      }
      el = elapsed_sec(t0);
      if (el >= throughput_budget_sec) break;
    }
    r.decisions = decisions;
    r.elapsed_sec = el;
    r.decisions_per_sec = static_cast<double>(decisions) / el;
  }

  // Latency pass: fresh scheduler, every decision timed individually.
  {
    auto sched = make_loaded_scheduler(kind, shards, n, seed);
    sim::Time now = sim::Time::zero();
    std::uint64_t fid = n;
    std::vector<std::uint32_t> lat_ns;
    lat_ns.reserve(1 << 20);
    const auto t0 = Clock::now();
    while (elapsed_sec(t0) < latency_budget_sec &&
           lat_ns.size() < lat_ns.capacity()) {
      const auto a = Clock::now();
      const bool ok = step(*sched, now, fid);
      const auto b = Clock::now();
      if (!ok) continue;
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
      lat_ns.push_back(static_cast<std::uint32_t>(
          std::min<std::int64_t>(ns, UINT32_MAX)));
    }
    if (!lat_ns.empty()) {
      std::sort(lat_ns.begin(), lat_ns.end());
      r.p50_ns = lat_ns[lat_ns.size() / 2];
      r.p99_ns = lat_ns[lat_ns.size() - 1 - lat_ns.size() / 100];
    }
  }

  // Simulated-parallel pass (hierarchical cells): fixed decision count so
  // sim_decisions_per_s is comparable across shard counts at equal work.
  // Capped at 100k streams: the accounted-hook setup (eager per-insert root
  // refresh through the cycle meter) costs many minutes at 1M for a scaling
  // ratio that is already unambiguous at 100k — same skip policy as the
  // sorted-list and fcfs cells above.
  if (kind == dwcs::ReprKind::kHierarchical && sim_budget > 0 &&
      n <= 100'000) {
    const auto sp = run_sim_parallel(shards, n, seed, sim_budget);
    r.num_cores = sp.num_cores;
    r.sim_decisions = sp.decisions;
    r.sim_elapsed_sec = sp.sim_elapsed_sec;
    r.sim_decisions_per_s =
        sp.sim_elapsed_sec > 0
            ? static_cast<double>(sp.decisions) / sp.sim_elapsed_sec
            : 0;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Datapath family: producer_path_a/b/c end-to-end, wall-clock frames/sec.
// ---------------------------------------------------------------------------

struct PathResult {
  const char* path = "";
  std::size_t streams = 0;
  std::uint64_t frames = 0;     // frames pushed through the full pipeline
  std::uint64_t delivered = 0;  // frames that reached the client
  double elapsed_sec = 0;
  double frames_per_sec = 0;
};

/// Run `n` concurrent producer pipelines of the given path family
/// (a = host fs -> host scheduler, b = NI disk -> PCI -> scheduler NI,
/// c = NI disk -> same-card scheduler), each pumping `frames_per_stream`
/// fixed-size frames into a real scheduler service that dispatches to a
/// client. Reported frames/sec is HOST wall-clock over the whole run
/// (pumps + dispatch drain): simulation throughput of the full datapath.
PathResult run_datapath(char which, std::size_t n,
                        std::uint64_t frames_per_stream) {
  PathResult r;
  r.path = which == 'a'   ? "producer_path_a"
           : which == 'b' ? "producer_path_b"
                          : "producer_path_c";
  r.streams = n;

  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  apps::MpegClient client{eng, ether};
  std::vector<path::PathStats> stats(n);
  const dwcs::StreamParams params{
      .tolerance = {1, 4}, .period = sim::Time::ms(33), .lossy = true};

  const auto source_for = [frames_per_stream](dwcs::StreamId sid,
                                              std::size_t i,
                                              path::Provenance prov) {
    // Per-stream file base 16 MB apart, frames laid out back to back.
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 0x0100'0000ull;
    return path::fixed_frame_source(
        frames_per_stream, mpeg::kPaperFrameBytes,
        [base](std::uint64_t seq) {
          return base + seq * mpeg::kPaperFrameBytes;
        },
        sid, prov);
  };
  // Run in one-second simulated slices until every pump drained its source
  // (the engine stops early whenever its queue is empty), then a short grace
  // so in-flight dispatches reach the client.
  const auto drain = [&] {
    const auto done = [&] {
      for (const auto& s : stats) {
        if (!s.finished) return false;
      }
      return true;
    };
    sim::Time cap = sim::Time::zero();
    while (!done() && cap < sim::Time::sec(4000)) {
      cap = cap + sim::Time::sec(1);
      eng.run_until(cap);
    }
    eng.run_until(cap + sim::Time::sec(2));
  };

  const auto t0 = Clock::now();
  if (which == 'a') {
    hostos::HostMachine host{eng, 2};
    hw::Calibration cal;
    hw::ScsiDisk disk{eng, cal.disk, 11};
    hostos::UfsFilesystem fs{eng, disk, cal.fs};
    apps::HostSchedulerServer server{host, ether};
    for (std::size_t i = 0; i < n; ++i) {
      const auto sid = server.service().create_stream(params, client.port());
      auto& proc =
          host.spawn("pump" + std::to_string(i), hostos::kDefaultPriority);
      apps::detail::pump_owned(
          path::producer_path_a(host, proc, fs, server.service()),
          source_for(sid, i, path::Provenance::kHostFile), {}, stats[i])
          .detach();
    }
    drain();
  } else {
    apps::NiSchedulerServer server{eng, bus, ether};
    for (std::size_t i = 0; i < n; ++i) {
      const auto sid = server.service().create_stream(params, client.port());
      rtos::Task& task = server.kernel().spawn("pump" + std::to_string(i), 120);
      auto p = which == 'b'
                   ? path::producer_path_b(eng, server.board().disk(0), task,
                                           bus, server.service())
                   : path::producer_path_c(eng, server.board().disk(0), task,
                                           server.service());
      apps::detail::pump_owned(std::move(p),
                               source_for(sid, i, path::Provenance::kNiDisk),
                               {}, stats[i])
          .detach();
    }
    drain();
  }
  r.elapsed_sec = elapsed_sec(t0);

  for (const auto& s : stats) r.frames += s.frames_produced;
  r.delivered = client.total_frames();
  r.frames_per_sec =
      r.elapsed_sec > 0 ? static_cast<double>(r.frames) / r.elapsed_sec : 0;
  return r;
}

// ---------------------------------------------------------------------------
// Classification family: ingress::FlowTable decisions/sec, rule ablation.
// ---------------------------------------------------------------------------

struct ClassResult {
  std::string rules;  // axis label as given on the command line ("w64")
  std::size_t wildcards = 0;
  std::size_t flows = 0;
  std::uint64_t lookups = 0;
  double elapsed_sec = 0;
  double lookups_per_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  std::uint64_t exact_hits = 0;
  std::uint64_t trie_hits = 0;
  std::uint64_t misses = 0;
};

/// Canonical bench key for stream `s`: even streams live in the full-tuple
/// category, odd streams in a (src, dst, proto) host-pair category whose
/// address carries the distinction (that mask ignores ports, and a /16 only
/// has 16 host bits, so the high stream bits go into dst_ip).
ingress::FlowKey class_key_for(dwcs::StreamId s) {
  const ingress::TenantId tenant = 1 + (s & 3u);
  ingress::FlowKey k = ingress::flow_key_of(tenant, s);
  if (s % 2 != 0) {
    k.src_ip = ingress::tenant_prefix_of(tenant) | (s & 0xFFFFu);
    k.dst_ip = 0xC0A8'0000u | (s >> 16);
  }
  return k;
}

/// Build a table with `flows` exact rules split across two categories plus
/// `wildcards` /24 trie prefixes, then run the two-pass measurement over a
/// pre-rendered seeded key mix (~80% exact / ~10% trie / ~10% miss).
ClassResult run_classification(const std::string& label, std::size_t wildcards,
                               std::size_t flows, std::uint64_t seed,
                               double throughput_budget_sec,
                               double latency_budget_sec) {
  ClassResult r;
  r.rules = label;
  r.wildcards = wildcards;
  r.flows = flows;

  ingress::FlowTable::Config cfg;
  // N distinct /24s need < 2N+32 trie nodes even fully unshared.
  cfg.trie_nodes = std::max<std::size_t>(8192, 4 * wildcards);
  cfg.trie_rules = wildcards + 8;
  ingress::FlowTable table{cfg};
  const auto full = table.add_category(ingress::kMatchFullTuple,
                                       flows / 2 + 1);
  const auto host = table.add_category(
      ingress::kMatchSrcIp | ingress::kMatchDstIp | ingress::kMatchProto,
      flows / 2 + 1);
  for (dwcs::StreamId s = 0; s < flows; ++s) {
    const ingress::TenantId tenant = 1 + (s & 3u);
    if (!table.insert(s % 2 == 0 ? full : host, class_key_for(s), tenant, s)) {
      std::fprintf(stderr, "classification setup: insert failed at %u\n", s);
      std::exit(1);
    }
  }
  // Wildcard prefixes in 10.128/9 — disjoint from the exact tenants' /16s,
  // so every prefix hit is a genuine trie decision.
  for (std::size_t i = 0; i < wildcards; ++i) {
    if (!table.insert_prefix(0x0A80'0000u | (static_cast<std::uint32_t>(i)
                                             << 8),
                             24, static_cast<ingress::TenantId>(100 + i))) {
      std::fprintf(stderr, "classification setup: prefix %zu failed\n", i);
      std::exit(1);
    }
  }

  // Pre-render the key mix so the measured loop is classify() and nothing
  // else; the same mix (mod capacity) cycles through both passes.
  constexpr std::size_t kMixMask = 4095;
  std::vector<ingress::FlowKey> keys;
  keys.reserve(kMixMask + 1);
  sim::Rng rng{seed ^ (flows * 1099511628211ull) ^ wildcards};
  for (std::size_t i = 0; i <= kMixMask; ++i) {
    const std::uint64_t roll = rng.below(100);
    if (wildcards > 0 && roll < 10) {
      ingress::FlowKey k = class_key_for(0);
      k.src_ip = 0x0A80'0000u |
                 (static_cast<std::uint32_t>(rng.below(wildcards)) << 8) |
                 static_cast<std::uint32_t>(rng.below(256));
      keys.push_back(k);
    } else if (roll < 20) {
      ingress::FlowKey k = class_key_for(0);
      k.src_ip = 0x0AC8'0000u | static_cast<std::uint32_t>(rng.below(1 << 16));
      keys.push_back(k);  // 10.200/16: no exact rule, no prefix
    } else {
      keys.push_back(class_key_for(
          static_cast<dwcs::StreamId>(rng.below(flows))));
    }
  }

  // Throughput pass: budget checked every 512 decisions, like run_config.
  {
    const auto t0 = Clock::now();
    double el = 0;
    std::uint64_t lookups = 0;
    std::uint64_t sink = 0;
    for (;;) {
      for (int k = 0; k < 512; ++k) {
        sink += static_cast<std::uint64_t>(
            table.classify(keys[lookups & kMixMask]).match ==
            ingress::Match::kExact);
        ++lookups;
      }
      el = elapsed_sec(t0);
      if (el >= throughput_budget_sec) break;
    }
    if (sink == 0) std::fprintf(stderr, "classification: no exact hits?\n");
    r.lookups = lookups;
    r.elapsed_sec = el;
    r.lookups_per_sec = static_cast<double>(lookups) / el;
  }

  // Latency pass: every decision timed individually.
  {
    std::vector<std::uint32_t> lat_ns;
    lat_ns.reserve(1 << 20);
    std::uint64_t i = 0;
    const auto t0 = Clock::now();
    while (elapsed_sec(t0) < latency_budget_sec &&
           lat_ns.size() < lat_ns.capacity()) {
      const auto a = Clock::now();
      const auto d = table.classify(keys[i++ & kMixMask]);
      const auto b = Clock::now();
      (void)d;
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
      lat_ns.push_back(static_cast<std::uint32_t>(
          std::min<std::int64_t>(ns, UINT32_MAX)));
    }
    if (!lat_ns.empty()) {
      std::sort(lat_ns.begin(), lat_ns.end());
      r.p50_ns = lat_ns[lat_ns.size() / 2];
      r.p99_ns = lat_ns[lat_ns.size() - 1 - lat_ns.size() / 100];
    }
  }

  const auto st = table.stats();
  r.exact_hits = st.exact_hits;
  r.trie_hits = st.trie_hits;
  r.misses = st.misses;
  return r;
}

/// `--rules=w0,w64,w1024`: each token is `w<N>`, N = wildcard prefix count
/// installed next to the exact rules. Malformed tokens are a hard error,
/// same policy as the numeric flag parsers.
std::vector<std::pair<std::string, std::size_t>> rules_flag(int argc,
                                                            char** argv) {
  std::vector<std::pair<std::string, std::size_t>> out;
  for (const std::string& tok :
       bench::flag_str_list(argc, argv, "rules", "w0,w64,w1024")) {
    char* end = nullptr;
    const unsigned long long v =
        tok.size() > 1 && tok[0] == 'w'
            ? std::strtoull(tok.c_str() + 1, &end, 0)
            : 0;
    // Cap keeps the ruled /24s below 10.146/16, clear of the 10.200/16
    // miss traffic.
    if (end == nullptr || end == tok.c_str() + 1 || *end != '\0' ||
        v > 4096) {
      std::fprintf(stderr,
                   "bad --rules entry: '%s' (expect w<N>, N <= 4096)\n",
                   tok.c_str());
      std::exit(2);
    }
    out.emplace_back(tok, static_cast<std::size_t>(v));
  }
  if (out.empty()) out.emplace_back("w0", 0);
  return out;
}

bool write_json(const std::vector<SweepResult>& results,
                const std::vector<PathResult>& paths,
                const std::vector<ClassResult>& classes,
                const std::string& path, std::uint64_t seed, unsigned jobs) {
  std::ofstream out{path};
  if (!out) {
    std::printf("could not write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"scale_sweep\",\n";
  bench::write_stamp(out, jobs);
  out << "  \"seed\": " << seed << ",\n"
      << "  \"unit\": {\"decisions_per_sec\": \"1/s\", \"latency\": \"ns\", "
         "\"frames_per_sec\": \"1/s\"},\n"
      << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"repr\": \"" << r.repr << "\", \"streams\": " << r.streams;
    if (r.shards != 0) out << ", \"shards\": " << r.shards;
    if (r.skipped) {
      out << ", \"skipped\": true, \"skip_reason\": \"" << r.skip_reason
          << "\"}";
    } else {
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    ", \"decisions\": %llu, \"elapsed_sec\": %.3f, "
                    "\"decisions_per_sec\": %.0f, \"p50_ns\": %.0f, "
                    "\"p99_ns\": %.0f",
                    static_cast<unsigned long long>(r.decisions),
                    r.elapsed_sec, r.decisions_per_sec, r.p50_ns, r.p99_ns);
      out << buf;
      if (r.num_cores != 0) {
        std::snprintf(buf, sizeof buf,
                      ", \"num_cores\": %u, \"sim_decisions\": %llu, "
                      "\"sim_elapsed_sec\": %.6f, "
                      "\"sim_decisions_per_s\": %.0f",
                      r.num_cores,
                      static_cast<unsigned long long>(r.sim_decisions),
                      r.sim_elapsed_sec, r.sim_decisions_per_s);
        out << buf;
      }
      out << "}";
    }
    out << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"classification\": [\n";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const auto& c = classes[i];
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "    {\"rules\": \"%s\", \"wildcards\": %zu, "
                  "\"flows\": %zu, \"lookups\": %llu, \"elapsed_sec\": %.3f, "
                  "\"decisions_per_sec\": %.0f, \"p50_ns\": %.0f, "
                  "\"p99_ns\": %.0f, \"exact_hits\": %llu, "
                  "\"trie_hits\": %llu, \"misses\": %llu}",
                  c.rules.c_str(), c.wildcards, c.flows,
                  static_cast<unsigned long long>(c.lookups), c.elapsed_sec,
                  c.lookups_per_sec, c.p50_ns, c.p99_ns,
                  static_cast<unsigned long long>(c.exact_hits),
                  static_cast<unsigned long long>(c.trie_hits),
                  static_cast<unsigned long long>(c.misses));
    out << buf << (i + 1 < classes.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"datapaths\": [\n";
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto& p = paths[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"path\": \"%s\", \"streams\": %zu, \"frames\": %llu, "
                  "\"delivered\": %llu, \"elapsed_sec\": %.3f, "
                  "\"frames_per_sec\": %.0f}",
                  p.path, p.streams,
                  static_cast<unsigned long long>(p.frames),
                  static_cast<unsigned long long>(p.delivered), p.elapsed_sec,
                  p.frames_per_sec);
    out << buf << (i + 1 < paths.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return true;
}

// ---------------------------------------------------------------------------
// --identity: the CI decision-identity contract.
// ---------------------------------------------------------------------------

struct IdentityRow {
  std::string repr;
  std::uint32_t shards = 0;
  std::uint64_t decisions = 0;
  std::uint64_t dispatch_fnv = 0;
};

/// Take exactly `budget` decisions and fold every dispatched stream id into
/// an FNV-1a hash: two reprs that agree on (decisions, dispatch_fnv) made
/// the same decision at every step.
IdentityRow run_identity_cell(dwcs::ReprKind kind, std::uint32_t shards,
                              std::size_t n, std::uint64_t seed,
                              std::uint64_t budget) {
  IdentityRow row;
  row.repr = dwcs::to_string(kind);
  row.shards = kind == dwcs::ReprKind::kHierarchical ? shards : 0;
  auto sched = make_loaded_scheduler(kind, shards, n, seed);
  sim::Time now = sim::Time::zero();
  std::uint64_t fid = n;
  std::uint64_t fnv = 14695981039346656037ull;
  for (std::uint64_t k = 0; k < budget; ++k) {
    if (const auto next = sched->earliest_backlog_deadline();
        next && *next > now) {
      now = *next;
    }
    const auto d = sched->schedule_next(now);
    if (!d) break;
    ++row.decisions;
    fnv = (fnv ^ static_cast<std::uint64_t>(d->stream)) * 1099511628211ull;
    dwcs::FrameDescriptor refill;
    refill.frame_id = fid++;
    refill.bytes = mpeg::kPaperFrameBytes;
    refill.enqueued_at = now;
    (void)sched->enqueue(d->stream, refill, now);
  }
  row.dispatch_fnv = fnv;
  return row;
}

int run_identity(const std::vector<std::uint32_t>& shard_list, std::size_t n,
                 std::uint64_t seed, std::uint64_t budget,
                 const std::string& out_path, unsigned jobs) {
  // Row 0 is the dual-heap reference, row 1 the flat PIFO rank engine under
  // the DWCS rank, then hierarchical at every shard count, then the
  // simulated-parallel execution mode at every shard count (appended last so
  // pre-existing row positions stay stable for line-oriented CI diffs).
  const std::size_t n_serial = 2 + shard_list.size();
  std::vector<IdentityRow> rows(n_serial + shard_list.size());
  bench::run_cells(rows.size(), jobs, [&](std::size_t i) {
    if (i == 0) {
      rows[i] =
          run_identity_cell(dwcs::ReprKind::kDualHeap, 0, n, seed, budget);
    } else if (i == 1) {
      rows[i] = run_identity_cell(dwcs::ReprKind::kPifo, 0, n, seed, budget);
    } else if (i < n_serial) {
      rows[i] = run_identity_cell(dwcs::ReprKind::kHierarchical,
                                  shard_list[i - 2], n, seed, budget);
    } else {
      const std::uint32_t shards = shard_list[i - n_serial];
      const auto sp = run_sim_parallel(shards, n, seed, budget);
      rows[i] = IdentityRow{"hierarchical-par", shards, sp.decisions,
                            sp.dispatch_fnv};
    }
  });

  std::printf("==== scale sweep --identity: %zu streams, %llu decisions "
              "====\n",
              n, static_cast<unsigned long long>(budget));
  std::printf("%-16s %8s %12s %18s\n", "repr", "shards", "decisions",
              "dispatch_fnv");
  bool ok = true;
  for (const auto& r : rows) {
    const bool match = r.decisions == rows[0].decisions &&
                       r.dispatch_fnv == rows[0].dispatch_fnv;
    ok = ok && match;
    std::printf("%-16s %8u %12llu %18llx%s\n", r.repr.c_str(), r.shards,
                static_cast<unsigned long long>(r.decisions),
                static_cast<unsigned long long>(r.dispatch_fnv),
                match ? "" : "  <-- MISMATCH vs dual-heap");
  }

  std::ofstream out{out_path};
  if (!out) {
    std::printf("could not write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"scale_sweep_identity\",\n";
  bench::write_stamp(out, jobs);
  out << "  \"seed\": " << seed << ",\n  \"streams\": " << n
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"repr\": \"" << r.repr << "\", \"shards\": " << r.shards
        << ", \"decisions\": " << r.decisions << ", \"dispatch_fnv\": \""
        << std::hex << r.dispatch_fnv << std::dec << "\"}"
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"identical\": " << (ok ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  if (!ok) std::printf("DECISION-IDENTITY VIOLATION\n");
  return ok ? 0 : 1;
}

/// `--repr=dual-heap,pifo,...`: the flat representations to sweep. The
/// hierarchical repr has its own shard axis and is always appended via
/// `--shards`; naming it here is an error, as is any unknown token.
std::vector<dwcs::ReprKind> repr_flag(int argc, char** argv) {
  static constexpr std::pair<const char*, dwcs::ReprKind> kKnown[] = {
      {"dual-heap", dwcs::ReprKind::kDualHeap},
      {"single-heap", dwcs::ReprKind::kSingleHeap},
      {"sorted-list", dwcs::ReprKind::kSortedList},
      {"fcfs", dwcs::ReprKind::kFcfs},
      {"calendar-queue", dwcs::ReprKind::kCalendarQueue},
      {"pifo", dwcs::ReprKind::kPifo},
  };
  std::vector<dwcs::ReprKind> out;
  for (const std::string& tok : bench::flag_str_list(
           argc, argv, "repr",
           "dual-heap,single-heap,sorted-list,fcfs,calendar-queue,pifo")) {
    bool found = false;
    for (const auto& [name, kind] : kKnown) {
      if (tok == name) {
        out.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "bad --repr entry: '%s' (known: dual-heap, single-heap, "
                   "sorted-list, fcfs, calendar-queue, pifo; hierarchical is "
                   "swept via --shards)\n",
                   tok.c_str());
      std::exit(2);
    }
  }
  if (out.empty()) out.push_back(dwcs::ReprKind::kDualHeap);
  return out;
}

/// `--shards` via the shared list parser; zero entries clamp to 1 (a 0-shard
/// hierarchical scheduler is meaningless) and an empty list means 1.
std::vector<std::uint32_t> shard_flag(int argc, char** argv) {
  std::vector<std::uint32_t> out;
  for (const std::uint64_t v :
       bench::flag_u64_list(argc, argv, "shards", "1,2,4,8,16")) {
    out.push_back(v == 0 ? 1u : static_cast<std::uint32_t>(v));
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 0x5ca1e);
  const unsigned jobs = bench::flag_jobs(argc, argv);
  const bool smoke = bench::flag_present(argc, argv, "smoke");
  const std::vector<std::uint32_t> shard_list = shard_flag(argc, argv);

  if (bench::flag_present(argc, argv, "identity")) {
    const std::size_t n = static_cast<std::size_t>(
        bench::flag_u64(argc, argv, "streams", 100'000));
    const std::uint64_t budget =
        bench::flag_u64(argc, argv, "decisions", 20'000);
    return run_identity(shard_list, n, seed, budget,
                        bench::out_path(argc, argv,
                                        "BENCH_scale_identity.json"),
                        jobs);
  }
  const std::string out_path =
      bench::out_path(argc, argv, "BENCH_scale.json");

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{1'000}
            : std::vector<std::size_t>{1'000, 10'000, 100'000, 1'000'000};
  const double throughput_budget = smoke ? 0.02 : 0.25;
  const double latency_budget = smoke ? 0.02 : 0.15;
  // Fixed decision count (not a wall-clock budget) for the simulated-parallel
  // pass: the simulated clock is deterministic, so equal work per cell makes
  // sim_decisions_per_s directly comparable across shard counts.
  const std::uint64_t sim_budget = smoke ? 2'000 : 20'000;
  const std::vector<dwcs::ReprKind> kinds = repr_flag(argc, argv);

  struct ReprCell {
    dwcs::ReprKind kind;
    std::uint32_t shards;
    std::size_t streams;
  };
  std::vector<ReprCell> repr_cells;
  for (const auto kind : kinds) {
    for (const auto n : sizes) repr_cells.push_back({kind, 0, n});
  }
  // Shard-count ablation: the hierarchical repr at every size x shard count.
  for (const auto sh : shard_list) {
    for (const auto n : sizes) {
      repr_cells.push_back({dwcs::ReprKind::kHierarchical, sh, n});
    }
  }

  std::printf("==== scale sweep: wall-clock schedule_next throughput, "
              "jobs=%u%s ====\n",
              jobs, smoke ? " (smoke)" : "");
  std::vector<SweepResult> results(repr_cells.size());
  bench::run_cells(repr_cells.size(), jobs, [&](std::size_t i) {
    results[i] = run_config(repr_cells[i].kind, repr_cells[i].shards,
                            repr_cells[i].streams, seed, throughput_budget,
                            latency_budget, sim_budget);
  });
  std::printf("%-16s %8s %10s %16s %12s %12s %8s %14s\n", "repr", "shards",
              "streams", "decisions/sec", "p50 ns", "p99 ns", "cores",
              "sim dec/s");
  for (const auto& r : results) {
    char shards_col[16] = "-";
    if (r.shards != 0) std::snprintf(shards_col, sizeof shards_col, "%u", r.shards);
    if (r.skipped) {
      std::printf("%-16s %8s %10zu %16s (%s)\n", r.repr.c_str(), shards_col,
                  r.streams, "skipped", r.skip_reason);
    } else if (r.num_cores != 0) {
      std::printf("%-16s %8s %10zu %16.0f %12.0f %12.0f %8u %14.0f\n",
                  r.repr.c_str(), shards_col, r.streams, r.decisions_per_sec,
                  r.p50_ns, r.p99_ns, r.num_cores, r.sim_decisions_per_s);
    } else {
      std::printf("%-16s %8s %10zu %16.0f %12.0f %12.0f %8s %14s\n",
                  r.repr.c_str(), shards_col, r.streams, r.decisions_per_sec,
                  r.p50_ns, r.p99_ns, "-", "-");
    }
  }

  // Classification family: flows x wildcard-rule-count grid. Flow counts
  // reuse the scheduler family's sizes; the rule axis comes from --rules.
  const auto rules_list = rules_flag(argc, argv);
  struct ClassCell {
    std::string label;
    std::size_t wildcards;
    std::size_t flows;
  };
  std::vector<ClassCell> class_cells;
  for (const auto& [label, wildcards] : rules_list) {
    for (const auto n : sizes) class_cells.push_back({label, wildcards, n});
  }
  std::vector<ClassResult> class_results(class_cells.size());
  bench::run_cells(class_cells.size(), jobs, [&](std::size_t i) {
    class_results[i] = run_classification(
        class_cells[i].label, class_cells[i].wildcards, class_cells[i].flows,
        seed, throughput_budget, latency_budget);
  });
  std::printf("%-16s %8s %10s %16s %12s %12s\n", "classify", "rules", "flows",
              "decisions/sec", "p50 ns", "p99 ns");
  for (const auto& c : class_results) {
    std::printf("%-16s %8s %10zu %16.0f %12.0f %12.0f\n", "flow_table",
                c.rules.c_str(), c.flows, c.lookups_per_sec, c.p50_ns,
                c.p99_ns);
  }

  struct PathCell {
    char which;
    std::size_t streams;
    std::uint64_t frames_per_stream;
  };
  const std::vector<std::size_t> dp_sizes =
      smoke ? std::vector<std::size_t>{256}
            : std::vector<std::size_t>{1'000, 10'000};
  const std::uint64_t dp_frames = smoke ? 2 : 4;
  std::vector<PathCell> path_cells;
  for (const char which : {'a', 'b', 'c'}) {
    for (const auto n : dp_sizes) path_cells.push_back({which, n, dp_frames});
  }
  std::vector<PathResult> path_results(path_cells.size());
  bench::run_cells(path_cells.size(), jobs, [&](std::size_t i) {
    path_results[i] = run_datapath(path_cells[i].which, path_cells[i].streams,
                                   path_cells[i].frames_per_stream);
  });
  std::printf("%-16s %10s %12s %12s %14s\n", "datapath", "streams", "frames",
              "delivered", "frames/sec");
  for (const auto& p : path_results) {
    std::printf("%-16s %10zu %12llu %12llu %14.0f\n", p.path, p.streams,
                static_cast<unsigned long long>(p.frames),
                static_cast<unsigned long long>(p.delivered),
                p.frames_per_sec);
  }

  return write_json(results, path_results, class_results, out_path, seed,
                    jobs)
             ? 0
             : 1;
}
