// Wall-clock scale sweep: host-side decisions/sec and per-decision latency
// of `DwcsScheduler::schedule_next` at 1k / 10k / 100k concurrent streams,
// per schedule representation.
//
// This bench measures the HOST clock, not the simulated i960 clock: the
// scheduler runs with the null cost hook, so no cycles are charged and the
// numbers are pure data-structure throughput (see docs/performance.md for
// the two-clock model). The workload mirrors the paper's testbed shape —
// mostly-peer streams with a shared period, so deadline ties are the common
// case and the tie-break path dominates.
//
// Output: a human-readable table on stdout plus BENCH_scale.json (path
// overridable via the positional arg) so successive PRs have a tracked perf
// trajectory. `--seed=<u64>` re-seeds the workload generator (default
// 0x5ca1e, the historical constant) and is echoed into the JSON.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "dwcs/scheduler.hpp"
#include "mpeg/frame.hpp"
#include "sim/random.hpp"

using namespace nistream;
using Clock = std::chrono::steady_clock;

namespace {

struct SweepResult {
  const char* repr = "";
  std::size_t streams = 0;
  bool skipped = false;
  const char* skip_reason = "";
  std::uint64_t decisions = 0;
  double elapsed_sec = 0;
  double decisions_per_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
};

double elapsed_sec(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Build a scheduler with `n` mostly-peer streams (75% share one period, so
/// deadline ties are the common case, as in the paper's testbed) and a small
/// standing backlog per stream.
std::unique_ptr<dwcs::DwcsScheduler> make_loaded_scheduler(dwcs::ReprKind kind,
                                                           std::size_t n,
                                                           std::uint64_t seed) {
  dwcs::DwcsScheduler::Config cfg;
  cfg.repr = kind;
  cfg.ring_capacity = 8;
  auto sched = std::make_unique<dwcs::DwcsScheduler>(cfg);
  sim::Rng rng{seed ^ n};
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t y = 2 + static_cast<std::int64_t>(rng.below(6));
    const std::int64_t x = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(y)));
    const double period_ms = rng.chance(0.75) ? 33.0 : 40.0;
    sched->create_stream({.tolerance = {x, y},
                          .period = sim::Time::ms(period_ms),
                          .lossy = rng.chance(0.7)},
                         sim::Time::zero());
  }
  for (std::size_t i = 0; i < n; ++i) {
    dwcs::FrameDescriptor d;
    d.frame_id = i;
    d.bytes = mpeg::kPaperFrameBytes;
    d.enqueued_at = sim::Time::zero();
    (void)sched->enqueue(static_cast<dwcs::StreamId>(i), d, sim::Time::zero());
  }
  return sched;
}

/// One scheduling step: advance simulated time to the earliest backlogged
/// deadline, take a decision, and immediately re-enqueue a frame to the
/// dispatched stream so the backlog (and the representation's population)
/// stays at exactly `n` streams throughout the measurement.
bool step(dwcs::DwcsScheduler& sched, sim::Time& now, std::uint64_t& next_fid) {
  if (const auto next = sched.earliest_backlog_deadline(); next && *next > now) {
    now = *next;
  }
  const auto d = sched.schedule_next(now);
  if (!d) return false;
  dwcs::FrameDescriptor refill;
  refill.frame_id = next_fid++;
  refill.bytes = mpeg::kPaperFrameBytes;
  refill.enqueued_at = now;
  (void)sched.enqueue(d->stream, refill, now);
  return true;
}

SweepResult run_config(dwcs::ReprKind kind, std::size_t n, std::uint64_t seed,
                       double throughput_budget_sec,
                       double latency_budget_sec) {
  SweepResult r;
  r.repr = dwcs::to_string(kind);
  r.streams = n;
  if (kind == dwcs::ReprKind::kSortedList && n > 20'000) {
    // O(n) insert per enqueue makes even the setup phase O(n^2); at 100k
    // streams that is minutes of wall-clock for a number that is already
    // unambiguous at 10k. Recorded as skipped, not silently dropped.
    r.skipped = true;
    r.skip_reason = "setup is O(n^2) at this scale";
    return r;
  }

  // Throughput pass: no per-decision clock reads; check the budget every
  // 512 decisions so timer overhead does not pollute decisions/sec.
  {
    auto sched = make_loaded_scheduler(kind, n, seed);
    sim::Time now = sim::Time::zero();
    std::uint64_t fid = n;
    const auto t0 = Clock::now();
    double el = 0;
    std::uint64_t decisions = 0;
    for (;;) {
      for (int k = 0; k < 512; ++k) {
        if (step(*sched, now, fid)) ++decisions;
      }
      el = elapsed_sec(t0);
      if (el >= throughput_budget_sec) break;
    }
    r.decisions = decisions;
    r.elapsed_sec = el;
    r.decisions_per_sec = static_cast<double>(decisions) / el;
  }

  // Latency pass: fresh scheduler, every decision timed individually.
  {
    auto sched = make_loaded_scheduler(kind, n, seed);
    sim::Time now = sim::Time::zero();
    std::uint64_t fid = n;
    std::vector<std::uint32_t> lat_ns;
    lat_ns.reserve(1 << 20);
    const auto t0 = Clock::now();
    while (elapsed_sec(t0) < latency_budget_sec &&
           lat_ns.size() < lat_ns.capacity()) {
      const auto a = Clock::now();
      const bool ok = step(*sched, now, fid);
      const auto b = Clock::now();
      if (!ok) continue;
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
      lat_ns.push_back(static_cast<std::uint32_t>(
          std::min<std::int64_t>(ns, UINT32_MAX)));
    }
    if (!lat_ns.empty()) {
      std::sort(lat_ns.begin(), lat_ns.end());
      r.p50_ns = lat_ns[lat_ns.size() / 2];
      r.p99_ns = lat_ns[lat_ns.size() - 1 - lat_ns.size() / 100];
    }
  }
  return r;
}

bool write_json(const std::vector<SweepResult>& results,
                const std::string& path, std::uint64_t seed) {
  std::ofstream out{path};
  if (!out) {
    std::printf("could not write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"scale_sweep\",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"unit\": {\"decisions_per_sec\": \"1/s\", \"latency\": \"ns\"},\n"
      << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"repr\": \"" << r.repr << "\", \"streams\": " << r.streams;
    if (r.skipped) {
      out << ", \"skipped\": true, \"skip_reason\": \"" << r.skip_reason
          << "\"}";
    } else {
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    ", \"decisions\": %llu, \"elapsed_sec\": %.3f, "
                    "\"decisions_per_sec\": %.0f, \"p50_ns\": %.0f, "
                    "\"p99_ns\": %.0f}",
                    static_cast<unsigned long long>(r.decisions),
                    r.elapsed_sec, r.decisions_per_sec, r.p50_ns, r.p99_ns);
      out << buf;
    }
    out << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      bench::out_path(argc, argv, "BENCH_scale.json");
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 0x5ca1e);
  const std::vector<std::size_t> sizes{1'000, 10'000, 100'000};
  const std::vector<dwcs::ReprKind> kinds{
      dwcs::ReprKind::kDualHeap, dwcs::ReprKind::kSingleHeap,
      dwcs::ReprKind::kSortedList, dwcs::ReprKind::kFcfs,
      dwcs::ReprKind::kCalendarQueue};

  std::printf("==== scale sweep: wall-clock schedule_next throughput ====\n");
  std::printf("%-16s %10s %16s %12s %12s\n", "repr", "streams",
              "decisions/sec", "p50 ns", "p99 ns");
  std::vector<SweepResult> results;
  for (const auto kind : kinds) {
    for (const auto n : sizes) {
      const auto r = run_config(kind, n, seed, /*throughput_budget_sec=*/0.25,
                                /*latency_budget_sec=*/0.15);
      if (r.skipped) {
        std::printf("%-16s %10zu %16s (%s)\n", r.repr, r.streams, "skipped",
                    r.skip_reason);
      } else {
        std::printf("%-16s %10zu %16.0f %12.0f %12.0f\n", r.repr, r.streams,
                    r.decisions_per_sec, r.p50_ns, r.p99_ns);
      }
      results.push_back(r);
    }
  }
  return write_json(results, out_path, seed) ? 0 : 1;
}
