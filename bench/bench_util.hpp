// Shared output helpers for the reproduction benches.
//
// Every bench prints (a) the paper's reported numbers, (b) this build's
// measured numbers, so a run reads as a side-by-side reproduction check.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hpp"

namespace nistream::bench {

/// Schema version of the tracked BENCH_*.json files. Version 2 added the
/// provenance stamp (git_rev, jobs) emitted by write_stamp below.
inline constexpr int kJsonSchemaVersion = 2;

/// Revision of the tree the bench RAN against, resolved at run time:
///   1. NISTREAM_GIT_REV environment variable (CI stamps the exact checkout
///      even on stale build trees);
///   2. `git describe --always --dirty` in the source directory, so a tree
///      that was dirty at configure time but clean at run time stamps the
///      clean rev (a configure-time-only stamp once shipped "<rev>-dirty"
///      into a tracked JSON from a clean commit);
///   3. the NISTREAM_GIT_REV compile definition (configure-time fallback for
///      builds whose source tree has moved or lost .git);
///   4. "unknown".
inline std::string git_rev() {
  if (const char* env = std::getenv("NISTREAM_GIT_REV")) return env;
#ifdef NISTREAM_SOURCE_DIR
  const std::string cmd = std::string{"git -C \""} + NISTREAM_SOURCE_DIR +
                          "\" describe --always --dirty 2>/dev/null";
  if (FILE* pipe = ::popen(cmd.c_str(), "r")) {
    char buf[128] = {};
    std::string rev;
    if (std::fgets(buf, sizeof buf, pipe)) rev = buf;
    const int rc = ::pclose(pipe);
    while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
      rev.pop_back();
    }
    if (rc == 0 && !rev.empty()) return rev;
  }
#endif
#ifdef NISTREAM_GIT_REV
  return NISTREAM_GIT_REV;
#else
  return "unknown";
#endif
}

/// True when `rev` has the shape git_rev() promises: "unknown", or a 7-40
/// char lowercase-hex object name with an optional "-dirty" suffix. The
/// runner tests pin this so a malformed stamp (empty string, trailing
/// newline, shell noise) fails fast instead of landing in a tracked JSON.
inline bool git_rev_well_formed(const std::string& rev) {
  if (rev == "unknown") return true;
  std::string hex = rev;
  const std::string dirty = "-dirty";
  if (hex.size() > dirty.size() &&
      hex.compare(hex.size() - dirty.size(), dirty.size(), dirty) == 0) {
    hex.resize(hex.size() - dirty.size());
  }
  if (hex.size() < 7 || hex.size() > 40) return false;
  for (char c : hex) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

/// git_rev() captured during static initialization, BEFORE main() runs and
/// before the bench opens (and thereby dirties) its own tracked output
/// JSON. Self-stamping runs from a clean checkout stamp the clean rev; the
/// old call-at-write-time scheme always saw its own in-progress write as
/// "-dirty".
inline const std::string kGitRevAtStartup = git_rev();

/// Provenance stamp, written right after the opening "bench" key of every
/// tracked JSON. `jobs` records the worker count the sweep ran under — it is
/// the ONLY line allowed to differ between `--jobs 1` and `--jobs N` runs of
/// a deterministic sweep (CI diffs the rest).
inline void write_stamp(std::ofstream& out, unsigned jobs) {
  out << "  \"schema_version\": " << kJsonSchemaVersion << ",\n"
      << "  \"git_rev\": \"" << kGitRevAtStartup << "\",\n"
      << "  \"jobs\": " << jobs << ",\n";
}

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void row(const char* label, double paper, double measured,
                const char* unit) {
  const double delta =
      paper != 0.0 ? 100.0 * (measured - paper) / paper : 0.0;
  std::printf("  %-38s paper %10.2f %-5s  measured %10.2f %-5s  (%+.1f%%)\n",
              label, paper, unit, measured, unit, delta);
}

inline void note(const char* text) { std::printf("  %s\n", text); }

/// Print a (time, value) series as aligned columns, downsampled to at most
/// `max_rows` rows — enough to eyeball against the paper's figures.
inline void print_series(const sim::TimeSeries& ts, const char* value_label,
                         std::size_t max_rows = 25) {
  const auto& pts = ts.points();
  if (pts.empty()) {
    std::printf("  (empty series)\n");
    return;
  }
  const std::size_t stride = pts.size() > max_rows ? pts.size() / max_rows : 1;
  std::printf("  %10s  %12s\n", "time_s", value_label);
  for (std::size_t i = 0; i < pts.size(); i += stride) {
    std::printf("  %10.1f  %12.0f\n", pts[i].first.to_sec(), pts[i].second);
  }
}

/// When NISTREAM_CSV_DIR is set, write the series there as
/// `<name>.csv` (plot-ready) and say so; otherwise do nothing.
inline void maybe_write_csv(const sim::TimeSeries& ts, const std::string& name,
                            const char* value_label) {
  const char* dir = std::getenv("NISTREAM_CSV_DIR");
  if (!dir) return;
  const std::string path = std::string{dir} + "/" + name + ".csv";
  std::ofstream out{path};
  if (!out) {
    std::printf("  (could not write %s)\n", path.c_str());
    return;
  }
  ts.write_csv(out, value_label);
  std::printf("  wrote %s\n", path.c_str());
}

/// CSV for (frame#, value) sequences (the Figure 8/10 x-axis).
inline void maybe_write_frame_csv(
    const std::vector<std::pair<std::uint64_t, double>>& points,
    const std::string& name, const char* value_label) {
  const char* dir = std::getenv("NISTREAM_CSV_DIR");
  if (!dir) return;
  const std::string path = std::string{dir} + "/" + name + ".csv";
  std::ofstream out{path};
  if (!out) return;
  out << "frame," << value_label << "\n";
  for (const auto& [frame, v] : points) out << frame << ',' << v << "\n";
  std::printf("  wrote %s\n", path.c_str());
}

}  // namespace nistream::bench
