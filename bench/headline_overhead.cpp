// Headline comparison (§1, §4.2.3 "Discussion of Results"):
//
//   "The scheduling overhead of the host-based DWCS scheduler ... is of the
//    order of ~50us. This result was obtained on an UltraSPARC CPU (300 MHz)
//    with quiescent load. The scheduling overhead of the i960 RD I2O card
//    (66 MHz) based scheduler is around ~65us. These results are comparable,
//    although the i960 RD is a much slower processor (by a factor of 4)."
//
// We run the same instrumented DWCS code against both CPU models and report
// the per-decision overhead and the overhead-per-clock ratio.
#include "apps/experiments.hpp"
#include "bench_util.hpp"

using namespace nistream;

int main() {
  bench::header("Headline: NI (66 MHz i960) vs host (300 MHz UltraSPARC)");

  // NI build: fixed point, d-cache on (the deployment configuration).
  apps::MicrobenchConfig ni;
  ni.arith = dwcs::ArithMode::kFixedPoint;
  ni.dcache_enabled = true;
  ni.cpu = hw::kI960Rd;
  const auto ni_result = apps::run_microbench(ni);

  // Host build: native FPU doubles, big warm cache, 4.5x the clock. The host
  // decision path carries extra fixed overhead (syscalls, timer reads,
  // deeper call chains) that the embedded build avoids; it is part of the
  // host calibration rather than the DWCS algorithm.
  apps::MicrobenchConfig host;
  host.arith = dwcs::ArithMode::kNativeFloat;
  host.dcache_enabled = true;
  host.cpu = hw::kUltraSparc300;
  // Host fixed path: user/kernel crossings, gettimeofday per decision,
  // deeper call chains — ~13k cycles at 300 MHz (see EXPERIMENTS.md).
  host.decision_overhead_cycles = 13000;
  const auto host_result = apps::run_microbench(host);

  bench::row("NI scheduling overhead per frame", 65.0, ni_result.overhead_us(),
             "us");
  bench::row("host scheduling overhead per frame (quiescent)", 50.0,
             host_result.overhead_us(), "us");
  bench::row("clock ratio (UltraSPARC / i960)", 4.0, 300.0 / 66.0, "x");
  bench::note("The embedded scheduler is comparable to the host scheduler");
  bench::note("despite a ~4x slower clock: no deep cache hierarchy misses,");
  bench::note("no kernel crossings, fixed-point arithmetic.");
  return 0;
}
