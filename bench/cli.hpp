// Tiny shared argv parsing for the bench binaries.
//
// Every bench takes an optional positional output path plus `--key=value`
// flags, so a run is reproducible from its command line alone (the seed in
// particular lands in the output JSON). No dependency, no allocation beyond
// the strings argv already is.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace nistream::bench {

/// Value of `--<name>=<u64>` in argv, or `fallback` when absent. Accepts
/// decimal and 0x-prefixed hex. A malformed value is a hard error — silently
/// running with the wrong seed would poison a "reproducible" result.
inline std::uint64_t flag_u64(int argc, char** argv, std::string_view name,
                              std::uint64_t fallback) {
  const std::string prefix = "--" + std::string{name} + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (!arg.starts_with(prefix)) continue;
    const std::string value{arg.substr(prefix.size())};
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0') {
      std::fprintf(stderr, "bad %s value: '%s'\n", prefix.c_str(),
                   value.c_str());
      std::exit(2);
    }
    return v;
  }
  return fallback;
}

/// Value of `--<name>=<str>` or `--<name> <str>` in argv, or `fallback`
/// when absent. A flag present without a value is a hard error.
inline std::string flag_str(int argc, char** argv, std::string_view name,
                            std::string_view fallback) {
  const std::string prefix = "--" + std::string{name};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (!arg.starts_with(prefix)) continue;
    if (arg.size() == prefix.size()) {  // --name <value>
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", prefix.c_str());
        std::exit(2);
      }
      return argv[i + 1];
    }
    if (arg[prefix.size()] == '=') {  // --name=<value>
      return std::string{arg.substr(prefix.size() + 1)};
    }
    // A longer flag sharing the prefix (--outdir vs --out): not ours.
  }
  return std::string{fallback};
}

/// Value of `--<name>=<a,b,c>` parsed as comma-separated u64s, or `fallback`
/// (itself a comma-separated literal) when absent. Empty tokens are skipped;
/// a malformed token is a hard error, same policy as flag_u64. Shared by the
/// sweep benches for axis lists (`--shards=1,2,4`, `--sessions=1000,100000`).
inline std::vector<std::uint64_t> flag_u64_list(int argc, char** argv,
                                                std::string_view name,
                                                std::string_view fallback) {
  const std::string value = flag_str(argc, argv, name, fallback);
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t comma = value.find(',', pos);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end > pos) {
      const std::string tok = value.substr(pos, end - pos);
      char* tail = nullptr;
      const std::uint64_t v = std::strtoull(tok.c_str(), &tail, 0);
      if (tail == tok.c_str() || *tail != '\0') {
        std::fprintf(stderr, "bad --%s entry: '%s'\n",
                     std::string{name}.c_str(), tok.c_str());
        std::exit(2);
      }
      out.push_back(v);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Value of `--<name>=<a,b,c>` parsed as comma-separated strings, or
/// `fallback` (itself a comma-separated literal) when absent. Empty tokens
/// are skipped. Used for name-valued axis lists (`--tenants=alpha,beta`,
/// `--rules=w0,w64,w1024`).
inline std::vector<std::string> flag_str_list(int argc, char** argv,
                                              std::string_view name,
                                              std::string_view fallback) {
  const std::string value = flag_str(argc, argv, name, fallback);
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t comma = value.find(',', pos);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end > pos) out.push_back(value.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// True when bare `--<name>` appears in argv (a boolean switch).
inline bool flag_present(int argc, char** argv, std::string_view name) {
  const std::string flag = "--" + std::string{name};
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// First argv entry that is not a `--flag` (and not the value of a
/// space-separated `--out <path>`), or `fallback`. Benches use this for
/// their output path.
inline std::string positional(int argc, char** argv,
                              std::string_view fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--out") {  // next entry is its value, not a positional
      ++i;
      continue;
    }
    if (arg.starts_with("--")) continue;
    return argv[i];
  }
  return std::string{fallback};
}

/// Where a bench should write its JSON: `--out <path>` / `--out=<path>`
/// wins, then the legacy positional path, then `fallback`.
inline std::string out_path(int argc, char** argv, std::string_view fallback) {
  const std::string flagged = flag_str(argc, argv, "out", "");
  if (!flagged.empty()) return flagged;
  return positional(argc, argv, fallback);
}

}  // namespace nistream::bench
