// Tiny shared argv parsing for the bench binaries.
//
// Every bench takes an optional positional output path plus `--key=value`
// flags, so a run is reproducible from its command line alone (the seed in
// particular lands in the output JSON). No dependency, no allocation beyond
// the strings argv already is.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace nistream::bench {

/// Value of `--<name>=<u64>` in argv, or `fallback` when absent. Accepts
/// decimal and 0x-prefixed hex. A malformed value is a hard error — silently
/// running with the wrong seed would poison a "reproducible" result.
inline std::uint64_t flag_u64(int argc, char** argv, std::string_view name,
                              std::uint64_t fallback) {
  const std::string prefix = "--" + std::string{name} + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (!arg.starts_with(prefix)) continue;
    const std::string value{arg.substr(prefix.size())};
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0') {
      std::fprintf(stderr, "bad %s value: '%s'\n", prefix.c_str(),
                   value.c_str());
      std::exit(2);
    }
    return v;
  }
  return fallback;
}

/// Value of `--<name>=<str>` or `--<name> <str>` in argv, or `fallback`
/// when absent. A flag present without a value is a hard error.
inline std::string flag_str(int argc, char** argv, std::string_view name,
                            std::string_view fallback) {
  const std::string prefix = "--" + std::string{name};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (!arg.starts_with(prefix)) continue;
    if (arg.size() == prefix.size()) {  // --name <value>
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", prefix.c_str());
        std::exit(2);
      }
      return argv[i + 1];
    }
    if (arg[prefix.size()] == '=') {  // --name=<value>
      return std::string{arg.substr(prefix.size() + 1)};
    }
    // A longer flag sharing the prefix (--outdir vs --out): not ours.
  }
  return std::string{fallback};
}

/// True when bare `--<name>` appears in argv (a boolean switch).
inline bool flag_present(int argc, char** argv, std::string_view name) {
  const std::string flag = "--" + std::string{name};
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// First argv entry that is not a `--flag` (and not the value of a
/// space-separated `--out <path>`), or `fallback`. Benches use this for
/// their output path.
inline std::string positional(int argc, char** argv,
                              std::string_view fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--out") {  // next entry is its value, not a positional
      ++i;
      continue;
    }
    if (arg.starts_with("--")) continue;
    return argv[i];
  }
  return std::string{fallback};
}

/// Where a bench should write its JSON: `--out <path>` / `--out=<path>`
/// wins, then the legacy positional path, then `fallback`.
inline std::string out_path(int argc, char** argv, std::string_view fallback) {
  const std::string flagged = flag_str(argc, argv, "out", "");
  if (!flagged.empty()) return flagged;
  return positional(argc, argv, fallback);
}

}  // namespace nistream::bench
