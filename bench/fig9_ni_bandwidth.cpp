// Figure 9 — NI-based scheduler bandwidth: "unaffected by system load".
//
// Paper: with DWCS on the i960 RD NI, streaming to clients directly, the
// settling bandwidth (~260 kbit/s for s1) is the same whether or not the
// host is running the 60% web load — comparable to the host scheduler's
// no-load settling bandwidth (~250 kbit/s in Figure 7).
#include "apps/experiments.hpp"
#include "bench_util.hpp"

using namespace nistream;

int main() {
  bench::header("Figure 9: NI scheduler bandwidth, immune to host load");

  apps::LoadExperimentConfig unloaded;
  unloaded.target_utilization = 0.0;
  const auto base = apps::run_ni_load_experiment(unloaded);

  apps::LoadExperimentConfig loaded;
  loaded.target_utilization = 0.60;
  const auto under_load = apps::run_ni_load_experiment(loaded);

  std::printf(" -- no web load --\n");
  bench::row("s1 settling bandwidth", 260e3, base.s1.settle_bandwidth_bps,
             "bps");
  bench::row("s2 settling bandwidth", 250e3, base.s2.settle_bandwidth_bps,
             "bps");
  std::printf(" -- 60%% web load on the host --\n");
  bench::row("host avg utilization", 60.0, under_load.avg_utilization, "%");
  bench::row("s1 settling bandwidth", 260e3,
             under_load.s1.settle_bandwidth_bps, "bps");
  bench::row("s2 settling bandwidth", 250e3,
             under_load.s2.settle_bandwidth_bps, "bps");

  const double immunity = under_load.s1.settle_bandwidth_bps /
                          base.s1.settle_bandwidth_bps;
  std::printf(" Checks:\n");
  bench::row("loaded/unloaded bandwidth ratio (immunity)", 1.0, immunity, "x");
  bench::print_series(under_load.s1.bandwidth_bps, "s1_bps_under_load", 20);
  bench::maybe_write_csv(under_load.s1.bandwidth_bps, "fig9_bw_loaded",
                         "s1_bps");
  bench::note("The NI scheduler's bandwidth is identical with and without");
  bench::note("host load — traffic is eliminated from the host entirely.");
  return 0;
}
