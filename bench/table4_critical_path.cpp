// Table 4 — Critical-path benchmarks: 1000-byte frame transfer latency from
// disk to remote client, averaged over 1000 transfers, for the three frame
// paths of Figure 3.
//
// Paper values (§4.2.2, Table 4), milliseconds per frame:
//   Expt I   Disk-Host CPU-I/O Bus-Network:     1 (UFS) / 8 (VxWorks dosFs)
//   Expt II  NI Disk-NI CPU-Network:            5.4
//   Expt III Disk-I/O Bus-NI CPU-Network:       5.415  (4.2disk+1.2net+0.015pci)
#include "apps/experiments.hpp"
#include "bench_util.hpp"
#include "cli.hpp"

using namespace nistream;

int main(int argc, char** argv) {
  bench::header("Table 4: critical-path frame-transfer benchmarks");
  const auto r = apps::run_critical_path(/*n_transfers=*/1000);

  bench::row("Expt I  (Path A, UFS)", 1.0, r.expt1_ufs_ms, "ms");
  bench::row("Expt I  (Path A, VxWorks dosFs)", 8.0, r.expt1_dosfs_ms, "ms");
  bench::row("Expt II (Path C, NI disk->NI->net)", 5.4, r.expt2_ms, "ms");
  bench::row("Expt III(Path B, disk->PCI->NI->net)", 5.415, r.expt3_ms, "ms");

  std::printf(" Expt III decomposition:\n");
  bench::row("disk component", 4.2, r.expt3_disk_ms, "ms");
  bench::row("net component", 1.2, r.expt3_net_ms, "ms");
  bench::row("pci component", 0.015, r.expt3_pci_ms, "ms");

  // Per-stage means stamped by the FramePath each experiment ran on — the
  // same decomposition, uniform across every path. Opt-in so the default
  // output stays byte-stable across refactors.
  if (bench::flag_present(argc, argv, "stages")) {
    std::printf(" Stage breakdown (server-side, ms/frame):\n");
    const auto breakdown = [](const char* label,
                              const std::vector<apps::StageLatency>& stages) {
      std::printf("  %-24s", label);
      for (const auto& s : stages) {
        std::printf("  %s=%.3f", s.stage.c_str(), s.mean_ms);
      }
      std::printf("\n");
    };
    breakdown("Path A (UFS)", r.expt1_ufs_stages);
    breakdown("Path A (dosFs)", r.expt1_dosfs_stages);
    breakdown("Path C", r.expt2_stages);
    breakdown("Path B", r.expt3_stages);
  }

  std::printf(" Shape checks:\n");
  bench::note(r.expt1_ufs_ms < r.expt2_ms
                  ? "ok: cached UFS host path beats NI paths on latency"
                  : "MISMATCH: UFS path should be fastest");
  bench::note(r.expt1_dosfs_ms > r.expt2_ms
                  ? "ok: uncached dosFs host path is the slowest"
                  : "MISMATCH: dosFs path should be slowest");
  bench::note(r.expt3_ms - r.expt2_ms < 0.1
                  ? "ok: Path B adds only ~15 us of PCI to Path C"
                  : "MISMATCH: Path B should cost ~0.015 ms over Path C");
  return 0;
}
