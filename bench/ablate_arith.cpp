// Ablation: arithmetic implementation (§4.2).
//
// Fixed-point fractions vs the software floating-point library vs a
// hardware FPU, across cache states. The paper's claims: the fixed-point
// port saves ~20 us per decision over software FP on the FPU-less i960, and
// "does not affect the quality of scheduling" — we also verify decision
// equivalence by replaying an identical workload.
#include <cstdio>

#include "apps/experiments.hpp"
#include "bench_util.hpp"
#include "dwcs/scheduler.hpp"
#include "sim/random.hpp"

using namespace nistream;

namespace {

/// Dispatch trace of a random workload under one arithmetic mode.
std::vector<std::pair<dwcs::StreamId, std::uint64_t>> trace(
    dwcs::ArithMode mode) {
  dwcs::DwcsScheduler::Config cfg;
  cfg.arith = mode;
  dwcs::DwcsScheduler s{cfg};
  sim::Rng rng{31337};
  std::vector<dwcs::StreamId> ids;
  for (int i = 0; i < 8; ++i) {
    const auto y = 2 + static_cast<std::int64_t>(rng.below(8));
    const auto x = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(y)));
    ids.push_back(s.create_stream({.tolerance = {x, y},
                                   .period = sim::Time::ms(10 * (1 + static_cast<double>(rng.below(3)))),
                                   .lossy = rng.chance(0.5)},
                                  sim::Time::zero()));
  }
  std::vector<std::pair<dwcs::StreamId, std::uint64_t>> out;
  std::uint64_t fid = 0;
  for (int t = 0; t < 5000; t += 5) {
    for (const auto id : ids) {
      if (t % 20 == 0) {
        s.enqueue(id,
                  dwcs::FrameDescriptor{.frame_id = fid++, .bytes = 1000,
                                        .type = mpeg::FrameType::kP,
                                        .enqueued_at = sim::Time::ms(t)},
                  sim::Time::ms(t));
      }
    }
    if (t % 10 == 0) {
      if (const auto d = s.schedule_next(sim::Time::ms(t))) {
        out.emplace_back(d->stream, d->frame.frame_id);
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::header("Ablation: arithmetic mode (avg frame sched time, us)");

  std::printf("  %-22s %14s %14s %14s\n", "config", "fixed-point",
              "software-FP", "native-FPU");
  for (const bool cache : {false, true}) {
    std::printf("  d-cache %-14s", cache ? "enabled" : "disabled");
    for (const auto mode :
         {dwcs::ArithMode::kFixedPoint, dwcs::ArithMode::kSoftFloat,
          dwcs::ArithMode::kNativeFloat}) {
      apps::MicrobenchConfig cfg;
      cfg.arith = mode;
      cfg.dcache_enabled = cache;
      std::printf(" %14.2f", apps::run_microbench(cfg).avg_frame_sched_us);
    }
    std::printf("\n");
  }

  // Quality equivalence: identical decisions across arithmetic modes.
  const auto fixed = trace(dwcs::ArithMode::kFixedPoint);
  const auto soft = trace(dwcs::ArithMode::kSoftFloat);
  const auto native = trace(dwcs::ArithMode::kNativeFloat);
  const bool identical = fixed == soft && fixed == native;
  std::printf("  decision-trace equivalence across modes: %s (%zu dispatches)\n",
              identical ? "IDENTICAL" : "DIVERGED", fixed.size());
  bench::note("Paper: \"Using the fixed point version does not affect the");
  bench::note("quality of scheduling\" — all modes make the same decisions.");
  return identical ? 0 : 1;
}
