// Table 5 — PCI card-to-card transfer benchmarks.
//
// Paper values (§4.2.2, Table 5):
//   MPEG file transfer by DMA (773665 bytes):  11673.84 us  (66.27 MB/s)
//   Memory word read  (PIO):                       3.6 us
//   Memory word write (PIO):                       3.1 us
#include "apps/experiments.hpp"
#include "bench_util.hpp"
#include "hw/pci.hpp"
#include "sim/engine.hpp"

using namespace nistream;

int main() {
  bench::header("Table 5: PCI card-to-card transfer benchmarks");
  const auto r = apps::run_pci_bench();

  bench::row("MPEG file DMA (773665 bytes)", 11673.84, r.mpeg_file_dma_us, "us");
  bench::row("DMA effective bandwidth", 66.27, r.mpeg_file_dma_mbps, "MB/s");
  bench::row("Memory word read (PIO)", 3.6, r.pio_word_read_us, "us");
  bench::row("Memory word write (PIO)", 3.1, r.pio_word_write_us, "us");

  // The per-frame figure quoted in §4.2.2.
  sim::Engine eng;
  hw::PciBus bus{eng};
  bench::row("1000-byte frame card-to-card", 15.0,
             bus.dma_duration(1000).to_us(), "us");
  return 0;
}
