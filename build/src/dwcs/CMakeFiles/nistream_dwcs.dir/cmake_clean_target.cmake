file(REMOVE_RECURSE
  "libnistream_dwcs.a"
)
