# Empty dependencies file for nistream_dwcs.
# This may be replaced when dependencies are built.
