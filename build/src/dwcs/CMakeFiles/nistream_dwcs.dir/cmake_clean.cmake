file(REMOVE_RECURSE
  "CMakeFiles/nistream_dwcs.dir/baselines.cpp.o"
  "CMakeFiles/nistream_dwcs.dir/baselines.cpp.o.d"
  "CMakeFiles/nistream_dwcs.dir/repr.cpp.o"
  "CMakeFiles/nistream_dwcs.dir/repr.cpp.o.d"
  "CMakeFiles/nistream_dwcs.dir/scheduler.cpp.o"
  "CMakeFiles/nistream_dwcs.dir/scheduler.cpp.o.d"
  "libnistream_dwcs.a"
  "libnistream_dwcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nistream_dwcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
