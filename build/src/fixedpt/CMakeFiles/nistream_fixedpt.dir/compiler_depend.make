# Empty compiler generated dependencies file for nistream_fixedpt.
# This may be replaced when dependencies are built.
