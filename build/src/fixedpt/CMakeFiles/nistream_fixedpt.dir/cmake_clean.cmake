file(REMOVE_RECURSE
  "CMakeFiles/nistream_fixedpt.dir/softfloat.cpp.o"
  "CMakeFiles/nistream_fixedpt.dir/softfloat.cpp.o.d"
  "libnistream_fixedpt.a"
  "libnistream_fixedpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nistream_fixedpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
