file(REMOVE_RECURSE
  "libnistream_fixedpt.a"
)
