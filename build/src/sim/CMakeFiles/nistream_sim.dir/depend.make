# Empty dependencies file for nistream_sim.
# This may be replaced when dependencies are built.
