file(REMOVE_RECURSE
  "libnistream_sim.a"
)
