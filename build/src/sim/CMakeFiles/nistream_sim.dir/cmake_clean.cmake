file(REMOVE_RECURSE
  "CMakeFiles/nistream_sim.dir/cpusched.cpp.o"
  "CMakeFiles/nistream_sim.dir/cpusched.cpp.o.d"
  "CMakeFiles/nistream_sim.dir/engine.cpp.o"
  "CMakeFiles/nistream_sim.dir/engine.cpp.o.d"
  "CMakeFiles/nistream_sim.dir/stats.cpp.o"
  "CMakeFiles/nistream_sim.dir/stats.cpp.o.d"
  "libnistream_sim.a"
  "libnistream_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nistream_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
