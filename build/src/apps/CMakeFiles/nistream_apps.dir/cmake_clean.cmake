file(REMOVE_RECURSE
  "CMakeFiles/nistream_apps.dir/experiments.cpp.o"
  "CMakeFiles/nistream_apps.dir/experiments.cpp.o.d"
  "libnistream_apps.a"
  "libnistream_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nistream_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
