# Empty compiler generated dependencies file for nistream_apps.
# This may be replaced when dependencies are built.
