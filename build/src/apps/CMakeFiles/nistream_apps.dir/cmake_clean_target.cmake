file(REMOVE_RECURSE
  "libnistream_apps.a"
)
