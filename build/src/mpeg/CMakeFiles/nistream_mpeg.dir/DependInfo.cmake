
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpeg/encoder.cpp" "src/mpeg/CMakeFiles/nistream_mpeg.dir/encoder.cpp.o" "gcc" "src/mpeg/CMakeFiles/nistream_mpeg.dir/encoder.cpp.o.d"
  "/root/repo/src/mpeg/segmenter.cpp" "src/mpeg/CMakeFiles/nistream_mpeg.dir/segmenter.cpp.o" "gcc" "src/mpeg/CMakeFiles/nistream_mpeg.dir/segmenter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nistream_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
