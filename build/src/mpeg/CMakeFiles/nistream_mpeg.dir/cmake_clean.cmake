file(REMOVE_RECURSE
  "CMakeFiles/nistream_mpeg.dir/encoder.cpp.o"
  "CMakeFiles/nistream_mpeg.dir/encoder.cpp.o.d"
  "CMakeFiles/nistream_mpeg.dir/segmenter.cpp.o"
  "CMakeFiles/nistream_mpeg.dir/segmenter.cpp.o.d"
  "libnistream_mpeg.a"
  "libnistream_mpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nistream_mpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
