# Empty compiler generated dependencies file for nistream_mpeg.
# This may be replaced when dependencies are built.
