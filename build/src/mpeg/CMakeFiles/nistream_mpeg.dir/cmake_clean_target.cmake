file(REMOVE_RECURSE
  "libnistream_mpeg.a"
)
