file(REMOVE_RECURSE
  "CMakeFiles/hostos_host_test.dir/host_test.cpp.o"
  "CMakeFiles/hostos_host_test.dir/host_test.cpp.o.d"
  "hostos_host_test"
  "hostos_host_test.pdb"
  "hostos_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostos_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
