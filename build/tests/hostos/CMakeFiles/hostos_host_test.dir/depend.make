# Empty dependencies file for hostos_host_test.
# This may be replaced when dependencies are built.
