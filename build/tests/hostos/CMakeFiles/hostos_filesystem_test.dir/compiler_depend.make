# Empty compiler generated dependencies file for hostos_filesystem_test.
# This may be replaced when dependencies are built.
