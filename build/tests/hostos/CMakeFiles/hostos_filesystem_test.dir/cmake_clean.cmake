file(REMOVE_RECURSE
  "CMakeFiles/hostos_filesystem_test.dir/filesystem_test.cpp.o"
  "CMakeFiles/hostos_filesystem_test.dir/filesystem_test.cpp.o.d"
  "hostos_filesystem_test"
  "hostos_filesystem_test.pdb"
  "hostos_filesystem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostos_filesystem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
