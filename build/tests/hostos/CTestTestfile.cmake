# CMake generated Testfile for 
# Source directory: /root/repo/tests/hostos
# Build directory: /root/repo/build/tests/hostos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hostos/hostos_host_test[1]_include.cmake")
include("/root/repo/build/tests/hostos/hostos_filesystem_test[1]_include.cmake")
