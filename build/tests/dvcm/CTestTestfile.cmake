# CMake generated Testfile for 
# Source directory: /root/repo/tests/dvcm
# Build directory: /root/repo/build/tests/dvcm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dvcm/dvcm_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/dvcm/dvcm_stream_service_test[1]_include.cmake")
include("/root/repo/build/tests/dvcm/dvcm_tcp_offload_test[1]_include.cmake")
include("/root/repo/build/tests/dvcm/dvcm_remote_test[1]_include.cmake")
