file(REMOVE_RECURSE
  "CMakeFiles/dvcm_runtime_test.dir/runtime_test.cpp.o"
  "CMakeFiles/dvcm_runtime_test.dir/runtime_test.cpp.o.d"
  "dvcm_runtime_test"
  "dvcm_runtime_test.pdb"
  "dvcm_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvcm_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
