# Empty compiler generated dependencies file for dvcm_runtime_test.
# This may be replaced when dependencies are built.
