# Empty dependencies file for dvcm_remote_test.
# This may be replaced when dependencies are built.
