file(REMOVE_RECURSE
  "CMakeFiles/dvcm_remote_test.dir/remote_test.cpp.o"
  "CMakeFiles/dvcm_remote_test.dir/remote_test.cpp.o.d"
  "dvcm_remote_test"
  "dvcm_remote_test.pdb"
  "dvcm_remote_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvcm_remote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
