# Empty dependencies file for dvcm_tcp_offload_test.
# This may be replaced when dependencies are built.
