# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dvcm_tcp_offload_test.
