file(REMOVE_RECURSE
  "CMakeFiles/dvcm_tcp_offload_test.dir/tcp_offload_test.cpp.o"
  "CMakeFiles/dvcm_tcp_offload_test.dir/tcp_offload_test.cpp.o.d"
  "dvcm_tcp_offload_test"
  "dvcm_tcp_offload_test.pdb"
  "dvcm_tcp_offload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvcm_tcp_offload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
