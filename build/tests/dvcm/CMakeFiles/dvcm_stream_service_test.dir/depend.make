# Empty dependencies file for dvcm_stream_service_test.
# This may be replaced when dependencies are built.
