# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dvcm_stream_service_test.
