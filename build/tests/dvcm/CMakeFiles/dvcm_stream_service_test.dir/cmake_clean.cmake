file(REMOVE_RECURSE
  "CMakeFiles/dvcm_stream_service_test.dir/stream_service_test.cpp.o"
  "CMakeFiles/dvcm_stream_service_test.dir/stream_service_test.cpp.o.d"
  "dvcm_stream_service_test"
  "dvcm_stream_service_test.pdb"
  "dvcm_stream_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvcm_stream_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
