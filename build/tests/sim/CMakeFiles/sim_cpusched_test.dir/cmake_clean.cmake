file(REMOVE_RECURSE
  "CMakeFiles/sim_cpusched_test.dir/cpusched_test.cpp.o"
  "CMakeFiles/sim_cpusched_test.dir/cpusched_test.cpp.o.d"
  "sim_cpusched_test"
  "sim_cpusched_test.pdb"
  "sim_cpusched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_cpusched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
