file(REMOVE_RECURSE
  "CMakeFiles/sim_coro_test.dir/coro_test.cpp.o"
  "CMakeFiles/sim_coro_test.dir/coro_test.cpp.o.d"
  "sim_coro_test"
  "sim_coro_test.pdb"
  "sim_coro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_coro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
