file(REMOVE_RECURSE
  "CMakeFiles/net_tcplite_test.dir/tcplite_test.cpp.o"
  "CMakeFiles/net_tcplite_test.dir/tcplite_test.cpp.o.d"
  "net_tcplite_test"
  "net_tcplite_test.pdb"
  "net_tcplite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tcplite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
