# Empty compiler generated dependencies file for hw_nic_board_test.
# This may be replaced when dependencies are built.
