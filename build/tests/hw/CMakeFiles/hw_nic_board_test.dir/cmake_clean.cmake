file(REMOVE_RECURSE
  "CMakeFiles/hw_nic_board_test.dir/nic_board_test.cpp.o"
  "CMakeFiles/hw_nic_board_test.dir/nic_board_test.cpp.o.d"
  "hw_nic_board_test"
  "hw_nic_board_test.pdb"
  "hw_nic_board_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_nic_board_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
