file(REMOVE_RECURSE
  "CMakeFiles/hw_i2o_test.dir/i2o_test.cpp.o"
  "CMakeFiles/hw_i2o_test.dir/i2o_test.cpp.o.d"
  "hw_i2o_test"
  "hw_i2o_test.pdb"
  "hw_i2o_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_i2o_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
