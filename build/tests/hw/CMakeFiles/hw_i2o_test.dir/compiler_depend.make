# Empty compiler generated dependencies file for hw_i2o_test.
# This may be replaced when dependencies are built.
