file(REMOVE_RECURSE
  "CMakeFiles/hw_scsi_test.dir/scsi_test.cpp.o"
  "CMakeFiles/hw_scsi_test.dir/scsi_test.cpp.o.d"
  "hw_scsi_test"
  "hw_scsi_test.pdb"
  "hw_scsi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_scsi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
