# Empty dependencies file for hw_scsi_test.
# This may be replaced when dependencies are built.
