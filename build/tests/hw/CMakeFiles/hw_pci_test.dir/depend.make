# Empty dependencies file for hw_pci_test.
# This may be replaced when dependencies are built.
