file(REMOVE_RECURSE
  "CMakeFiles/hw_pci_test.dir/pci_test.cpp.o"
  "CMakeFiles/hw_pci_test.dir/pci_test.cpp.o.d"
  "hw_pci_test"
  "hw_pci_test.pdb"
  "hw_pci_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_pci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
