# Empty dependencies file for hw_striped_volume_test.
# This may be replaced when dependencies are built.
