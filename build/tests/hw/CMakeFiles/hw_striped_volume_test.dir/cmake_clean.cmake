file(REMOVE_RECURSE
  "CMakeFiles/hw_striped_volume_test.dir/striped_volume_test.cpp.o"
  "CMakeFiles/hw_striped_volume_test.dir/striped_volume_test.cpp.o.d"
  "hw_striped_volume_test"
  "hw_striped_volume_test.pdb"
  "hw_striped_volume_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_striped_volume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
