# Empty compiler generated dependencies file for hw_ethernet_test.
# This may be replaced when dependencies are built.
