file(REMOVE_RECURSE
  "CMakeFiles/hw_ethernet_test.dir/ethernet_test.cpp.o"
  "CMakeFiles/hw_ethernet_test.dir/ethernet_test.cpp.o.d"
  "hw_ethernet_test"
  "hw_ethernet_test.pdb"
  "hw_ethernet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_ethernet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
