# CMake generated Testfile for 
# Source directory: /root/repo/tests/hw
# Build directory: /root/repo/build/tests/hw
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hw/hw_cache_test[1]_include.cmake")
include("/root/repo/build/tests/hw/hw_cpu_test[1]_include.cmake")
include("/root/repo/build/tests/hw/hw_pci_test[1]_include.cmake")
include("/root/repo/build/tests/hw/hw_ethernet_test[1]_include.cmake")
include("/root/repo/build/tests/hw/hw_scsi_test[1]_include.cmake")
include("/root/repo/build/tests/hw/hw_i2o_test[1]_include.cmake")
include("/root/repo/build/tests/hw/hw_memory_test[1]_include.cmake")
include("/root/repo/build/tests/hw/hw_nic_board_test[1]_include.cmake")
include("/root/repo/build/tests/hw/hw_striped_volume_test[1]_include.cmake")
