# CMake generated Testfile for 
# Source directory: /root/repo/tests/rtos
# Build directory: /root/repo/build/tests/rtos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rtos/rtos_wind_test[1]_include.cmake")
