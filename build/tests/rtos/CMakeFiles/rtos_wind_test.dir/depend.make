# Empty dependencies file for rtos_wind_test.
# This may be replaced when dependencies are built.
