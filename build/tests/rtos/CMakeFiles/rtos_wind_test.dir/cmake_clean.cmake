file(REMOVE_RECURSE
  "CMakeFiles/rtos_wind_test.dir/wind_test.cpp.o"
  "CMakeFiles/rtos_wind_test.dir/wind_test.cpp.o.d"
  "rtos_wind_test"
  "rtos_wind_test.pdb"
  "rtos_wind_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtos_wind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
