# CMake generated Testfile for 
# Source directory: /root/repo/tests/apps
# Build directory: /root/repo/build/tests/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/apps/apps_webload_test[1]_include.cmake")
include("/root/repo/build/tests/apps/apps_experiments_test[1]_include.cmake")
include("/root/repo/build/tests/apps/apps_media_server_test[1]_include.cmake")
include("/root/repo/build/tests/apps/apps_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/apps/apps_determinism_test[1]_include.cmake")
include("/root/repo/build/tests/apps/apps_microbench_matrix_test[1]_include.cmake")
