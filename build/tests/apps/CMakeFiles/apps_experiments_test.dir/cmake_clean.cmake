file(REMOVE_RECURSE
  "CMakeFiles/apps_experiments_test.dir/experiments_test.cpp.o"
  "CMakeFiles/apps_experiments_test.dir/experiments_test.cpp.o.d"
  "apps_experiments_test"
  "apps_experiments_test.pdb"
  "apps_experiments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_experiments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
