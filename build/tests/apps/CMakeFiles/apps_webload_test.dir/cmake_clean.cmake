file(REMOVE_RECURSE
  "CMakeFiles/apps_webload_test.dir/webload_test.cpp.o"
  "CMakeFiles/apps_webload_test.dir/webload_test.cpp.o.d"
  "apps_webload_test"
  "apps_webload_test.pdb"
  "apps_webload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_webload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
