# Empty dependencies file for apps_determinism_test.
# This may be replaced when dependencies are built.
