# Empty dependencies file for apps_media_server_test.
# This may be replaced when dependencies are built.
