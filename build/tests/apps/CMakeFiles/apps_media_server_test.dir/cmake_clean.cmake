file(REMOVE_RECURSE
  "CMakeFiles/apps_media_server_test.dir/media_server_test.cpp.o"
  "CMakeFiles/apps_media_server_test.dir/media_server_test.cpp.o.d"
  "apps_media_server_test"
  "apps_media_server_test.pdb"
  "apps_media_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_media_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
