# Empty compiler generated dependencies file for apps_microbench_matrix_test.
# This may be replaced when dependencies are built.
