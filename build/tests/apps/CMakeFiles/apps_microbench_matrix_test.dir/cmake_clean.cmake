file(REMOVE_RECURSE
  "CMakeFiles/apps_microbench_matrix_test.dir/microbench_matrix_test.cpp.o"
  "CMakeFiles/apps_microbench_matrix_test.dir/microbench_matrix_test.cpp.o.d"
  "apps_microbench_matrix_test"
  "apps_microbench_matrix_test.pdb"
  "apps_microbench_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_microbench_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
