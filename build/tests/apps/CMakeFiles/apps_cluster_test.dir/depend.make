# Empty dependencies file for apps_cluster_test.
# This may be replaced when dependencies are built.
