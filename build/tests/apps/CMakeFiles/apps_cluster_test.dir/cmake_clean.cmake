file(REMOVE_RECURSE
  "CMakeFiles/apps_cluster_test.dir/cluster_test.cpp.o"
  "CMakeFiles/apps_cluster_test.dir/cluster_test.cpp.o.d"
  "apps_cluster_test"
  "apps_cluster_test.pdb"
  "apps_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
