# Empty compiler generated dependencies file for fixedpt_fraction_test.
# This may be replaced when dependencies are built.
