file(REMOVE_RECURSE
  "CMakeFiles/fixedpt_fraction_test.dir/fraction_test.cpp.o"
  "CMakeFiles/fixedpt_fraction_test.dir/fraction_test.cpp.o.d"
  "fixedpt_fraction_test"
  "fixedpt_fraction_test.pdb"
  "fixedpt_fraction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixedpt_fraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
