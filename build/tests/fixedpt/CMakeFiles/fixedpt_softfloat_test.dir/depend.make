# Empty dependencies file for fixedpt_softfloat_test.
# This may be replaced when dependencies are built.
