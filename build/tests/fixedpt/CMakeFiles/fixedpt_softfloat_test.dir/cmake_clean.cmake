file(REMOVE_RECURSE
  "CMakeFiles/fixedpt_softfloat_test.dir/softfloat_test.cpp.o"
  "CMakeFiles/fixedpt_softfloat_test.dir/softfloat_test.cpp.o.d"
  "fixedpt_softfloat_test"
  "fixedpt_softfloat_test.pdb"
  "fixedpt_softfloat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixedpt_softfloat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
