# Empty compiler generated dependencies file for fixedpt_fixed_test.
# This may be replaced when dependencies are built.
