file(REMOVE_RECURSE
  "CMakeFiles/fixedpt_fixed_test.dir/fixed_test.cpp.o"
  "CMakeFiles/fixedpt_fixed_test.dir/fixed_test.cpp.o.d"
  "fixedpt_fixed_test"
  "fixedpt_fixed_test.pdb"
  "fixedpt_fixed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixedpt_fixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
