# CMake generated Testfile for 
# Source directory: /root/repo/tests/fixedpt
# Build directory: /root/repo/build/tests/fixedpt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fixedpt/fixedpt_fraction_test[1]_include.cmake")
include("/root/repo/build/tests/fixedpt/fixedpt_fixed_test[1]_include.cmake")
include("/root/repo/build/tests/fixedpt/fixedpt_softfloat_test[1]_include.cmake")
