# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpeg
# Build directory: /root/repo/build/tests/mpeg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mpeg/mpeg_mpeg_test[1]_include.cmake")
include("/root/repo/build/tests/mpeg/mpeg_analysis_test[1]_include.cmake")
