file(REMOVE_RECURSE
  "CMakeFiles/mpeg_mpeg_test.dir/mpeg_test.cpp.o"
  "CMakeFiles/mpeg_mpeg_test.dir/mpeg_test.cpp.o.d"
  "mpeg_mpeg_test"
  "mpeg_mpeg_test.pdb"
  "mpeg_mpeg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpeg_mpeg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
