# Empty dependencies file for mpeg_mpeg_test.
# This may be replaced when dependencies are built.
