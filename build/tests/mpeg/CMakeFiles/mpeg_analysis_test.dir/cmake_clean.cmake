file(REMOVE_RECURSE
  "CMakeFiles/mpeg_analysis_test.dir/analysis_test.cpp.o"
  "CMakeFiles/mpeg_analysis_test.dir/analysis_test.cpp.o.d"
  "mpeg_analysis_test"
  "mpeg_analysis_test.pdb"
  "mpeg_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpeg_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
