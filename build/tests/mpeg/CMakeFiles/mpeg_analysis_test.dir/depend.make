# Empty dependencies file for mpeg_analysis_test.
# This may be replaced when dependencies are built.
