# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("fixedpt")
subdirs("hw")
subdirs("dwcs")
subdirs("rtos")
subdirs("hostos")
subdirs("mpeg")
subdirs("net")
subdirs("dvcm")
subdirs("apps")
