# CMake generated Testfile for 
# Source directory: /root/repo/tests/dwcs
# Build directory: /root/repo/build/tests/dwcs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dwcs/dwcs_ring_test[1]_include.cmake")
include("/root/repo/build/tests/dwcs/dwcs_comparator_test[1]_include.cmake")
include("/root/repo/build/tests/dwcs/dwcs_heap_test[1]_include.cmake")
include("/root/repo/build/tests/dwcs/dwcs_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/dwcs/dwcs_repr_test[1]_include.cmake")
include("/root/repo/build/tests/dwcs/dwcs_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/dwcs/dwcs_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/dwcs/dwcs_admission_test[1]_include.cmake")
include("/root/repo/build/tests/dwcs/dwcs_golden_model_test[1]_include.cmake")
