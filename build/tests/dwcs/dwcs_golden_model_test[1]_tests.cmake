add_test([=[GoldenModel.ProductionSchedulerMatchesReferenceExactly]=]  /root/repo/build/tests/dwcs/dwcs_golden_model_test [==[--gtest_filter=GoldenModel.ProductionSchedulerMatchesReferenceExactly]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[GoldenModel.ProductionSchedulerMatchesReferenceExactly]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests/dwcs SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  dwcs_golden_model_test_TESTS GoldenModel.ProductionSchedulerMatchesReferenceExactly)
