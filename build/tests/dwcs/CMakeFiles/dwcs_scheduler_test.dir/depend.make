# Empty dependencies file for dwcs_scheduler_test.
# This may be replaced when dependencies are built.
