file(REMOVE_RECURSE
  "CMakeFiles/dwcs_scheduler_test.dir/scheduler_test.cpp.o"
  "CMakeFiles/dwcs_scheduler_test.dir/scheduler_test.cpp.o.d"
  "dwcs_scheduler_test"
  "dwcs_scheduler_test.pdb"
  "dwcs_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwcs_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
