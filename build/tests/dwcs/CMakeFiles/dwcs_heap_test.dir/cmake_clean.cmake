file(REMOVE_RECURSE
  "CMakeFiles/dwcs_heap_test.dir/heap_test.cpp.o"
  "CMakeFiles/dwcs_heap_test.dir/heap_test.cpp.o.d"
  "dwcs_heap_test"
  "dwcs_heap_test.pdb"
  "dwcs_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwcs_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
