# Empty dependencies file for dwcs_admission_test.
# This may be replaced when dependencies are built.
