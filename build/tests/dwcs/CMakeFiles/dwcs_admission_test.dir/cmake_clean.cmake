file(REMOVE_RECURSE
  "CMakeFiles/dwcs_admission_test.dir/admission_test.cpp.o"
  "CMakeFiles/dwcs_admission_test.dir/admission_test.cpp.o.d"
  "dwcs_admission_test"
  "dwcs_admission_test.pdb"
  "dwcs_admission_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwcs_admission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
