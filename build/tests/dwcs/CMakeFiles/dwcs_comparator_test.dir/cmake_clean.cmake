file(REMOVE_RECURSE
  "CMakeFiles/dwcs_comparator_test.dir/comparator_test.cpp.o"
  "CMakeFiles/dwcs_comparator_test.dir/comparator_test.cpp.o.d"
  "dwcs_comparator_test"
  "dwcs_comparator_test.pdb"
  "dwcs_comparator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwcs_comparator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
