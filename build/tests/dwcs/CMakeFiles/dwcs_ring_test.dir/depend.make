# Empty dependencies file for dwcs_ring_test.
# This may be replaced when dependencies are built.
