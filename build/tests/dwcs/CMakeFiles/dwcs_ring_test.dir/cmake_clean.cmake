file(REMOVE_RECURSE
  "CMakeFiles/dwcs_ring_test.dir/ring_test.cpp.o"
  "CMakeFiles/dwcs_ring_test.dir/ring_test.cpp.o.d"
  "dwcs_ring_test"
  "dwcs_ring_test.pdb"
  "dwcs_ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwcs_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
