file(REMOVE_RECURSE
  "CMakeFiles/dwcs_baselines_test.dir/baselines_test.cpp.o"
  "CMakeFiles/dwcs_baselines_test.dir/baselines_test.cpp.o.d"
  "dwcs_baselines_test"
  "dwcs_baselines_test.pdb"
  "dwcs_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwcs_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
