file(REMOVE_RECURSE
  "CMakeFiles/dwcs_monitor_test.dir/monitor_test.cpp.o"
  "CMakeFiles/dwcs_monitor_test.dir/monitor_test.cpp.o.d"
  "dwcs_monitor_test"
  "dwcs_monitor_test.pdb"
  "dwcs_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwcs_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
