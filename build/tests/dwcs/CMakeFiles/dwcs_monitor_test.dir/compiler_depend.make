# Empty compiler generated dependencies file for dwcs_monitor_test.
# This may be replaced when dependencies are built.
