file(REMOVE_RECURSE
  "CMakeFiles/dwcs_golden_model_test.dir/golden_model_test.cpp.o"
  "CMakeFiles/dwcs_golden_model_test.dir/golden_model_test.cpp.o.d"
  "dwcs_golden_model_test"
  "dwcs_golden_model_test.pdb"
  "dwcs_golden_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwcs_golden_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
