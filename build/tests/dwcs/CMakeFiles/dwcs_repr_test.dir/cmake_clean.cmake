file(REMOVE_RECURSE
  "CMakeFiles/dwcs_repr_test.dir/repr_test.cpp.o"
  "CMakeFiles/dwcs_repr_test.dir/repr_test.cpp.o.d"
  "dwcs_repr_test"
  "dwcs_repr_test.pdb"
  "dwcs_repr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwcs_repr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
