# Empty dependencies file for dwcs_repr_test.
# This may be replaced when dependencies are built.
