file(REMOVE_RECURSE
  "CMakeFiles/cluster_scaleout.dir/cluster_scaleout.cpp.o"
  "CMakeFiles/cluster_scaleout.dir/cluster_scaleout.cpp.o.d"
  "cluster_scaleout"
  "cluster_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
