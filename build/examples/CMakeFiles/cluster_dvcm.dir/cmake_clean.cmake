file(REMOVE_RECURSE
  "CMakeFiles/cluster_dvcm.dir/cluster_dvcm.cpp.o"
  "CMakeFiles/cluster_dvcm.dir/cluster_dvcm.cpp.o.d"
  "cluster_dvcm"
  "cluster_dvcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_dvcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
