# Empty dependencies file for cluster_dvcm.
# This may be replaced when dependencies are built.
