file(REMOVE_RECURSE
  "CMakeFiles/overload_shedding.dir/overload_shedding.cpp.o"
  "CMakeFiles/overload_shedding.dir/overload_shedding.cpp.o.d"
  "overload_shedding"
  "overload_shedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overload_shedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
