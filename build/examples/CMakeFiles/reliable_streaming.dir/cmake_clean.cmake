file(REMOVE_RECURSE
  "CMakeFiles/reliable_streaming.dir/reliable_streaming.cpp.o"
  "CMakeFiles/reliable_streaming.dir/reliable_streaming.cpp.o.d"
  "reliable_streaming"
  "reliable_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
