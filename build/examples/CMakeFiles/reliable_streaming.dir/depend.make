# Empty dependencies file for reliable_streaming.
# This may be replaced when dependencies are built.
