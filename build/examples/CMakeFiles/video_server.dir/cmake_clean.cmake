file(REMOVE_RECURSE
  "CMakeFiles/video_server.dir/video_server.cpp.o"
  "CMakeFiles/video_server.dir/video_server.cpp.o.d"
  "video_server"
  "video_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
