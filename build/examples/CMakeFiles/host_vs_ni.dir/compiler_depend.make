# Empty compiler generated dependencies file for host_vs_ni.
# This may be replaced when dependencies are built.
