file(REMOVE_RECURSE
  "CMakeFiles/host_vs_ni.dir/host_vs_ni.cpp.o"
  "CMakeFiles/host_vs_ni.dir/host_vs_ni.cpp.o.d"
  "host_vs_ni"
  "host_vs_ni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_vs_ni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
