file(REMOVE_RECURSE
  "../bench/table1_microbench"
  "../bench/table1_microbench.pdb"
  "CMakeFiles/table1_microbench.dir/table1_microbench.cpp.o"
  "CMakeFiles/table1_microbench.dir/table1_microbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
