# Empty compiler generated dependencies file for ablate_fpga.
# This may be replaced when dependencies are built.
