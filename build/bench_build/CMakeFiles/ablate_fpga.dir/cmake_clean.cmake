file(REMOVE_RECURSE
  "../bench/ablate_fpga"
  "../bench/ablate_fpga.pdb"
  "CMakeFiles/ablate_fpga.dir/ablate_fpga.cpp.o"
  "CMakeFiles/ablate_fpga.dir/ablate_fpga.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
