file(REMOVE_RECURSE
  "../bench/ablate_dispatch"
  "../bench/ablate_dispatch.pdb"
  "CMakeFiles/ablate_dispatch.dir/ablate_dispatch.cpp.o"
  "CMakeFiles/ablate_dispatch.dir/ablate_dispatch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
