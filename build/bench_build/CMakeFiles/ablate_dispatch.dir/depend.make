# Empty dependencies file for ablate_dispatch.
# This may be replaced when dependencies are built.
