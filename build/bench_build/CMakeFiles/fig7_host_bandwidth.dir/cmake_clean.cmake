file(REMOVE_RECURSE
  "../bench/fig7_host_bandwidth"
  "../bench/fig7_host_bandwidth.pdb"
  "CMakeFiles/fig7_host_bandwidth.dir/fig7_host_bandwidth.cpp.o"
  "CMakeFiles/fig7_host_bandwidth.dir/fig7_host_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_host_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
