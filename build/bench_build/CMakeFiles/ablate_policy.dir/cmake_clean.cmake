file(REMOVE_RECURSE
  "../bench/ablate_policy"
  "../bench/ablate_policy.pdb"
  "CMakeFiles/ablate_policy.dir/ablate_policy.cpp.o"
  "CMakeFiles/ablate_policy.dir/ablate_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
