file(REMOVE_RECURSE
  "../bench/table5_pci"
  "../bench/table5_pci.pdb"
  "CMakeFiles/table5_pci.dir/table5_pci.cpp.o"
  "CMakeFiles/table5_pci.dir/table5_pci.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_pci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
