# Empty compiler generated dependencies file for table5_pci.
# This may be replaced when dependencies are built.
