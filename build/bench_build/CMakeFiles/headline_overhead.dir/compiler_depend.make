# Empty compiler generated dependencies file for headline_overhead.
# This may be replaced when dependencies are built.
