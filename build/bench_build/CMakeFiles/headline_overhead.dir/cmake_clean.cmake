file(REMOVE_RECURSE
  "../bench/headline_overhead"
  "../bench/headline_overhead.pdb"
  "CMakeFiles/headline_overhead.dir/headline_overhead.cpp.o"
  "CMakeFiles/headline_overhead.dir/headline_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
