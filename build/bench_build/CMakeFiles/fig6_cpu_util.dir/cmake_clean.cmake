file(REMOVE_RECURSE
  "../bench/fig6_cpu_util"
  "../bench/fig6_cpu_util.pdb"
  "CMakeFiles/fig6_cpu_util.dir/fig6_cpu_util.cpp.o"
  "CMakeFiles/fig6_cpu_util.dir/fig6_cpu_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
