# Empty compiler generated dependencies file for ablate_anchor.
# This may be replaced when dependencies are built.
