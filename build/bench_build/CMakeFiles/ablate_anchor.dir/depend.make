# Empty dependencies file for ablate_anchor.
# This may be replaced when dependencies are built.
