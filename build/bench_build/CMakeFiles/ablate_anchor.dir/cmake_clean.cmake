file(REMOVE_RECURSE
  "../bench/ablate_anchor"
  "../bench/ablate_anchor.pdb"
  "CMakeFiles/ablate_anchor.dir/ablate_anchor.cpp.o"
  "CMakeFiles/ablate_anchor.dir/ablate_anchor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_anchor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
