file(REMOVE_RECURSE
  "../bench/ablate_paths"
  "../bench/ablate_paths.pdb"
  "CMakeFiles/ablate_paths.dir/ablate_paths.cpp.o"
  "CMakeFiles/ablate_paths.dir/ablate_paths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
