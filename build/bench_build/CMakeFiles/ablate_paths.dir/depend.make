# Empty dependencies file for ablate_paths.
# This may be replaced when dependencies are built.
