file(REMOVE_RECURSE
  "../bench/ablate_reservation"
  "../bench/ablate_reservation.pdb"
  "CMakeFiles/ablate_reservation.dir/ablate_reservation.cpp.o"
  "CMakeFiles/ablate_reservation.dir/ablate_reservation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
