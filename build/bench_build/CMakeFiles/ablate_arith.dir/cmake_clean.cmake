file(REMOVE_RECURSE
  "../bench/ablate_arith"
  "../bench/ablate_arith.pdb"
  "CMakeFiles/ablate_arith.dir/ablate_arith.cpp.o"
  "CMakeFiles/ablate_arith.dir/ablate_arith.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
