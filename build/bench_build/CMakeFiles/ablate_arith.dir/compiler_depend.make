# Empty compiler generated dependencies file for ablate_arith.
# This may be replaced when dependencies are built.
