file(REMOVE_RECURSE
  "../bench/ablate_scaling"
  "../bench/ablate_scaling.pdb"
  "CMakeFiles/ablate_scaling.dir/ablate_scaling.cpp.o"
  "CMakeFiles/ablate_scaling.dir/ablate_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
