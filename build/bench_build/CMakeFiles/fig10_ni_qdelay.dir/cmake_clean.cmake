file(REMOVE_RECURSE
  "../bench/fig10_ni_qdelay"
  "../bench/fig10_ni_qdelay.pdb"
  "CMakeFiles/fig10_ni_qdelay.dir/fig10_ni_qdelay.cpp.o"
  "CMakeFiles/fig10_ni_qdelay.dir/fig10_ni_qdelay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ni_qdelay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
