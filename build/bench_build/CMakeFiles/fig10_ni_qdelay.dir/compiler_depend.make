# Empty compiler generated dependencies file for fig10_ni_qdelay.
# This may be replaced when dependencies are built.
