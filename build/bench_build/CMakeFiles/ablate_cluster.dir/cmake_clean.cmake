file(REMOVE_RECURSE
  "../bench/ablate_cluster"
  "../bench/ablate_cluster.pdb"
  "CMakeFiles/ablate_cluster.dir/ablate_cluster.cpp.o"
  "CMakeFiles/ablate_cluster.dir/ablate_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
