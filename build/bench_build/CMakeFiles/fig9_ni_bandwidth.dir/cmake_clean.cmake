file(REMOVE_RECURSE
  "../bench/fig9_ni_bandwidth"
  "../bench/fig9_ni_bandwidth.pdb"
  "CMakeFiles/fig9_ni_bandwidth.dir/fig9_ni_bandwidth.cpp.o"
  "CMakeFiles/fig9_ni_bandwidth.dir/fig9_ni_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_ni_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
