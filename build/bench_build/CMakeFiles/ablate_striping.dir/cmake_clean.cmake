file(REMOVE_RECURSE
  "../bench/ablate_striping"
  "../bench/ablate_striping.pdb"
  "CMakeFiles/ablate_striping.dir/ablate_striping.cpp.o"
  "CMakeFiles/ablate_striping.dir/ablate_striping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
