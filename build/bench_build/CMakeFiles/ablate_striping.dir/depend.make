# Empty dependencies file for ablate_striping.
# This may be replaced when dependencies are built.
