# Empty dependencies file for fig8_host_qdelay.
# This may be replaced when dependencies are built.
