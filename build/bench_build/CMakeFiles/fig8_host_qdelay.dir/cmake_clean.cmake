file(REMOVE_RECURSE
  "../bench/fig8_host_qdelay"
  "../bench/fig8_host_qdelay.pdb"
  "CMakeFiles/fig8_host_qdelay.dir/fig8_host_qdelay.cpp.o"
  "CMakeFiles/fig8_host_qdelay.dir/fig8_host_qdelay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_host_qdelay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
