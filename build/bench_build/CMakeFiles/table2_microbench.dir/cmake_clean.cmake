file(REMOVE_RECURSE
  "../bench/table2_microbench"
  "../bench/table2_microbench.pdb"
  "CMakeFiles/table2_microbench.dir/table2_microbench.cpp.o"
  "CMakeFiles/table2_microbench.dir/table2_microbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
