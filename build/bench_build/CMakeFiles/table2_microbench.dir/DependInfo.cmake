
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_microbench.cpp" "bench_build/CMakeFiles/table2_microbench.dir/table2_microbench.cpp.o" "gcc" "bench_build/CMakeFiles/table2_microbench.dir/table2_microbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/nistream_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/dwcs/CMakeFiles/nistream_dwcs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpeg/CMakeFiles/nistream_mpeg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nistream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fixedpt/CMakeFiles/nistream_fixedpt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
