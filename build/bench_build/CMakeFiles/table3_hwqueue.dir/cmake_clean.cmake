file(REMOVE_RECURSE
  "../bench/table3_hwqueue"
  "../bench/table3_hwqueue.pdb"
  "CMakeFiles/table3_hwqueue.dir/table3_hwqueue.cpp.o"
  "CMakeFiles/table3_hwqueue.dir/table3_hwqueue.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_hwqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
