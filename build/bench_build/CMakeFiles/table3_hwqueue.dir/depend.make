# Empty dependencies file for table3_hwqueue.
# This may be replaced when dependencies are built.
