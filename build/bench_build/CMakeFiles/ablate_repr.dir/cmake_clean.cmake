file(REMOVE_RECURSE
  "../bench/ablate_repr"
  "../bench/ablate_repr.pdb"
  "CMakeFiles/ablate_repr.dir/ablate_repr.cpp.o"
  "CMakeFiles/ablate_repr.dir/ablate_repr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
