# Empty compiler generated dependencies file for ablate_repr.
# This may be replaced when dependencies are built.
