# Empty dependencies file for table4_critical_path.
# This may be replaced when dependencies are built.
