file(REMOVE_RECURSE
  "../bench/table4_critical_path"
  "../bench/table4_critical_path.pdb"
  "CMakeFiles/table4_critical_path.dir/table4_critical_path.cpp.o"
  "CMakeFiles/table4_critical_path.dir/table4_critical_path.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_critical_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
