file(REMOVE_RECURSE
  "../bench/native_dwcs_bench"
  "../bench/native_dwcs_bench.pdb"
  "CMakeFiles/native_dwcs_bench.dir/native_dwcs_bench.cpp.o"
  "CMakeFiles/native_dwcs_bench.dir/native_dwcs_bench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_dwcs_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
