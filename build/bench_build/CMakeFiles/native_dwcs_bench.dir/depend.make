# Empty dependencies file for native_dwcs_bench.
# This may be replaced when dependencies are built.
