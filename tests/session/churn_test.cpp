// Determinism of the session plane under churn: a mini-fleet of scripted
// clients (mixed behaviors, pseudorandom arrivals) run twice from the same
// seed must produce bit-identical counters and latency samples — the
// property the churn bench scales to 100k sessions. Honors
// NISTREAM_CHAOS_SEED so the CI seed matrix varies the workload.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "apps/client.hpp"
#include "session/client.hpp"
#include "session/server.hpp"

namespace nistream::session {
namespace {

using sim::Time;

std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d4b9f2a6c3e1b5ull;
  return z ^ (z >> 31);
}

struct Fingerprint {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void add_double(double d) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof d);
    __builtin_memcpy(&bits, &d, sizeof bits);
    add(bits);
  }
};

RtspChurnClient::Behavior pick_behavior(std::uint64_t r) {
  const std::uint64_t p = r % 100;
  if (p < 60) return RtspChurnClient::Behavior::kPolite;
  if (p < 75) return RtspChurnClient::Behavior::kSlowStart;
  if (p < 90) return RtspChurnClient::Behavior::kVanish;
  return RtspChurnClient::Behavior::kPauseResume;
}

std::uint64_t run_fleet(std::uint64_t seed, int n) {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  SessionServer::Config cfg;
  cfg.door.idle_timeout = Time::ms(500);
  cfg.door.reap_interval = Time::ms(125);
  SessionServer server{eng, ether, cfg};
  apps::MpegClient media{eng, ether};
  net::UdpEndpoint rtcp_sink{eng, ether, net::kHostStackCost,
                             [](const net::Packet&, Time) {}};
  std::vector<std::unique_ptr<RtspChurnClient>> clients;
  clients.reserve(static_cast<std::size_t>(n));
  std::uint64_t rng = seed;
  for (int i = 0; i < n; ++i) {
    RtspChurnClient::Config c;
    c.behavior = pick_behavior(splitmix64(rng));
    c.arrival = Time::us(static_cast<double>(splitmix64(rng) % 1'000'000));
    c.frames = 4 + splitmix64(rng) % 8;
    c.period = Time::ms(10);
    clients.push_back(std::make_unique<RtspChurnClient>(
        eng, ether, server.control_port(), media, rtcp_sink.port(), c));
    clients.back()->start();
  }
  eng.run_until(Time::sec(10));

  const auto& st = server.door().stats();
  EXPECT_EQ(st.post_play_admission_violations, 0u);
  std::uint64_t responded = 0;
  Fingerprint fp;
  for (const auto& c : clients) {
    const auto& o = c->outcome();
    if (o.responded_setup) ++responded;
    fp.add(static_cast<std::uint64_t>(o.setup_status));
    fp.add_double(o.setup_latency_ms);
    fp.add(o.admitted ? 1 : 0);
    fp.add(o.completed ? 1 : 0);
  }
  EXPECT_EQ(responded, static_cast<std::uint64_t>(n));
  fp.add(st.requests);
  fp.add(st.setups_ok);
  fp.add(st.rejected_453);
  fp.add(st.plays);
  fp.add(st.resumes);
  fp.add(st.pauses);
  fp.add(st.teardowns);
  fp.add(st.reaped_idle);
  fp.add(st.conn_closed);
  fp.add(st.eos);
  fp.add(st.frames_pumped);
  fp.add(media.total_frames());
  fp.add(media.total_bytes());
  fp.add(media.frames_while_paused());
  return fp.h;
}

std::uint64_t env_seed() {
  if (const char* s = std::getenv("NISTREAM_CHAOS_SEED")) {
    return std::strtoull(s, nullptr, 0);
  }
  return 42;
}

TEST(SessionChurn, SameSeedReplaysBitIdentical) {
  const std::uint64_t seed = env_seed();
  const std::uint64_t a = run_fleet(seed, 50);
  const std::uint64_t b = run_fleet(seed, 50);
  EXPECT_EQ(a, b);
}

TEST(SessionChurn, DifferentSeedsDiverge) {
  const std::uint64_t seed = env_seed();
  // Different arrival/behavior draws must change the observable outcome —
  // otherwise the fingerprint is vacuous and the replay test proves nothing.
  EXPECT_NE(run_fleet(seed, 50), run_fleet(seed + 1, 50));
}

}  // namespace
}  // namespace nistream::session
