// Integration tests for session::RtspFrontDoor on a full SessionServer:
// lifecycle happy path, SETUP-time admission rejection, pause/resume gating
// of the data plane, incarnation-stale ids, state errors, half-open reaping,
// and control-connection FIN teardown.
#include "session/server.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/client.hpp"
#include "session/client.hpp"

namespace nistream::session {
namespace {

using sim::Time;

/// Raw scripted control channel: fire requests, collect parsed responses.
/// Unlike RtspChurnClient this makes no protocol decisions, so tests can
/// send exactly the (possibly wrong) thing.
struct Ctl {
  sim::Engine& eng;
  net::TcpLiteReceiver rx;
  net::TcpLiteSender tx;
  MessageBuffer buf;
  std::vector<RtspResponse> got;

  Ctl(sim::Engine& eng_, hw::EthernetSwitch& ether, int control_port)
      : eng{eng_},
        rx{eng_, ether, net::kHostStackCost,
           net::TcpLiteReceiver::DeliverFrom{
               [this](const net::Packet& p, int, Time) {
                 if (const auto* chunk =
                         static_cast<const std::string*>(p.body.get())) {
                   buf.append(*chunk);
                 }
                 while (auto msg = buf.next()) {
                   if (auto r = parse_response(*msg)) got.push_back(*r);
                 }
               }}},
        tx{eng_, ether, net::kHostStackCost, control_port} {}

  void send(RtspRequest req) {
    req.reply_port = rx.port();
    auto body = std::make_shared<std::string>(format_request(req));
    net::Packet pkt;
    pkt.bytes = static_cast<std::uint32_t>(body->size());
    pkt.body = std::move(body);
    tx.send(pkt);
  }
};

struct Rig {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  std::unique_ptr<SessionServer> server;
  apps::MpegClient media{eng, ether};
  std::uint64_t rtcp_reports = 0;
  net::UdpEndpoint rtcp_sink{eng, ether, net::kHostStackCost,
                             [this](const net::Packet&, Time) {
                               ++rtcp_reports;
                             }};

  explicit Rig(SessionServer::Config cfg = fast_config()) {
    server = std::make_unique<SessionServer>(eng, ether, cfg);
  }

  /// Short timeouts so tests run in simulated fractions of a second.
  static SessionServer::Config fast_config() {
    SessionServer::Config cfg;
    cfg.door.idle_timeout = Time::ms(300);
    cfg.door.reap_interval = Time::ms(100);
    return cfg;
  }

  RtspRequest setup_request(std::uint64_t frames,
                            Time period = Time::ms(10)) const {
    RtspRequest req;
    req.method = Method::kSetup;
    req.cseq = 1;
    req.rtp_port = -1;  // caller fills; media.port() is not const here
    req.rtcp_port = rtcp_sink.port();
    req.tolerance = dwcs::WindowConstraint{1, 4};
    req.period = period;
    req.frame_bytes = 1000;
    req.frames = frames;
    return req;
  }
};

TEST(FrontDoor, SetupPlayTeardownDeliversFrames) {
  Rig rig;
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};

  auto setup = rig.setup_request(10);
  setup.rtp_port = rig.media.port();
  ctl.send(setup);
  rig.eng.run_until(Time::ms(100));
  ASSERT_EQ(ctl.got.size(), 1u);
  EXPECT_EQ(ctl.got[0].status, 200);
  ASSERT_TRUE(ctl.got[0].has_stream);
  const std::uint64_t sid = ctl.got[0].session_id;
  const std::uint64_t stream = ctl.got[0].stream;
  EXPECT_EQ(incarnation_of(sid), rig.server->door().incarnation());
  EXPECT_EQ(rig.server->admission().admitted(), 1u);

  RtspRequest play;
  play.method = Method::kPlay;
  play.cseq = 2;
  play.session_id = sid;
  ctl.send(play);
  // 10 frames at 10ms + slack, but stay inside the 300ms idle timeout so
  // the reaper does not beat the TEARDOWN to the session.
  rig.eng.run_until(Time::ms(400));
  ASSERT_EQ(ctl.got.size(), 2u);
  EXPECT_EQ(ctl.got[1].status, 200);
  EXPECT_EQ(rig.media.frames_received(stream), 10u);
  EXPECT_GT(rig.rtcp_reports, 0u);  // sender reports rode the frame clock
  EXPECT_EQ(rig.server->door().stats().eos, 1u);

  RtspRequest teardown;
  teardown.method = Method::kTeardown;
  teardown.cseq = 3;
  teardown.session_id = sid;
  ctl.send(teardown);
  rig.eng.run_until(Time::ms(500));
  ASSERT_EQ(ctl.got.size(), 3u);
  EXPECT_EQ(ctl.got[2].status, 200);
  EXPECT_EQ(rig.server->door().live_sessions(), 0u);
  EXPECT_EQ(rig.server->admission().admitted(), 0u);  // reservation released
  EXPECT_EQ(rig.server->door().stats().post_play_admission_violations, 0u);
}

TEST(FrontDoor, AdmissionRejectGets453) {
  // A per-frame CPU cost larger than the frame period can never be admitted.
  auto cfg = Rig::fast_config();
  cfg.per_frame_cpu = Time::ms(50);
  Rig rig{cfg};
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  auto setup = rig.setup_request(10, Time::ms(33));
  setup.rtp_port = rig.media.port();
  ctl.send(setup);
  rig.eng.run_until(Time::ms(100));
  ASSERT_EQ(ctl.got.size(), 1u);
  EXPECT_EQ(ctl.got[0].status, 453);
  EXPECT_EQ(ctl.got[0].session_id, 0u);
  EXPECT_EQ(rig.server->door().live_sessions(), 0u);
  EXPECT_EQ(rig.server->door().stats().rejected_453, 1u);
  EXPECT_EQ(rig.server->admission().admitted(), 0u);
}

TEST(FrontDoor, PauseStopsDataAndResumeRestarts) {
  // Paused sessions count as idle (a vanished client that paused first must
  // still be reaped eventually), so give this test a timeout comfortably
  // longer than its pause window.
  auto cfg = Rig::fast_config();
  cfg.door.idle_timeout = Time::sec(2);
  Rig rig{cfg};
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  auto setup = rig.setup_request(500);
  setup.rtp_port = rig.media.port();
  ctl.send(setup);
  rig.eng.run_until(Time::ms(50));
  ASSERT_EQ(ctl.got.size(), 1u);
  const std::uint64_t sid = ctl.got[0].session_id;
  const std::uint64_t stream = ctl.got[0].stream;

  RtspRequest play;
  play.method = Method::kPlay;
  play.cseq = 2;
  play.session_id = sid;
  ctl.send(play);
  rig.eng.run_until(Time::ms(400));
  const std::uint64_t before_pause = rig.media.frames_received(stream);
  EXPECT_GT(before_pause, 10u);

  RtspRequest pause;
  pause.method = Method::kPause;
  pause.cseq = 3;
  pause.session_id = sid;
  ctl.send(pause);
  rig.eng.run_until(Time::ms(450));
  rig.media.notify_pause(stream);
  const std::uint64_t at_pause = rig.media.frames_received(stream);
  rig.eng.run_until(Time::ms(900));
  // Paused: at most the frames already in the ring drain; no steady drip.
  const std::uint64_t during_pause =
      rig.media.frames_received(stream) - at_pause;
  EXPECT_LE(during_pause, 8u);  // bounded by the ring, not by elapsed time
  EXPECT_LE(rig.media.frames_while_paused(), 8u);
  EXPECT_EQ(rig.server->door().stats().pauses, 1u);

  rig.media.notify_resume(stream);
  RtspRequest resume;
  resume.method = Method::kPlay;
  resume.cseq = 4;
  resume.session_id = sid;
  ctl.send(resume);
  rig.eng.run_until(Time::ms(1500));
  EXPECT_GT(rig.media.frames_received(stream), at_pause + during_pause + 10);
  EXPECT_EQ(rig.server->door().stats().resumes, 1u);
  EXPECT_EQ(rig.server->door().stats().plays, 1u);  // one cold start only
  EXPECT_EQ(rig.server->door().live_pumps(), 1u);   // same pump throughout
}

TEST(FrontDoor, StaleIncarnationGets454) {
  auto cfg = Rig::fast_config();
  cfg.door.incarnation = 2;
  Rig rig{cfg};
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  RtspRequest play;
  play.method = Method::kPlay;
  play.cseq = 1;
  play.session_id = make_session_id(1, 1);  // a pre-reboot id
  ctl.send(play);
  rig.eng.run_until(Time::ms(100));
  ASSERT_EQ(ctl.got.size(), 1u);
  EXPECT_EQ(ctl.got[0].status, 454);
  EXPECT_EQ(rig.server->door().stats().stale_454, 1u);
}

TEST(FrontDoor, TeardownUnknownSessionGets454) {
  Rig rig;
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  RtspRequest teardown;
  teardown.method = Method::kTeardown;
  teardown.cseq = 1;
  teardown.session_id = make_session_id(1, 999);  // right incarnation, no such session
  ctl.send(teardown);
  rig.eng.run_until(Time::ms(100));
  ASSERT_EQ(ctl.got.size(), 1u);
  EXPECT_EQ(ctl.got[0].status, 454);
}

TEST(FrontDoor, PauseBeforePlayGets455) {
  Rig rig;
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  auto setup = rig.setup_request(10);
  setup.rtp_port = rig.media.port();
  ctl.send(setup);
  rig.eng.run_until(Time::ms(50));
  ASSERT_EQ(ctl.got.size(), 1u);
  RtspRequest pause;
  pause.method = Method::kPause;
  pause.cseq = 2;
  pause.session_id = ctl.got[0].session_id;
  ctl.send(pause);
  rig.eng.run_until(Time::ms(100));
  ASSERT_EQ(ctl.got.size(), 2u);
  EXPECT_EQ(ctl.got[1].status, 455);
  EXPECT_EQ(rig.server->door().stats().bad_state_455, 1u);
}

TEST(FrontDoor, MalformedRequestGets400) {
  Rig rig;
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  // A parseable *header* block that fails request validation. Reply-Port
  // must still be honored so the 400 has somewhere to go.
  auto body = std::make_shared<std::string>(
      "FETCH rtsp://x RTSP/1.0\r\nCSeq: 1\r\nReply-Port: " +
      std::to_string(ctl.rx.port()) + "\r\n\r\n");
  net::Packet pkt;
  pkt.bytes = static_cast<std::uint32_t>(body->size());
  pkt.body = std::move(body);
  ctl.tx.send(pkt);
  rig.eng.run_until(Time::ms(100));
  ASSERT_EQ(ctl.got.size(), 1u);
  EXPECT_EQ(ctl.got[0].status, 400);
  EXPECT_EQ(rig.server->door().stats().bad_requests, 1u);
}

TEST(FrontDoor, HalfOpenSessionIsReapedAndAdmissionReleased) {
  Rig rig;  // idle_timeout 300ms, reap 100ms
  auto client = std::make_unique<RtspChurnClient>(
      rig.eng, rig.ether, rig.server->control_port(), rig.media,
      rig.rtcp_sink.port(),
      RtspChurnClient::Config{.behavior = RtspChurnClient::Behavior::kVanish,
                              .frames = 5,
                              .period = Time::ms(10)});
  client->start();
  rig.eng.run_until(Time::sec(2));
  EXPECT_TRUE(client->outcome().admitted);
  EXPECT_TRUE(client->outcome().completed);
  // Media ran dry (~50ms), then the vanished client went idle past the
  // timeout: the reaper must have collected it and released its share.
  EXPECT_EQ(rig.server->door().live_sessions(), 0u);
  EXPECT_EQ(rig.server->door().stats().reaped_idle, 1u);
  EXPECT_EQ(rig.server->door().stats().eos, 1u);
  EXPECT_EQ(rig.server->admission().admitted(), 0u);
  EXPECT_EQ(rig.media.frames_received(client->stream()), 5u);
}

TEST(FrontDoor, ControlConnectionFinTearsSessionsDown) {
  Rig rig;
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  auto setup = rig.setup_request(1000);
  setup.rtp_port = rig.media.port();
  ctl.send(setup);
  rig.eng.run_until(Time::ms(50));
  ASSERT_EQ(ctl.got.size(), 1u);
  RtspRequest play;
  play.method = Method::kPlay;
  play.cseq = 2;
  play.session_id = ctl.got[0].session_id;
  ctl.send(play);
  rig.eng.run_until(Time::ms(200));
  EXPECT_EQ(rig.server->door().live_sessions(), 1u);
  // FIN without TEARDOWN: the server must close everything the connection
  // owned, mid-play included.
  ctl.tx.close();
  rig.eng.run_until(Time::ms(400));
  EXPECT_EQ(rig.server->door().live_sessions(), 0u);
  EXPECT_EQ(rig.server->door().stats().conn_closed, 1u);
  EXPECT_EQ(rig.server->admission().admitted(), 0u);
  EXPECT_EQ(rig.server->door().stats().teardowns, 0u);
}

TEST(FrontDoor, SlowStartClientCompletes) {
  Rig rig;
  auto client = std::make_unique<RtspChurnClient>(
      rig.eng, rig.ether, rig.server->control_port(), rig.media,
      rig.rtcp_sink.port(),
      RtspChurnClient::Config{
          .behavior = RtspChurnClient::Behavior::kSlowStart,
          .frames = 5,
          .period = Time::ms(10),
          .slow_start_chunks = 6,
          .dribble_gap = Time::ms(30),
          // Tear down well inside the test rig's 300ms idle timeout.
          .drain_slack = Time::ms(100)});
  client->start();
  rig.eng.run_until(Time::sec(3));
  EXPECT_TRUE(client->outcome().admitted);
  EXPECT_TRUE(client->outcome().completed);
  EXPECT_EQ(client->outcome().cseq_errors, 0u);
  EXPECT_EQ(rig.server->door().stats().teardowns, 1u);
  EXPECT_EQ(rig.server->door().live_sessions(), 0u);
  EXPECT_EQ(rig.media.frames_received(client->stream()), 5u);
}

TEST(FrontDoor, StormDepthShrinksTheIdleTimeout) {
  auto cfg = Rig::fast_config();  // idle 300ms, reap every 100ms
  cfg.door.reap_storm_threshold = 4;
  cfg.door.min_idle_timeout = Time::ms(50);
  Rig rig{cfg};

  // The adaptation curve itself: proportional past the threshold, floored.
  EXPECT_EQ(rig.server->door().effective_idle_timeout(0), Time::ms(300));
  EXPECT_EQ(rig.server->door().effective_idle_timeout(4), Time::ms(300));
  EXPECT_EQ(rig.server->door().effective_idle_timeout(16), Time::ms(75));
  EXPECT_EQ(rig.server->door().effective_idle_timeout(1'000'000),
            Time::ms(50));

  // A connection storm: 16 SETUPs whose clients never PLAY and never close.
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  for (int i = 0; i < 16; ++i) {
    auto setup = rig.setup_request(10);
    setup.cseq = static_cast<std::uint64_t>(i + 1);
    setup.rtp_port = rig.media.port();
    ctl.send(setup);
  }
  rig.eng.run_until(Time::ms(50));
  ASSERT_EQ(rig.server->door().live_sessions(), 16u);
  ASSERT_EQ(rig.server->admission().admitted(), 16u);

  // At depth 16 the effective timeout is 75ms, so the storm is collected
  // well before the base 300ms idle timeout would have fired.
  rig.eng.run_until(Time::ms(250));
  EXPECT_EQ(rig.server->door().live_sessions(), 0u);
  EXPECT_EQ(rig.server->door().stats().reaped_idle, 16u);
  EXPECT_EQ(rig.server->admission().admitted(), 0u);
}

TEST(FrontDoor, ShallowIdlePoolKeepsTheBaseTimeout) {
  auto cfg = Rig::fast_config();
  cfg.door.reap_storm_threshold = 4;
  Rig rig{cfg};
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  // Two idle sessions: at or below the threshold, nothing shrinks — they
  // survive past where the storm case was already swept.
  for (int i = 0; i < 2; ++i) {
    auto setup = rig.setup_request(10);
    setup.cseq = static_cast<std::uint64_t>(i + 1);
    setup.rtp_port = rig.media.port();
    ctl.send(setup);
  }
  rig.eng.run_until(Time::ms(250));
  EXPECT_EQ(rig.server->door().live_sessions(), 2u);
  rig.eng.run_until(Time::ms(500));  // base 300ms timeout does fire
  EXPECT_EQ(rig.server->door().live_sessions(), 0u);
  EXPECT_EQ(rig.server->door().stats().reaped_idle, 2u);
}

}  // namespace
}  // namespace nistream::session
