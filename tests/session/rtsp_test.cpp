// Tests for the RTSP message layer: format/parse round trips, malformed
// input rejection, session-id helpers, and MessageBuffer reassembly across
// arbitrary segment boundaries (what slow-start clients stress).
#include "session/rtsp.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nistream::session {
namespace {

TEST(RtspMessage, SetupRequestRoundTrips) {
  RtspRequest req;
  req.method = Method::kSetup;
  req.cseq = 7;
  req.reply_port = 12;
  req.rtp_port = 34;
  req.rtcp_port = 35;
  req.tolerance = dwcs::WindowConstraint{2, 5};
  req.period = sim::Time::us(33'000);
  req.frame_bytes = 1234;
  req.frames = 99;
  const auto parsed = parse_request(format_request(req));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, Method::kSetup);
  EXPECT_EQ(parsed->cseq, 7u);
  EXPECT_EQ(parsed->reply_port, 12);
  EXPECT_EQ(parsed->rtp_port, 34);
  EXPECT_EQ(parsed->rtcp_port, 35);
  EXPECT_EQ(parsed->tolerance, (dwcs::WindowConstraint{2, 5}));
  EXPECT_EQ(parsed->period, sim::Time::us(33'000));
  EXPECT_EQ(parsed->frame_bytes, 1234u);
  EXPECT_EQ(parsed->frames, 99u);
  EXPECT_EQ(parsed->session_id, 0u);
}

TEST(RtspMessage, PlayCarriesSessionId) {
  RtspRequest req;
  req.method = Method::kPlay;
  req.cseq = 2;
  req.session_id = make_session_id(3, 41);
  const auto parsed = parse_request(format_request(req));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, Method::kPlay);
  EXPECT_EQ(parsed->session_id, make_session_id(3, 41));
}

TEST(RtspMessage, ResponseRoundTrips) {
  RtspResponse resp;
  resp.status = 453;
  resp.cseq = 11;
  resp.session_id = make_session_id(1, 5);
  const auto parsed = parse_response(format_response(resp));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 453);
  EXPECT_EQ(parsed->cseq, 11u);
  EXPECT_EQ(parsed->session_id, make_session_id(1, 5));
  EXPECT_FALSE(parsed->has_stream);
}

TEST(RtspMessage, ResponseCarriesStreamId) {
  RtspResponse resp;
  resp.status = 200;
  resp.cseq = 1;
  resp.session_id = make_session_id(1, 1);
  resp.stream = 42;
  resp.has_stream = true;
  const auto parsed = parse_response(format_response(resp));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->has_stream);
  EXPECT_EQ(parsed->stream, 42u);
}

TEST(RtspMessage, MalformedRequestsRejected) {
  EXPECT_FALSE(parse_request("").has_value());
  EXPECT_FALSE(parse_request("GARBAGE\r\n").has_value());
  EXPECT_FALSE(parse_request("OPTIONS * RTSP/1.0\r\nCSeq: 1\r\n").has_value());
  EXPECT_FALSE(parse_request("PLAY rtsp://x RTSP/1.0\r\n").has_value());  // no CSeq
  EXPECT_FALSE(
      parse_request("PLAY rtsp://x RTSP/1.0\r\nCSeq: abc\r\n").has_value());
  EXPECT_FALSE(
      parse_request("PLAY rtsp://x HTTP/1.1\r\nCSeq: 1\r\n").has_value());
  EXPECT_FALSE(
      parse_request("PLAY rtsp://x RTSP/1.0\r\nno colon line\r\n").has_value());
  // Invalid window: x > y.
  EXPECT_FALSE(parse_request("SETUP rtsp://x RTSP/1.0\r\nCSeq: 1\r\n"
                             "X-Window: 5/2\r\n")
                   .has_value());
  // Zero period.
  EXPECT_FALSE(parse_request("SETUP rtsp://x RTSP/1.0\r\nCSeq: 1\r\n"
                             "X-Period-Us: 0\r\n")
                   .has_value());
}

TEST(RtspMessage, UnknownHeadersIgnored) {
  const auto parsed = parse_request(
      "PLAY rtsp://x RTSP/1.0\r\nCSeq: 9\r\nUser-Agent: test\r\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cseq, 9u);
}

TEST(RtspSessionId, IncarnationPrefixed) {
  const std::uint64_t id = make_session_id(7, 123);
  EXPECT_EQ(incarnation_of(id), 7u);
  EXPECT_EQ(id & 0xffffffffu, 123u);
  const auto parsed = parse_session_id(format_session_id(id));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, id);
  EXPECT_FALSE(parse_session_id("").has_value());
  EXPECT_FALSE(parse_session_id("xyz").has_value());
  EXPECT_FALSE(parse_session_id("00000000000000001").has_value());  // 17 chars
}

TEST(RtspMessageBuffer, ReassemblesAcrossChunkBoundaries) {
  const std::string msg = format_request([] {
    RtspRequest r;
    r.method = Method::kSetup;
    r.cseq = 1;
    r.rtp_port = 5;
    r.rtcp_port = 6;
    return r;
  }());
  // Feed one byte at a time: exactly one message must pop out, at the end.
  MessageBuffer buf;
  int popped = 0;
  for (std::size_t i = 0; i < msg.size(); ++i) {
    buf.append(msg.substr(i, 1));
    while (auto m = buf.next()) {
      ++popped;
      EXPECT_TRUE(parse_request(*m).has_value());
    }
  }
  EXPECT_EQ(popped, 1);
  EXPECT_EQ(buf.pending_bytes(), 0u);
}

TEST(RtspMessageBuffer, SplitTerminatorAndBackToBackMessages) {
  RtspRequest r;
  r.method = Method::kPlay;
  r.cseq = 1;
  const std::string one = format_request(r);
  r.cseq = 2;
  const std::string two = format_request(r);
  MessageBuffer buf;
  // Split inside the \r\n\r\n terminator of message one, with message two's
  // head glued onto the same chunk.
  const std::string glued = one + two;
  buf.append(glued.substr(0, one.size() - 2));
  EXPECT_FALSE(buf.next().has_value());
  buf.append(glued.substr(one.size() - 2));
  const auto m1 = buf.next();
  const auto m2 = buf.next();
  ASSERT_TRUE(m1.has_value());
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(parse_request(*m1)->cseq, 1u);
  EXPECT_EQ(parse_request(*m2)->cseq, 2u);
  EXPECT_FALSE(buf.next().has_value());
}

}  // namespace
}  // namespace nistream::session
