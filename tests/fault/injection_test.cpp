// Per-component injection tests: faults land where they are aimed, with the
// documented recovery semantics (UDP discards corrupt frames, PCI retries,
// disk retries + latency spikes), and a disk fault storm on the full
// disk -> NI -> net path degrades throughput without wedging the pipeline.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/client.hpp"
#include "apps/media_server.hpp"
#include "apps/producer.hpp"
#include "fault/fault_plane.hpp"
#include "hw/ethernet.hpp"
#include "hw/i2o.hpp"
#include "hw/pci.hpp"
#include "hw/scsi_disk.hpp"
#include "mpeg/encoder.hpp"
#include "net/udp.hpp"
#include "sim/engine.hpp"

namespace nistream {
namespace {

fault::FaultProfile storm(double rate) {
  return fault::FaultProfile::uniform(rate, /*seed=*/4242);
}

TEST(LinkInjection, DropStormLosesEveryFrame) {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  fault::FaultPlane plane{eng, storm(1.0)};
  ether.set_fault(&plane.link());

  int delivered = 0;
  const int src = ether.add_port([](const hw::EthFrame&) {});
  const int dst = ether.add_port([&delivered](const hw::EthFrame&) {
    ++delivered;
  });
  for (int i = 0; i < 50; ++i) {
    ether.send(src, dst, hw::EthFrame{.bytes = 1000});
  }
  eng.run_until(sim::Time::sec(1));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ether.frames_lost(), 50u);
  EXPECT_EQ(plane.summary().frames_dropped, 50u);
}

TEST(LinkInjection, CorruptFramesAreDeliveredThenDiscardedByUdp) {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  auto profile = storm(0.0);
  profile.link.frame_corrupt_rate = 1.0;  // corrupt all, drop none
  fault::FaultPlane plane{eng, profile};
  ether.set_fault(&plane.link());

  net::UdpEndpoint tx{eng, ether, sim::Time::us(10),
                      [](const net::Packet&, sim::Time) {}};
  int received = 0;
  net::UdpEndpoint rx{eng, ether, sim::Time::us(10),
                      [&received](const net::Packet&, sim::Time) {
                        ++received;
                      }};
  for (int i = 0; i < 20; ++i) {
    tx.send(rx.port(), net::Packet{.stream_id = 1, .seq = 0, .bytes = 500});
  }
  eng.run_until(sim::Time::sec(1));
  // The frames crossed the wire (occupying it!) but failed CRC at the
  // receiving endpoint: delivered by the switch, counted corrupt, not
  // surfaced to the application.
  EXPECT_EQ(received, 0);
  EXPECT_EQ(ether.frames_lost(), 0u);
  EXPECT_EQ(rx.corrupt_dropped(), 20u);
  EXPECT_EQ(plane.summary().frames_corrupted, 20u);
}

TEST(I2oInjection, InboundDropStormSilencesTheBoard) {
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::I2oChannel ch{eng, bus};
  fault::FaultPlane plane{eng, storm(1.0)};
  ch.set_fault(&plane.i2o());

  int received = 0;
  [](hw::I2oChannel& c, int& n) -> sim::Coro {
    for (;;) {
      co_await c.inbound().receive();
      ++n;
    }
  }(ch, received).detach();

  for (int i = 0; i < 30; ++i) {
    hw::I2oMessage m;
    m.function = 0x42;
    (void)ch.post_inbound(m);  // PIO cost still paid; delivery lost
  }
  eng.run_until(sim::Time::sec(1));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(ch.inbound_dropped(), 30u);
  EXPECT_EQ(plane.summary().i2o_inbound_dropped, 30u);
}

TEST(I2oInjection, PartialStormIsSeedDeterministic) {
  const auto run = [] {
    sim::Engine eng;
    hw::PciBus bus{eng};
    hw::I2oChannel ch{eng, bus};
    fault::FaultPlane plane{eng, storm(0.5)};
    ch.set_fault(&plane.i2o());
    for (int i = 0; i < 200; ++i) {
      hw::I2oMessage m;
      m.function = 0x42;
      (void)ch.post_inbound(m);
    }
    return ch.inbound_dropped();
  };
  const auto a = run();
  EXPECT_GT(a, 50u);
  EXPECT_LT(a, 150u);
  EXPECT_EQ(a, run());
}

TEST(PciInjection, TransactionErrorsRetryAndStretchTheTransfer) {
  sim::Engine eng;
  hw::PciBus clean_bus{eng};
  hw::PciBus faulty_bus{eng};
  fault::FaultPlane plane{eng, storm(1.0)};  // every attempt aborts
  faulty_bus.set_fault(&plane.pci());

  sim::Time clean_done, faulty_done;
  [](hw::PciBus& bus, sim::Time& done) -> sim::Coro {
    co_await bus.dma(64 * 1024);
    done = bus.engine().now();
  }(clean_bus, clean_done).detach();
  [](hw::PciBus& bus, sim::Time& done) -> sim::Coro {
    co_await bus.dma(64 * 1024);
    done = bus.engine().now();
  }(faulty_bus, faulty_done).detach();
  eng.run_until(sim::Time::sec(1));

  EXPECT_GT(clean_done, sim::Time::zero());
  EXPECT_GT(faulty_done, sim::Time::zero());
  // Rate 1.0 burns every retry: the transfer still completes (the model
  // gives up injecting after max_retries) but pays a penalty per attempt.
  EXPECT_EQ(faulty_bus.dma_retries(),
            static_cast<std::uint64_t>(plane.pci().policy().max_retries));
  EXPECT_GT(faulty_done, clean_done);
}

TEST(DiskInjection, ReadErrorsRetryAndSpikesStretchLatency) {
  sim::Engine eng;
  hw::ScsiDisk clean{eng};
  hw::ScsiDisk faulty{eng};
  fault::FaultPlane plane{eng, storm(1.0)};
  faulty.set_fault(&plane.disk());

  sim::Time clean_done, faulty_done;
  [](hw::ScsiDisk& d, sim::Time& done, sim::Engine& e) -> sim::Coro {
    co_await d.read(0, 64 * 1024);
    done = e.now();
  }(clean, clean_done, eng).detach();
  [](hw::ScsiDisk& d, sim::Time& done, sim::Engine& e) -> sim::Coro {
    co_await d.read(0, 64 * 1024);
    done = e.now();
  }(faulty, faulty_done, eng).detach();
  eng.run_until(sim::Time::sec(5));

  EXPECT_GT(clean_done, sim::Time::zero());
  EXPECT_GT(faulty_done, sim::Time::zero());
  EXPECT_EQ(faulty.read_retries(),
            static_cast<std::uint64_t>(plane.disk().policy().max_retries));
  EXPECT_GE(plane.summary().disk_spikes, 1u);
  // Spike multiplies the mechanical service time ~20x and each retry pays
  // overhead + transfer again: the faulty read is dramatically slower.
  EXPECT_GT(faulty_done.to_us(), clean_done.to_us() * 5.0);
}

TEST(DiskInjection, FaultStormOnDiskNiNetPathDegradesGracefully) {
  // Full pipeline: producer reads from the NI's disk, enqueues into the
  // board-resident scheduler, frames leave via board UDP to a client. A 30%
  // disk fault storm (retries + 20x spikes) must slow delivery, not wedge
  // the pipeline or kill the run.
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  apps::NiSchedulerServer server{eng, bus, ether};
  apps::MpegClient client{eng, ether};

  auto profile = storm(0.0);
  profile.disk.read_error_rate = 0.3;
  profile.disk.latency_spike_rate = 0.3;
  fault::FaultPlane plane{eng, profile};
  server.board().disk(0).set_fault(&plane.disk());

  const auto sid = server.service().create_stream(
      {.tolerance = {1, 4}, .period = sim::Time::ms(33), .lossy = true},
      client.port());
  rtos::Task& task = server.kernel().spawn("tProd", 120);
  mpeg::EncoderParams ep;
  ep.mean_i_bytes = 2000;
  ep.mean_p_bytes = 1000;
  ep.mean_b_bytes = 500;
  ep.seed = 5;
  const auto file = mpeg::SyntheticEncoder{ep}.generate(60);
  apps::ProducerStats stats;
  apps::ni_disk_producer(eng, server.board().disk(0), task, file,
                         server.service(), stats, {.stream = sid})
      .detach();
  eng.run_until(sim::Time::sec(5));

  EXPECT_GT(plane.summary().disk_read_errors + plane.summary().disk_spikes,
            0u);
  // Frames still flow end to end.
  EXPECT_GT(client.frames_received(sid), 30u);
}

}  // namespace
}  // namespace nistream
