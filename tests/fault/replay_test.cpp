// Replay determinism: two runs of the same chaos scenario with the same seed
// must be bit-identical — same fault decisions, same charge fingerprint (NI
// CPU cycle count), same delivery and violation counters. The seed comes from
// NISTREAM_CHAOS_SEED so the CI chaos matrix can sweep it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "apps/client.hpp"
#include "apps/failover_server.hpp"
#include "fault/fault_plane.hpp"
#include "sim/engine.hpp"

namespace nistream {
namespace {

using sim::Time;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("NISTREAM_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

sim::Coro paced_producer(sim::Engine& eng, apps::FailoverMediaServer& server,
                         dwcs::StreamId id, Time phase, Time until) {
  const Time period = Time::ms(33);
  co_await sim::Delay{eng, period + phase};
  for (;;) {
    if (eng.now() >= until) co_return;
    (void)server.enqueue(id, 1000, mpeg::FrameType::kP);
    co_await sim::Delay{eng, period};
  }
}

/// Everything observable about one run, for whole-struct equality.
struct Fingerprint {
  std::uint64_t cpu_cycles;  // NI charge stream fingerprint
  std::uint64_t faults_injected;
  std::uint64_t frames_dropped;
  std::uint64_t i2o_dropped;
  std::uint64_t disk_errors;
  std::uint64_t client_frames;
  std::uint64_t client_bytes;
  std::uint64_t violating_windows;
  std::uint64_t failovers;
  std::uint64_t failbacks;
  std::uint64_t purged;
  std::uint64_t rejected;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_chaos(std::uint64_t seed) {
  sim::Engine eng;
  hostos::HostMachine host{eng, 2};
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  fault::FaultPlane plane{eng, fault::FaultProfile::uniform(0.02, seed)};

  apps::FailoverMediaServer::Config cfg;
  cfg.service.scheduler.deadline_from_completion = true;
  apps::FailoverMediaServer server{host, bus, ether, cfg};
  apps::MpegClient client{eng, ether};

  ether.set_fault(&plane.link());
  bus.set_fault(&plane.pci());
  server.ni().board().i2o().set_fault(&plane.i2o());
  server.ni().board().disk(0).set_fault(&plane.disk());
  server.ni().attach_health(plane.health());
  plane.health().schedule_crash(Time::sec(1), /*reboot_after=*/Time::ms(700));

  for (std::size_t i = 0; i < 6; ++i) {
    const auto id = server.create_stream(
        {.tolerance = {1, 4}, .period = Time::ms(33), .lossy = true},
        client.port());
    paced_producer(eng, server, id,
                   Time::us(700.0 * static_cast<double>(i)), Time::sec(3))
        .detach();
  }
  eng.run_until(Time::sec(3));

  const auto s = plane.summary();
  const auto m = server.metrics();
  return Fingerprint{
      .cpu_cycles = server.ni().board().cpu().cycles(),
      .faults_injected = s.total(),
      .frames_dropped = s.frames_dropped,
      .i2o_dropped = s.i2o_inbound_dropped + s.i2o_outbound_dropped,
      .disk_errors = s.disk_read_errors,
      .client_frames = client.total_frames(),
      .client_bytes = client.total_bytes(),
      .violating_windows = server.monitor().total_violating_windows(),
      .failovers = m.failovers,
      .failbacks = m.failbacks,
      .purged = m.frames_purged,
      .rejected = m.frames_rejected,
  };
}

TEST(Replay, SameSeedSameChargeFingerprint) {
  const auto seed = chaos_seed();
  const auto a = run_chaos(seed);
  const auto b = run_chaos(seed);
  EXPECT_EQ(a, b);

  // Sanity: the scenario actually exercised the fault plane and failover —
  // a trivially idle run would be trivially deterministic.
  EXPECT_GT(a.faults_injected, 0u);
  EXPECT_EQ(a.failovers, 1u);
  EXPECT_EQ(a.failbacks, 1u);
  EXPECT_GT(a.client_frames, 0u);
  EXPECT_GT(a.cpu_cycles, 0u);
}

TEST(Replay, DifferentSeedsDiverge) {
  const auto seed = chaos_seed();
  const auto a = run_chaos(seed);
  const auto b = run_chaos(seed + 1);
  // The fault decision sequence is seed-driven; a different seed lands
  // faults on different frames.
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace nistream
