// Tests for the fault plane: seeded determinism, per-component RNG stream
// independence, zero-rate inertness, and the BoardHealth state machine.
#include "fault/fault_plane.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace nistream::fault {
namespace {

TEST(FaultProfile, UniformSetsEveryRate) {
  const auto p = FaultProfile::uniform(0.25, 7);
  EXPECT_EQ(p.seed, 7u);
  EXPECT_DOUBLE_EQ(p.link.frame_loss_rate, 0.25);
  EXPECT_DOUBLE_EQ(p.link.frame_corrupt_rate, 0.25);
  EXPECT_DOUBLE_EQ(p.i2o.inbound_drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(p.i2o.outbound_drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(p.pci.transaction_error_rate, 0.25);
  EXPECT_DOUBLE_EQ(p.disk.read_error_rate, 0.25);
  EXPECT_DOUBLE_EQ(p.disk.latency_spike_rate, 0.25);
}

TEST(FaultPlane, SameSeedSameDecisions) {
  sim::Engine e1, e2;
  FaultPlane a{e1, FaultProfile::uniform(0.3, 99)};
  FaultPlane b{e2, FaultProfile::uniform(0.3, 99)};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.link().drop_frame(), b.link().drop_frame());
    EXPECT_EQ(a.link().corrupt_frame(), b.link().corrupt_frame());
    EXPECT_EQ(a.i2o().drop_inbound(), b.i2o().drop_inbound());
    EXPECT_EQ(a.pci().transaction_error(), b.pci().transaction_error());
    EXPECT_EQ(a.disk().read_error(), b.disk().read_error());
    EXPECT_EQ(a.disk().latency_spike(), b.disk().latency_spike());
  }
  EXPECT_EQ(a.summary().total(), b.summary().total());
  EXPECT_GT(a.summary().total(), 0u);
}

TEST(FaultPlane, ComponentStreamsAreIndependent) {
  // Raising the disk rate must not perturb which frames the link drops:
  // each component owns a forked RNG stream.
  sim::Engine e1, e2;
  auto quiet_disk = FaultProfile::uniform(0.3, 1234);
  quiet_disk.disk = DiskFaultPolicy{};  // all zero
  FaultPlane a{e1, quiet_disk};
  FaultPlane b{e2, FaultProfile::uniform(0.3, 1234)};
  std::vector<bool> da, db;
  for (int i = 0; i < 1000; ++i) {
    da.push_back(a.link().drop_frame());
    db.push_back(b.link().drop_frame());
    // b also consumes disk draws between link draws; a must not care.
    (void)b.disk().read_error();
    (void)b.disk().latency_spike();
  }
  EXPECT_EQ(da, db);
}

TEST(FaultPlane, ZeroRateInjectsNothing) {
  sim::Engine eng;
  FaultPlane p{eng, FaultProfile{}};  // all rates default to zero
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(p.link().drop_frame());
    EXPECT_FALSE(p.link().corrupt_frame());
    EXPECT_FALSE(p.i2o().drop_inbound());
    EXPECT_FALSE(p.i2o().drop_outbound());
    EXPECT_FALSE(p.pci().transaction_error());
    EXPECT_FALSE(p.disk().read_error());
    EXPECT_FALSE(p.disk().latency_spike());
  }
  EXPECT_EQ(p.summary().total(), 0u);
}

TEST(FaultPlane, ZeroRateDrawsNoRandomNumbers) {
  // A zero-rate check must short-circuit before touching the RNG, or merely
  // *wiring* a disabled injector would shift every downstream decision.
  // Detect draws by comparison with a twin whose zero-rate paths are never
  // exercised at all: if zero-rate calls consumed entropy, the twins'
  // subsequent nonzero-rate decisions would diverge.
  auto profile = FaultProfile::uniform(0.5, 77);
  profile.link.frame_loss_rate = 0.0;  // corrupt stays 0.5
  sim::Engine e1, e2;
  FaultPlane a{e1, profile};
  FaultPlane b{e2, profile};
  for (int i = 0; i < 500; ++i) {
    (void)a.link().drop_frame();  // zero rate: must not draw
    EXPECT_EQ(a.link().corrupt_frame(), b.link().corrupt_frame());
  }
  EXPECT_EQ(a.link().drops(), 0u);
}

TEST(BoardHealth, StateMachineAndIncarnation) {
  sim::Engine eng;
  BoardHealth h{eng};
  EXPECT_TRUE(h.alive());
  EXPECT_EQ(h.state(), BoardState::kUp);
  EXPECT_EQ(h.incarnation(), 0u);

  h.hang();
  EXPECT_FALSE(h.alive());
  EXPECT_EQ(h.state(), BoardState::kHung);
  h.hang();  // idempotent
  EXPECT_EQ(h.hangs(), 1u);
  h.recover();
  EXPECT_TRUE(h.alive());
  EXPECT_EQ(h.incarnation(), 0u);  // hang/recover keeps state

  h.crash();
  EXPECT_EQ(h.state(), BoardState::kDown);
  h.recover();  // recover() is hang-only; a crashed board needs reboot()
  EXPECT_EQ(h.state(), BoardState::kDown);
  h.reboot();
  EXPECT_TRUE(h.alive());
  EXPECT_EQ(h.incarnation(), 1u);
  EXPECT_EQ(h.crashes(), 1u);
  EXPECT_EQ(h.reboots(), 1u);
}

TEST(BoardHealth, HangedBoardCannotCrashTwice) {
  sim::Engine eng;
  BoardHealth h{eng};
  h.hang();
  h.crash();  // hung -> down is legal (the wedge got worse)
  EXPECT_EQ(h.state(), BoardState::kDown);
  h.crash();  // already down: no-op
  EXPECT_EQ(h.crashes(), 1u);
}

TEST(BoardHealth, ScheduledCrashAndReboot) {
  sim::Engine eng;
  BoardHealth h{eng};
  std::vector<BoardState> seen;
  h.set_observer([&seen](BoardState s) { seen.push_back(s); });
  h.schedule_crash(sim::Time::ms(10), /*reboot_after=*/sim::Time::ms(5));

  eng.run_until(sim::Time::ms(9));
  EXPECT_TRUE(h.alive());
  eng.run_until(sim::Time::ms(12));
  EXPECT_FALSE(h.alive());
  EXPECT_EQ(h.last_down_at(), sim::Time::ms(10));
  eng.run_until(sim::Time::ms(20));
  EXPECT_TRUE(h.alive());
  EXPECT_EQ(h.incarnation(), 1u);
  EXPECT_EQ(h.last_up_at(), sim::Time::ms(15));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], BoardState::kDown);
  EXPECT_EQ(seen[1], BoardState::kUp);
}

TEST(BoardHealth, ScheduledHangRecovers) {
  sim::Engine eng;
  BoardHealth h{eng};
  h.schedule_hang(sim::Time::ms(10), sim::Time::ms(20));
  eng.run_until(sim::Time::ms(15));
  EXPECT_EQ(h.state(), BoardState::kHung);
  eng.run_until(sim::Time::ms(35));
  EXPECT_EQ(h.state(), BoardState::kUp);
  EXPECT_EQ(h.incarnation(), 0u);  // a hang does not wipe the board
}

}  // namespace
}  // namespace nistream::fault
