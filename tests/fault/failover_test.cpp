// End-to-end failover choreography: NI crash mid-stream, watchdog trip, host
// takeover, board reboot, fail-back — plus the supporting machinery
// (checkpoint/restore, backlog purge, offline admission rejection).
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/client.hpp"
#include "apps/failover_server.hpp"
#include "fault/fault_plane.hpp"
#include "sim/engine.hpp"

namespace nistream::apps {
namespace {

using sim::Time;

constexpr Time kPeriod = Time::ms(33);

/// Timer-paced producer through the failover router; no disk, no retry.
sim::Coro paced_producer(sim::Engine& eng, FailoverMediaServer& server,
                         dwcs::StreamId id, Time phase, Time until) {
  co_await sim::Delay{eng, kPeriod + phase};
  for (;;) {
    if (eng.now() >= until) co_return;
    (void)server.enqueue(id, 1000, mpeg::FrameType::kP);
    co_await sim::Delay{eng, kPeriod};
  }
}

FailoverMediaServer::Config rig_config() {
  FailoverMediaServer::Config cfg;
  // Anchor deadlines to completion: with a fixed grid, VCM dispatch
  // serialization makes the last of several tied streams permanently late.
  cfg.service.scheduler.deadline_from_completion = true;
  return cfg;
}

struct Rig {
  sim::Engine eng;
  hostos::HostMachine host{eng, 2};
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  fault::FaultPlane plane{eng, fault::FaultProfile{}};  // zero rates
  FailoverMediaServer server{host, bus, ether, rig_config()};
  MpegClient client{eng, ether};

  Rig() { server.ni().attach_health(plane.health()); }

  dwcs::StreamId add_stream(std::size_t i, Time until) {
    const auto id = server.create_stream(
        {.tolerance = {1, 4}, .period = kPeriod, .lossy = true},
        client.port());
    paced_producer(eng, server, id,
                   Time::us(700.0 * static_cast<double>(i)), until)
        .detach();
    return id;
  }
};

TEST(Failover, CrashMidStreamTripsWatchdogAndHostTakesOver) {
  Rig rig;
  for (std::size_t i = 0; i < 4; ++i) rig.add_stream(i, Time::sec(4));
  // Crash at 1 s; no reboot — the board stays dead.
  rig.plane.health().schedule_crash(Time::sec(1));
  rig.eng.run_until(Time::sec(4));

  EXPECT_TRUE(rig.server.degraded());
  EXPECT_EQ(rig.server.watchdog().trips(), 1u);
  const auto m = rig.server.metrics();
  EXPECT_EQ(m.failovers, 1u);
  EXPECT_EQ(m.failbacks, 0u);
  // Detection latency: max_missed probes at ~interval cadence plus timeout.
  EXPECT_GT(m.failover_latency_ms, 0.0);
  EXPECT_LT(m.failover_latency_ms, 1000.0);
  ASSERT_NE(rig.server.host_server(), nullptr);
  EXPECT_EQ(rig.server.host_server()->service().scheduler().stream_count(),
            4u);

  // The host scheduler kept the tap running: clients saw frames after the
  // crash, and the board outage shows up as a bounded violation burst, not
  // a collapse.
  for (std::uint64_t sid = 0; sid < 4; ++sid) {
    EXPECT_GT(rig.client.frames_received(sid), 60u);
    EXPECT_LT(rig.server.monitor().violation_rate(
                  static_cast<dwcs::StreamId>(sid)),
              0.5);
  }
}

TEST(Failover, RebootBringsTheNiBackAndFailsBack) {
  Rig rig;
  for (std::size_t i = 0; i < 4; ++i) rig.add_stream(i, Time::sec(5));
  rig.plane.health().schedule_crash(Time::sec(1),
                                    /*reboot_after=*/Time::ms(800));
  rig.eng.run_until(Time::sec(5));

  EXPECT_FALSE(rig.server.degraded());  // back on the NI
  const auto m = rig.server.metrics();
  EXPECT_EQ(m.failovers, 1u);
  EXPECT_EQ(m.failbacks, 1u);
  EXPECT_GT(m.recovery_time_ms, m.failover_latency_ms);
  EXPECT_EQ(rig.server.watchdog().recoveries(), 1u);
  // The ack that triggered recovery carried the post-reboot incarnation.
  EXPECT_EQ(rig.server.watchdog().last_ack_incarnation(), 1u);
  EXPECT_EQ(rig.plane.health().incarnation(), 1u);
  // Streams flow end to end again after fail-back.
  for (std::uint64_t sid = 0; sid < 4; ++sid) {
    EXPECT_GT(rig.client.frames_received(sid), 80u);
  }
}

TEST(Failover, StreamsAdmittedWhileDegradedSurviveFailback) {
  Rig rig;
  for (std::size_t i = 0; i < 2; ++i) rig.add_stream(i, Time::sec(5));
  rig.plane.health().schedule_crash(Time::sec(1),
                                    /*reboot_after=*/Time::ms(800));
  // Admit two more streams while the host is serving (watchdog trips by
  // ~1.4 s; board back by ~2.5 s worst case).
  rig.eng.run_until(Time::ms(1500));
  ASSERT_TRUE(rig.server.degraded());
  for (std::size_t i = 2; i < 4; ++i) rig.add_stream(i, Time::sec(5));
  rig.eng.run_until(Time::sec(5));

  EXPECT_FALSE(rig.server.degraded());
  // Fail-back re-admitted the degraded-mode streams into the NI scheduler:
  // both sides agree on the 4-stream id space, and the late-admitted
  // streams are being served by the NI.
  EXPECT_EQ(rig.server.ni().service().scheduler().stream_count(), 4u);
  for (std::uint64_t sid = 2; sid < 4; ++sid) {
    EXPECT_GT(rig.client.frames_received(sid), 40u);
  }
}

TEST(Failover, PurgeMakesQueuedFrameLossVisible) {
  Rig rig;
  const auto id = rig.server.create_stream(
      {.tolerance = {1, 4}, .period = kPeriod, .lossy = true},
      rig.client.port());
  // Queue frames but stop the clock before any dispatch: they sit in the
  // NI ring when the board dies.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rig.server.enqueue(id, 1000, mpeg::FrameType::kP));
  }
  const auto before = rig.server.monitor().packets(id);
  rig.plane.health().crash();
  rig.eng.run_until(Time::sec(1));  // watchdog trips, fail_over purges

  const auto m = rig.server.metrics();
  EXPECT_EQ(m.failovers, 1u);
  EXPECT_EQ(m.frames_purged, 5u);
  // Every purged frame was recorded against the stream's window.
  EXPECT_EQ(rig.server.monitor().packets(id), before + 5);
}

TEST(Failover, OfflineBoardRejectsAdmission) {
  Rig rig;
  const auto id = rig.server.create_stream(
      {.tolerance = {1, 4}, .period = kPeriod, .lossy = true},
      rig.client.port());
  rig.plane.health().crash();
  // Before the watchdog notices, enqueues hit the dead NI service and are
  // refused (and recorded as drops by the router).
  EXPECT_FALSE(rig.server.enqueue(id, 1000, mpeg::FrameType::kP));
  EXPECT_EQ(rig.server.ni().service().rejected_offline(), 1u);
  EXPECT_EQ(rig.server.metrics().frames_rejected, 1u);
}

TEST(Failover, CheckpointRoundTripsStreamState) {
  Rig rig;
  rig.server.create_stream(
      {.tolerance = {1, 4}, .period = kPeriod, .lossy = true},
      rig.client.port());
  rig.server.create_stream(
      {.tolerance = {2, 8}, .period = Time::ms(40), .lossy = false},
      rig.client.port());
  const auto snap = rig.server.ni().service().checkpoint();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].id, 0u);
  EXPECT_EQ(snap[1].id, 1u);
  EXPECT_EQ(snap[1].params.tolerance.x, 2);
  EXPECT_EQ(snap[1].params.tolerance.y, 8);
  EXPECT_EQ(snap[1].params.period, Time::ms(40));
  EXPECT_FALSE(snap[1].params.lossy);
  EXPECT_EQ(snap[0].client_port, rig.client.port());

  // Restoring into a fresh host scheduler reproduces the id space.
  HostSchedulerServer standby{rig.host, rig.ether};
  standby.service().restore(snap);
  EXPECT_EQ(standby.service().scheduler().stream_count(), 2u);
}

TEST(Failover, NoFaultsMeansNoFailoverAndNoViolations) {
  Rig rig;
  for (std::size_t i = 0; i < 4; ++i) rig.add_stream(i, Time::sec(3));
  rig.eng.run_until(Time::sec(3));
  EXPECT_FALSE(rig.server.degraded());
  EXPECT_EQ(rig.server.watchdog().trips(), 0u);
  EXPECT_GT(rig.server.watchdog().acks_received(), 20u);
  EXPECT_EQ(rig.server.metrics().failovers, 0u);
  EXPECT_EQ(rig.server.monitor().total_violating_windows(), 0u);
}

}  // namespace
}  // namespace nistream::apps
