// Tests for the on-card memory pool.
#include "hw/memory.hpp"

#include <gtest/gtest.h>

namespace nistream::hw {
namespace {

TEST(Memory, AllocateAndRelease) {
  MemoryPool pool{1000};
  auto a = pool.allocate(400);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(pool.used(), 400u);
  EXPECT_EQ(pool.available(), 600u);
  pool.release(400);
  EXPECT_EQ(pool.used(), 0u);
}

TEST(Memory, ExhaustionFailsCleanly) {
  MemoryPool pool{1000};
  EXPECT_TRUE(pool.allocate(600).has_value());
  EXPECT_FALSE(pool.allocate(500).has_value());  // would exceed capacity
  EXPECT_EQ(pool.used(), 600u);                  // failed alloc changed nothing
  EXPECT_TRUE(pool.allocate(400).has_value());
}

TEST(Memory, HighWaterMark) {
  MemoryPool pool{1000};
  pool.allocate(700);
  pool.release(700);
  pool.allocate(100);
  EXPECT_EQ(pool.high_water(), 700u);
}

TEST(Memory, AddressesAreDistinctAndStable) {
  MemoryPool pool{1 << 20};
  const auto a = pool.allocate(100);
  const auto b = pool.allocate(100);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(*b, *a + 100);  // bump allocation is deterministic

  MemoryPool pool2{1 << 20};
  EXPECT_EQ(pool2.allocate(100), a);  // identical across instances
}

TEST(Memory, FourMegabyteCardFitsExpectedFrameLoad) {
  // The design point from §3.1.2: single frame copies in 4 MB of NI memory.
  MemoryPool pool{4ull * 1024 * 1024};
  // ~150 frames of 8 KB (Tables 1-3 workload) is far below capacity…
  for (int i = 0; i < 151; ++i) ASSERT_TRUE(pool.allocate(8192).has_value());
  // …but a full 1000-frame, 8 KB working set would not fit without the
  // single-copy discipline.
  MemoryPool pool2{4ull * 1024 * 1024};
  bool exhausted = false;
  for (int i = 0; i < 1000 && !exhausted; ++i) {
    exhausted = !pool2.allocate(2 * 8192).has_value();  // two copies each
  }
  EXPECT_TRUE(exhausted);
}

}  // namespace
}  // namespace nistream::hw
