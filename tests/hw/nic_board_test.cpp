// Tests for the assembled i960 RD board.
#include "hw/nic_board.hpp"

#include <gtest/gtest.h>

namespace nistream::hw {
namespace {

struct Fixture {
  sim::Engine eng;
  PciBus bus{eng};
  EthernetSwitch ether{eng};
  std::vector<EthFrame> received;
  NicBoard board{"ni0", eng, bus, ether,
                 [this](const EthFrame& f) { received.push_back(f); }};
};

TEST(NicBoard, HasPaperHardwareComplement) {
  Fixture f;
  EXPECT_EQ(f.board.memory().capacity(), 4ull * 1024 * 1024);
  EXPECT_EQ(f.board.hwqueue().capacity(), 1003u);
  EXPECT_NE(f.board.eth_port(0), f.board.eth_port(1));
  EXPECT_DOUBLE_EQ(f.board.cpu().hz(), 66e6);
}

TEST(NicBoard, ReceivesFramesOnBothPorts) {
  Fixture f;
  const int client = f.ether.add_port([](const EthFrame&) {});
  f.ether.send(client, f.board.eth_port(0), EthFrame{.bytes = 100, .tag = 1});
  f.ether.send(client, f.board.eth_port(1), EthFrame{.bytes = 100, .tag = 2});
  f.eng.run();
  ASSERT_EQ(f.received.size(), 2u);
}

TEST(NicBoard, DisksAreIndependentDrives) {
  Fixture f;
  sim::Time t0 = sim::Time::never(), t1 = sim::Time::never();
  f.board.disk(0).read_async(0, 1000, [&] { t0 = f.eng.now(); });
  f.board.disk(1).read_async(0, 1000, [&] { t1 = f.eng.now(); });
  f.eng.run();
  // Both complete without serializing on each other (separate SCSI buses) —
  // each in one mechanical access, not two.
  EXPECT_LT(t0.to_ms(), 8.0);
  EXPECT_LT(t1.to_ms(), 8.0);
}

TEST(NicBoard, TwoBoardsShareOnePciSegment) {
  sim::Engine eng;
  PciBus bus{eng};
  EthernetSwitch ether{eng};
  NicBoard a{"ni-a", eng, bus, ether, [](const EthFrame&) {}};
  NicBoard b{"ni-b", eng, bus, ether, [](const EthFrame&) {}};
  sim::Time ta = sim::Time::never(), tb = sim::Time::never();
  a.bus().dma_async(1000, [&] { ta = eng.now(); });
  b.bus().dma_async(1000, [&] { tb = eng.now(); });
  eng.run();
  EXPECT_NE(ta, tb);  // serialized on the shared segment
}

TEST(NicBoard, I2oChannelReachesBoardRuntime) {
  Fixture f;
  std::uint32_t got = 0;
  auto runtime = [&]() -> sim::Coro {
    got = (co_await f.board.i2o().inbound().receive()).function;
  };
  runtime().detach();
  f.board.i2o().post_inbound(I2oMessage{.function = 77});
  f.eng.run();
  EXPECT_EQ(got, 77u);
}

}  // namespace
}  // namespace nistream::hw
