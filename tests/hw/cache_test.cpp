// Tests for the direct-mapped data-cache model.
#include "hw/cache.hpp"

#include <gtest/gtest.h>

namespace nistream::hw {
namespace {

CacheParams small_cache() {
  return CacheParams{.line_bytes = 16, .num_lines = 4, .hit_cycles = 1,
                     .miss_cycles = 20};
}

TEST(Cache, ColdMissThenHit) {
  CacheModel c{small_cache()};
  EXPECT_EQ(c.access(0x100), 20);  // cold
  EXPECT_EQ(c.access(0x100), 1);   // warm
  EXPECT_EQ(c.access(0x104), 1);   // same 16-byte line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, ConflictEviction) {
  CacheModel c{small_cache()};
  // 4 lines of 16 bytes: addresses 0x0 and 0x40 map to the same set.
  EXPECT_EQ(c.access(0x00), 20);
  EXPECT_EQ(c.access(0x40), 20);  // evicts 0x00's line
  EXPECT_EQ(c.access(0x00), 20);  // miss again
}

TEST(Cache, DistinctSetsCoexist) {
  CacheModel c{small_cache()};
  c.access(0x00);
  c.access(0x10);
  c.access(0x20);
  c.access(0x30);
  EXPECT_EQ(c.access(0x00), 1);
  EXPECT_EQ(c.access(0x10), 1);
  EXPECT_EQ(c.access(0x20), 1);
  EXPECT_EQ(c.access(0x30), 1);
}

TEST(Cache, DisabledAlwaysPaysMemoryCost) {
  CacheModel c{small_cache()};
  c.set_enabled(false);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(c.access(0x100), 20);
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 5u);
}

TEST(Cache, DisableInvalidates) {
  CacheModel c{small_cache()};
  c.access(0x100);
  c.set_enabled(false);
  c.set_enabled(true);
  EXPECT_EQ(c.access(0x100), 20);  // content was lost
}

TEST(Cache, InvalidateFlushesEverything) {
  CacheModel c{small_cache()};
  c.access(0x00);
  c.access(0x10);
  c.invalidate();
  EXPECT_EQ(c.access(0x00), 20);
  EXPECT_EQ(c.access(0x10), 20);
}

TEST(Cache, HitRate) {
  CacheModel c{small_cache()};
  c.access(0x0);            // miss
  for (int i = 0; i < 9; ++i) c.access(0x0);  // 9 hits
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.9);
}

}  // namespace
}  // namespace nistream::hw
