// Tests for the striped multi-disk volume.
#include "hw/striped_volume.hpp"

#include <gtest/gtest.h>

namespace nistream::hw {
namespace {

using sim::Time;

struct Fixture {
  sim::Engine eng;
  std::vector<std::unique_ptr<ScsiDisk>> owned;
  std::vector<ScsiDisk*> disks;

  explicit Fixture(int n) {
    for (int i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<ScsiDisk>(
          eng, kScsiDisk, static_cast<std::uint64_t>(100 + i)));
      disks.push_back(owned.back().get());
    }
  }
};

TEST(StripedVolume, AddressMapping) {
  Fixture f{4};
  StripedVolume vol{f.eng, f.disks, /*stripe_bytes=*/1000};
  EXPECT_EQ(vol.disk_of(0), 0);
  EXPECT_EQ(vol.disk_of(999), 0);
  EXPECT_EQ(vol.disk_of(1000), 1);
  EXPECT_EQ(vol.disk_of(3999), 3);
  EXPECT_EQ(vol.disk_of(4000), 0);  // wraps to the next row
  EXPECT_EQ(vol.local_offset(0), 0u);
  EXPECT_EQ(vol.local_offset(1500), 500u);   // disk 1, row 0
  EXPECT_EQ(vol.local_offset(4000), 1000u);  // disk 0, row 1
  EXPECT_EQ(vol.local_offset(4250), 1250u);
}

TEST(StripedVolume, SmallReadTouchesOneDisk) {
  Fixture f{4};
  StripedVolume vol{f.eng, f.disks, 64 * 1024};
  auto proc = [&]() -> sim::Coro { co_await vol.read(1000, 4096); };
  proc().detach();
  f.eng.run();
  EXPECT_EQ(f.disks[0]->requests(), 1u);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(f.disks[static_cast<std::size_t>(i)]->requests(), 0u);
  EXPECT_EQ(vol.segments(), 1u);
}

TEST(StripedVolume, WideReadFansOutToAllMembers) {
  Fixture f{4};
  StripedVolume vol{f.eng, f.disks, 64 * 1024};
  auto proc = [&]() -> sim::Coro { co_await vol.read(0, 4 * 64 * 1024); };
  proc().detach();
  f.eng.run();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(f.disks[static_cast<std::size_t>(i)]->requests(), 1u) << i;
    EXPECT_EQ(f.disks[static_cast<std::size_t>(i)]->bytes_read(), 64u * 1024u);
  }
  EXPECT_EQ(vol.segments(), 4u);
}

TEST(StripedVolume, ParallelismBeatsSingleDisk) {
  // Read 8 x 64 KB: one disk serializes 8 mechanical accesses; a 4-wide
  // stripe runs them 4 at a time.
  const auto elapsed = [](int width) {
    Fixture f{width};
    StripedVolume vol{f.eng, f.disks, 64 * 1024};
    auto proc = [&]() -> sim::Coro { co_await vol.read(0, 8 * 64 * 1024); };
    proc().detach();
    return f.eng.run();
  };
  const Time one = elapsed(1);
  const Time four = elapsed(4);
  EXPECT_GT(one / four, 2.5);  // near-4x modulo mechanical variance
}

TEST(StripedVolume, UnalignedExtent) {
  Fixture f{2};
  StripedVolume vol{f.eng, f.disks, 1000};
  // [500, 2500): 500 B on disk 0, 1000 B on disk 1, 500 B on disk 0 row 1.
  auto proc = [&]() -> sim::Coro { co_await vol.read(500, 2000); };
  proc().detach();
  f.eng.run();
  EXPECT_EQ(f.disks[0]->bytes_read(), 1000u);
  EXPECT_EQ(f.disks[1]->bytes_read(), 1000u);
  EXPECT_EQ(vol.segments(), 3u);
}

TEST(StripedVolume, SequentialStreamingThroughput) {
  // Long sequential scan: striping multiplies effective bandwidth.
  const auto throughput = [](int width) {
    Fixture f{width};
    StripedVolume vol{f.eng, f.disks, 64 * 1024};
    constexpr std::uint64_t kTotal = 8ull * 1024 * 1024;
    auto proc = [&]() -> sim::Coro {
      for (std::uint64_t off = 0; off < kTotal; off += 256 * 1024) {
        co_await vol.read(off, 256 * 1024);
      }
    };
    proc().detach();
    const Time t = f.eng.run();
    return static_cast<double>(kTotal) / t.to_sec() / 1e6;  // MB/s
  };
  const double one = throughput(1);
  const double two = throughput(2);
  EXPECT_GT(two, 1.7 * one);
}

}  // namespace
}  // namespace nistream::hw
