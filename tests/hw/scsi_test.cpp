// Tests for the SCSI disk model: Table 4 calibration (~4.2 ms per random
// 1000-byte frame), sequential-access fast path, request serialization.
#include "hw/scsi_disk.hpp"

#include <gtest/gtest.h>

namespace nistream::hw {
namespace {

TEST(Scsi, RandomFrameReadAveragesFourPointTwoMs) {
  sim::Engine eng;
  ScsiDisk disk{eng};
  // 1000 random (far-apart) 1000-byte reads, as in Table 4's methodology.
  auto proc = [&]() -> sim::Coro {
    for (int i = 0; i < 1000; ++i) {
      co_await disk.read(static_cast<std::uint64_t>(i) * 10'000'000, 1000);
    }
  };
  proc().detach();
  eng.run();
  EXPECT_EQ(disk.requests(), 1000u);
  EXPECT_NEAR(disk.latency_ms().mean(), 4.2, 0.15);  // "4.2disk"
}

TEST(Scsi, SequentialReadSkipsSeek) {
  sim::Engine eng;
  ScsiDisk disk{eng};
  auto proc = [&]() -> sim::Coro {
    co_await disk.read(0, 1000);  // positions the head
    for (int i = 1; i < 100; ++i) {
      co_await disk.read(static_cast<std::uint64_t>(i) * 1000, 1000);
    }
  };
  proc().detach();
  eng.run();
  // After the first read, each sequential read costs overhead+transfer only:
  // 0.3 ms + 0.1 ms = 0.4 ms.
  const double seq_mean =
      (disk.latency_ms().sum() - disk.latency_ms().max()) / 99.0;
  EXPECT_NEAR(seq_mean, 0.4, 0.05);
}

TEST(Scsi, BackwardJumpPaysSeek) {
  sim::Engine eng;
  ScsiDisk disk{eng};
  std::vector<double> lat;
  auto proc = [&]() -> sim::Coro {
    co_await disk.read(50'000'000, 1000);
    const double before = disk.latency_ms().sum();
    co_await disk.read(0, 1000);  // far backward
    lat.push_back(disk.latency_ms().sum() - before);
  };
  proc().detach();
  eng.run();
  ASSERT_EQ(lat.size(), 1u);
  EXPECT_GT(lat[0], 0.7);  // more than overhead+transfer: a real seek
}

TEST(Scsi, RequestsSerializeOnTheDrive) {
  sim::Engine eng;
  ScsiDisk disk{eng};
  sim::Time first = sim::Time::never(), second = sim::Time::never();
  disk.read_async(0, 1000, [&] { first = eng.now(); });
  disk.read_async(100'000'000, 1000, [&] { second = eng.now(); });
  eng.run();
  EXPECT_LT(first, second);
  EXPECT_GT(second.to_ms(), first.to_ms() + 0.3);  // waited for the drive
  EXPECT_EQ(disk.bytes_read(), 2000u);
}

TEST(Scsi, DeterministicAcrossRuns) {
  auto run = [] {
    sim::Engine eng;
    ScsiDisk disk{eng, kScsiDisk, /*seed=*/7};
    auto proc = [&]() -> sim::Coro {
      for (int i = 0; i < 50; ++i) {
        co_await disk.read(static_cast<std::uint64_t>(i) * 5'000'000, 1000);
      }
    };
    proc().detach();
    return eng.run();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace nistream::hw
