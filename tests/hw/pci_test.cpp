// Tests for the PCI bus model: calibration against Table 5, exclusivity,
// and queueing under contention.
#include "hw/pci.hpp"

#include <gtest/gtest.h>

namespace nistream::hw {
namespace {

TEST(Pci, Table5DmaCalibration) {
  // Table 5: 773665-byte MPEG file DMA'd card-to-card in 11673.84 us.
  sim::Engine eng;
  PciBus bus{eng};
  const sim::Time t = bus.dma_duration(773665);
  EXPECT_NEAR(t.to_us(), 11673.84, /*tolerance=*/120.0);
}

TEST(Pci, Table5PioCosts) {
  sim::Engine eng;
  PciBus bus{eng};
  EXPECT_DOUBLE_EQ(bus.pio_read_cost().to_us(), 3.6);
  EXPECT_DOUBLE_EQ(bus.pio_write_cost().to_us(), 3.1);
}

TEST(Pci, ThousandByteFrameIsAbout15us) {
  // Paper §4.2.2: "transfer time from I2O NI card to I2O NI card across the
  // PCI bus is ~15 us for a single frame".
  sim::Engine eng;
  PciBus bus{eng};
  EXPECT_NEAR(bus.dma_duration(1000).to_us(), 15.0, 1.0);
}

TEST(Pci, DmaCompletesAfterDuration) {
  sim::Engine eng;
  PciBus bus{eng};
  bool done = false;
  bus.dma_async(1000, [&] { done = true; });
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(eng.now().to_us(), bus.dma_duration(1000).to_us(), 0.01);
  EXPECT_EQ(bus.bytes_moved(), 1000u);
  EXPECT_EQ(bus.transfers(), 1u);
}

TEST(Pci, ConcurrentDmasSerialize) {
  sim::Engine eng;
  PciBus bus{eng};
  sim::Time first = sim::Time::never(), second = sim::Time::never();
  bus.dma_async(1000, [&] { first = eng.now(); });
  bus.dma_async(1000, [&] { second = eng.now(); });
  eng.run();
  const double one = bus.dma_duration(1000).to_us();
  EXPECT_NEAR(first.to_us(), one, 0.01);
  EXPECT_NEAR(second.to_us(), 2 * one, 0.01);  // had to wait for the bus
  EXPECT_EQ(bus.transfers(), 2u);
}

TEST(Pci, BusyTimeTracksTransfers) {
  sim::Engine eng;
  PciBus bus{eng};
  bus.dma_async(10000, [] {});
  eng.run();
  EXPECT_NEAR(bus.busy_time().to_us(), bus.dma_duration(10000).to_us(), 0.01);
}

TEST(Pci, CoroutineAwaitable) {
  sim::Engine eng;
  PciBus bus{eng};
  sim::Time done_at = sim::Time::never();
  auto proc = [&]() -> sim::Coro {
    co_await bus.dma(500);
    co_await bus.dma(500);
    done_at = eng.now();
  };
  proc().detach();
  eng.run();
  EXPECT_NEAR(done_at.to_us(), 2 * bus.dma_duration(500).to_us(), 0.01);
}

}  // namespace
}  // namespace nistream::hw
