// Tests for the cycle-accounting CPU model.
#include "hw/cpu.hpp"

#include <gtest/gtest.h>

namespace nistream::hw {
namespace {

TEST(Cpu, ChargeAccumulates) {
  CpuModel cpu{kI960Rd};
  cpu.charge(100);
  cpu.charge(32);
  EXPECT_EQ(cpu.cycles(), 132);
}

TEST(Cpu, ElapsedConvertsAtClockRate) {
  CpuModel cpu{kI960Rd};  // 66 MHz
  cpu.charge(66);
  EXPECT_EQ(cpu.elapsed(), sim::Time::us(1));
  cpu.charge(66 * 999);
  EXPECT_EQ(cpu.elapsed(), sim::Time::ms(1));
}

TEST(Cpu, ArithCostsPerTable) {
  CpuModel cpu{kI960Rd};
  cpu.charge_arith(kI960IntCosts, ArithOp::kAdd);
  EXPECT_EQ(cpu.cycles(), kI960IntCosts.add);
  cpu.reset();
  cpu.charge_arith(kI960SoftFloatCosts, ArithOp::kDiv, 3);
  EXPECT_EQ(cpu.cycles(), 3 * kI960SoftFloatCosts.div);
}

TEST(Cpu, SoftFloatIsMuchSlowerThanInt) {
  // The whole Table 1 vs fixed-point story rests on this gap.
  EXPECT_GT(kI960SoftFloatCosts.add, 20 * kI960IntCosts.add);
  EXPECT_GT(kI960SoftFloatCosts.cmp, 20 * kI960IntCosts.cmp);
}

TEST(Cpu, MemAccessGoesThroughCache) {
  CpuModel cpu{kI960Rd};
  cpu.mem_access(0x1000);
  const auto cold = cpu.cycles();
  cpu.mem_access(0x1000);
  const auto warm = cpu.cycles() - cold;
  EXPECT_EQ(cold, kI960Rd.dcache.miss_cycles);
  EXPECT_EQ(warm, kI960Rd.dcache.hit_cycles);
}

TEST(Cpu, DisabledCacheChargesMissEveryTime) {
  CpuModel cpu{kI960Rd};
  cpu.dcache().set_enabled(false);
  cpu.mem_access(0x1000);
  cpu.mem_access(0x1000);
  EXPECT_EQ(cpu.cycles(), 2 * kI960Rd.dcache.miss_cycles);
}

TEST(Cpu, RegisterAccessIsCheapAndUncached) {
  CpuModel cpu{kI960Rd};
  cpu.dcache().set_enabled(false);  // register file must not care
  cpu.reg_access();
  cpu.reg_access();
  EXPECT_EQ(cpu.cycles(), 2 * kI960Rd.mmio_reg_cycles);
  EXPECT_LT(kI960Rd.mmio_reg_cycles, kI960Rd.dcache.miss_cycles);
}

TEST(Cpu, TimeOfUsesOwnClock) {
  CpuModel ni{kI960Rd};
  CpuModel host{kPentiumPro200};
  // The same cycle count is ~3x longer on the 66 MHz part.
  EXPECT_GT(ni.time_of(1000), host.time_of(1000));
  EXPECT_NEAR(ni.time_of(66000).to_us(), 1000.0, 1.0);
  EXPECT_NEAR(host.time_of(66000).to_us(), 330.0, 1.0);
}

TEST(Cpu, ResetClearsCycles) {
  CpuModel cpu{kI960Rd};
  cpu.charge(500);
  cpu.reset();
  EXPECT_EQ(cpu.cycles(), 0);
  EXPECT_EQ(cpu.elapsed(), sim::Time::zero());
}

}  // namespace
}  // namespace nistream::hw
