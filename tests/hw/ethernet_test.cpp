// Tests for the switched-Ethernet model.
#include "hw/ethernet.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nistream::hw {
namespace {

struct Fixture {
  sim::Engine eng;
  EthernetSwitch sw{eng};
  std::vector<std::pair<sim::Time, EthFrame>> rx_a, rx_b;
  int a, b;

  Fixture() {
    a = sw.add_port([this](const EthFrame& f) { rx_a.emplace_back(eng.now(), f); });
    b = sw.add_port([this](const EthFrame& f) { rx_b.emplace_back(eng.now(), f); });
  }
};

TEST(Ethernet, WireTimeAt100Mbps) {
  sim::Engine eng;
  EthernetSwitch sw{eng};
  // 1462-byte payload + 38 overhead = 1500 bytes = 120 us at 100 Mbps —
  // the "half an Ethernet frame time (~120us)" yardstick in §4.2.
  EXPECT_NEAR(sw.wire_time(1462).to_us(), 120.0, 0.1);
  EXPECT_NEAR(sw.wire_time(1000).to_us(), 83.0, 0.1);
}

TEST(Ethernet, StoreAndForwardDelivery) {
  Fixture f;
  f.sw.send(f.a, f.b, EthFrame{.bytes = 1000, .tag = 7});
  f.eng.run();
  ASSERT_EQ(f.rx_b.size(), 1u);
  EXPECT_EQ(f.rx_b[0].second.tag, 7u);
  EXPECT_EQ(f.rx_b[0].second.src_port, f.a);
  // Two serializations + switch latency.
  const double expect =
      2 * f.sw.wire_time(1000).to_us() + f.sw.params().switch_latency.to_us();
  EXPECT_NEAR(f.rx_b[0].first.to_us(), expect, 0.1);
  EXPECT_TRUE(f.rx_a.empty());
}

TEST(Ethernet, UplinkQueueingBetweenFrames) {
  Fixture f;
  f.sw.send(f.a, f.b, EthFrame{.bytes = 1000, .tag = 1});
  f.sw.send(f.a, f.b, EthFrame{.bytes = 1000, .tag = 2});
  f.eng.run();
  ASSERT_EQ(f.rx_b.size(), 2u);
  const double gap = f.rx_b[1].first.to_us() - f.rx_b[0].first.to_us();
  // Back-to-back frames are spaced by one serialization time.
  EXPECT_NEAR(gap, f.sw.wire_time(1000).to_us(), 0.1);
  EXPECT_EQ(f.rx_b[0].second.tag, 1u);
  EXPECT_EQ(f.rx_b[1].second.tag, 2u);
}

TEST(Ethernet, DownlinkContentionFromTwoSenders) {
  Fixture f;
  const int c = f.sw.add_port([](const EthFrame&) {});
  // a and c both send to b at t=0; the second arrival is delayed by b's
  // downlink serialization of the first.
  f.sw.send(f.a, f.b, EthFrame{.bytes = 1000, .tag = 1});
  f.sw.send(c, f.b, EthFrame{.bytes = 1000, .tag = 2});
  f.eng.run();
  ASSERT_EQ(f.rx_b.size(), 2u);
  const double gap = f.rx_b[1].first.to_us() - f.rx_b[0].first.to_us();
  EXPECT_NEAR(gap, f.sw.wire_time(1000).to_us(), 0.1);
}

TEST(Ethernet, SeparatePortPairsDoNotInterfere) {
  Fixture f;
  std::vector<sim::Time> rx_d;
  const int c = f.sw.add_port([](const EthFrame&) {});
  const int d = f.sw.add_port([&](const EthFrame&) { rx_d.push_back(f.eng.now()); });
  f.sw.send(f.a, f.b, EthFrame{.bytes = 1000});
  f.sw.send(c, d, EthFrame{.bytes = 1000});
  f.eng.run();
  ASSERT_EQ(f.rx_b.size(), 1u);
  ASSERT_EQ(rx_d.size(), 1u);
  EXPECT_EQ(f.rx_b[0].first, rx_d[0]);  // identical, independent paths
}

TEST(Ethernet, PayloadSharedPtrSurvives) {
  Fixture f;
  auto body = std::make_shared<int>(42);
  f.sw.send(f.a, f.b, EthFrame{.bytes = 64, .payload = body});
  body.reset();
  f.eng.run();
  ASSERT_EQ(f.rx_b.size(), 1u);
  const auto got = std::static_pointer_cast<int>(f.rx_b[0].second.payload);
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, 42);
}

TEST(Ethernet, BytesSwitchedAccumulates) {
  Fixture f;
  f.sw.send(f.a, f.b, EthFrame{.bytes = 100});
  f.sw.send(f.b, f.a, EthFrame{.bytes = 200});
  f.eng.run();
  EXPECT_EQ(f.sw.bytes_switched(), 300u);
}

}  // namespace
}  // namespace nistream::hw
