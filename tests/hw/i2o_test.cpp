// Tests for the I2O hardware queue (1004-register circular buffer) and the
// host<->card message channel.
#include "hw/i2o.hpp"

#include <gtest/gtest.h>

namespace nistream::hw {
namespace {

TEST(HardwareQueue, PushPopFifo) {
  CpuModel cpu{kI960Rd};
  HardwareQueue q{cpu, 8};
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 7u);
  for (std::uint32_t i = 0; i < 7; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(99));
  for (std::uint32_t i = 0; i < 7; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(HardwareQueue, WrapsAround) {
  CpuModel cpu{kI960Rd};
  HardwareQueue q{cpu, 4};
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(q.push(static_cast<std::uint32_t>(round)));
    EXPECT_TRUE(q.push(static_cast<std::uint32_t>(round + 100)));
    EXPECT_EQ(*q.pop(), static_cast<std::uint32_t>(round));
    EXPECT_EQ(*q.pop(), static_cast<std::uint32_t>(round + 100));
  }
}

TEST(HardwareQueue, PeekPokeInPlace) {
  CpuModel cpu{kI960Rd};
  HardwareQueue q{cpu, 16};
  q.push(10);
  q.push(20);
  q.push(30);
  EXPECT_EQ(q.peek(0), 10u);
  EXPECT_EQ(q.peek(2), 30u);
  q.poke(1, 99);
  EXPECT_EQ(q.peek(1), 99u);
  q.pop();
  EXPECT_EQ(q.peek(0), 99u);  // indices are relative to the tail
}

TEST(HardwareQueue, AccessesChargeRegisterCostNotMemory) {
  CpuModel cpu{kI960Rd};
  cpu.dcache().set_enabled(false);  // register file must be unaffected
  HardwareQueue q{cpu, 1004};
  cpu.reset();
  q.push(1);
  EXPECT_EQ(cpu.cycles(), 2 * kI960Rd.mmio_reg_cycles);
  cpu.reset();
  (void)q.peek(0);
  EXPECT_EQ(cpu.cycles(), kI960Rd.mmio_reg_cycles);
}

TEST(HardwareQueue, DefaultSizeMatchesPaper) {
  CpuModel cpu{kI960Rd};
  HardwareQueue q{cpu};
  EXPECT_EQ(q.capacity(), 1003u);  // 1004 registers, one empty slot
}

TEST(I2oChannel, InboundDeliversAfterPostCost) {
  sim::Engine eng;
  PciBus bus{eng};
  I2oChannel chan{eng, bus};
  I2oMessage got;
  sim::Time got_at = sim::Time::never();
  auto consumer = [&]() -> sim::Coro {
    got = co_await chan.inbound().receive();
    got_at = eng.now();
  };
  consumer().detach();
  const sim::Time cost = chan.post_inbound(I2oMessage{.function = 5, .w0 = 42});
  eng.run();
  EXPECT_EQ(got.function, 5u);
  EXPECT_EQ(got.w0, 42u);
  // Posting cost: 16 words of PIO writes at 3.1 us.
  EXPECT_NEAR(cost.to_us(), 16 * 3.1, 0.01);
  EXPECT_NEAR(got_at.to_us(), cost.to_us() + kI2o.doorbell_latency.to_us(), 0.01);
}

TEST(I2oChannel, OutboundPath) {
  sim::Engine eng;
  PciBus bus{eng};
  I2oChannel chan{eng, bus};
  bool got = false;
  auto consumer = [&]() -> sim::Coro {
    const I2oMessage m = co_await chan.outbound().receive();
    got = (m.function == 9);
  };
  consumer().detach();
  chan.post_outbound(I2oMessage{.function = 9});
  eng.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(chan.outbound_posted(), 1u);
}

TEST(I2oChannel, MessagesKeepOrder) {
  sim::Engine eng;
  PciBus bus{eng};
  I2oChannel chan{eng, bus};
  std::vector<std::uint32_t> order;
  auto consumer = [&]() -> sim::Coro {
    for (int i = 0; i < 3; ++i) {
      order.push_back((co_await chan.inbound().receive()).function);
    }
  };
  consumer().detach();
  chan.post_inbound(I2oMessage{.function = 1});
  chan.post_inbound(I2oMessage{.function = 2});
  chan.post_inbound(I2oMessage{.function = 3});
  eng.run();
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(I2oChannel, PayloadTransfersOwnership) {
  sim::Engine eng;
  PciBus bus{eng};
  I2oChannel chan{eng, bus};
  int result = 0;
  auto consumer = [&]() -> sim::Coro {
    const I2oMessage m = co_await chan.inbound().receive();
    result = *std::static_pointer_cast<int>(m.payload);
  };
  consumer().detach();
  chan.post_inbound(I2oMessage{.payload = std::make_shared<int>(1234)});
  eng.run();
  EXPECT_EQ(result, 1234);
}

}  // namespace
}  // namespace nistream::hw
