// Tests for the synthetic MPEG-1 encoder and the segmenter, including the
// encode->segment round-trip property.
#include <gtest/gtest.h>

#include "mpeg/encoder.hpp"
#include "mpeg/segmenter.hpp"

namespace nistream::mpeg {
namespace {

TEST(Gop, ClassicPatternIbbp) {
  GopPattern gop{.n = 12, .m = 3};
  EXPECT_EQ(gop.to_string(), "IBBPBBPBBPBB");
  EXPECT_EQ(gop.type_of(0), FrameType::kI);
  EXPECT_EQ(gop.type_of(3), FrameType::kP);
  EXPECT_EQ(gop.type_of(4), FrameType::kB);
}

TEST(Gop, IppPattern) {
  GopPattern gop{.n = 6, .m = 1};  // no B frames
  EXPECT_EQ(gop.to_string(), "IPPPPP");
}

TEST(Encoder, FrameCountAndTypes) {
  SyntheticEncoder enc{{.gop = {.n = 12, .m = 3}, .seed = 7}};
  const MpegFile file = enc.generate(120);
  ASSERT_EQ(file.frames.size(), 120u);
  int i_count = 0, p_count = 0, b_count = 0;
  for (const auto& f : file.frames) {
    switch (f.type) {
      case FrameType::kI: ++i_count; break;
      case FrameType::kP: ++p_count; break;
      case FrameType::kB: ++b_count; break;
    }
  }
  EXPECT_EQ(i_count, 10);  // one per GOP
  EXPECT_EQ(p_count, 30);  // three per GOP
  EXPECT_EQ(b_count, 80);  // eight per GOP
}

TEST(Encoder, SizeOrderingIpb) {
  SyntheticEncoder enc{{.seed = 11}};
  const MpegFile file = enc.generate(600);
  double i_sum = 0, p_sum = 0, b_sum = 0;
  int i_n = 0, p_n = 0, b_n = 0;
  for (const auto& f : file.frames) {
    switch (f.type) {
      case FrameType::kI: i_sum += f.bytes; ++i_n; break;
      case FrameType::kP: p_sum += f.bytes; ++p_n; break;
      case FrameType::kB: b_sum += f.bytes; ++b_n; break;
    }
  }
  EXPECT_GT(i_sum / i_n, 1.5 * p_sum / p_n);
  EXPECT_GT(p_sum / p_n, 1.5 * b_sum / b_n);
}

TEST(Encoder, BitrateInRealisticRange) {
  SyntheticEncoder enc{{.seed = 3}};
  const MpegFile file = enc.generate(300);
  // Defaults model a ~1.3 Mbit/s MPEG-1 stream.
  EXPECT_GT(file.bitrate_bps(), 0.8e6);
  EXPECT_LT(file.bitrate_bps(), 2.0e6);
}

TEST(Encoder, DeterministicPerSeed) {
  SyntheticEncoder a{{.seed = 42}}, b{{.seed = 42}}, c{{.seed = 43}};
  const auto fa = a.generate(50), fb = b.generate(50), fc = c.generate(50);
  EXPECT_EQ(fa.bitstream, fb.bitstream);
  EXPECT_NE(fa.bitstream, fc.bitstream);
}

TEST(Encoder, PtsAdvancesAtFps) {
  SyntheticEncoder enc{{.fps = 30.0, .seed = 1}};
  const auto file = enc.generate(61);
  EXPECT_DOUBLE_EQ(file.frames[0].pts_seconds, 0.0);
  EXPECT_DOUBLE_EQ(file.frames[30].pts_seconds, 1.0);
  EXPECT_DOUBLE_EQ(file.frames[60].pts_seconds, 2.0);
}

TEST(Segmenter, FindStartCode) {
  const std::vector<std::uint8_t> data{0xFF, 0x00, 0x00, 0x01, 0xB3, 0x10};
  const auto at = Segmenter::find_start_code(data, 0);
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(*at, 1u);
  EXPECT_FALSE(Segmenter::find_start_code(data, 2).has_value());
}

TEST(Segmenter, EmptyAndTinyInputs) {
  EXPECT_TRUE(Segmenter::segment({}).empty());
  const std::vector<std::uint8_t> tiny{0x00, 0x00};
  EXPECT_TRUE(Segmenter::segment(tiny).empty());
}

// The paper's workflow: encode a file, segment it, and get back exactly the
// frames that were encoded — types, sizes and order.
TEST(SegmenterProperty, RoundTripMatchesEncoder) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    SyntheticEncoder enc{{.gop = {.n = 12, .m = 3}, .seed = seed}};
    const MpegFile file = enc.generate(150);
    const auto segments = Segmenter::segment(file.bitstream);
    ASSERT_EQ(segments.size(), file.frames.size()) << "seed " << seed;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      EXPECT_EQ(segments[i].type, file.frames[i].type) << "frame " << i;
      EXPECT_EQ(segments[i].bytes, file.frames[i].bytes) << "frame " << i;
    }
    // Segments tile the stream except at GOP boundaries, where the 8-byte
    // GOP header sits between the previous picture and the next.
    for (std::size_t i = 1; i < segments.size(); ++i) {
      const auto prev_end = segments[i - 1].offset + segments[i - 1].bytes;
      if (i % 12 == 0) {
        EXPECT_EQ(segments[i].offset, prev_end + 8) << "frame " << i;
      } else {
        EXPECT_EQ(segments[i].offset, prev_end) << "frame " << i;
      }
    }
  }
}

TEST(Segmenter, TemporalReferenceDecoded) {
  SyntheticEncoder enc{{.gop = {.n = 12, .m = 3}, .seed = 9}};
  const MpegFile file = enc.generate(24);
  const auto segments = Segmenter::segment(file.bitstream);
  ASSERT_EQ(segments.size(), 24u);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].temporal_ref, i % 12) << "frame " << i;
  }
}

TEST(Segmenter, TruncatedStreamYieldsCompleteFramesOnly) {
  SyntheticEncoder enc{{.seed = 5}};
  const MpegFile file = enc.generate(20);
  // Cut the stream in the middle of the last picture.
  std::vector<std::uint8_t> cut{file.bitstream.begin(),
                                file.bitstream.end() - 100};
  const auto segments = Segmenter::segment(cut);
  // 19 complete frames plus the truncated 20th (delimited by end of data).
  EXPECT_GE(segments.size(), 19u);
  EXPECT_LE(segments.size(), 20u);
  for (std::size_t i = 0; i + 1 < 19; ++i) {
    EXPECT_EQ(segments[i].bytes, file.frames[i].bytes);
  }
}

TEST(Segmenter, GarbageInputProducesNothing) {
  std::vector<std::uint8_t> garbage(10000, 0xAA);
  EXPECT_TRUE(Segmenter::segment(garbage).empty());
}

TEST(MpegFile, Aggregates) {
  SyntheticEncoder enc{{.seed = 2}};
  const auto file = enc.generate(100);
  EXPECT_EQ(file.total_frame_bytes(),
            static_cast<std::uint64_t>(file.mean_frame_bytes() * 100 + 0.5));
  EXPECT_GT(file.total_frame_bytes(), 0u);
}

}  // namespace
}  // namespace nistream::mpeg
