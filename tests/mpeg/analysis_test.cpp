// Tests for the MPEG stream analyzer and the smoothing-buffer simulation.
#include "mpeg/analysis.hpp"

#include <gtest/gtest.h>

#include "mpeg/encoder.hpp"

namespace nistream::mpeg {
namespace {

TEST(Analysis, SyntheticStreamProfile) {
  SyntheticEncoder enc{{.gop = {.n = 12, .m = 3}, .seed = 17}};
  const auto file = enc.generate(240);
  const auto a = analyze(file.frames, file.fps);
  EXPECT_EQ(a.frames, 240u);
  EXPECT_TRUE(a.gop_structure_valid);
  EXPECT_EQ(a.detected_gop_length, 12);
  EXPECT_EQ(a.of(FrameType::kI).count, 20u);
  EXPECT_EQ(a.of(FrameType::kP).count, 60u);
  EXPECT_EQ(a.of(FrameType::kB).count, 160u);
  // Size ordering I > P > B holds in the means.
  EXPECT_GT(a.of(FrameType::kI).mean_bytes(), a.of(FrameType::kP).mean_bytes());
  EXPECT_GT(a.of(FrameType::kP).mean_bytes(), a.of(FrameType::kB).mean_bytes());
  EXPECT_NEAR(a.mean_bitrate_bps, file.bitrate_bps(), 1.0);
  // The peak 1-second window exceeds the mean (I-frame bursts).
  EXPECT_GT(a.peak_window_bitrate_bps, a.mean_bitrate_bps);
}

TEST(Analysis, IrregularGopDetected) {
  std::vector<FrameInfo> frames;
  for (int i = 0; i < 30; ++i) {
    frames.push_back(FrameInfo{
        .type = (i == 0 || i == 10 || i == 25) ? FrameType::kI : FrameType::kP,
        .bytes = 1000,
        .display_index = static_cast<std::uint32_t>(i)});
  }
  const auto a = analyze(frames, 30.0);
  EXPECT_FALSE(a.gop_structure_valid);  // 10 vs 15 spacing
  EXPECT_EQ(a.detected_gop_length, 0);
}

TEST(Analysis, MissingLeadingIFrameInvalid) {
  std::vector<FrameInfo> frames;
  for (int i = 0; i < 24; ++i) {
    frames.push_back(FrameInfo{
        .type = (i % 12 == 5) ? FrameType::kI : FrameType::kP, .bytes = 500});
  }
  EXPECT_FALSE(analyze(frames, 30.0).gop_structure_valid);
}

TEST(Analysis, EmptyStream) {
  const auto a = analyze({}, 30.0);
  EXPECT_EQ(a.frames, 0u);
  EXPECT_EQ(a.mean_bitrate_bps, 0.0);
  EXPECT_FALSE(a.gop_structure_valid);
}

TEST(BufferSim, ConstantStreamAtMatchedRateNeedsOneFrame) {
  std::vector<FrameInfo> frames(100, FrameInfo{.type = FrameType::kP,
                                               .bytes = 1000});
  // Drain exactly at the arrival rate: 1000 B/frame at 30 fps = 240 kbps.
  const auto r = simulate_smoothing_buffer(frames, 30.0, 240e3);
  EXPECT_EQ(r.peak_occupancy_bytes, 1000u);
  EXPECT_FALSE(r.underrun);
}

TEST(BufferSim, BurstyStreamNeedsBuffer) {
  SyntheticEncoder enc{{.seed = 23}};
  const auto file = enc.generate(300);
  const auto a = analyze(file.frames, file.fps);
  const auto r =
      simulate_smoothing_buffer(file.frames, file.fps, a.mean_bitrate_bps);
  // At the mean rate the I-frame bursts require several frames of buffering.
  EXPECT_GT(r.peak_occupancy_bytes, 2 * a.of(FrameType::kI).mean_bytes());
}

TEST(BufferSim, OverdrainUnderruns) {
  std::vector<FrameInfo> frames(50, FrameInfo{.type = FrameType::kP,
                                              .bytes = 1000});
  const auto r = simulate_smoothing_buffer(frames, 30.0, 10 * 240e3);
  EXPECT_TRUE(r.underrun);
}

TEST(BufferSim, HigherDrainRateNeedsSmallerBuffer) {
  SyntheticEncoder enc{{.seed = 29}};
  const auto file = enc.generate(300);
  const auto a = analyze(file.frames, file.fps);
  const auto tight =
      simulate_smoothing_buffer(file.frames, file.fps, a.mean_bitrate_bps);
  const auto roomy = simulate_smoothing_buffer(file.frames, file.fps,
                                               1.5 * a.mean_bitrate_bps);
  EXPECT_LT(roomy.peak_occupancy_bytes, tight.peak_occupancy_bytes);
}

}  // namespace
}  // namespace nistream::mpeg
