// Tests for the TcpLite reliable transport over clean and lossy segments,
// plus the Ethernet loss model it exists for.
#include "net/tcplite.hpp"

#include <gtest/gtest.h>

namespace nistream::net {
namespace {

using sim::Time;

hw::EthernetParams lossy(double rate, std::uint64_t seed = 7) {
  hw::EthernetParams p;
  p.loss_rate = rate;
  p.loss_seed = seed;
  return p;
}

struct Link {
  sim::Engine eng;
  hw::EthernetSwitch ether;
  std::vector<std::uint64_t> delivered;
  TcpLiteReceiver rx;
  TcpLiteSender tx;

  explicit Link(const hw::EthernetParams& params = {},
                TcpLiteSender::Params sp = {})
      : ether{eng, params},
        rx{eng, ether, Time::us(50),
           [this](const Packet& p, Time) { delivered.push_back(p.seq); }},
        tx{eng, ether, Time::us(50), rx.port(), sp} {}
};

TEST(EthernetLoss, DropsConfiguredFraction) {
  sim::Engine eng;
  hw::EthernetSwitch sw{eng, lossy(0.2)};
  int got = 0;
  const int rx = sw.add_port([&](const hw::EthFrame&) { ++got; });
  const int tx = sw.add_port([](const hw::EthFrame&) {});
  for (int i = 0; i < 2000; ++i) sw.send(tx, rx, hw::EthFrame{.bytes = 100});
  eng.run();
  EXPECT_NEAR(got, 1600, 60);
  EXPECT_NEAR(static_cast<double>(sw.frames_lost()), 400, 60);
}

TEST(EthernetLoss, ZeroRateLosesNothing) {
  sim::Engine eng;
  hw::EthernetSwitch sw{eng};
  int got = 0;
  const int rx = sw.add_port([&](const hw::EthFrame&) { ++got; });
  const int tx = sw.add_port([](const hw::EthFrame&) {});
  for (int i = 0; i < 500; ++i) sw.send(tx, rx, hw::EthFrame{.bytes = 100});
  eng.run();
  EXPECT_EQ(got, 500);
  EXPECT_EQ(sw.frames_lost(), 0u);
}

TEST(TcpLite, CleanLinkDeliversInOrderWithoutRetransmit) {
  Link link;
  for (std::uint64_t i = 0; i < 50; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 1000});
  }
  link.eng.run_until(Time::sec(2));
  ASSERT_EQ(link.delivered.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(link.delivered[i], i);
  EXPECT_EQ(link.tx.retransmissions(), 0u);
  EXPECT_TRUE(link.tx.idle());
  EXPECT_EQ(link.tx.acked(), 50u);
}

TEST(TcpLite, SurvivesTenPercentLoss) {
  Link link{lossy(0.10)};
  constexpr std::uint64_t kCount = 300;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 1000});
  }
  link.eng.run_until(Time::sec(30));
  ASSERT_EQ(link.delivered.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(link.delivered[i], i) << "out of order at " << i;
  }
  EXPECT_GT(link.tx.retransmissions(), 0u);  // losses really happened
  EXPECT_GT(link.ether.frames_lost(), 0u);
}

TEST(TcpLite, SurvivesHeavyLoss) {
  Link link{lossy(0.35, 11), TcpLiteSender::Params{.window = 4,
                                                   .rto = Time::ms(10)}};
  constexpr std::uint64_t kCount = 100;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 500});
  }
  link.eng.run_until(Time::sec(60));
  ASSERT_EQ(link.delivered.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_EQ(link.delivered[i], i);
}

TEST(TcpLite, NoDuplicateDelivery) {
  // Duplicates arise when an ACK is lost and the sender retransmits data the
  // receiver already has; the receiver must re-ACK but not re-deliver.
  Link link{lossy(0.25, 3)};
  for (std::uint64_t i = 0; i < 120; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 800});
  }
  link.eng.run_until(Time::sec(60));
  ASSERT_EQ(link.delivered.size(), 120u);  // exactly once each
}

TEST(TcpLite, WindowLimitsInflight) {
  // With a window of 2 and no ACKs (receiver port detached via 100% loss),
  // at most 2 segments ever hit the wire per RTO.
  Link link{lossy(1.0, 5), TcpLiteSender::Params{.window = 2,
                                                 .rto = Time::ms(50)}};
  for (std::uint64_t i = 0; i < 10; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 100});
  }
  link.eng.run_until(Time::ms(40));  // before the first timeout
  // Nothing delivered, nothing acked, and only window-many transmissions.
  EXPECT_TRUE(link.delivered.empty());
  EXPECT_EQ(link.tx.acked(), 0u);
  EXPECT_EQ(link.ether.frames_lost(), 2u);  // exactly the window
}

TEST(TcpLite, ThroughputReasonableOnCleanLink) {
  Link link{hw::EthernetParams{}, TcpLiteSender::Params{.window = 16}};
  constexpr std::uint64_t kCount = 500;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 1400});
  }
  const Time done = link.eng.run();
  ASSERT_EQ(link.delivered.size(), kCount);
  const double mbps = kCount * 1400 * 8.0 / done.to_sec() / 1e6;
  // Windowed but ACK-paced: should still fill a good part of 100 Mbps.
  EXPECT_GT(mbps, 30.0);
}

}  // namespace
}  // namespace nistream::net
