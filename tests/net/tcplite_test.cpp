// Tests for the TcpLite reliable transport over clean and lossy segments,
// plus the Ethernet loss model it exists for.
#include "net/tcplite.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace nistream::net {
namespace {

using sim::Time;

hw::EthernetParams lossy(double rate, std::uint64_t seed = 7) {
  hw::EthernetParams p;
  p.loss_rate = rate;
  p.loss_seed = seed;
  return p;
}

struct Link {
  sim::Engine eng;
  hw::EthernetSwitch ether;
  std::vector<std::uint64_t> delivered;
  TcpLiteReceiver rx;
  TcpLiteSender tx;

  explicit Link(const hw::EthernetParams& params = {},
                TcpLiteSender::Params sp = {})
      : ether{eng, params},
        rx{eng, ether, Time::us(50),
           [this](const Packet& p, Time) { delivered.push_back(p.seq); }},
        tx{eng, ether, Time::us(50), rx.port(), sp} {}
};

TEST(EthernetLoss, DropsConfiguredFraction) {
  sim::Engine eng;
  hw::EthernetSwitch sw{eng, lossy(0.2)};
  int got = 0;
  const int rx = sw.add_port([&](const hw::EthFrame&) { ++got; });
  const int tx = sw.add_port([](const hw::EthFrame&) {});
  for (int i = 0; i < 2000; ++i) sw.send(tx, rx, hw::EthFrame{.bytes = 100});
  eng.run();
  EXPECT_NEAR(got, 1600, 60);
  EXPECT_NEAR(static_cast<double>(sw.frames_lost()), 400, 60);
}

TEST(EthernetLoss, ZeroRateLosesNothing) {
  sim::Engine eng;
  hw::EthernetSwitch sw{eng};
  int got = 0;
  const int rx = sw.add_port([&](const hw::EthFrame&) { ++got; });
  const int tx = sw.add_port([](const hw::EthFrame&) {});
  for (int i = 0; i < 500; ++i) sw.send(tx, rx, hw::EthFrame{.bytes = 100});
  eng.run();
  EXPECT_EQ(got, 500);
  EXPECT_EQ(sw.frames_lost(), 0u);
}

TEST(TcpLite, CleanLinkDeliversInOrderWithoutRetransmit) {
  Link link;
  for (std::uint64_t i = 0; i < 50; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 1000});
  }
  link.eng.run_until(Time::sec(2));
  ASSERT_EQ(link.delivered.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(link.delivered[i], i);
  EXPECT_EQ(link.tx.retransmissions(), 0u);
  EXPECT_TRUE(link.tx.idle());
  EXPECT_EQ(link.tx.acked(), 50u);
}

TEST(TcpLite, SurvivesTenPercentLoss) {
  Link link{lossy(0.10)};
  constexpr std::uint64_t kCount = 300;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 1000});
  }
  link.eng.run_until(Time::sec(30));
  ASSERT_EQ(link.delivered.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(link.delivered[i], i) << "out of order at " << i;
  }
  EXPECT_GT(link.tx.retransmissions(), 0u);  // losses really happened
  EXPECT_GT(link.ether.frames_lost(), 0u);
}

TEST(TcpLite, SurvivesHeavyLoss) {
  Link link{lossy(0.35, 11), TcpLiteSender::Params{.window = 4,
                                                   .rto = Time::ms(10)}};
  constexpr std::uint64_t kCount = 100;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 500});
  }
  link.eng.run_until(Time::sec(60));
  ASSERT_EQ(link.delivered.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_EQ(link.delivered[i], i);
}

TEST(TcpLite, NoDuplicateDelivery) {
  // Duplicates arise when an ACK is lost and the sender retransmits data the
  // receiver already has; the receiver must re-ACK but not re-deliver.
  Link link{lossy(0.25, 3)};
  for (std::uint64_t i = 0; i < 120; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 800});
  }
  link.eng.run_until(Time::sec(60));
  ASSERT_EQ(link.delivered.size(), 120u);  // exactly once each
}

TEST(TcpLite, WindowLimitsInflight) {
  // With a window of 2 and no ACKs (receiver port detached via 100% loss),
  // at most 2 segments ever hit the wire per RTO.
  Link link{lossy(1.0, 5), TcpLiteSender::Params{.window = 2,
                                                 .rto = Time::ms(50)}};
  for (std::uint64_t i = 0; i < 10; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 100});
  }
  link.eng.run_until(Time::ms(40));  // before the first timeout
  // Nothing delivered, nothing acked, and only window-many transmissions.
  EXPECT_TRUE(link.delivered.empty());
  EXPECT_EQ(link.tx.acked(), 0u);
  EXPECT_EQ(link.ether.frames_lost(), 2u);  // exactly the window
}

TEST(TcpLiteTeardown, FinDeliveredInOrderClosesPeer) {
  Link link;
  std::vector<int> closed_peers;
  link.rx.set_on_peer_close(
      [&](int peer, Time) { closed_peers.push_back(peer); });
  for (std::uint64_t i = 0; i < 5; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 1000});
  }
  EXPECT_TRUE(link.tx.close());
  EXPECT_FALSE(link.tx.close());  // idempotent
  link.eng.run_until(Time::sec(2));
  ASSERT_EQ(link.delivered.size(), 5u);  // FIN itself is not a delivery
  EXPECT_TRUE(link.tx.fin_acked());
  EXPECT_TRUE(link.tx.closing());
  EXPECT_FALSE(link.tx.aborted());
  EXPECT_EQ(link.tx.acked(), 6u);  // 5 data + 1 FIN sequence
  EXPECT_TRUE(link.rx.peer_closed(link.tx.port()));
  ASSERT_EQ(closed_peers.size(), 1u);
  EXPECT_EQ(closed_peers[0], link.tx.port());
}

TEST(TcpLiteTeardown, OutOfOrderFinDoesNotClose) {
  // Hand-crafted segments from a raw port: a FIN racing ahead of missing
  // data must be discarded, not acted on. The close only happens once the
  // in-order prefix (including the retransmitted FIN) is replayed.
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  std::vector<std::uint64_t> delivered;
  TcpLiteReceiver rx{eng, ether, Time::us(50),
                     [&](const Packet& p, Time) { delivered.push_back(p.seq); }};
  int closes = 0;
  rx.set_on_peer_close([&](int, Time) { ++closes; });
  const int raw = ether.add_port([](const hw::EthFrame&) {});
  auto inject = [&](std::uint64_t seq, bool fin) {
    auto seg = std::make_shared<TcpLiteSegment>();
    seg->seq = seq;
    seg->is_fin = fin;
    if (!fin) seg->payload = Packet{.seq = seq, .bytes = 500};
    ether.send(raw, rx.port(),
               hw::EthFrame{.bytes = fin ? 40u : 540u, .payload = seg});
  };
  // Out-of-order arrival: data seq 1, then FIN seq 2, with seq 0 missing.
  inject(1, false);
  inject(2, true);
  eng.run_until(Time::ms(10));
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(closes, 0);
  EXPECT_FALSE(rx.peer_closed(raw));
  EXPECT_EQ(rx.discarded_out_of_order(), 2u);
  // Go-back-N retransmit replays the whole prefix in order.
  inject(0, false);
  inject(1, false);
  inject(2, true);
  eng.run_until(Time::ms(20));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], 0u);
  EXPECT_EQ(delivered[1], 1u);
  EXPECT_EQ(closes, 1);
  EXPECT_TRUE(rx.peer_closed(raw));
}

TEST(TcpLiteTeardown, RetransmittedFinAfterCloseIsReackedOnce) {
  // A duplicate FIN (the peer's retransmit after its ACK was lost) must be
  // re-ACKed so the sender can finish, but must not re-fire the close.
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  TcpLiteReceiver rx{eng, ether, Time::us(50),
                     TcpLiteReceiver::Deliver{[](const Packet&, Time) {}}};
  int closes = 0;
  rx.set_on_peer_close([&](int, Time) { ++closes; });
  std::vector<std::uint64_t> acks;
  const int raw = ether.add_port([&](const hw::EthFrame& f) {
    auto seg = std::static_pointer_cast<TcpLiteSegment>(f.payload);
    if (seg && seg->is_ack) acks.push_back(seg->seq);
  });
  auto inject_fin = [&] {
    auto seg = std::make_shared<TcpLiteSegment>();
    seg->seq = 0;
    seg->is_fin = true;
    ether.send(raw, rx.port(), hw::EthFrame{.bytes = 40, .payload = seg});
  };
  inject_fin();
  inject_fin();  // duplicate
  eng.run_until(Time::ms(10));
  EXPECT_EQ(closes, 1);
  EXPECT_EQ(rx.peers_closed(), 1u);
  ASSERT_EQ(acks.size(), 2u);  // both FINs ACKed...
  EXPECT_EQ(acks[0], 1u);
  EXPECT_EQ(acks[1], 1u);  // ...with the same cumulative next-expected
}

TEST(TcpLiteTeardown, HalfOpenOneDirectionStillFlows) {
  // Each direction is its own sender/receiver pair; closing one must not
  // disturb the other. This is the half-open state the session reaper sees
  // when a client FINs its control channel mid-stream.
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  std::vector<std::uint64_t> fwd, back;
  TcpLiteReceiver rx_fwd{eng, ether, Time::us(50),
                         [&](const Packet& p, Time) { fwd.push_back(p.seq); }};
  TcpLiteReceiver rx_back{eng, ether, Time::us(50),
                          [&](const Packet& p, Time) { back.push_back(p.seq); }};
  TcpLiteSender tx_fwd{eng, ether, Time::us(50), rx_fwd.port()};
  TcpLiteSender tx_back{eng, ether, Time::us(50), rx_back.port()};
  tx_fwd.send(Packet{.seq = 0, .bytes = 400});
  tx_fwd.close();
  eng.run_until(Time::ms(50));
  ASSERT_TRUE(tx_fwd.fin_acked());
  ASSERT_TRUE(rx_fwd.peer_closed(tx_fwd.port()));
  // The reverse direction keeps flowing after the forward close.
  for (std::uint64_t i = 0; i < 20; ++i) {
    tx_back.send(Packet{.seq = i, .bytes = 900});
  }
  eng.run_until(Time::sec(1));
  ASSERT_EQ(back.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(back[i], i);
  EXPECT_FALSE(tx_back.closing());
  EXPECT_EQ(fwd.size(), 1u);
}

TEST(TcpLiteTeardown, SenderGivesUpAfterMaxRetxRounds) {
  // Against a vanished peer (100% loss) a bounded sender must stop instead
  // of pinning a retransmission timer forever.
  Link link{lossy(1.0, 9),
            TcpLiteSender::Params{.window = 4, .rto = Time::ms(10),
                                  .max_retx_rounds = 3}};
  std::vector<Time> aborts;
  link.tx.set_on_abort([&](Time at) { aborts.push_back(at); });
  link.tx.send(Packet{.seq = 0, .bytes = 300});
  link.tx.send(Packet{.seq = 1, .bytes = 300});
  link.tx.close();
  const Time done = link.eng.run();  // terminates: the abort stops the timer
  EXPECT_TRUE(link.tx.aborted());
  EXPECT_FALSE(link.tx.fin_acked());
  EXPECT_TRUE(link.tx.idle());  // queue dropped
  EXPECT_EQ(link.tx.acked(), 0u);
  EXPECT_EQ(link.tx.retransmissions(), 3u * 3u);  // 3 rounds x 3 segments
  ASSERT_EQ(aborts.size(), 1u);
  // 3 allowed rounds + the round that trips the bound, 10ms RTO each.
  EXPECT_GE(done, Time::ms(40));
  EXPECT_TRUE(link.delivered.empty());
}

TEST(TcpLiteDemux, TwoSendersOnePortKeepSeparateSequenceSpaces) {
  // Two clients talking to one control port: each needs its own in-order
  // sequence space. (A single shared next-expected counter deadlocks both —
  // each peer's segments look permanently out-of-order to the other's
  // cursor.)
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  std::map<int, std::vector<std::uint64_t>> by_peer;
  TcpLiteReceiver rx{eng, ether, Time::us(50),
                     [&](const Packet& p, int peer, Time) {
                       by_peer[peer].push_back(p.seq);
                     }};
  TcpLiteSender a{eng, ether, Time::us(50), rx.port()};
  TcpLiteSender b{eng, ether, Time::us(50), rx.port()};
  for (std::uint64_t i = 0; i < 30; ++i) {
    a.send(Packet{.seq = 100 + i, .bytes = 700});
    b.send(Packet{.seq = 200 + i, .bytes = 700});
  }
  eng.run_until(Time::sec(5));
  EXPECT_EQ(rx.peer_count(), 2u);
  EXPECT_EQ(rx.delivered(), 60u);
  ASSERT_EQ(by_peer[a.port()].size(), 30u);
  ASSERT_EQ(by_peer[b.port()].size(), 30u);
  for (std::uint64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(by_peer[a.port()][i], 100 + i);
    EXPECT_EQ(by_peer[b.port()][i], 200 + i);
  }
  EXPECT_TRUE(a.idle());
  EXPECT_TRUE(b.idle());
}

TEST(TcpLite, ThroughputReasonableOnCleanLink) {
  Link link{hw::EthernetParams{}, TcpLiteSender::Params{.window = 16}};
  constexpr std::uint64_t kCount = 500;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    link.tx.send(Packet{.seq = i, .bytes = 1400});
  }
  const Time done = link.eng.run();
  ASSERT_EQ(link.delivered.size(), kCount);
  const double mbps = kCount * 1400 * 8.0 / done.to_sec() / 1e6;
  // Windowed but ACK-paced: should still fill a good part of 100 Mbps.
  EXPECT_GT(mbps, 30.0);
}

}  // namespace
}  // namespace nistream::net
