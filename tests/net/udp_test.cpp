// Tests for the UDP endpoint layer over the Ethernet model.
#include "net/udp.hpp"

#include <gtest/gtest.h>

namespace nistream::net {
namespace {

using sim::Time;

struct Fixture {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  std::vector<std::pair<Packet, Time>> received;
  UdpEndpoint rx{eng, ether, Time::us(100),
                 [this](const Packet& p, Time at) { received.emplace_back(p, at); }};
  UdpEndpoint tx{eng, ether, Time::us(100), UdpEndpoint::Receiver{}};
};

TEST(Udp, DeliversPacketWithMetadata) {
  Fixture f;
  Packet p{.stream_id = 3, .seq = 9, .bytes = 1000,
           .frame_type = mpeg::FrameType::kI, .enqueued_at = Time::ms(1),
           .dispatched_at = Time::ms(2)};
  f.tx.send(f.rx.port(), p);
  f.eng.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].first.stream_id, 3u);
  EXPECT_EQ(f.received[0].first.seq, 9u);
  EXPECT_EQ(f.received[0].first.enqueued_at, Time::ms(1));
}

TEST(Udp, EndToEndLatencyIsStacksPlusWire) {
  Fixture f;
  f.tx.send(f.rx.port(), Packet{.bytes = 1000});
  f.eng.run();
  ASSERT_EQ(f.received.size(), 1u);
  // 2 x 100us stacks + 2 x serialization(1028B) + switch latency.
  const double wire2 = 2 * f.ether.wire_time(1000 + UdpEndpoint::kUdpIpHeaderBytes).to_us();
  const double expect = 200.0 + wire2 + f.ether.params().switch_latency.to_us();
  EXPECT_NEAR(f.received[0].second.to_us(), expect, 0.5);
}

TEST(Udp, NiStackCalibration) {
  // Two NI-class stacks + wire for a 1000-byte frame ~ 1.2 ms (Table 4).
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  Time got = Time::never();
  UdpEndpoint rx{eng, ether, kNiStackCost,
                 [&](const Packet&, Time at) { got = at; }};
  UdpEndpoint tx{eng, ether, kNiStackCost, UdpEndpoint::Receiver{}};
  tx.send(rx.port(), Packet{.bytes = 1000});
  eng.run();
  EXPECT_NEAR(got.to_ms(), 1.2, 0.12);
}

TEST(Udp, CountersTrack) {
  Fixture f;
  for (int i = 0; i < 5; ++i) {
    f.tx.send(f.rx.port(), Packet{.seq = static_cast<std::uint64_t>(i),
                                  .bytes = 500});
  }
  f.eng.run();
  EXPECT_EQ(f.tx.packets_sent(), 5u);
  EXPECT_EQ(f.tx.bytes_sent(), 2500u);
  EXPECT_EQ(f.rx.packets_received(), 5u);
  EXPECT_EQ(f.received.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(f.received[i].first.seq, i);  // in-order delivery
  }
}

TEST(Udp, ForeignFramesIgnored) {
  Fixture f;
  // A raw Ethernet frame without a Packet payload must not crash or count.
  const int client = f.ether.add_port([](const hw::EthFrame&) {});
  (void)client;
  f.ether.send(f.tx.port(), f.rx.port(), hw::EthFrame{.bytes = 64});
  f.eng.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.rx.packets_received(), 0u);
}

}  // namespace
}  // namespace nistream::net
