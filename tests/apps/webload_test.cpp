// Tests for the web-server pool model and httperf load generator.
#include "apps/webload.hpp"

#include <gtest/gtest.h>

namespace nistream::apps {
namespace {

using sim::Time;

TEST(WebServer, PoolStartsAtInitialSize) {
  sim::Engine eng;
  hostos::HostMachine host{eng, 2};
  WebServerModel web{host, {}};
  EXPECT_EQ(web.pool_size(), 5);  // Apache StartServers
}

TEST(WebServer, ServesSubmittedRequests) {
  sim::Engine eng;
  hostos::HostMachine host{eng, 2};
  WebServerModel web{host, {}};
  for (int i = 0; i < 20; ++i) web.submit_request();
  eng.run();
  EXPECT_EQ(web.requests_arrived(), 20u);
  EXPECT_EQ(web.requests_served(), 20u);
  EXPECT_EQ(web.backlog(), 0u);
}

TEST(WebServer, PoolGrowsUnderBacklogToMax) {
  sim::Engine eng;
  hostos::HostMachine host{eng, 1};
  WebServerModel web{host, {}};
  for (int i = 0; i < 200; ++i) web.submit_request();
  eng.run();
  EXPECT_EQ(web.pool_size(), 10);  // Apache MaxClients cap
  EXPECT_EQ(web.requests_served(), 200u);
}

TEST(Httperf, HitsTargetUtilization) {
  for (const double target : {0.3, 0.6}) {
    sim::Engine eng;
    hostos::HostMachine host{eng, 2, hw::Calibration{}, Time::ms(500)};
    WebServerModel web{host, {.seed = 42}};
    HttperfLoad load{web, host,
                     HttperfLoad::Params{.target_utilization = target,
                                         .cpus = 2,
                                         .stop = Time::sec(60),
                                         .seed = 43}};
    eng.run_until(Time::sec(60));
    const auto util = host.perfmeter(Time::sec(60));
    const double avg = util.mean_between(Time::zero(), Time::sec(60));
    EXPECT_NEAR(avg, target * 100.0, 8.0) << "target " << target;
  }
}

TEST(Httperf, ProfileShapesTheLoad) {
  sim::Engine eng;
  hostos::HostMachine host{eng, 2, hw::Calibration{}, Time::sec(1)};
  WebServerModel web{host, {.seed = 7}};
  HttperfLoad load{web, host,
                   HttperfLoad::Params{.target_utilization = 0.6,
                                       .cpus = 2,
                                       .stop = Time::sec(100),
                                       .seed = 8,
                                       .profile = HttperfLoad::figure6_heavy()}};
  eng.run_until(Time::sec(100));
  const auto util = host.perfmeter(Time::sec(100));
  const double early = util.mean_between(Time::sec(1), Time::sec(9));
  const double plateau = util.mean_between(Time::sec(45), Time::sec(75));
  EXPECT_GT(plateau, 80.0);          // the Figure 6 saturation plateau
  EXPECT_LT(early, plateau * 0.6);   // ramp-up is visibly lighter
}

TEST(Httperf, MultiplierLookup) {
  sim::Engine eng;
  hostos::HostMachine host{eng, 1};
  WebServerModel web{host, {}};
  HttperfLoad load{web, host,
                   HttperfLoad::Params{.target_utilization = 0.5,
                                       .cpus = 1,
                                       .stop = Time::sec(100),
                                       .profile = {{0, 1.0}, {50, 2.0}}}};
  EXPECT_DOUBLE_EQ(load.multiplier_at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(load.multiplier_at(50.0), 2.0);
  EXPECT_DOUBLE_EQ(load.multiplier_at(99.0), 2.0);
}

}  // namespace
}  // namespace nistream::apps
