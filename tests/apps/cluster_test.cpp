// Tests for the scalable server architectures: multi-NI nodes and clusters.
#include "apps/cluster.hpp"

#include <gtest/gtest.h>

#include "apps/client.hpp"

namespace nistream::apps {
namespace {

using sim::Time;

dwcs::StreamParams media_stream() {
  return {.tolerance = {2, 8}, .period = Time::ms(33.333), .lossy = true};
}

TEST(ServerNode, PlacesStreamsAcrossNisEvenly) {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  ServerNode node{"n0", eng, ether, /*scheduler_nis=*/4};
  MpegClient client{eng, ether};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(node.open_stream(media_stream(), 1000, client.port(),
                                 /*n_frames=*/10, 100 + static_cast<std::uint64_t>(i))
                    .has_value());
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(node.admission(i).admitted(), 25u) << "ni " << i;
  }
  EXPECT_EQ(node.streams_opened(), 100u);
  EXPECT_EQ(node.streams_rejected(), 0u);
}

TEST(ServerNode, RejectsWhenAllNisFull) {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  ServerNode node{"n0", eng, ether, 1};
  MpegClient client{eng, ether};
  int placed = 0;
  // CPU admission bound ~230 streams per NI at 30 fps; ask for far more.
  for (int i = 0; i < 400; ++i) {
    if (node.open_stream(media_stream(), 1000, client.port(), 5,
                         static_cast<std::uint64_t>(i))) {
      ++placed;
    }
  }
  EXPECT_NEAR(placed, 230, 5);
  EXPECT_EQ(node.streams_rejected(), 400u - static_cast<std::uint64_t>(placed));
}

TEST(ServerNode, AdmittedStreamsActuallyDeliver) {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  ServerNode node{"n0", eng, ether, 2};
  std::vector<std::unique_ptr<MpegClient>> clients;
  std::vector<StreamPlacement> placements;
  for (int i = 0; i < 20; ++i) {
    clients.push_back(std::make_unique<MpegClient>(eng, ether));
    const auto p = node.open_stream(media_stream(), 1000,
                                    clients.back()->port(), 30,
                                    static_cast<std::uint64_t>(500 + i));
    ASSERT_TRUE(p.has_value());
    placements.push_back(*p);
  }
  eng.run_until(Time::sec(3));
  for (std::size_t i = 0; i < clients.size(); ++i) {
    EXPECT_EQ(clients[i]->frames_received(placements[i].stream), 30u)
        << "stream " << i;
  }
}

TEST(Cluster, SpreadsLoadAcrossNodes) {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  MediaCluster cluster{eng, ether, /*nodes=*/3, /*nis_per_node=*/2};
  MpegClient client{eng, ether};
  for (int i = 0; i < 90; ++i) {
    ASSERT_TRUE(cluster.open_stream(media_stream(), 1000, client.port(), 5,
                                    static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(cluster.opened(), 90u);
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.node(n).streams_opened(), 30u) << "node " << n;
  }
}

TEST(Cluster, CapacityScalesLinearlyWithNodes) {
  const auto capacity = [](int nodes, int nis) {
    sim::Engine eng;
    hw::EthernetSwitch ether{eng};
    MediaCluster cluster{eng, ether, nodes, nis};
    MpegClient client{eng, ether};
    int placed = 0;
    for (int i = 0; i < 3000; ++i) {
      if (cluster.open_stream(media_stream(), 1000, client.port(), 1,
                              static_cast<std::uint64_t>(i))) {
        ++placed;
      } else {
        break;  // least-loaded placement: first rejection means all full
      }
    }
    return placed;
  };
  const int one = capacity(1, 1);
  EXPECT_NEAR(capacity(1, 2), 2 * one, 4);
  EXPECT_NEAR(capacity(2, 2), 4 * one, 8);
}

TEST(Cluster, FailoverToLessLoadedNode) {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  MediaCluster cluster{eng, ether, 2, 1};
  MpegClient client{eng, ether};
  // Fill node 0's single NI to the brim via the cluster API...
  int placed = 0;
  while (cluster.open_stream(media_stream(), 1000, client.port(), 1,
                             static_cast<std::uint64_t>(placed))) {
    ++placed;
  }
  // Both nodes filled before the first rejection, evenly.
  EXPECT_EQ(cluster.node(0).streams_opened(), cluster.node(1).streams_opened());
  EXPECT_EQ(cluster.rejected(), 1u);
}

}  // namespace
}  // namespace nistream::apps
