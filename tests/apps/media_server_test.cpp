// Integration tests for the server organizations and producers: host-based
// (Path A) and NI-based (Paths B and C) frame pipelines, end to end.
#include "apps/media_server.hpp"

#include <gtest/gtest.h>

#include "apps/client.hpp"
#include "apps/producer.hpp"
#include "hostos/filesystem.hpp"
#include "mpeg/encoder.hpp"

namespace nistream::apps {
namespace {

using sim::Time;

mpeg::MpegFile small_file(int frames, std::uint64_t seed) {
  mpeg::EncoderParams p;
  p.mean_i_bytes = 2000;
  p.mean_p_bytes = 1000;
  p.mean_b_bytes = 500;
  p.seed = seed;
  return mpeg::SyntheticEncoder{p}.generate(frames);
}

TEST(HostServer, PathAEndToEnd) {
  sim::Engine eng;
  hostos::HostMachine host{eng, 2};
  hw::EthernetSwitch ether{eng};
  hw::ScsiDisk disk{eng};
  hostos::UfsFilesystem fs{eng, disk};
  HostSchedulerServer server{host, ether};
  MpegClient client{eng, ether};

  const auto file = small_file(30, 1);
  const auto sid = server.service().create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(33), .lossy = true},
      client.port());
  hostos::Process& prod = host.spawn("producer");
  ProducerStats stats;
  host_file_producer(host, prod, fs, file, server.service(), stats,
                     {.stream = sid})
      .detach();
  eng.run_until(Time::sec(3));
  server.service().stop();

  EXPECT_TRUE(stats.finished);
  EXPECT_EQ(stats.frames_produced, 30u);
  EXPECT_EQ(client.frames_received(sid), 30u);
  EXPECT_EQ(client.total_bytes(), file.total_frame_bytes());
}

TEST(NiServer, PathCEndToEnd) {
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  NiSchedulerServer server{eng, bus, ether};
  MpegClient client{eng, ether};

  const auto file = small_file(30, 2);
  const auto sid = server.service().create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(33), .lossy = true},
      client.port());
  rtos::Task& task = server.kernel().spawn("tProd", 120);
  ProducerStats stats;
  ni_disk_producer(eng, server.board().disk(0), task, file, server.service(),
                   stats, {.stream = sid})
      .detach();
  eng.run_until(Time::sec(3));

  EXPECT_TRUE(stats.finished);
  EXPECT_EQ(client.frames_received(sid), 30u);
  // Path C: zero PCI traffic — the bus never saw a byte of frame data.
  EXPECT_EQ(bus.bytes_moved(), 0u);
}

TEST(NiServer, PathBCrossesPciOnce) {
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  NiSchedulerServer server{eng, bus, ether};
  // The producer board (disk-attached NI) is separate from the scheduler NI.
  hw::NicBoard producer_board{"producer-ni", eng, bus, ether,
                              [](const hw::EthFrame&) {}};
  rtos::WindKernel producer_kernel{eng, producer_board.cpu()};
  MpegClient client{eng, ether};

  const auto file = small_file(20, 3);
  const auto sid = server.service().create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(33), .lossy = true},
      client.port());
  rtos::Task& task = producer_kernel.spawn("tProd", 120);
  ProducerStats stats;
  ni_disk_producer(eng, producer_board.disk(0), task, file, server.service(),
                   stats, {.stream = sid, .cross_bus = &bus})
      .detach();
  eng.run_until(Time::sec(3));

  EXPECT_TRUE(stats.finished);
  EXPECT_EQ(client.frames_received(sid), 20u);
  // Path B: every frame crossed the PCI bus exactly once.
  EXPECT_EQ(bus.bytes_moved(), file.total_frame_bytes());
  EXPECT_EQ(bus.transfers(), 20u);
}

TEST(Producers, BackpressureRetriesInsteadOfDropping) {
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  dvcm::StreamService::Config cfg;
  cfg.scheduler.ring_capacity = 4;  // tiny ring forces retries
  NiSchedulerServer server{eng, bus, ether, cfg};
  MpegClient client{eng, ether};

  const auto file = small_file(25, 4);
  const auto sid = server.service().create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(5), .lossy = true},
      client.port());
  rtos::Task& task = server.kernel().spawn("tProd", 120);
  ProducerStats stats;
  ni_disk_producer(eng, server.board().disk(0), task, file, server.service(),
                   stats, {.stream = sid})
      .detach();
  eng.run_until(Time::sec(3));

  EXPECT_TRUE(stats.finished);
  EXPECT_GT(stats.retries, 0u);                 // it did hit the full ring
  EXPECT_EQ(client.frames_received(sid), 25u);  // yet nothing was lost
}

TEST(HostServer, PbindAffinityIsApplied) {
  sim::Engine eng;
  hostos::HostMachine host{eng, 2};
  hw::EthernetSwitch ether{eng};
  HostSchedulerServer server{host, ether, {}, {}, /*affinity=*/1};
  const auto sid = server.service().create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true}, 0);
  server.service().enqueue(sid, 1000, mpeg::FrameType::kP);
  eng.run_until(Time::ms(100));
  server.service().stop();
  // All scheduler CPU time landed on the bound CPU.
  EXPECT_GT(server.process().cpu_time(), Time::zero());
  EXPECT_EQ(host.scheduler().cpu_meter(0).total_busy(), Time::zero());
  EXPECT_GT(host.scheduler().cpu_meter(1).total_busy(), Time::zero());
}

}  // namespace
}  // namespace nistream::apps
