// Parameterized consistency matrix over the microbenchmark configuration
// space (arithmetic mode x d-cache x descriptor residency x stream count):
// the physical orderings the paper's Tables 1-3 rest on must hold at every
// point, not just the published corners.
#include <gtest/gtest.h>

#include "apps/experiments.hpp"

namespace nistream::apps {
namespace {

struct MatrixPoint {
  bool dcache;
  dwcs::DescriptorResidency residency;
  int n_streams;
};

class MicrobenchMatrix : public ::testing::TestWithParam<MatrixPoint> {
 protected:
  static MicrobenchResult run(const MatrixPoint& p, dwcs::ArithMode arith) {
    MicrobenchConfig c;
    c.arith = arith;
    c.dcache_enabled = p.dcache;
    c.residency = p.residency;
    c.n_streams = p.n_streams;
    c.n_frames = p.n_streams * 38;
    return run_microbench(c);
  }
};

TEST_P(MicrobenchMatrix, FixedPointNeverSlowerThanSoftFloat) {
  const auto fixed = run(GetParam(), dwcs::ArithMode::kFixedPoint);
  const auto soft = run(GetParam(), dwcs::ArithMode::kSoftFloat);
  EXPECT_LT(fixed.avg_frame_sched_us, soft.avg_frame_sched_us);
  // And the gap is material (the FP library is the dominant arithmetic
  // cost), not rounding noise.
  EXPECT_GT(soft.avg_frame_sched_us - fixed.avg_frame_sched_us, 5.0);
}

TEST_P(MicrobenchMatrix, SchedulerAlwaysCostsMoreThanDispatchOnly) {
  const auto r = run(GetParam(), dwcs::ArithMode::kFixedPoint);
  EXPECT_GT(r.avg_frame_sched_us, r.avg_frame_wo_sched_us);
  EXPECT_GT(r.overhead_us(), 10.0);
}

TEST_P(MicrobenchMatrix, NativeFpuBeatsSoftFloat) {
  const auto native = run(GetParam(), dwcs::ArithMode::kNativeFloat);
  const auto soft = run(GetParam(), dwcs::ArithMode::kSoftFloat);
  EXPECT_LT(native.avg_frame_sched_us, soft.avg_frame_sched_us);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MicrobenchMatrix,
    ::testing::Values(
        MatrixPoint{false, dwcs::DescriptorResidency::kPinnedMemory, 2},
        MatrixPoint{false, dwcs::DescriptorResidency::kPinnedMemory, 16},
        MatrixPoint{true, dwcs::DescriptorResidency::kPinnedMemory, 2},
        MatrixPoint{true, dwcs::DescriptorResidency::kPinnedMemory, 16},
        MatrixPoint{false, dwcs::DescriptorResidency::kHardwareQueue, 4},
        MatrixPoint{true, dwcs::DescriptorResidency::kHardwareQueue, 4},
        MatrixPoint{true, dwcs::DescriptorResidency::kPinnedMemory, 64}),
    [](const auto& param_info) {
      const auto& p = param_info.param;
      return std::string{p.dcache ? "cacheOn" : "cacheOff"} + "_" +
             (p.residency == dwcs::DescriptorResidency::kPinnedMemory
                  ? "pinned"
                  : "hwq") +
             "_s" + std::to_string(p.n_streams);
    });

TEST(MicrobenchMatrixCache, CacheAlwaysHelpsPinnedMemory) {
  for (const int n : {2, 8, 32}) {
    MicrobenchConfig c;
    c.arith = dwcs::ArithMode::kFixedPoint;
    c.n_streams = n;
    c.n_frames = n * 38;
    c.dcache_enabled = false;
    const auto off = run_microbench(c);
    c.dcache_enabled = true;
    const auto on = run_microbench(c);
    EXPECT_LT(on.avg_frame_sched_us, off.avg_frame_sched_us) << n;
    EXPECT_LT(on.avg_frame_wo_sched_us, off.avg_frame_wo_sched_us) << n;
  }
}

TEST(MicrobenchMatrixCache, HardwareQueueIsCacheInsensitive) {
  MicrobenchConfig c;
  c.arith = dwcs::ArithMode::kFixedPoint;
  c.residency = dwcs::DescriptorResidency::kHardwareQueue;
  c.dcache_enabled = false;
  const auto off = run_microbench(c);
  c.dcache_enabled = true;
  const auto on = run_microbench(c);
  // The descriptor path (w/o-scheduler column) lives in the register file:
  // the cache state must barely move it.
  EXPECT_NEAR(on.avg_frame_wo_sched_us, off.avg_frame_wo_sched_us, 0.5);
}

}  // namespace
}  // namespace nistream::apps
