// Determinism and fuzz tests spanning the whole stack.
//
// Reproducibility is a design guarantee of this codebase (simulated
// addresses, seeded RNGs, FIFO event tie-breaks): any experiment run twice
// must produce bit-identical results. The fuzz test drives the full DWCS
// stack through long random workloads across every configuration axis and
// checks global invariants.
#include <gtest/gtest.h>

#include "apps/experiments.hpp"
#include "dwcs/scheduler.hpp"
#include "sim/random.hpp"

namespace nistream::apps {
namespace {

TEST(Determinism, MicrobenchIsBitStable) {
  MicrobenchConfig c;
  c.arith = dwcs::ArithMode::kSoftFloat;
  const auto a = run_microbench(c);
  const auto b = run_microbench(c);
  EXPECT_EQ(a.total_sched_us, b.total_sched_us);
  EXPECT_EQ(a.total_wo_sched_us, b.total_wo_sched_us);
}

TEST(Determinism, CriticalPathIsBitStable) {
  const auto a = run_critical_path(100);
  const auto b = run_critical_path(100);
  EXPECT_EQ(a.expt1_ufs_ms, b.expt1_ufs_ms);
  EXPECT_EQ(a.expt2_ms, b.expt2_ms);
  EXPECT_EQ(a.expt3_ms, b.expt3_ms);
}

TEST(Determinism, LoadExperimentIsBitStable) {
  LoadExperimentConfig c;
  c.target_utilization = 0.45;
  c.horizon = sim::Time::sec(20);
  c.frames_per_stream = 600;
  const auto a = run_host_load_experiment(c);
  const auto b = run_host_load_experiment(c);
  EXPECT_EQ(a.avg_utilization, b.avg_utilization);
  EXPECT_EQ(a.s1.frames_delivered, b.s1.frames_delivered);
  EXPECT_EQ(a.s1.settle_bandwidth_bps, b.s1.settle_bandwidth_bps);
  ASSERT_EQ(a.s1.qdelay_ms.size(), b.s1.qdelay_ms.size());
  for (std::size_t i = 0; i < a.s1.qdelay_ms.size(); ++i) {
    EXPECT_EQ(a.s1.qdelay_ms[i], b.s1.qdelay_ms[i]);
  }
}

TEST(Determinism, SeedChangesResults) {
  LoadExperimentConfig c;
  c.target_utilization = 0.45;
  c.horizon = sim::Time::sec(20);
  c.frames_per_stream = 600;
  const auto a = run_host_load_experiment(c);
  c.seed += 1;
  const auto b = run_host_load_experiment(c);
  EXPECT_NE(a.avg_utilization, b.avg_utilization);
}

// ---- Full-stack scheduler fuzz ---------------------------------------------

struct FuzzAxis {
  dwcs::ArithMode arith;
  dwcs::ReprKind repr;
  bool completion_anchor;
};

class DwcsFuzz : public ::testing::TestWithParam<FuzzAxis> {};

TEST_P(DwcsFuzz, InvariantsHoldUnderRandomWorkloads) {
  const auto axis = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::Rng rng{seed * 7919};
    dwcs::DwcsScheduler::Config cfg;
    cfg.arith = axis.arith;
    cfg.repr = axis.repr;
    cfg.deadline_from_completion = axis.completion_anchor;
    cfg.ring_capacity = 16 + rng.below(64);
    dwcs::DwcsScheduler s{cfg};

    const int n_streams = 2 + static_cast<int>(rng.below(10));
    std::vector<dwcs::StreamId> ids;
    std::vector<std::uint64_t> accepted(static_cast<std::size_t>(n_streams));
    for (int i = 0; i < n_streams; ++i) {
      const auto y = 1 + static_cast<std::int64_t>(rng.below(10));
      ids.push_back(s.create_stream(
          {.tolerance = {static_cast<std::int64_t>(
                             rng.below(static_cast<std::uint64_t>(y) + 1)),
                         y},
           .period = sim::Time::ms(1 + static_cast<double>(rng.below(50))),
           .lossy = rng.chance(0.6)},
          sim::Time::zero()));
    }

    std::uint64_t fid = 0;
    sim::Time now = sim::Time::zero();
    for (int step = 0; step < 20000; ++step) {
      now += sim::Time::us(rng.below(4000));
      const auto action = rng.below(10);
      if (action < 6) {
        const auto i = rng.below(static_cast<std::uint64_t>(n_streams));
        if (s.enqueue(ids[i],
                      {.frame_id = fid++,
                       .bytes = 100 + static_cast<std::uint32_t>(rng.below(20000)),
                       .type = mpeg::FrameType::kP,
                       .enqueued_at = now},
                      now)) {
          ++accepted[i];
        }
      } else {
        const auto d = s.schedule_next(now);
        if (d) {
          // Dispatched frames are never in the future of their deadline
          // unless the stream is loss-intolerant.
          if (d->late) {
            EXPECT_FALSE(s.stream_params(d->stream).lossy);
          }
        }
      }
      // Window-constraint state stays well-formed at every step.
      for (const auto id : ids) {
        const auto& v = s.stream_view(id);
        ASSERT_GE(v.current.x, 0);
        ASSERT_GE(v.current.y, v.current.x);
        ASSERT_GE(v.current.y, 1);
      }
    }
    // Conservation: every accepted frame is sent, dropped, or still queued.
    for (int i = 0; i < n_streams; ++i) {
      const auto& st = s.stats(ids[static_cast<std::size_t>(i)]);
      EXPECT_EQ(st.enqueued, accepted[static_cast<std::size_t>(i)]);
      EXPECT_EQ(st.serviced_on_time + st.serviced_late + st.dropped +
                    s.backlog(ids[static_cast<std::size_t>(i)]),
                st.enqueued)
          << "stream " << i << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Axes, DwcsFuzz,
    ::testing::Values(
        FuzzAxis{dwcs::ArithMode::kFixedPoint, dwcs::ReprKind::kDualHeap, false},
        FuzzAxis{dwcs::ArithMode::kFixedPoint, dwcs::ReprKind::kDualHeap, true},
        FuzzAxis{dwcs::ArithMode::kSoftFloat, dwcs::ReprKind::kSingleHeap, false},
        FuzzAxis{dwcs::ArithMode::kNativeFloat, dwcs::ReprKind::kSortedList, true},
        FuzzAxis{dwcs::ArithMode::kFixedPoint, dwcs::ReprKind::kCalendarQueue, false},
        FuzzAxis{dwcs::ArithMode::kFixedPoint, dwcs::ReprKind::kFcfs, true}),
    [](const auto& param_info) {
      std::string name{dwcs::to_string(param_info.param.repr)};
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_" + (param_info.param.completion_anchor ? "anchor" : "grid") +
             "_" + std::to_string(static_cast<int>(param_info.param.arith));
    });

}  // namespace
}  // namespace nistream::apps
