// Integration tests: every reproduced table/figure must exhibit the paper's
// *shape* — orderings, ratios and crossovers. These are the repository's
// acceptance tests; EXPERIMENTS.md records the precise numbers.
#include "apps/experiments.hpp"

#include <gtest/gtest.h>

namespace nistream::apps {
namespace {

TEST(Table12, FixedPointBeatsSoftFloatByAbout20us) {
  MicrobenchConfig c;
  for (const bool cache : {false, true}) {
    c.dcache_enabled = cache;
    c.arith = dwcs::ArithMode::kSoftFloat;
    const auto soft = run_microbench(c);
    c.arith = dwcs::ArithMode::kFixedPoint;
    const auto fixed = run_microbench(c);
    const double delta = soft.avg_frame_sched_us - fixed.avg_frame_sched_us;
    EXPECT_NEAR(delta, 21.0, 5.0) << "cache " << cache;
  }
}

TEST(Table12, DataCacheSavesAbout14usPerFrame) {
  MicrobenchConfig c;
  for (const auto mode :
       {dwcs::ArithMode::kFixedPoint, dwcs::ArithMode::kSoftFloat}) {
    c.arith = mode;
    c.dcache_enabled = false;
    const auto off = run_microbench(c);
    c.dcache_enabled = true;
    const auto on = run_microbench(c);
    EXPECT_NEAR(off.avg_frame_sched_us - on.avg_frame_sched_us, 14.2, 3.0);
  }
}

TEST(Table12, AbsoluteNumbersWithinTenPercentOfPaper) {
  MicrobenchConfig c;
  c.arith = dwcs::ArithMode::kFixedPoint;
  c.dcache_enabled = false;
  const auto t1 = run_microbench(c);
  EXPECT_NEAR(t1.avg_frame_sched_us, 108.48, 10.8);
  EXPECT_NEAR(t1.avg_frame_wo_sched_us, 30.35, 3.0);
  c.dcache_enabled = true;
  const auto t2 = run_microbench(c);
  EXPECT_NEAR(t2.avg_frame_sched_us, 94.60, 9.5);
  // The headline: embedded scheduling overhead ~65-67 us.
  EXPECT_NEAR(t2.overhead_us(), 66.82, 7.0);
}

TEST(Table3, HardwareQueueComparableToPinnedMemory) {
  MicrobenchConfig c;
  c.arith = dwcs::ArithMode::kFixedPoint;
  c.dcache_enabled = true;
  c.residency = dwcs::DescriptorResidency::kPinnedMemory;
  const auto pinned = run_microbench(c);
  c.residency = dwcs::DescriptorResidency::kHardwareQueue;
  const auto hwq = run_microbench(c);
  // "Comparable": within a few us either way.
  EXPECT_NEAR(hwq.avg_frame_sched_us, pinned.avg_frame_sched_us, 5.0);
  // And immune to the d-cache being off (on-chip registers).
  c.dcache_enabled = false;
  const auto hwq_off = run_microbench(c);
  EXPECT_LT(hwq_off.avg_frame_wo_sched_us - hwq.avg_frame_wo_sched_us, 1.0);
}

TEST(Table4, PathLatenciesMatchShape) {
  const auto r = run_critical_path(300);
  // Ordering: UFS host path < NI paths < dosFs host path.
  EXPECT_LT(r.expt1_ufs_ms, r.expt2_ms);
  EXPECT_LT(r.expt2_ms, r.expt1_dosfs_ms);
  // Absolute targets within ~12%.
  EXPECT_NEAR(r.expt1_ufs_ms, 1.0, 0.15);
  EXPECT_NEAR(r.expt1_dosfs_ms, 8.0, 1.0);
  EXPECT_NEAR(r.expt2_ms, 5.4, 0.5);
  EXPECT_NEAR(r.expt3_ms, 5.415, 0.5);
  // Path B adds only the tiny PCI hop over Path C.
  EXPECT_NEAR(r.expt3_ms - r.expt2_ms, 0.015, 0.12);
  // Decomposition.
  EXPECT_NEAR(r.expt3_disk_ms, 4.2, 0.4);
  EXPECT_NEAR(r.expt3_net_ms, 1.2, 0.2);
  EXPECT_NEAR(r.expt3_pci_ms, 0.015, 0.01);
}

TEST(Table5, PciNumbersExact) {
  const auto r = run_pci_bench();
  EXPECT_NEAR(r.mpeg_file_dma_us, 11673.84, 120.0);
  EXPECT_NEAR(r.mpeg_file_dma_mbps, 66.27, 0.7);
  EXPECT_DOUBLE_EQ(r.pio_word_read_us, 3.6);
  EXPECT_DOUBLE_EQ(r.pio_word_write_us, 3.1);
}

// The figure experiments take ~0.5 s each; run the three host loads and two
// NI loads once and assert all figure shapes from the results.
class Figures : public ::testing::Test {
 protected:
  static LoadExperimentResult host(double u) {
    LoadExperimentConfig c;
    c.target_utilization = u;
    return run_host_load_experiment(c);
  }
  static LoadExperimentResult ni(double u) {
    LoadExperimentConfig c;
    c.target_utilization = u;
    return run_ni_load_experiment(c);
  }
};

TEST_F(Figures, Fig6UtilizationTargetsAndPeaks) {
  const auto none = host(0.0);
  const auto mid = host(0.45);
  const auto heavy = host(0.60);
  EXPECT_LT(none.avg_utilization, 15.0);
  EXPECT_NEAR(mid.avg_utilization, 48.0, 8.0);
  EXPECT_NEAR(heavy.avg_utilization, 63.0, 8.0);
  EXPECT_GT(heavy.peak_utilization, 80.0);  // the saturation plateau
  EXPECT_GT(mid.peak_utilization, none.peak_utilization);
}

TEST_F(Figures, Fig7HostBandwidthDegrades) {
  const auto none = host(0.0);
  const auto mid = host(0.45);
  const auto heavy = host(0.60);
  // No load: ~250 kbit/s era-rate streams (ours ~200 kbit/s synthetic mix).
  EXPECT_GT(none.s1.settle_bandwidth_bps, 180e3);
  // Monotone degradation, severe at 60%: roughly half of no-load.
  EXPECT_LT(mid.s1.settle_bandwidth_bps, none.s1.settle_bandwidth_bps);
  EXPECT_LT(heavy.s1.settle_bandwidth_bps, mid.s1.settle_bandwidth_bps);
  EXPECT_LT(heavy.s1.settle_bandwidth_bps,
            0.65 * none.s1.settle_bandwidth_bps);
  // 45% is a mild dip, not a collapse.
  EXPECT_GT(mid.s1.settle_bandwidth_bps, 0.7 * none.s1.settle_bandwidth_bps);
}

TEST_F(Figures, Fig8HostQueuingDelayGrows) {
  const auto none = host(0.0);
  const auto heavy = host(0.60);
  EXPECT_NEAR(none.s1.max_qdelay_ms, 10000.0, 1000.0);  // the 10 s plateau
  EXPECT_GT(heavy.s1.max_qdelay_ms, 1.3 * none.s1.max_qdelay_ms);
}

TEST_F(Figures, Fig9And10NiImmuneToHostLoad) {
  const auto unloaded = ni(0.0);
  const auto loaded = ni(0.60);
  // The web load really hammers the host...
  EXPECT_GT(loaded.avg_utilization, 50.0);
  // ...and the NI scheduler does not notice: bandwidth and queuing delay
  // are identical to the unloaded run for both streams.
  EXPECT_NEAR(loaded.s1.settle_bandwidth_bps,
              unloaded.s1.settle_bandwidth_bps,
              0.01 * unloaded.s1.settle_bandwidth_bps);
  EXPECT_NEAR(loaded.s2.settle_bandwidth_bps,
              unloaded.s2.settle_bandwidth_bps,
              0.01 * unloaded.s2.settle_bandwidth_bps);
  EXPECT_NEAR(loaded.s1.max_qdelay_ms, unloaded.s1.max_qdelay_ms,
              0.01 * unloaded.s1.max_qdelay_ms);
  // NI settle bandwidth matches the host scheduler's no-load settle (the
  // paper's cross-figure comparison of Figures 7 and 9).
  const auto host_none = host(0.0);
  EXPECT_NEAR(loaded.s1.settle_bandwidth_bps,
              host_none.s1.settle_bandwidth_bps,
              0.05 * host_none.s1.settle_bandwidth_bps);
}

}  // namespace
}  // namespace nistream::apps
