// Cluster control plane choreography: board crash -> watchdog trip ->
// checkpoint shipping to sibling NIs -> capacity-aware mass re-admission
// (host only as last resort) -> fail-back drain when the board reboots.
// Plus the monitor-scope keying that keeps a re-admitted stream's QoS
// counters from aliasing its pre-crash life.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/client.hpp"
#include "cluster/control_plane.hpp"
#include "fault/board_health.hpp"
#include "sim/engine.hpp"

namespace nistream::cluster {
namespace {

using sim::Time;

constexpr Time kPeriod = Time::ms(33);
constexpr dwcs::StreamParams kParams{
    .tolerance = {1, 4}, .period = kPeriod, .lossy = true};

ClusterControlPlane::Config make_config(int boards, Time per_frame_cpu) {
  ClusterControlPlane::Config c;
  c.boards = boards;
  c.service.scheduler.deadline_from_completion = true;
  c.per_frame_cpu = per_frame_cpu;
  return c;
}

/// Timer-paced producer through the plane's router; no retry — a refused
/// frame is a loss the monitor records.
sim::Coro paced_producer(sim::Engine& eng, ClusterControlPlane& plane,
                         GlobalStreamId id, Time phase, Time until) {
  co_await sim::Delay{eng, kPeriod + phase};
  for (;;) {
    if (eng.now() >= until) co_return;
    (void)plane.enqueue(id, 1000, mpeg::FrameType::kP);
    co_await sim::Delay{eng, kPeriod};
  }
}

struct Rig {
  sim::Engine eng;
  hostos::HostMachine host{eng, 2};
  hw::EthernetSwitch ether{eng};
  apps::MpegClient client{eng, ether};
  ClusterControlPlane plane;
  std::vector<std::unique_ptr<fault::BoardHealth>> health;

  explicit Rig(int boards, Time per_frame_cpu = Time::us(130))
      : plane{host, ether, make_config(boards, per_frame_cpu)} {
    for (int b = 0; b < boards; ++b) {
      health.push_back(std::make_unique<fault::BoardHealth>(eng));
      plane.attach_health(b, *health.back());
    }
  }

  GlobalStreamId add_stream(std::size_t i, Time until) {
    const auto id = plane.open_stream(kParams, 1000, client.port());
    EXPECT_TRUE(id.has_value());
    paced_producer(eng, plane, *id, Time::us(700.0 * static_cast<double>(i)),
                   until)
        .detach();
    return *id;
  }
};

TEST(ClusterFailover, OpenStreamSpreadsLeastLoadedDeterministically) {
  Rig rig{3};
  for (std::size_t i = 0; i < 6; ++i) rig.add_stream(i, Time::ms(1));
  // Equal loads tie to the lowest board: round-robin 0,1,2,0,1,2.
  for (GlobalStreamId g = 0; g < 6; ++g) {
    EXPECT_EQ(rig.plane.registry().record(g).where.board,
              static_cast<int>(g % 3));
  }
  EXPECT_EQ(rig.plane.admission(0).admitted(), 2u);
  EXPECT_EQ(rig.plane.admission(1).admitted(), 2u);
  EXPECT_EQ(rig.plane.admission(2).admitted(), 2u);
}

TEST(ClusterFailover, SiblingsAdoptEveryStreamWhileTheyHaveHeadroom) {
  Rig rig{3};
  for (std::size_t i = 0; i < 6; ++i) rig.add_stream(i, Time::sec(4));
  rig.health[0]->schedule_crash(Time::sec(1));  // stays dead
  rig.eng.run_until(Time::sec(4));

  const auto& m = rig.plane.metrics();
  EXPECT_EQ(m.failovers, 1u);
  EXPECT_EQ(rig.plane.watchdog(0).trips(), 1u);
  EXPECT_FALSE(rig.plane.board_serving(0));
  // Siblings had headroom, so nothing fell to the host.
  EXPECT_EQ(m.host_takeover_streams, 0u);
  EXPECT_EQ(rig.plane.host_server(), nullptr);
  // Board 0 held streams 0 and 3; both migrated to siblings.
  EXPECT_EQ(m.migrations_started, 2u);
  EXPECT_EQ(m.migrations_completed, 2u);
  for (const GlobalStreamId g : {0u, 3u}) {
    const auto& rec = rig.plane.registry().record(g);
    EXPECT_TRUE(rec.where.placed());
    EXPECT_NE(rec.where.board, 0);
    EXPECT_FALSE(rec.where.on_host());
    EXPECT_EQ(rec.migrations, 1u);
  }
  // Detection within the watchdog bound, re-admission within 2x the
  // single-board failover latency (the PR acceptance bound).
  EXPECT_GT(m.failover_latency_ms, 0.0);
  EXPECT_LT(m.failover_latency_ms, 502.0);
  EXPECT_GE(m.readmission_complete_ms, m.failover_latency_ms);
  EXPECT_LT(m.readmission_complete_ms, 502.0);
  // The tap kept running end to end.
  EXPECT_GT(rig.client.total_frames(), 300u);
}

TEST(ClusterFailover, SpillsToHostOnlyTheStreamsNoSiblingCanHold) {
  // per_frame_cpu 6.6 ms at a 33 ms period = 0.2 CPU per stream, so a
  // board holds 4 streams under the 0.9 headroom. Place 7: board 0 takes
  // 4, board 1 takes 3 (ties go low).
  Rig rig{2, /*per_frame_cpu=*/Time::us(6600)};
  for (std::size_t i = 0; i < 7; ++i) rig.add_stream(i, Time::sec(3));
  EXPECT_EQ(rig.plane.admission(0).admitted(), 4u);
  EXPECT_EQ(rig.plane.admission(1).admitted(), 3u);

  rig.health[0]->schedule_crash(Time::sec(1));  // stays dead
  rig.eng.run_until(Time::sec(3));

  // Board 1 had room for exactly one more; the other three victims are
  // kept alive by the host scheduler — the last resort, not the default.
  const auto& m = rig.plane.metrics();
  EXPECT_EQ(m.failovers, 1u);
  EXPECT_EQ(m.migrations_completed, 1u);
  EXPECT_EQ(m.host_takeover_streams, 3u);
  ASSERT_NE(rig.plane.host_server(), nullptr);
  EXPECT_EQ(rig.plane.host_server()->service().scheduler().stream_count(), 3u);
  EXPECT_EQ(rig.plane.admission(1).admitted(), 4u);

  int on_host = 0;
  for (const auto& rec : rig.plane.registry().records()) {
    if (rec.where.on_host()) ++on_host;
  }
  EXPECT_EQ(on_host, 3);
  EXPECT_GT(rig.client.total_frames(), 200u);
}

TEST(ClusterFailover, FailBackDrainsMigratedStreamsHomeUnderOriginalIds) {
  Rig rig{3};
  for (std::size_t i = 0; i < 6; ++i) rig.add_stream(i, Time::sec(5));
  rig.health[0]->schedule_crash(Time::sec(1), /*reboot_after=*/Time::ms(800));
  rig.eng.run_until(Time::sec(5));

  const auto& m = rig.plane.metrics();
  EXPECT_EQ(m.failovers, 1u);
  EXPECT_EQ(m.failbacks, 1u);
  EXPECT_EQ(rig.plane.watchdog(0).recoveries(), 1u);
  EXPECT_TRUE(rig.plane.board_serving(0));
  EXPECT_EQ(m.drainbacks_started, 2u);
  EXPECT_EQ(m.drainbacks_completed, 2u);
  EXPECT_GT(m.recovery_time_ms, m.failover_latency_ms);

  // Streams 0 and 3 are home, under their original local ids, placed under
  // the post-reboot incarnation.
  EXPECT_EQ(rig.health[0]->incarnation(), 1u);
  for (const GlobalStreamId g : {0u, 3u}) {
    const auto& rec = rig.plane.registry().record(g);
    EXPECT_EQ(rec.where.board, 0);
    EXPECT_EQ(rec.where.local, rec.home_local);
    EXPECT_EQ(rec.where.incarnation, 1u);
    EXPECT_EQ(rec.migrations, 2u);  // out and back
  }
  // The refuge boards released their failover reservations.
  EXPECT_EQ(rig.plane.admission(0).admitted(), 2u);
  EXPECT_EQ(rig.plane.admission(1).admitted(), 2u);
  EXPECT_EQ(rig.plane.admission(2).admitted(), 2u);
  EXPECT_GT(rig.client.total_frames(), 400u);
}

TEST(ClusterFailover, AdmissionDuringFailoverAvoidsTheDeadBoard) {
  Rig rig{3};
  std::vector<GlobalStreamId> ids;
  for (std::size_t i = 0; i < 6; ++i) ids.push_back(rig.add_stream(i, Time::sec(4)));
  rig.health[0]->schedule_crash(Time::sec(1));  // stays dead

  // Between death and the watchdog trip, enqueues to board-0 streams are
  // refused (dead board) and charged as drops.
  rig.eng.run_until(Time::ms(1050));
  const auto rejected_before = rig.plane.metrics().frames_rejected;
  EXPECT_FALSE(rig.plane.enqueue(ids[0], 1000, mpeg::FrameType::kP));
  EXPECT_EQ(rig.plane.metrics().frames_rejected, rejected_before + 1);

  // After the trip, fresh admissions land on serving boards only.
  rig.eng.run_until(Time::ms(1700));
  ASSERT_FALSE(rig.plane.board_serving(0));
  const auto fresh = rig.plane.open_stream(kParams, 1000, rig.client.port());
  ASSERT_TRUE(fresh.has_value());
  const auto& rec = rig.plane.registry().record(*fresh);
  EXPECT_NE(rec.where.board, 0);
  EXPECT_TRUE(rig.plane.board_serving(rec.where.board));
  rig.eng.run_until(Time::sec(4));
  EXPECT_EQ(rig.plane.metrics().failovers, 1u);
}

TEST(ClusterFailover, RebootStartsAFreshMonitorScopeAndFreezesTheOldOne) {
  Rig rig{3};
  for (std::size_t i = 0; i < 6; ++i) rig.add_stream(i, Time::sec(5));
  rig.health[0]->schedule_crash(Time::sec(1), /*reboot_after=*/Time::ms(800));
  rig.eng.run_until(Time::sec(3));

  const auto& rec = rig.plane.registry().record(0);
  ASSERT_EQ(rec.where.board, 0);          // drained home by now
  ASSERT_EQ(rec.history.size(), 2u);      // pre-crash home + refuge
  const dwcs::WindowViolationMonitor::StreamKey pre_crash{
      rec.history[0].monitor_scope, rec.history[0].local};
  const dwcs::WindowViolationMonitor::StreamKey current{
      rec.where.monitor_scope, rec.where.local};
  // Same board, same local id — different incarnation, different key.
  EXPECT_EQ(rec.history[0].local, rec.where.local);
  EXPECT_NE(rec.history[0].monitor_scope, rec.where.monitor_scope);

  // The dead placement's counters are frozen; the live one keeps counting.
  const auto frozen = rig.plane.monitor().packets(pre_crash);
  const auto live_at_3s = rig.plane.monitor().packets(current);
  rig.eng.run_until(Time::sec(5));
  EXPECT_EQ(rig.plane.monitor().packets(pre_crash), frozen);
  EXPECT_GT(rig.plane.monitor().packets(current), live_at_3s);
  // Lifetime aggregation spans every placement.
  EXPECT_EQ(rig.plane.packets(0),
            frozen + rig.plane.monitor().packets(current) +
                rig.plane.monitor().packets(
                    {rec.history[1].monitor_scope, rec.history[1].local}));
}

TEST(ClusterFailover, MonitorScopeKeyingDoesNotAliasAcrossBoards) {
  dwcs::WindowViolationMonitor mon;
  const dwcs::WindowConstraint c{0, 2};  // no losses tolerated
  const dwcs::WindowViolationMonitor::StreamKey a{.scope = 1, .stream = 0};
  const dwcs::WindowViolationMonitor::StreamKey b{.scope = 2, .stream = 0};
  mon.add_stream(a, c);
  mon.add_stream(b, c);

  using O = dwcs::WindowViolationMonitor::Outcome;
  mon.record(a, O::kDropped);
  mon.record(a, O::kDropped);
  mon.record(b, O::kOnTime);
  mon.record(b, O::kOnTime);
  // Same local stream id, different scope: independent windows.
  EXPECT_EQ(mon.violating_windows(a), 1u);
  EXPECT_EQ(mon.violating_windows(b), 0u);
  EXPECT_EQ(mon.packets(a), 2u);
  EXPECT_EQ(mon.packets(b), 2u);

  // Re-registering an existing key (hang recovery) keeps its history...
  mon.add_stream(a, c);
  EXPECT_EQ(mon.packets(a), 2u);
  // ...and the legacy positional API is the keyed API at scope 0.
  mon.add_stream(c);
  mon.record(dwcs::StreamId{0}, O::kDropped);
  EXPECT_EQ(mon.packets(dwcs::StreamId{0}), 1u);
  EXPECT_EQ(mon.packets({0, 0}), 1u);
  EXPECT_EQ(mon.total_violating_windows(), 1u);
}

}  // namespace
}  // namespace nistream::cluster
