// Replay determinism for the cluster control plane: two same-seed runs of a
// 3-NI scenario with a scripted crash + reboot must produce bit-identical
// charge fingerprints — same per-board CPU cycle counts, same migration and
// drain-back counts, same delivery and violation counters. The seed comes
// from NISTREAM_CHAOS_SEED so the CI chaos matrix can sweep it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "apps/client.hpp"
#include "cluster/control_plane.hpp"
#include "fault/board_health.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace nistream::cluster {
namespace {

using sim::Time;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("NISTREAM_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

/// Paced producer with seed-jittered frame sizes: the seed is the only
/// source of variation, so it is what two runs must agree on.
sim::Coro jittered_producer(sim::Engine& eng, ClusterControlPlane& plane,
                            GlobalStreamId id, std::uint64_t seed, Time phase,
                            Time until) {
  const Time period = Time::ms(33);
  sim::Rng rng{seed};
  co_await sim::Delay{eng, period + phase};
  for (;;) {
    if (eng.now() >= until) co_return;
    const auto bytes = static_cast<std::uint32_t>(
        std::max(128.0, rng.normal(1000.0, 150.0)));
    (void)plane.enqueue(id, bytes, mpeg::FrameType::kP);
    co_await sim::Delay{eng, period};
  }
}

/// Everything observable about one run, for whole-struct equality.
struct Fingerprint {
  std::uint64_t board_cycles[3];
  std::uint64_t client_frames;
  std::uint64_t client_bytes;
  std::uint64_t violating_windows;
  std::uint64_t failovers;
  std::uint64_t failbacks;
  std::uint64_t migrations_completed;
  std::uint64_t drainbacks_completed;
  std::uint64_t host_takeovers;
  std::uint64_t purged;
  std::uint64_t rejected;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_cluster_chaos(std::uint64_t seed) {
  sim::Engine eng;
  hostos::HostMachine host{eng, 2};
  hw::EthernetSwitch ether{eng};
  apps::MpegClient client{eng, ether};

  ClusterControlPlane::Config cfg;
  cfg.boards = 3;
  cfg.service.scheduler.deadline_from_completion = true;
  ClusterControlPlane plane{host, ether, cfg};

  std::vector<std::unique_ptr<fault::BoardHealth>> health;
  for (int b = 0; b < 3; ++b) {
    health.push_back(std::make_unique<fault::BoardHealth>(eng));
    plane.attach_health(b, *health.back());
  }
  health[0]->schedule_crash(Time::sec(1), /*reboot_after=*/Time::ms(800));

  for (std::size_t i = 0; i < 6; ++i) {
    const auto id = plane.open_stream(
        {.tolerance = {1, 4}, .period = Time::ms(33), .lossy = true}, 1000,
        client.port());
    jittered_producer(eng, plane, *id, seed ^ (0x9E3779B9u * (i + 1)),
                      Time::us(700.0 * static_cast<double>(i)), Time::sec(3))
        .detach();
  }
  eng.run_until(Time::sec(3));

  const auto& m = plane.metrics();
  Fingerprint f{};
  for (int b = 0; b < 3; ++b) {
    f.board_cycles[b] = static_cast<std::uint64_t>(
        plane.ni(b).board().cpu().cycles());
  }
  f.client_frames = client.total_frames();
  f.client_bytes = client.total_bytes();
  f.violating_windows = plane.monitor().total_violating_windows();
  f.failovers = m.failovers;
  f.failbacks = m.failbacks;
  f.migrations_completed = m.migrations_completed;
  f.drainbacks_completed = m.drainbacks_completed;
  f.host_takeovers = m.host_takeover_streams;
  f.purged = m.frames_purged;
  f.rejected = m.frames_rejected;
  return f;
}

TEST(ClusterReplay, SameSeedSameChargeFingerprint) {
  const auto seed = chaos_seed();
  const auto a = run_cluster_chaos(seed);
  const auto b = run_cluster_chaos(seed);
  EXPECT_EQ(a, b);

  // Sanity: the scenario exercised the full failover + fail-back cycle on
  // sibling NIs, never the host.
  EXPECT_EQ(a.failovers, 1u);
  EXPECT_EQ(a.failbacks, 1u);
  EXPECT_EQ(a.migrations_completed, 2u);
  EXPECT_EQ(a.drainbacks_completed, 2u);
  EXPECT_EQ(a.host_takeovers, 0u);
  EXPECT_GT(a.client_frames, 0u);
  EXPECT_GT(a.board_cycles[0], 0u);
  EXPECT_GT(a.board_cycles[1], 0u);
}

TEST(ClusterReplay, DifferentSeedsDiverge) {
  const auto seed = chaos_seed();
  const auto a = run_cluster_chaos(seed);
  const auto b = run_cluster_chaos(seed + 1);
  // Frame sizes are seed-driven; different seeds change the byte stream
  // (and through it the charge fingerprint).
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace nistream::cluster
