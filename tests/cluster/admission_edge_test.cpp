// Admission edge cases of the placement hierarchy: zero-capacity nodes,
// full-cluster spill ordering, and the shared least-loaded helpers that
// ServerNode, MediaCluster, and the cluster control plane all sit on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/cluster.hpp"
#include "cluster/placement.hpp"
#include "sim/engine.hpp"

namespace nistream::cluster {
namespace {

using sim::Time;

constexpr dwcs::StreamParams kParams{
    .tolerance = {1, 4}, .period = Time::ms(33), .lossy = true};

TEST(ClusterAdmission, PickLeastLoadedBreaksTiesToTheLowestIndex) {
  const std::vector<double> loads{0.5, 0.2, 0.2, 0.7};
  const auto load = [&](int i) { return loads[static_cast<std::size_t>(i)]; };
  EXPECT_EQ(pick_least_loaded(4, load, [](int) { return true; }), 1);
  // Admissibility filters before load comparison.
  EXPECT_EQ(pick_least_loaded(4, load, [](int i) { return i != 1; }), 2);
  EXPECT_EQ(pick_least_loaded(4, load, [](int) { return false; }), -1);
  EXPECT_EQ(pick_least_loaded(0, load, [](int) { return true; }), -1);
}

TEST(ClusterAdmission, LoadOrderIsStableOnEqualLoads) {
  const std::vector<double> loads{0.3, 0.1, 0.3, 0.1};
  const auto order = load_order(
      4, [&](int i) { return loads[static_cast<std::size_t>(i)]; });
  EXPECT_EQ(order, (std::vector<int>{1, 3, 0, 2}));
}

TEST(ClusterAdmission, ZeroCapacityNodeIsNeverPreferredAndNeverPlaces) {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  // Node 0 has no scheduler-NIs at all (a director/storage chassis).
  apps::MediaCluster mc{eng, ether, std::vector<int>{0, 2}};
  EXPECT_EQ(mc.node(0).load(), 1.0);  // no capacity reads as fully loaded
  EXPECT_EQ(mc.node(1).load(), 0.0);

  for (int i = 0; i < 4; ++i) {
    const auto placed = mc.open_stream(kParams, 1000, /*client_port=*/0,
                                       /*n_frames=*/1, /*seed=*/7);
    ASSERT_TRUE(placed.has_value());
    EXPECT_EQ(placed->node, 1);
  }
  EXPECT_EQ(mc.node(0).streams_opened(), 0u);
  EXPECT_EQ(mc.node(1).streams_opened(), 4u);
  // The empty node rejected nothing because it was never even asked twice:
  // load 1.0 sorts it last, and its open_stream refuses without capacity.
  EXPECT_EQ(mc.opened(), 4u);
}

TEST(ClusterAdmission, FullClusterSpillsInLoadOrderThenRejects) {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  // One NI per node; each NI holds 6 streams: cpu_load per stream =
  // 130us/33ms ~ 0.0039 is loose, so capacity binds on the link instead —
  // shrink the period to make CPU bind: 1 ms period -> 0.13 each, 6 fit
  // under the 0.90 headroom.
  dwcs::StreamParams tight = kParams;
  tight.period = Time::ms(1);
  apps::MediaCluster mc{eng, ether, /*nodes=*/2, /*nis_per_node=*/1};

  std::vector<int> placement;
  for (int i = 0; i < 14; ++i) {
    const auto placed = mc.open_stream(tight, 1000, 0, 1, 7);
    if (!placed) break;
    placement.push_back(placed->node);
  }
  // 12 fit (6 per node), alternating least-loaded with ties going low;
  // the 13th request found every node full and was rejected.
  ASSERT_EQ(placement.size(), 12u);
  for (std::size_t i = 0; i < placement.size(); ++i) {
    EXPECT_EQ(placement[i], static_cast<int>(i % 2)) << "stream " << i;
  }
  EXPECT_EQ(mc.rejected(), 1u);
  EXPECT_EQ(mc.opened(), 12u);

  // Uniform-constructor equivalence: the delegating ctor behaves the same.
  sim::Engine eng2;
  hw::EthernetSwitch ether2{eng2};
  apps::MediaCluster uniform{eng2, ether2, std::vector<int>{1, 1}};
  const auto p = uniform.open_stream(tight, 1000, 0, 1, 7);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node, 0);
}

}  // namespace
}  // namespace nistream::cluster
