// Tests for the host machine model: process competition, pbind affinity,
// and the perfmeter.
#include "hostos/host.hpp"

#include <gtest/gtest.h>

namespace nistream::hostos {
namespace {

using sim::Time;

TEST(Host, SingleProcessTiming) {
  sim::Engine eng;
  HostMachine host{eng, /*online_cpus=*/2};
  Process& p = host.spawn("proc");
  Time done = Time::never();
  auto body = [&]() -> sim::Coro {
    co_await p.consume(Time::ms(25));
    done = eng.now();
  };
  body().detach();
  eng.run();
  EXPECT_EQ(done, Time::ms(25) + Time::us(12));  // + dispatch switch
}

TEST(Host, ConsumeCyclesAtHostClock) {
  sim::Engine eng;
  HostMachine host{eng, 1};
  Process& p = host.spawn("proc");
  Time done = Time::never();
  auto body = [&]() -> sim::Coro {
    co_await p.consume_cycles(200'000'000);  // 1 s at 200 MHz
    done = eng.now();
  };
  body().detach();
  eng.run();
  EXPECT_EQ(done, Time::sec(1) + Time::us(12));
}

TEST(Host, CompetitionStretchesRuntime) {
  // The essence of Figures 7-8: a process that needs 10 ms of CPU per
  // period takes much longer under competing load on one CPU. Pin the
  // quantum to 10 ms so the interleaving is exact.
  sim::Engine eng;
  hw::Calibration cal;
  cal.host_os.quantum = Time::ms(10);
  HostMachine host{eng, 1, cal, /*meter_sample=*/Time::ms(100)};
  Process& victim = host.spawn("dwcs");
  Process& hog = host.spawn("webserver");
  Time victim_done = Time::never();
  auto pv = [&]() -> sim::Coro {
    co_await victim.consume(Time::ms(50));
    victim_done = eng.now();
  };
  auto ph = [&]() -> sim::Coro { co_await hog.consume(Time::ms(200)); };
  pv().detach();
  ph().detach();
  eng.run();
  // Round-robin 10 ms quanta (V,H,V,H,...): the victim's fifth quantum ends
  // at 90 ms, plus ~9 context switches.
  EXPECT_GT(victim_done, Time::ms(90));
  EXPECT_LT(victim_done, Time::ms(95));
}

TEST(Host, SecondCpuRemovesCompetition) {
  sim::Engine eng;
  HostMachine host{eng, 2};
  Process& victim = host.spawn("dwcs");
  Process& hog = host.spawn("webserver");
  Time victim_done = Time::never();
  auto pv = [&]() -> sim::Coro {
    co_await victim.consume(Time::ms(50));
    victim_done = eng.now();
  };
  auto ph = [&]() -> sim::Coro { co_await hog.consume(Time::ms(200)); };
  pv().detach();
  ph().detach();
  eng.run();
  // Own CPU, no interference (just its own dispatch switch).
  EXPECT_EQ(victim_done, Time::ms(50) + Time::us(12));
}

TEST(Host, PbindPinsProcess) {
  sim::Engine eng;
  HostMachine host{eng, 2};
  Process& a = host.spawn("a", kDefaultPriority, /*affinity=*/0);
  Process& b = host.spawn("b", kDefaultPriority, /*affinity=*/0);
  Time done_b = Time::never();
  auto pa = [&]() -> sim::Coro { co_await a.consume(Time::ms(30)); };
  auto pb = [&]() -> sim::Coro {
    co_await b.consume(Time::ms(30));
    done_b = eng.now();
  };
  pa().detach();
  pb().detach();
  eng.run();
  EXPECT_GT(done_b, Time::ms(59));  // serialized on CPU 0 despite idle CPU 1
}

TEST(Host, PerfmeterReportsUtilization) {
  sim::Engine eng;
  HostMachine host{eng, 2, hw::Calibration{}, Time::ms(100)};
  Process& p = host.spawn("p", kDefaultPriority, /*affinity=*/0);
  auto body = [&]() -> sim::Coro {
    for (int i = 0; i < 10; ++i) {
      co_await p.consume(Time::ms(50));
      co_await sim::Delay{eng, Time::ms(50)};
    }
  };
  body().detach();
  eng.run();
  const auto util = host.perfmeter(Time::sec(1));
  // One CPU 50% busy on a 2-CPU machine => ~25% total utilization.
  EXPECT_NEAR(util.mean_between(Time::zero(), Time::sec(1)), 25.0, 1.0);
}

TEST(Host, ContextSwitchesAreCounted) {
  sim::Engine eng;
  hw::Calibration cal;
  cal.host_os.quantum = Time::ms(10);
  HostMachine host{eng, 1, cal};
  Process& a = host.spawn("a");
  Process& b = host.spawn("b");
  auto pa = [&]() -> sim::Coro { co_await a.consume(Time::ms(30)); };
  auto pb = [&]() -> sim::Coro { co_await b.consume(Time::ms(30)); };
  pa().detach();
  pb().detach();
  eng.run();
  EXPECT_GE(host.scheduler().context_switches(), 6u);  // 10 ms quanta
}

}  // namespace
}  // namespace nistream::hostos
