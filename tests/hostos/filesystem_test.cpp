// Tests for the UFS and dosFs models, including the Table 4 Experiment I
// calibration targets (~1 ms/frame UFS vs ~8 ms/frame dosFs).
#include "hostos/filesystem.hpp"

#include <gtest/gtest.h>

#include "hostos/host.hpp"

namespace nistream::hostos {
namespace {

using sim::Time;

struct Fixture {
  sim::Engine eng;
  hw::ScsiDisk disk{eng};
};

TEST(Ufs, SequentialFrameReadsMostlyHitCache) {
  Fixture f;
  UfsFilesystem fs{f.eng, f.disk};
  auto body = [&]() -> sim::Coro {
    for (int i = 0; i < 1000; ++i) {
      co_await fs.read(static_cast<std::uint64_t>(i) * 1000, 1000);
    }
  };
  body().detach();
  f.eng.run();
  // 1000 frames span ~123 8KB blocks; everything else hits the cache or the
  // read-ahead.
  EXPECT_GT(fs.cache_hits(), 900u);
  EXPECT_LT(fs.cache_misses(), 130u);
}

TEST(Ufs, SequentialPerFrameLatencyAroundFractionOfMs) {
  Fixture f;
  UfsFilesystem fs{f.eng, f.disk};
  Time done = Time::never();
  const int kFrames = 1000;
  auto body = [&]() -> sim::Coro {
    for (int i = 0; i < kFrames; ++i) {
      co_await fs.read(static_cast<std::uint64_t>(i) * 1000, 1000);
      // Frame service pacing as in Table 4's methodology: the network send
      // happens between reads, giving read-ahead time to complete.
      co_await sim::Delay{f.eng, Time::us(700)};
    }
    done = f.eng.now();
  };
  body().detach();
  f.eng.run();
  const double per_frame_ms =
      done.to_ms() / kFrames - 0.7;  // subtract the pacing delay
  // Through UFS the filesystem cost per frame is a fraction of a ms
  // (Table 4 Expt I: ~1 ms total including the network leg).
  EXPECT_LT(per_frame_ms, 0.5);
  EXPECT_GT(per_frame_ms, 0.05);
}

TEST(Ufs, DropCachesForcesMisses) {
  Fixture f;
  UfsFilesystem fs{f.eng, f.disk};
  auto body = [&]() -> sim::Coro {
    co_await fs.read(0, 1000);
    co_await fs.read(0, 1000);  // hit
    fs.drop_caches();
    co_await fs.read(0, 1000);  // miss again
  };
  body().detach();
  f.eng.run();
  EXPECT_EQ(fs.cache_misses(), 2u);
  EXPECT_EQ(fs.cache_hits(), 1u);
}

TEST(Ufs, ReadSpanningTwoBlocks) {
  Fixture f;
  UfsFilesystem fs{f.eng, f.disk};
  auto body = [&]() -> sim::Coro {
    co_await fs.read(8192 - 500, 1000);  // straddles the block boundary
  };
  body().detach();
  f.eng.run();
  EXPECT_EQ(fs.cache_misses(), 2u);
}

TEST(DosFs, PerFrameReadAroundEightMs) {
  Fixture f;
  DosFilesystem fs{f.eng, f.disk};
  Time done = Time::never();
  const int kFrames = 200;
  auto body = [&]() -> sim::Coro {
    for (int i = 0; i < kFrames; ++i) {
      co_await fs.read(static_cast<std::uint64_t>(i) * 1000, 1000);
    }
    done = f.eng.now();
  };
  body().detach();
  f.eng.run();
  const double per_frame_ms = done.to_ms() / kFrames;
  // Table 4 Expt I, dosFs path: ~8 ms per 1000-byte frame.
  EXPECT_NEAR(per_frame_ms, 8.0, 1.0);
  EXPECT_EQ(fs.reads(), static_cast<std::uint64_t>(kFrames));
}

TEST(DosFs, NoCachingBetweenReads) {
  Fixture f;
  DosFilesystem fs{f.eng, f.disk};
  Time first = Time::never(), second = Time::never();
  auto body = [&]() -> sim::Coro {
    co_await fs.read(0, 1000);
    first = f.eng.now();
    co_await fs.read(0, 1000);  // identical read: same cost, no cache
    second = f.eng.now();
  };
  body().detach();
  f.eng.run();
  const double d1 = first.to_ms();
  const double d2 = second.to_ms() - first.to_ms();
  EXPECT_GT(d2, 0.5 * d1);  // no order-of-magnitude cache speedup
}

TEST(Filesystems, UfsBeatsDosfsByLargeFactor) {
  // The headline of Table 4 Expt I: same disk, same file, ~8x gap.
  Fixture ufs_f, dos_f;
  UfsFilesystem ufs{ufs_f.eng, ufs_f.disk};
  DosFilesystem dosfs{dos_f.eng, dos_f.disk};
  auto run_ufs = [&]() -> sim::Coro {
    for (int i = 0; i < 500; ++i) {
      co_await ufs.read(static_cast<std::uint64_t>(i) * 1000, 1000);
    }
  };
  auto run_dos = [&]() -> sim::Coro {
    for (int i = 0; i < 500; ++i) {
      co_await dosfs.read(static_cast<std::uint64_t>(i) * 1000, 1000);
    }
  };
  run_ufs().detach();
  run_dos().detach();
  const Time ufs_time = ufs_f.eng.run();
  const Time dos_time = dos_f.eng.run();
  EXPECT_GT(dos_time / ufs_time, 5.0);
}

TEST(Filesystems, PerCallOverheadChargesTheCallingProcess) {
  // The fs-overhead-as-CPU path: a producer reading through UFS must spend
  // its own process's CPU on the per-call overhead (and so contend for it
  // under load) rather than just waiting.
  sim::Engine eng;
  hw::ScsiDisk disk{eng};
  hostos::HostMachine host{eng, 1};
  UfsFilesystem fs{eng, disk};
  hostos::Process& proc = host.spawn("reader");
  auto body = [&]() -> sim::Coro {
    for (int i = 0; i < 100; ++i) {
      co_await fs.read(static_cast<std::uint64_t>(i) * 1000, 1000,
                       &host.scheduler(), &proc.thread());
    }
  };
  body().detach();
  eng.run();
  // 100 calls x 80 us of charged overhead (plus nothing else: the disk time
  // is device wait, not CPU).
  EXPECT_NEAR(proc.cpu_time().to_ms(), 100 * 0.08, 0.5);
  EXPECT_GT(host.scheduler().total_busy(), Time::ms(7));
}

TEST(Filesystems, DosFsChargesChainWalkToProcess) {
  sim::Engine eng;
  hw::ScsiDisk disk{eng};
  hostos::HostMachine host{eng, 1};
  DosFilesystem fs{eng, disk};
  hostos::Process& proc = host.spawn("reader");
  auto body = [&]() -> sim::Coro {
    for (int i = 0; i < 10; ++i) {
      co_await fs.read(static_cast<std::uint64_t>(i) * 1000, 1000,
                       &host.scheduler(), &proc.thread());
    }
  };
  body().detach();
  eng.run();
  // 10 x (2.6 ms FAT walk + 0.1 ms overhead) = 27 ms of process CPU.
  EXPECT_NEAR(proc.cpu_time().to_ms(), 27.0, 1.0);
}

}  // namespace
}  // namespace nistream::hostos
