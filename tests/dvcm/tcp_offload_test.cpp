// Tests for the TCP-offload DVCM extension: reliable delivery driven
// entirely through I2O instructions, over clean and lossy segments.
#include "dvcm/tcp_offload_extension.hpp"

#include <gtest/gtest.h>

#include "apps/media_server.hpp"

namespace nistream::dvcm {
namespace {

using sim::Time;

struct Fixture {
  hw::Calibration cal;
  sim::Engine eng;
  hw::PciBus bus{eng};
  std::unique_ptr<hw::EthernetSwitch> ether;
  std::unique_ptr<apps::NiSchedulerServer> server;
  TcpOffloadExtension* tcp = nullptr;
  std::vector<std::uint64_t> delivered;
  std::unique_ptr<net::TcpLiteReceiver> rx;

  explicit Fixture(double loss_rate = 0.0) {
    cal.ethernet.loss_rate = loss_rate;
    cal.ethernet.loss_seed = 21;
    ether = std::make_unique<hw::EthernetSwitch>(eng, cal.ethernet);
    server = std::make_unique<apps::NiSchedulerServer>(
        eng, bus, *ether, dvcm::StreamService::Config{}, cal);
    auto ext = std::make_unique<TcpOffloadExtension>(*ether);
    tcp = ext.get();
    server->runtime().load_extension(std::move(ext));
    rx = std::make_unique<net::TcpLiteReceiver>(
        eng, *ether, Time::us(100),
        [this](const net::Packet& p, Time) { delivered.push_back(p.seq); });
  }
};

TEST(TcpOffload, HostDrivenReliableSend) {
  Fixture f;
  std::uint64_t cid = 0, acked = 0;
  auto host = [&]() -> sim::Coro {
    hw::I2oMessage reply;
    co_await f.server->host_api().call(
        kTcpOpen, &reply, static_cast<std::uint64_t>(f.rx->port()));
    cid = reply.w0;
    for (std::uint64_t i = 0; i < 20; ++i) {
      auto req = std::make_shared<TcpSendRequest>();
      req->packet = net::Packet{.seq = i, .bytes = 900};
      co_await f.server->host_api().invoke(kTcpSend, cid, req);
    }
    co_await sim::Delay{f.eng, Time::ms(500)};
    co_await f.server->host_api().call(kTcpStatus, &reply, cid);
    acked = reply.w0;
  };
  host().detach();
  f.eng.run_until(Time::sec(2));
  EXPECT_EQ(cid, 1u);
  ASSERT_EQ(f.delivered.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(f.delivered[i], i);
  EXPECT_EQ(acked, 20u);
}

TEST(TcpOffload, RetransmitsOnLossyLinkWithoutHostInvolvement) {
  Fixture f{/*loss_rate=*/0.15};
  std::uint64_t retransmissions = 0;
  auto host = [&]() -> sim::Coro {
    hw::I2oMessage reply;
    co_await f.server->host_api().call(
        kTcpOpen, &reply, static_cast<std::uint64_t>(f.rx->port()));
    const auto cid = reply.w0;
    for (std::uint64_t i = 0; i < 60; ++i) {
      auto req = std::make_shared<TcpSendRequest>();
      req->packet = net::Packet{.seq = i, .bytes = 700};
      co_await f.server->host_api().invoke(kTcpSend, cid, req);
    }
    co_await sim::Delay{f.eng, Time::sec(5)};
    co_await f.server->host_api().call(kTcpStatus, &reply, cid);
    retransmissions = reply.w1;
  };
  host().detach();
  f.eng.run_until(Time::sec(10));
  // Exactly-once, in-order delivery despite the losses...
  ASSERT_EQ(f.delivered.size(), 60u);
  for (std::uint64_t i = 0; i < 60; ++i) ASSERT_EQ(f.delivered[i], i);
  // ...and the recovery work happened on the board.
  EXPECT_GT(retransmissions, 0u);
  EXPECT_GT(f.ether->frames_lost(), 0u);
}

TEST(TcpOffload, UnknownConnectionIgnored) {
  Fixture f;
  auto host = [&]() -> sim::Coro {
    auto req = std::make_shared<TcpSendRequest>();
    req->packet = net::Packet{.seq = 1, .bytes = 100};
    co_await f.server->host_api().invoke(kTcpSend, 999, req);
    hw::I2oMessage reply{.w0 = 123};
    co_await f.server->host_api().call(kTcpStatus, &reply, 999);
    EXPECT_EQ(reply.w0, 0u);
  };
  host().detach();
  f.eng.run_until(Time::ms(100));
  EXPECT_TRUE(f.delivered.empty());
}

TEST(TcpOffload, CoexistsWithMediaScheduler) {
  Fixture f;
  // Both extensions are live on the same board.
  EXPECT_EQ(f.server->runtime().extensions().size(), 2u);
  EXPECT_STREQ(f.server->runtime().extensions()[0]->name(),
               "dwcs-media-sched");
  EXPECT_STREQ(f.server->runtime().extensions()[1]->name(), "tcp-offload");
}

}  // namespace
}  // namespace nistream::dvcm
