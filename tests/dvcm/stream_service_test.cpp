// Tests for the stream-scheduling service and the DWCS DVCM extension: paced
// dispatch, memory accounting, host-driven stream setup, end-to-end frame
// delivery to a client.
#include "dvcm/stream_service.hpp"

#include <gtest/gtest.h>

#include "apps/client.hpp"
#include "apps/media_server.hpp"
#include "dvcm/dwcs_extension.hpp"

namespace nistream::dvcm {
namespace {

using sim::Time;

struct ServiceFixture {
  sim::Engine eng;
  hw::CpuModel cpu{hw::kI960Rd};
  hw::Calibration cal;
  hw::MemoryPool memory{4ull * 1024 * 1024};
  hw::EthernetSwitch ether{eng};
  rtos::WindKernel kernel{eng, cpu};
  StreamService service{eng, StreamService::Config{}, cpu, cal.ni_int,
                        cal.ni_softfp, &memory};
  apps::MpegClient client{eng, ether, net::kHostStackCost};
  net::UdpEndpoint ep{eng, ether, net::kNiStackCost,
                      net::UdpEndpoint::Receiver{}};
};

TEST(StreamService, PacedDispatchAtFramePeriod) {
  ServiceFixture f;
  const auto id = f.service.create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(20), .lossy = true},
      f.client.port());
  for (int i = 0; i < 10; ++i) f.service.enqueue(id, 1000, mpeg::FrameType::kP);
  rtos::Task& task = f.kernel.spawn("tSched", 50);
  f.service.run(task, f.ep).detach();
  f.eng.run_until(Time::ms(500));
  f.service.stop();
  // Paced at 20 ms: 10 frames in 200 ms, all delivered.
  EXPECT_EQ(f.service.dispatched(), 10u);
  EXPECT_EQ(f.client.frames_received(id), 10u);
  // Delivery instants spaced by the period.
  f.client.finish(Time::ms(500));
  EXPECT_EQ(f.client.total_frames(), 10u);
}

TEST(StreamService, SingleFrameCopyAccounting) {
  ServiceFixture f;
  const auto id = f.service.create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true},
      f.client.port());
  EXPECT_EQ(f.memory.used(), 0u);
  f.service.enqueue(id, 2000, mpeg::FrameType::kI);
  f.service.enqueue(id, 3000, mpeg::FrameType::kP);
  EXPECT_EQ(f.memory.used(), 5000u);  // one copy per queued frame
  rtos::Task& task = f.kernel.spawn("tSched", 50);
  f.service.run(task, f.ep).detach();
  f.eng.run_until(Time::ms(100));
  f.service.stop();
  EXPECT_EQ(f.memory.used(), 0u);  // released at dispatch
}

TEST(StreamService, MemoryExhaustionRejectsFrames) {
  ServiceFixture f;
  hw::MemoryPool tiny{3000};
  StreamService svc{f.eng, StreamService::Config{}, f.cpu, f.cal.ni_int,
                    f.cal.ni_softfp, &tiny};
  const auto id = svc.create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true}, 0);
  EXPECT_TRUE(svc.enqueue(id, 2000, mpeg::FrameType::kI));
  EXPECT_FALSE(svc.enqueue(id, 2000, mpeg::FrameType::kP));  // pool exhausted
  EXPECT_EQ(svc.rejected_no_memory(), 1u);
  EXPECT_EQ(tiny.used(), 2000u);
}

TEST(StreamService, RingFullRejection) {
  ServiceFixture f;
  StreamService::Config cfg;
  cfg.scheduler.ring_capacity = 2;
  StreamService svc{f.eng, cfg, f.cpu, f.cal.ni_int, f.cal.ni_softfp, nullptr};
  const auto id = svc.create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true}, 0);
  EXPECT_TRUE(svc.enqueue(id, 100, mpeg::FrameType::kP));
  EXPECT_TRUE(svc.enqueue(id, 100, mpeg::FrameType::kP));
  EXPECT_FALSE(svc.enqueue(id, 100, mpeg::FrameType::kP));
  EXPECT_EQ(svc.rejected_ring_full(), 1u);
}

TEST(StreamService, QueuingDelayRecorded) {
  ServiceFixture f;
  const auto id = f.service.create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true},
      f.client.port());
  for (int i = 0; i < 5; ++i) f.service.enqueue(id, 1000, mpeg::FrameType::kP);
  rtos::Task& task = f.kernel.spawn("tSched", 50);
  f.service.run(task, f.ep).detach();
  f.eng.run_until(Time::ms(200));
  f.service.stop();
  const auto& q = f.service.queuing_delay(id);
  ASSERT_EQ(q.size(), 5u);
  // Paced dispatch: frame k leaves at ~(k+1)*10 ms after enqueue at ~0.
  for (std::size_t k = 0; k < q.size(); ++k) {
    EXPECT_EQ(q[k].first, k + 1);
    EXPECT_NEAR(q[k].second, 10.0 * static_cast<double>(k + 1), 1.0);
  }
}

TEST(StreamService, TraceRecordsLifecycle) {
  ServiceFixture f;
  sim::Trace trace;
  f.service.set_trace(sim::TraceSink{&trace});
  const auto id = f.service.create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true},
      f.client.port());
  for (int i = 0; i < 4; ++i) f.service.enqueue(id, 1000, mpeg::FrameType::kP);
  rtos::Task& task = f.kernel.spawn("tSched", 50);
  f.service.run(task, f.ep).detach();
  f.eng.run_until(Time::ms(100));
  f.service.stop();
  EXPECT_EQ(trace.count("dwcs", "enqueue"), 4u);
  EXPECT_EQ(trace.count("dwcs", "dispatch"), 4u);
  EXPECT_EQ(trace.count("dwcs", "reject-ring"), 0u);
}

// Full-stack DVCM test: host creates a stream via the instruction set, a
// host producer enqueues frames via I2O, the client receives them.
TEST(DwcsExtension, HostDrivenEndToEnd) {
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  apps::NiSchedulerServer server{eng, bus, ether};
  apps::MpegClient client{eng, ether};

  dwcs::StreamId sid = dwcs::kInvalidStream;
  auto host_app = [&]() -> sim::Coro {
    auto req = std::make_shared<CreateStreamRequest>();
    req->params = {.tolerance = {1, 4}, .period = Time::ms(20), .lossy = true};
    req->client_port = client.port();
    hw::I2oMessage reply;
    co_await server.host_api().call(kDwcsCreateStream, &reply, 0, req);
    sid = static_cast<dwcs::StreamId>(reply.w0);
    for (int i = 0; i < 8; ++i) {
      auto fr = std::make_shared<EnqueueFrameRequest>();
      fr->bytes = 1000;
      fr->type = mpeg::FrameType::kP;
      co_await server.host_api().invoke(kDwcsEnqueueFrame, sid, fr);
    }
  };
  host_app().detach();
  eng.run_until(Time::sec(1));
  EXPECT_EQ(sid, 0u);
  EXPECT_EQ(client.frames_received(sid), 8u);
  EXPECT_EQ(server.service().scheduler().stats(sid).serviced_on_time, 8u);
}

TEST(DwcsExtension, QueryStatsInstruction) {
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  apps::NiSchedulerServer server{eng, bus, ether};
  apps::MpegClient client{eng, ether};

  const auto sid = server.service().create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true},
      client.port());
  server.service().enqueue(sid, 1500, mpeg::FrameType::kI);
  eng.run_until(Time::ms(100));

  hw::I2oMessage reply;
  bool done = false;
  auto host_app = [&]() -> sim::Coro {
    co_await server.host_api().call(kDwcsQueryStats, &reply, sid);
    done = true;
  };
  host_app().detach();
  eng.run_until(Time::ms(200));
  ASSERT_TRUE(done);
  EXPECT_EQ(reply.w0, 1500u);  // bytes sent
  EXPECT_EQ(reply.w1, 1u);     // serviced on time
}

}  // namespace
}  // namespace nistream::dvcm
