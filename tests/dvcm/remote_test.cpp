// Tests for remote DVCM invocation: NI-to-NI instruction transport across
// the cluster interconnect — the distributed stream path of §1.
#include "dvcm/remote.hpp"

#include <gtest/gtest.h>

#include "apps/client.hpp"
#include "apps/media_server.hpp"
#include "dvcm/dwcs_extension.hpp"

namespace nistream::dvcm {
namespace {

using sim::Time;

struct ClusterFixture {
  hw::Calibration cal;
  sim::Engine eng;
  hw::PciBus sched_bus{eng};
  hw::EthernetSwitch ether{eng};
  // Scheduler node: the board running DWCS.
  apps::NiSchedulerServer sched_node{eng, sched_bus, ether,
                                     dvcm::StreamService::Config{}, cal};
  // Its DVCM listens on the cluster interconnect too.
  RemoteVcmPort remote_port{sched_node.runtime(), ether,
                            cal.ethernet.stack_traversal};
  // Producer node: a separate board on its own PCI segment.
  hw::PciBus prod_bus{eng};
  hw::NicBoard producer_board{"producer-node", eng, prod_bus, ether,
                              [](const hw::EthFrame&) {}};
  RemoteVcmClient remote_client{eng, ether, cal.ethernet.stack_traversal};
  apps::MpegClient client{eng, ether};
};

TEST(RemoteVcm, InstructionCrossesTheInterconnect) {
  ClusterFixture f;
  std::uint64_t got = 0;
  f.sched_node.runtime().registry().add(
      kExtensionBase + 0x700, [&](const hw::I2oMessage& m) { got = m.w0; });
  f.remote_client.invoke(f.remote_port.port(), kExtensionBase + 0x700, 4242,
                         nullptr);
  f.eng.run_until(Time::ms(50));
  EXPECT_EQ(got, 4242u);
  EXPECT_EQ(f.remote_port.dispatched(), 1u);
  EXPECT_EQ(f.remote_client.sent(), 1u);
}

TEST(RemoteVcm, UnknownInstructionCounted) {
  ClusterFixture f;
  f.remote_client.invoke(f.remote_port.port(), 0xBAD0, 0, nullptr);
  f.eng.run_until(Time::ms(50));
  EXPECT_EQ(f.remote_port.unknown_instructions(), 1u);
}

TEST(RemoteVcm, PayloadTravelsIntact) {
  ClusterFixture f;
  std::uint64_t sum = 0;
  f.sched_node.runtime().registry().add(
      kExtensionBase + 0x701, [&](const hw::I2oMessage& m) {
        sum += *std::static_pointer_cast<std::uint64_t>(m.payload);
      });
  for (std::uint64_t i = 1; i <= 10; ++i) {
    f.remote_client.invoke(f.remote_port.port(), kExtensionBase + 0x701, 0,
                           std::make_shared<std::uint64_t>(i));
  }
  f.eng.run_until(Time::ms(100));
  EXPECT_EQ(sum, 55u);
}

// The §1 distributed-stream claim: a producer node feeds the scheduler
// node's DWCS extension over the network; frames reach the client and no
// host CPU anywhere touches a byte.
TEST(RemoteVcm, NetworkProducerFeedsRemoteScheduler) {
  ClusterFixture f;
  const auto sid = f.sched_node.service().create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(20), .lossy = true},
      f.client.port());

  // Producer task on the producer board: read frames from its local disk,
  // push each across the interconnect as a remote kDwcsEnqueueFrame.
  rtos::WindKernel producer_kernel{f.eng, f.producer_board.cpu()};
  rtos::Task& task = producer_kernel.spawn("tNetProd", 100);
  constexpr int kFrames = 25;
  auto producer = [&]() -> sim::Coro {
    for (int i = 0; i < kFrames; ++i) {
      co_await f.producer_board.disk(0).read(
          static_cast<std::uint64_t>(i) * 100'000, 1000);
      co_await task.consume_cycles(900);
      auto fr = std::make_shared<EnqueueFrameRequest>();
      fr->bytes = 1000;
      fr->type = mpeg::FrameType::kP;
      f.remote_client.invoke(f.remote_port.port(), kDwcsEnqueueFrame, sid, fr,
                             /*bulk_bytes=*/1000);
    }
  };
  producer().detach();
  f.eng.run_until(Time::sec(3));

  EXPECT_EQ(f.client.frames_received(sid), static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(f.remote_port.dispatched(), static_cast<std::uint64_t>(kFrames));
  // Traffic elimination: neither PCI segment carried frame data (the frames
  // entered the scheduler NI from the network and left on its other port).
  EXPECT_EQ(f.sched_bus.bytes_moved(), 0u);
  EXPECT_EQ(f.prod_bus.bytes_moved(), 0u);
}

TEST(RemoteVcm, RemoteAndI2oPathsCoexist) {
  ClusterFixture f;
  const auto sid = f.sched_node.service().create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true},
      f.client.port());
  // One frame via the host's I2O path...
  auto host = [&]() -> sim::Coro {
    auto fr = std::make_shared<EnqueueFrameRequest>();
    fr->bytes = 500;
    fr->type = mpeg::FrameType::kI;
    co_await f.sched_node.host_api().invoke(kDwcsEnqueueFrame, sid, fr);
  };
  host().detach();
  // ...and one via the interconnect.
  auto fr = std::make_shared<EnqueueFrameRequest>();
  fr->bytes = 700;
  fr->type = mpeg::FrameType::kP;
  f.remote_client.invoke(f.remote_port.port(), kDwcsEnqueueFrame, sid, fr, 700);
  f.eng.run_until(Time::ms(200));
  EXPECT_EQ(f.client.frames_received(sid), 2u);
  EXPECT_EQ(f.client.total_bytes(), 1200u);
}

// Over a degraded interconnect segment, the raw path loses instructions;
// the TcpLite-backed path delivers every one, exactly once and in order.
TEST(RemoteVcm, ReliableVariantSurvivesLossyInterconnect) {
  hw::Calibration cal;
  cal.ethernet.loss_rate = 0.15;
  cal.ethernet.loss_seed = 33;
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng, cal.ethernet};
  apps::NiSchedulerServer sched_node{eng, bus, ether,
                                     dvcm::StreamService::Config{}, cal};
  ReliableRemoteVcmPort port{sched_node.runtime(), ether,
                             cal.ethernet.stack_traversal};
  ReliableRemoteVcmClient client{eng, ether, cal.ethernet.stack_traversal,
                                 port.port()};
  std::vector<std::uint64_t> got;
  sched_node.runtime().registry().add(
      kExtensionBase + 0x702,
      [&](const hw::I2oMessage& m) { got.push_back(m.w0); });
  constexpr std::uint64_t kCount = 80;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    client.invoke(kExtensionBase + 0x702, i, nullptr, 500);
  }
  eng.run_until(Time::sec(20));
  ASSERT_EQ(got.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_EQ(got[i], i);
  EXPECT_GT(client.transport().retransmissions(), 0u);
  EXPECT_GT(ether.frames_lost(), 0u);
  EXPECT_EQ(port.dispatched(), kCount);
}

}  // namespace
}  // namespace nistream::dvcm
