// Tests for the DVCM: instruction registry, NI runtime dispatch, host API
// call/reply, and run-time extension loading.
#include "dvcm/runtime.hpp"

#include <gtest/gtest.h>

#include "dvcm/host_api.hpp"

namespace nistream::dvcm {
namespace {

using sim::Time;

struct Fixture {
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  hw::NicBoard board{"ni0", eng, bus, ether, [](const hw::EthFrame&) {}};
  rtos::WindKernel kernel{eng, board.cpu()};
  VcmRuntime runtime{board, kernel};
  VcmHostApi api{eng, board.i2o()};
};

TEST(Registry, DispatchByOpcode) {
  InstructionRegistry reg;
  int hits = 0;
  reg.add(42, [&](const hw::I2oMessage&) { ++hits; });
  EXPECT_TRUE(reg.contains(42));
  EXPECT_FALSE(reg.contains(43));
  EXPECT_TRUE(reg.dispatch(hw::I2oMessage{.function = 42}));
  EXPECT_FALSE(reg.dispatch(hw::I2oMessage{.function = 43}));
  EXPECT_EQ(hits, 1);
}

TEST(Runtime, ExecutesPostedInstructions) {
  Fixture f;
  f.runtime.start();
  std::uint64_t got = 0;
  f.runtime.registry().add(kExtensionBase + 7,
                           [&](const hw::I2oMessage& m) { got = m.w0; });
  auto host = [&]() -> sim::Coro {
    co_await f.api.invoke(kExtensionBase + 7, /*w0=*/1234);
  };
  host().detach();
  f.eng.run();
  EXPECT_EQ(got, 1234u);
  EXPECT_EQ(f.runtime.dispatched(), 1u);
}

TEST(Runtime, UnknownInstructionCounted) {
  Fixture f;
  f.runtime.start();
  auto host = [&]() -> sim::Coro {
    co_await f.api.invoke(0xDEAD);
  };
  host().detach();
  f.eng.run();
  EXPECT_EQ(f.runtime.unknown_instructions(), 1u);
}

TEST(Runtime, PingRoundTrip) {
  Fixture f;
  f.runtime.start();
  hw::I2oMessage reply;
  bool done = false;
  auto host = [&]() -> sim::Coro {
    co_await f.api.call(kPing, &reply, 77, nullptr, nullptr, /*w1=*/88);
    done = true;
  };
  host().detach();
  f.eng.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(reply.w0, 77u);
  EXPECT_EQ(reply.w1, 88u);
  EXPECT_EQ(reply.function, kPing | kReplyFlag);
}

TEST(Runtime, CallsChargeNiCpuTime) {
  Fixture f;
  f.runtime.start();
  auto host = [&]() -> sim::Coro {
    for (int i = 0; i < 10; ++i) {
      co_await f.api.invoke(kNop);
    }
  };
  host().detach();
  f.eng.run();
  // The dispatch task consumed NI CPU for each message.
  EXPECT_GT(f.kernel.ni_cpu_busy(), Time::zero());
  EXPECT_EQ(f.runtime.dispatched(), 10u);
}

TEST(Runtime, ConcurrentCallsDemultiplex) {
  Fixture f;
  f.runtime.start();
  hw::I2oMessage r1, r2;
  int done = 0;
  auto c1 = [&]() -> sim::Coro {
    co_await f.api.call(kPing, &r1, 1);
    ++done;
  };
  auto c2 = [&]() -> sim::Coro {
    co_await f.api.call(kPing, &r2, 2);
    ++done;
  };
  c1().detach();
  c2().detach();
  f.eng.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(r1.w0, 1u);
  EXPECT_EQ(r2.w0, 2u);
}

struct TestExtension final : ExtensionModule {
  int* installs;
  explicit TestExtension(int* n) : installs{n} {}
  const char* name() const override { return "test-ext"; }
  void install(VcmRuntime& rt) override {
    ++*installs;
    rt.registry().add(kExtensionBase + 100, [](const hw::I2oMessage&) {});
  }
};

TEST(Runtime, ExtensionLoadingRegistersInstructions) {
  Fixture f;
  f.runtime.start();
  int installs = 0;
  f.runtime.load_extension(std::make_unique<TestExtension>(&installs));
  EXPECT_EQ(installs, 1);
  EXPECT_TRUE(f.runtime.registry().contains(kExtensionBase + 100));
  ASSERT_EQ(f.runtime.extensions().size(), 1u);
  EXPECT_STREQ(f.runtime.extensions()[0]->name(), "test-ext");

  hw::I2oMessage reply;
  auto host = [&]() -> sim::Coro {
    co_await f.api.call(kListExtensions, &reply);
  };
  host().detach();
  f.eng.run();
  EXPECT_EQ(reply.w0, 1u);
}

}  // namespace
}  // namespace nistream::dvcm
