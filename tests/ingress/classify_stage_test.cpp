// ClassifyStage composition into FramePath (tiling, tenant stamping, stream
// rebinding, cycle charging) and IngressDemux verdict routing off the wire.
#include "ingress/classify_stage.hpp"

#include <gtest/gtest.h>

#include "hw/calibration.hpp"
#include "ingress/demux.hpp"
#include "path/frame_path.hpp"

namespace nistream::ingress {
namespace {

using sim::Time;

struct StageRig {
  sim::Engine eng;
  hw::CpuModel cpu{hw::kI960Rd};
  rtos::WindKernel kernel{eng, cpu};
  rtos::Task& task{kernel.spawn("tClassify", 100)};
  FlowTable table;
};

TEST(ClassifyStage, StampsTenantAndRebindsStream) {
  StageRig rig;
  const auto cat = rig.table.add_category(kMatchFullTuple, 8);
  ASSERT_TRUE(rig.table.insert(cat, flow_key_of(2, 7), 2, 7));

  path::FramePath p{rig.eng, "classify"};
  p.stage<ClassifyStage<rtos::Task>>(rig.task, rig.table);
  path::StagedFrame f;
  f.tenant = 2;
  f.stream = 7;  // claimed identity renders to the installed key
  auto run = [&]() -> sim::Coro { co_await p.run_frame(f, nullptr); };
  run().detach();
  rig.eng.run();

  ASSERT_EQ(f.stage_count, 1u);
  EXPECT_GT(f.samples[0].duration(), Time::zero());  // cycles were charged
  EXPECT_EQ(f.tenant, 2u);
  EXPECT_EQ(f.stream, 7u);
  const auto* stage =
      dynamic_cast<const ClassifyStage<rtos::Task>*>(&p.stage_at(0));
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->stats().classified, 1u);
  EXPECT_EQ(stage->stats().unbound, 0u);
}

TEST(ClassifyStage, UnmatchedFrameIsUnboundNotRebound) {
  StageRig rig;
  rig.table.add_category(kMatchFullTuple, 8);  // empty table

  path::FramePath p{rig.eng, "classify"};
  p.stage<ClassifyStage<rtos::Task>>(rig.task, rig.table);
  path::StagedFrame f;
  f.tenant = 5;
  f.stream = 123;
  auto run = [&]() -> sim::Coro { co_await p.run_frame(f, nullptr); };
  run().detach();
  rig.eng.run();

  EXPECT_EQ(f.stream, 123u);  // miss never rebinds
  EXPECT_EQ(f.tenant, 0u);    // miss decision carries the default tenant
  const auto* stage =
      dynamic_cast<const ClassifyStage<rtos::Task>*>(&p.stage_at(0));
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->stats().unbound, 1u);
}

TEST(ClassifyStage, TilingHoldsWithClassifyInThePipeline) {
  StageRig rig;
  const auto cat = rig.table.add_category(kMatchFullTuple, 8);
  ASSERT_TRUE(rig.table.insert(cat, flow_key_of(1, 3), 1, 3));

  path::FramePath p{rig.eng, "classify+seg"};
  p.stage<ClassifyStage<rtos::Task>>(rig.task, rig.table)
      .stage<path::SegmentStage<rtos::Task>>(rig.task, 900);
  path::StagedFrame f;
  f.tenant = 1;
  f.stream = 3;
  f.bytes = 1000;
  auto run = [&]() -> sim::Coro { co_await p.run_frame(f, nullptr); };
  run().detach();
  rig.eng.run();

  ASSERT_EQ(f.stage_count, 2u);
  EXPECT_EQ(f.samples[0].start, f.created_at);
  EXPECT_EQ(f.samples[0].end, f.samples[1].start);
  EXPECT_EQ(f.samples[1].end, f.completed_at);
  EXPECT_EQ(f.staged_total(), f.completed_at - f.created_at);
}

struct DemuxRig {
  sim::Engine eng;
  hw::Calibration cal;
  hw::EthernetSwitch ether{eng, cal.ethernet};
  hw::CpuModel cpu{hw::kI960Rd};
  rtos::WindKernel kernel{eng, cpu, cal.rtos};
  dvcm::StreamService svc{eng, {}, cpu, cal.ni_int, cal.ni_softfp, nullptr};
  FlowTable table;
  IngressDemux demux{eng, ether, kernel, table, svc};
  net::UdpEndpoint tx{eng, ether, net::kHostStackCost,
                      net::UdpEndpoint::Receiver{}};

  void send(TenantId tenant, dwcs::StreamId stream, std::uint32_t bytes) {
    net::Packet p;
    p.stream_id = pack_flow(tenant, stream);
    p.bytes = bytes;
    tx.send(demux.port(), p);
  }
};

TEST(IngressDemux, ExactMatchDeliversToTheRing) {
  DemuxRig rig;
  const auto cat = rig.table.add_category(kMatchFullTuple, 8);
  const auto id = rig.svc.create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true}, 0);
  ASSERT_TRUE(rig.table.insert(cat, flow_key_of(1, id), 1, id));

  rig.send(1, id, 500);
  rig.send(1, id, 500);
  rig.eng.run();

  EXPECT_EQ(rig.demux.stats().received, 2u);
  EXPECT_EQ(rig.demux.stats().delivered, 2u);
  EXPECT_EQ(rig.demux.tenant_counters(1).delivered, 2u);
  EXPECT_EQ(rig.svc.scheduler().backlog(id), 2u);
}

TEST(IngressDemux, PrefixFloodIsAttributedAndDropped) {
  DemuxRig rig;
  rig.table.add_category(kMatchFullTuple, 8);
  ASSERT_TRUE(rig.table.insert_prefix(tenant_prefix_of(2), 16, 2));

  for (int i = 0; i < 5; ++i) rig.send(2, 1000 + i, 100);
  rig.send(7, 0, 100);  // nobody's address block
  rig.eng.run();

  EXPECT_EQ(rig.demux.stats().dropped_attributed, 5u);
  EXPECT_EQ(rig.demux.stats().dropped_unmatched, 1u);
  EXPECT_EQ(rig.demux.stats().delivered, 0u);
  EXPECT_EQ(rig.demux.tenant_counters(2).dropped, 5u);
}

TEST(IngressDemux, DropRuleQuarantinesOneFlow) {
  DemuxRig rig;
  const auto cat = rig.table.add_category(kMatchFullTuple, 8);
  const auto id = rig.svc.create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true}, 0);
  ASSERT_TRUE(rig.table.insert(cat, flow_key_of(1, id), 1, id,
                               /*drop=*/true));

  rig.send(1, id, 100);
  rig.eng.run();

  EXPECT_EQ(rig.demux.stats().dropped_rule, 1u);
  EXPECT_EQ(rig.demux.stats().delivered, 0u);
  EXPECT_EQ(rig.svc.scheduler().backlog(id), 0u);
}

}  // namespace
}  // namespace nistream::ingress
