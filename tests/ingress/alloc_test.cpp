// Allocation audit for the classification fast path. After the control
// plane builds the FlowTable (categories sized, rules and prefixes
// installed — all of that may allocate), classify() must hit the global
// heap ZERO times across hundreds of thousands of lookups spanning exact
// hits, trie hits, and misses. Same counting-operator-new technique as the
// datapath audit in tests/path/alloc_free_test.cpp.
//
// Under ASan/TSan the sanitizer owns the allocator, so the shim is compiled
// out and the test degrades to exercising the same lookup mix.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "ingress/flow_table.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define NISTREAM_COUNTING_NEW 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define NISTREAM_COUNTING_NEW 0
#else
#define NISTREAM_COUNTING_NEW 1
#endif
#else
#define NISTREAM_COUNTING_NEW 1
#endif

#if NISTREAM_COUNTING_NEW

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t n) {
  ++g_heap_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t) {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, std::align_val_t) {
  return counted_alloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // NISTREAM_COUNTING_NEW

namespace nistream::ingress {
namespace {

TEST(IngressAllocFree, ClassifyNeverTouchesTheHeap) {
  constexpr std::size_t kFlows = 10'000;
  constexpr std::size_t kPrefixes = 64;
  constexpr std::size_t kLookups = 200'000;

  FlowTable table;
  const auto full = table.add_category(kMatchFullTuple, kFlows);
  const auto host =
      table.add_category(kMatchSrcIp | kMatchDstIp | kMatchProto, kFlows / 2);
  // Odd streams get per-stream source hosts (the host-pair category ignores
  // ports, so the address must carry the distinction); even streams use the
  // canonical key in the full-tuple category.
  const auto key_for = [](dwcs::StreamId s) {
    const TenantId tenant = 1 + (s & 3u);
    FlowKey k = flow_key_of(tenant, s);
    if (s % 2 != 0) k.src_ip = tenant_prefix_of(tenant) | (s & 0xFFFFu);
    return k;
  };
  for (dwcs::StreamId s = 0; s < kFlows; ++s) {
    const TenantId tenant = 1 + (s & 3u);
    ASSERT_TRUE(table.insert(s % 2 == 0 ? full : host, key_for(s), tenant, s));
  }
  for (std::size_t i = 0; i < kPrefixes; ++i) {
    ASSERT_TRUE(table.insert_prefix(
        tenant_prefix_of(static_cast<TenantId>(8 + i)), 16,
        static_cast<TenantId>(8 + i)));
  }

  // Pre-render the key mix so the loop body is classify() and nothing else.
  std::vector<FlowKey> keys;
  keys.reserve(1024);
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < 1024; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const auto roll = rng >> 56;  // 8-bit: ~10% trie, ~10% miss, ~80% exact
    if (roll < 26) {
      FlowKey k = flow_key_of(static_cast<TenantId>(8 + (rng & 63)), 0);
      k.src_ip |= (rng >> 8) & 0xFFFF;  // inside a ruled /16, no exact rule
      keys.push_back(k);
    } else if (roll < 52) {
      keys.push_back(flow_key_of(200, 1 << 20));  // unmatched
    } else {
      keys.push_back(key_for(static_cast<dwcs::StreamId>(rng % kFlows)));
    }
  }

#if NISTREAM_COUNTING_NEW
  const std::uint64_t before = g_heap_allocs.load();
#endif
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < kLookups; ++i) {
    delivered += table.classify(keys[i & 1023]).match == Match::kExact;
  }
#if NISTREAM_COUNTING_NEW
  EXPECT_EQ(g_heap_allocs.load() - before, 0u)
      << "classification fast path allocated";
#endif

  EXPECT_EQ(table.stats().lookups, kLookups);
  EXPECT_GT(delivered, kLookups / 2);        // the exact-hit bulk
  EXPECT_GT(table.stats().trie_hits, 0u);    // trie fallback exercised
  EXPECT_GT(table.stats().misses, 0u);       // default-drop exercised
}

}  // namespace
}  // namespace nistream::ingress
