// FlowTable unit tests: tuple-space search semantics (masked categories,
// probe order), the longest-prefix trie fallback, the default-drop verdict,
// and the fixed-capacity discipline (inserts fail, tables never grow).
#include "ingress/flow_table.hpp"

#include <gtest/gtest.h>

namespace nistream::ingress {
namespace {

TEST(FlowTable, RecordStaysTwoPerCacheLine) {
  static_assert(sizeof(FlowRecord) == 32);
  SUCCEED();
}

TEST(FlowTable, ExactMatchRoundTrip) {
  FlowTable t;
  const auto cat = t.add_category(kMatchFullTuple, 16);
  const FlowKey k = flow_key_of(3, 41);
  ASSERT_TRUE(t.insert(cat, k, /*tenant=*/3, /*stream=*/41));

  const Decision d = t.classify(k);
  EXPECT_EQ(d.match, Match::kExact);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.tenant, 3u);
  EXPECT_EQ(d.stream, 41u);
  EXPECT_EQ(d.category, cat);
  EXPECT_GE(d.probes, 1u);
  EXPECT_EQ(t.hits(cat, k), 1u);
}

TEST(FlowTable, MaskedCategoryIgnoresWildcardFields) {
  FlowTable t;
  // Category keyed on (src_ip, proto) only: any ports / dst match.
  const auto cat = t.add_category(kMatchSrcIp | kMatchProto, 8);
  FlowKey rule = flow_key_of(1, 7);
  ASSERT_TRUE(t.insert(cat, rule, 1, 7));

  FlowKey probe = rule;
  probe.src_port = 9999;   // wildcard within this category
  probe.dst_ip = 0x01020304;
  EXPECT_EQ(t.classify(probe).match, Match::kExact);

  probe.src_ip ^= 1;       // masked field differs → miss
  EXPECT_EQ(t.classify(probe).match, Match::kMiss);
}

TEST(FlowTable, CategoriesProbeInAddOrder) {
  FlowTable t;
  const auto specific = t.add_category(kMatchFullTuple, 8);
  const auto broad = t.add_category(kMatchSrcIp, 8);
  const FlowKey k = flow_key_of(2, 5);
  ASSERT_TRUE(t.insert(specific, k, 2, 5));
  ASSERT_TRUE(t.insert(broad, k, 2, 999));  // same src_ip, coarser rule

  // Most specific category was added first, so it wins.
  EXPECT_EQ(t.classify(k).stream, 5u);

  // A key matching only the broad category falls through to it.
  FlowKey other = k;
  other.src_port ^= 1;
  const Decision d = t.classify(other);
  EXPECT_EQ(d.match, Match::kExact);
  EXPECT_EQ(d.stream, 999u);
  EXPECT_EQ(d.category, broad);
}

TEST(FlowTable, TrieLongestPrefixWins) {
  FlowTable t;
  ASSERT_TRUE(t.insert_prefix(tenant_prefix_of(1), 16, /*tenant=*/1));
  // A nested, more specific /24 owned by tenant 2.
  ASSERT_TRUE(t.insert_prefix(tenant_prefix_of(1) | 0x4200, 24, 2));

  FlowKey in24 = flow_key_of(1, 0);
  in24.src_ip = tenant_prefix_of(1) | 0x4217;
  const Decision deep = t.classify(in24);
  EXPECT_EQ(deep.match, Match::kPrefix);
  EXPECT_EQ(deep.tenant, 2u);
  EXPECT_EQ(deep.prefix_len, 24u);
  EXPECT_TRUE(deep.drop);
  EXPECT_EQ(deep.category, Decision::kTrieCategory);

  FlowKey in16 = in24;
  in16.src_ip = tenant_prefix_of(1) | 0x1111;
  const Decision shallow = t.classify(in16);
  EXPECT_EQ(shallow.tenant, 1u);
  EXPECT_EQ(shallow.prefix_len, 16u);
}

TEST(FlowTable, ExactBeatsPrefix) {
  FlowTable t;
  const auto cat = t.add_category(kMatchFullTuple, 8);
  const FlowKey k = flow_key_of(4, 10);
  ASSERT_TRUE(t.insert(cat, k, 4, 10));
  ASSERT_TRUE(t.insert_prefix(tenant_prefix_of(4), 16, 4));

  EXPECT_EQ(t.classify(k).match, Match::kExact);
  FlowKey cousin = k;
  cousin.src_port ^= 1;  // same /16, no exact rule
  EXPECT_EQ(t.classify(cousin).match, Match::kPrefix);
}

TEST(FlowTable, MissDefaultsToDrop) {
  FlowTable t;
  t.add_category(kMatchFullTuple, 8);
  const Decision d = t.classify(flow_key_of(9, 9));
  EXPECT_EQ(d.match, Match::kMiss);
  EXPECT_TRUE(d.drop);
  EXPECT_EQ(d.stream, dwcs::kInvalidStream);
  EXPECT_EQ(d.category, Decision::kMissCategory);
  EXPECT_EQ(t.stats().misses, 1u);
}

TEST(FlowTable, CapacityAndDuplicatesBoundInserts) {
  FlowTable t;
  const auto cat = t.add_category(kMatchFullTuple, 4);
  for (dwcs::StreamId s = 0; s < 4; ++s) {
    ASSERT_TRUE(t.insert(cat, flow_key_of(1, s), 1, s));
  }
  EXPECT_FALSE(t.insert(cat, flow_key_of(1, 100), 1, 100));  // at capacity
  EXPECT_EQ(t.installed(cat), 4u);

  FlowTable t2;
  const auto c2 = t2.add_category(kMatchFullTuple, 4);
  ASSERT_TRUE(t2.insert(c2, flow_key_of(1, 0), 1, 0));
  EXPECT_FALSE(t2.insert(c2, flow_key_of(1, 0), 1, 7));  // duplicate key
  EXPECT_EQ(t2.installed(c2), 1u);
}

TEST(FlowTable, TriePoolsAreFixedCapacity) {
  FlowTable t{{.trie_nodes = 4096, .trie_rules = 2}};
  ASSERT_TRUE(t.insert_prefix(tenant_prefix_of(1), 16, 1));
  ASSERT_TRUE(t.insert_prefix(tenant_prefix_of(2), 16, 2));
  EXPECT_FALSE(t.insert_prefix(tenant_prefix_of(3), 16, 3));  // rules full
  EXPECT_FALSE(t.insert_prefix(tenant_prefix_of(1), 16, 9));  // duplicate
  EXPECT_EQ(t.prefix_rules(), 2u);

  FlowTable tiny{{.trie_nodes = 4, .trie_rules = 16}};
  // Deep prefix needs more nodes than the pool holds.
  EXPECT_FALSE(tiny.insert_prefix(0x0A000000, 24, 1));
}

TEST(FlowTable, StatsCountProbesAndHits) {
  FlowTable t;
  const auto cat = t.add_category(kMatchFullTuple, 8);
  const FlowKey k = flow_key_of(1, 1);
  ASSERT_TRUE(t.insert(cat, k, 1, 1));
  (void)t.classify(k);
  (void)t.classify(k);
  (void)t.classify(flow_key_of(8, 8));
  const auto& s = t.stats();
  EXPECT_EQ(s.lookups, 3u);
  EXPECT_EQ(s.exact_hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_GE(s.probes, 3u);
  EXPECT_GE(s.max_probes, 1u);
  EXPECT_EQ(t.hits(cat, k), 2u);
}

}  // namespace
}  // namespace nistream::ingress
