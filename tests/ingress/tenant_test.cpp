// Multi-tenant session plane: URI → tenant resolution, per-tenant admission
// budgets riding on top of the global controller, (tenant, stream) monitor
// keying, and budget release on teardown. Runs a full SessionServer so the
// tenant path is exercised end to end through RTSP.
#include "ingress/tenant.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/client.hpp"
#include "session/client.hpp"
#include "session/server.hpp"

namespace nistream::ingress {
namespace {

using sim::Time;
using session::Method;
using session::MessageBuffer;
using session::RtspRequest;
using session::RtspResponse;
using session::SessionServer;

TEST(TenantScope, UriParsingGoldens) {
  EXPECT_EQ(tenant_from_uri("rtsp://ni/acme/movie"), "acme");
  EXPECT_EQ(tenant_from_uri("rtsp://ni/acme/dir/movie"), "acme");
  EXPECT_EQ(tenant_from_uri("rtsp://ni/stream"), "");    // legacy single-seg
  EXPECT_EQ(tenant_from_uri("rtsp://ni/acme/"), "");     // no second segment
  EXPECT_EQ(tenant_from_uri("rtsp://ni//x"), "");        // empty first segment
  EXPECT_EQ(tenant_from_uri("rtsp://ni"), "");
  EXPECT_EQ(tenant_from_uri("/alpha/movie"), "alpha");   // scheme-less
  EXPECT_EQ(tenant_from_uri(""), "");
}

TEST(TenantScope, DirectoryResolvesAndEnforcesShares) {
  TenantDirectory dir{{{"alpha", {.link_share = 0.5, .cpu_share = 0.5}},
                       {"beta", {}}}};
  ASSERT_EQ(dir.count(), 3u);  // default + 2 named
  EXPECT_EQ(dir.resolve("alpha"), 1u);
  EXPECT_EQ(dir.resolve("beta"), 2u);
  EXPECT_EQ(dir.resolve("nobody"), 0u);
  EXPECT_EQ(dir.resolve(""), 0u);

  // alpha owns half of a 0.9 headroom: 0.45 of each resource.
  EXPECT_TRUE(dir.would_admit(1, 0.4, 0.4, 0.9));
  EXPECT_FALSE(dir.would_admit(1, 0.5, 0.1, 0.9));
  dir.reserve(1, 0.4, 0.4);
  EXPECT_FALSE(dir.would_admit(1, 0.1, 0.1, 0.9));
  EXPECT_TRUE(dir.would_admit(2, 0.5, 0.5, 0.9));  // beta untouched
  dir.release(1, 0.4, 0.4);
  EXPECT_TRUE(dir.would_admit(1, 0.4, 0.4, 0.9));
  EXPECT_EQ(dir.tenant(1).admitted, 0u);

  dir.bind_stream(7, 2);
  EXPECT_EQ(dir.scope_of(7), 2u);
  EXPECT_EQ(dir.scope_of(99), 0u);  // unbound streams default-scope
}

/// Scripted control channel (same shape as the front-door tests).
struct Ctl {
  sim::Engine& eng;
  net::TcpLiteReceiver rx;
  net::TcpLiteSender tx;
  MessageBuffer buf;
  std::vector<RtspResponse> got;

  Ctl(sim::Engine& eng_, hw::EthernetSwitch& ether, int control_port)
      : eng{eng_},
        rx{eng_, ether, net::kHostStackCost,
           net::TcpLiteReceiver::DeliverFrom{
               [this](const net::Packet& p, int, Time) {
                 if (const auto* chunk =
                         static_cast<const std::string*>(p.body.get())) {
                   buf.append(*chunk);
                 }
                 while (auto msg = buf.next()) {
                   if (auto r = session::parse_response(*msg)) {
                     got.push_back(*r);
                   }
                 }
               }}},
        tx{eng_, ether, net::kHostStackCost, control_port} {}

  void send(RtspRequest req) {
    req.reply_port = rx.port();
    auto body = std::make_shared<std::string>(session::format_request(req));
    net::Packet pkt;
    pkt.bytes = static_cast<std::uint32_t>(body->size());
    pkt.body = std::move(body);
    tx.send(pkt);
  }
};

struct TenantRig {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  std::unique_ptr<SessionServer> server;
  apps::MpegClient media{eng, ether};
  net::UdpEndpoint rtcp_sink{eng, ether, net::kHostStackCost,
                             [](const net::Packet&, Time) {}};

  explicit TenantRig(SessionServer::Config cfg = tenant_config()) {
    server = std::make_unique<SessionServer>(eng, ether, cfg);
  }

  /// Two named tenants; alpha's CPU share fits exactly one 10 ms stream
  /// (cpu_load = 120us/10ms = 0.012 against a 0.02 * 0.9 = 0.018 budget).
  static SessionServer::Config tenant_config() {
    SessionServer::Config cfg;
    cfg.door.idle_timeout = Time::ms(300);
    cfg.door.reap_interval = Time::ms(100);
    cfg.tenants = {{"alpha", {.link_share = 1.0, .cpu_share = 0.02}},
                   {"beta", {}}};
    return cfg;
  }

  RtspRequest setup_request(const std::string& uri) {
    RtspRequest req;
    req.method = Method::kSetup;
    req.cseq = ++cseq;
    req.uri = uri;
    req.rtp_port = media.port();
    req.rtcp_port = rtcp_sink.port();
    req.tolerance = dwcs::WindowConstraint{1, 4};
    req.period = Time::ms(10);
    req.frame_bytes = 1000;
    req.frames = 8;
    return req;
  }

  std::uint64_t cseq = 0;
};

TEST(TenantScope, UriDerivedScopeKeysTheMonitor) {
  TenantRig rig;
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  ctl.send(rig.setup_request("rtsp://ni/beta/movie"));
  rig.eng.run_until(Time::ms(100));
  ASSERT_EQ(ctl.got.size(), 1u);
  ASSERT_EQ(ctl.got[0].status, 200);
  const auto stream = static_cast<dwcs::StreamId>(ctl.got[0].stream);

  // The monitor placement lives under beta's scope (2), not scope 0.
  EXPECT_TRUE(rig.server->monitor().known({2, stream}));
  EXPECT_FALSE(rig.server->monitor().known({0, stream}));
  EXPECT_EQ(rig.server->tenants().tenant(2).admitted, 1u);
  EXPECT_EQ(rig.server->tenants().scope_of(stream), 2u);
}

TEST(TenantScope, DefaultUriStaysScopeZero) {
  TenantRig rig;
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  ctl.send(rig.setup_request("rtsp://ni/stream"));
  rig.eng.run_until(Time::ms(100));
  ASSERT_EQ(ctl.got.size(), 1u);
  ASSERT_EQ(ctl.got[0].status, 200);
  EXPECT_TRUE(rig.server->monitor().known(
      {0, static_cast<dwcs::StreamId>(ctl.got[0].stream)}));
  EXPECT_EQ(rig.server->tenants().tenant(0).admitted, 1u);
}

TEST(TenantScope, BudgetExhaustedTenantGets453WhileOthersAdmit) {
  TenantRig rig;
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  // alpha's CPU budget holds one stream; the second SETUP must bounce even
  // though the global controller has ~0.9 headroom left.
  ctl.send(rig.setup_request("rtsp://ni/alpha/a"));
  rig.eng.run_until(Time::ms(100));
  ctl.send(rig.setup_request("rtsp://ni/alpha/b"));
  rig.eng.run_until(Time::ms(200));
  ASSERT_EQ(ctl.got.size(), 2u);
  EXPECT_EQ(ctl.got[0].status, 200);
  EXPECT_EQ(ctl.got[1].status, 453);
  EXPECT_EQ(rig.server->door().stats().tenant_rejected_453, 1u);
  EXPECT_EQ(rig.server->tenants().tenant(1).rejected, 1u);
  EXPECT_LT(rig.server->admission().cpu_utilization(), 0.1);

  // beta is untouched by alpha's exhaustion.
  ctl.send(rig.setup_request("rtsp://ni/beta/c"));
  rig.eng.run_until(Time::ms(300));
  ASSERT_EQ(ctl.got.size(), 3u);
  EXPECT_EQ(ctl.got[2].status, 200);
  EXPECT_EQ(rig.server->tenants().tenant(2).admitted, 1u);
}

TEST(TenantScope, TeardownReleasesTheTenantBudget) {
  TenantRig rig;
  Ctl ctl{rig.eng, rig.ether, rig.server->control_port()};
  ctl.send(rig.setup_request("rtsp://ni/alpha/a"));
  rig.eng.run_until(Time::ms(100));
  ASSERT_EQ(ctl.got.size(), 1u);
  ASSERT_EQ(ctl.got[0].status, 200);

  RtspRequest teardown;
  teardown.method = Method::kTeardown;
  teardown.cseq = 2;
  teardown.session_id = ctl.got[0].session_id;
  ctl.send(teardown);
  rig.eng.run_until(Time::ms(200));
  EXPECT_EQ(rig.server->tenants().tenant(1).admitted, 0u);

  // The budget slot is reusable: alpha admits again.
  ctl.send(rig.setup_request("rtsp://ni/alpha/b"));
  rig.eng.run_until(Time::ms(300));
  ASSERT_EQ(ctl.got.size(), 3u);
  EXPECT_EQ(ctl.got[2].status, 200);
}

}  // namespace
}  // namespace nistream::ingress
