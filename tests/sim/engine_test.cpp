// Unit tests for the discrete-event engine: ordering, tie-breaking,
// cancellation, run_until semantics and determinism.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace nistream::sim {
namespace {

TEST(Time, Constructors) {
  EXPECT_EQ(Time::us(1).raw_ns(), 1000);
  EXPECT_EQ(Time::ms(1).raw_ns(), 1000000);
  EXPECT_EQ(Time::sec(1).raw_ns(), 1000000000);
  EXPECT_EQ(Time::ns(7).raw_ns(), 7);
  EXPECT_EQ(Time::zero().raw_ns(), 0);
}

TEST(Time, CycleConversionRoundsToNearest) {
  // 1 cycle at 66 MHz = 15.1515... ns -> 15 ns.
  EXPECT_EQ(Time::cycles(1, 66e6).raw_ns(), 15);
  // 66e6 cycles at 66 MHz = exactly 1 s.
  EXPECT_EQ(Time::cycles(66'000'000, 66e6).raw_ns(), 1'000'000'000);
  // 2 cycles at 66 MHz = 30.30 ns -> 30 ns.
  EXPECT_EQ(Time::cycles(2, 66e6).raw_ns(), 30);
}

TEST(Time, Arithmetic) {
  const Time a = Time::us(10), b = Time::us(4);
  EXPECT_EQ((a + b).to_us(), 14.0);
  EXPECT_EQ((a - b).to_us(), 6.0);
  EXPECT_EQ((a * 3).to_us(), 30.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
  EXPECT_EQ(a, Time::us(10));
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(Time::us(30), [&] { order.push_back(3); });
  eng.schedule_at(Time::us(10), [&] { order.push_back(1); });
  eng.schedule_at(Time::us(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), Time::us(30));
}

TEST(Engine, SameInstantIsFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eng.schedule_at(Time::us(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine eng;
  Time fired = Time::never();
  eng.schedule_at(Time::us(10), [&] {
    eng.schedule_in(Time::us(5), [&] { fired = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(fired, Time::us(15));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine eng;
  eng.schedule_at(Time::us(10), [] {});
  eng.run();
  EXPECT_THROW(eng.schedule_at(Time::us(5), [] {}), std::logic_error);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  auto h = eng.schedule_at(Time::us(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine eng;
  int count = 0;
  auto h = eng.schedule_at(Time::us(1), [&] { ++count; });
  eng.run();
  h.cancel();
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(h.pending());
}

TEST(Engine, RunUntilStopsAtDeadlineInclusive) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(Time::us(10), [&] { order.push_back(1); });
  eng.schedule_at(Time::us(20), [&] { order.push_back(2); });
  eng.schedule_at(Time::us(30), [&] { order.push_back(3); });
  eng.run_until(Time::us(20));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.now(), Time::us(20));
  eng.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Engine, RunUntilAdvancesClockPastEmptyQueue) {
  Engine eng;
  eng.run_until(Time::ms(5));
  EXPECT_EQ(eng.now(), Time::ms(5));
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) eng.schedule_in(Time::us(1), chain);
  };
  eng.schedule_at(Time::zero(), chain);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eng.now(), Time::us(99));
  EXPECT_EQ(eng.events_executed(), 100u);
}

TEST(Engine, StepExecutesExactlyOne) {
  Engine eng;
  int count = 0;
  eng.schedule_at(Time::us(1), [&] { ++count; });
  eng.schedule_at(Time::us(2), [&] { ++count; });
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(eng.step());
}

// Property: against a brute-force reference model, random schedule/cancel
// sequences execute exactly the non-cancelled events in (time, insertion)
// order.
TEST(EngineProperty, MatchesReferenceModel) {
  struct Ref {
    std::int64_t at_us;
    std::uint64_t seq;
    bool cancelled = false;
  };
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Engine eng;
    std::vector<Ref> ref;
    std::vector<EventHandle> handles;
    std::vector<std::uint64_t> fired;
    std::uint64_t lcg = seed * 2654435761u;
    const auto rnd = [&lcg](std::uint64_t n) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      return (lcg >> 33) % n;
    };
    for (std::uint64_t i = 0; i < 500; ++i) {
      const auto at = static_cast<std::int64_t>(rnd(1000));
      ref.push_back(Ref{at, i});
      handles.push_back(eng.schedule_at(
          Time::us(static_cast<double>(at)), [&fired, i] { fired.push_back(i); }));
      if (rnd(5) == 0 && !handles.empty()) {
        const auto victim = rnd(handles.size());
        handles[victim].cancel();
        ref[victim].cancelled = true;
      }
    }
    eng.run();
    std::vector<std::uint64_t> expect;
    std::vector<const Ref*> live;
    for (const auto& r : ref) {
      if (!r.cancelled) live.push_back(&r);
    }
    std::stable_sort(live.begin(), live.end(), [](const Ref* a, const Ref* b) {
      if (a->at_us != b->at_us) return a->at_us < b->at_us;
      return a->seq < b->seq;
    });
    for (const auto* r : live) expect.push_back(r->seq);
    ASSERT_EQ(fired, expect) << "seed " << seed;
  }
}

}  // namespace
}  // namespace nistream::sim
