// Tests for the coroutine process layer: delays, joins, detach lifetimes,
// semaphore FIFO wake-up, conditions, mailboxes.
#include "sim/coro.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace nistream::sim {
namespace {

Coro sleeper(Engine& eng, Time d, bool& done) {
  co_await Delay{eng, d};
  done = true;
}

TEST(Coro, DelayResumesAtRightTime) {
  Engine eng;
  bool done = false;
  Time when = Time::never();
  auto proc = [](Engine& e, bool& fin, Time& w) -> Coro {
    co_await Delay{e, Time::us(25)};
    w = e.now();
    fin = true;
  }(eng, done, when);
  EXPECT_FALSE(done);
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(when, Time::us(25));
  EXPECT_TRUE(proc.done());
}

TEST(Coro, ZeroDelayDoesNotSuspend) {
  Engine eng;
  bool done = false;
  auto proc = sleeper(eng, Time::zero(), done);
  EXPECT_TRUE(done);  // eager start + ready awaiter: ran to completion inline
  EXPECT_TRUE(proc.done());
}

TEST(Coro, JoinWaitsForChild) {
  Engine eng;
  std::vector<std::string> log;
  auto parent = [](Engine& e, std::vector<std::string>& l) -> Coro {
    l.push_back("parent-start");
    auto child = [](Engine& e2, std::vector<std::string>& l2) -> Coro {
      co_await Delay{e2, Time::us(10)};
      l2.push_back("child-done");
    }(e, l);
    co_await child;
    l.push_back("parent-done");
  }(eng, log);
  eng.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "parent-start");
  EXPECT_EQ(log[1], "child-done");
  EXPECT_EQ(log[2], "parent-done");
  EXPECT_TRUE(parent.done());
}

TEST(Coro, DetachedCoroutineStillRuns) {
  Engine eng;
  bool done = false;
  sleeper(eng, Time::us(5), done).detach();
  eng.run();
  EXPECT_TRUE(done);
}

TEST(Coro, DestroyedHandleDetachesImplicitly) {
  Engine eng;
  bool done = false;
  { auto proc = sleeper(eng, Time::us(5), done); }  // handle dropped
  eng.run();
  EXPECT_TRUE(done);
}

TEST(Semaphore, LimitsConcurrency) {
  Engine eng;
  Semaphore sem{eng, 2};
  int active = 0, peak = 0, finished = 0;
  auto worker = [&](Time hold) -> Coro {
    co_await sem.acquire();
    ++active;
    peak = std::max(peak, active);
    co_await Delay{eng, hold};
    --active;
    ++finished;
    sem.release();
  };
  for (int i = 0; i < 6; ++i) worker(Time::us(10)).detach();
  eng.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(finished, 6);
  EXPECT_EQ(sem.available(), 2);
}

TEST(Semaphore, FifoWakeOrder) {
  Engine eng;
  Semaphore sem{eng, 0};
  std::vector<int> order;
  auto waiter = [&](int id) -> Coro {
    co_await sem.acquire();
    order.push_back(id);
  };
  for (int i = 0; i < 4; ++i) waiter(i).detach();
  eng.schedule_at(Time::us(1), [&] { sem.release(4); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Condition, BroadcastWakesAllCurrentWaiters) {
  Engine eng;
  Condition cond{eng};
  int woken = 0;
  auto waiter = [&]() -> Coro {
    co_await cond.wait();
    ++woken;
  };
  for (int i = 0; i < 3; ++i) waiter().detach();
  EXPECT_EQ(cond.waiter_count(), 3u);
  eng.schedule_at(Time::us(1), [&] { cond.signal(); });
  eng.run();
  EXPECT_EQ(woken, 3);
  EXPECT_EQ(cond.waiter_count(), 0u);
}

TEST(Condition, SignalWithNoWaitersIsLost) {
  Engine eng;
  Condition cond{eng};
  cond.signal();  // nothing listening
  int woken = 0;
  auto waiter = [&]() -> Coro {
    co_await cond.wait();
    ++woken;
  };
  waiter().detach();
  eng.run_until(Time::us(10));
  EXPECT_EQ(woken, 0);  // the earlier signal must not satisfy a later wait
}

TEST(Mailbox, DeliversInOrder) {
  Engine eng;
  Mailbox<int> box{eng};
  std::vector<int> got;
  auto consumer = [&]() -> Coro {
    for (int i = 0; i < 3; ++i) got.push_back(co_await box.receive());
  };
  consumer().detach();
  eng.schedule_at(Time::us(1), [&] { box.send(10); box.send(20); });
  eng.schedule_at(Time::us(2), [&] { box.send(30); });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, ReceiveBeforeSendBlocks) {
  Engine eng;
  Mailbox<std::string> box{eng};
  std::string got;
  Time when = Time::never();
  auto consumer = [&]() -> Coro {
    got = co_await box.receive();
    when = eng.now();
  };
  consumer().detach();
  eng.schedule_at(Time::us(42), [&] { box.send("hello"); });
  eng.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(when, Time::us(42));
}

TEST(Mailbox, BuffersWhenNoReceiver) {
  Engine eng;
  Mailbox<int> box{eng};
  box.send(1);
  box.send(2);
  EXPECT_EQ(box.size(), 2u);
  std::vector<int> got;
  auto consumer = [&]() -> Coro {
    got.push_back(co_await box.receive());
    got.push_back(co_await box.receive());
  };
  consumer().detach();
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

// Regression: joining helper-returned Coros in a loop while heap payloads
// travel through engine-scheduled callbacks. An earlier Coro design let the
// awaiting side destroy the child frame mid final-suspend (heap corruption
// under GCC 12, found by ASan via the DVCM tests); this pins the fixed
// behaviour.
namespace regression {

Coro post_and_wait(Engine& eng, std::vector<std::shared_ptr<int>>& sink,
                   std::shared_ptr<int> payload) {
  eng.schedule_in(Time::us(40), [&sink, p = std::move(payload)] {
    sink.push_back(p);
  });
  co_await Delay{eng, Time::us(25)};
}

}  // namespace regression

TEST(Coro, JoinLoopPreservesHeapPayloads) {
  Engine eng;
  std::vector<std::shared_ptr<int>> sink;
  auto host = [&]() -> Coro {
    for (int i = 0; i < 50; ++i) {
      auto payload = std::make_shared<int>(i);
      std::weak_ptr<int> watch = payload;
      co_await regression::post_and_wait(eng, sink, std::move(payload));
      // The scheduled callback (fires after this await) must still hold the
      // only reference — nothing may have freed it.
      EXPECT_FALSE(watch.expired());
    }
  };
  host().detach();
  eng.run();
  ASSERT_EQ(sink.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(sink[static_cast<std::size_t>(i)]);
    EXPECT_EQ(*sink[static_cast<std::size_t>(i)], i);
  }
}

TEST(Coro, AwaitAlreadyFinishedChild) {
  Engine eng;
  auto child = [&]() -> Coro { co_return; }();
  EXPECT_TRUE(child.done());
  bool after = false;
  auto parent = [&]() -> Coro {
    co_await std::move(child);  // ready immediately
    after = true;
  };
  parent().detach();
  EXPECT_TRUE(after);
}

TEST(Coro, DetachFinishedIsHarmless) {
  Engine eng;
  auto child = [&]() -> Coro { co_return; }();
  child.detach();
  eng.run();
}

// A producer/consumer pipeline spanning several primitives, checking the
// simulated completion time end to end.
TEST(Coro, PipelineTiming) {
  Engine eng;
  Mailbox<int> box{eng};
  Time done_at = Time::never();
  auto producer = [&]() -> Coro {
    for (int i = 0; i < 5; ++i) {
      co_await Delay{eng, Time::us(10)};
      box.send(i);
    }
  };
  auto consumer = [&]() -> Coro {
    for (int i = 0; i < 5; ++i) {
      (void)co_await box.receive();
      co_await Delay{eng, Time::us(3)};  // processing
    }
    done_at = eng.now();
  };
  producer().detach();
  consumer().detach();
  eng.run();
  // Items arrive at 10,20,...,50; each takes 3us to process: finish 53us.
  EXPECT_EQ(done_at, Time::us(53));
}

}  // namespace
}  // namespace nistream::sim
