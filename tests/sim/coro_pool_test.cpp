// Coroutine frame pool: after warm-up, repeated frame traversal must be
// served entirely from the per-thread free lists — fresh_blocks and
// oversize_blocks stay flat while frames/pool_reuses grow. Counters are
// thread_local, so deltas within one test are unaffected by other binaries;
// within this binary the tests only ever compare snapshots taken locally.
#include "sim/coro.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>

namespace nistream::sim {
namespace {

Coro tick(Engine& eng, int& out) {
  co_await Delay{eng, Time::us(1)};
  ++out;
}

TEST(CoroPool, SteadyStateAllocatesNoFreshBlocks) {
  Engine eng;
  int done = 0;
  // Warm-up at the same peak concurrency as the steady-state batch: the pool
  // holds one free block per frame *simultaneously alive*, not per frame
  // ever created.
  constexpr int kFrames = 256;
  for (int i = 0; i < kFrames; ++i) tick(eng, done).detach();
  eng.run();
  ASSERT_EQ(done, kFrames);

  const auto before = coro_pool_stats();
  for (int i = 0; i < kFrames; ++i) tick(eng, done).detach();
  eng.run();
  const auto after = coro_pool_stats();

  EXPECT_EQ(done, 2 * kFrames);
  EXPECT_EQ(after.frames - before.frames, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(after.fresh_blocks, before.fresh_blocks)
      << "steady-state traversal must not touch ::operator new";
  EXPECT_EQ(after.oversize_blocks, before.oversize_blocks);
  EXPECT_EQ(after.pool_reuses - before.pool_reuses,
            static_cast<std::uint64_t>(kFrames));
}

TEST(CoroPool, CompletedFramesAreReleasedBackToThePool) {
  Engine eng;
  int done = 0;
  const auto before = coro_pool_stats();
  for (int i = 0; i < 16; ++i) tick(eng, done).detach();
  eng.run();
  const auto after = coro_pool_stats();
  EXPECT_EQ(done, 16);
  EXPECT_GE(after.releases - before.releases, 16u)
      << "every completed frame must drop its block back into a free list";
}

Coro huge_frame(Engine& eng, std::size_t& out) {
  // A >2 KiB local held across a suspension point forces the frame past the
  // largest pool bucket, exercising the oversize ::operator new path.
  std::array<std::byte, 4096> big{};
  big[0] = std::byte{42};
  co_await Delay{eng, Time::us(1)};
  out = static_cast<std::size_t>(big[0]);
}

TEST(CoroPool, OversizeFramesFallBackToHeapAndStayCorrect) {
  Engine eng;
  std::size_t got = 0;
  const auto before = coro_pool_stats();
  huge_frame(eng, got).detach();
  eng.run();
  const auto after = coro_pool_stats();
  EXPECT_EQ(got, 42u) << "locals must survive suspension in oversize frames";
  EXPECT_EQ(after.oversize_blocks - before.oversize_blocks, 1u);
  EXPECT_EQ(after.releases - before.releases, 1u)
      << "oversize blocks are freed, not pooled, but still counted released";
}

// Mixed workload: nested frames (parent awaits child) recycle just as well.
Coro child(Engine& eng) { co_await Delay{eng, Time::us(1)}; }

Coro parent(Engine& eng, int& out) {
  co_await child(eng);
  ++out;
}

TEST(CoroPool, NestedJoinsReuseBlocksInSteadyState) {
  Engine eng;
  int done = 0;
  for (int i = 0; i < 64; ++i) parent(eng, done).detach();
  eng.run();
  ASSERT_EQ(done, 64);

  const auto before = coro_pool_stats();
  for (int i = 0; i < 64; ++i) parent(eng, done).detach();
  eng.run();
  const auto after = coro_pool_stats();
  EXPECT_EQ(done, 128);
  EXPECT_EQ(after.fresh_blocks, before.fresh_blocks);
  EXPECT_EQ(after.frames - before.frames, 128u);  // parent + child per pair
}

}  // namespace
}  // namespace nistream::sim
