// Tests for the measurement primitives: RunningStat, SampleSet, TimeSeries,
// RateMeter and UtilizationMeter.
#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nistream::sim {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(s.median(), 51.0);       // nearest-rank: idx round(49.5+0.5)
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.9), 90.0, 1.0);
}

TEST(TimeSeries, MeanBetweenAndValueAt) {
  TimeSeries ts{"bw"};
  ts.add(Time::ms(10), 100.0);
  ts.add(Time::ms(20), 200.0);
  ts.add(Time::ms(30), 300.0);
  EXPECT_DOUBLE_EQ(ts.mean_between(Time::ms(15), Time::ms(30)), 250.0);
  EXPECT_DOUBLE_EQ(ts.mean_between(Time::zero(), Time::ms(100)), 200.0);
  EXPECT_DOUBLE_EQ(ts.value_at(Time::ms(25)), 200.0);
  EXPECT_DOUBLE_EQ(ts.value_at(Time::ms(5)), 0.0);
}

TEST(TimeSeries, CsvFormat) {
  TimeSeries ts{"x"};
  ts.add(Time::ms(1), 5.0);
  std::ostringstream os;
  ts.write_csv(os, "bps");
  EXPECT_EQ(os.str(), "time_ms,bps\n1,5\n");
}

TEST(RateMeter, SteadyRate) {
  // 1000 bytes every 10 ms = 800 kbit/s.
  RateMeter rm{Time::ms(100), Time::ms(100)};
  for (int i = 0; i < 100; ++i) rm.record(Time::ms(10 * i), 1000);
  rm.finish(Time::sec(1));
  ASSERT_FALSE(rm.series().points().empty());
  // Skip the first window (ramp-in) and the final one (the stream stops at
  // t=990 ms, so the last window only holds 9 events); expect 800 kbps steady.
  const auto& pts = rm.series().points();
  ASSERT_GE(pts.size(), 3u);
  for (std::size_t i = 1; i + 1 < pts.size(); ++i) {
    EXPECT_NEAR(pts[i].second, 800e3, 1e3) << "at sample " << i;
  }
  EXPECT_EQ(rm.total_bytes(), 100'000u);
}

TEST(RateMeter, DropsToZeroWhenIdle) {
  RateMeter rm{Time::ms(50), Time::ms(50)};
  rm.record(Time::ms(10), 5000);
  rm.finish(Time::ms(500));
  const auto& pts = rm.series().points();
  ASSERT_GE(pts.size(), 3u);
  EXPECT_GT(pts.front().second, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 0.0);
}

TEST(UtilizationMeter, FullyBusyIs100Percent) {
  UtilizationMeter um{Time::ms(10)};
  um.add_busy(Time::zero(), Time::ms(100));
  auto ts = um.sample(Time::ms(100));
  ASSERT_EQ(ts.points().size(), 10u);
  for (const auto& [t, v] : ts.points()) EXPECT_DOUBLE_EQ(v, 100.0);
}

TEST(UtilizationMeter, HalfBusyIs50Percent) {
  UtilizationMeter um{Time::ms(10)};
  // Busy 5 ms of every 10 ms.
  for (int i = 0; i < 10; ++i) {
    um.add_busy(Time::ms(10 * i), Time::ms(10 * i + 5));
  }
  auto ts = um.sample(Time::ms(100));
  for (const auto& [t, v] : ts.points()) EXPECT_DOUBLE_EQ(v, 50.0);
  EXPECT_EQ(um.total_busy(), Time::ms(50));
}

TEST(UtilizationMeter, CapacityScalesMultiCpu) {
  UtilizationMeter um{Time::ms(10)};
  um.add_busy(Time::zero(), Time::ms(10));  // one CPU's worth
  auto ts = um.sample(Time::ms(10), /*capacity=*/2.0);
  ASSERT_EQ(ts.points().size(), 1u);
  EXPECT_DOUBLE_EQ(ts.points()[0].second, 50.0);  // half of a 2-CPU machine
}

TEST(UtilizationMeter, MergesContiguousIntervals) {
  UtilizationMeter um{Time::ms(10)};
  um.add_busy(Time::ms(0), Time::ms(3));
  um.add_busy(Time::ms(3), Time::ms(7));  // abuts previous
  auto ts = um.sample(Time::ms(10));
  ASSERT_EQ(ts.points().size(), 1u);
  EXPECT_DOUBLE_EQ(ts.points()[0].second, 70.0);
}

TEST(UtilizationMeter, BusySpanningBuckets) {
  UtilizationMeter um{Time::ms(10)};
  um.add_busy(Time::ms(5), Time::ms(15));
  auto ts = um.sample(Time::ms(20));
  ASSERT_EQ(ts.points().size(), 2u);
  EXPECT_DOUBLE_EQ(ts.points()[0].second, 50.0);
  EXPECT_DOUBLE_EQ(ts.points()[1].second, 50.0);
}

}  // namespace
}  // namespace nistream::sim
