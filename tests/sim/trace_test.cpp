// Tests for the structured trace sink.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nistream::sim {
namespace {

TEST(Trace, RecordsAndCounts) {
  Trace t;
  t.record(Time::ms(1), "dwcs", "dispatch", 1, 10, 5.0);
  t.record(Time::ms(2), "dwcs", "drop", 1, 11);
  t.record(Time::ms(3), "net", "send", 2, 12);
  EXPECT_EQ(t.total_recorded(), 3u);
  EXPECT_EQ(t.count("dwcs"), 2u);
  EXPECT_EQ(t.count("dwcs", "drop"), 1u);
  EXPECT_EQ(t.count("net"), 1u);
  EXPECT_EQ(t.count("nothing"), 0u);
}

TEST(Trace, BoundedCapacityDropsOldest) {
  Trace t{3};
  for (int i = 0; i < 5; ++i) {
    t.record(Time::ms(i), "c", "l", static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(t.records().size(), 3u);
  EXPECT_EQ(t.records().front().a, 2u);  // 0 and 1 fell off
  EXPECT_EQ(t.dropped_oldest(), 2u);
  EXPECT_EQ(t.total_recorded(), 5u);
  EXPECT_DOUBLE_EQ(t.drop_rate(), 2.0 / 5.0);
}

TEST(Trace, DropRateZeroWhenEmptyOrUntruncated) {
  Trace t{8};
  EXPECT_DOUBLE_EQ(t.drop_rate(), 0.0);  // no division by zero when empty
  t.record(Time::ms(1), "c", "l");
  EXPECT_DOUBLE_EQ(t.drop_rate(), 0.0);
}

TEST(Trace, CsvFormat) {
  Trace t;
  t.record(Time::ms(1.5), "dwcs", "dispatch", 7, 8, 2.5);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "# total=1 dropped=0 drop_rate=0\n"
            "time_ms,category,label,a,b,value\n1.5,dwcs,dispatch,7,8,2.5\n");
}

TEST(Trace, CsvHeaderReportsTruncation) {
  Trace t{2};
  for (int i = 0; i < 4; ++i) t.record(Time::ms(i), "c", "l");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str().substr(0, os.str().find('\n')),
            "# total=4 dropped=2 drop_rate=0.5");
}

TEST(Trace, SinkOffIsFree) {
  TraceSink off;
  EXPECT_FALSE(off.enabled());
  off.record(Time::ms(1), "x", "y");  // must be a harmless no-op
}

TEST(Trace, SinkOnForwards) {
  Trace t;
  TraceSink sink{&t};
  EXPECT_TRUE(sink.enabled());
  sink.record(Time::ms(1), "x", "y", 1, 2, 3.0);
  EXPECT_EQ(t.total_recorded(), 1u);
  EXPECT_EQ(t.records().front().value, 3.0);
}

TEST(Trace, ClearResetsRecordsOnly) {
  Trace t;
  t.record(Time::ms(1), "a", "b");
  t.clear();
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.total_recorded(), 1u);
}

}  // namespace
}  // namespace nistream::sim
