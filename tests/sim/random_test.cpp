// Tests for the deterministic RNG: reproducibility, independence of forks,
// and sanity of the distribution generators.
#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nistream::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r{7};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsBounded) {
  Rng r{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, ExponentialMean) {
  Rng r{13};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng r{17};
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, LognormalPositive) {
  Rng r{19};
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ChanceProbability) {
  Rng r{23};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a{99};
  Rng fork1 = a.fork();
  Rng b{99};
  Rng fork2 = b.fork();
  // Same parent state -> same fork sequence.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fork1.next_u64(), fork2.next_u64());
  // Fork differs from parent's continued stream.
  Rng c{99};
  Rng fork3 = c.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (fork3.next_u64() == c.next_u64());
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace nistream::sim
