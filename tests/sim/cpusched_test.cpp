// Tests for the preemptive CPU scheduler: single-thread timing, round-robin
// sharing, strict-priority preemption, affinity (pbind), context-switch
// accounting and utilization metering.
#include "sim/cpusched.hpp"

#include <gtest/gtest.h>

#include "sim/coro.hpp"

namespace nistream::sim {
namespace {

CpuScheduler::Params one_cpu(Time quantum = Time::ms(10),
                             Time cs = Time::zero()) {
  return {.num_cpus = 1, .quantum = quantum, .context_switch = cs,
          .meter_sample = Time::ms(100)};
}

TEST(CpuSched, SingleThreadRunsToCompletion) {
  Engine eng;
  CpuScheduler sched{eng, one_cpu()};
  auto& thr = sched.create_thread("t", 10);
  Time done = Time::never();
  auto proc = [&]() -> Coro {
    co_await sched.run(thr, Time::ms(35));
    done = eng.now();
  };
  proc().detach();
  eng.run();
  EXPECT_EQ(done, Time::ms(35));
  EXPECT_EQ(thr.cpu_time(), Time::ms(35));
}

TEST(CpuSched, ZeroDemandCompletesInline) {
  Engine eng;
  CpuScheduler sched{eng, one_cpu()};
  auto& thr = sched.create_thread("t", 10);
  bool done = false;
  auto proc = [&]() -> Coro {
    co_await sched.run(thr, Time::zero());
    done = true;
  };
  proc().detach();
  EXPECT_TRUE(done);
}

TEST(CpuSched, EqualPriorityTimeSlices) {
  Engine eng;
  CpuScheduler sched{eng, one_cpu(Time::ms(10))};
  auto& a = sched.create_thread("a", 10);
  auto& b = sched.create_thread("b", 10);
  Time done_a = Time::never(), done_b = Time::never();
  auto pa = [&]() -> Coro { co_await sched.run(a, Time::ms(30)); done_a = eng.now(); };
  auto pb = [&]() -> Coro { co_await sched.run(b, Time::ms(30)); done_b = eng.now(); };
  pa().detach();
  pb().detach();
  eng.run();
  // Interleaved 10 ms quanta: a finishes at 50 ms, b at 60 ms.
  EXPECT_EQ(done_a, Time::ms(50));
  EXPECT_EQ(done_b, Time::ms(60));
}

TEST(CpuSched, HigherPriorityPreemptsMidSlice) {
  Engine eng;
  CpuScheduler sched{eng, one_cpu(Time::ms(10))};
  auto& low = sched.create_thread("low", 50);
  auto& high = sched.create_thread("high", 1);
  Time low_done = Time::never(), high_done = Time::never();
  auto pl = [&]() -> Coro {
    co_await sched.run(low, Time::ms(20));
    low_done = eng.now();
  };
  auto ph = [&]() -> Coro {
    co_await Delay{eng, Time::ms(3)};  // arrive mid-slice
    co_await sched.run(high, Time::ms(5));
    high_done = eng.now();
  };
  pl().detach();
  ph().detach();
  eng.run();
  EXPECT_EQ(high_done, Time::ms(8));   // 3 (arrival) + 5 (immediate CPU)
  EXPECT_EQ(low_done, Time::ms(25));   // 20 of work + 5 preempted
}

TEST(CpuSched, PreemptedThreadResumesAheadOfItsClass) {
  Engine eng;
  CpuScheduler sched{eng, one_cpu(Time::ms(10))};
  auto& a = sched.create_thread("a", 10);
  auto& b = sched.create_thread("b", 10);
  auto& hi = sched.create_thread("hi", 1);
  std::vector<std::string> completion;
  auto worker = [&](CpuScheduler::Thread& t, Time w, const char* n) -> Coro {
    co_await sched.run(t, w);
    completion.push_back(n);
  };
  // a runs first; hi preempts at 2 ms for 1 ms; a must continue before b.
  worker(a, Time::ms(6), "a").detach();
  worker(b, Time::ms(6), "b").detach();
  auto ph = [&]() -> Coro {
    co_await Delay{eng, Time::ms(2)};
    co_await sched.run(hi, Time::ms(1));
    completion.push_back("hi");
  };
  ph().detach();
  eng.run();
  ASSERT_EQ(completion.size(), 3u);
  EXPECT_EQ(completion[0], "hi");
  EXPECT_EQ(completion[1], "a");
  EXPECT_EQ(completion[2], "b");
}

TEST(CpuSched, TwoCpusRunInParallel) {
  Engine eng;
  CpuScheduler sched{eng, {.num_cpus = 2, .quantum = Time::ms(10),
                           .context_switch = Time::zero(),
                           .meter_sample = Time::ms(100)}};
  auto& a = sched.create_thread("a", 10);
  auto& b = sched.create_thread("b", 10);
  Time done_a = Time::never(), done_b = Time::never();
  auto w = [&](CpuScheduler::Thread& t, Time& out) -> Coro {
    co_await sched.run(t, Time::ms(30));
    out = eng.now();
  };
  w(a, done_a).detach();
  w(b, done_b).detach();
  eng.run();
  EXPECT_EQ(done_a, Time::ms(30));
  EXPECT_EQ(done_b, Time::ms(30));  // no contention across 2 CPUs
}

TEST(CpuSched, AffinityPinsThreadToCpu) {
  Engine eng;
  CpuScheduler sched{eng, {.num_cpus = 2, .quantum = Time::ms(10),
                           .context_switch = Time::zero(),
                           .meter_sample = Time::ms(100)}};
  auto& pinned = sched.create_thread("pinned", 10, /*affinity=*/1);
  auto& other = sched.create_thread("other", 10, /*affinity=*/1);
  Time d1 = Time::never(), d2 = Time::never();
  auto w = [&](CpuScheduler::Thread& t, Time& out) -> Coro {
    co_await sched.run(t, Time::ms(20));
    out = eng.now();
  };
  w(pinned, d1).detach();
  w(other, d2).detach();
  eng.run();
  // Both pinned to CPU 1: they serialize even though CPU 0 is idle.
  EXPECT_EQ(std::max(d1, d2), Time::ms(40));
  EXPECT_EQ(sched.cpu_meter(0).total_busy(), Time::zero());
  EXPECT_EQ(sched.cpu_meter(1).total_busy(), Time::ms(40));
}

TEST(CpuSched, ContextSwitchCostCharged) {
  Engine eng;
  CpuScheduler sched{eng, one_cpu(Time::ms(10), /*cs=*/Time::us(100))};
  auto& a = sched.create_thread("a", 10);
  auto& b = sched.create_thread("b", 10);
  Time done_b = Time::never();
  auto w = [&](CpuScheduler::Thread& t, Time& out) -> Coro {
    co_await sched.run(t, Time::ms(20));
    out = eng.now();
  };
  Time dummy = Time::never();
  w(a, dummy).detach();
  w(b, done_b).detach();
  eng.run();
  // 40 ms of work + 4 switches (a,b,a,b) * 100 us.
  EXPECT_EQ(done_b, Time::ms(40) + Time::us(400));
  EXPECT_EQ(sched.context_switches(), 4u);
}

TEST(CpuSched, UtilizationSeriesReflectsLoad) {
  Engine eng;
  CpuScheduler sched{eng, one_cpu()};
  auto& thr = sched.create_thread("t", 10);
  // Busy 50 ms of every 100 ms for 1 s.
  auto proc = [&]() -> Coro {
    for (int i = 0; i < 10; ++i) {
      co_await sched.run(thr, Time::ms(50));
      co_await Delay{eng, Time::ms(50)};
    }
  };
  proc().detach();
  eng.run();
  const TimeSeries util = sched.utilization_series(Time::sec(1));
  ASSERT_EQ(util.points().size(), 10u);
  for (const auto& [t, v] : util.points()) EXPECT_NEAR(v, 50.0, 0.5);
}

TEST(CpuSched, UtilizationAveragedAcrossCpus) {
  Engine eng;
  CpuScheduler sched{eng, {.num_cpus = 2, .quantum = Time::ms(10),
                           .context_switch = Time::zero(),
                           .meter_sample = Time::ms(100)}};
  auto& thr = sched.create_thread("t", 10, /*affinity=*/0);
  auto proc = [&]() -> Coro { co_await sched.run(thr, Time::ms(100)); };
  proc().detach();
  eng.run();
  const TimeSeries util = sched.utilization_series(Time::ms(100));
  ASSERT_EQ(util.points().size(), 1u);
  EXPECT_NEAR(util.points()[0].second, 50.0, 0.5);  // 1 of 2 CPUs busy
}

TEST(CpuSched, ReservationGuaranteesShareUnderLoad) {
  Engine eng;
  CpuScheduler sched{eng, one_cpu(Time::ms(10))};
  auto& reserved = sched.create_thread("reserved", 100);
  sched.set_reservation(reserved, /*fraction=*/0.25, Time::ms(20));
  // Three hogs of the same ordinary priority saturate the CPU.
  std::vector<CpuScheduler::Thread*> hogs;
  for (int i = 0; i < 3; ++i) {
    hogs.push_back(&sched.create_thread("hog" + std::to_string(i), 100));
  }
  auto hog_proc = [&](CpuScheduler::Thread& t) -> Coro {
    co_await sched.run(t, Time::sec(10));
  };
  for (auto* h : hogs) hog_proc(*h).detach();
  // The reserved thread wants 5 ms of CPU every 20 ms = exactly its budget.
  auto res_proc = [&]() -> Coro {
    for (int i = 0; i < 50; ++i) {
      co_await sched.run(reserved, Time::ms(5));
      const Time next_period = Time::ms(20 * (i + 1));
      if (eng.now() < next_period) co_await Delay{eng, next_period - eng.now()};
    }
  };
  res_proc().detach();
  eng.run_until(Time::sec(1));
  // Without the reservation it would receive ~1/4 of the CPU *of its share
  // class* => ~every 40 ms; with it, the full 5 ms per period: 250 ms total.
  EXPECT_NEAR(reserved.cpu_time().to_ms(), 250.0, 10.0);
}

TEST(CpuSched, ReservationBudgetExhaustionDropsPriority) {
  Engine eng;
  CpuScheduler sched{eng, one_cpu(Time::ms(10))};
  auto& reserved = sched.create_thread("reserved", 100);
  sched.set_reservation(reserved, /*fraction=*/0.25, Time::ms(100));  // 25 ms
  auto& hog = sched.create_thread("hog", 100);
  Time reserved_done = Time::never();
  // The reserved thread asks for 50 ms straight: the first 25 ms are
  // guaranteed (preempting the hog); the rest competes round-robin.
  auto rp = [&]() -> Coro {
    co_await sched.run(reserved, Time::ms(50));
    reserved_done = eng.now();
  };
  auto hp = [&]() -> Coro { co_await sched.run(hog, Time::sec(1)); };
  hp().detach();
  rp().detach();
  eng.run_until(Time::sec(2));
  // Guaranteed 25 ms + ~2x round-robin for the rest, plus the 100 ms
  // replenishment giving a second 25 ms burst: finishes near 75-85 ms.
  EXPECT_GT(reserved_done, Time::ms(50));
  EXPECT_LT(reserved_done, Time::ms(140));
}

TEST(CpuSched, ReservedThreadPreemptsOnWake) {
  Engine eng;
  CpuScheduler sched{eng, one_cpu(Time::ms(50))};
  auto& reserved = sched.create_thread("reserved", 100);
  sched.set_reservation(reserved, 0.5, Time::ms(100));
  auto& hog = sched.create_thread("hog", 100);
  auto hp = [&]() -> Coro { co_await sched.run(hog, Time::sec(1)); };
  hp().detach();
  Time done = Time::never();
  auto rp = [&]() -> Coro {
    co_await Delay{eng, Time::ms(7)};  // wake mid-hog-slice
    co_await sched.run(reserved, Time::ms(3));
    done = eng.now();
  };
  rp().detach();
  eng.run_until(Time::sec(2));
  EXPECT_EQ(done, Time::ms(10));  // immediate preemption at 7 ms + 3 ms work
}

TEST(CpuSched, ManyThreadsStarveEachOtherFairly) {
  Engine eng;
  CpuScheduler sched{eng, one_cpu(Time::ms(10))};
  std::vector<CpuScheduler::Thread*> thrs;
  std::vector<Time> done(8, Time::never());
  for (int i = 0; i < 8; ++i) {
    thrs.push_back(&sched.create_thread("t" + std::to_string(i), 10));
  }
  auto w = [&](int i) -> Coro {
    co_await sched.run(*thrs[static_cast<std::size_t>(i)], Time::ms(10));
    done[static_cast<std::size_t>(i)] = eng.now();
  };
  for (int i = 0; i < 8; ++i) w(i).detach();
  eng.run();
  // FIFO within the class: thread i finishes at (i+1)*10 ms.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(done[static_cast<std::size_t>(i)], Time::ms(10 * (i + 1)));
  }
}

}  // namespace
}  // namespace nistream::sim
