// InlineEvent semantics: the fixed-capacity inline callable that replaced
// std::function in the engine's event slots. These tests pin the contract
// the slab relies on — inline storage (no allocation), correct ops-table
// dispatch for move/destroy of non-trivial captures, and reset semantics.
#include "sim/inline_event.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "sim/engine.hpp"

namespace nistream::sim {
namespace {

TEST(InlineEvent, EmptyIsFalseAndInvocableAfterAssignment) {
  InlineEvent e;
  EXPECT_FALSE(e);
  int hits = 0;
  e = InlineEvent{[&hits] { ++hits; }};
  ASSERT_TRUE(e);
  e();
  EXPECT_EQ(hits, 1);
}

TEST(InlineEvent, CaptureAtTheByteBudgetFits) {
  struct Big {
    std::byte pad[InlineEvent::kCaptureBytes - sizeof(int*)];
    int* out;
  };
  static_assert(sizeof(Big) == InlineEvent::kCaptureBytes);
  int hit = 0;
  Big big{};
  big.out = &hit;
  InlineEvent e{[big] { ++*big.out; }};
  e();
  EXPECT_EQ(hit, 1);
}

TEST(InlineEvent, MoveTransfersTheCallable) {
  int hits = 0;
  InlineEvent a{[&hits] { ++hits; }};
  InlineEvent b{std::move(a)};
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — contract under test
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);

  InlineEvent c;
  c = std::move(b);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(c);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineEvent, MoveOnlyCapturesWork) {
  auto box = std::make_unique<int>(41);
  InlineEvent e{[box = std::move(box)] { ++*box; }};
  InlineEvent moved{std::move(e)};
  moved();  // no observable output — just must not crash or double-free
  ASSERT_TRUE(moved);
}

TEST(InlineEvent, DestroyAndResetReleaseTheCapture) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    InlineEvent e{[token = std::move(token)] { (void)*token; }};
    EXPECT_FALSE(watch.expired());
    e.reset();
    EXPECT_TRUE(watch.expired()) << "reset must run the capture's destructor";
    EXPECT_FALSE(e);
  }

  token = std::make_shared<int>(8);
  watch = token;
  {
    InlineEvent e{[token = std::move(token)] { (void)*token; }};
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired()) << "scope exit must destroy the capture";
}

TEST(InlineEvent, MoveAssignmentDestroysThePreviousCapture) {
  auto old_token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = old_token;
  InlineEvent e{[t = std::move(old_token)] { (void)t; }};
  e = InlineEvent{[] {}};
  EXPECT_TRUE(watch.expired())
      << "assignment must release the replaced capture";
  ASSERT_TRUE(e);
}

TEST(InlineEvent, EngineReleasesCaptureWhenEventFires) {
  Engine eng;
  auto token = std::make_shared<int>(0);
  std::weak_ptr<int> watch = token;
  eng.schedule_in(Time::ms(1), [token = std::move(token)] { ++*token; });
  EXPECT_FALSE(watch.expired());
  eng.run();
  EXPECT_TRUE(watch.expired())
      << "a fired event's capture must not linger in the recycled slot";
}

TEST(InlineEvent, EngineReleasesCaptureWhenEventCancelled) {
  Engine eng;
  auto token = std::make_shared<int>(0);
  std::weak_ptr<int> watch = token;
  auto h =
      eng.schedule_in(Time::ms(1), [token = std::move(token)] { ++*token; });
  h.cancel();
  EXPECT_FALSE(h.pending());
  // Cancellation is lazy: the capture is destroyed when the dead heap entry
  // is popped, which draining the engine forces.
  eng.run();
  EXPECT_TRUE(watch.expired())
      << "a cancelled event's capture must be destroyed once the slot "
         "recycles";
}

}  // namespace
}  // namespace nistream::sim
