// TSan regression for the parallel sweep runner's core assumption: two fully
// independent simulation cells (engine + scheduler + coroutine pumps) can run
// on separate threads with no shared mutable state. The only cross-thread
// couplings in the simulation core are thread_local (coroutine frame pool)
// or stateless statics (NullCostHook), so this must be race-free AND produce
// results identical to running the same cells sequentially.
//
// Run under -fsanitize=thread to catch any future static sneaking into the
// hot path; without TSan it still pins cross-thread determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "dwcs/scheduler.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace nistream {
namespace {

using sim::Time;

struct CellResult {
  std::uint64_t decisions = 0;
  std::uint64_t dispatched_frames = 0;
  std::uint64_t frame_id_sum = 0;  // order-sensitive fingerprint
  std::uint64_t violations = 0;

  bool operator==(const CellResult&) const = default;
};

// One self-contained cell: 12 streams with seed-derived periods/tolerances,
// coroutine producers enqueueing over simulated time, an event-driven
// service loop dispatching every 2 ms.
CellResult run_cell(std::uint64_t seed) {
  sim::Engine eng;
  dwcs::DwcsScheduler sched{dwcs::DwcsScheduler::Config{}};
  sim::Rng rng{seed};

  constexpr std::size_t kStreams = 12;
  std::vector<dwcs::StreamId> ids;
  ids.reserve(kStreams);
  for (std::size_t i = 0; i < kStreams; ++i) {
    const std::int64_t y = 2 + static_cast<std::int64_t>(rng.below(4));
    dwcs::StreamParams p{
        .tolerance = {1 + static_cast<std::int64_t>(rng.below(2)), y},
        .period = Time::ms(5 + rng.below(30)),
        .lossy = rng.chance(0.5)};
    ids.push_back(sched.create_stream(p, eng.now()));
  }

  auto producer = [&](dwcs::StreamId id, sim::Rng prng) -> sim::Coro {
    for (std::uint64_t f = 0; f < 40; ++f) {
      co_await sim::Delay{eng, Time::us(500 + prng.below(20'000))};
      dwcs::FrameDescriptor d{.frame_id = id * 1000 + f,
                              .bytes = 1000 + static_cast<std::uint32_t>(
                                                  prng.below(8000)),
                              .type = mpeg::FrameType::kP,
                              .enqueued_at = eng.now(),
                              .frame_addr = 0x400000 + f * 0x2000};
      (void)sched.enqueue(id, d, eng.now());
    }
  };
  for (auto id : ids) producer(id, rng.fork()).detach();

  CellResult r;
  auto service = [&]() -> sim::Coro {
    while (eng.now() < Time::ms(1500)) {
      co_await sim::Delay{eng, Time::ms(2)};
      while (auto d = sched.schedule_next(eng.now())) {
        ++r.dispatched_frames;
        r.frame_id_sum = r.frame_id_sum * 31 + d->frame.frame_id;
      }
    }
  };
  service().detach();
  eng.run();

  r.decisions = sched.decisions();
  r.violations = sched.total_violations();
  return r;
}

TEST(ConcurrentCells, TwoThreadsMatchSequentialRuns) {
  const CellResult seq_a = run_cell(0xA11CE);
  const CellResult seq_b = run_cell(0xB0B);
  ASSERT_GT(seq_a.dispatched_frames, 0u);
  ASSERT_GT(seq_b.dispatched_frames, 0u);
  ASSERT_NE(seq_a, seq_b);  // distinct seeds: a real comparison, not 0 == 0

  CellResult par_a, par_b;
  std::thread ta{[&] { par_a = run_cell(0xA11CE); }};
  std::thread tb{[&] { par_b = run_cell(0xB0B); }};
  ta.join();
  tb.join();

  EXPECT_EQ(par_a, seq_a) << "cell A diverged when run concurrently";
  EXPECT_EQ(par_b, seq_b) << "cell B diverged when run concurrently";
}

TEST(ConcurrentCells, ManyCellsAcrossFourThreads) {
  // Wider sweep shape: 8 cells pulled by 4 workers, as bench::run_cells
  // does. Each cell's result must match its sequential twin.
  constexpr std::size_t kCells = 8;
  std::vector<CellResult> seq(kCells);
  for (std::size_t i = 0; i < kCells; ++i)
    seq[i] = run_cell(0x5EED + i * 7919);

  std::vector<CellResult> par(kCells);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < kCells;
           i = next.fetch_add(1))
        par[i] = run_cell(0x5EED + i * 7919);
    });
  }
  for (auto& t : workers) t.join();

  for (std::size_t i = 0; i < kCells; ++i)
    EXPECT_EQ(par[i], seq[i]) << "cell " << i << " diverged under threading";
}

}  // namespace
}  // namespace nistream
