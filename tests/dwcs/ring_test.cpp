// Tests for the per-stream SPSC circular buffer, including a real
// two-thread stress test backing the paper's no-synchronization claim
// (Figure 4b).
#include "dwcs/ring.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace nistream::dwcs {
namespace {

FrameDescriptor desc(std::uint64_t id, std::uint32_t bytes = 1000) {
  return FrameDescriptor{.frame_id = id, .bytes = bytes,
                         .type = mpeg::FrameType::kI,
                         .enqueued_at = sim::Time::zero(), .frame_addr = 0};
}

TEST(FrameRing, FifoOrder) {
  FrameRing ring{8, DescriptorResidency::kPinnedMemory, 0x1000,
                 null_cost_hook()};
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(desc(i)));
  EXPECT_EQ(ring.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto f = ring.front();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->frame_id, i);
    ring.pop();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(FrameRing, FullRejectsPush) {
  FrameRing ring{3, DescriptorResidency::kPinnedMemory, 0x1000,
                 null_cost_hook()};
  EXPECT_TRUE(ring.push(desc(0)));
  EXPECT_TRUE(ring.push(desc(1)));
  EXPECT_TRUE(ring.push(desc(2)));
  EXPECT_FALSE(ring.push(desc(3)));
  ring.pop();
  EXPECT_TRUE(ring.push(desc(3)));  // slot freed
}

TEST(FrameRing, FrontOnEmptyIsNullopt) {
  FrameRing ring{4, DescriptorResidency::kPinnedMemory, 0x1000,
                 null_cost_hook()};
  EXPECT_FALSE(ring.front().has_value());
}

TEST(FrameRing, WrapsManyTimes) {
  FrameRing ring{4, DescriptorResidency::kPinnedMemory, 0x1000,
                 null_cost_hook()};
  std::uint64_t next_out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.push(desc(i)));
    if (i % 2 == 1) {  // drain two at a time
      ASSERT_EQ(ring.front()->frame_id, next_out++);
      ring.pop();
      ASSERT_EQ(ring.front()->frame_id, next_out++);
      ring.pop();
    }
  }
}

// Cost accounting: pinned-memory rings report simulated addresses; the
// hardware-queue residency reports register accesses instead.
struct CountingHook final : CostHook {
  int mem_touches = 0;
  int reg_touches = 0;
  void mem(SimAddr) override { ++mem_touches; }
  void reg() override { ++reg_touches; }
};

TEST(FrameRing, PinnedMemoryChargesMemWords) {
  CountingHook hook;
  FrameRing ring{8, DescriptorResidency::kPinnedMemory, 0x1000, hook};
  ring.push(desc(0));
  EXPECT_EQ(hook.mem_touches, FrameRing::kDescriptorWords + 1);  // + tail ptr
  EXPECT_EQ(hook.reg_touches, 0);
}

TEST(FrameRing, HardwareQueueChargesRegisters) {
  CountingHook hook;
  FrameRing ring{8, DescriptorResidency::kHardwareQueue, 0x1000, hook};
  ring.push(desc(0));
  (void)ring.front();
  EXPECT_EQ(hook.mem_touches, 0);
  EXPECT_EQ(hook.reg_touches, 2 * FrameRing::kDescriptorWords + 1);
}

// The SPSC concurrency property: one producer thread, one consumer thread,
// no locks, every descriptor arrives exactly once and in order.
TEST(FrameRing, ConcurrentSpscStress) {
  constexpr std::uint64_t kCount = 200000;
  FrameRing ring{64, DescriptorResidency::kPinnedMemory, 0x1000,
                 null_cost_hook()};
  std::vector<std::uint64_t> got;
  got.reserve(kCount);

  std::thread producer{[&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.push(desc(i))) std::this_thread::yield();
    }
  }};
  std::thread consumer{[&] {
    while (got.size() < kCount) {
      const auto f = ring.front();
      if (!f) {
        std::this_thread::yield();
        continue;
      }
      got.push_back(f->frame_id);
      ring.pop();
    }
  }};
  producer.join();
  consumer.join();

  ASSERT_EQ(got.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_EQ(got[i], i);
}

}  // namespace
}  // namespace nistream::dwcs
