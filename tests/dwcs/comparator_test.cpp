// Tests for the DWCS precedence rules under all three arithmetic modes.
#include "dwcs/comparator.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace nistream::dwcs {
namespace {

StreamView view(sim::Time deadline, std::int64_t x, std::int64_t y) {
  StreamView v;
  v.next_deadline = deadline;
  v.current = {x, y};
  return v;
}

class ComparatorAllModes : public ::testing::TestWithParam<ArithMode> {
 protected:
  Comparator cmp{GetParam(), null_cost_hook()};
};

TEST_P(ComparatorAllModes, Rule1EarliestDeadlineFirst) {
  const auto a = view(sim::Time::ms(10), 3, 4);  // loose tolerance
  const auto b = view(sim::Time::ms(20), 0, 4);  // tight tolerance, later
  EXPECT_TRUE(cmp.precedes(a, 0, b, 1));  // deadline dominates tolerance
  EXPECT_FALSE(cmp.precedes(b, 1, a, 0));
}

TEST_P(ComparatorAllModes, Rule2LowestToleranceOnTies) {
  const auto a = view(sim::Time::ms(10), 1, 4);   // W' = 0.25
  const auto b = view(sim::Time::ms(10), 1, 2);   // W' = 0.5
  EXPECT_TRUE(cmp.precedes(a, 1, b, 0));  // lower W' wins despite higher id
  EXPECT_FALSE(cmp.precedes(b, 0, a, 1));
}

TEST_P(ComparatorAllModes, Rule3ZeroTolerancesByDenominator) {
  const auto a = view(sim::Time::ms(10), 0, 8);
  const auto b = view(sim::Time::ms(10), 0, 3);
  EXPECT_TRUE(cmp.precedes(a, 1, b, 0));  // higher y' more urgent
  EXPECT_FALSE(cmp.precedes(b, 0, a, 1));
}

TEST_P(ComparatorAllModes, Rule4EqualNonzeroByNumerator) {
  const auto a = view(sim::Time::ms(10), 1, 2);   // 1/2
  const auto b = view(sim::Time::ms(10), 2, 4);   // 2/4 == 1/2
  EXPECT_TRUE(cmp.precedes(a, 1, b, 0));  // lower x' (tighter window) wins
  EXPECT_FALSE(cmp.precedes(b, 0, a, 1));
}

TEST_P(ComparatorAllModes, Rule5StableIdOrder) {
  const auto a = view(sim::Time::ms(10), 1, 2);
  const auto b = view(sim::Time::ms(10), 1, 2);
  EXPECT_TRUE(cmp.precedes(a, 0, b, 1));
  EXPECT_FALSE(cmp.precedes(b, 1, a, 0));
}

TEST_P(ComparatorAllModes, TotalOrderAntisymmetry) {
  // precedes must be a strict weak ordering: irreflexive and antisymmetric
  // over a random population.
  sim::Rng rng{99};
  std::vector<std::pair<StreamView, StreamId>> pop;
  for (StreamId i = 0; i < 40; ++i) {
    const auto y = 1 + static_cast<std::int64_t>(rng.below(8));
    const auto x = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(y) + 1));
    pop.emplace_back(
        view(sim::Time::ms(static_cast<double>(10 * rng.below(3))), x, y), i);
  }
  for (const auto& [va, ia] : pop) {
    EXPECT_FALSE(cmp.precedes(va, ia, va, ia));
    for (const auto& [vb, ib] : pop) {
      if (ia == ib) continue;
      EXPECT_NE(cmp.precedes(va, ia, vb, ib), cmp.precedes(vb, ib, va, ia))
          << "streams " << ia << " and " << ib;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ComparatorAllModes,
                         ::testing::Values(ArithMode::kFixedPoint,
                                           ArithMode::kSoftFloat,
                                           ArithMode::kNativeFloat),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ArithMode::kFixedPoint: return "fixed";
                             case ArithMode::kSoftFloat: return "softfp";
                             case ArithMode::kNativeFloat: return "native";
                           }
                           return "?";
                         });

// §4.2: "Using the fixed point version does not affect the quality of
// scheduling" — all three arithmetic modes must produce identical decisions
// over the DWCS domain (small integer window constraints).
TEST(ComparatorEquivalence, AllModesAgreeOnDwcsDomain) {
  Comparator fixed{ArithMode::kFixedPoint, null_cost_hook()};
  Comparator soft{ArithMode::kSoftFloat, null_cost_hook()};
  Comparator native{ArithMode::kNativeFloat, null_cost_hook()};
  sim::Rng rng{123};
  for (int i = 0; i < 50000; ++i) {
    const auto ya = 1 + static_cast<std::int64_t>(rng.below(64));
    const auto yb = 1 + static_cast<std::int64_t>(rng.below(64));
    const auto xa = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(ya) + 1));
    const auto xb = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(yb) + 1));
    const auto a = view(sim::Time::ms(10), xa, ya);
    const auto b = view(sim::Time::ms(10), xb, yb);
    const bool f = fixed.precedes(a, 0, b, 1);
    EXPECT_EQ(f, soft.precedes(a, 0, b, 1))
        << xa << "/" << ya << " vs " << xb << "/" << yb;
    EXPECT_EQ(f, native.precedes(a, 0, b, 1))
        << xa << "/" << ya << " vs " << xb << "/" << yb;
  }
}

// The cost hook must see integer ops in fixed mode and float ops otherwise.
struct OpCounter final : CostHook {
  int int_ops = 0, float_ops = 0;
  void arith_int(Op, int n) override { int_ops += n; }
  void arith_float(Op, int n) override { float_ops += n; }
};

TEST(ComparatorCosts, FixedModeUsesIntegerOps) {
  OpCounter counter;
  Comparator cmp{ArithMode::kFixedPoint, counter};
  (void)cmp.cmp_tolerance({1, 2}, {3, 4});
  EXPECT_GT(counter.int_ops, 0);
  EXPECT_EQ(counter.float_ops, 0);
}

TEST(ComparatorCosts, FloatModesUseFloatOps) {
  for (ArithMode m : {ArithMode::kSoftFloat, ArithMode::kNativeFloat}) {
    OpCounter counter;
    Comparator cmp{m, counter};
    (void)cmp.cmp_tolerance({1, 2}, {3, 4});
    EXPECT_EQ(counter.int_ops, 0);
    EXPECT_GT(counter.float_ops, 0);
  }
}

}  // namespace
}  // namespace nistream::dwcs
