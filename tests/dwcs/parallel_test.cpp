// Simulated-parallel shard execution (dwcs/parallel.hpp).
//
// Two suites, named to match the CI sanitizer gate:
//  * ParallelIdentity — the load-bearing contract: replaying the hierarchical
//    scheduler's cycle trace on an N-core WindKernel changes TIME only, never
//    the dispatch sequence. Lock-step FNV equality against both the serial
//    hierarchical scheduler and the flat dual heap at 1/4/16 cores x 3 seeds,
//    plus charged-mode interconnect-hop equality.
//  * ParallelExec — executor mechanics: same-shard FIFO under back-to-back
//    mutation bursts, run-to-run determinism of the simulated clock, the
//    arbiter as the only serialization point, and the headline scaling claim
//    (8 shards >= 3x the 1-shard simulated decision rate).
#include "dwcs/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "dwcs/hierarchical.hpp"
#include "dwcs/scheduler.hpp"
#include "dwcs/shard_exec.hpp"
#include "hw/calibration.hpp"
#include "hw/cpu.hpp"
#include "mpeg/frame.hpp"
#include "rtos/wind.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace nistream::dwcs {
namespace {

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr SimAddr kHeapBase = 0x0100'0000;

/// Same workload shape as bench/scale_sweep: mostly-peer streams (75% share
/// one period, so deadline ties are the common case) with one standing frame
/// each. Identity only holds between runs built from the same (seed, n).
std::unique_ptr<DwcsScheduler> loaded(ReprKind kind, std::uint32_t shards,
                                      std::size_t n, std::uint64_t seed,
                                      CostHook* hook,
                                      std::int64_t hop_cycles = 0) {
  DwcsScheduler::Config cfg;
  cfg.repr = kind;
  cfg.hierarchical.shards = shards == 0 ? 1 : shards;
  cfg.hierarchical.hop_cycles = hop_cycles;
  cfg.ring_capacity = 8;
  auto sched = hook != nullptr ? std::make_unique<DwcsScheduler>(cfg, *hook)
                               : std::make_unique<DwcsScheduler>(cfg);
  sim::Rng rng{seed ^ n};
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t y = 2 + static_cast<std::int64_t>(rng.below(6));
    const std::int64_t x =
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(y)));
    const double period_ms = rng.chance(0.75) ? 33.0 : 40.0;
    sched->create_stream({.tolerance = {x, y},
                          .period = sim::Time::ms(period_ms),
                          .lossy = rng.chance(0.7)},
                         sim::Time::zero());
  }
  for (std::size_t i = 0; i < n; ++i) {
    FrameDescriptor d;
    d.frame_id = i;
    d.bytes = mpeg::kPaperFrameBytes;
    d.enqueued_at = sim::Time::zero();
    (void)sched->enqueue(static_cast<StreamId>(i), d, sim::Time::zero());
  }
  return sched;
}

struct SerialRun {
  std::uint64_t decisions = 0;
  std::uint64_t fnv = kFnvBasis;
  std::uint64_t hops = 0;
};

/// Reference run: the plain serial decision loop (refill keeps the population
/// constant), optionally with a ShardCycleMeter attached as the cost hook but
/// no trace — cycles are charged, nothing is replayed.
SerialRun serial_run(ReprKind kind, std::uint32_t shards, std::size_t n,
                     std::uint64_t seed, std::uint64_t budget,
                     std::int64_t hop_cycles = 0, CostHook* hook = nullptr) {
  SerialRun r;
  auto sched = loaded(kind, shards, n, seed, hook, hop_cycles);
  sim::Time now = sim::Time::zero();
  std::uint64_t fid = n;
  while (r.decisions < budget) {
    if (const auto next = sched->earliest_backlog_deadline();
        next && *next > now) {
      now = *next;
    }
    const auto d = sched->schedule_next(now);
    if (!d) break;
    ++r.decisions;
    r.fnv = (r.fnv ^ static_cast<std::uint64_t>(d->stream)) * kFnvPrime;
    FrameDescriptor refill;
    refill.frame_id = fid++;
    refill.bytes = mpeg::kPaperFrameBytes;
    refill.enqueued_at = now;
    (void)sched->enqueue(d->stream, refill, now);
  }
  if (kind == ReprKind::kHierarchical) {
    r.hops = static_cast<HierarchicalScheduler&>(sched->repr()).hops_charged();
  }
  return r;
}

struct ParallelRun {
  std::uint64_t decisions = 0;
  std::uint64_t fnv = kFnvBasis;
  std::uint64_t hops = 0;
  std::uint64_t items = 0;
  double sim_sec = 0;
  double arbiter_cpu_sec = 0;
  double shard_cpu_sum_sec = 0;
  std::vector<std::vector<std::uint64_t>> consumed;  // per shard (record only)
  std::vector<std::size_t> max_depth;                // per shard
};

/// Driver coroutine: the bench's round loop (dwcs/parallel.hpp, "Driving
/// protocol"). The finish_decision bracket covers decision + refill so the
/// refill's traced mutations are settled before the next decision opens.
sim::Coro drive(sim::Engine& eng, DwcsScheduler& sched, ShardCycleMeter& meter,
                ParallelShardExecutor& exec, std::size_t n,
                std::uint64_t budget, ParallelRun& r) {
  const std::uint32_t shards = exec.shards();
  sim::Time now = sim::Time::zero();
  std::uint64_t fid = n;
  while (r.decisions < budget) {
    const std::uint64_t round =
        std::min<std::uint64_t>(256, budget - r.decisions);
    for (std::uint64_t k = 0; k < round; ++k) {
      if (const auto next = sched.earliest_backlog_deadline();
          next && *next > now) {
        now = *next;
      }
      const std::int64_t t0 = meter.total();
      const auto d = sched.schedule_next(now);
      if (!d) {
        budget = r.decisions;
        break;
      }
      ++r.decisions;
      r.fnv = (r.fnv ^ static_cast<std::uint64_t>(d->stream)) * kFnvPrime;
      FrameDescriptor refill;
      refill.frame_id = fid++;
      refill.bytes = mpeg::kPaperFrameBytes;
      refill.enqueued_at = now;
      (void)sched.enqueue(d->stream, refill, now);
      exec.finish_decision(shard_of(d->stream, shards), meter.total() - t0);
    }
    co_await exec.fence();
  }
  r.sim_sec = eng.now().to_sec();
  exec.shutdown();
}

ParallelRun parallel_run(std::uint32_t shards, std::size_t n,
                         std::uint64_t seed, std::uint64_t budget,
                         std::int64_t hop_cycles = 0, bool record = false) {
  ParallelRun r;
  sim::Engine eng;
  hw::Calibration cal;
  hw::CpuModel cpu{cal.ni_cpu};
  rtos::WindKernel kernel{eng, cpu, cal.rtos,
                          static_cast<int>(shards == 0 ? 1 : shards)};
  ShardCycleMeter meter{cal, shards, kHeapBase, kCoreStride};
  auto sched =
      loaded(ReprKind::kHierarchical, shards, n, seed, &meter, hop_cycles);
  ParallelShardExecutor exec{kernel, shards};
  exec.set_record_order(record);
  auto& hier = static_cast<HierarchicalScheduler&>(sched->repr());
  hier.set_exec_trace(&exec, &meter);  // AFTER setup: replay decisions only
  drive(eng, *sched, meter, exec, n, budget, r).detach();
  eng.run_until(sim::Time::sec(1e9));
  r.hops = hier.hops_charged();
  r.items = exec.total_items();
  r.arbiter_cpu_sec = exec.arbiter_cpu_time().to_sec();
  for (std::uint32_t s = 0; s < exec.shards(); ++s) {
    r.shard_cpu_sum_sec += exec.shard_cpu_time(s).to_sec();
    r.max_depth.push_back(exec.max_queue_depth(s));
    if (record) r.consumed.push_back(exec.consumed_order(s));
  }
  return r;
}

// ---------------------------------------------------------------------------
// ParallelIdentity: parallel TIME modeling, bit-identical DISPATCH sequence.
// ---------------------------------------------------------------------------

TEST(ParallelIdentity, MatchesSerialHierarchicalAndDualHeap) {
  constexpr std::size_t kStreams = 384;
  constexpr std::uint64_t kBudget = 1500;
  for (const std::uint64_t seed : {7ull, 99ull, 1234ull}) {
    const auto flat =
        serial_run(ReprKind::kDualHeap, 1, kStreams, seed, kBudget);
    ASSERT_EQ(flat.decisions, kBudget);
    for (const std::uint32_t cores : {1u, 4u, 16u}) {
      const auto serial = serial_run(ReprKind::kHierarchical, cores, kStreams,
                                     seed, kBudget);
      const auto par = parallel_run(cores, kStreams, seed, kBudget);
      EXPECT_EQ(par.decisions, flat.decisions)
          << "cores=" << cores << " seed=" << seed;
      EXPECT_EQ(par.fnv, flat.fnv) << "cores=" << cores << " seed=" << seed;
      EXPECT_EQ(par.fnv, serial.fnv)
          << "cores=" << cores << " seed=" << seed;
    }
  }
}

TEST(ParallelIdentity, ChargedModeHopAccountingMatchesSerial) {
  // With hop_cycles > 0 the root refresh charges an interconnect hop per
  // changed root entry. Replaying the trace must not change how many hops
  // the scheduler charges: the meter brackets READ cycle counts, they never
  // add or suppress any.
  constexpr std::size_t kStreams = 256;
  constexpr std::uint64_t kBudget = 1000;
  constexpr std::int64_t kHop = 180;
  for (const std::uint32_t cores : {4u, 16u}) {
    hw::Calibration cal;
    ShardCycleMeter meter{cal, cores, kHeapBase, kCoreStride};
    const auto serial = serial_run(ReprKind::kHierarchical, cores, kStreams,
                                   7, kBudget, kHop, &meter);
    const auto par = parallel_run(cores, kStreams, 7, kBudget, kHop);
    EXPECT_GT(par.hops, 0u) << "cores=" << cores;
    EXPECT_EQ(par.hops, serial.hops) << "cores=" << cores;
    EXPECT_EQ(par.fnv, serial.fnv) << "cores=" << cores;
  }
}

// ---------------------------------------------------------------------------
// ParallelExec: executor mechanics on the simulated clock.
// ---------------------------------------------------------------------------

TEST(ParallelExec, SameShardBurstsDrainInPostingOrder) {
  // Every decision posts a burst of same-shard mutations back-to-back
  // (on_charge + window update + refill insert all land on the dispatched
  // stream's shard). The per-shard queue must drain them strictly FIFO.
  const auto r = parallel_run(/*shards=*/4, /*n=*/256, /*seed=*/7,
                              /*budget=*/800, /*hop_cycles=*/0,
                              /*record=*/true);
  ASSERT_EQ(r.consumed.size(), 4u);
  std::size_t deepest = 0;
  std::uint64_t consumed_total = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    const auto& log = r.consumed[s];
    consumed_total += log.size();
    for (std::size_t i = 1; i < log.size(); ++i) {
      ASSERT_LT(log[i - 1], log[i]) << "shard " << s << " reordered items";
    }
    deepest = std::max(deepest, r.max_depth[s]);
  }
  EXPECT_EQ(consumed_total, r.items);  // every posted item was consumed
  // Bursts actually queued: if no queue ever held more than one item, the
  // FIFO claim above was tested against nothing.
  EXPECT_GT(deepest, 1u);
}

TEST(ParallelExec, SimulatedClockIsDeterministic) {
  const auto a = parallel_run(8, 256, 42, 1000);
  const auto b = parallel_run(8, 256, 42, 1000);
  EXPECT_EQ(a.fnv, b.fnv);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.sim_sec, b.sim_sec);  // bit-equal: same trace, same engine
}

TEST(ParallelExec, ArbiterIsTheOnlySerializationPoint) {
  // Root work is real (winner recomputes + root sifts are metered cycles)
  // and runs on ONE task, so the simulated elapsed time can never beat the
  // arbiter's own CPU time — that serialized floor is the Amdahl term of
  // the model, not an artifact. What sharding buys is that the shard-engine
  // work OVERLAPS the root instead of adding to the critical path: elapsed
  // must come in strictly under the serial sum of the two pools.
  const auto r = parallel_run(8, 4096, 7, 1500);
  ASSERT_GT(r.sim_sec, 0.0);
  EXPECT_GT(r.arbiter_cpu_sec, 0.0);
  EXPECT_GT(r.shard_cpu_sum_sec, 0.0);
  EXPECT_GE(r.sim_sec, r.arbiter_cpu_sec);
  EXPECT_LT(r.sim_sec, 0.95 * (r.arbiter_cpu_sec + r.shard_cpu_sum_sec));
}

TEST(ParallelExec, EightShardsAtLeastTripleOneShardThroughput) {
  // The acceptance bar from the bench (>=3x at 8 shards) holds at test scale
  // too: per-shard heaps are smaller and per-core caches hit more, so the
  // modeled speedup is superlinear — 3x is a conservative floor.
  constexpr std::size_t kStreams = 512;
  constexpr std::uint64_t kBudget = 1500;
  const auto one = parallel_run(1, kStreams, 7, kBudget);
  const auto eight = parallel_run(8, kStreams, 7, kBudget);
  ASSERT_EQ(one.decisions, kBudget);
  ASSERT_EQ(eight.decisions, kBudget);
  ASSERT_GT(eight.sim_sec, 0.0);
  EXPECT_GE(one.sim_sec / eight.sim_sec, 3.0);
}

}  // namespace
}  // namespace nistream::dwcs
