// Tests for the handle-based indexed heap.
#include "dwcs/heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "sim/random.hpp"

namespace nistream::dwcs {
namespace {

// Key table the comparator closes over; update() re-sifts after key changes.
// The heap is comparator-templated; the type-erased std::function
// instantiation used here is exactly what the pre-template heap hardcoded.
struct Keyed {
  std::vector<int> keys;
  IndexedHeap<std::function<bool(StreamId, StreamId)>> heap;

  explicit Keyed(std::size_t n)
      : keys(n, 0),
        heap{[this](StreamId a, StreamId b) { return keys[a] < keys[b]; },
             null_cost_hook(), 0x1000} {}
};

TEST(IndexedHeap, TopIsMinimum) {
  Keyed k{5};
  k.keys = {50, 10, 30, 20, 40};
  for (StreamId i = 0; i < 5; ++i) k.heap.push(i);
  EXPECT_EQ(k.heap.top(), StreamId{1});
  EXPECT_EQ(k.heap.size(), 5u);
}

TEST(IndexedHeap, EraseMiddleKeepsOrder) {
  Keyed k{5};
  k.keys = {50, 10, 30, 20, 40};
  for (StreamId i = 0; i < 5; ++i) k.heap.push(i);
  k.heap.erase(1);  // remove the minimum's id
  EXPECT_EQ(k.heap.top(), StreamId{3});
  k.heap.erase(2);
  EXPECT_EQ(k.heap.top(), StreamId{3});
  EXPECT_FALSE(k.heap.contains(2));
  EXPECT_TRUE(k.heap.contains(3));
}

TEST(IndexedHeap, UpdateAfterKeyDecrease) {
  Keyed k{4};
  k.keys = {40, 30, 20, 10};
  for (StreamId i = 0; i < 4; ++i) k.heap.push(i);
  k.keys[0] = 1;  // now the smallest
  k.heap.update(0);
  EXPECT_EQ(k.heap.top(), StreamId{0});
}

TEST(IndexedHeap, UpdateAfterKeyIncrease) {
  Keyed k{4};
  k.keys = {1, 30, 20, 10};
  for (StreamId i = 0; i < 4; ++i) k.heap.push(i);
  k.keys[0] = 100;
  k.heap.update(0);
  EXPECT_EQ(k.heap.top(), StreamId{3});
}

TEST(IndexedHeap, TopUncheckedMatchesTopAndReserveKeepsState) {
  Keyed k{8};
  k.heap.reserve(8);
  k.keys = {5, 4, 3, 2, 1, 9, 8, 7};
  for (StreamId i = 0; i < 8; ++i) k.heap.push(i);
  EXPECT_EQ(k.heap.top_unchecked(), StreamId{4});
  EXPECT_EQ(k.heap.top(), std::optional<StreamId>{4});
  k.heap.reserve(64);  // growing the index must not disturb membership
  EXPECT_TRUE(k.heap.contains(7));
  EXPECT_EQ(k.heap.top_unchecked(), StreamId{4});
}

TEST(IndexedHeap, EmptyTopIsNullopt) {
  Keyed k{1};
  EXPECT_FALSE(k.heap.top().has_value());
  k.heap.push(0);
  k.heap.erase(0);
  EXPECT_FALSE(k.heap.top().has_value());
}

// Property: against a brute-force oracle over random push/erase/update
// sequences, top() always returns the true minimum.
TEST(IndexedHeapProperty, MatchesBruteForceOracle) {
  sim::Rng rng{4242};
  constexpr std::size_t kN = 64;
  Keyed k{kN};
  std::vector<bool> present(kN, false);

  const auto oracle_min = [&]() -> std::optional<StreamId> {
    std::optional<StreamId> best;
    for (StreamId i = 0; i < kN; ++i) {
      if (!present[i]) continue;
      if (!best || k.keys[i] < k.keys[*best] ||
          (k.keys[i] == k.keys[*best] && i < *best)) {
        // Heap ties are arbitrary; compare by key only below.
        if (!best || k.keys[i] < k.keys[*best]) best = i;
      }
    }
    return best;
  };

  for (int step = 0; step < 20000; ++step) {
    const auto id = static_cast<StreamId>(rng.below(kN));
    switch (rng.below(3)) {
      case 0:
        if (!present[id]) {
          k.keys[id] = static_cast<int>(rng.below(1000));
          k.heap.push(id);
          present[id] = true;
        }
        break;
      case 1:
        if (present[id]) {
          k.heap.erase(id);
          present[id] = false;
        }
        break;
      case 2:
        if (present[id]) {
          k.keys[id] = static_cast<int>(rng.below(1000));
          k.heap.update(id);
        }
        break;
    }
    const auto top = k.heap.top();
    const auto expect = oracle_min();
    ASSERT_EQ(top.has_value(), expect.has_value());
    if (top) {
      // Same key as the oracle minimum (ids may differ on ties).
      ASSERT_EQ(k.keys[*top], k.keys[*expect]) << "at step " << step;
    }
  }
}

TEST(IndexedHeap, HeapsortAgreesWithStdSort) {
  sim::Rng rng{7};
  constexpr std::size_t kN = 200;
  Keyed k{kN};
  for (StreamId i = 0; i < kN; ++i) {
    k.keys[i] = static_cast<int>(rng.below(10000));
    k.heap.push(i);
  }
  std::vector<int> drained;
  while (const auto top = k.heap.top()) {
    drained.push_back(k.keys[*top]);
    k.heap.erase(*top);
  }
  auto sorted = k.keys;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(drained, sorted);
}

}  // namespace
}  // namespace nistream::dwcs
