// Tests for the EDF / static-priority / round-robin baselines, and the
// head-to-head property that motivates DWCS: under overload, DWCS respects
// window constraints that the baselines break.
#include "dwcs/baselines.hpp"

#include <gtest/gtest.h>

#include "dwcs/monitor.hpp"
#include "dwcs/scheduler.hpp"

namespace nistream::dwcs {
namespace {

using sim::Time;

FrameDescriptor frame(std::uint64_t id, Time at) {
  return FrameDescriptor{.frame_id = id, .bytes = 1000,
                         .type = mpeg::FrameType::kP, .enqueued_at = at,
                         .frame_addr = 0};
}

TEST(Edf, PicksEarliestDeadline) {
  EdfScheduler s;
  const auto slow = s.create_stream({.tolerance = {1, 2}, .period = Time::ms(50)},
                                    Time::zero());
  const auto fast = s.create_stream({.tolerance = {1, 2}, .period = Time::ms(10)},
                                    Time::zero());
  s.enqueue(slow, frame(0, Time::zero()), Time::zero());
  s.enqueue(fast, frame(1, Time::zero()), Time::zero());
  const auto d = s.schedule_next(Time::zero());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->stream, fast);
}

TEST(Edf, DropsLateLossyPackets) {
  EdfScheduler s;
  const auto id = s.create_stream(
      {.tolerance = {1, 2}, .period = Time::ms(10), .lossy = true},
      Time::zero());
  s.enqueue(id, frame(0, Time::zero()), Time::zero());
  EXPECT_FALSE(s.schedule_next(Time::ms(100)).has_value());
  EXPECT_EQ(s.stats(id).dropped, 1u);
}

TEST(StaticPriority, LowestIdWins) {
  StaticPriorityScheduler s;
  const auto hi = s.create_stream({.tolerance = {1, 2}, .period = Time::ms(50)},
                                  Time::zero());
  const auto lo = s.create_stream({.tolerance = {1, 2}, .period = Time::ms(5)},
                                  Time::zero());
  s.enqueue(hi, frame(0, Time::zero()), Time::zero());
  s.enqueue(lo, frame(1, Time::zero()), Time::zero());
  const auto d = s.schedule_next(Time::zero());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->stream, hi);  // creation order, not deadlines
}

TEST(RoundRobin, CyclesThroughBackloggedStreams) {
  RoundRobinScheduler s;
  std::vector<StreamId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(s.create_stream(
        {.tolerance = {1, 2}, .period = Time::sec(10)}, Time::zero()));
    s.enqueue(ids.back(), frame(static_cast<std::uint64_t>(i), Time::zero()),
              Time::zero());
    s.enqueue(ids.back(), frame(static_cast<std::uint64_t>(10 + i), Time::zero()),
              Time::zero());
  }
  std::vector<StreamId> order;
  for (int i = 0; i < 6; ++i) {
    const auto d = s.schedule_next(Time::zero());
    ASSERT_TRUE(d);
    order.push_back(d->stream);
  }
  EXPECT_EQ(order, (std::vector<StreamId>{ids[0], ids[1], ids[2], ids[0],
                                          ids[1], ids[2]}));
}

TEST(RoundRobin, SkipsEmptyStreams) {
  RoundRobinScheduler s;
  const auto a = s.create_stream({.tolerance = {1, 2}, .period = Time::sec(10)},
                                 Time::zero());
  const auto b = s.create_stream({.tolerance = {1, 2}, .period = Time::sec(10)},
                                 Time::zero());
  (void)a;
  s.enqueue(b, frame(0, Time::zero()), Time::zero());
  const auto d = s.schedule_next(Time::zero());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->stream, b);
}

// ---- The head-to-head that motivates DWCS ---------------------------------
//
// Two 100-packet/s streams, but service capacity for only 90 packets/s.
// The tight stream tolerates 3 losses per 8 (needs 62.5 pps on time); the
// loose one tolerates 7 per 8 (needs 12.5 pps). Total on-time demand 75 pps
// < 90 pps: the constraint set is feasible, but only a scheduler that sheds
// losses *selectively by tolerance* meets it. DWCS does: expired loose-
// stream heads drop back onto the shared deadline grid, so decisions become
// tolerance ties that the tight stream wins, while the loose stream earns
// exactly its reserved share through the W'=0 urgency path. EDF and
// round-robin are attribute-blind and starve the tight stream of its
// 62.5 pps, breaking its window constraint continuously.
std::pair<std::uint64_t, std::uint64_t> overload_violations(
    PacketScheduler& s) {
  WindowViolationMonitor monitor;
  const WindowConstraint tight{3, 8}, loose{7, 8};
  // The loose stream gets the lower id so EDF's id tie-break cannot
  // accidentally favour the tight stream.
  const auto l_id = s.create_stream(
      {.tolerance = loose, .period = Time::ms(10), .lossy = true}, Time::zero());
  const auto t_id = s.create_stream(
      {.tolerance = tight, .period = Time::ms(10), .lossy = true}, Time::zero());
  monitor.add_stream(loose);
  monitor.add_stream(tight);

  std::uint64_t fid = 0;
  std::array<std::uint64_t, 2> seen_drops{0, 0};
  const auto pump_monitor = [&] {
    for (StreamId id : {t_id, l_id}) {
      const auto d = s.stats(id).dropped;
      for (std::uint64_t k = seen_drops[id]; k < d; ++k) {
        monitor.record(id, WindowViolationMonitor::Outcome::kDropped);
      }
      seen_drops[id] = d;
    }
  };

  for (int t = 0; t < 30000; t += 10) {
    s.enqueue(t_id, frame(fid++, Time::ms(t)), Time::ms(t));
    s.enqueue(l_id, frame(fid++, Time::ms(t)), Time::ms(t));
    // 90% capacity: 9 service slots per 10 arrival ticks.
    if (t % 100 < 90) {
      const auto d = s.schedule_next(Time::ms(t));
      pump_monitor();
      if (d) {
        monitor.record(d->stream,
                       d->late ? WindowViolationMonitor::Outcome::kLate
                               : WindowViolationMonitor::Outcome::kOnTime);
      }
    } else {
      // Still account for drops that happen without a service slot (they are
      // recorded lazily at the next slot).
    }
  }
  pump_monitor();
  return {monitor.violating_windows(t_id), monitor.violating_windows(l_id)};
}

TEST(PolicyComparison, DwcsProtectsTightStreamUnderOverload) {
  DwcsScheduler dwcs{DwcsScheduler::Config{}};
  EdfScheduler edf;
  RoundRobinScheduler rr;
  const auto [dwcs_tight, dwcs_loose] = overload_violations(dwcs);
  const auto [edf_tight, edf_loose] = overload_violations(edf);
  const auto [rr_tight, rr_loose] = overload_violations(rr);
  (void)edf_loose;
  (void)rr_loose;
  // DWCS: the tight stream's constraint survives overload outright.
  EXPECT_EQ(dwcs_tight, 0u);
  EXPECT_LE(dwcs_loose, 10u);  // the loose stream's does too (it is feasible)
  // The attribute-blind baselines break it, badly and continuously.
  EXPECT_GT(edf_tight, 100u);
  EXPECT_GT(rr_tight, 100u);
}

TEST(PolicyComparison, SchedulerNames) {
  EXPECT_STREQ(DwcsScheduler{DwcsScheduler::Config{}}.name(), "dwcs");
  EXPECT_STREQ(EdfScheduler{}.name(), "edf");
  EXPECT_STREQ(StaticPriorityScheduler{}.name(), "static-priority");
  EXPECT_STREQ(RoundRobinScheduler{}.name(), "round-robin");
}

}  // namespace
}  // namespace nistream::dwcs
