// Representation-equivalence property tests.
//
// All attribute-aware representations (dual-heap, single-heap, sorted-list,
// calendar-queue) must produce the *identical dispatch sequence* for any
// workload — they are interchangeable data structures under one scheduling
// policy (§3.1.1). FCFS is checked separately for its own ordering.
#include "dwcs/repr.hpp"

#include <gtest/gtest.h>

#include "dwcs/scheduler.hpp"
#include "sim/random.hpp"

namespace nistream::dwcs {
namespace {

using sim::Time;

struct Event {
  StreamId stream;
  std::uint64_t frame_id;
  bool late;
  bool operator==(const Event&) const = default;
};

/// Replays a deterministic random workload through a scheduler with the
/// given representation and returns the dispatch trace.
std::vector<Event> run_workload(ReprKind kind, std::uint64_t seed,
                                int n_streams, int horizon_ms) {
  DwcsScheduler::Config cfg;
  cfg.repr = kind;
  DwcsScheduler s{cfg};
  sim::Rng rng{seed};
  std::vector<StreamId> ids;
  std::vector<int> periods;
  for (int i = 0; i < n_streams; ++i) {
    const auto y = 2 + static_cast<std::int64_t>(rng.below(6));
    const auto x = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(y)));
    const int period = 10 * (1 + static_cast<int>(rng.below(4)));
    ids.push_back(s.create_stream({.tolerance = {x, y},
                                   .period = Time::ms(period),
                                   .lossy = rng.chance(0.7)},
                                  Time::zero()));
    periods.push_back(period);
  }
  std::vector<Event> trace;
  std::uint64_t fid = 0;
  for (int t = 0; t <= horizon_ms; t += 5) {
    for (int i = 0; i < n_streams; ++i) {
      if (t % periods[static_cast<std::size_t>(i)] == 0) {
        s.enqueue(ids[static_cast<std::size_t>(i)],
                  FrameDescriptor{.frame_id = fid++, .bytes = 1000,
                                  .type = mpeg::FrameType::kP,
                                  .enqueued_at = Time::ms(t), .frame_addr = 0},
                  Time::ms(t));
      }
    }
    // Service at ~80% of aggregate demand so overload paths also run.
    if (t % 10 == 0) {
      for (int k = 0; k < n_streams / 2 + 1; ++k) {
        if (const auto d = s.schedule_next(Time::ms(t))) {
          trace.push_back({d->stream, d->frame.frame_id, d->late});
        }
      }
    }
  }
  return trace;
}

class ReprEquivalence : public ::testing::TestWithParam<ReprKind> {};

TEST_P(ReprEquivalence, MatchesSingleHeapTrace) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    const auto reference =
        run_workload(ReprKind::kSingleHeap, seed, /*n_streams=*/6,
                     /*horizon_ms=*/3000);
    const auto got = run_workload(GetParam(), seed, 6, 3000);
    ASSERT_EQ(got.size(), reference.size()) << "seed " << seed;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], reference[i])
          << "seed " << seed << " dispatch #" << i << " repr "
          << to_string(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ReprEquivalence,
                         ::testing::Values(ReprKind::kDualHeap,
                                           ReprKind::kSortedList,
                                           ReprKind::kCalendarQueue,
                                           ReprKind::kHierarchical,
                                           ReprKind::kPifo),
                         [](const auto& param_info) {
                           const std::string n{to_string(param_info.param)};
                           return n == "dual-heap"      ? "dual_heap"
                                  : n == "sorted-list"  ? "sorted_list"
                                  : n == "hierarchical" ? "hierarchical"
                                  : n == "pifo"         ? "pifo"
                                                        : "calendar_queue";
                         });

TEST(ReprFcfs, ServesInHeadArrivalOrder) {
  DwcsScheduler::Config cfg;
  cfg.repr = ReprKind::kFcfs;
  DwcsScheduler s{cfg};
  // Stream b's packet arrives first even though stream a is more urgent.
  const auto a = s.create_stream({.tolerance = {0, 4}, .period = Time::ms(5)},
                                 Time::zero());
  const auto b = s.create_stream({.tolerance = {3, 4}, .period = Time::ms(50)},
                                 Time::zero());
  s.enqueue(b, FrameDescriptor{.frame_id = 1, .bytes = 100,
                               .type = mpeg::FrameType::kI,
                               .enqueued_at = Time::ms(1), .frame_addr = 0},
            Time::ms(1));
  s.enqueue(a, FrameDescriptor{.frame_id = 2, .bytes = 100,
                               .type = mpeg::FrameType::kI,
                               .enqueued_at = Time::ms(2), .frame_addr = 0},
            Time::ms(2));
  const auto first = s.schedule_next(Time::ms(3));
  ASSERT_TRUE(first);
  EXPECT_EQ(first->stream, b);  // FCFS ignores urgency
}

TEST(ReprNames, AreStable) {
  EXPECT_STREQ(to_string(ReprKind::kDualHeap), "dual-heap");
  EXPECT_STREQ(to_string(ReprKind::kSingleHeap), "single-heap");
  EXPECT_STREQ(to_string(ReprKind::kSortedList), "sorted-list");
  EXPECT_STREQ(to_string(ReprKind::kFcfs), "fcfs");
  EXPECT_STREQ(to_string(ReprKind::kCalendarQueue), "calendar-queue");
  EXPECT_STREQ(to_string(ReprKind::kHierarchical), "hierarchical");
  EXPECT_STREQ(to_string(ReprKind::kPifo), "pifo");
}

}  // namespace
}  // namespace nistream::dwcs
