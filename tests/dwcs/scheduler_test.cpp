// Behavioural tests of the DWCS scheduler: precedence, window adjustments,
// late-packet handling, lossy vs loss-intolerant streams, deadline grids,
// and the window-constraint service guarantee (property-checked against the
// sliding-window monitor).
#include "dwcs/scheduler.hpp"

#include <gtest/gtest.h>

#include "dwcs/monitor.hpp"
#include "sim/random.hpp"

namespace nistream::dwcs {
namespace {

using sim::Time;

FrameDescriptor frame(std::uint64_t id, Time at, std::uint32_t bytes = 1000) {
  return FrameDescriptor{.frame_id = id, .bytes = bytes,
                         .type = mpeg::FrameType::kP, .enqueued_at = at,
                         .frame_addr = 0x400000 + id * 0x2000};
}

DwcsScheduler::Config config() { return DwcsScheduler::Config{}; }

TEST(Dwcs, EmptySchedulerReturnsNothing) {
  DwcsScheduler s{config()};
  EXPECT_FALSE(s.schedule_next(Time::zero()).has_value());
}

TEST(Dwcs, SingleStreamFifo) {
  DwcsScheduler s{config()};
  const auto id = s.create_stream({.tolerance = {1, 2}, .period = Time::ms(10)},
                                  Time::zero());
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(s.enqueue(id, frame(i, Time::zero()), Time::zero()));
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto d = s.schedule_next(Time::zero());
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->stream, id);
    EXPECT_EQ(d->frame.frame_id, i);
    EXPECT_FALSE(d->late);
  }
  EXPECT_FALSE(s.schedule_next(Time::zero()).has_value());
  EXPECT_EQ(s.stats(id).serviced_on_time, 4u);
}

TEST(Dwcs, EarlierDeadlineStreamServedFirst) {
  DwcsScheduler s{config()};
  const auto slow = s.create_stream({.tolerance = {1, 2}, .period = Time::ms(40)},
                                    Time::zero());
  const auto fast = s.create_stream({.tolerance = {1, 2}, .period = Time::ms(10)},
                                    Time::zero());
  s.enqueue(slow, frame(100, Time::zero()), Time::zero());
  s.enqueue(fast, frame(200, Time::zero()), Time::zero());
  const auto d = s.schedule_next(Time::zero());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->stream, fast);  // deadline at 10 ms beats 40 ms
}

TEST(Dwcs, ToleranceBreaksDeadlineTies) {
  DwcsScheduler s{config()};
  const auto loose = s.create_stream({.tolerance = {3, 4}, .period = Time::ms(10)},
                                     Time::zero());
  const auto tight = s.create_stream({.tolerance = {1, 4}, .period = Time::ms(10)},
                                     Time::zero());
  s.enqueue(loose, frame(1, Time::zero()), Time::zero());
  s.enqueue(tight, frame(2, Time::zero()), Time::zero());
  const auto d = s.schedule_next(Time::zero());
  ASSERT_TRUE(d);
  EXPECT_EQ(d->stream, tight);  // lower W' first (rule 2)
}

TEST(Dwcs, RuleAWindowResetAfterOnTimeServices) {
  // x/y = 2/4: the window completes after y-x = 2 on-time services.
  DwcsScheduler s{config()};
  const auto id = s.create_stream({.tolerance = {2, 4}, .period = Time::ms(10)},
                                  Time::zero());
  for (std::uint64_t i = 0; i < 2; ++i) {
    s.enqueue(id, frame(i, Time::zero()), Time::zero());
  }
  ASSERT_TRUE(s.schedule_next(Time::zero()));
  EXPECT_EQ(s.stream_view(id).current, (WindowConstraint{2, 3}));
  ASSERT_TRUE(s.schedule_next(Time::zero()));
  // y' fell to x' (2): reset to the original 2/4.
  EXPECT_EQ(s.stream_view(id).current, (WindowConstraint{2, 4}));
}

TEST(Dwcs, RuleBLossDecrementsBothAndViolationGrowsY) {
  DwcsScheduler s{config()};
  const auto id = s.create_stream(
      {.tolerance = {1, 3}, .period = Time::ms(10), .lossy = true},
      Time::zero());
  // Let two consecutive packets miss their deadlines.
  s.enqueue(id, frame(0, Time::zero()), Time::zero());
  s.enqueue(id, frame(1, Time::zero()), Time::zero());
  s.enqueue(id, frame(2, Time::zero()), Time::zero());
  // now = 25ms: deadline 10ms missed -> drop, x'/y' = 0/2; deadline 20ms also
  // missed -> violation (x'=0): y' grows to 3, violations = 1. The surviving
  // frame is then serviced on time, so rule (A) shrinks y' back to 2.
  const auto d = s.schedule_next(Time::ms(25));
  ASSERT_TRUE(d);
  EXPECT_EQ(s.stats(id).dropped, 2u);
  EXPECT_EQ(s.stats(id).violations, 1u);
  EXPECT_EQ(s.stream_view(id).current, (WindowConstraint{0, 2}));
  EXPECT_EQ(d->frame.frame_id, 2u);  // survivor transmitted on time
  EXPECT_FALSE(d->late);
}

TEST(Dwcs, LossyLatePacketsAreDroppedNotSent) {
  DwcsScheduler s{config()};
  const auto id = s.create_stream(
      {.tolerance = {2, 4}, .period = Time::ms(10), .lossy = true},
      Time::zero());
  s.enqueue(id, frame(0, Time::zero()), Time::zero());
  // Far past the deadline: the packet must be dropped, and with nothing else
  // queued the scheduler returns nothing.
  const auto d = s.schedule_next(Time::ms(100));
  EXPECT_FALSE(d.has_value());
  EXPECT_EQ(s.stats(id).dropped, 1u);
  EXPECT_EQ(s.stats(id).bytes_sent, 0u);
}

TEST(Dwcs, LossIntolerantLatePacketsAreSentLate) {
  DwcsScheduler s{config()};
  const auto id = s.create_stream(
      {.tolerance = {2, 4}, .period = Time::ms(10), .lossy = false},
      Time::zero());
  s.enqueue(id, frame(0, Time::zero()), Time::zero());
  const auto d = s.schedule_next(Time::ms(100));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->late);
  EXPECT_EQ(s.stats(id).serviced_late, 1u);
  EXPECT_EQ(s.stats(id).dropped, 0u);
  // The miss still consumed window tolerance (rule B).
  EXPECT_EQ(s.stream_view(id).current, (WindowConstraint{1, 3}));
}

TEST(Dwcs, DeadlineAdvancesByPeriodPerService) {
  DwcsScheduler s{config()};
  const auto id = s.create_stream({.tolerance = {1, 2}, .period = Time::ms(10)},
                                  Time::zero());
  for (std::uint64_t i = 0; i < 3; ++i) {
    s.enqueue(id, frame(i, Time::zero()), Time::zero());
  }
  EXPECT_EQ(s.stream_view(id).next_deadline, Time::ms(10));
  s.schedule_next(Time::zero());
  EXPECT_EQ(s.stream_view(id).next_deadline, Time::ms(20));
  s.schedule_next(Time::ms(5));
  EXPECT_EQ(s.stream_view(id).next_deadline, Time::ms(30));
}

TEST(Dwcs, IdleStreamDeadlineRestartsOnArrival) {
  DwcsScheduler s{config()};
  const auto id = s.create_stream({.tolerance = {1, 2}, .period = Time::ms(10)},
                                  Time::zero());
  // Nothing enqueued until t = 500 ms, far past the initial 10 ms deadline.
  s.enqueue(id, frame(0, Time::ms(500)), Time::ms(500));
  EXPECT_EQ(s.stream_view(id).next_deadline, Time::ms(510));
  const auto d = s.schedule_next(Time::ms(500));
  ASSERT_TRUE(d);
  EXPECT_FALSE(d->late);
  EXPECT_EQ(s.stats(id).dropped, 0u);  // the idle gap is not charged
}

TEST(Dwcs, RingFullRejectsEnqueue) {
  auto cfg = config();
  cfg.ring_capacity = 2;
  DwcsScheduler s{cfg};
  const auto id = s.create_stream({.tolerance = {1, 2}, .period = Time::ms(10)},
                                  Time::zero());
  EXPECT_TRUE(s.enqueue(id, frame(0, Time::zero()), Time::zero()));
  EXPECT_TRUE(s.enqueue(id, frame(1, Time::zero()), Time::zero()));
  EXPECT_FALSE(s.enqueue(id, frame(2, Time::zero()), Time::zero()));
  EXPECT_EQ(s.stats(id).enqueued, 2u);
}

TEST(Dwcs, BandwidthSharedByToleranceUnderOverload) {
  // Two equal-rate streams, 90% aggregate service capacity: the stream with
  // the tighter loss-tolerance (3/8, needs 62.5% of its packets on time)
  // must receive far more on-time service than the loose one (7/8, needs
  // 12.5%). DWCS converges on ~75% / ~15%.
  DwcsScheduler s{config()};
  const auto tight = s.create_stream(
      {.tolerance = {3, 8}, .period = Time::ms(10), .lossy = true},
      Time::zero());
  const auto loose = s.create_stream(
      {.tolerance = {7, 8}, .period = Time::ms(10), .lossy = true},
      Time::zero());
  std::uint64_t fid = 0;
  for (int t = 0; t < 20000; t += 10) {
    s.enqueue(tight, frame(fid++, Time::ms(t)), Time::ms(t));
    s.enqueue(loose, frame(fid++, Time::ms(t)), Time::ms(t));
    if (t % 100 < 90) (void)s.schedule_next(Time::ms(t));
  }
  EXPECT_GT(s.stats(tight).serviced_on_time,
            4 * s.stats(loose).serviced_on_time);
  EXPECT_EQ(s.total_violations(), 0u);
}

// ---- Property: the window-constraint guarantee under feasible load --------

TEST(DwcsProperty, NoViolationsWhenCapacityIsSufficient) {
  // Streams with loss-tolerance x/y only need (y-x)/y of their packets served
  // on time. Build a load where aggregate on-time demand is well under
  // capacity; DWCS must produce zero violating windows.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    DwcsScheduler s{config()};
    WindowViolationMonitor monitor;
    sim::Rng rng{seed};
    struct Spec {
      StreamId id;
      std::uint64_t next_frame = 0;
    };
    std::vector<Spec> specs;
    // 4 streams, period 40 ms each => aggregate 100 packets/s; the service
    // loop runs every 5 ms => 200 decisions/s. Plenty of slack.
    for (int i = 0; i < 4; ++i) {
      const auto y = 2 + static_cast<std::int64_t>(rng.below(6));
      const auto x = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(y)));
      const WindowConstraint c{x, y};
      const auto id = s.create_stream(
          {.tolerance = c, .period = Time::ms(40), .lossy = true},
          Time::zero());
      monitor.add_stream(c);
      specs.push_back({id});
    }
    std::vector<std::uint64_t> outcome_cursor(specs.size(), 0);
    for (int t = 0; t < 20000; t += 5) {
      if (t % 40 == 0) {
        for (auto& sp : specs) {
          s.enqueue(sp.id, frame(sp.next_frame++, Time::ms(t)), Time::ms(t));
        }
      }
      const auto before_drops = [&](StreamId id) { return s.stats(id).dropped; };
      std::vector<std::uint64_t> drops;
      for (const auto& sp : specs) drops.push_back(before_drops(sp.id));
      const auto d = s.schedule_next(Time::ms(t));
      // Feed the monitor in per-stream packet order: drops first, then the
      // dispatched packet.
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto now_drops = s.stats(specs[i].id).dropped;
        for (std::uint64_t k = drops[i]; k < now_drops; ++k) {
          monitor.record(specs[i].id, WindowViolationMonitor::Outcome::kDropped);
        }
      }
      if (d) {
        monitor.record(d->stream,
                       d->late ? WindowViolationMonitor::Outcome::kLate
                               : WindowViolationMonitor::Outcome::kOnTime);
      }
    }
    EXPECT_EQ(monitor.total_violating_windows(), 0u) << "seed " << seed;
    EXPECT_EQ(s.total_violations(), 0u) << "seed " << seed;
  }
}

TEST(DwcsProperty, ViolationCounterMatchesZeroToleranceMisses) {
  // With x = 0 (no losses tolerated) and an impossible load, every drop is a
  // violation; the internal counter must agree.
  DwcsScheduler s{config()};
  const auto id = s.create_stream(
      {.tolerance = {0, 4}, .period = Time::ms(10), .lossy = true},
      Time::zero());
  for (std::uint64_t i = 0; i < 10; ++i) {
    s.enqueue(id, frame(i, Time::zero()), Time::zero());
  }
  // Jump far ahead: every queued packet is late.
  (void)s.schedule_next(Time::ms(500));
  EXPECT_EQ(s.stats(id).dropped, 10u);
  EXPECT_EQ(s.stats(id).violations, 10u);
}

TEST(Dwcs, StatsAccounting) {
  DwcsScheduler s{config()};
  const auto id = s.create_stream({.tolerance = {1, 2}, .period = Time::ms(10)},
                                  Time::zero());
  s.enqueue(id, frame(0, Time::zero(), 1500), Time::zero());
  s.enqueue(id, frame(1, Time::zero(), 2500), Time::zero());
  s.schedule_next(Time::zero());
  s.schedule_next(Time::zero());
  const auto& st = s.stats(id);
  EXPECT_EQ(st.enqueued, 2u);
  EXPECT_EQ(st.serviced_on_time, 2u);
  EXPECT_EQ(st.bytes_sent, 4000u);
  EXPECT_EQ(st.losses(), 0u);
  EXPECT_EQ(s.decisions(), 2u);
}

}  // namespace
}  // namespace nistream::dwcs
