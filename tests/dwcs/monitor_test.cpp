// Tests for the sliding-window violation monitor.
#include "dwcs/monitor.hpp"

#include <gtest/gtest.h>

namespace nistream::dwcs {
namespace {

using Outcome = WindowViolationMonitor::Outcome;

TEST(Monitor, NoViolationWithinTolerance) {
  WindowViolationMonitor m;
  m.add_stream({1, 4});  // 1 loss per 4 allowed
  // Pattern: L O O O L O O O — every window of 4 has exactly 1 loss.
  for (int rep = 0; rep < 4; ++rep) {
    m.record(0, Outcome::kDropped);
    m.record(0, Outcome::kOnTime);
    m.record(0, Outcome::kOnTime);
    m.record(0, Outcome::kOnTime);
  }
  EXPECT_EQ(m.violating_windows(0), 0u);
  EXPECT_EQ(m.packets(0), 16u);
}

TEST(Monitor, AdjacentLossesViolate) {
  WindowViolationMonitor m;
  m.add_stream({1, 4});
  m.record(0, Outcome::kOnTime);
  m.record(0, Outcome::kOnTime);
  m.record(0, Outcome::kDropped);
  m.record(0, Outcome::kDropped);  // window OODD: 2 losses > 1
  EXPECT_EQ(m.violating_windows(0), 1u);
}

TEST(Monitor, SlidingWindowCountsEveryOffendingPosition) {
  WindowViolationMonitor m;
  m.add_stream({0, 3});  // zero tolerance
  m.record(0, Outcome::kOnTime);
  m.record(0, Outcome::kOnTime);
  m.record(0, Outcome::kLate);  // windows: OOL (violates)
  m.record(0, Outcome::kOnTime);  // OLO (violates)
  m.record(0, Outcome::kOnTime);  // LOO (violates)
  m.record(0, Outcome::kOnTime);  // OOO (fine)
  EXPECT_EQ(m.violating_windows(0), 3u);
}

TEST(Monitor, LateCountsAsLoss) {
  WindowViolationMonitor m;
  m.add_stream({0, 2});
  m.record(0, Outcome::kOnTime);
  m.record(0, Outcome::kLate);
  EXPECT_EQ(m.violating_windows(0), 1u);
}

TEST(Monitor, ShortSequencesCannotViolate) {
  WindowViolationMonitor m;
  m.add_stream({0, 5});
  for (int i = 0; i < 4; ++i) m.record(0, Outcome::kDropped);
  EXPECT_EQ(m.violating_windows(0), 0u);  // no full window of 5 yet
  m.record(0, Outcome::kDropped);
  EXPECT_EQ(m.violating_windows(0), 1u);
}

TEST(Monitor, PerStreamIndependence) {
  WindowViolationMonitor m;
  m.add_stream({0, 2});
  m.add_stream({2, 2});  // tolerates everything
  for (int i = 0; i < 10; ++i) {
    m.record(0, Outcome::kDropped);
    m.record(1, Outcome::kDropped);
  }
  EXPECT_GT(m.violating_windows(0), 0u);
  EXPECT_EQ(m.violating_windows(1), 0u);
  EXPECT_EQ(m.total_violating_windows(), m.violating_windows(0));
}

TEST(Monitor, ViolationRate) {
  WindowViolationMonitor m;
  m.add_stream({0, 2});
  m.record(0, Outcome::kDropped);
  m.record(0, Outcome::kDropped);  // window 1: violate
  m.record(0, Outcome::kOnTime);   // window 2: violate (D,O has 1 loss > 0)
  m.record(0, Outcome::kOnTime);   // window 3: fine
  // 3 full windows, 2 violating.
  EXPECT_DOUBLE_EQ(m.violation_rate(0), 2.0 / 3.0);
}

}  // namespace
}  // namespace nistream::dwcs
