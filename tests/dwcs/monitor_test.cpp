// Tests for the sliding-window violation monitor.
#include "dwcs/monitor.hpp"

#include <gtest/gtest.h>

namespace nistream::dwcs {
namespace {

using Outcome = WindowViolationMonitor::Outcome;

TEST(Monitor, NoViolationWithinTolerance) {
  WindowViolationMonitor m;
  m.add_stream({1, 4});  // 1 loss per 4 allowed
  // Pattern: L O O O L O O O — every window of 4 has exactly 1 loss.
  for (int rep = 0; rep < 4; ++rep) {
    m.record(0, Outcome::kDropped);
    m.record(0, Outcome::kOnTime);
    m.record(0, Outcome::kOnTime);
    m.record(0, Outcome::kOnTime);
  }
  EXPECT_EQ(m.violating_windows(0), 0u);
  EXPECT_EQ(m.packets(0), 16u);
}

TEST(Monitor, AdjacentLossesViolate) {
  WindowViolationMonitor m;
  m.add_stream({1, 4});
  m.record(0, Outcome::kOnTime);
  m.record(0, Outcome::kOnTime);
  m.record(0, Outcome::kDropped);
  m.record(0, Outcome::kDropped);  // window OODD: 2 losses > 1
  EXPECT_EQ(m.violating_windows(0), 1u);
}

TEST(Monitor, SlidingWindowCountsEveryOffendingPosition) {
  WindowViolationMonitor m;
  m.add_stream({0, 3});  // zero tolerance
  m.record(0, Outcome::kOnTime);
  m.record(0, Outcome::kOnTime);
  m.record(0, Outcome::kLate);  // windows: OOL (violates)
  m.record(0, Outcome::kOnTime);  // OLO (violates)
  m.record(0, Outcome::kOnTime);  // LOO (violates)
  m.record(0, Outcome::kOnTime);  // OOO (fine)
  EXPECT_EQ(m.violating_windows(0), 3u);
}

TEST(Monitor, LateCountsAsLoss) {
  WindowViolationMonitor m;
  m.add_stream({0, 2});
  m.record(0, Outcome::kOnTime);
  m.record(0, Outcome::kLate);
  EXPECT_EQ(m.violating_windows(0), 1u);
}

TEST(Monitor, ShortSequencesCannotViolate) {
  WindowViolationMonitor m;
  m.add_stream({0, 5});
  for (int i = 0; i < 4; ++i) m.record(0, Outcome::kDropped);
  EXPECT_EQ(m.violating_windows(0), 0u);  // no full window of 5 yet
  m.record(0, Outcome::kDropped);
  EXPECT_EQ(m.violating_windows(0), 1u);
}

TEST(Monitor, PerStreamIndependence) {
  WindowViolationMonitor m;
  m.add_stream({0, 2});
  m.add_stream({2, 2});  // tolerates everything
  for (int i = 0; i < 10; ++i) {
    m.record(0, Outcome::kDropped);
    m.record(1, Outcome::kDropped);
  }
  EXPECT_GT(m.violating_windows(0), 0u);
  EXPECT_EQ(m.violating_windows(1), 0u);
  EXPECT_EQ(m.total_violating_windows(), m.violating_windows(0));
}

TEST(Monitor, ViolationRate) {
  WindowViolationMonitor m;
  m.add_stream({0, 2});
  m.record(0, Outcome::kDropped);
  m.record(0, Outcome::kDropped);  // window 1: violate
  m.record(0, Outcome::kOnTime);   // window 2: violate (D,O has 1 loss > 0)
  m.record(0, Outcome::kOnTime);   // window 3: fine
  // 3 full windows, 2 violating.
  EXPECT_DOUBLE_EQ(m.violation_rate(0), 2.0 / 3.0);
}

// Pinned goldens for the per-scope aggregates across three concurrent
// scopes — the numbers the tenant-isolation chaos gate compares. All rates
// are hand-computed from the outcome sequences below.
TEST(Monitor, PerScopeRatesAcrossThreeScopes) {
  using Key = WindowViolationMonitor::StreamKey;
  WindowViolationMonitor m;
  // Scope 1: one collapsed stream, one clean stream, both 1/2.
  m.add_stream(Key{1, 0}, {1, 2});
  m.add_stream(Key{1, 1}, {1, 2});
  for (int i = 0; i < 4; ++i) m.record(Key{1, 0}, Outcome::kDropped);
  for (int i = 0; i < 4; ++i) m.record(Key{1, 1}, Outcome::kOnTime);
  // Scope 2: 1/4 stream with a lone leading loss — never violates.
  m.add_stream(Key{2, 0}, {1, 4});
  m.record(Key{2, 0}, Outcome::kDropped);
  for (int i = 0; i < 4; ++i) m.record(Key{2, 0}, Outcome::kOnTime);
  // Scope 3: zero-tolerance 0/2 stream with one mid-sequence loss.
  m.add_stream(Key{3, 5}, {0, 2});
  m.record(Key{3, 5}, Outcome::kOnTime);
  m.record(Key{3, 5}, Outcome::kLate);
  m.record(Key{3, 5}, Outcome::kOnTime);

  // Scope 1: stream 0 violates all 3 of its window positions, stream 1 none
  // of its 3 → max 1.0, aggregate 3/6, one violating stream.
  EXPECT_DOUBLE_EQ(m.scope_max_violation_rate(1), 1.0);
  EXPECT_DOUBLE_EQ(m.scope_aggregate_violation_rate(1), 3.0 / 6.0);
  EXPECT_EQ(m.scope_violating_streams(1), 1u);
  // Scope 2: 2 positions, 0 violations.
  EXPECT_DOUBLE_EQ(m.scope_max_violation_rate(2), 0.0);
  EXPECT_DOUBLE_EQ(m.scope_aggregate_violation_rate(2), 0.0);
  EXPECT_EQ(m.scope_violating_streams(2), 0u);
  // Scope 3: both full windows contain the loss → 2/2.
  EXPECT_DOUBLE_EQ(m.scope_max_violation_rate(3), 1.0);
  EXPECT_DOUBLE_EQ(m.scope_aggregate_violation_rate(3), 1.0);
  EXPECT_EQ(m.scope_violating_streams(3), 1u);
  // An untouched scope reads as clean, not as an error.
  EXPECT_DOUBLE_EQ(m.scope_max_violation_rate(9), 0.0);
  EXPECT_EQ(m.scope_violating_streams(9), 0u);
  // Global aggregates span every scope: (3+0+2) / (6+2+2).
  EXPECT_DOUBLE_EQ(m.aggregate_violation_rate(), 5.0 / 10.0);
  EXPECT_DOUBLE_EQ(m.max_violation_rate(), 1.0);
}

// Retire-before-purge ordering: once a placement is retired, the purge's
// drop storm must not move its scope's rates — the golden the session
// plane's close_session sequence (retire, then purge_stream) relies on.
TEST(Monitor, RetireFreezesScopeRatesBeforePurge) {
  using Key = WindowViolationMonitor::StreamKey;
  WindowViolationMonitor m;
  m.add_stream(Key{1, 0}, {1, 2});
  m.record(Key{1, 0}, Outcome::kOnTime);
  m.record(Key{1, 0}, Outcome::kOnTime);
  m.record(Key{1, 0}, Outcome::kOnTime);  // 2 clean positions
  m.retire(Key{1, 0});
  // The purge's abandoned frames arrive as drops — all ignored.
  for (int i = 0; i < 8; ++i) m.record(Key{1, 0}, Outcome::kDropped);
  EXPECT_EQ(m.packets(Key{1, 0}), 3u);
  EXPECT_DOUBLE_EQ(m.scope_max_violation_rate(1), 0.0);
  EXPECT_DOUBLE_EQ(m.scope_aggregate_violation_rate(1), 0.0);
  // A sibling placement in the same scope keeps accruing normally.
  m.add_stream(Key{1, 1}, {0, 2});
  m.record(Key{1, 1}, Outcome::kDropped);
  m.record(Key{1, 1}, Outcome::kDropped);
  EXPECT_DOUBLE_EQ(m.scope_max_violation_rate(1), 1.0);
  EXPECT_DOUBLE_EQ(m.scope_aggregate_violation_rate(1), 1.0 / 3.0);
}

}  // namespace
}  // namespace nistream::dwcs
