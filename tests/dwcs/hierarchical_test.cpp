// HierarchicalScheduler (sharded multi-core DWCS) contract tests.
//
// The load-bearing property is DECISION IDENTITY: the full rule-1..5
// precedence is a total order (rule 5 ends every tie at "lowest stream id"),
// so the minimum over per-shard minima equals the global minimum for any
// shard count, and a sharded board must dispatch exactly what a single
// dual heap dispatches. The 1-shard case is the degenerate anchor (one
// core, one root entry); multi-shard cases prove the root arbiter.
//
// The repr_differential_test additionally runs hierarchical reprs inside
// its 5-way lock-step harness; this file holds the focused direct-vs-
// DualHeapRepr comparison, the shard-hash stability pins, and the
// interconnect-hop cost accounting.
#include "dwcs/hierarchical.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "dwcs/dual_heap.hpp"
#include "sim/random.hpp"

namespace nistream::dwcs {
namespace {

using sim::Time;

// ---------------------------------------------------------------------------
// shard_of: stable, total, well-spread.
// ---------------------------------------------------------------------------

TEST(ShardHash, PinnedGoldenValues) {
  // shard_of is part of the on-disk/cross-board contract (the same stream
  // set must land on the same cores in every run, with no rebalancing
  // state), so its values are pinned, not just its shape. Changing the hash
  // is a breaking change and must show up here.
  EXPECT_EQ(shard_of(0, 8), 7u);
  EXPECT_EQ(shard_of(1, 8), 1u);
  EXPECT_EQ(shard_of(2, 8), 6u);
  EXPECT_EQ(shard_of(7, 3), 0u);
  EXPECT_EQ(shard_of(42, 16), 5u);
  EXPECT_EQ(shard_of(99999, 8), 6u);
}

TEST(ShardHash, SingleShardMapsEverythingToZero) {
  for (StreamId id = 0; id < 1000; ++id) EXPECT_EQ(shard_of(id, 1), 0u);
}

TEST(ShardHash, StableAcrossCallsAndSpreadsLoad) {
  constexpr std::uint32_t kShards = 8;
  std::array<int, kShards> count{};
  for (StreamId id = 0; id < 10'000; ++id) {
    const auto s = shard_of(id, kShards);
    ASSERT_LT(s, kShards);
    ASSERT_EQ(s, shard_of(id, kShards));  // pure function of (id, shards)
    ++count[s];
  }
  // Sequential ids (the allocator's pattern) must not pile onto few shards:
  // each shard within 2x of the uniform share.
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_GT(count[s], 10'000 / (2 * kShards)) << "shard " << s;
    EXPECT_LT(count[s], 2 * 10'000 / kShards) << "shard " << s;
  }
}

// ---------------------------------------------------------------------------
// Decision identity vs DualHeapRepr.
// ---------------------------------------------------------------------------

class FakeTable final : public StreamTable {
 public:
  FakeTable() : StreamTable{views_} {}
  StreamView& mutable_view(StreamId id) { return views_[id]; }
  StreamId add(const StreamView& v) {
    views_.push_back(v);
    return static_cast<StreamId>(views_.size() - 1);
  }
  [[nodiscard]] std::size_t size() const { return views_.size(); }

 private:
  std::vector<StreamView> views_;
};

StreamView random_view(sim::Rng& rng, Time now) {
  StreamView v;
  const std::int64_t y = 1 + static_cast<std::int64_t>(rng.below(6));
  v.current = {static_cast<std::int64_t>(
                   rng.below(static_cast<std::uint64_t>(y + 1))),
               y};
  // Coarse deadline grid so ties are the common case and rule 5 decides.
  v.next_deadline = now + Time::ms(10 * (1 + static_cast<int>(rng.below(4))));
  v.head_enqueued_at = now;
  return v;
}

/// Drive DualHeapRepr and HierarchicalScheduler(shards) in lock-step through
/// a randomized insert/remove/update/dispatch workload and assert pick() and
/// earliest_deadline() agree on every round. Returns rounds with a winner.
int run_lockstep(std::uint32_t shards, std::uint64_t seed) {
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  DualHeapRepr reference{table, cmp, null_cost_hook(), 0x0100'0000};
  HierarchicalScheduler sharded{table, cmp, null_cost_hook(), 0x0200'0000,
                                HierarchicalParams{.shards = shards}};
  EXPECT_EQ(sharded.shards(), shards);

  sim::Rng rng{seed};
  std::vector<bool> present;
  Time now = Time::zero();
  const auto insert = [&](StreamId id) {
    reference.insert(id);
    sharded.insert(id);
    present[id] = true;
  };

  for (int i = 0; i < 32; ++i) {
    const auto id = table.add(random_view(rng, now));
    present.push_back(false);
    insert(id);
  }

  int decided = 0;
  for (int round = 0; round < 1500; ++round) {
    now += Time::ms(1 + static_cast<double>(rng.below(5)));
    const auto op = rng.below(10);
    if (op == 0 && table.size() < 96) {
      const auto id = table.add(random_view(rng, now));
      present.push_back(false);
      insert(id);
    } else if (op == 1) {
      const auto id = static_cast<StreamId>(rng.below(table.size()));
      if (present[id]) {
        reference.remove(id);
        sharded.remove(id);
        present[id] = false;
      } else {
        table.mutable_view(id) = random_view(rng, now);
        insert(id);
      }
    }

    const auto p_ref = reference.pick();
    const auto p_sh = sharded.pick();
    EXPECT_EQ(p_sh, p_ref) << "shards " << shards << " seed " << seed
                           << " round " << round;
    EXPECT_EQ(sharded.earliest_deadline(), reference.earliest_deadline())
        << "shards " << shards << " seed " << seed << " round " << round;
    if (!p_ref || p_sh != p_ref) continue;

    // Dispatch the winner: window adjustment + deadline advance, then
    // update both reprs — the scheduler's own mutation pattern.
    auto& v = table.mutable_view(*p_ref);
    if (v.current.y > v.current.x) --v.current.y;
    v.next_deadline +=
        Time::ms(10 * (1 + static_cast<double>(rng.below(4))));
    reference.update(*p_ref);
    sharded.update(*p_ref);
    ++decided;
  }
  return decided;
}

TEST(HierarchicalIdentity, OneShardMatchesDualHeap) {
  // Same seeds as the 5-way differential test.
  for (const std::uint64_t seed : {7u, 99u, 1234u}) {
    EXPECT_GT(run_lockstep(1, seed), 1000) << "seed " << seed;
  }
}

TEST(HierarchicalIdentity, MultiShardMatchesDualHeap) {
  for (const std::uint32_t shards : {2u, 3u, 4u, 8u, 16u}) {
    for (const std::uint64_t seed : {7u, 99u, 1234u}) {
      EXPECT_GT(run_lockstep(shards, seed), 1000)
          << "shards " << shards << " seed " << seed;
    }
  }
}

TEST(Hierarchical, PopulationTracksShardAssignment) {
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  HierarchicalScheduler h{table, cmp, null_cost_hook(), 0x0100'0000,
                          HierarchicalParams{.shards = 4}};
  sim::Rng rng{5};
  for (int i = 0; i < 200; ++i) {
    h.insert(table.add(random_view(rng, Time::zero())));
  }
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < h.shards(); ++s) {
    total += h.shard_population(s);
    EXPECT_GT(h.shard_population(s), 0u) << "shard " << s;
  }
  EXPECT_EQ(total, 200u);
  for (StreamId id = 0; id < 50; ++id) h.remove(id);
  total = 0;
  for (std::uint32_t s = 0; s < h.shards(); ++s) total += h.shard_population(s);
  EXPECT_EQ(total, 150u);
}

// ---------------------------------------------------------------------------
// Interconnect hop accounting.
// ---------------------------------------------------------------------------

class CycleCountingHook final : public CostHook {
 public:
  void cycles(std::int64_t n) override { total += n; }
  std::int64_t total = 0;
};

/// Total cycles() charged for a fixed insert+dispatch workload.
std::int64_t charged_cycles(std::uint32_t shards, std::int64_t hop_cycles) {
  FakeTable table;
  CycleCountingHook hook;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  HierarchicalScheduler h{table, cmp, hook, 0x0100'0000,
                          HierarchicalParams{.shards = shards,
                                             .hop_cycles = hop_cycles}};
  sim::Rng rng{17};
  Time now = Time::zero();
  for (int i = 0; i < 64; ++i) h.insert(table.add(random_view(rng, now)));
  for (int round = 0; round < 200; ++round) {
    now += Time::ms(2);
    const auto p = h.pick();
    if (!p) break;
    auto& v = table.mutable_view(*p);
    if (v.current.y > v.current.x) --v.current.y;
    v.next_deadline += Time::ms(10 * (1 + static_cast<double>(rng.below(4))));
    h.update(*p);
  }
  return hook.total;
}

TEST(HierarchicalHop, ChargedOnlyWhenShardedAndNonZero) {
  // Single core: there is no interconnect, so the hop parameter must be
  // inert — the charge stream is identical with it set or not.
  EXPECT_EQ(charged_cycles(1, 0), charged_cycles(1, 25));
  // Multi-core with a real hop cost charges strictly more than hop=0, and
  // the surplus is a whole number of hops (every charge is one full hop).
  const std::int64_t base = charged_cycles(8, 0);
  const std::int64_t with_hop = charged_cycles(8, 25);
  EXPECT_GT(with_hop, base);
  EXPECT_EQ((with_hop - base) % 25, 0);
}

}  // namespace
}  // namespace nistream::dwcs
