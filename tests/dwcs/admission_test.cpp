// Tests for the DWCS admission controller.
#include "dwcs/admission.hpp"

#include <gtest/gtest.h>

namespace nistream::dwcs {
namespace {

using sim::Time;

AdmissionController fast_ethernet() {
  // 100 Mbps link, 95 us per frame of NI CPU.
  return AdmissionController{100e6 / 8.0, Time::us(95)};
}

TEST(Admission, OntimeFraction) {
  EXPECT_DOUBLE_EQ(AdmissionController::ontime_fraction({0, 8}), 1.0);
  EXPECT_DOUBLE_EQ(AdmissionController::ontime_fraction({2, 8}), 0.75);
  EXPECT_DOUBLE_EQ(AdmissionController::ontime_fraction({8, 8}), 0.0);
}

TEST(Admission, LinkLoadComputation) {
  auto ac = fast_ethernet();
  // 1000 B / 33.333 ms = 30 KB/s of raw rate; tolerance 2/8 => 75% on time
  // => 22.5 KB/s of 12.5 MB/s = 0.18%.
  const AdmissionController::Request r{
      .tolerance = {2, 8}, .period = Time::ms(33.333),
      .mean_frame_bytes = 1000};
  EXPECT_NEAR(ac.link_load(r), 0.0018, 0.0001);
}

TEST(Admission, CpuLoadUsesFullFrameRate) {
  auto ac = fast_ethernet();
  // 30 fps x 95 us = 2.85 ms/s = 0.285%, regardless of tolerance.
  for (const std::int64_t x : {0, 4, 7}) {
    const AdmissionController::Request r{
        .tolerance = {x, 8}, .period = Time::ms(33.333),
        .mean_frame_bytes = 1000};
    EXPECT_NEAR(ac.cpu_load(r), 0.00285, 0.0001);
  }
}

TEST(Admission, AdmitsUntilHeadroomThenRejects) {
  auto ac = fast_ethernet();
  const AdmissionController::Request r{
      .tolerance = {0, 8}, .period = Time::ms(33.333),
      .mean_frame_bytes = 1000};
  // CPU is the binding resource here: 0.285%/stream against 90% headroom
  // => ~315 streams.
  int admitted = 0;
  while (ac.admit(r)) ++admitted;
  EXPECT_NEAR(admitted, 315, 4);
  EXPECT_EQ(ac.admitted(), static_cast<std::uint64_t>(admitted));
  EXPECT_EQ(ac.rejected(), 1u);
  EXPECT_LE(ac.cpu_utilization(), ac.headroom());
}

TEST(Admission, ToleranceRaisesLinkCapacityNotCpu) {
  // High-tolerance streams need less bandwidth reserved; on a link-bound
  // workload (big frames) that admits more of them.
  AdmissionController tight_ac{100e6 / 8.0, Time::us(10)};
  AdmissionController loose_ac{100e6 / 8.0, Time::us(10)};
  const AdmissionController::Request tight{
      .tolerance = {0, 8}, .period = Time::ms(33.333),
      .mean_frame_bytes = 20000};
  const AdmissionController::Request loose{
      .tolerance = {6, 8}, .period = Time::ms(33.333),
      .mean_frame_bytes = 20000};
  int n_tight = 0, n_loose = 0;
  while (tight_ac.admit(tight)) ++n_tight;
  while (loose_ac.admit(loose)) ++n_loose;
  EXPECT_GT(n_loose, 3 * n_tight);
}

TEST(Admission, ReleaseReturnsCapacity) {
  auto ac = fast_ethernet();
  const AdmissionController::Request r{
      .tolerance = {2, 8}, .period = Time::ms(33.333),
      .mean_frame_bytes = 1000};
  ASSERT_TRUE(ac.admit(r));
  const double used = ac.cpu_utilization();
  EXPECT_GT(used, 0.0);
  ac.release(r);
  EXPECT_NEAR(ac.cpu_utilization(), 0.0, 1e-12);
  EXPECT_NEAR(ac.link_utilization(), 0.0, 1e-12);
  EXPECT_EQ(ac.admitted(), 0u);
}

TEST(Admission, RejectsInvalidRequests) {
  auto ac = fast_ethernet();
  EXPECT_FALSE(ac.admit({.tolerance = {9, 8}, .period = Time::ms(10),
                         .mean_frame_bytes = 100}));
  EXPECT_FALSE(ac.admit({.tolerance = {1, 8}, .period = Time::zero(),
                         .mean_frame_bytes = 100}));
}

}  // namespace
}  // namespace nistream::dwcs
