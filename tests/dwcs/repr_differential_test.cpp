// Differential representation test — the safety net for the tie-break
// machinery.
//
// All ReprKinds are driven in lock-step through 1k-round randomized
// enqueue/schedule workloads against one shared stream table — including
// the PIFO rank engine under the DWCS rank and the hierarchical (sharded)
// representation at 1 shard (the degenerate case that must collapse to
// dual-heap behavior) and 3 shards (odd count, so the splitmix64 shard hash
// is exercised off the power-of-two path). Every round:
//   * pick() must return the identical stream across all attribute-aware
//     representations (dual-heap, single-heap, sorted-list, calendar-queue,
//     pifo, hierarchical x shards) — they are interchangeable structures
//     under one policy (§3.1.1), so the dispatched stream sequence must be
//     identical;
//   * earliest_deadline() must agree across ALL representations,
//     FCFS included (its earliest-deadline contract is attribute-honest
//     even though its pick() deliberately ignores the precedence rules).
//
// Deadline ties are engineered to be frequent (few distinct periods, grid-
// aligned deadlines) so the dual-heap slow path and the calendar-queue
// bucket scans are exercised constantly.
#include "dwcs/repr.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"

namespace nistream::dwcs {
namespace {

using sim::Time;

class FakeTable final : public StreamTable {
 public:
  FakeTable() : StreamTable{views_} {}
  StreamView& mutable_view(StreamId id) { return views_[id]; }
  StreamId add(const StreamView& v) {
    views_.push_back(v);
    return static_cast<StreamId>(views_.size() - 1);
  }
  [[nodiscard]] std::size_t size() const { return views_.size(); }

 private:
  std::vector<StreamView> views_;
};

struct Harness {
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  std::vector<std::unique_ptr<ScheduleRepr>> reprs;
  std::vector<bool> present;

  // FCFS is deliberately LAST: every repr before it is attribute-aware and
  // must agree on pick(); FCFS only joins the earliest_deadline() check.
  Harness() {
    for (const auto kind :
         {ReprKind::kDualHeap, ReprKind::kSingleHeap, ReprKind::kSortedList,
          ReprKind::kCalendarQueue, ReprKind::kPifo}) {
      reprs.push_back(
          make_repr(kind, table, cmp, null_cost_hook(), 0x0100'0000));
    }
    for (const std::uint32_t shards : {1u, 3u}) {
      reprs.push_back(make_repr(ReprKind::kHierarchical, table, cmp,
                                null_cost_hook(), 0x0100'0000,
                                HierarchicalParams{.shards = shards}));
    }
    reprs.push_back(
        make_repr(ReprKind::kFcfs, table, cmp, null_cost_hook(), 0x0100'0000));
  }

  void insert(StreamId id) {
    for (auto& r : reprs) r->insert(id);
    present[id] = true;
  }
  void remove(StreamId id) {
    for (auto& r : reprs) r->remove(id);
    present[id] = false;
  }
  void update(StreamId id) {
    for (auto& r : reprs) r->update(id);
  }
};

TEST(ReprDifferential, RandomizedLockStep) {
  for (const std::uint64_t seed : {7u, 99u, 1234u}) {
    Harness h;
    sim::Rng rng{seed};

    // Seed population: 24 streams on a coarse deadline grid (4 periods) so
    // ties are the common case, with random tolerances.
    const auto random_view = [&](Time now) {
      StreamView v;
      const std::int64_t y = 1 + static_cast<std::int64_t>(rng.below(6));
      const std::int64_t x = static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(y + 1)));
      v.current = {x, y};  // fresh stream: current == original constraint
      const int period_ms = 10 * (1 + static_cast<int>(rng.below(4)));
      v.next_deadline = now + Time::ms(period_ms);
      v.head_enqueued_at = now;
      return v;
    };
    // Original window constraints, per stream — the harness's stand-in for
    // StreamParams::tolerance (StreamView carries only the current one).
    std::vector<WindowConstraint> originals;

    Time now = Time::zero();
    for (int i = 0; i < 24; ++i) {
      const auto id = h.table.add(random_view(now));
      originals.push_back(h.table.mutable_view(id).current);
      h.present.push_back(false);
      h.insert(id);
    }

    std::vector<StreamId> dispatched;
    int backlogged = 24;
    for (int round = 0; round < 1000; ++round) {
      now += Time::ms(1 + static_cast<double>(rng.below(5)));

      // Occasionally add a brand-new stream or toggle an existing one.
      const auto op = rng.below(10);
      if (op == 0 && h.table.size() < 64) {
        const auto id = h.table.add(random_view(now));
        originals.push_back(h.table.mutable_view(id).current);
        h.present.push_back(false);
        h.insert(id);
        ++backlogged;
      } else if (op == 1) {
        const auto id = static_cast<StreamId>(rng.below(h.table.size()));
        if (h.present[id] && backlogged > 2) {
          h.remove(id);
          --backlogged;
        } else if (!h.present[id]) {
          h.table.mutable_view(id) = random_view(now);
          originals[id] = h.table.mutable_view(id).current;
          h.insert(id);
          ++backlogged;
        }
      } else if (op == 2) {
        // Tolerance-only churn (exercises update() with unchanged deadline —
        // the calendar queue's same-bucket early-out).
        const auto id = static_cast<StreamId>(rng.below(h.table.size()));
        if (h.present[id]) {
          auto& v = h.table.mutable_view(id);
          const std::int64_t y = 1 + static_cast<std::int64_t>(rng.below(6));
          v.current = {static_cast<std::int64_t>(
                           rng.below(static_cast<std::uint64_t>(y + 1))),
                       y};
          h.update(id);
        }
      }

      // Lock-step queries. All reprs but the trailing FCFS are
      // attribute-aware and must agree on pick().
      std::optional<StreamId> pick0;
      for (std::size_t k = 0; k + 1 < h.reprs.size(); ++k) {
        const auto p = h.reprs[k]->pick();
        if (k == 0) {
          pick0 = p;
        } else {
          ASSERT_EQ(p, pick0) << "seed " << seed << " round " << round
                              << ": " << h.reprs[k]->name() << " vs "
                              << h.reprs[0]->name();
        }
      }
      std::optional<StreamId> ed0;
      for (std::size_t k = 0; k < h.reprs.size(); ++k) {  // all, FCFS too
        const auto e = h.reprs[k]->earliest_deadline();
        if (k == 0) {
          ed0 = e;
        } else {
          ASSERT_EQ(e, ed0) << "seed " << seed << " round " << round
                            << ": earliest_deadline of " << h.reprs[k]->name();
        }
      }

      // "Dispatch" the agreed pick: rule-(A) window adjustment + deadline
      // advance, exactly as the scheduler would, then update every repr.
      if (pick0) {
        dispatched.push_back(*pick0);
        auto& v = h.table.mutable_view(*pick0);
        if (v.current.y > v.current.x) --v.current.y;
        if (v.current.y == v.current.x) v.current = originals[*pick0];
        v.next_deadline += Time::ms(10 * (1 + static_cast<double>(rng.below(4))));
        h.update(*pick0);
      }
    }
    // The attribute-aware reprs agreed on every round, so `dispatched`
    // IS the common dispatch sequence; sanity-check it is non-trivial.
    ASSERT_GT(dispatched.size(), 900u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace nistream::dwcs
