// PIFO rank engine contract tests.
//
// The load-bearing property is DECISION IDENTITY for the DWCS rank:
// PifoRepr<DwcsRank> ranks by the same rule-1..5 total order as
// DualHeapRepr's full-order shadow heap, so both must pick() the identical
// stream on every round — flat, and with PIFO engines as the per-core
// representation inside the hierarchical sharding layer at every shard
// count. The WFQ rank is stateful (virtual finish tags), so its tests
// assert the fair-queueing contract instead: service counts converge to
// weight-proportional shares, and an idle flow rejoins at the clock with
// no banked catch-up burst.
#include "dwcs/pifo.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "dwcs/dual_heap.hpp"
#include "dwcs/hierarchical.hpp"
#include "sim/random.hpp"

namespace nistream::dwcs {
namespace {

using sim::Time;

class FakeTable final : public StreamTable {
 public:
  FakeTable() : StreamTable{views_} {}
  StreamView& mutable_view(StreamId id) { return views_[id]; }
  StreamId add(const StreamView& v) {
    views_.push_back(v);
    return static_cast<StreamId>(views_.size() - 1);
  }
  [[nodiscard]] std::size_t size() const { return views_.size(); }

 private:
  std::vector<StreamView> views_;
};

StreamView random_view(sim::Rng& rng, Time now) {
  StreamView v;
  const std::int64_t y = 1 + static_cast<std::int64_t>(rng.below(6));
  v.current = {static_cast<std::int64_t>(
                   rng.below(static_cast<std::uint64_t>(y + 1))),
               y};
  // Coarse deadline grid so ties are the common case and rule 5 decides.
  v.next_deadline = now + Time::ms(10 * (1 + static_cast<int>(rng.below(4))));
  v.head_enqueued_at = now;
  return v;
}

// ---------------------------------------------------------------------------
// DWCS-rank decision identity vs DualHeapRepr.
// ---------------------------------------------------------------------------

/// Drive DualHeapRepr and `candidate` in lock-step through a randomized
/// insert/remove/update/dispatch workload and assert pick() and
/// earliest_deadline() agree on every round. Dispatch follows the
/// scheduler's own mutation pattern, on_charge() included, so the charged
/// stream's re-sift happens through update() per the contract. Returns
/// rounds with a winner.
int run_lockstep(FakeTable& table, ScheduleRepr& reference,
                 ScheduleRepr& candidate, std::uint64_t seed,
                 const char* label) {
  sim::Rng rng{seed};
  std::vector<bool> present;
  Time now = Time::zero();
  const auto insert = [&](StreamId id) {
    reference.insert(id);
    candidate.insert(id);
    present[id] = true;
  };

  for (int i = 0; i < 32; ++i) {
    const auto id = table.add(random_view(rng, now));
    present.push_back(false);
    insert(id);
  }

  int decided = 0;
  for (int round = 0; round < 1500; ++round) {
    now += Time::ms(1 + static_cast<double>(rng.below(5)));
    const auto op = rng.below(10);
    if (op == 0 && table.size() < 96) {
      const auto id = table.add(random_view(rng, now));
      present.push_back(false);
      insert(id);
    } else if (op == 1) {
      const auto id = static_cast<StreamId>(rng.below(table.size()));
      if (present[id]) {
        reference.remove(id);
        candidate.remove(id);
        present[id] = false;
      } else {
        table.mutable_view(id) = random_view(rng, now);
        insert(id);
      }
    }

    const auto p_ref = reference.pick();
    const auto p_cand = candidate.pick();
    EXPECT_EQ(p_cand, p_ref) << label << " seed " << seed << " round "
                             << round;
    EXPECT_EQ(candidate.earliest_deadline(), reference.earliest_deadline())
        << label << " seed " << seed << " round " << round;
    if (!p_ref || p_cand != p_ref) continue;

    // Dispatch the winner: charge, window adjustment, deadline advance,
    // then update both reprs — the scheduler's own mutation pattern.
    reference.on_charge(*p_ref);
    candidate.on_charge(*p_ref);
    auto& v = table.mutable_view(*p_ref);
    if (v.current.y > v.current.x) --v.current.y;
    v.next_deadline += Time::ms(10 * (1 + static_cast<double>(rng.below(4))));
    reference.update(*p_ref);
    candidate.update(*p_ref);
    ++decided;
  }
  return decided;
}

TEST(PifoIdentity, DwcsRankMatchesDualHeap) {
  // Same seeds as the 5-way differential test.
  for (const std::uint64_t seed : {7u, 99u, 1234u}) {
    FakeTable table;
    Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
    DualHeapRepr reference{table, cmp, null_cost_hook(), 0x0100'0000};
    const auto pifo = make_repr(ReprKind::kPifo, table, cmp, null_cost_hook(),
                                0x0200'0000);
    EXPECT_STREQ(pifo->name(), "pifo-dwcs");
    EXPECT_GT(run_lockstep(table, reference, *pifo, seed, "flat"), 1000)
        << "seed " << seed;
  }
}

TEST(PifoIdentity, HierarchicalPifoCoresMatchDualHeap) {
  // The sharding layer over PIFO cores (params.pifo_cores) must still be
  // decision-identical to one flat dual heap: same total order per core,
  // same root arbiter, any shard count.
  for (const std::uint32_t shards : {1u, 4u, 16u}) {
    for (const std::uint64_t seed : {7u, 99u, 1234u}) {
      FakeTable table;
      Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
      DualHeapRepr reference{table, cmp, null_cost_hook(), 0x0100'0000};
      HierarchicalScheduler sharded{
          table, cmp, null_cost_hook(), 0x0200'0000,
          HierarchicalParams{.shards = shards, .pifo_cores = true}};
      EXPECT_EQ(sharded.shards(), shards);
      EXPECT_GT(run_lockstep(table, reference, sharded, seed, "sharded"),
                1000)
          << "shards " << shards << " seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Non-DWCS ranks: order contracts.
// ---------------------------------------------------------------------------

TEST(PifoRanks, EdfOrdersByDeadlineThenId) {
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  const auto repr = make_repr(ReprKind::kPifo, table, cmp, null_cost_hook(),
                              0x0100'0000, {}, PolicyKind::kEdf);
  EXPECT_STREQ(repr->name(), "pifo-edf");
  StreamView v;
  v.current = {1, 4};
  v.next_deadline = Time::ms(30);
  const auto late = table.add(v);  // id 0, deadline 30
  v.next_deadline = Time::ms(10);
  const auto soon = table.add(v);  // id 1, deadline 10
  v.current = {0, 9};              // most urgent tolerance, same deadline 10
  const auto tied = table.add(v);  // id 2
  for (StreamId id = 0; id < 3; ++id) repr->insert(id);
  // Deadline wins over any tolerance; the 10ms tie breaks to the lower id.
  EXPECT_EQ(repr->pick(), std::optional<StreamId>{soon});
  repr->remove(soon);
  EXPECT_EQ(repr->pick(), std::optional<StreamId>{tied});
  repr->remove(tied);
  EXPECT_EQ(repr->pick(), std::optional<StreamId>{late});
}

TEST(PifoRanks, StaticPriorityOrdersByIdAlone) {
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  const auto repr = make_repr(ReprKind::kPifo, table, cmp, null_cost_hook(),
                              0x0100'0000, {}, PolicyKind::kStaticPriority);
  EXPECT_STREQ(repr->name(), "pifo-sp");
  StreamView v;
  v.current = {1, 4};
  v.next_deadline = Time::ms(5);  // earliest deadline, highest id
  (void)table.add(v);
  v.next_deadline = Time::ms(50);
  (void)table.add(v);
  repr->insert(1);
  repr->insert(0);
  EXPECT_EQ(repr->pick(), std::optional<StreamId>{0});
  // earliest_deadline() stays attribute-honest under every policy.
  EXPECT_EQ(repr->earliest_deadline(), std::optional<StreamId>{0});
  repr->remove(0);
  EXPECT_EQ(repr->pick(), std::optional<StreamId>{1});
}

TEST(PolicyKindNames, Stable) {
  EXPECT_STREQ(to_string(PolicyKind::kDwcs), "dwcs");
  EXPECT_STREQ(to_string(PolicyKind::kEdf), "edf");
  EXPECT_STREQ(to_string(PolicyKind::kStaticPriority), "static-priority");
  EXPECT_STREQ(to_string(PolicyKind::kWfq), "wfq");
  EXPECT_STREQ(to_string(PolicyKind::kTenantDwcs), "tenant-dwcs");
  EXPECT_STREQ(to_string(ReprKind::kPifo), "pifo");
}

// ---------------------------------------------------------------------------
// WFQ rank: fair-queueing contract.
// ---------------------------------------------------------------------------

/// Serve `rounds` picks from always-backlogged streams, following the
/// scheduler's dispatch pattern (pick -> on_charge -> update), and return
/// per-stream service counts.
std::vector<int> serve(ScheduleRepr& repr, FakeTable& table, int rounds) {
  std::vector<int> count(table.size(), 0);
  for (int i = 0; i < rounds; ++i) {
    const auto p = repr.pick();
    if (!p) break;
    repr.on_charge(*p);
    repr.update(*p);
    ++count[*p];
  }
  return count;
}

TEST(WfqRank, ServiceConvergesToWeightProportionalShares) {
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  const auto repr = make_repr(ReprKind::kPifo, table, cmp, null_cost_hook(),
                              0x0100'0000, {}, PolicyKind::kWfq);
  EXPECT_STREQ(repr->name(), "pifo-wfq");
  // Weight is the outstanding on-time obligation y'-x': 1, 2, and 4.
  StreamView v;
  v.next_deadline = Time::ms(10);
  for (const std::int64_t y : {1, 2, 4}) {
    v.current = {0, y};
    repr->insert(table.add(v));
  }
  const auto count = serve(*repr, table, 7000);
  // kScale is divisible by every weight, so shares are exact up to the
  // rotation order within one virtual round: 1000/2000/4000.
  EXPECT_NEAR(count[0], 1000, 2);
  EXPECT_NEAR(count[1], 2000, 2);
  EXPECT_NEAR(count[2], 4000, 2);
}

TEST(WfqRank, RejoiningFlowGetsNoCatchUpBurst) {
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  const auto repr = make_repr(ReprKind::kPifo, table, cmp, null_cost_hook(),
                              0x0100'0000, {}, PolicyKind::kWfq);
  StreamView v;
  v.next_deadline = Time::ms(10);
  v.current = {0, 1};  // equal weights
  const auto a = table.add(v);
  const auto b = table.add(v);
  repr->insert(a);
  // b idles while a is served 1000 times: a's finish tag (and the clock)
  // races ahead.
  (void)serve(*repr, table, 1000);
  repr->insert(b);
  // SCFQ admits b at the current clock, not at tag 0 — so b gets its fair
  // half from here on, not a 1000-service catch-up monopoly.
  const auto count = serve(*repr, table, 200);
  EXPECT_GE(count[b], 99);
  EXPECT_LE(count[b], 101);
  EXPECT_GE(count[a], 99);
}

TEST(WfqRank, HierarchicalCoresShareOneClock) {
  // The sharded machine hands every core (and the root) the same WfqState:
  // finish tags stay globally comparable, so weight-proportional shares
  // hold across shard boundaries too.
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  HierarchicalScheduler sharded{table, cmp, null_cost_hook(), 0x0100'0000,
                                HierarchicalParams{.shards = 4},
                                PolicyKind::kWfq};
  StreamView v;
  v.next_deadline = Time::ms(10);
  for (const std::int64_t y : {1, 2, 4}) {
    v.current = {0, y};
    sharded.insert(table.add(v));
  }
  const auto count = serve(sharded, table, 7000);
  EXPECT_NEAR(count[0], 1000, 2);
  EXPECT_NEAR(count[1], 2000, 2);
  EXPECT_NEAR(count[2], 4000, 2);
}

// ---------------------------------------------------------------------------
// TenantDwcs rank: WFQ share across scopes, DWCS order within a scope.
// ---------------------------------------------------------------------------

TEST(TenantDwcs, WeightProportionalSharesAcrossScopes) {
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  TenantDwcsRank rank{&cmp};
  // One stream per scope, scope weights 1/2/4. Identical DWCS attributes so
  // the share split is purely the scope clocking.
  StreamView v;
  v.current = {0, 4};
  v.next_deadline = Time::ms(10);
  for (StreamId id = 0; id < 3; ++id) {
    rank.state->set_scope(id, id);
    rank.state->set_weight(id, std::uint64_t{1} << id);  // 1, 2, 4
  }
  PifoRepr<TenantDwcsRank> repr{table, rank, null_cost_hook(), 0x0100'0000};
  EXPECT_STREQ(repr.name(), "pifo-tenant-dwcs");
  for (StreamId id = 0; id < 3; ++id) repr.insert(table.add(v));
  // With one stream per scope the charged stream IS the scope, so its
  // update() re-sift keeps the heap exact — shares land like WfqRank's.
  const auto count = serve(repr, table, 7000);
  EXPECT_NEAR(count[0], 1000, 2);
  EXPECT_NEAR(count[1], 2000, 2);
  EXPECT_NEAR(count[2], 4000, 2);
}

TEST(TenantDwcs, DwcsOrderDecidesWithinScope) {
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  TenantDwcsRank rank{&cmp};
  rank.state->set_scope(0, 0);
  rank.state->set_scope(1, 0);  // both streams in one tenant scope
  PifoRepr<TenantDwcsRank> repr{table, rank, null_cost_hook(), 0x0100'0000};
  StreamView v;
  v.current = {1, 4};
  v.next_deadline = Time::ms(30);
  const auto late = table.add(v);
  v.next_deadline = Time::ms(10);
  const auto soon = table.add(v);
  repr.insert(late);
  repr.insert(soon);
  // Same scope, so the scope tag is shared and rules 1-5 decide: the earlier
  // deadline wins no matter how often the scope is charged.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(repr.pick(), std::optional<StreamId>{soon});
    repr.on_charge(soon);
    repr.update(soon);
  }
  repr.remove(soon);
  EXPECT_EQ(repr.pick(), std::optional<StreamId>{late});
}

TEST(TenantDwcs, OverAdmittedScopeDegradesItselfNotNeighbours) {
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  // Scope 0 admits three streams, scope 1 one stream, equal weights: the
  // scope SHARES stay equal — scope 0's extra streams contend with each
  // other inside their own engine, not with scope 1 (the ROADMAP's
  // tenant-isolation property). Scope sharding makes this exact: the root
  // alternates between the two scope tags, whatever the populations.
  HierarchicalScheduler sharded{table, cmp, null_cost_hook(), 0x0100'0000,
                                HierarchicalParams{.shards = 2},
                                PolicyKind::kTenantDwcs};
  for (StreamId id = 0; id < 3; ++id) sharded.tenant_state()->set_scope(id, 0);
  sharded.tenant_state()->set_scope(3, 1);
  StreamView v;
  v.current = {0, 4};
  v.next_deadline = Time::ms(10);
  for (StreamId id = 0; id < 4; ++id) sharded.insert(table.add(v));
  const auto count = serve(sharded, table, 4000);
  const int scope0 = count[0] + count[1] + count[2];
  EXPECT_NEAR(scope0, 2000, 2);
  EXPECT_NEAR(count[3], 2000, 2);
}

TEST(TenantDwcs, MakeReprBuildsTheScopeShardedTree) {
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  const auto repr = make_repr(ReprKind::kPifo, table, cmp, null_cost_hook(),
                              0x0100'0000, {}, PolicyKind::kTenantDwcs);
  // Flat kPifo reroutes to the two-level engine — tenant-DWCS cannot live in
  // one heap (see TenantDwcsRank's structural-requirement note).
  EXPECT_STREQ(repr->name(), "hierarchical");
  // Four streams land in four distinct default scopes (id % 4) with default
  // weight 1: equal shares.
  StreamView v;
  v.current = {0, 4};
  v.next_deadline = Time::ms(10);
  for (StreamId id = 0; id < 4; ++id) repr->insert(table.add(v));
  const auto count = serve(*repr, table, 4000);
  for (StreamId id = 0; id < 4; ++id) EXPECT_NEAR(count[id], 1000, 2);
}

TEST(TenantDwcs, HierarchicalCoresShareOneLedger) {
  // The sharded machine hands every core (and the root winner order) the
  // same TenantDwcsState: scope finish tags stay globally comparable, so
  // per-scope shares hold across shard boundaries — same contract as
  // WfqRank.HierarchicalCoresShareOneClock.
  FakeTable table;
  Comparator cmp{ArithMode::kFixedPoint, null_cost_hook()};
  HierarchicalScheduler sharded{table, cmp, null_cost_hook(), 0x0100'0000,
                                HierarchicalParams{.shards = 4},
                                PolicyKind::kTenantDwcs};
  StreamView v;
  v.current = {0, 4};
  v.next_deadline = Time::ms(10);
  // Ids 0..7 -> default scopes 0..3, two streams per scope, equal weights.
  for (StreamId id = 0; id < 8; ++id) sharded.insert(table.add(v));
  const auto count = serve(sharded, table, 4000);
  for (std::uint32_t scope = 0; scope < 4; ++scope) {
    EXPECT_NEAR(count[scope] + count[scope + 4], 1000, 32) << "scope "
                                                           << scope;
  }
}

}  // namespace
}  // namespace nistream::dwcs
