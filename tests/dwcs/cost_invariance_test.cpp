// Cost-invariance regression: wall-clock optimizations must never shift the
// *charged* costs that reproduce Tables 1-3.
//
// The scheduler separates two clocks (docs/performance.md): the simulated
// i960 cycle/memory accounting charged through CostHook, and the host
// wall-clock the implementation actually burns. Optimizing the latter is
// fair game only if the former stays bit-identical. This test replays the
// Table 1 microbench core loop (4 peer streams, 151 frames, driven along the
// deadline grid) through a hook that both counts every charge category and
// folds the full charge stream — category, operand, address, order — into an
// FNV-1a hash. The golden values below were captured from the seed
// implementation (PR 0); any divergence means the reproduced paper numbers
// moved.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>

#include "dwcs/scheduler.hpp"

namespace nistream::dwcs {
namespace {

/// Counts charges per category and hashes the exact charge sequence.
class CountingHook final : public CostHook {
 public:
  void arith_int(Op op, int n) override {
    int_ops += static_cast<std::uint64_t>(n);
    fold(1, static_cast<std::uint64_t>(op));
    fold(1, static_cast<std::uint64_t>(n));
  }
  void arith_float(Op op, int n) override {
    float_ops += static_cast<std::uint64_t>(n);
    fold(2, static_cast<std::uint64_t>(op));
    fold(2, static_cast<std::uint64_t>(n));
  }
  void mem(SimAddr addr) override {
    ++mem_words;
    fold(3, addr);
  }
  void reg() override {
    ++reg_accesses;
    fold(4, 0);
  }
  void cycles(std::int64_t n) override {
    cycle_total += n;
    fold(5, static_cast<std::uint64_t>(n));
  }

  std::uint64_t int_ops = 0;
  std::uint64_t float_ops = 0;
  std::uint64_t mem_words = 0;
  std::uint64_t reg_accesses = 0;
  std::int64_t cycle_total = 0;
  std::uint64_t stream_hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis

 private:
  void fold(std::uint64_t tag, std::uint64_t v) {
    const auto mix = [this](std::uint64_t x) {
      for (int i = 0; i < 8; ++i) {
        stream_hash ^= (x >> (8 * i)) & 0xff;
        stream_hash *= 0x100000001b3ULL;
      }
    };
    mix(tag);
    mix(v);
  }
};

struct Totals {
  std::uint64_t int_ops, float_ops, mem_words, reg_accesses;
  std::int64_t cycle_total;
  std::uint64_t stream_hash;
};

/// The Table 1/2/3 core loop (apps::run_microbench without the CPU model):
/// pre-load 151 frames round-robin onto 4 peer streams, then schedule every
/// frame along the deadline grid.
Totals run_core_loop(ArithMode arith, ReprKind repr,
                     DescriptorResidency residency) {
  constexpr int kFrames = 151;
  constexpr int kStreams = 4;
  CountingHook hook;
  DwcsScheduler::Config cfg;
  cfg.arith = arith;
  cfg.repr = repr;
  cfg.residency = residency;
  cfg.ring_capacity = kFrames / kStreams + 2;
  DwcsScheduler sched{cfg, hook};

  std::vector<StreamId> ids;
  for (int i = 0; i < kStreams; ++i) {
    ids.push_back(sched.create_stream(
        {.tolerance = {1, 4}, .period = sim::Time::ms(33), .lossy = true},
        sim::Time::zero()));
  }
  for (int i = 0; i < kFrames; ++i) {
    FrameDescriptor d;
    d.frame_id = static_cast<std::uint64_t>(i);
    d.bytes = 1000;
    d.enqueued_at = sim::Time::zero();
    d.frame_addr = 0x0400'0000 + static_cast<std::uint64_t>(i) * 0x2000;
    EXPECT_TRUE(sched.enqueue(ids[static_cast<std::size_t>(i) % ids.size()], d,
                              sim::Time::zero()));
  }

  int scheduled = 0;
  sim::Time now = sim::Time::zero();
  while (scheduled < kFrames) {
    const auto next = sched.earliest_backlog_deadline();
    if (next && *next > now) now = *next;
    if (sched.schedule_next(now).has_value()) ++scheduled;
  }
  return {hook.int_ops, hook.float_ops, hook.mem_words, hook.reg_accesses,
          hook.cycle_total, hook.stream_hash};
}

void expect_totals(const Totals& got, const Totals& golden) {
  EXPECT_EQ(got.int_ops, golden.int_ops);
  EXPECT_EQ(got.float_ops, golden.float_ops);
  EXPECT_EQ(got.mem_words, golden.mem_words);
  EXPECT_EQ(got.reg_accesses, golden.reg_accesses);
  EXPECT_EQ(got.cycle_total, golden.cycle_total);
  EXPECT_EQ(got.stream_hash, golden.stream_hash)
      << "charge STREAM diverged (order/address change) even though totals "
         "may match";
  // When recapturing goldens (only legitimate after a deliberate cost-model
  // change), run with --gtest_also_run_disabled_tests and copy from stdout.
}

TEST(CostInvariance, Table1FixedPointDualHeap) {
  expect_totals(run_core_loop(ArithMode::kFixedPoint, ReprKind::kDualHeap,
                              DescriptorResidency::kPinnedMemory),
                {2408, 0, 8959, 0, 619100, 0x8f6a8b94f782d5ccULL});
}

TEST(CostInvariance, Table1SoftFloatDualHeap) {
  expect_totals(run_core_loop(ArithMode::kSoftFloat, ReprKind::kDualHeap,
                              DescriptorResidency::kPinnedMemory),
                {1274, 1134, 8959, 0, 619100, 0x211d9bbfab15c648ULL});
}

TEST(CostInvariance, Table3HardwareQueueDualHeap) {
  expect_totals(run_core_loop(ArithMode::kFixedPoint, ReprKind::kDualHeap,
                              DescriptorResidency::kHardwareQueue),
                {2408, 0, 6861, 2098, 619100, 0x400e737594fd53a0ULL});
}

TEST(CostInvariance, SingleHeapFixedPoint) {
  expect_totals(run_core_loop(ArithMode::kFixedPoint, ReprKind::kSingleHeap,
                              DescriptorResidency::kPinnedMemory),
                {2307, 0, 8924, 0, 619100, 0xc6952ce3cc0b93c0ULL});
}

TEST(CostInvariance, CalendarQueueFixedPoint) {
  expect_totals(run_core_loop(ArithMode::kFixedPoint, ReprKind::kCalendarQueue,
                              DescriptorResidency::kPinnedMemory),
                {2182, 0, 7001, 0, 619100, 0x51695f3cd26c9c0bULL});
}

/// Prints current totals; enable manually to recapture goldens after a
/// deliberate cost-model change.
TEST(CostInvariance, DISABLED_PrintGoldens) {
  const auto p = [](const char* name, const Totals& t) {
    std::printf("%s: {%lluULL, %lluULL, %lluULL, %lluULL, %lld, 0x%016llxULL}\n",
                name, static_cast<unsigned long long>(t.int_ops),
                static_cast<unsigned long long>(t.float_ops),
                static_cast<unsigned long long>(t.mem_words),
                static_cast<unsigned long long>(t.reg_accesses),
                static_cast<long long>(t.cycle_total),
                static_cast<unsigned long long>(t.stream_hash));
  };
  p("fixed/dual/pinned", run_core_loop(ArithMode::kFixedPoint,
                                       ReprKind::kDualHeap,
                                       DescriptorResidency::kPinnedMemory));
  p("soft/dual/pinned", run_core_loop(ArithMode::kSoftFloat,
                                      ReprKind::kDualHeap,
                                      DescriptorResidency::kPinnedMemory));
  p("fixed/dual/hwq", run_core_loop(ArithMode::kFixedPoint,
                                    ReprKind::kDualHeap,
                                    DescriptorResidency::kHardwareQueue));
  p("fixed/single/pinned", run_core_loop(ArithMode::kFixedPoint,
                                         ReprKind::kSingleHeap,
                                         DescriptorResidency::kPinnedMemory));
  p("fixed/calendar/pinned",
    run_core_loop(ArithMode::kFixedPoint, ReprKind::kCalendarQueue,
                  DescriptorResidency::kPinnedMemory));
}

}  // namespace
}  // namespace nistream::dwcs
