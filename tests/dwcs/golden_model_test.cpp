// Golden-model cross-check.
//
// A deliberately naive, obviously-correct DWCS reference — O(n) linear scans,
// no heaps, no instrumentation, window adjustments written straight from the
// published rules — replayed against the production scheduler on long random
// workloads. Every dispatch, drop, window state and deadline must agree at
// every step. This is the strongest correctness evidence in the repository:
// the production code's data structures and fast paths cannot drift from the
// algorithm's definition without this failing.
#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <vector>

#include "dwcs/scheduler.hpp"
#include "sim/random.hpp"

namespace nistream::dwcs {
namespace {

using sim::Time;

/// The reference implementation.
class GoldenDwcs {
 public:
  struct Stream {
    StreamParams params;
    WindowConstraint current;
    Time deadline;
    std::deque<FrameDescriptor> queue;
    std::uint64_t on_time = 0, late = 0, dropped = 0, violations = 0;
    bool head_late_adjusted = false;
  };

  StreamId create_stream(const StreamParams& p, Time now) {
    streams_.push_back(Stream{p, p.tolerance, now + p.period, {}, 0, 0, 0, 0,
                              false});
    return static_cast<StreamId>(streams_.size() - 1);
  }

  bool enqueue(StreamId id, const FrameDescriptor& f, Time now) {
    Stream& s = streams_[id];
    if (s.queue.size() >= kRingCapacity) return false;
    if (s.queue.empty() && s.deadline < now) s.deadline = now + s.params.period;
    s.queue.push_back(f);
    return true;
  }

  std::optional<Dispatch> schedule_next(Time now) {
    // Phase 1: late processing in deadline order (ties by lowest id),
    // mirroring the scheduler's contract.
    for (;;) {
      int idx = earliest_deadline_backlogged();
      if (idx < 0) break;
      Stream& s = streams_[static_cast<std::size_t>(idx)];
      if (s.deadline >= now) break;
      if (s.params.lossy) {
        drop_head(s, now);
      } else {
        if (!s.head_late_adjusted) {
          rule_b(s);
          s.head_late_adjusted = true;
        }
        break;
      }
    }
    // Phase 2: pick by the full precedence rules; late lossy ties are
    // dropped rather than transmitted.
    for (;;) {
      const int idx = pick();
      if (idx < 0) return std::nullopt;
      Stream& s = streams_[static_cast<std::size_t>(idx)];
      if (s.params.lossy && s.deadline < now) {
        drop_head(s, now);
        continue;
      }
      Dispatch d;
      d.stream = static_cast<StreamId>(idx);
      d.frame = s.queue.front();
      s.queue.pop_front();
      d.deadline = s.deadline;
      d.late = s.deadline < now;
      if (d.late) {
        ++s.late;
        s.head_late_adjusted = false;
      } else {
        ++s.on_time;
        rule_a(s);
      }
      advance(s, now);
      return d;
    }
  }

  [[nodiscard]] const Stream& stream(StreamId id) const { return streams_[id]; }

  static constexpr std::size_t kRingCapacity = 64;

 private:
  void drop_head(Stream& s, Time now) {
    s.queue.pop_front();
    ++s.dropped;
    rule_b(s);
    advance(s, now);
  }

  void rule_a(Stream& s) {
    if (s.current.y > s.current.x) --s.current.y;
    if (s.current.y == s.current.x) s.current = s.params.tolerance;
  }

  void rule_b(Stream& s) {
    if (s.current.x > 0) {
      --s.current.x;
      --s.current.y;
      if (s.current.y == s.current.x) s.current = s.params.tolerance;
    } else {
      ++s.violations;
      ++s.current.y;
    }
  }

  void advance(Stream& s, Time now) {
    if (now > s.deadline) {
      s.deadline = now + s.params.period;  // completion anchoring
    } else {
      s.deadline += s.params.period;
    }
  }

  [[nodiscard]] int earliest_deadline_backlogged() const {
    int best = -1;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (streams_[i].queue.empty()) continue;
      if (best < 0 ||
          streams_[i].deadline <
              streams_[static_cast<std::size_t>(best)].deadline) {
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  /// Full precedence rules, written longhand.
  [[nodiscard]] int pick() const {
    int best = -1;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (streams_[i].queue.empty()) continue;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      const Stream& a = streams_[i];
      const Stream& b = streams_[static_cast<std::size_t>(best)];
      bool a_wins;
      if (a.deadline != b.deadline) {
        a_wins = a.deadline < b.deadline;  // rule 1
      } else {
        const __int128 lhs =
            static_cast<__int128>(a.current.x) * b.current.y;
        const __int128 rhs =
            static_cast<__int128>(b.current.x) * a.current.y;
        if (lhs != rhs) {
          a_wins = lhs < rhs;  // rule 2
        } else if (a.current.x == 0 && b.current.x == 0) {
          a_wins = a.current.y != b.current.y ? a.current.y > b.current.y
                                              : false;  // rule 3 (+id below)
        } else if (a.current.x != b.current.x) {
          a_wins = a.current.x < b.current.x;  // rule 4
        } else {
          a_wins = false;  // rule 5: lower id, and best has the lower id
        }
      }
      if (a_wins) best = static_cast<int>(i);
    }
    return best;
  }

  std::vector<Stream> streams_;
};

TEST(GoldenModel, ProductionSchedulerMatchesReferenceExactly) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::Rng rng{seed * 104729};
    DwcsScheduler::Config cfg;
    cfg.ring_capacity = GoldenDwcs::kRingCapacity;
    cfg.deadline_from_completion = true;  // matches the reference's advance()
    DwcsScheduler prod{cfg};
    GoldenDwcs golden;

    const int n_streams = 2 + static_cast<int>(rng.below(8));
    for (int i = 0; i < n_streams; ++i) {
      const auto y = 1 + static_cast<std::int64_t>(rng.below(9));
      const StreamParams p{
          .tolerance = {static_cast<std::int64_t>(
                            rng.below(static_cast<std::uint64_t>(y) + 1)),
                        y},
          .period = Time::ms(2 + static_cast<double>(rng.below(40))),
          .lossy = rng.chance(0.6)};
      ASSERT_EQ(prod.create_stream(p, Time::zero()),
                golden.create_stream(p, Time::zero()));
    }

    std::uint64_t fid = 0;
    Time now = Time::zero();
    for (int step = 0; step < 15000; ++step) {
      now += Time::us(rng.below(5000));
      if (rng.below(10) < 6) {
        const auto id =
            static_cast<StreamId>(rng.below(static_cast<std::uint64_t>(n_streams)));
        const FrameDescriptor f{.frame_id = fid++, .bytes = 1000,
                                .type = mpeg::FrameType::kP,
                                .enqueued_at = now};
        ASSERT_EQ(prod.enqueue(id, f, now), golden.enqueue(id, f, now))
            << "seed " << seed << " step " << step;
      } else {
        const auto dp = prod.schedule_next(now);
        const auto dg = golden.schedule_next(now);
        ASSERT_EQ(dp.has_value(), dg.has_value())
            << "seed " << seed << " step " << step;
        if (dp) {
          ASSERT_EQ(dp->stream, dg->stream) << "seed " << seed << " step " << step;
          ASSERT_EQ(dp->frame.frame_id, dg->frame.frame_id);
          ASSERT_EQ(dp->late, dg->late);
          ASSERT_EQ(dp->deadline, dg->deadline);
        }
      }
      // Full state agreement after every step.
      for (StreamId i = 0; i < static_cast<StreamId>(n_streams); ++i) {
        const auto& gv = golden.stream(i);
        const auto& pv = prod.stream_view(i);
        const auto& ps = prod.stats(i);
        ASSERT_EQ(pv.current, gv.current) << "seed " << seed << " step " << step
                                          << " stream " << i;
        ASSERT_EQ(pv.next_deadline, gv.deadline);
        ASSERT_EQ(ps.serviced_on_time, gv.on_time);
        ASSERT_EQ(ps.serviced_late, gv.late);
        ASSERT_EQ(ps.dropped, gv.dropped);
        ASSERT_EQ(ps.violations, gv.violations);
        ASSERT_EQ(prod.backlog(i), gv.queue.size());
      }
    }
  }
}

}  // namespace
}  // namespace nistream::dwcs
