// Tests for the Q16.16 fixed-point scalar.
#include "fixedpt/fixed.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace nistream::fixedpt {
namespace {

TEST(Fixed, IntRoundTrip) {
  for (std::int64_t v : {-100, -1, 0, 1, 7, 32767}) {
    EXPECT_EQ(Fixed::from_int(v).to_int(), v);
    EXPECT_DOUBLE_EQ(Fixed::from_int(v).to_double(), static_cast<double>(v));
  }
}

TEST(Fixed, DoubleRoundTripWithinPrecision) {
  for (double v : {0.5, 0.25, -0.75, 3.14159, 100.001, -42.5}) {
    EXPECT_NEAR(Fixed::from_double(v).to_double(), v, 1.0 / (1 << 16));
  }
}

TEST(Fixed, RatioIsRoundedToNearest) {
  // 1/3 in Q16.16 = 21845.33 -> 21845.
  EXPECT_EQ(Fixed::from_ratio(1, 3).raw_bits(), 21845);
  // 2/3 = 43690.67 -> 43691.
  EXPECT_EQ(Fixed::from_ratio(2, 3).raw_bits(), 43691);
  EXPECT_EQ(Fixed::from_ratio(1, 2).raw_bits(), 32768);
  EXPECT_EQ(Fixed::from_ratio(-1, 3).raw_bits(), -21845);
}

TEST(Fixed, Arithmetic) {
  const Fixed a = Fixed::from_double(2.5), b = Fixed::from_double(1.25);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((a - b).to_double(), 1.25);
  EXPECT_DOUBLE_EQ((a * b).to_double(), 3.125);
  EXPECT_DOUBLE_EQ((a / b).to_double(), 2.0);
}

TEST(Fixed, Comparison) {
  EXPECT_LT(Fixed::from_double(1.0), Fixed::from_double(1.5));
  EXPECT_EQ(Fixed::from_int(3), Fixed::from_ratio(6, 2));
  EXPECT_GT(Fixed::from_double(-1.0), Fixed::from_double(-2.0));
}

TEST(Fixed, ShiftDivision) {
  const Fixed v = Fixed::from_int(100);
  EXPECT_EQ(v.shr(2).to_int(), 25);
  EXPECT_DOUBLE_EQ(Fixed::from_double(1.0).shr(1).to_double(), 0.5);
}

// Property: fixed-point arithmetic tracks double arithmetic within the
// representable precision over the DWCS value domain (small ratios, times in
// seconds).
TEST(FixedProperty, TracksDoubleWithinUlp) {
  sim::Rng rng{77};
  const double eps = 1.0 / (1 << 16);
  for (int i = 0; i < 20000; ++i) {
    const double a = rng.uniform(-1000.0, 1000.0);
    const double b = rng.uniform(-1000.0, 1000.0);
    const Fixed fa = Fixed::from_double(a), fb = Fixed::from_double(b);
    EXPECT_NEAR((fa + fb).to_double(), a + b, 2 * eps);
    EXPECT_NEAR((fa - fb).to_double(), a - b, 2 * eps);
    // Multiplication error scales with the magnitudes.
    EXPECT_NEAR((fa * fb).to_double(), a * b,
                (std::abs(a) + std::abs(b) + 1.0) * eps);
  }
}

TEST(FixedProperty, DivisionTracksDouble) {
  sim::Rng rng{78};
  const double eps = 1.0 / (1 << 16);
  for (int i = 0; i < 20000; ++i) {
    const double a = rng.uniform(-100.0, 100.0);
    double b = rng.uniform(-100.0, 100.0);
    if (std::abs(b) < 0.1) b = b < 0 ? -0.1 : 0.1;  // avoid blow-up
    const Fixed fa = Fixed::from_double(a), fb = Fixed::from_double(b);
    // Error propagation: |d(a/b)| <= (eps/2)/|b| + (eps/2)|a|/b^2 plus the
    // division's own truncation; bound with a 2x safety factor.
    const double bound =
        eps * (2.0 + (1.0 / std::abs(b)) * (1.0 + std::abs(a / b)));
    EXPECT_NEAR((fa / fb).to_double(), a / b, bound);
  }
}

}  // namespace
}  // namespace nistream::fixedpt
