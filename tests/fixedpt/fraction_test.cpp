// Tests for the exact Fraction type used by the fixed-point DWCS port.
#include "fixedpt/fraction.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace nistream::fixedpt {
namespace {

TEST(Fraction, DefaultIsZero) {
  Fraction f;
  EXPECT_TRUE(f.is_zero());
  EXPECT_EQ(f.num(), 0);
  EXPECT_EQ(f.den(), 1);
}

TEST(Fraction, CrossMultiplyComparison) {
  EXPECT_LT(Fraction(1, 3), Fraction(1, 2));
  EXPECT_GT(Fraction(3, 4), Fraction(2, 3));
  EXPECT_EQ(Fraction(2, 4), Fraction(1, 2));
  EXPECT_LE(Fraction(1, 2), Fraction(2, 4));
  EXPECT_GE(Fraction(1, 2), Fraction(2, 4));
}

TEST(Fraction, ZeroComparesBelowPositive) {
  EXPECT_LT(Fraction(0, 5), Fraction(1, 100));
  EXPECT_EQ(Fraction(0, 5), Fraction(0, 7));  // all zeros equal
}

TEST(Fraction, ComparisonIsExactWhereDoubleIsNot) {
  // 10000000000000001/30000000000000003 == 1/3 exactly; a double comparison
  // of the quotients cannot tell them apart reliably, cross-multiply can.
  const Fraction a{10000000000000001, 30000000000000003};
  const Fraction b{1, 3};
  EXPECT_EQ(a, b);
  const Fraction c{10000000000000002, 30000000000000003};  // slightly larger
  EXPECT_GT(c, b);
}

TEST(Fraction, Normalized) {
  const Fraction f = Fraction(6, 8).normalized();
  EXPECT_EQ(f.num(), 3);
  EXPECT_EQ(f.den(), 4);
  const Fraction z = Fraction(0, 8).normalized();
  EXPECT_EQ(z.num(), 0);
  EXPECT_EQ(z.den(), 1);
}

TEST(Fraction, ToDouble) {
  EXPECT_DOUBLE_EQ(Fraction(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Fraction(0, 3).to_double(), 0.0);
}

// Property: ordering agrees with exact rational ordering computed in
// 128-bit arithmetic, over random small window constraints (the DWCS domain:
// x <= y, y up to a few thousand).
TEST(FractionProperty, OrderAgreesWithRationalOrder) {
  sim::Rng rng{2024};
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t y1 = 1 + static_cast<std::int64_t>(rng.below(4096));
    const std::int64_t y2 = 1 + static_cast<std::int64_t>(rng.below(4096));
    const std::int64_t x1 = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(y1) + 1));
    const std::int64_t x2 = static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(y2) + 1));
    const Fraction a{x1, y1}, b{x2, y2};
    const __int128 lhs = static_cast<__int128>(x1) * y2;
    const __int128 rhs = static_cast<__int128>(x2) * y1;
    EXPECT_EQ(a < b, lhs < rhs);
    EXPECT_EQ(a == b, lhs == rhs);
    EXPECT_EQ(a > b, lhs > rhs);
  }
}

TEST(ShiftDivide, MatchesDivisionForPowersOfTwo) {
  EXPECT_EQ(shift_divide(100, 4), 25);
  EXPECT_EQ(shift_divide(101, 4), 25);  // floor semantics
  EXPECT_EQ(shift_divide(7, 1), 7);
  EXPECT_EQ(shift_divide(1 << 20, 1 << 10), 1 << 10);
  sim::Rng rng{55};
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::int64_t>(rng.below(1u << 30));
    const std::int64_t p = std::int64_t{1} << rng.below(20);
    EXPECT_EQ(shift_divide(a, p), a / p);
  }
}

}  // namespace
}  // namespace nistream::fixedpt
