// Tests for the software IEEE-754 binary32 emulation.
//
// The reference is the build machine's hardware float unit (x86 is IEEE
// round-to-nearest-even). For normal inputs whose true results are normal,
// the soft-float results must be bit-exact; cases where hardware produces a
// subnormal are skipped (our library flushes to zero, like the embedded
// libraries it models — covered by dedicated flush tests).
#include "fixedpt/softfloat.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "sim/random.hpp"

namespace nistream::fixedpt {
namespace {

bool is_subnormal_or_zero(float f) {
  return f == 0.0f || std::fpclassify(f) == FP_SUBNORMAL;
}

float bits_to_float(std::uint32_t b) { return std::bit_cast<float>(b); }

/// Random normal-range float (exponent biased well away from the edges so
/// products/quotients stay normal most of the time).
float random_normal_float(sim::Rng& rng) {
  const std::uint32_t sign = static_cast<std::uint32_t>(rng.below(2)) << 31;
  const std::uint32_t exp = static_cast<std::uint32_t>(64 + rng.below(128)) << 23;
  const std::uint32_t frac = static_cast<std::uint32_t>(rng.below(1u << 23));
  return bits_to_float(sign | exp | frac);
}

TEST(SoftFloat, RoundTripExactValues) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 3.25f, 1e10f, -7.5e-10f}) {
    EXPECT_EQ(SoftFloat::from_float(v).to_float(), v);
  }
}

TEST(SoftFloat, SubnormalInputsFlushToZero) {
  const float tiny = std::numeric_limits<float>::denorm_min();
  EXPECT_TRUE(SoftFloat::from_float(tiny).is_zero());
  EXPECT_TRUE(SoftFloat::from_float(-tiny).is_zero());
  EXPECT_FALSE(SoftFloat::from_float(std::numeric_limits<float>::min()).is_zero());
}

TEST(SoftFloat, FromInt) {
  for (std::int32_t v : {0, 1, -1, 7, -100, 16777216, -16777217, INT32_MAX,
                         INT32_MIN}) {
    EXPECT_EQ(SoftFloat::from_int(v).to_float(), static_cast<float>(v))
        << "v=" << v;
  }
}

TEST(SoftFloat, SimpleArithmetic) {
  const auto a = SoftFloat::from_float(1.5f);
  const auto b = SoftFloat::from_float(2.25f);
  EXPECT_EQ((a + b).to_float(), 3.75f);
  EXPECT_EQ((b - a).to_float(), 0.75f);
  EXPECT_EQ((a * b).to_float(), 3.375f);
  EXPECT_EQ((b / a).to_float(), 1.5f);
}

TEST(SoftFloat, ExactCancellationGivesPositiveZero) {
  const auto a = SoftFloat::from_float(5.5f);
  const auto r = a - a;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.bits(), 0u);  // +0
}

TEST(SoftFloat, SignedZeroAddition) {
  const auto pz = SoftFloat::from_float(0.0f);
  const auto nz = SoftFloat::from_float(-0.0f);
  EXPECT_EQ((pz + nz).bits(), 0u);   // +0 + -0 = +0 (RNE)
  EXPECT_EQ((nz + nz).bits(), 0x80000000u);  // -0 + -0 = -0
  EXPECT_TRUE(pz == nz);
}

TEST(SoftFloat, InfinityAndNan) {
  const auto inf = SoftFloat::from_float(std::numeric_limits<float>::infinity());
  const auto one = SoftFloat::from_float(1.0f);
  const auto zero = SoftFloat::from_float(0.0f);
  EXPECT_TRUE((inf + one).is_inf());
  EXPECT_TRUE((inf - inf).is_nan());
  EXPECT_TRUE((inf * zero).is_nan());
  EXPECT_TRUE((zero / zero).is_nan());
  EXPECT_TRUE((one / zero).is_inf());
  EXPECT_TRUE((one / inf).is_zero());
  EXPECT_TRUE((inf / inf).is_nan());

  const auto nan = SoftFloat::from_bits(0x7fc00000u);
  EXPECT_FALSE(nan == nan);
  EXPECT_FALSE(nan < one);
  EXPECT_FALSE(one < nan);
  EXPECT_FALSE(nan <= nan);
}

TEST(SoftFloat, OverflowToInfinity) {
  const auto big = SoftFloat::from_float(3e38f);
  EXPECT_TRUE((big + big).is_inf());
  EXPECT_TRUE((big * big).is_inf());
}

TEST(SoftFloat, UnderflowFlushesToZero) {
  const auto tiny = SoftFloat::from_float(1e-38f);
  const auto r = tiny * tiny;  // true result ~1e-76, far below binary32 range
  EXPECT_TRUE(r.is_zero());
}

TEST(SoftFloat, Comparisons) {
  const auto a = SoftFloat::from_float(-2.0f);
  const auto b = SoftFloat::from_float(1.0f);
  const auto c = SoftFloat::from_float(3.0f);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a < c);
  EXPECT_TRUE(c > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(c >= c);
  EXPECT_FALSE(b < a);
}

// --- Property sweeps against hardware IEEE arithmetic -----------------------

struct BinOpCase {
  const char* name;
  float (*hw)(float, float);
  SoftFloat (*sw)(SoftFloat, SoftFloat);
};

class SoftFloatVsHardware : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(SoftFloatVsHardware, BitExactOnNormals) {
  const auto& op = GetParam();
  sim::Rng rng{0xF00D};
  int checked = 0;
  for (int i = 0; i < 200000; ++i) {
    const float a = random_normal_float(rng);
    const float b = random_normal_float(rng);
    const float expect = op.hw(a, b);
    if (!std::isfinite(expect) || is_subnormal_or_zero(expect)) continue;
    const SoftFloat got = op.sw(SoftFloat::from_float(a), SoftFloat::from_float(b));
    ASSERT_EQ(got.bits(), std::bit_cast<std::uint32_t>(expect))
        << op.name << "(" << a << ", " << b << ") = " << expect
        << " but soft float produced " << got.to_float();
    ++checked;
  }
  EXPECT_GT(checked, 100000);  // the sweep must actually exercise the op
}

INSTANTIATE_TEST_SUITE_P(
    Ops, SoftFloatVsHardware,
    ::testing::Values(
        BinOpCase{"add", [](float a, float b) { return a + b; },
                  [](SoftFloat a, SoftFloat b) { return a + b; }},
        BinOpCase{"sub", [](float a, float b) { return a - b; },
                  [](SoftFloat a, SoftFloat b) { return a - b; }},
        BinOpCase{"mul", [](float a, float b) { return a * b; },
                  [](SoftFloat a, SoftFloat b) { return a * b; }},
        BinOpCase{"div", [](float a, float b) { return a / b; },
                  [](SoftFloat a, SoftFloat b) { return a / b; }}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(SoftFloatProperty, ComparisonAgreesWithHardware) {
  sim::Rng rng{0xBEEF};
  for (int i = 0; i < 100000; ++i) {
    const float a = random_normal_float(rng);
    const float b = random_normal_float(rng);
    const auto sa = SoftFloat::from_float(a), sb = SoftFloat::from_float(b);
    EXPECT_EQ(sa < sb, a < b) << a << " vs " << b;
    EXPECT_EQ(sa == sb, a == b);
    EXPECT_EQ(sa <= sb, a <= b);
  }
}

// Catastrophic-cancellation region: operands close in magnitude, opposite
// sign — the hardest path in the adder (full normalization shifts).
TEST(SoftFloatProperty, CancellationPathBitExact) {
  sim::Rng rng{0xCAFE};
  int checked = 0;
  for (int i = 0; i < 100000; ++i) {
    const float a = random_normal_float(rng);
    // Perturb a few low mantissa bits, flip the sign.
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(a);
    const std::uint32_t delta = static_cast<std::uint32_t>(rng.below(64));
    const float b = -bits_to_float((bits & ~63u) | delta);
    const float expect = a + b;
    if (!std::isfinite(expect) || is_subnormal_or_zero(expect)) continue;
    const SoftFloat got = SoftFloat::from_float(a) + SoftFloat::from_float(b);
    ASSERT_EQ(got.bits(), std::bit_cast<std::uint32_t>(expect))
        << a << " + " << b;
    ++checked;
  }
  EXPECT_GT(checked, 1000);
}

}  // namespace
}  // namespace nistream::fixedpt
