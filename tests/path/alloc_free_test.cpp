// Steady-state allocation audit for the frame datapath. After warm-up (pool
// free lists seeded, engine slab and scheduler vectors at peak capacity), a
// full producer-path traversal — disk read, segmentation, PCI DMA, scheduler
// enqueue, dispatch, network delivery — must hit the global heap ZERO times
// per frame. This binary replaces ::operator new with a counting shim to
// prove it end to end.
//
// Under ASan/TSan the sanitizer owns the allocator, so the shim is compiled
// out and the test falls back to the coroutine pool's own counters (the
// dominant per-frame allocation source the tentpole removed).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "apps/client.hpp"
#include "apps/media_server.hpp"
#include "apps/producer.hpp"
#include "path/paths.hpp"
#include "sim/coro.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define NISTREAM_COUNTING_NEW 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define NISTREAM_COUNTING_NEW 0
#else
#define NISTREAM_COUNTING_NEW 1
#endif
#else
#define NISTREAM_COUNTING_NEW 1
#endif

#if NISTREAM_COUNTING_NEW

#include <execinfo.h>
#include <unistd.h>
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::atomic<int> g_trace_allocs{0};  // debug: dump this many backtraces

void* counted_alloc(std::size_t n) {
  ++g_heap_allocs;
  if (g_trace_allocs.load(std::memory_order_relaxed) > 0 &&
      g_trace_allocs.fetch_sub(1) > 0) {
    void* frames[16];
    const int depth = backtrace(frames, 16);
    backtrace_symbols_fd(frames, depth, STDERR_FILENO);
    write(STDERR_FILENO, "----\n", 5);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t) {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, std::align_val_t) {
  return counted_alloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // NISTREAM_COUNTING_NEW

namespace nistream::path {
namespace {

using sim::Time;

// Pump `total` frames through a full producer-path-B server; return the
// number of global heap allocations made after the first `warmup` frames
// (0 when the counting shim is compiled out). Also asserts the coroutine
// pool served the steady-state window without any fresh blocks.
std::uint64_t steady_state_heap_allocs(std::uint64_t warmup,
                                       std::uint64_t total) {
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  apps::NiSchedulerServer server{eng, bus, ether};
  apps::MpegClient client{eng, ether};
  const auto sid = server.service().create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(5), .lossy = true},
      client.port());
  rtos::Task& task = server.kernel().spawn("tProd", 120);

  auto p = producer_path_b(eng, server.board().disk(0), task, bus,
                           server.service());
  PathStats stats;
  apps::detail::pump_owned(
      std::move(p),
      fixed_frame_source(total, mpeg::kPaperFrameBytes,
                         [](std::uint64_t seq) {
                           return seq * mpeg::kPaperFrameBytes;
                         },
                         sid, Provenance::kNiDisk),
      {}, stats)
      .detach();

  // Warm-up: run until every per-frame code path has executed and every
  // growable structure (engine slab, heap vector, scheduler rings, pool
  // free lists) has reached steady-state capacity.
  while (stats.frames_produced < warmup) {
    EXPECT_LT(eng.now(), Time::sec(30)) << "warm-up stalled";
    eng.run_until(eng.now() + Time::ms(20));
  }

  const auto coro_before = sim::coro_pool_stats();
#if NISTREAM_COUNTING_NEW
  const std::uint64_t heap_before = g_heap_allocs.load();
  if (std::getenv("NISTREAM_TRACE_ALLOCS")) g_trace_allocs.store(8);
#endif

  while (!stats.finished) {
    EXPECT_LT(eng.now(), Time::sec(120)) << "drain stalled";
    eng.run_until(eng.now() + Time::ms(20));
  }
  eng.run_until(eng.now() + Time::sec(1));  // deliver the tail

  const auto coro_after = sim::coro_pool_stats();
  EXPECT_EQ(stats.frames_produced, total);

  // The coroutine pool served every steady-state frame without new blocks.
  EXPECT_GT(coro_after.frames, coro_before.frames);
  EXPECT_EQ(coro_after.fresh_blocks, coro_before.fresh_blocks);
  EXPECT_EQ(coro_after.oversize_blocks, coro_before.oversize_blocks);
  EXPECT_GT(client.frames_received(sid), warmup);

#if NISTREAM_COUNTING_NEW
  return g_heap_allocs.load() - heap_before;
#else
  return 0;
#endif
}

TEST(AllocFree, SteadyStateFrameMachineryNeverAllocates) {
  // The per-frame machinery — coroutine frames, engine event slots, packet
  // boxes, dispatch batches, scheduler rings — must be allocation-free in
  // steady state. What legitimately remains is geometric capacity growth of
  // *retained* telemetry series (the queuing-delay figure data, rate and
  // utilization meters): O(log frames) in total, not per frame. So the
  // budget is a small constant, and doubling the steady window must add at
  // most a couple of doublings — nothing that scales with frame count.
  const std::uint64_t short_run = steady_state_heap_allocs(60, 260);
  const std::uint64_t long_run = steady_state_heap_allocs(60, 460);

#if NISTREAM_COUNTING_NEW
  EXPECT_LE(short_run, 24u) << "per-frame heap traffic has crept back in";
  EXPECT_LE(long_run, short_run + 8)
      << "heap allocations scale with frames pumped: " << short_run
      << " for 200 steady frames vs " << long_run << " for 400";
#else
  (void)short_run;
  (void)long_run;
#endif
}

}  // namespace
}  // namespace nistream::path
