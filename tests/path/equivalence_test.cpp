// Differential tests: the FramePath compositions must reproduce the
// hand-rolled loops they replaced *bit-identically* — same seeds, same
// event order, same charges, same Welford-accumulated statistics. The
// legacy implementations are copied here verbatim (from the pre-refactor
// apps/experiments.cpp and apps/producer.hpp) as the reference; each test
// runs reference and refactored pipelines on twin engines and compares
// exact doubles and exact sim::Time values (Time is integer nanoseconds,
// so == is meaningful).
#include <gtest/gtest.h>

#include "apps/client.hpp"
#include "apps/media_server.hpp"
#include "apps/producer.hpp"
#include "hostos/filesystem.hpp"
#include "mpeg/encoder.hpp"
#include "path/paths.hpp"

namespace nistream::path {
namespace {

using sim::Time;

constexpr int kTransfers = 200;
constexpr Pacing kTable4Pacing{.burst_frames = 0, .gap = Time::ms(3),
                               .where = Pacing::Where::kAfterFrame};

FrameSource table4_source(int n, std::uint64_t stride) {
  return fixed_frame_source(
      static_cast<std::uint64_t>(n), mpeg::kPaperFrameBytes,
      [stride](std::uint64_t seq) { return seq * stride; });
}

// ---------------------------------------------------------------------------
// Table 4, Path C: NI disk -> NI CPU -> network.
// ---------------------------------------------------------------------------

TEST(Table4Equivalence, PathC) {
  // Reference: the pre-refactor loop, verbatim.
  double ref_latency, ref_latency_max;
  Time ref_end;
  {
    hw::Calibration cal;
    sim::Engine eng;
    hw::PciBus bus{eng, cal.pci};
    hw::EthernetSwitch ether{eng, cal.ethernet};
    hw::ScsiDisk disk{eng, cal.disk, 77};
    apps::MpegClient client{eng, ether, cal.ethernet.stack_traversal};
    net::UdpEndpoint ni_ep{eng, ether, cal.ethernet.stack_traversal,
                           net::UdpEndpoint::Receiver{}};
    auto proc = [&]() -> sim::Coro {
      for (int i = 0; i < kTransfers; ++i) {
        const Time t0 = eng.now();
        co_await disk.read(static_cast<std::uint64_t>(i) * 10'000'000,
                           mpeg::kPaperFrameBytes);
        net::Packet pkt{.stream_id = 0, .seq = static_cast<std::uint64_t>(i),
                        .bytes = mpeg::kPaperFrameBytes,
                        .frame_type = mpeg::FrameType::kP,
                        .enqueued_at = t0, .dispatched_at = eng.now()};
        ni_ep.send(client.port(), pkt);
        co_await sim::Delay{eng, Time::ms(3)};
      }
    };
    proc().detach();
    ref_end = eng.run();
    ref_latency = client.latency_ms().mean();
    ref_latency_max = client.latency_ms().max();
  }

  // Refactored: the declarative composition, same seed.
  {
    hw::Calibration cal;
    sim::Engine eng;
    hw::PciBus bus{eng, cal.pci};
    hw::EthernetSwitch ether{eng, cal.ethernet};
    hw::ScsiDisk disk{eng, cal.disk, 77};
    apps::MpegClient client{eng, ether, cal.ethernet.stack_traversal};
    net::UdpEndpoint ni_ep{eng, ether, cal.ethernet.stack_traversal,
                           net::UdpEndpoint::Receiver{}};
    auto p = critical_path_c(eng, disk, ni_ep, client.port());
    PathStats stats;
    pump(p, table4_source(kTransfers, 10'000'000), kTable4Pacing, stats)
        .detach();
    const Time end = eng.run();

    EXPECT_EQ(end, ref_end);  // identical event sequence, to the nanosecond
    EXPECT_EQ(client.latency_ms().mean(), ref_latency);
    EXPECT_EQ(client.latency_ms().max(), ref_latency_max);
    EXPECT_EQ(stats.frames_produced,
              static_cast<std::uint64_t>(kTransfers));
  }
}

// ---------------------------------------------------------------------------
// Table 4, Path B: disk -> PCI p2p DMA -> scheduler NI -> network, with the
// hand-kept RunningStat decomposition vs the path's stage stamps.
// ---------------------------------------------------------------------------

TEST(Table4Equivalence, PathBWithDecomposition) {
  double ref_latency, ref_disk_ms, ref_pci_ms, ref_net_ms;
  Time ref_end;
  {
    hw::Calibration cal;
    sim::Engine eng;
    hw::PciBus bus{eng, cal.pci};
    hw::EthernetSwitch ether{eng, cal.ethernet};
    hw::ScsiDisk disk{eng, cal.disk, 78};
    apps::MpegClient client{eng, ether, cal.ethernet.stack_traversal};
    net::UdpEndpoint sched_ep{eng, ether, cal.ethernet.stack_traversal,
                              net::UdpEndpoint::Receiver{}};
    sim::RunningStat disk_ms, pci_ms;
    auto proc = [&]() -> sim::Coro {
      for (int i = 0; i < kTransfers; ++i) {
        const Time t0 = eng.now();
        co_await disk.read(static_cast<std::uint64_t>(i) * 10'000'000,
                           mpeg::kPaperFrameBytes);
        const Time t1 = eng.now();
        disk_ms.add((t1 - t0).to_ms());
        co_await bus.dma(mpeg::kPaperFrameBytes);
        pci_ms.add((eng.now() - t1).to_ms());
        net::Packet pkt{.stream_id = 0, .seq = static_cast<std::uint64_t>(i),
                        .bytes = mpeg::kPaperFrameBytes,
                        .frame_type = mpeg::FrameType::kP,
                        .enqueued_at = t0, .dispatched_at = eng.now()};
        sched_ep.send(client.port(), pkt);
        co_await sim::Delay{eng, Time::ms(3)};
      }
    };
    proc().detach();
    ref_end = eng.run();
    ref_latency = client.latency_ms().mean();
    ref_disk_ms = disk_ms.mean();
    ref_pci_ms = pci_ms.mean();
    ref_net_ms = client.net_latency_ms().mean();
  }

  {
    hw::Calibration cal;
    sim::Engine eng;
    hw::PciBus bus{eng, cal.pci};
    hw::EthernetSwitch ether{eng, cal.ethernet};
    hw::ScsiDisk disk{eng, cal.disk, 78};
    apps::MpegClient client{eng, ether, cal.ethernet.stack_traversal};
    net::UdpEndpoint sched_ep{eng, ether, cal.ethernet.stack_traversal,
                              net::UdpEndpoint::Receiver{}};
    auto p = critical_path_b(eng, disk, bus, sched_ep, client.port());
    PathStats stats;
    pump(p, table4_source(kTransfers, 10'000'000), kTable4Pacing, stats)
        .detach();
    const Time end = eng.run();

    EXPECT_EQ(end, ref_end);
    EXPECT_EQ(client.latency_ms().mean(), ref_latency);
    // The hand-kept decomposition falls out of the stage stamps — same
    // values in the same Welford order, so exactly equal doubles.
    EXPECT_EQ(stats.stage_mean_ms("disk"), ref_disk_ms);
    EXPECT_EQ(stats.stage_mean_ms("pci"), ref_pci_ms);
    EXPECT_EQ(client.net_latency_ms().mean(), ref_net_ms);
  }
}

// ---------------------------------------------------------------------------
// Table 4, Path A: host filesystem -> host NIC, UFS and dosFs.
// ---------------------------------------------------------------------------

TEST(Table4Equivalence, PathABothFilesystems) {
  for (const bool use_ufs : {true, false}) {
    double ref_latency;
    Time ref_end;
    {
      hw::Calibration cal;
      sim::Engine eng;
      hw::EthernetSwitch ether{eng, cal.ethernet};
      hw::ScsiDisk disk{eng, cal.disk, 79};
      hostos::UfsFilesystem ufs{eng, disk, cal.fs};
      hostos::DosFilesystem dosfs{eng, disk, cal.fs};
      apps::MpegClient client{eng, ether, cal.ethernet.stack_traversal};
      net::UdpEndpoint host_ep{eng, ether, net::kHostStackCost,
                               net::UdpEndpoint::Receiver{}};
      auto proc = [&]() -> sim::Coro {
        for (int i = 0; i < kTransfers; ++i) {
          const Time t0 = eng.now();
          const auto off =
              static_cast<std::uint64_t>(i) * mpeg::kPaperFrameBytes;
          if (use_ufs) {
            co_await ufs.read(off, mpeg::kPaperFrameBytes);
          } else {
            co_await dosfs.read(off, mpeg::kPaperFrameBytes);
          }
          net::Packet pkt{.stream_id = 0,
                          .seq = static_cast<std::uint64_t>(i),
                          .bytes = mpeg::kPaperFrameBytes,
                          .frame_type = mpeg::FrameType::kP,
                          .enqueued_at = t0, .dispatched_at = eng.now()};
          host_ep.send(client.port(), pkt);
          co_await sim::Delay{eng, Time::ms(3)};
        }
      };
      proc().detach();
      ref_end = eng.run();
      ref_latency = client.latency_ms().mean();
    }

    {
      hw::Calibration cal;
      sim::Engine eng;
      hw::EthernetSwitch ether{eng, cal.ethernet};
      hw::ScsiDisk disk{eng, cal.disk, 79};
      hostos::UfsFilesystem ufs{eng, disk, cal.fs};
      hostos::DosFilesystem dosfs{eng, disk, cal.fs};
      apps::MpegClient client{eng, ether, cal.ethernet.stack_traversal};
      net::UdpEndpoint host_ep{eng, ether, net::kHostStackCost,
                               net::UdpEndpoint::Receiver{}};
      auto p = use_ufs ? critical_path_a(eng, ufs, host_ep, client.port())
                       : critical_path_a(eng, dosfs, host_ep, client.port());
      PathStats stats;
      pump(p, table4_source(kTransfers, mpeg::kPaperFrameBytes),
           kTable4Pacing, stats)
          .detach();
      const Time end = eng.run();

      EXPECT_EQ(end, ref_end) << (use_ufs ? "ufs" : "dosfs");
      EXPECT_EQ(client.latency_ms().mean(), ref_latency)
          << (use_ufs ? "ufs" : "dosfs");
    }
  }
}

// ---------------------------------------------------------------------------
// Producers: the FramePath-backed ni_disk_producer vs the pre-refactor
// hand-rolled loop, through a full NI scheduler server.
// ---------------------------------------------------------------------------

struct ProducerFingerprint {
  std::uint64_t frames = 0;
  std::uint64_t retries = 0;
  bool finished = false;
  Time finished_at;
  std::uint64_t delivered = 0;
  double client_latency_mean = 0;
  Time ni_cpu_busy;
  std::uint64_t pci_bytes = 0;
};

mpeg::MpegFile producer_file() {
  mpeg::EncoderParams p;
  p.mean_i_bytes = 2000;
  p.mean_p_bytes = 1000;
  p.mean_b_bytes = 500;
  p.seed = 17;
  return mpeg::SyntheticEncoder{p}.generate(40);
}

// The pre-refactor apps::ni_disk_producer body, verbatim.
sim::Coro legacy_ni_disk_producer(sim::Engine& engine, hw::ScsiDisk& disk,
                                  rtos::Task& task,
                                  const mpeg::MpegFile& file,
                                  dvcm::StreamService& service,
                                  dwcs::StreamId stream,
                                  hw::PciBus* cross_bus,
                                  ProducerFingerprint& stats) {
  std::uint64_t offset = 0;
  for (const auto& frame : file.frames) {
    co_await disk.read(offset, frame.bytes);
    offset += frame.bytes;
    co_await task.consume_cycles(apps::kSegmentationCyclesPerFrame);
    if (cross_bus) co_await cross_bus->dma(frame.bytes);
    while (!service.enqueue(stream, frame.bytes, frame.type)) {
      ++stats.retries;
      co_await sim::Delay{engine, apps::kEnqueueBackoff};
    }
    ++stats.frames;
  }
  stats.finished = true;
  stats.finished_at = engine.now();
}

template <typename SpawnProducer>
ProducerFingerprint run_ni_scenario(bool cross_bus, SpawnProducer&& spawn) {
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  apps::NiSchedulerServer server{eng, bus, ether};
  apps::MpegClient client{eng, ether};
  const auto file = producer_file();
  const auto sid = server.service().create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(33), .lossy = true},
      client.port());
  rtos::Task& task = server.kernel().spawn("tProd", 120);
  ProducerFingerprint fp;
  spawn(eng, server, task, file, sid, cross_bus ? &bus : nullptr, fp);
  eng.run_until(Time::sec(3));
  fp.delivered = client.frames_received(sid);
  fp.client_latency_mean = client.latency_ms().mean();
  fp.ni_cpu_busy = server.kernel().ni_cpu_busy();
  fp.pci_bytes = bus.bytes_moved();
  return fp;
}

TEST(ProducerEquivalence, NiDiskPathsBAndC) {
  for (const bool cross_bus : {false, true}) {
    const auto ref = run_ni_scenario(
        cross_bus,
        [](sim::Engine& eng, apps::NiSchedulerServer& server,
           rtos::Task& task, const mpeg::MpegFile& file, dwcs::StreamId sid,
           hw::PciBus* bus, ProducerFingerprint& fp) {
          legacy_ni_disk_producer(eng, server.board().disk(0), task, file,
                                  server.service(), sid, bus, fp)
              .detach();
        });
    apps::ProducerStats stats;
    const auto got = run_ni_scenario(
        cross_bus,
        [&stats](sim::Engine& eng, apps::NiSchedulerServer& server,
                 rtos::Task& task, const mpeg::MpegFile& file,
                 dwcs::StreamId sid, hw::PciBus* bus,
                 ProducerFingerprint& fp) {
          apps::ni_disk_producer(eng, server.board().disk(0), task, file,
                                 server.service(), stats,
                                 {.stream = sid, .cross_bus = bus})
              .detach();
          (void)fp;
        });

    EXPECT_EQ(stats.frames_produced, ref.frames);
    EXPECT_EQ(stats.retries, ref.retries);
    EXPECT_EQ(stats.finished, ref.finished);
    EXPECT_EQ(stats.finished_at, ref.finished_at);
    EXPECT_EQ(got.delivered, ref.delivered);
    EXPECT_EQ(got.client_latency_mean, ref.client_latency_mean);
    EXPECT_EQ(got.ni_cpu_busy, ref.ni_cpu_busy);
    EXPECT_EQ(got.pci_bytes, ref.pci_bytes);
  }
}

// ---------------------------------------------------------------------------
// Per-frame accounting: stamped stage latencies sum exactly to the frame's
// end-to-end pipeline latency, on a real contended producer path.
// ---------------------------------------------------------------------------

TEST(StageAccounting, StampsSumToEndToEnd) {
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::EthernetSwitch ether{eng};
  dvcm::StreamService::Config cfg;
  cfg.scheduler.ring_capacity = 4;  // tiny ring: enqueue backoff is real
  apps::NiSchedulerServer server{eng, bus, ether, cfg};
  apps::MpegClient client{eng, ether};
  const auto file = producer_file();
  const auto sid = server.service().create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(5), .lossy = true},
      client.port());
  rtos::Task& task = server.kernel().spawn("tProd", 120);

  auto p = producer_path_b(eng, server.board().disk(0), task, bus,
                           server.service());
  PathStats stats;
  int checked = 0;
  pump(p, mpeg_file_source(file, sid, 0, Provenance::kNiDisk), {}, stats,
       [&checked](const StagedFrame& f) {
         EXPECT_EQ(f.staged_total(), f.completed_at - f.created_at);
         EXPECT_EQ(f.stage_count, 4u);  // disk, segment, pci, enqueue
         ++checked;
       })
      .detach();
  eng.run_until(Time::sec(3));

  EXPECT_TRUE(stats.finished);
  EXPECT_EQ(checked, 40);
  // The aggregate view agrees with per-frame tiling too: means of parts sum
  // to the mean of the whole (same per-frame partitions, averaged).
  const double sum_of_means =
      stats.stage_mean_ms("disk") + stats.stage_mean_ms("segment") +
      stats.stage_mean_ms("pci") + stats.stage_mean_ms("enqueue");
  EXPECT_NEAR(sum_of_means, stats.total_ms.mean(), 1e-9);
}

// ---------------------------------------------------------------------------
// Cluster synthetic producers: the FramePath-backed spawn vs the
// pre-refactor inline coroutine, draw-for-draw.
// ---------------------------------------------------------------------------

// The pre-refactor ServerNode::spawn_producer body, verbatim.
sim::Coro legacy_synthetic_producer(sim::Engine& eng,
                                    dvcm::StreamService& svc, rtos::Task& t,
                                    dwcs::StreamId sid, Time period,
                                    std::uint32_t mean_bytes, int frames,
                                    std::uint64_t rng_seed) {
  sim::Rng rng{rng_seed};
  for (int k = 0; k < frames; ++k) {
    const auto bytes = static_cast<std::uint32_t>(
        std::max(128.0, rng.normal(mean_bytes, mean_bytes * 0.15)));
    co_await t.consume_cycles(apps::kSegmentationCyclesPerFrame);
    while (!svc.enqueue(sid, bytes,
                        k % 12 == 0 ? mpeg::FrameType::kI
                                    : mpeg::FrameType::kP)) {
      co_await sim::Delay{eng, apps::kEnqueueBackoff};
    }
    co_await sim::Delay{eng, period};
  }
}

TEST(ProducerEquivalence, ClusterSyntheticProducer) {
  const auto run = [](bool legacy) {
    sim::Engine eng;
    hw::PciBus bus{eng};
    hw::EthernetSwitch ether{eng};
    apps::NiSchedulerServer server{eng, bus, ether};
    apps::MpegClient client{eng, ether};
    const auto sid = server.service().create_stream(
        {.tolerance = {2, 8}, .period = Time::ms(33), .lossy = true},
        client.port());
    rtos::Task& task = server.kernel().spawn("tProd0", 120);
    apps::ProducerStats stats;
    if (legacy) {
      legacy_synthetic_producer(eng, server.service(), task, sid,
                                Time::ms(33), 1200, 50, 99)
          .detach();
    } else {
      apps::spawn_synthetic_producer(
          server, task, sid,
          {.mean_frame_bytes = 1200, .n_frames = 50,
           .period = Time::ms(33), .seed = 99},
          stats);
    }
    eng.run_until(Time::sec(4));
    return std::tuple{client.frames_received(sid), client.total_bytes(),
                      client.latency_ms().mean(),
                      server.kernel().ni_cpu_busy()};
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace nistream::path
