// Unit tests for the unified frame datapath: StagedFrame stamping, the
// individual stages' charging behavior, FramePath composition, and the pump
// (pacing, backpressure, incremental stats).
#include "path/paths.hpp"

#include <gtest/gtest.h>

#include "apps/client.hpp"
#include "hw/i2o.hpp"
#include "hw/striped_volume.hpp"
#include "mpeg/encoder.hpp"

namespace nistream::path {
namespace {

using sim::Time;

TEST(StagedFrame, StampAndStagedTotal) {
  StagedFrame f;
  f.stamp(0, Time::ms(1), Time::ms(3));
  f.stamp(1, Time::ms(3), Time::ms(3));   // zero-cost stage
  f.stamp(2, Time::ms(3), Time::ms(10));
  EXPECT_EQ(f.stage_count, 3u);
  EXPECT_EQ(f.samples[0].duration(), Time::ms(2));
  EXPECT_EQ(f.staged_total(), Time::ms(9));
}

TEST(PathStats, StageLookup) {
  PathStats s;
  s.stages.push_back({"disk", {}});
  s.stages.push_back({"enqueue", {}});
  s.stages[0].ms.add(4.0);
  s.stages[0].ms.add(6.0);
  EXPECT_DOUBLE_EQ(s.stage_mean_ms("disk"), 5.0);
  EXPECT_EQ(s.stage_mean_ms("pci"), 0.0);
  ASSERT_NE(s.stage("disk"), nullptr);
  EXPECT_EQ(s.stage("disk")->count(), 2u);
  EXPECT_EQ(s.stage("absent"), nullptr);
}

TEST(FramePath, RunFrameStampsEveryStage) {
  sim::Engine eng;
  hw::ScsiDisk disk{eng};
  hw::PciBus bus{eng};
  FramePath p{eng, "test"};
  p.stage<DiskStage<hw::ScsiDisk>>(disk).stage<PciDmaStage>(bus);

  StagedFrame f;
  f.bytes = 1000;
  f.disk_offset = 50'000'000;
  PathStats stats;
  p.bind(stats);
  auto run = [&]() -> sim::Coro { co_await p.run_frame(f, &stats); };
  run().detach();
  eng.run();

  ASSERT_EQ(f.stage_count, 2u);
  EXPECT_GT(f.samples[0].duration(), Time::zero());  // disk mechanics
  EXPECT_GT(f.samples[1].duration(), Time::zero());  // DMA
  // Stamps tile the pipeline: no gaps, no overlap.
  EXPECT_EQ(f.samples[0].start, f.created_at);
  EXPECT_EQ(f.samples[0].end, f.samples[1].start);
  EXPECT_EQ(f.samples[1].end, f.completed_at);
  EXPECT_EQ(f.staged_total(), f.completed_at - f.created_at);
  EXPECT_EQ(stats.stages[0].name, "disk");
  EXPECT_EQ(stats.stages[1].name, "pci");
  EXPECT_DOUBLE_EQ(stats.stages[0].ms.mean(),
                   f.samples[0].duration().to_ms());
}

TEST(Stages, I2oStageChargesPostCost) {
  sim::Engine eng;
  hw::PciBus bus{eng};
  hw::I2oChannel chan{eng, bus};
  FramePath p{eng, "i2o"};
  p.stage<I2oStage>(eng, chan);
  StagedFrame f;
  auto run = [&]() -> sim::Coro { co_await p.run_frame(f, nullptr); };
  run().detach();
  eng.run();
  EXPECT_EQ(f.samples[0].duration(), chan.post_cost());
}

TEST(Stages, SegmentStageChargesTaskCycles) {
  sim::Engine eng;
  hw::CpuModel cpu{hw::kI960Rd};
  rtos::WindKernel kernel{eng, cpu};
  rtos::Task& task = kernel.spawn("tSeg", 100);
  FramePath p{eng, "seg"};
  p.stage<SegmentStage<rtos::Task>>(task, 900);
  StagedFrame f;
  auto run = [&]() -> sim::Coro { co_await p.run_frame(f, nullptr); };
  run().detach();
  eng.run();
  EXPECT_GT(f.samples[0].duration(), Time::zero());
}

TEST(Stages, EnqueueStageRetriesUntilAdmitted) {
  sim::Engine eng;
  hw::CpuModel cpu{hw::kI960Rd};
  hw::Calibration cal;
  dvcm::StreamService::Config cfg;
  cfg.scheduler.ring_capacity = 1;
  dvcm::StreamService svc{eng, cfg, cpu, cal.ni_int, cal.ni_softfp, nullptr};
  const auto id = svc.create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true}, 0);
  ASSERT_TRUE(svc.enqueue(id, 100, mpeg::FrameType::kP));  // fill the ring

  FramePath p{eng, "enq"};
  p.stage<EnqueueStage>(eng, svc, Time::ms(5));
  StagedFrame f;
  f.stream = id;
  f.bytes = 100;
  bool done = false;
  auto run = [&]() -> sim::Coro {
    co_await p.run_frame(f, nullptr);
    done = true;
  };
  run().detach();
  // Drain one slot after two failed attempts' worth of backoff.
  auto drain = [&]() -> sim::Coro {
    co_await sim::Delay{eng, Time::ms(7)};
    (void)svc.scheduler().schedule_next(eng.now());
  };
  drain().detach();
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_GE(f.enqueue_retries, 1u);
  EXPECT_EQ(f.samples[0].duration(),
            Time::ms(5) * static_cast<std::int64_t>(f.enqueue_retries));
}

TEST(Stages, UdpSendStampsDispatchOnlyWhenAsked) {
  sim::Engine eng;
  hw::Calibration cal;
  hw::EthernetSwitch ether{eng, cal.ethernet};
  apps::MpegClient client{eng, ether, cal.ethernet.stack_traversal};
  net::UdpEndpoint ep{eng, ether, cal.ethernet.stack_traversal,
                      net::UdpEndpoint::Receiver{}};
  FramePath p{eng, "send"};
  p.stage<UdpSendStage>(eng, ep, client.port());
  PathStats stats;
  pump(p, fixed_frame_source(3, 1000, {}), {}, stats).detach();
  eng.run();
  EXPECT_EQ(stats.frames_produced, 3u);
  EXPECT_TRUE(stats.finished);
  EXPECT_EQ(client.total_frames(), 3u);
}

TEST(Pump, BeforeFramePacingSkipsBurst) {
  sim::Engine eng;
  FramePath p{eng, "empty"};  // no stages: pacing is the only time cost
  PathStats stats;
  pump(p, fixed_frame_source(5, 100, {}),
       Pacing{.burst_frames = 2, .gap = Time::ms(10),
              .where = Pacing::Where::kBeforeFrame},
       stats)
      .detach();
  eng.run();
  // Frames 0,1 immediate; 2,3,4 pay the 10 ms gap each.
  EXPECT_EQ(stats.frames_produced, 5u);
  EXPECT_EQ(stats.finished_at, Time::ms(30));
}

TEST(Pump, AfterFramePacingPacesEveryFrame) {
  sim::Engine eng;
  FramePath p{eng, "empty"};
  PathStats stats;
  pump(p, fixed_frame_source(4, 100, {}),
       Pacing{.burst_frames = 0, .gap = Time::ms(3),
              .where = Pacing::Where::kAfterFrame},
       stats)
      .detach();
  eng.run();
  // The Table 4 methodology: a gap after every frame, including the last.
  EXPECT_EQ(stats.finished_at, Time::ms(12));
}

TEST(Pump, MpegFileSourceAccumulatesOffsets) {
  mpeg::EncoderParams ep;
  ep.seed = 7;
  const auto file = mpeg::SyntheticEncoder{ep}.generate(5);
  auto src = mpeg_file_source(file, /*stream=*/3, /*base=*/1000,
                              Provenance::kNiDisk);
  std::uint64_t expected_off = 1000;
  for (std::uint64_t k = 0; k < 5; ++k) {
    StagedFrame f;
    ASSERT_TRUE(src(k, f));
    EXPECT_EQ(f.stream, 3u);
    EXPECT_EQ(f.disk_offset, expected_off);
    EXPECT_EQ(f.bytes, file.frames[k].bytes);
    EXPECT_EQ(f.type, file.frames[k].type);
    expected_off += file.frames[k].bytes;
  }
  StagedFrame f;
  EXPECT_FALSE(src(5, f));
}

TEST(Paths, AllPaperPathsCompose) {
  sim::Engine eng;
  hw::Calibration cal;
  hw::CpuModel cpu{hw::kI960Rd};
  hw::PciBus bus{eng, cal.pci};
  hw::EthernetSwitch ether{eng, cal.ethernet};
  hw::ScsiDisk disk{eng, cal.disk, 11};
  hw::ScsiDisk member{eng, cal.disk, 12};
  std::vector<hw::ScsiDisk*> members{&disk, &member};
  hw::StripedVolume vol{eng, members};
  hw::I2oChannel chan{eng, bus};
  hostos::HostMachine host{eng, 1, cal, Time::sec(1)};
  hostos::UfsFilesystem ufs{eng, disk, cal.fs};
  hostos::Process& proc = host.spawn("prod");
  rtos::WindKernel kernel{eng, cpu, cal.rtos};
  rtos::Task& task = kernel.spawn("tProd", 120);
  dvcm::StreamService svc{eng, {}, cpu, cal.ni_int, cal.ni_softfp, nullptr};
  net::UdpEndpoint ep{eng, ether, cal.ethernet.stack_traversal,
                      net::UdpEndpoint::Receiver{}};

  // Every paper path plus the striped and I2O variants builds, and carries
  // the stage sequence its Figure 3 arrow diagram says it should.
  const auto names = [](const FramePath& p) {
    std::vector<std::string> v;
    for (std::size_t i = 0; i < p.stage_count(); ++i) {
      v.emplace_back(p.stage_at(i).name());
    }
    return v;
  };
  using V = std::vector<std::string>;
  EXPECT_EQ(names(critical_path_a(eng, ufs, ep, 1)), (V{"fs", "send"}));
  EXPECT_EQ(names(critical_path_b(eng, disk, bus, ep, 1)),
            (V{"disk", "pci", "send"}));
  EXPECT_EQ(names(critical_path_c(eng, disk, ep, 1)), (V{"disk", "send"}));
  EXPECT_EQ(names(producer_path_a(host, proc, ufs, svc)),
            (V{"fs", "segment", "enqueue"}));
  EXPECT_EQ(names(producer_path_b(eng, disk, task, bus, svc)),
            (V{"disk", "segment", "pci", "enqueue"}));
  EXPECT_EQ(names(producer_path_b_i2o(eng, disk, task, bus, chan, svc)),
            (V{"disk", "segment", "pci", "i2o", "enqueue"}));
  EXPECT_EQ(names(producer_path_c(eng, disk, task, svc)),
            (V{"disk", "segment", "enqueue"}));
  EXPECT_EQ(names(producer_path_c_striped(eng, vol, task, svc)),
            (V{"disk", "segment", "enqueue"}));
  EXPECT_EQ(names(synthetic_producer_path(eng, task, svc)),
            (V{"segment", "enqueue"}));
}

TEST(Paths, StripedProducerDeliversOffTheVolume) {
  sim::Engine eng;
  hw::Calibration cal;
  hw::CpuModel cpu{hw::kI960Rd};
  hw::ScsiDisk d0{eng, cal.disk, 21};
  hw::ScsiDisk d1{eng, cal.disk, 22};
  std::vector<hw::ScsiDisk*> members{&d0, &d1};
  hw::StripedVolume vol{eng, members};
  rtos::WindKernel kernel{eng, cpu, cal.rtos};
  rtos::Task& task = kernel.spawn("tProd", 120);
  dvcm::StreamService svc{eng, {}, cpu, cal.ni_int, cal.ni_softfp, nullptr};
  const auto id = svc.create_stream(
      {.tolerance = {1, 4}, .period = Time::ms(10), .lossy = true}, 0);

  auto p = producer_path_c_striped(eng, vol, task, svc);
  PathStats stats;
  mpeg::EncoderParams ep;
  ep.seed = 9;
  const auto file = mpeg::SyntheticEncoder{ep}.generate(12);
  pump(p, mpeg_file_source(file, id, 0, Provenance::kStripedVolume), {},
       stats)
      .detach();
  eng.run_until(Time::sec(2));

  EXPECT_TRUE(stats.finished);
  EXPECT_EQ(stats.frames_produced, 12u);
  EXPECT_GT(stats.stage_mean_ms("disk"), 0.0);
  EXPECT_GT(stats.stage_mean_ms("segment"), 0.0);
  // Both members served part of the sweep.
  EXPECT_GT(d0.requests(), 0u);
  EXPECT_GT(d1.requests(), 0u);
}

}  // namespace
}  // namespace nistream::path
