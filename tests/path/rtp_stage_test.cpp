// Tests for the RTP/RTCP datapath stages and the PumpGate lifecycle
// control: header-space advancement, report cadence, RTP-tailed path
// composition, and pause/resume/stop at frame boundaries.
#include "path/rtp_stages.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hw/calibration.hpp"
#include "net/udp.hpp"
#include "path/paths.hpp"
#include "rtos/wind.hpp"
#include "session/paths.hpp"

namespace nistream::path {
namespace {

using sim::Time;

struct RtpRig {
  sim::Engine eng;
  hw::EthernetSwitch ether{eng};
  hw::CpuModel cpu{hw::kI960Rd};
  rtos::WindKernel kernel{eng, cpu};
  rtos::Task& task = kernel.spawn("rtp-test", 100);
  std::vector<RtcpSenderReport> reports;
  int sink = ether.add_port([](const hw::EthFrame&) {});
  net::UdpEndpoint rtcp_out{eng, ether, net::kNiStackCost,
                            [](const net::Packet&, Time) {}};
  net::UdpEndpoint rtcp_sink{eng, ether, net::kHostStackCost,
                             [this](const net::Packet& p, Time) {
                               if (const auto* r =
                                       static_cast<const RtcpSenderReport*>(
                                           p.body.get())) {
                                 reports.push_back(*r);
                               }
                             }};
};

TEST(RtpPacketizeStage, AdvancesSequenceTimestampAndBytes) {
  RtpRig rig;
  RtpState state;
  state.ssrc = 0xabcd;
  FramePath p{rig.eng, "rtp-only"};
  p.stage<RtpPacketizeStage<rtos::Task>>(rig.task, state, 700);
  PathStats stats;
  auto run = [&]() -> sim::Coro {
    for (int i = 0; i < 3; ++i) {
      StagedFrame f;
      f.seq = static_cast<std::uint64_t>(i);
      f.bytes = 1000;
      co_await p.run_frame(f, nullptr);
      EXPECT_EQ(f.bytes, 1000u + kRtpHeaderBytes);
    }
  };
  run().detach();
  rig.eng.run();
  EXPECT_EQ(state.packets, 3u);
  EXPECT_EQ(state.octets, 3000u);  // payload octets, headers excluded
  EXPECT_EQ(state.seq, 3u);
  EXPECT_EQ(state.timestamp, 3u * kRtpTicksPerFrame);
}

TEST(RtpPacketizeStage, SequenceWrapsAt16Bits) {
  RtpRig rig;
  RtpState state;
  state.seq = 0xffff;
  FramePath p{rig.eng, "rtp-wrap"};
  p.stage<RtpPacketizeStage<rtos::Task>>(rig.task, state, 700);
  auto run = [&]() -> sim::Coro {
    StagedFrame f;
    f.bytes = 100;
    co_await p.run_frame(f, nullptr);
  };
  run().detach();
  rig.eng.run();
  EXPECT_EQ(state.seq, 0u);  // 16-bit wire field semantics
}

TEST(RtcpReportStage, EmitsAtConfiguredInterval) {
  RtpRig rig;
  RtpState state;
  state.ssrc = 7;
  FramePath p{rig.eng, "rtcp-only"};
  p.stage<RtpPacketizeStage<rtos::Task>>(rig.task, state, 700)
      .stage<RtcpReportStage>(rig.eng, rig.rtcp_out, rig.rtcp_sink.port(),
                              state, Time::ms(100));
  PathStats stats;
  // 30 frames at 10ms = 300ms of media; a 100ms interval means the first
  // report (frame 0) plus roughly one per 10 frames.
  auto source = fixed_frame_source(30, 1000, {});
  pump(p, source, Pacing{.burst_frames = 1, .gap = Time::ms(10)}, stats)
      .detach();
  rig.eng.run();
  ASSERT_GE(rig.reports.size(), 3u);
  ASSERT_LE(rig.reports.size(), 4u);
  EXPECT_EQ(state.reports, rig.reports.size());
  // First report fires on the first frame through the stage.
  EXPECT_EQ(rig.reports[0].packet_count, 1u);
  for (const auto& r : rig.reports) EXPECT_EQ(r.ssrc, 7u);
  // Reports snapshot cumulative counts, monotonically.
  for (std::size_t i = 1; i < rig.reports.size(); ++i) {
    EXPECT_GT(rig.reports[i].packet_count, rig.reports[i - 1].packet_count);
    EXPECT_GE(rig.reports[i].sent_at - rig.reports[i - 1].sent_at,
              Time::ms(100));
  }
}

TEST(SessionPaths, PathCWithRtpTailHasExpectedStages) {
  RtpRig rig;
  hw::ScsiDisk disk{rig.eng};
  hw::Calibration cal;
  dvcm::StreamService svc{rig.eng, {}, rig.cpu, cal.ni_int, cal.ni_softfp};
  RtpState state;
  FramePath p = session::session_path_c(
      rig.eng, disk, rig.task, svc, state, rig.rtcp_out,
      rig.rtcp_sink.port(), session::RtpTailParams{});
  ASSERT_EQ(p.stage_count(), 5u);
  const char* expected[] = {"disk", "segment", "rtp", "rtcp", "enqueue"};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_STREQ(p.stage_at(i).name(), expected[i]) << "stage " << i;
  }
}

TEST(PumpGate, PauseParksAtFrameBoundaryAndResumeContinues) {
  RtpRig rig;
  FramePath p{rig.eng, "gated"};
  p.stage<DelayStage>(rig.eng, Time::ms(1));
  PathStats stats;
  PumpGate gate{rig.eng};
  auto source = fixed_frame_source(1000, 100, {});
  pump(p, source, Pacing{.burst_frames = 1, .gap = Time::ms(10)}, stats, {},
       &gate)
      .detach();
  rig.eng.run_until(Time::ms(105));
  const std::uint64_t at_pause = stats.frames_produced;
  EXPECT_GT(at_pause, 5u);
  gate.pause();
  rig.eng.run_until(Time::ms(300));
  // At most the frame already past the gate completes after pause().
  EXPECT_LE(stats.frames_produced, at_pause + 1);
  EXPECT_FALSE(stats.finished);
  const std::uint64_t during_pause = stats.frames_produced;
  gate.resume();
  rig.eng.run_until(Time::ms(500));
  EXPECT_GT(stats.frames_produced, during_pause + 10);
}

TEST(PumpGate, StopFinishesEarlyWithTruthfulStats) {
  RtpRig rig;
  FramePath p{rig.eng, "stopped"};
  p.stage<DelayStage>(rig.eng, Time::ms(1));
  PathStats stats;
  PumpGate gate{rig.eng};
  auto source = fixed_frame_source(1000, 100, {});
  pump(p, source, Pacing{.burst_frames = 1, .gap = Time::ms(10)}, stats, {},
       &gate)
      .detach();
  rig.eng.run_until(Time::ms(55));
  gate.stop();
  rig.eng.run_until(Time::ms(200));
  EXPECT_TRUE(stats.finished);
  EXPECT_LT(stats.frames_produced, 1000u);
  EXPECT_GT(stats.frames_produced, 0u);
  // finished_at records the stop, not the nominal end of media.
  EXPECT_LE(stats.finished_at, Time::ms(100));
}

TEST(PumpGate, StopWhilePausedUnparksAndExits) {
  RtpRig rig;
  FramePath p{rig.eng, "paused-stop"};
  p.stage<DelayStage>(rig.eng, Time::ms(1));
  PathStats stats;
  PumpGate gate{rig.eng};
  auto source = fixed_frame_source(1000, 100, {});
  pump(p, source, Pacing{.burst_frames = 1, .gap = Time::ms(10)}, stats, {},
       &gate)
      .detach();
  rig.eng.run_until(Time::ms(50));
  gate.pause();
  rig.eng.run_until(Time::ms(100));
  gate.stop();
  rig.eng.run_until(Time::ms(150));
  EXPECT_TRUE(stats.finished);
  EXPECT_TRUE(gate.stopped());
}

}  // namespace
}  // namespace nistream::path
