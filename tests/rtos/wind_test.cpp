// Tests for the VxWorks-like kernel model and timestamp-counter rollover
// management.
#include "rtos/wind.hpp"

#include <gtest/gtest.h>

namespace nistream::rtos {
namespace {

using sim::Time;

struct Fixture {
  sim::Engine eng;
  hw::CpuModel cpu{hw::kI960Rd};
  WindKernel kernel{eng, cpu};
};

TEST(Wind, TaskConsumesCpuTime) {
  Fixture f;
  Task& task = f.kernel.spawn("tDwcs", 50);
  Time done = Time::never();
  auto body = [&]() -> sim::Coro {
    co_await task.consume(Time::ms(5));
    done = f.eng.now();
  };
  body().detach();
  f.eng.run();
  // +4 us: the initial dispatch onto the CPU is a context switch.
  EXPECT_EQ(done, Time::ms(5) + Time::us(4));
  EXPECT_EQ(task.cpu_time(), Time::ms(5));
}

TEST(Wind, ConsumeCyclesUsesBoardClock) {
  Fixture f;
  Task& task = f.kernel.spawn("t", 50);
  Time done = Time::never();
  auto body = [&]() -> sim::Coro {
    co_await task.consume_cycles(66'000);  // 1 ms at 66 MHz
    done = f.eng.now();
  };
  body().detach();
  f.eng.run();
  EXPECT_EQ(done, Time::ms(1) + Time::us(4));  // + dispatch switch
}

TEST(Wind, StrictPriorityPreemption) {
  Fixture f;
  Task& low = f.kernel.spawn("tLow", 200);
  Task& high = f.kernel.spawn("tHigh", 10);
  Time low_done = Time::never(), high_done = Time::never();
  auto pl = [&]() -> sim::Coro {
    co_await low.consume(Time::ms(10));
    low_done = f.eng.now();
  };
  auto ph = [&]() -> sim::Coro {
    co_await sim::Delay{f.eng, Time::ms(2)};
    co_await high.consume(Time::ms(3));
    high_done = f.eng.now();
  };
  pl().detach();
  ph().detach();
  f.eng.run();
  // The kernel adds a context switch (4 us) when tHigh takes the CPU.
  EXPECT_NEAR(high_done.to_ms(), 5.004, 0.01);
  EXPECT_NEAR(low_done.to_ms(), 13.008, 0.02);  // +3 ms preempted +2 switches
}

TEST(Wind, RunToBlockNoTimeSlicing) {
  // VxWorks default: equal-priority tasks do not round-robin; the first
  // runs until it blocks.
  Fixture f;
  Task& a = f.kernel.spawn("tA", 50);
  Task& b = f.kernel.spawn("tB", 50);
  Time a_done = Time::never(), b_done = Time::never();
  auto pa = [&]() -> sim::Coro {
    co_await a.consume(Time::ms(50));
    a_done = f.eng.now();
  };
  auto pb = [&]() -> sim::Coro {
    co_await b.consume(Time::ms(50));
    b_done = f.eng.now();
  };
  pa().detach();
  pb().detach();
  f.eng.run();
  EXPECT_EQ(a_done, Time::ms(50) + Time::us(4));  // uninterrupted
  EXPECT_GT(b_done, Time::ms(99));
}

TEST(Wind, NiCpuBusyAccounting) {
  Fixture f;
  Task& t = f.kernel.spawn("t", 50);
  auto body = [&]() -> sim::Coro { co_await t.consume(Time::ms(7)); };
  body().detach();
  f.eng.run();
  // Busy time includes the dispatch context switch.
  EXPECT_EQ(f.kernel.ni_cpu_busy(), Time::ms(7) + Time::us(4));
}

TEST(Timestamp, RawWrapsAt32Bits) {
  TimestampCounter tsc{66e6};
  // 2^32 cycles at 66 MHz = ~65.075 s.
  EXPECT_NEAR(tsc.wrap_period().to_sec(), 65.075, 0.01);
  const auto raw_before = tsc.raw(Time::sec(65.0));
  const auto raw_after = tsc.raw(Time::sec(65.2));
  EXPECT_LT(raw_after, raw_before);  // wrapped
}

TEST(Timestamp, ExtensionSurvivesRollover) {
  TimestampCounter tsc{66e6};
  std::uint64_t last = 0;
  // Sample every 10 s across several wrap periods; the extended counter must
  // be strictly monotonic.
  for (int s = 10; s <= 300; s += 10) {
    const std::uint64_t ext = tsc.cycles_at(Time::sec(s));
    EXPECT_GT(ext, last) << "at t=" << s << "s";
    last = ext;
  }
  // 300 s at 66 MHz = 1.98e10 cycles, far beyond 32 bits.
  EXPECT_NEAR(static_cast<double>(last), 300.0 * 66e6, 66e6 * 0.01);
}

TEST(Timestamp, SecondsBetween) {
  TimestampCounter tsc{66e6};
  const auto a = tsc.cycles_at(Time::sec(1));
  const auto b = tsc.cycles_at(Time::sec(31));
  EXPECT_NEAR(tsc.seconds_between(a, b), 30.0, 0.001);
}

TEST(Timestamp, SchedulerUseCase) {
  // The embedded scheduler timestamps every frame; rollover management must
  // keep per-frame intervals correct across a wrap boundary.
  TimestampCounter tsc{66e6};
  std::uint64_t prev = tsc.cycles_at(Time::sec(64.9));
  const std::uint64_t next = tsc.cycles_at(Time::sec(65.3));  // crosses wrap
  EXPECT_NEAR(tsc.seconds_between(prev, next), 0.4, 1e-6);
}

}  // namespace
}  // namespace nistream::rtos
