// The sweep runner's determinism contract: run_cells writes every cell's
// result into its own pre-assigned slot, so the output array is identical
// for any --jobs value — thread scheduling affects only wall-clock time.
// Also pins the provenance-stamp contract: git_rev() resolves at RUN time
// and always has a machine-checkable shape.
#include "bench_util.hpp"
#include "runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace nistream::bench {
namespace {

// Deterministic per-cell "simulation": a splitmix64 chain seeded purely from
// the cell index, like real sweep cells seed from grid coordinates.
std::uint64_t cell_value(std::size_t i) {
  std::uint64_t x = 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(i);
  for (int k = 0; k < 64; ++k) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
  }
  return x;
}

std::vector<std::uint64_t> sweep(std::size_t n, unsigned jobs) {
  std::vector<std::uint64_t> out(n);
  run_cells(n, jobs, [&](std::size_t i) { out[i] = cell_value(i); });
  return out;
}

TEST(RunCells, ResultsAreIdenticalAcrossJobCounts) {
  const auto reference = sweep(64, 1);
  for (const unsigned jobs : {2u, 4u, 8u}) {
    EXPECT_EQ(sweep(64, jobs), reference) << "jobs=" << jobs;
  }
}

TEST(RunCells, EveryCellRunsExactlyOnce) {
  constexpr std::size_t kCells = 100;
  std::vector<std::atomic<int>> hits(kCells);
  run_cells(kCells, 4, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCells; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "cell " << i;
}

TEST(RunCells, DegenerateShapes) {
  int calls = 0;
  run_cells(0, 4, [&](std::size_t) { ++calls; });  // empty grid
  EXPECT_EQ(calls, 0);

  run_cells(1, 8, [&](std::size_t i) {  // single cell: calling thread
    ++calls;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_EQ(calls, 1);

  // More workers than cells must not spin or double-run anything.
  std::vector<std::atomic<int>> hits(3);
  run_cells(3, 16, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunCells, SequentialPathRunsInGridOrderOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  run_cells(5, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: sequential by contract
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(FlagJobs, ParsesZeroAsOneAndCapsAtBound) {
  char prog[] = "bench";
  char zero[] = "--jobs=0";
  char big[] = "--jobs=1000000";
  char four[] = "--jobs=4";
  {
    char* argv[] = {prog, zero};
    EXPECT_EQ(flag_jobs(2, argv), 1u);
  }
  {
    char* argv[] = {prog, big};
    EXPECT_EQ(flag_jobs(2, argv), 1024u);
  }
  {
    char* argv[] = {prog, four};
    EXPECT_EQ(flag_jobs(2, argv), 4u);
  }
  {
    char* argv[] = {prog};
    EXPECT_EQ(flag_jobs(1, argv), default_jobs());
  }
}

// ---------------------------------------------------------------------------
// git_rev() provenance stamp.
// ---------------------------------------------------------------------------

TEST(GitRev, FormatCheckerAcceptsExactlyThePromisedShapes) {
  // The promised shapes: "unknown", or 7-40 lowercase-hex chars with an
  // optional "-dirty" suffix.
  EXPECT_TRUE(git_rev_well_formed("unknown"));
  EXPECT_TRUE(git_rev_well_formed("d4e34fa"));
  EXPECT_TRUE(git_rev_well_formed("d4e34fa-dirty"));
  EXPECT_TRUE(git_rev_well_formed(std::string(40, 'a')));

  EXPECT_FALSE(git_rev_well_formed(""));
  EXPECT_FALSE(git_rev_well_formed("-dirty"));
  EXPECT_FALSE(git_rev_well_formed("d4e34fa\n"));       // stray newline
  EXPECT_FALSE(git_rev_well_formed("D4E34FA"));         // uppercase
  EXPECT_FALSE(git_rev_well_formed("abc123"));          // too short
  EXPECT_FALSE(git_rev_well_formed(std::string(41, 'a')));
  EXPECT_FALSE(git_rev_well_formed("d4e34fa-dirty-dirty"));
}

TEST(GitRev, RuntimeResolutionIsWellFormed) {
  // Whatever source the fallback chain lands on (env, run-time git describe,
  // configure-time macro, "unknown"), the stamp must be machine-checkable —
  // this is what keeps a malformed rev out of the tracked BENCH_*.json files.
  ::unsetenv("NISTREAM_GIT_REV");
  const std::string rev = git_rev();
  EXPECT_TRUE(git_rev_well_formed(rev)) << "git_rev() = \"" << rev << "\"";
}

TEST(GitRev, EnvironmentOverrideWins) {
  ::setenv("NISTREAM_GIT_REV", "feedfacefeedface", /*overwrite=*/1);
  EXPECT_EQ(git_rev(), "feedfacefeedface");
  ::unsetenv("NISTREAM_GIT_REV");
}

}  // namespace
}  // namespace nistream::bench
