// Recycling allocator for the per-packet shared_ptr boxes.
//
// Every packet on the wire rides inside one heap box (the Packet copy plus
// its shared_ptr control block, fused by allocate_shared). That box is the
// last remaining per-frame heap allocation on the datapath, so it gets the
// same treatment as coroutine frames (sim::detail::CoroFramePool): a
// thread_local size-bucketed free list. After warm-up every box is served
// from — and returned to — the free list, never ::operator new.
//
// thread_local for the same reason as the coroutine pool: parallel sweep
// cells are share-nothing, and a packet never crosses OS threads (it crosses
// *simulated* machines, all inside one cell's engine).
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace nistream::net::detail {

class PacketBoxPool {
 public:
  static constexpr std::size_t kGranuleBytes = 32;
  static constexpr std::size_t kBucketCount = 8;  // boxes up to 256 bytes

  void* allocate(std::size_t n) {
    const std::size_t b = (n + kGranuleBytes - 1) / kGranuleBytes - 1;
    if (b >= kBucketCount) return ::operator new(n);
    auto& list = free_[b];
    if (!list.empty()) {
      void* block = list.back();
      list.pop_back();
      return block;
    }
    return ::operator new((b + 1) * kGranuleBytes);
  }

  void release(void* block, std::size_t n) noexcept {
    const std::size_t b = (n + kGranuleBytes - 1) / kGranuleBytes - 1;
    if (b >= kBucketCount) {
      ::operator delete(block);
      return;
    }
    // push_back may itself allocate while the free list's capacity is still
    // growing — that stops once the list has held the in-flight high-water
    // mark, so it never recurs in steady state.
    free_[b].push_back(block);
  }

  static PacketBoxPool& instance() {
    static thread_local PacketBoxPool pool;
    return pool;
  }

 private:
  std::vector<void*> free_[kBucketCount];
};

/// Minimal allocator front-end for std::allocate_shared over the pool.
template <typename T>
struct PacketBoxAllocator {
  using value_type = T;

  PacketBoxAllocator() = default;
  template <typename U>
  PacketBoxAllocator(const PacketBoxAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(PacketBoxPool::instance().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    PacketBoxPool::instance().release(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PacketBoxAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace nistream::net::detail
