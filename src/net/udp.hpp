// Lightweight UDP-style endpoint layer over the Ethernet model.
//
// The I2O boards run board-resident UDP/TCP; clients attach over switched
// 100 Mbps Ethernet. This layer adds what the hw::EthernetSwitch does not
// model: per-endpoint protocol-stack traversal latency (the dominant term of
// the paper's "1.2net" — ~555 us per end on the i960 cards with the data
// cache disabled, much less on host NICs with a tuned host stack).
//
// CPU accounting: the stack latency here is pure pipeline latency. When the
// sender's CPU time matters (the scheduler dispatch loops in the Figure 7-10
// experiments), the sending task additionally consumes CPU through its own
// scheduler — see apps::MediaServer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "dwcs/types.hpp"
#include "hw/ethernet.hpp"
#include "net/packet_pool.hpp"
#include "mpeg/frame.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nistream::net {

/// Application payload carried across the wire.
struct Packet {
  std::uint64_t stream_id = 0;
  std::uint64_t seq = 0;
  std::uint32_t bytes = 0;
  mpeg::FrameType frame_type = mpeg::FrameType::kI;
  sim::Time enqueued_at;     // entry into scheduler queues (queuing delay t0)
  sim::Time dispatched_at;   // when the scheduler released it
  /// Optional endpoint-typed content riding with the packet (the
  /// simulation's zero-copy stand-in for the `bytes` of body data).
  std::shared_ptr<void> body;
};

class UdpEndpoint {
 public:
  using Receiver = std::function<void(const Packet&, sim::Time delivered)>;

  /// `stack_cost` is charged once on send and once on receive.
  UdpEndpoint(sim::Engine& engine, hw::EthernetSwitch& ether,
              sim::Time stack_cost, Receiver rx)
      : engine_{engine}, ether_{ether}, stack_cost_{stack_cost},
        rx_{std::move(rx)} {
    port_ = ether.add_port([this](const hw::EthFrame& f) { on_frame(f); });
  }

  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;

  [[nodiscard]] int port() const { return port_; }

  static constexpr std::uint32_t kUdpIpHeaderBytes = 28;

  /// Send `pkt` to the endpoint at `dst_port`. The packet traverses this
  /// end's stack, the switch, and the receiver's stack before delivery.
  void send(int dst_port, Packet pkt) {
    ++sent_;
    bytes_sent_ += pkt.bytes;
    engine_.schedule_in(stack_cost_, [this, dst_port, pkt] {
      ether_.send(port_, dst_port,
                  hw::EthFrame{.bytes = pkt.bytes + kUdpIpHeaderBytes,
                               .tag = pkt.stream_id,
                               .payload = std::allocate_shared<Packet>(
                                   detail::PacketBoxAllocator<Packet>{},
                                   pkt)});
    });
  }

  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t packets_received() const { return received_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t corrupt_dropped() const { return corrupt_dropped_; }
  [[nodiscard]] sim::Time stack_cost() const { return stack_cost_; }

 private:
  void on_frame(const hw::EthFrame& f) {
    if (f.corrupted) {
      // Bad CRC: UDP has no retransmit, the datagram is simply gone.
      ++corrupt_dropped_;
      return;
    }
    auto pkt = std::static_pointer_cast<Packet>(f.payload);
    if (!pkt) return;  // not one of ours
    engine_.schedule_in(stack_cost_, [this, pkt] {
      ++received_;
      if (rx_) rx_(*pkt, engine_.now());
    });
  }

  sim::Engine& engine_;
  hw::EthernetSwitch& ether_;
  sim::Time stack_cost_;
  Receiver rx_;
  int port_ = -1;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t corrupt_dropped_ = 0;
};

/// Stack-cost presets (see calibration rationale in hw/calibration.hpp).
inline constexpr sim::Time kNiStackCost = sim::Time::us(555);
inline constexpr sim::Time kHostStackCost = sim::Time::us(180);

}  // namespace nistream::net
