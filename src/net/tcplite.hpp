// TcpLite: board-resident reliable transport.
//
// The paper (§1): "host-to-host communications are supported by I2O
// board-resident protocols (like TCP and UDP)". UDP is udp.hpp; this is the
// reliable sibling — a compact go-back-N transport with cumulative ACKs and
// a retransmission timer, enough to move control traffic and loss-intolerant
// streams over a lossy segment (see hw::EthernetParams::loss_rate) with
// exactly-once, in-order delivery.
//
// Scope deliberately matches what an embedded NI stack of the era shipped:
// fixed window, cumulative ACK per received segment, go-back-N retransmit on
// timeout. No congestion control, no SACK, no connection teardown handshake.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "hw/ethernet.hpp"
#include "net/udp.hpp"
#include "sim/engine.hpp"

namespace nistream::net {

/// Wire format shared by both ends.
struct TcpLiteSegment {
  bool is_ack = false;
  std::uint64_t seq = 0;      // data: segment sequence; ack: next expected
  Packet payload{};           // data segments only
};

class TcpLiteReceiver {
 public:
  using Deliver = std::function<void(const Packet&, sim::Time at)>;

  TcpLiteReceiver(sim::Engine& engine, hw::EthernetSwitch& ether,
                  sim::Time stack_cost, Deliver deliver)
      : engine_{engine}, ether_{ether}, stack_cost_{stack_cost},
        deliver_{std::move(deliver)} {
    port_ = ether.add_port([this](const hw::EthFrame& f) { on_frame(f); });
  }

  TcpLiteReceiver(const TcpLiteReceiver&) = delete;
  TcpLiteReceiver& operator=(const TcpLiteReceiver&) = delete;

  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::uint64_t delivered() const { return next_expected_; }
  [[nodiscard]] std::uint64_t discarded_out_of_order() const {
    return discarded_;
  }

 private:
  static constexpr std::uint32_t kAckBytes = 40;

  void on_frame(const hw::EthFrame& f) {
    auto seg = std::static_pointer_cast<TcpLiteSegment>(f.payload);
    if (!seg || seg->is_ack) return;
    const int reply_to = f.src_port;
    engine_.schedule_in(stack_cost_, [this, seg, reply_to] {
      if (seg->seq == next_expected_) {
        ++next_expected_;
        if (deliver_) deliver_(seg->payload, engine_.now());
      } else if (seg->seq > next_expected_) {
        ++discarded_;  // go-back-N: out-of-order segments are not buffered
      }                // duplicates below next_expected_ are silently re-ACKed
      auto ack = std::make_shared<TcpLiteSegment>();
      ack->is_ack = true;
      ack->seq = next_expected_;
      ether_.send(port_, reply_to,
                  hw::EthFrame{.bytes = kAckBytes, .payload = std::move(ack)});
    });
  }

  sim::Engine& engine_;
  hw::EthernetSwitch& ether_;
  sim::Time stack_cost_;
  Deliver deliver_;
  int port_ = -1;
  std::uint64_t next_expected_ = 0;
  std::uint64_t discarded_ = 0;
};

class TcpLiteSender {
 public:
  struct Params {
    std::size_t window = 8;               // segments in flight
    sim::Time rto = sim::Time::ms(20);    // retransmission timeout
  };

  TcpLiteSender(sim::Engine& engine, hw::EthernetSwitch& ether,
                sim::Time stack_cost, int dst_port,
                Params params = Params{.window = 8, .rto = sim::Time::ms(20)})
      : engine_{engine}, ether_{ether}, stack_cost_{stack_cost},
        dst_port_{dst_port}, params_{params} {
    port_ = ether.add_port([this](const hw::EthFrame& f) { on_frame(f); });
  }

  TcpLiteSender(const TcpLiteSender&) = delete;
  TcpLiteSender& operator=(const TcpLiteSender&) = delete;

  [[nodiscard]] int port() const { return port_; }

  /// Queue a packet for reliable delivery. Returns its assigned sequence.
  std::uint64_t send(Packet p) {
    const std::uint64_t seq = next_seq_++;
    queue_.push_back(Entry{seq, std::move(p)});
    pump();
    return seq;
  }

  [[nodiscard]] std::uint64_t acked() const { return base_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  struct Entry {
    std::uint64_t seq;
    Packet packet;
  };

  void pump() {
    // Transmit every queued segment inside the window.
    for (auto& e : queue_) {
      if (e.seq >= base_ + params_.window) break;
      if (e.seq < inflight_hi_) continue;  // already on the wire
      transmit(e);
      inflight_hi_ = e.seq + 1;
    }
    arm_timer();
  }

  void transmit(const Entry& e) {
    auto seg = std::make_shared<TcpLiteSegment>();
    seg->seq = e.seq;
    seg->payload = e.packet;
    engine_.schedule_in(stack_cost_, [this, seg] {
      ether_.send(port_, dst_port_,
                  hw::EthFrame{.bytes = seg->payload.bytes +
                                        UdpEndpoint::kUdpIpHeaderBytes + 12,
                               .tag = seg->seq, .payload = seg});
    });
  }

  void on_frame(const hw::EthFrame& f) {
    auto seg = std::static_pointer_cast<TcpLiteSegment>(f.payload);
    if (!seg || !seg->is_ack) return;
    engine_.schedule_in(stack_cost_, [this, ack = seg->seq] {
      if (ack <= base_) return;  // stale
      while (!queue_.empty() && queue_.front().seq < ack) queue_.pop_front();
      base_ = ack;
      timer_.cancel();
      pump();
    });
  }

  void arm_timer() {
    if (queue_.empty() || timer_.pending()) return;
    timer_ = engine_.schedule_in(params_.rto, [this] { on_timeout(); });
  }

  void on_timeout() {
    // Go-back-N: retransmit the whole window from base_.
    for (auto& e : queue_) {
      if (e.seq >= base_ + params_.window) break;
      transmit(e);
      ++retransmissions_;
    }
    arm_timer();
  }

  sim::Engine& engine_;
  hw::EthernetSwitch& ether_;
  sim::Time stack_cost_;
  int dst_port_;
  Params params_;
  int port_ = -1;
  std::deque<Entry> queue_;        // unacked + unsent, seq-ordered
  std::uint64_t next_seq_ = 0;
  std::uint64_t base_ = 0;         // lowest unacked seq
  std::uint64_t inflight_hi_ = 0;  // first never-transmitted seq
  std::uint64_t retransmissions_ = 0;
  sim::EventHandle timer_;
};

}  // namespace nistream::net
