// TcpLite: board-resident reliable transport.
//
// The paper (§1): "host-to-host communications are supported by I2O
// board-resident protocols (like TCP and UDP)". UDP is udp.hpp; this is the
// reliable sibling — a compact go-back-N transport with cumulative ACKs and
// a retransmission timer, enough to move control traffic and loss-intolerant
// streams over a lossy segment (see hw::EthernetParams::loss_rate) with
// exactly-once, in-order delivery.
//
// Scope deliberately matches what an embedded NI stack of the era shipped:
// fixed window, cumulative ACK per received segment, go-back-N retransmit on
// timeout. No congestion control, no SACK. Two things the RTSP session plane
// forced onto that base:
//
//  * Per-peer sequence spaces. The original receiver kept ONE next-expected
//    counter for every sender that addressed it, so a second client talking
//    to the same control port aliased the first one's sequence numbers and
//    both stalled (each saw the other's segments as "out of order"). A
//    receiver now demuxes on the sending port — one in-order space per peer,
//    which is what a per-connection transport means.
//  * FIN teardown. A sender's close() queues a FIN that consumes a sequence
//    number and is retransmitted like data; the receiver delivers it in
//    order, marks the peer closed, and re-ACKs retransmitted FINs without
//    re-firing the close callback. Because each direction is a separate
//    sender/receiver pair, one side can close while the other keeps
//    flowing — the half-open states the session reaper exists for.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "hw/ethernet.hpp"
#include "net/udp.hpp"
#include "sim/engine.hpp"

namespace nistream::net {

/// Wire format shared by both ends.
struct TcpLiteSegment {
  bool is_ack = false;
  bool is_fin = false;        // connection close; consumes a sequence number
  std::uint64_t seq = 0;      // data/fin: segment sequence; ack: next expected
  Packet payload{};           // data segments only
};

class TcpLiteReceiver {
 public:
  using Deliver = std::function<void(const Packet&, sim::Time at)>;
  /// Peer-aware delivery: `peer_port` is the sending TcpLiteSender's port —
  /// the connection identity a multi-client service (the RTSP front door)
  /// keys its per-connection state on.
  using DeliverFrom =
      std::function<void(const Packet&, int peer_port, sim::Time at)>;
  using PeerClose = std::function<void(int peer_port, sim::Time at)>;

  TcpLiteReceiver(sim::Engine& engine, hw::EthernetSwitch& ether,
                  sim::Time stack_cost, Deliver deliver)
      : TcpLiteReceiver{engine, ether, stack_cost,
                        deliver ? DeliverFrom{[d = std::move(deliver)](
                                                  const Packet& p, int,
                                                  sim::Time at) { d(p, at); }}
                                : DeliverFrom{}} {}

  TcpLiteReceiver(sim::Engine& engine, hw::EthernetSwitch& ether,
                  sim::Time stack_cost, DeliverFrom deliver)
      : engine_{engine}, ether_{ether}, stack_cost_{stack_cost},
        deliver_{std::move(deliver)} {
    port_ = ether.add_port([this](const hw::EthFrame& f) { on_frame(f); });
  }

  TcpLiteReceiver(const TcpLiteReceiver&) = delete;
  TcpLiteReceiver& operator=(const TcpLiteReceiver&) = delete;

  /// Fires once per peer, when its FIN is delivered in order.
  void set_on_peer_close(PeerClose cb) { on_peer_close_ = std::move(cb); }

  [[nodiscard]] int port() const { return port_; }
  /// Total in-order data deliveries across all peers (FINs not counted).
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t discarded_out_of_order() const {
    return discarded_;
  }
  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }
  [[nodiscard]] std::uint64_t peers_closed() const { return peers_closed_; }
  [[nodiscard]] bool peer_closed(int peer_port) const {
    const auto it = peers_.find(peer_port);
    return it != peers_.end() && it->second.closed;
  }

 private:
  static constexpr std::uint32_t kAckBytes = 40;

  struct Peer {
    std::uint64_t next_expected = 0;
    bool closed = false;
  };

  void on_frame(const hw::EthFrame& f) {
    auto seg = std::static_pointer_cast<TcpLiteSegment>(f.payload);
    if (!seg || seg->is_ack) return;
    const int reply_to = f.src_port;
    engine_.schedule_in(stack_cost_, [this, seg, reply_to] {
      Peer& peer = peers_[reply_to];
      if (seg->seq == peer.next_expected && !peer.closed) {
        ++peer.next_expected;
        if (seg->is_fin) {
          peer.closed = true;
          ++peers_closed_;
          if (on_peer_close_) on_peer_close_(reply_to, engine_.now());
        } else {
          ++delivered_;
          if (deliver_) deliver_(seg->payload, reply_to, engine_.now());
        }
      } else if (seg->seq >= peer.next_expected) {
        // Go-back-N: out-of-order segments are not buffered. This covers the
        // FIN-before-data race too — a FIN arriving ahead of missing data is
        // discarded, NOT acted on, and the close happens only when the
        // retransmitted prefix delivers it in order.
        ++discarded_;
      }  // duplicates below next_expected (incl. a retransmitted FIN after
         // close) are silently re-ACKed
      auto ack = std::make_shared<TcpLiteSegment>();
      ack->is_ack = true;
      ack->seq = peer.next_expected;
      ether_.send(port_, reply_to,
                  hw::EthFrame{.bytes = kAckBytes, .payload = std::move(ack)});
    });
  }

  sim::Engine& engine_;
  hw::EthernetSwitch& ether_;
  sim::Time stack_cost_;
  DeliverFrom deliver_;
  PeerClose on_peer_close_;
  int port_ = -1;
  std::map<int, Peer> peers_;  // one sequence space per sending port
  std::uint64_t delivered_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t peers_closed_ = 0;
};

struct TcpLiteSenderParams {
  std::size_t window = 8;             // segments in flight
  sim::Time rto = sim::Time::ms(20);  // retransmission timeout
  /// Consecutive timeout rounds without ACK progress before the sender
  /// gives up (drops its queue and fires on_abort). 0 = retry forever,
  /// the historical behavior; services talking to clients that may vanish
  /// mid-connection set a bound so a dead peer cannot pin a timer forever.
  unsigned max_retx_rounds = 0;
};

class TcpLiteSender {
 public:
  using Params = TcpLiteSenderParams;

  using Abort = std::function<void(sim::Time at)>;

  TcpLiteSender(sim::Engine& engine, hw::EthernetSwitch& ether,
                sim::Time stack_cost, int dst_port, Params params = Params{})
      : engine_{engine}, ether_{ether}, stack_cost_{stack_cost},
        dst_port_{dst_port}, params_{params} {
    port_ = ether.add_port([this](const hw::EthFrame& f) { on_frame(f); });
  }

  TcpLiteSender(const TcpLiteSender&) = delete;
  TcpLiteSender& operator=(const TcpLiteSender&) = delete;

  [[nodiscard]] int port() const { return port_; }

  /// Queue a packet for reliable delivery. Returns its assigned sequence.
  /// Not legal after close() — the FIN already holds the last sequence.
  std::uint64_t send(Packet p) {
    assert(!closing_ && "TcpLiteSender::send after close()");
    const std::uint64_t seq = next_seq_++;
    queue_.push_back(Entry{seq, std::move(p), /*fin=*/false});
    pump();
    return seq;
  }

  /// Queue the FIN. Idempotent; returns false if already closing.
  bool close() {
    if (closing_) return false;
    closing_ = true;
    queue_.push_back(Entry{next_seq_++, Packet{}, /*fin=*/true});
    pump();
    return true;
  }

  /// Notified when max_retx_rounds expires and the sender abandons the
  /// connection (queued segments are dropped, the timer stops).
  void set_on_abort(Abort cb) { on_abort_ = std::move(cb); }

  [[nodiscard]] std::uint64_t acked() const { return base_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] bool closing() const { return closing_; }
  /// True once the peer acknowledged the FIN (clean close complete).
  [[nodiscard]] bool fin_acked() const {
    return closing_ && !aborted_ && queue_.empty();
  }
  [[nodiscard]] bool aborted() const { return aborted_; }

 private:
  struct Entry {
    std::uint64_t seq;
    Packet packet;
    bool fin;
  };

  static constexpr std::uint32_t kFinBytes = 40;

  void pump() {
    if (aborted_) return;
    // Transmit every queued segment inside the window.
    for (auto& e : queue_) {
      if (e.seq >= base_ + params_.window) break;
      if (e.seq < inflight_hi_) continue;  // already on the wire
      transmit(e);
      inflight_hi_ = e.seq + 1;
    }
    arm_timer();
  }

  void transmit(const Entry& e) {
    auto seg = std::make_shared<TcpLiteSegment>();
    seg->seq = e.seq;
    seg->is_fin = e.fin;
    seg->payload = e.packet;
    engine_.schedule_in(stack_cost_, [this, seg] {
      const std::uint32_t bytes =
          seg->is_fin ? kFinBytes
                      : seg->payload.bytes + UdpEndpoint::kUdpIpHeaderBytes + 12;
      ether_.send(port_, dst_port_,
                  hw::EthFrame{.bytes = bytes, .tag = seg->seq,
                               .payload = seg});
    });
  }

  void on_frame(const hw::EthFrame& f) {
    auto seg = std::static_pointer_cast<TcpLiteSegment>(f.payload);
    if (!seg || !seg->is_ack) return;
    engine_.schedule_in(stack_cost_, [this, ack = seg->seq] {
      if (aborted_ || ack <= base_) return;  // stale
      while (!queue_.empty() && queue_.front().seq < ack) queue_.pop_front();
      base_ = ack;
      retx_rounds_ = 0;  // progress resets the give-up counter
      timer_.cancel();
      pump();
    });
  }

  void arm_timer() {
    if (queue_.empty() || timer_.pending()) return;
    timer_ = engine_.schedule_in(params_.rto, [this] { on_timeout(); });
  }

  void on_timeout() {
    if (params_.max_retx_rounds != 0 &&
        ++retx_rounds_ > params_.max_retx_rounds) {
      aborted_ = true;
      queue_.clear();
      if (on_abort_) on_abort_(engine_.now());
      return;
    }
    // Go-back-N: retransmit the whole window from base_.
    for (auto& e : queue_) {
      if (e.seq >= base_ + params_.window) break;
      transmit(e);
      ++retransmissions_;
    }
    arm_timer();
  }

  sim::Engine& engine_;
  hw::EthernetSwitch& ether_;
  sim::Time stack_cost_;
  int dst_port_;
  Params params_;
  int port_ = -1;
  std::deque<Entry> queue_;        // unacked + unsent, seq-ordered
  std::uint64_t next_seq_ = 0;
  std::uint64_t base_ = 0;         // lowest unacked seq
  std::uint64_t inflight_hi_ = 0;  // first never-transmitted seq
  std::uint64_t retransmissions_ = 0;
  unsigned retx_rounds_ = 0;       // consecutive timeouts since last progress
  bool closing_ = false;
  bool aborted_ = false;
  Abort on_abort_;
  sim::EventHandle timer_;
};

}  // namespace nistream::net
