// Per-component fault injectors: a policy, a private deterministic RNG
// stream, and counters for every fault actually injected.
//
// Each hw model holds an optional pointer to its injector (null by default).
// The hooks are written so a null injector costs exactly one branch and a
// zero-rate injector draws no random numbers — runs with fault injection
// disabled are bit-identical (same charges, same RNG consumption, same event
// order) to runs built before this subsystem existed.
#pragma once

#include <cstdint>

#include "fault/policy.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace nistream::fault {

class LinkFaultInjector {
 public:
  LinkFaultInjector(const LinkFaultPolicy& policy, sim::Rng rng)
      : policy_{policy}, rng_{rng} {}

  /// Should this frame be discarded at the switch?
  bool drop_frame() {
    if (policy_.frame_loss_rate <= 0.0 ||
        !rng_.chance(policy_.frame_loss_rate)) {
      return false;
    }
    ++drops_;
    return true;
  }

  /// Should this frame arrive with a bad CRC?
  bool corrupt_frame() {
    if (policy_.frame_corrupt_rate <= 0.0 ||
        !rng_.chance(policy_.frame_corrupt_rate)) {
      return false;
    }
    ++corruptions_;
    return true;
  }

  [[nodiscard]] const LinkFaultPolicy& policy() const { return policy_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t corruptions() const { return corruptions_; }

 private:
  LinkFaultPolicy policy_;
  sim::Rng rng_;
  std::uint64_t drops_ = 0;
  std::uint64_t corruptions_ = 0;
};

class I2oFaultInjector {
 public:
  I2oFaultInjector(const I2oFaultPolicy& policy, sim::Rng rng)
      : policy_{policy}, rng_{rng} {}

  bool drop_inbound() {
    if (policy_.inbound_drop_rate <= 0.0 ||
        !rng_.chance(policy_.inbound_drop_rate)) {
      return false;
    }
    ++inbound_drops_;
    return true;
  }

  bool drop_outbound() {
    if (policy_.outbound_drop_rate <= 0.0 ||
        !rng_.chance(policy_.outbound_drop_rate)) {
      return false;
    }
    ++outbound_drops_;
    return true;
  }

  [[nodiscard]] const I2oFaultPolicy& policy() const { return policy_; }
  [[nodiscard]] std::uint64_t inbound_drops() const { return inbound_drops_; }
  [[nodiscard]] std::uint64_t outbound_drops() const { return outbound_drops_; }

 private:
  I2oFaultPolicy policy_;
  sim::Rng rng_;
  std::uint64_t inbound_drops_ = 0;
  std::uint64_t outbound_drops_ = 0;
};

class PciFaultInjector {
 public:
  PciFaultInjector(const PciFaultPolicy& policy, sim::Rng rng)
      : policy_{policy}, rng_{rng} {}

  /// Did this DMA transaction abort? (The bus retries up to max_retries.)
  bool transaction_error() {
    if (policy_.transaction_error_rate <= 0.0 ||
        !rng_.chance(policy_.transaction_error_rate)) {
      return false;
    }
    ++errors_;
    return true;
  }

  [[nodiscard]] const PciFaultPolicy& policy() const { return policy_; }
  [[nodiscard]] std::uint64_t errors() const { return errors_; }

 private:
  PciFaultPolicy policy_;
  sim::Rng rng_;
  std::uint64_t errors_ = 0;
};

class DiskFaultInjector {
 public:
  DiskFaultInjector(const DiskFaultPolicy& policy, sim::Rng rng)
      : policy_{policy}, rng_{rng} {}

  bool read_error() {
    if (policy_.read_error_rate <= 0.0 ||
        !rng_.chance(policy_.read_error_rate)) {
      return false;
    }
    ++read_errors_;
    return true;
  }

  bool latency_spike() {
    if (policy_.latency_spike_rate <= 0.0 ||
        !rng_.chance(policy_.latency_spike_rate)) {
      return false;
    }
    ++spikes_;
    return true;
  }

  [[nodiscard]] const DiskFaultPolicy& policy() const { return policy_; }
  [[nodiscard]] std::uint64_t read_errors() const { return read_errors_; }
  [[nodiscard]] std::uint64_t spikes() const { return spikes_; }

 private:
  DiskFaultPolicy policy_;
  sim::Rng rng_;
  std::uint64_t read_errors_ = 0;
  std::uint64_t spikes_ = 0;
};

}  // namespace nistream::fault
