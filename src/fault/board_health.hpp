// Whole-board health state machine for an NI card.
//
// Three states:
//  * Up   — normal operation.
//  * Hung — the i960 stopped making progress (firmware wedge, watchdog-less
//           spin). Board RAM and stream state survive; dispatch and I2O
//           processing stall until recover().
//  * Down — the board crashed (or was yanked). Board RAM is gone: queued
//           frames are lost, and coming back requires a reboot, which bumps
//           the incarnation number so peers can tell a rebooted board from a
//           long-hung one.
//
// Transitions may be commanded directly (tests) or scheduled on the engine
// (chaos runs). Components never poll the engine — they consult alive() on
// their hot paths (one branch), and interested parties register an observer
// for the wipe/re-admission work that must happen exactly at a transition.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nistream::fault {

enum class BoardState : std::uint8_t { kUp, kHung, kDown };

[[nodiscard]] inline const char* to_string(BoardState s) {
  switch (s) {
    case BoardState::kUp: return "up";
    case BoardState::kHung: return "hung";
    case BoardState::kDown: return "down";
  }
  return "?";
}

class BoardHealth {
 public:
  using Observer = std::function<void(BoardState)>;

  explicit BoardHealth(sim::Engine& engine) : engine_{engine} {}

  BoardHealth(const BoardHealth&) = delete;
  BoardHealth& operator=(const BoardHealth&) = delete;

  [[nodiscard]] BoardState state() const { return state_; }
  [[nodiscard]] bool alive() const { return state_ == BoardState::kUp; }
  /// Bumped on every reboot; lets a watchdog distinguish "recovered from a
  /// hang, state intact" from "rebooted, state wiped".
  [[nodiscard]] std::uint64_t incarnation() const { return incarnation_; }
  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t hangs() const { return hangs_; }
  [[nodiscard]] std::uint64_t reboots() const { return reboots_; }
  [[nodiscard]] sim::Time last_down_at() const { return last_down_at_; }
  [[nodiscard]] sim::Time last_up_at() const { return last_up_at_; }

  /// Called after every state change (new state passed in). The observer is
  /// where crash wipes and re-admission hooks live.
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// Immediate transitions (idempotent: wrong-state calls are no-ops).
  void crash() {
    if (state_ == BoardState::kDown) return;
    ++crashes_;
    transition(BoardState::kDown);
  }
  void hang() {
    if (state_ != BoardState::kUp) return;
    ++hangs_;
    transition(BoardState::kHung);
  }
  /// Hang -> Up: progress resumes, state intact.
  void recover() {
    if (state_ != BoardState::kHung) return;
    transition(BoardState::kUp);
  }
  /// Down -> Up with a fresh incarnation: RAM wiped, firmware reloaded.
  void reboot() {
    if (state_ != BoardState::kDown) return;
    ++incarnation_;
    ++reboots_;
    transition(BoardState::kUp);
  }

  /// Chaos-run helpers: schedule a crash at `at`, optionally followed by a
  /// reboot `reboot_after` later.
  void schedule_crash(sim::Time at,
                      sim::Time reboot_after = sim::Time::never()) {
    engine_.schedule_at(at, [this, at, reboot_after] {
      crash();
      if (reboot_after != sim::Time::never()) {
        engine_.schedule_at(at + reboot_after, [this] { reboot(); });
      }
    });
  }
  void schedule_hang(sim::Time at, sim::Time duration) {
    engine_.schedule_at(at, [this, at, duration] {
      hang();
      engine_.schedule_at(at + duration, [this] { recover(); });
    });
  }

 private:
  void transition(BoardState next) {
    state_ = next;
    if (next == BoardState::kUp) {
      last_up_at_ = engine_.now();
    } else {
      last_down_at_ = engine_.now();
    }
    if (observer_) observer_(next);
  }

  sim::Engine& engine_;
  BoardState state_ = BoardState::kUp;
  std::uint64_t incarnation_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t hangs_ = 0;
  std::uint64_t reboots_ = 0;
  sim::Time last_down_at_ = sim::Time::zero();
  sim::Time last_up_at_ = sim::Time::zero();
  Observer observer_;
};

}  // namespace nistream::fault
