// FaultPlane: one object owning every injector for a chaos run.
//
// Construction forks the profile's master seed into independent per-component
// RNG streams (link, I2O, PCI, disk) so that raising, say, the disk fault
// rate never perturbs which *frames* the switch drops — each component's
// decision sequence depends only on the master seed and its own draw count.
// Board health rides along for whole-board crash/hang/reboot choreography.
//
// Deliberately knows nothing about src/hw: wiring an injector into a switch
// or disk is done by the experiment (apps/bench/tests) via each component's
// set_fault() call, keeping the dependency arrow hw -> fault and letting a
// test inject into a bare component without building a board.
#pragma once

#include <cstdint>
#include <optional>

#include "fault/board_health.hpp"
#include "fault/injector.hpp"
#include "fault/policy.hpp"
#include "sim/random.hpp"

namespace nistream::fault {

class FaultPlane {
 public:
  FaultPlane(sim::Engine& engine, const FaultProfile& profile)
      : profile_{profile}, health_{engine} {
    sim::Rng master{profile.seed};
    link_.emplace(profile.link, master.fork());
    i2o_.emplace(profile.i2o, master.fork());
    pci_.emplace(profile.pci, master.fork());
    disk_.emplace(profile.disk, master.fork());
  }

  [[nodiscard]] const FaultProfile& profile() const { return profile_; }
  [[nodiscard]] LinkFaultInjector& link() { return *link_; }
  [[nodiscard]] I2oFaultInjector& i2o() { return *i2o_; }
  [[nodiscard]] PciFaultInjector& pci() { return *pci_; }
  [[nodiscard]] DiskFaultInjector& disk() { return *disk_; }
  [[nodiscard]] BoardHealth& health() { return health_; }

  /// Totals of every fault actually injected, for bench reports.
  struct Summary {
    std::uint64_t frames_dropped = 0;
    std::uint64_t frames_corrupted = 0;
    std::uint64_t i2o_inbound_dropped = 0;
    std::uint64_t i2o_outbound_dropped = 0;
    std::uint64_t pci_errors = 0;
    std::uint64_t disk_read_errors = 0;
    std::uint64_t disk_spikes = 0;
    std::uint64_t board_crashes = 0;
    std::uint64_t board_hangs = 0;
    std::uint64_t board_reboots = 0;

    [[nodiscard]] std::uint64_t total() const {
      return frames_dropped + frames_corrupted + i2o_inbound_dropped +
             i2o_outbound_dropped + pci_errors + disk_read_errors +
             disk_spikes + board_crashes + board_hangs + board_reboots;
    }
  };

  [[nodiscard]] Summary summary() const {
    return {.frames_dropped = link_->drops(),
            .frames_corrupted = link_->corruptions(),
            .i2o_inbound_dropped = i2o_->inbound_drops(),
            .i2o_outbound_dropped = i2o_->outbound_drops(),
            .pci_errors = pci_->errors(),
            .disk_read_errors = disk_->read_errors(),
            .disk_spikes = disk_->spikes(),
            .board_crashes = health_.crashes(),
            .board_hangs = health_.hangs(),
            .board_reboots = health_.reboots()};
  }

 private:
  FaultProfile profile_;
  // Injectors have no default ctor (policy + rng required); optional gives
  // in-place construction after the master Rng exists.
  std::optional<LinkFaultInjector> link_;
  std::optional<I2oFaultInjector> i2o_;
  std::optional<PciFaultInjector> pci_;
  std::optional<DiskFaultInjector> disk_;
  BoardHealth health_;
};

}  // namespace nistream::fault
