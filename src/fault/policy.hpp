// Fault-policy parameter blocks: what can go wrong, and how often.
//
// The paper's evaluation assumes a perfect testbed — a lossless switched LAN,
// an error-free PCI segment, disks that never mis-read, an NI that never
// crashes. A production offload design has to survive all of those, so every
// hardware model in src/hw accepts an optional fault injector parameterized
// by one of these policy structs. All rates default to zero: a default-
// constructed policy injects nothing and the hooked components behave (and
// charge) exactly as before.
//
// Policies are plain aggregates so experiments can sweep them the same way
// they sweep hw::Calibration.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace nistream::fault {

/// Ethernet link/switch faults: frames discarded in the switch fabric or
/// delivered with a bad CRC (the receiver's endpoint drops those).
struct LinkFaultPolicy {
  double frame_loss_rate = 0.0;     // P(frame discarded at the switch)
  double frame_corrupt_rate = 0.0;  // P(frame delivered corrupted)
};

/// I2O messaging faults: a posted message frame is written but the doorbell
/// is lost (FIFO drop), in either direction.
struct I2oFaultPolicy {
  double inbound_drop_rate = 0.0;   // host -> card message lost
  double outbound_drop_rate = 0.0;  // card -> host reply/notification lost
};

/// PCI transaction faults: a DMA transfer ends in target/master abort or a
/// parity error and must be retried (each retry re-arbitrates and re-moves
/// the data after a penalty).
struct PciFaultPolicy {
  double transaction_error_rate = 0.0;
  int max_retries = 3;
  sim::Time retry_penalty = sim::Time::us(10);
};

/// SCSI disk faults: an unrecoverable-read retry (the drive re-reads the
/// sector) and thermal-recalibration-style latency spikes.
struct DiskFaultPolicy {
  double read_error_rate = 0.0;    // P(read must be retried)
  int max_retries = 2;
  double latency_spike_rate = 0.0; // P(service time multiplied by spike)
  double spike_multiplier = 20.0;
};

/// Everything at once, plus the master seed the per-component RNG streams
/// are forked from. Two FaultPlanes built from equal profiles make bit-
/// identical injection decisions.
struct FaultProfile {
  std::uint64_t seed = 0xFA017;
  LinkFaultPolicy link{};
  I2oFaultPolicy i2o{};
  PciFaultPolicy pci{};
  DiskFaultPolicy disk{};

  /// Convenience for chaos grids: every rate set to `rate`.
  [[nodiscard]] static FaultProfile uniform(double rate, std::uint64_t seed) {
    FaultProfile p;
    p.seed = seed;
    p.link = {.frame_loss_rate = rate, .frame_corrupt_rate = rate};
    p.i2o = {.inbound_drop_rate = rate, .outbound_drop_rate = rate};
    p.pci = {.transaction_error_rate = rate};
    p.disk = {.read_error_rate = rate, .latency_spike_rate = rate};
    return p;
  }
};

}  // namespace nistream::fault
