// The i960 RD I2O network-interface board, assembled from its parts.
//
// Per the paper (§1, §4.2.2): an i960 RD CPU at 66 MHz, 4 MB of on-board
// memory (expandable to 36 MB), two 100 Mbps Ethernet ports, two SCSI ports
// with directly attached disks, the I2O inbound/outbound message FIFOs, and
// the 1004-register memory-mapped "hardware queue". The board plugs into a
// PCI segment and an Ethernet switch.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "fault/board_health.hpp"
#include "hw/calibration.hpp"
#include "hw/cpu.hpp"
#include "hw/ethernet.hpp"
#include "hw/i2o.hpp"
#include "hw/memory.hpp"
#include "hw/pci.hpp"
#include "hw/scsi_disk.hpp"

namespace nistream::hw {

class NicBoard {
 public:
  static constexpr std::uint64_t kDefaultMemBytes = 4ull * 1024 * 1024;

  /// `rx` is invoked when an Ethernet frame addressed to this board arrives.
  NicBoard(std::string name, sim::Engine& engine, PciBus& bus,
           EthernetSwitch& ether, EthernetSwitch::Receiver rx,
           const Calibration& cal = {},
           std::uint64_t mem_bytes = kDefaultMemBytes)
      : name_{std::move(name)},
        engine_{engine},
        bus_{bus},
        ether_{ether},
        cpu_{cal.ni_cpu},
        memory_{mem_bytes},
        hwqueue_{cpu_, cal.i2o.hardware_queue_regs},
        i2o_{engine, bus, cal.i2o} {
    eth_ports_[0] = ether.add_port(rx);
    eth_ports_[1] = ether.add_port(rx);
    disks_[0] = std::make_unique<ScsiDisk>(engine, cal.disk, /*seed=*/1001);
    disks_[1] = std::make_unique<ScsiDisk>(engine, cal.disk, /*seed=*/1002);
    // Cores beyond the first (cal.interconnect.cores, the multi-core NI
    // model): identical CPUs, each with its own d-cache and cycle counter.
    for (int c = 1; c < cal.interconnect.cores; ++c) {
      extra_cores_.push_back(std::make_unique<CpuModel>(cal.ni_cpu));
    }
  }

  NicBoard(const NicBoard&) = delete;
  NicBoard& operator=(const NicBoard&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] PciBus& bus() { return bus_; }
  [[nodiscard]] EthernetSwitch& ether() { return ether_; }
  [[nodiscard]] CpuModel& cpu() { return cpu_; }
  /// Scheduling cores on this board (>= 1). cpu() is core 0 — every
  /// single-core consumer keeps working unchanged; the sharded scheduler
  /// model pins one DWCS shard per core.
  [[nodiscard]] int num_cores() const {
    return 1 + static_cast<int>(extra_cores_.size());
  }
  [[nodiscard]] CpuModel& core(int i) {
    return i == 0 ? cpu_ : *extra_cores_.at(static_cast<std::size_t>(i - 1));
  }
  [[nodiscard]] MemoryPool& memory() { return memory_; }
  [[nodiscard]] HardwareQueue& hwqueue() { return hwqueue_; }
  [[nodiscard]] I2oChannel& i2o() { return i2o_; }
  [[nodiscard]] int eth_port(int i) const { return eth_ports_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] ScsiDisk& disk(int i) { return *disks_.at(static_cast<std::size_t>(i)); }

  /// Attach a health state machine (nullptr detaches; healthy when absent).
  /// Firmware layers stacked on this board (DVCM runtime, stream service)
  /// consult it to stall or wipe on crash/hang.
  void set_health(fault::BoardHealth* h) { health_ = h; }
  [[nodiscard]] fault::BoardHealth* health() { return health_; }
  [[nodiscard]] bool alive() const {
    return health_ == nullptr || health_->alive();
  }

 private:
  std::string name_;
  sim::Engine& engine_;
  PciBus& bus_;
  EthernetSwitch& ether_;
  CpuModel cpu_;
  std::vector<std::unique_ptr<CpuModel>> extra_cores_;  // cores 1..N-1
  MemoryPool memory_;
  HardwareQueue hwqueue_;
  I2oChannel i2o_;
  std::array<int, 2> eth_ports_{};
  std::array<std::unique_ptr<ScsiDisk>, 2> disks_{};
  fault::BoardHealth* health_ = nullptr;
};

}  // namespace nistream::hw
