// Striped multi-disk volume (Tiger-style, paper §5).
//
// "DWCS could also take advantage of the stripe-based disk and machine
// scheduling methods advocated by the Tiger video server, by using stripes
// as coarse-grain 'reservations'". The i960 RD carries two SCSI ports; a
// striped volume reads a logical extent from all member disks concurrently,
// multiplying sequential bandwidth and spreading seek load — the
// ablate_striping bench quantifies it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/scsi_disk.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace nistream::hw {

class StripedVolume {
 public:
  /// `disks` are borrowed members (e.g. a board's two drives); `stripe_bytes`
  /// is the striping unit (Tiger used large stripes; 64 KB default).
  StripedVolume(sim::Engine& engine, std::vector<ScsiDisk*> disks,
                std::uint64_t stripe_bytes = 64 * 1024)
      : engine_{engine}, disks_{std::move(disks)}, stripe_{stripe_bytes} {
    assert(!disks_.empty() && stripe_ > 0);
  }

  [[nodiscard]] int width() const { return static_cast<int>(disks_.size()); }
  [[nodiscard]] std::uint64_t stripe_bytes() const { return stripe_; }

  /// Which member disk serves logical byte `offset`.
  [[nodiscard]] int disk_of(std::uint64_t offset) const {
    return static_cast<int>((offset / stripe_) % disks_.size());
  }
  /// The member-local offset of logical byte `offset`.
  [[nodiscard]] std::uint64_t local_offset(std::uint64_t offset) const {
    const std::uint64_t stripe_idx = offset / stripe_;
    const std::uint64_t row = stripe_idx / disks_.size();
    return row * stripe_ + offset % stripe_;
  }

  /// Read a logical extent; member-disk segments are issued concurrently
  /// and the call completes when the slowest member finishes.
  sim::Coro read(std::uint64_t offset, std::uint64_t bytes) {
    sim::Semaphore done{engine_, 0};
    int outstanding = 0;
    std::uint64_t pos = offset;
    std::uint64_t left = bytes;
    while (left > 0) {
      const std::uint64_t in_stripe = stripe_ - pos % stripe_;
      const std::uint64_t len = std::min(left, in_stripe);
      disks_[static_cast<std::size_t>(disk_of(pos))]->read_async(
          local_offset(pos), len, [&done] { done.release(); });
      ++outstanding;
      pos += len;
      left -= len;
    }
    requests_ += 1;
    segments_ += static_cast<std::uint64_t>(outstanding);
    for (int k = 0; k < outstanding; ++k) co_await done.acquire();
  }

  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t segments() const { return segments_; }

 private:
  sim::Engine& engine_;
  std::vector<ScsiDisk*> disks_;
  std::uint64_t stripe_;
  std::uint64_t requests_ = 0;
  std::uint64_t segments_ = 0;
};

}  // namespace nistream::hw
