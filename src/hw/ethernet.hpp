// 100 Mbps switched-Ethernet model.
//
// The testbed connects the scheduler card's Ethernet ports to remote MPEG
// clients through a 100 Mbps switch. The model is store-and-forward: a frame
// serializes onto its source port's uplink at line rate, crosses the switch
// (fixed latency), serializes again on the destination downlink, and is then
// delivered to the receiving device's callback. Each direction of each port
// is a FIFO drained at line rate, so concurrent streams contend exactly as
// they would on the wire. Endpoint protocol-stack costs are charged by the
// net layer, not here.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/injector.hpp"
#include "hw/calibration.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace nistream::hw {

/// A link-level frame. `payload` is an opaque, shared, endpoint-typed body;
/// the wire only cares about `bytes`.
struct EthFrame {
  std::uint32_t bytes = 0;           // payload size on the wire
  std::uint64_t tag = 0;             // endpoint cookie (e.g. stream id)
  std::shared_ptr<void> payload;     // endpoint-typed content
  int src_port = -1;
  sim::Time injected_at;             // when handed to the source port
  bool corrupted = false;            // bad CRC on delivery; receivers discard
};

class EthernetSwitch {
 public:
  using Receiver = std::function<void(const EthFrame&)>;

  EthernetSwitch(sim::Engine& engine, const EthernetParams& p = kFastEthernet)
      : engine_{engine}, params_{p}, loss_rng_{p.loss_seed} {}

  EthernetSwitch(const EthernetSwitch&) = delete;
  EthernetSwitch& operator=(const EthernetSwitch&) = delete;

  /// Attach a device; returns its port number. `rx` fires when a frame has
  /// fully arrived at the device.
  int add_port(Receiver rx) {
    ports_.push_back(Port{std::move(rx), sim::Time::zero(), sim::Time::zero()});
    return static_cast<int>(ports_.size()) - 1;
  }

  /// Send `frame` from `src` to `dst`. Delivery time accounts for uplink
  /// serialization, switch latency, downlink serialization and any queueing
  /// on both directions.
  void send(int src, int dst, EthFrame frame) {
    assert(valid(src) && valid(dst));
    frame.src_port = src;
    frame.injected_at = engine_.now();
    const sim::Time wire = wire_time(frame.bytes);

    Port& sp = ports_[static_cast<std::size_t>(src)];
    const sim::Time up_start = std::max(engine_.now(), sp.uplink_busy_until);
    const sim::Time at_switch = up_start + wire;
    sp.uplink_busy_until = at_switch;

    // Loss model: the frame occupied the uplink, but is discarded at the
    // switch (CRC error / buffer overrun) and never reaches the downlink.
    if (params_.loss_rate > 0 && loss_rng_.chance(params_.loss_rate)) {
      ++frames_lost_;
      return;
    }
    if (fault_ != nullptr) {
      if (fault_->drop_frame()) {
        ++frames_lost_;
        return;
      }
      // Corrupted frames still occupy the downlink; the receiving endpoint
      // sees the bad CRC and discards.
      frame.corrupted = fault_->corrupt_frame();
    }

    Port& dp = ports_[static_cast<std::size_t>(dst)];
    const sim::Time down_start =
        std::max(at_switch + params_.switch_latency, dp.downlink_busy_until);
    const sim::Time delivered = down_start + wire;
    dp.downlink_busy_until = delivered;

    bytes_switched_ += frame.bytes;
    engine_.schedule_at(delivered, [this, dst, f = std::move(frame)] {
      ports_[static_cast<std::size_t>(dst)].rx(f);
    });
  }

  /// Serialization time of one frame at line rate (includes L2 overhead).
  [[nodiscard]] sim::Time wire_time(std::uint32_t bytes) const {
    const double bits = static_cast<double>(bytes + params_.overhead_bytes) * 8.0;
    return sim::Time::sec(bits / params_.bits_per_sec);
  }

  [[nodiscard]] std::uint64_t bytes_switched() const { return bytes_switched_; }
  [[nodiscard]] std::uint64_t frames_lost() const { return frames_lost_; }
  [[nodiscard]] const EthernetParams& params() const { return params_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// Attach a fault injector (nullptr detaches). Injection happens at the
  /// switch, after uplink occupancy is accounted, matching the built-in loss
  /// model's position.
  void set_fault(fault::LinkFaultInjector* inj) { fault_ = inj; }

 private:
  struct Port {
    Receiver rx;
    sim::Time uplink_busy_until;
    sim::Time downlink_busy_until;
  };
  [[nodiscard]] bool valid(int p) const {
    return p >= 0 && static_cast<std::size_t>(p) < ports_.size();
  }

  sim::Engine& engine_;
  EthernetParams params_;
  sim::Rng loss_rng_;
  std::vector<Port> ports_;
  std::uint64_t bytes_switched_ = 0;
  std::uint64_t frames_lost_ = 0;
  fault::LinkFaultInjector* fault_ = nullptr;
};

}  // namespace nistream::hw
