// PCI bus segment model: exclusive-use DMA transfers and PIO word costs.
//
// Paths B and C of Figure 3 live or die on this model: card-to-card
// peer-to-peer DMA at ~66 MB/s effective (Table 5) moves a 1000-byte frame in
// ~15 us without any host involvement, while programmed I/O costs 3.6/3.1 us
// per word read/write.
#pragma once

#include <cstdint>
#include <functional>

#include "fault/injector.hpp"
#include "hw/calibration.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace nistream::hw {

class PciBus {
 public:
  PciBus(sim::Engine& engine, const PciParams& p = kPci33)
      : engine_{engine}, params_{p}, grant_{engine, 1} {}

  PciBus(const PciBus&) = delete;
  PciBus& operator=(const PciBus&) = delete;

  /// Pure transfer duration for `bytes`, excluding arbitration/queueing.
  [[nodiscard]] sim::Time dma_duration(std::uint64_t bytes) const {
    return params_.dma_setup +
           sim::Time::sec(static_cast<double>(bytes) / params_.dma_bytes_per_sec);
  }

  /// Exclusive DMA transfer: arbitrates for the bus, holds it for the
  /// transfer duration, releases. Awaitable from any sim coroutine:
  ///   co_await bus.dma(bytes);
  sim::Coro dma(std::uint64_t bytes) {
    co_await grant_.acquire();
    const sim::Time start = engine_.now();
    co_await sim::Delay{engine_, dma_duration(bytes)};
    // Fault model: a target/master abort wastes the whole transfer slot; the
    // initiator backs off for the retry penalty and re-moves the data, still
    // holding its grant (retries re-serialize on the same arbitration win).
    if (fault_ != nullptr) {
      const int max_retries = fault_->policy().max_retries;
      for (int attempt = 0; attempt < max_retries; ++attempt) {
        if (!fault_->transaction_error()) break;
        ++dma_retries_;
        co_await sim::Delay{engine_, fault_->policy().retry_penalty +
                                         dma_duration(bytes)};
      }
    }
    busy_ += engine_.now() - start;
    bytes_moved_ += bytes;
    ++transfers_;
    grant_.release();
  }

  /// Callback form for non-coroutine callers.
  void dma_async(std::uint64_t bytes, std::function<void()> done) {
    [](PciBus& self, std::uint64_t n, std::function<void()> fn) -> sim::Coro {
      co_await self.dma(n);
      fn();
    }(*this, bytes, std::move(done)).detach();
  }

  [[nodiscard]] sim::Time pio_read_cost() const { return params_.pio_read; }
  [[nodiscard]] sim::Time pio_write_cost() const { return params_.pio_write; }

  [[nodiscard]] std::uint64_t bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] std::uint64_t dma_retries() const { return dma_retries_; }
  [[nodiscard]] sim::Time busy_time() const { return busy_; }
  [[nodiscard]] const PciParams& params() const { return params_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// Attach a fault injector (nullptr detaches).
  void set_fault(fault::PciFaultInjector* inj) { fault_ = inj; }

 private:
  sim::Engine& engine_;
  PciParams params_;
  sim::Semaphore grant_;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t dma_retries_ = 0;
  sim::Time busy_ = sim::Time::zero();
  fault::PciFaultInjector* fault_ = nullptr;
};

}  // namespace nistream::hw
