// SCSI disk model for the drives attached to the i960 RD cards.
//
// Table 4 decomposes the end-to-end 1000-byte frame latency as
// "4.2disk + 1.2net + 0.015pci": disk access dominates. The model charges
// per-request overhead, a seek (skipped for near-sequential accesses hitting
// the track buffer), a uniformly distributed rotational delay, and media
// transfer at a fixed rate. Requests serialize on the drive.
#pragma once

#include <cstdint>
#include <functional>

#include "fault/injector.hpp"
#include "hw/calibration.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace nistream::hw {

class ScsiDisk {
 public:
  ScsiDisk(sim::Engine& engine, const DiskParams& p = kScsiDisk,
           std::uint64_t rng_seed = 42)
      : engine_{engine}, params_{p}, rng_{rng_seed}, gate_{engine, 1} {}

  ScsiDisk(const ScsiDisk&) = delete;
  ScsiDisk& operator=(const ScsiDisk&) = delete;

  /// Awaitable read of `bytes` at byte offset `offset`:
  ///   co_await disk.read(offset, bytes);
  sim::Coro read(std::uint64_t offset, std::uint64_t bytes) {
    co_await gate_.acquire();
    sim::Time t = service_time(offset, bytes);
    if (fault_ != nullptr) {
      // Thermal-recal-style latency spike: the whole request stretches.
      if (fault_->latency_spike()) {
        t = sim::Time::us(t.to_us() * fault_->policy().spike_multiplier);
      }
    }
    latency_.add(t.to_ms());
    co_await sim::Delay{engine_, t};
    if (fault_ != nullptr) {
      // Unrecoverable-read retries: the drive re-reads the same sectors,
      // paying the media-transfer portion again per attempt (head is already
      // positioned, so no fresh seek).
      const int max_retries = fault_->policy().max_retries;
      for (int attempt = 0; attempt < max_retries; ++attempt) {
        if (!fault_->read_error()) break;
        ++read_retries_;
        const sim::Time rr = params_.request_overhead +
            sim::Time::sec(static_cast<double>(bytes) / params_.bytes_per_sec);
        latency_.add(rr.to_ms());
        co_await sim::Delay{engine_, rr};
      }
    }
    bytes_read_ += bytes;
    ++requests_;
    gate_.release();
  }

  /// Callback form for non-coroutine callers.
  void read_async(std::uint64_t offset, std::uint64_t bytes,
                  std::function<void()> done) {
    [](ScsiDisk& self, std::uint64_t o, std::uint64_t n,
       std::function<void()> fn) -> sim::Coro {
      co_await self.read(o, n);
      fn();
    }(*this, offset, bytes, std::move(done)).detach();
  }

  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t read_retries() const { return read_retries_; }
  [[nodiscard]] const sim::RunningStat& latency_ms() const { return latency_; }
  [[nodiscard]] const DiskParams& params() const { return params_; }

  /// Attach a fault injector (nullptr detaches).
  void set_fault(fault::DiskFaultInjector* inj) { fault_ = inj; }

 private:
  /// Mechanical service time; mutates head position state.
  [[nodiscard]] sim::Time service_time(std::uint64_t offset, std::uint64_t bytes) {
    sim::Time t = params_.request_overhead;
    const bool sequential =
        have_position_ && offset >= last_end_ &&
        offset - last_end_ <= params_.sequential_window;
    if (!sequential) {
      // Seek time varies with distance; model as uniform around the average.
      t += sim::Time::us(params_.avg_seek.to_us() * rng_.uniform(0.5, 1.5));
      t += sim::Time::us(params_.full_rotation.to_us() * rng_.uniform());
    }
    t += sim::Time::sec(static_cast<double>(bytes) / params_.bytes_per_sec);
    last_end_ = offset + bytes;
    have_position_ = true;
    return t;
  }

  sim::Engine& engine_;
  DiskParams params_;
  sim::Rng rng_;
  sim::Semaphore gate_;
  bool have_position_ = false;
  std::uint64_t last_end_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t read_retries_ = 0;
  sim::RunningStat latency_;
  fault::DiskFaultInjector* fault_ = nullptr;
};

}  // namespace nistream::hw
