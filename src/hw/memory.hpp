// On-card memory accounting + simulated-address allocation.
//
// The i960 RD ships with 4 MB (expandable to 36 MB); the paper's design
// keeps a *single copy* of each frame in card memory and passes descriptor
// addresses around to conserve it. MemoryPool enforces the capacity and
// hands out stable simulated addresses that the cache model can key on —
// never real host pointers, so runs are reproducible under ASLR.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>

namespace nistream::hw {

/// A simulated physical address on some device's memory.
using SimAddr = std::uint64_t;

class MemoryPool {
 public:
  explicit MemoryPool(std::uint64_t capacity_bytes, SimAddr base = 0x100000)
      : capacity_{capacity_bytes}, base_{base}, bump_{base} {}

  /// Allocate `bytes`; returns the block's simulated address, or nullopt when
  /// the pool is exhausted. Addresses are a bump cursor that wraps over the
  /// address window — they identify cache lines, not storage.
  std::optional<SimAddr> allocate(std::uint64_t bytes) {
    if (used_ + bytes > capacity_) return std::nullopt;
    used_ += bytes;
    high_water_ = std::max(high_water_, used_);
    const SimAddr addr = bump_;
    bump_ += bytes;
    if (bump_ >= base_ + capacity_) bump_ = base_ + (bump_ - base_) % capacity_;
    ++allocations_;
    return addr;
  }

  /// Return `bytes` to the pool (caller pairs sizes with allocate()).
  void release(std::uint64_t bytes) {
    assert(bytes <= used_);
    used_ -= bytes;
  }

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t available() const { return capacity_ - used_; }
  [[nodiscard]] std::uint64_t high_water() const { return high_water_; }
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }

 private:
  std::uint64_t capacity_;
  SimAddr base_;
  SimAddr bump_;
  std::uint64_t used_ = 0;
  std::uint64_t high_water_ = 0;
  std::uint64_t allocations_ = 0;
};

}  // namespace nistream::hw
