// Cycle-accounting CPU model.
//
// The microbenchmark experiments (Tables 1-3) run the *real* DWCS code on the
// build machine, but charge every arithmetic operation and memory access to a
// CpuModel according to the target processor's parameters (i960 RD at 66 MHz,
// software FP vs native integer, d-cache on/off). Reported times are then
// accumulated-cycles / clock — the same quantity the paper's on-card
// timestamp counters measured.
#pragma once

#include <cstdint>

#include "hw/cache.hpp"
#include "hw/calibration.hpp"
#include "sim/time.hpp"

namespace nistream::hw {

/// Operation categories the instrumented scheduler reports.
enum class ArithOp { kAdd, kMul, kDiv, kCmp };

class CpuModel {
 public:
  explicit CpuModel(const CpuParams& p = kI960Rd)
      : params_{p}, dcache_{p.dcache} {}

  [[nodiscard]] double hz() const { return params_.hz; }
  [[nodiscard]] CacheModel& dcache() { return dcache_; }
  [[nodiscard]] const CacheModel& dcache() const { return dcache_; }

  /// Raw cycle charge (control flow, loop overhead, task switches...).
  void charge(std::int64_t cycles) { cycles_ += cycles; }

  /// Arithmetic charge under a given cost table (native int / soft FP / FPU).
  void charge_arith(const ArithCosts& costs, ArithOp op, std::int64_t n = 1) {
    switch (op) {
      case ArithOp::kAdd: cycles_ += costs.add * n; break;
      case ArithOp::kMul: cycles_ += costs.mul * n; break;
      case ArithOp::kDiv: cycles_ += costs.div * n; break;
      case ArithOp::kCmp: cycles_ += costs.cmp * n; break;
    }
  }

  /// Memory word access through the data cache at a simulated address.
  void mem_access(std::uint64_t addr) { cycles_ += dcache_.access(addr); }

  /// Memory-mapped on-chip register access ("hardware queue"): fixed cost,
  /// never cached, never on the external bus.
  void reg_access() { cycles_ += params_.mmio_reg_cycles; }

  [[nodiscard]] std::int64_t cycles() const { return cycles_; }
  [[nodiscard]] sim::Time elapsed() const {
    return sim::Time::cycles(cycles_, params_.hz);
  }

  /// Cycles->time for an externally counted quantity.
  [[nodiscard]] sim::Time time_of(std::int64_t cycles) const {
    return sim::Time::cycles(cycles, params_.hz);
  }

  void reset() { cycles_ = 0; }

 private:
  CpuParams params_;
  CacheModel dcache_;
  std::int64_t cycles_ = 0;
};

}  // namespace nistream::hw
