// Central calibration table for every hardware model constant.
//
// Each constant is anchored either to a number the paper measures directly
// (Tables 1-5 and the prose of §4) or to the published spec of the component
// (i960 RD, PCI 32/33, 100 Mbps Ethernet). EXPERIMENTS.md records how the
// reproduced tables land against the paper with these defaults.
//
// Experiments never hard-code model constants: they take a Calibration (or a
// piece of one), so ablations can sweep any of these.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace nistream::hw {

/// Per-operation integer/floating arithmetic costs, in CPU cycles.
struct ArithCosts {
  std::int64_t add;
  std::int64_t mul;
  std::int64_t div;
  std::int64_t cmp;
};

/// i960 RD native integer arithmetic (no FPU on this part).
/// i960 core: single-cycle ALU ops, multi-cycle multiply, long divide.
inline constexpr ArithCosts kI960IntCosts{/*add=*/1, /*mul=*/5, /*div=*/38,
                                          /*cmp=*/1};

/// VxWorks software floating-point library on i960 (per-call cost including
/// function-call overhead, unpack/repack). Calibrated so the software-FP
/// scheduler build is ~20 us per decision slower than the fixed-point build
/// at 66 MHz (paper §4.2: "The overhead of using the VxWorks software FP
/// library is around ~20 us").
inline constexpr ArithCosts kI960SoftFloatCosts{/*add=*/125, /*mul=*/155,
                                                /*div=*/250, /*cmp=*/92};

/// Host CPUs with hardware FPUs (UltraSPARC 300 MHz / Pentium Pro 200 MHz).
inline constexpr ArithCosts kHostFpuCosts{/*add=*/3, /*mul=*/5, /*div=*/20,
                                          /*cmp=*/3};

/// Host integer ALU (PPro/UltraSPARC: 1-cycle ALU, multi-cycle mul/div).
inline constexpr ArithCosts kHostIntCosts{/*add=*/1, /*mul=*/4, /*div=*/40,
                                          /*cmp=*/1};

/// Data-cache geometry + timing for one CPU.
struct CacheParams {
  std::uint32_t line_bytes = 32;
  std::uint32_t num_lines = 64;     // i960 RD: 2 KB direct-mapped d-cache
  std::int64_t hit_cycles = 1;
  std::int64_t miss_cycles = 20;    // external memory access on the card
};

struct CpuParams {
  double hz = 66e6;                 // i960 RD clock (paper §4)
  CacheParams dcache{};
  std::int64_t mmio_reg_cycles = 2; // "hardware queue" registers: on-chip,
                                    // "do not generate any external bus
                                    // cycles" (paper §4.2.1)
};

/// i960 RD I2O card processor.
inline constexpr CpuParams kI960Rd{
    .hz = 66e6,
    .dcache = CacheParams{.line_bytes = 32,
                          .num_lines = 64,
                          .hit_cycles = 1,
                          .miss_cycles = 20},
    .mmio_reg_cycles = 2,
};

/// One Pentium Pro 200 MHz host CPU. Larger cache, faster memory path.
inline constexpr CpuParams kPentiumPro200{
    .hz = 200e6,
    .dcache = CacheParams{.line_bytes = 32,
                          .num_lines = 256,   // 8 KB L1 d-cache
                          .hit_cycles = 1,
                          .miss_cycles = 30}, // deeper hierarchy
    .mmio_reg_cycles = 10,
};

/// UltraSPARC 300 MHz — the host the paper's earlier DWCS numbers (~50 us)
/// were measured on; used by the headline-overhead comparison bench.
inline constexpr CpuParams kUltraSparc300{
    .hz = 300e6,
    .dcache = CacheParams{.line_bytes = 32,
                          .num_lines = 512,   // 16 KB L1 d-cache
                          .hit_cycles = 1,
                          .miss_cycles = 35},
    .mmio_reg_cycles = 10,
};

struct PciParams {
  /// Effective sustained DMA bandwidth. Calibrated from Table 5: a 773665-
  /// byte MPEG file moves card-to-card in 11673.84 us => 66.27 MB/s (half of
  /// the 132 MB/s burst rate of PCI 32/33, as expected with arbitration and
  /// retry overhead).
  double dma_bytes_per_sec = 66.27e6;
  /// Per-DMA-transaction setup + arbitration.
  sim::Time dma_setup = sim::Time::us(0.4);
  /// Programmed-I/O word costs, Table 5: read 3.6 us, write 3.1 us.
  sim::Time pio_read = sim::Time::us(3.6);
  sim::Time pio_write = sim::Time::us(3.1);
};
inline const PciParams kPci33{};

struct EthernetParams {
  double bits_per_sec = 100e6;       // 100 Mbps links on the i960 RD card
  std::uint32_t overhead_bytes = 38; // preamble + header + FCS + IFG
  sim::Time switch_latency = sim::Time::us(10);  // store-and-forward cut
  /// Frame-loss probability per hop (0 on the paper's switched LAN; the
  /// reliable-transport tests and failure-injection suites raise it).
  double loss_rate = 0.0;
  std::uint64_t loss_seed = 99;
  /// One-way protocol-stack traversal cost per endpoint. Calibrated so a
  /// 1000-byte frame sees ~1.2 ms end to end (Table 4 "1.2net": stacks at
  /// both ends + wire time).
  sim::Time stack_traversal = sim::Time::us(555);
};
inline const EthernetParams kFastEthernet{};

struct DiskParams {
  /// Calibrated so a random 1000-byte frame read averages ~4.2 ms (Table 4
  /// "4.2disk"): 0.3 overhead + 0.8 short seek + 3.0 mean rotational delay
  /// (10k rpm => 6 ms/rev) + 0.1 transfer.
  sim::Time request_overhead = sim::Time::ms(0.3);
  sim::Time avg_seek = sim::Time::ms(0.8);
  sim::Time full_rotation = sim::Time::ms(6.0);  // 10k-rpm-class SCSI drive
  double bytes_per_sec = 10e6;
  /// Sequential reads within this distance of the previous access skip the
  /// seek (track buffer / same-cylinder).
  std::uint64_t sequential_window = 64 * 1024;
};
inline const DiskParams kScsiDisk{};

struct FilesystemParams {
  /// Solaris UFS: 8 KB logical blocks, buffer cache, read-ahead
  /// (Table 4 Expt I measures ~1 ms per 1000-byte frame through UFS).
  std::uint32_t ufs_block_bytes = 8192;
  sim::Time ufs_per_call_overhead = sim::Time::us(80);
  bool ufs_readahead = true;
  /// VxWorks dosFs mounted on Solaris: no block cache, FAT chain lookups —
  /// ~8 ms per 1000-byte frame (Table 4 Expt I, "8(VxWorks)").
  std::uint32_t dosfs_block_bytes = 512;
  /// FAT cluster-chain walk per read: dosFs re-seeks into the chain on
  /// every call, walking sector-resident FAT entries (calibrated to the
  /// Table 4 "8(VxWorks)" cell against the file sizes used there).
  sim::Time dosfs_fat_lookup = sim::Time::ms(2.6);
  sim::Time dosfs_per_call_overhead = sim::Time::us(100);
};
inline const FilesystemParams kFilesystems{};

struct I2oParams {
  /// Posting a message frame address to a card FIFO is one PIO write; the
  /// doorbell interrupt and message fetch on the card side cost a few
  /// microseconds of NI CPU time.
  std::int64_t message_frame_words = 16;
  sim::Time doorbell_latency = sim::Time::us(2);
  std::uint32_t hardware_queue_regs = 1004;  // paper §4.2.1
};
inline const I2oParams kI2o{};

struct HostOsParams {
  sim::Time context_switch = sim::Time::us(12);  // deep cache hierarchy cost
  /// Solaris TS gives CPU-bound processes long quanta (20..200 ms depending
  /// on priority). This is the key term behind Figures 7-8: a media
  /// scheduler that wakes at a frame deadline can sit behind a web-server
  /// burst for most of a quantum before it runs.
  sim::Time quantum = sim::Time::ms(80);
  sim::Time tick = sim::Time::ms(10);
};
inline const HostOsParams kSolarisX86{};

struct RtosParams {
  sim::Time context_switch = sim::Time::us(4);  // VxWorks on i960: light
  sim::Time tick = sim::Time::ms(1);            // 1 kHz aux clock
};
inline const RtosParams kVxWorks{};

/// Multi-core NI topology (The Distributed Network Processor, PAPERS.md):
/// N scheduling cores on one board, each with its own CpuModel (private
/// d-cache and cycle counter), linked by an on-chip interconnect. The
/// paper's i960 RD is the cores=1 degenerate case — the default, so every
/// existing single-core experiment is untouched.
struct InterconnectParams {
  /// Scheduling cores per NI board. Boards build one CpuModel per core and
  /// the wind kernel schedules tasks across all of them.
  int cores = 1;
  /// Fixed latency of shipping a per-core winner update to the root arbiter
  /// over the on-chip hop, in cycles of the NI clock. Default 0: decision-
  /// identity runs charge nothing the single-core model would not (see
  /// dwcs::HierarchicalParams::hop_cycles, which this value seeds).
  std::int64_t core_hop_cycles = 0;
};
inline constexpr InterconnectParams kSingleCoreNi{};

/// Everything at once; the default machine the experiments construct.
struct Calibration {
  CpuParams ni_cpu = kI960Rd;
  CpuParams host_cpu = kPentiumPro200;
  ArithCosts ni_int = kI960IntCosts;
  ArithCosts ni_softfp = kI960SoftFloatCosts;
  ArithCosts host_int = kHostIntCosts;
  ArithCosts host_fpu = kHostFpuCosts;
  PciParams pci = kPci33;
  EthernetParams ethernet = kFastEthernet;
  DiskParams disk = kScsiDisk;
  FilesystemParams fs = kFilesystems;
  I2oParams i2o = kI2o;
  HostOsParams host_os = kSolarisX86;
  RtosParams rtos = kVxWorks;
  InterconnectParams interconnect = kSingleCoreNi;
};

[[nodiscard]] inline Calibration default_calibration() { return Calibration{}; }

}  // namespace nistream::hw
