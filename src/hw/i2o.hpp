// I2O messaging hardware on the i960 RD card.
//
// Two pieces:
//  * HardwareQueue — the card's 1004 memory-mapped 32-bit registers
//    (paper §4.2.1), usable as a circular buffer of frame descriptors.
//    Accesses are on-chip and "do not generate any external bus cycles";
//    they are charged at the CPU's mmio register cost and never go through
//    the data cache.
//  * I2oChannel — the inbound/outbound message FIFO pair that the I2O spec
//    defines between host and card. The host posts message frames with PIO
//    writes across PCI; a doorbell then wakes the card-side consumer. This
//    is the transport the DVCM host API rides on.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fault/injector.hpp"
#include "hw/calibration.hpp"
#include "hw/cpu.hpp"
#include "hw/pci.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace nistream::hw {

/// Circular queue over the card's memory-mapped register file.
/// Capacity is regs-1 (one slot distinguishes full from empty).
class HardwareQueue {
 public:
  HardwareQueue(CpuModel& cpu, std::uint32_t regs = kI2o.hardware_queue_regs)
      : cpu_{cpu}, regs_(regs, 0) {}

  [[nodiscard]] std::size_t capacity() const { return regs_.size() - 1; }
  [[nodiscard]] std::size_t size() const {
    return (head_ + regs_.size() - tail_) % regs_.size();
  }
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] bool full() const { return (head_ + 1) % regs_.size() == tail_; }

  /// Enqueue a 32-bit descriptor. Charges one register write (+ index
  /// register update). Returns false when full.
  bool push(std::uint32_t v) {
    if (full()) return false;
    cpu_.reg_access();  // data register write
    cpu_.reg_access();  // index register update
    regs_[head_] = v;
    head_ = (head_ + 1) % regs_.size();
    return true;
  }

  /// Dequeue the oldest descriptor; empty -> nullopt.
  std::optional<std::uint32_t> pop() {
    if (empty()) return std::nullopt;
    cpu_.reg_access();
    cpu_.reg_access();
    const std::uint32_t v = regs_[tail_];
    tail_ = (tail_ + 1) % regs_.size();
    return v;
  }

  /// Random-access read of the i-th queued element (0 = oldest). The
  /// embedded scheduler scans descriptors in place without dequeuing.
  [[nodiscard]] std::uint32_t peek(std::size_t i) const {
    cpu_.reg_access();
    return regs_[(tail_ + i) % regs_.size()];
  }

  /// Overwrite the i-th queued element in place.
  void poke(std::size_t i, std::uint32_t v) {
    cpu_.reg_access();
    regs_[(tail_ + i) % regs_.size()] = v;
  }

 private:
  CpuModel& cpu_;
  mutable std::vector<std::uint32_t> regs_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

/// One I2O message frame. `function` selects the operation (the DVCM layers
/// its instruction opcodes here); the words are operation-defined arguments;
/// `payload` carries bulk, endpoint-typed content that in hardware would sit
/// in a DMA-described buffer.
struct I2oMessage {
  std::uint32_t function = 0;
  std::uint64_t w0 = 0, w1 = 0, w2 = 0;
  std::shared_ptr<void> payload;
};

/// Host<->card FIFO pair with modeled posting costs.
class I2oChannel {
 public:
  I2oChannel(sim::Engine& engine, PciBus& bus, const I2oParams& p = kI2o)
      : engine_{engine}, bus_{bus}, params_{p},
        inbound_{engine}, outbound_{engine} {}

  I2oChannel(const I2oChannel&) = delete;
  I2oChannel& operator=(const I2oChannel&) = delete;

  /// Host -> card. Returns the host-CPU time spent posting (PIO writes for
  /// the message frame + doorbell); the message lands in the card's inbound
  /// FIFO after that plus the doorbell latency.
  sim::Time post_inbound(I2oMessage m) {
    const sim::Time cost = post_cost();
    // A dropped message still cost the poster its PIO writes — the frame was
    // written; only the doorbell (and thus delivery) is lost.
    if (fault_ != nullptr && fault_->drop_inbound()) {
      ++inbound_dropped_;
      return cost;
    }
    engine_.schedule_in(cost + params_.doorbell_latency,
                        [this, m = std::move(m)]() mutable {
                          inbound_.send(std::move(m));
                        });
    ++inbound_posted_;
    return cost;
  }

  /// Card -> host (reply/notification path).
  sim::Time post_outbound(I2oMessage m) {
    const sim::Time cost = post_cost();
    if (fault_ != nullptr && fault_->drop_outbound()) {
      ++outbound_dropped_;
      return cost;
    }
    engine_.schedule_in(cost + params_.doorbell_latency,
                        [this, m = std::move(m)]() mutable {
                          outbound_.send(std::move(m));
                        });
    ++outbound_posted_;
    return cost;
  }

  /// PIO cost of writing one message frame across the bus.
  [[nodiscard]] sim::Time post_cost() const {
    return sim::Time::us(bus_.pio_write_cost().to_us() *
                         static_cast<double>(params_.message_frame_words));
  }

  [[nodiscard]] sim::Mailbox<I2oMessage>& inbound() { return inbound_; }
  [[nodiscard]] sim::Mailbox<I2oMessage>& outbound() { return outbound_; }
  [[nodiscard]] std::uint64_t inbound_posted() const { return inbound_posted_; }
  [[nodiscard]] std::uint64_t outbound_posted() const { return outbound_posted_; }
  [[nodiscard]] std::uint64_t inbound_dropped() const { return inbound_dropped_; }
  [[nodiscard]] std::uint64_t outbound_dropped() const { return outbound_dropped_; }

  /// Attach a fault injector (nullptr detaches).
  void set_fault(fault::I2oFaultInjector* inj) { fault_ = inj; }

 private:
  sim::Engine& engine_;
  PciBus& bus_;
  I2oParams params_;
  sim::Mailbox<I2oMessage> inbound_;
  sim::Mailbox<I2oMessage> outbound_;
  std::uint64_t inbound_posted_ = 0;
  std::uint64_t outbound_posted_ = 0;
  std::uint64_t inbound_dropped_ = 0;
  std::uint64_t outbound_dropped_ = 0;
  fault::I2oFaultInjector* fault_ = nullptr;
};

}  // namespace nistream::hw
