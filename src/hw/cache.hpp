// Direct-mapped data-cache model.
//
// Tables 1 vs 2 of the paper differ only in whether the i960 RD data cache
// is enabled (the VxWorks SCSI driver of the era disabled it); the ~14-15 us
// per-frame improvement comes from descriptor and heap-entry loads hitting
// the cache on every scheduler cycle. This model captures exactly that:
// hit/miss on simulated addresses, with enable/disable and invalidate.
//
// Addresses fed to the cache are *simulated* addresses (stable offsets that
// the descriptor stores assign), never real host pointers — this keeps every
// run bit-for-bit reproducible regardless of ASLR.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/calibration.hpp"

namespace nistream::hw {

class CacheModel {
 public:
  explicit CacheModel(const CacheParams& p = {})
      : params_{p}, tags_(p.num_lines, kInvalid) {}

  void set_enabled(bool on) {
    enabled_ = on;
    if (!on) invalidate();
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void invalidate() { std::fill(tags_.begin(), tags_.end(), kInvalid); }

  /// Access one word at `addr`; returns the cycle cost of the access.
  /// A disabled cache makes every access pay the external-memory cost.
  std::int64_t access(std::uint64_t addr) {
    if (!enabled_) {
      ++misses_;
      return params_.miss_cycles;
    }
    const std::uint64_t line = addr / params_.line_bytes;
    const std::size_t idx = static_cast<std::size_t>(line % params_.num_lines);
    if (tags_[idx] == line) {
      ++hits_;
      return params_.hit_cycles;
    }
    tags_[idx] = line;
    ++misses_;
    return params_.miss_cycles;
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
  }
  [[nodiscard]] const CacheParams& params() const { return params_; }

 private:
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
  CacheParams params_;
  std::vector<std::uint64_t> tags_;
  bool enabled_ = true;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace nistream::hw
