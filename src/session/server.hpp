// session::SessionServer — one NI running the full streaming stack:
// DWCS scheduler + dispatch task, RTP data plane out one UDP endpoint,
// QoS violation monitoring, SETUP-time admission, and the RTSP front door,
// all sharing the same simulated i960 and Ethernet port space. The churn
// bench and the session tests build one of these per cell; it is the
// session-plane analogue of apps::MediaServer.
#pragma once

#include <utility>

#include "dvcm/stream_service.hpp"
#include "dwcs/admission.hpp"
#include "dwcs/monitor.hpp"
#include "hw/calibration.hpp"
#include "hw/cpu.hpp"
#include "hw/ethernet.hpp"
#include "ingress/tenant.hpp"
#include "net/udp.hpp"
#include "rtos/wind.hpp"
#include "session/front_door.hpp"
#include "sim/engine.hpp"

namespace nistream::session {

class SessionServer {
 public:
  struct Config {
    hw::Calibration cal{};
    dvcm::StreamService::Config service = default_service();
    /// SETUP-time admission budget: the NI's link and the per-frame CPU a
    /// stream imposes END TO END — scheduling decision + dispatch (~95 us)
    /// plus the pump-side segmentation + RTP packetization (~25 us) — with
    /// DWCS's recovery headroom. Budgeting only the dispatch side admits
    /// ~110% of the CPU and the earliest-admitted streams go late.
    sim::Time per_frame_cpu = sim::Time::us(120);
    double admission_headroom = 0.90;
    int dispatch_priority = 50;  // most urgent: dispatches hold deadlines
    RtspFrontDoor::Config door{};
    /// Named tenants with their admission shares. Empty keeps the server
    /// single-tenant (every URI resolves to the default tenant, scope 0).
    /// Non-empty turns on per-tenant budgets and (tenant, stream) monitor
    /// keying via the front door's TenantDirectory hook.
    std::vector<std::pair<std::string, ingress::TenantBudget>> tenants;
  };

  /// Deadline-from-completion keeps a backlogged ring from accumulating
  /// phantom lateness across PAUSE gaps; churn sessions live and die fast,
  /// so a modest ring bounds per-session memory.
  [[nodiscard]] static dvcm::StreamService::Config default_service() {
    dvcm::StreamService::Config c;
    c.scheduler.deadline_from_completion = true;
    c.scheduler.ring_capacity = 8;
    // Churn arrivals are uncontrolled, so deadline grids collide: without
    // slack, a stream whose grid lands inside another stream's ~100 us
    // dispatch burst would lose its head every period. One millisecond
    // forgives the serialization; completion anchoring then spreads the
    // colliding grids apart on the next frame.
    c.scheduler.lateness_slack = sim::Time::ms(1);
    return c;
  }

  SessionServer(sim::Engine& engine, hw::EthernetSwitch& ether, Config config)
      : engine_{engine},
        config_{std::move(config)},
        cpu_{config_.cal.ni_cpu},
        kernel_{engine, cpu_, config_.cal.rtos},
        service_{engine, config_.service, cpu_, config_.cal.ni_int,
                 config_.cal.ni_softfp},
        rtp_out_{engine, ether, net::kNiStackCost,
                 [](const net::Packet&, sim::Time) {}},
        admission_{config_.cal.ethernet.bits_per_sec / 8.0,
                   config_.per_frame_cpu, config_.admission_headroom},
        dispatch_task_{kernel_.spawn("dwcs-dispatch",
                                     config_.dispatch_priority)},
        tenants_{config_.tenants},
        door_{engine,   ether,      kernel_,   service_,
              rtp_out_, admission_, &monitor_, door_config()} {
    service_.set_dispatch_observer(
        [this](dwcs::StreamId id, const dwcs::Dispatch& d) {
          const dwcs::WindowViolationMonitor::StreamKey key{
              tenants_.scope_of(id), id};
          if (monitor_.known(key)) {
            monitor_.record(key,
                            d.late
                                ? dwcs::WindowViolationMonitor::Outcome::kLate
                                : dwcs::WindowViolationMonitor::Outcome::
                                      kOnTime);
          }
        });
    service_.set_drop_observer(
        [this](dwcs::StreamId id, const dwcs::FrameDescriptor&) {
          const dwcs::WindowViolationMonitor::StreamKey key{
              tenants_.scope_of(id), id};
          if (monitor_.known(key)) {
            monitor_.record(key,
                            dwcs::WindowViolationMonitor::Outcome::kDropped);
          }
        });
    service_.run(dispatch_task_, rtp_out_).detach();
  }

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  [[nodiscard]] RtspFrontDoor& door() { return door_; }
  [[nodiscard]] dvcm::StreamService& service() { return service_; }
  [[nodiscard]] dwcs::AdmissionController& admission() { return admission_; }
  [[nodiscard]] dwcs::WindowViolationMonitor& monitor() { return monitor_; }
  [[nodiscard]] ingress::TenantDirectory& tenants() { return tenants_; }
  [[nodiscard]] rtos::WindKernel& kernel() { return kernel_; }
  [[nodiscard]] int control_port() const { return door_.control_port(); }

 private:
  /// The front door sees the tenant directory only when tenants were
  /// configured, so a single-tenant server keeps the exact legacy SETUP
  /// path (and its stats) bit for bit.
  [[nodiscard]] RtspFrontDoor::Config door_config() {
    RtspFrontDoor::Config c = config_.door;
    if (!config_.tenants.empty()) c.tenants = &tenants_;
    return c;
  }

  sim::Engine& engine_;
  Config config_;
  hw::CpuModel cpu_;
  rtos::WindKernel kernel_;
  dvcm::StreamService service_;
  net::UdpEndpoint rtp_out_;
  dwcs::AdmissionController admission_;
  dwcs::WindowViolationMonitor monitor_;
  rtos::Task& dispatch_task_;
  ingress::TenantDirectory tenants_;
  RtspFrontDoor door_;
};

}  // namespace nistream::session
