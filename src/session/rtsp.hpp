// RTSP message layer for the session control plane.
//
// A deliberately small slice of RFC 2326: the four methods a streaming
// session lives through (SETUP, PLAY, PAUSE, TEARDOWN), CSeq/Session
// headers, and the status codes the front door actually emits — 200, 400,
// 453 Not Enough Bandwidth (the DWCS admission rejection), 454 Session Not
// Found (stale/unknown ids, incl. pre-reboot incarnations), 455 Method Not
// Valid in This State. Messages travel as text over net::TcpLite exactly as
// RTSP rides TCP, terminated by the blank line; MessageBuffer reassembles
// them from arbitrary segment boundaries, which is what makes slow-start
// clients (headers dribbling in over many segments) a workload rather than
// a parse error.
//
// Non-standard headers, all artifacts of the simulation substrate:
//  * Reply-Port — TcpLite is unidirectional (one sender/receiver pair per
//    direction), so the client names the port its response-receiver listens
//    on; a real TCP connection would carry responses on the same socket.
//  * X-Window / X-Period-Us / X-Frame-Bytes / X-Frames — the DWCS admission
//    parameters ((x,y) tolerance, frame period, mean frame size) and the
//    media length. Real deployments derive these from the SDP the DESCRIBE
//    exchange returns; the simulation passes them explicitly.
//  * X-Stream in responses — the scheduler stream id, so tests and the
//    churn client can find their data-plane stream without a registry.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>

#include "dwcs/types.hpp"
#include "sim/time.hpp"

namespace nistream::session {

enum class Method { kSetup, kPlay, kPause, kTeardown, kUnknown };

[[nodiscard]] inline const char* method_name(Method m) {
  switch (m) {
    case Method::kSetup: return "SETUP";
    case Method::kPlay: return "PLAY";
    case Method::kPause: return "PAUSE";
    case Method::kTeardown: return "TEARDOWN";
    case Method::kUnknown: break;
  }
  return "UNKNOWN";
}

/// Session ids carry the server incarnation in the top 32 bits, so a session
/// minted before an NI reboot can never be confused with a live one — the
/// same recovery-epoch discipline the cluster failover plane uses.
[[nodiscard]] inline std::uint64_t make_session_id(std::uint32_t incarnation,
                                                   std::uint32_t n) {
  return (static_cast<std::uint64_t>(incarnation) << 32) | n;
}

[[nodiscard]] inline std::uint32_t incarnation_of(std::uint64_t session_id) {
  return static_cast<std::uint32_t>(session_id >> 32);
}

[[nodiscard]] inline std::string format_session_id(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return std::string{buf};
}

[[nodiscard]] inline std::optional<std::uint64_t> parse_session_id(
    std::string_view s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    const int d = c >= '0' && c <= '9'   ? c - '0'
                  : c >= 'a' && c <= 'f' ? c - 'a' + 10
                  : c >= 'A' && c <= 'F' ? c - 'A' + 10
                                         : -1;
    if (d < 0) return std::nullopt;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

struct RtspRequest {
  Method method = Method::kUnknown;
  std::string uri = "rtsp://ni/stream";
  std::uint64_t cseq = 0;
  std::uint64_t session_id = 0;  // 0 = no Session header
  int reply_port = -1;           // client's response-receiver port
  int rtp_port = -1;             // Transport: client_port RTP half
  int rtcp_port = -1;            // Transport: client_port RTCP half
  dwcs::WindowConstraint tolerance{1, 4};
  sim::Time period = sim::Time::ms(33);
  std::uint32_t frame_bytes = 1000;
  std::uint64_t frames = 0;  // media length in frames (SETUP)
};

struct RtspResponse {
  int status = 200;
  std::uint64_t cseq = 0;
  std::uint64_t session_id = 0;  // 0 = no Session header
  dwcs::StreamId stream = 0;
  bool has_stream = false;
};

[[nodiscard]] inline const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 453: return "Not Enough Bandwidth";
    case 454: return "Session Not Found";
    case 455: return "Method Not Valid in This State";
    default: return "Unknown";
  }
}

[[nodiscard]] inline std::string format_request(const RtspRequest& r) {
  std::string out;
  out.reserve(256);
  out += method_name(r.method);
  out += ' ';
  out += r.uri;
  out += " RTSP/1.0\r\nCSeq: " + std::to_string(r.cseq) + "\r\n";
  if (r.session_id != 0) {
    out += "Session: " + format_session_id(r.session_id) + "\r\n";
  }
  if (r.reply_port >= 0) {
    out += "Reply-Port: " + std::to_string(r.reply_port) + "\r\n";
  }
  if (r.method == Method::kSetup) {
    out += "Transport: RTP/AVP;unicast;client_port=" +
           std::to_string(r.rtp_port) + "-" + std::to_string(r.rtcp_port) +
           "\r\n";
    out += "X-Window: " + std::to_string(r.tolerance.x) + "/" +
           std::to_string(r.tolerance.y) + "\r\n";
    out += "X-Period-Us: " +
           std::to_string(static_cast<std::int64_t>(r.period.to_us())) +
           "\r\n";
    out += "X-Frame-Bytes: " + std::to_string(r.frame_bytes) + "\r\n";
    out += "X-Frames: " + std::to_string(r.frames) + "\r\n";
  }
  out += "\r\n";
  return out;
}

[[nodiscard]] inline std::string format_response(const RtspResponse& r) {
  std::string out;
  out.reserve(128);
  out += "RTSP/1.0 " + std::to_string(r.status) + " " +
         status_reason(r.status) + "\r\nCSeq: " + std::to_string(r.cseq) +
         "\r\n";
  if (r.session_id != 0) {
    out += "Session: " + format_session_id(r.session_id) + "\r\n";
  }
  if (r.has_stream) {
    out += "X-Stream: " + std::to_string(r.stream) + "\r\n";
  }
  out += "\r\n";
  return out;
}

namespace detail {

/// Iterate `\r\n`-separated lines of a message (terminator excluded).
template <typename Fn>
void for_each_line(std::string_view text, Fn&& fn) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find("\r\n", pos);
    const std::size_t end = eol == std::string_view::npos ? text.size() : eol;
    if (end > pos) fn(text.substr(pos, end - pos));
    if (eol == std::string_view::npos) break;
    pos = eol + 2;
  }
}

[[nodiscard]] inline std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

[[nodiscard]] inline std::optional<std::uint64_t> to_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

/// Split "Header: value" → (name, value); nullopt when no colon.
[[nodiscard]] inline std::optional<std::pair<std::string_view,
                                             std::string_view>>
split_header(std::string_view line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  return std::pair{trim(line.substr(0, colon)), trim(line.substr(colon + 1))};
}

}  // namespace detail

/// Parse one complete request message. nullopt on anything malformed — the
/// front door answers those with 400, so a garbled slow-start client is an
/// error response, not undefined behavior.
[[nodiscard]] inline std::optional<RtspRequest> parse_request(
    std::string_view text) {
  RtspRequest req;
  bool first = true;
  bool bad = false;
  bool have_cseq = false;
  detail::for_each_line(text, [&](std::string_view line) {
    if (bad) return;
    if (first) {
      first = false;
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
      if (sp2 == std::string_view::npos ||
          line.substr(sp2 + 1) != "RTSP/1.0") {
        bad = true;
        return;
      }
      const std::string_view m = line.substr(0, sp1);
      req.method = m == "SETUP"      ? Method::kSetup
                   : m == "PLAY"     ? Method::kPlay
                   : m == "PAUSE"    ? Method::kPause
                   : m == "TEARDOWN" ? Method::kTeardown
                                     : Method::kUnknown;
      if (req.method == Method::kUnknown) {
        bad = true;
        return;
      }
      req.uri = std::string{line.substr(sp1 + 1, sp2 - sp1 - 1)};
      return;
    }
    const auto header = detail::split_header(line);
    if (!header) {
      bad = true;
      return;
    }
    const auto [name, value] = *header;
    if (name == "CSeq") {
      const auto v = detail::to_u64(value);
      if (!v) { bad = true; return; }
      req.cseq = *v;
      have_cseq = true;
    } else if (name == "Session") {
      const auto v = parse_session_id(value);
      if (!v) { bad = true; return; }
      req.session_id = *v;
    } else if (name == "Reply-Port") {
      const auto v = detail::to_u64(value);
      if (!v) { bad = true; return; }
      req.reply_port = static_cast<int>(*v);
    } else if (name == "Transport") {
      const std::size_t eq = value.rfind("client_port=");
      if (eq == std::string_view::npos) { bad = true; return; }
      const std::string_view ports = value.substr(eq + 12);
      const std::size_t dash = ports.find('-');
      if (dash == std::string_view::npos) { bad = true; return; }
      const auto rtp = detail::to_u64(ports.substr(0, dash));
      const auto rtcp = detail::to_u64(ports.substr(dash + 1));
      if (!rtp || !rtcp) { bad = true; return; }
      req.rtp_port = static_cast<int>(*rtp);
      req.rtcp_port = static_cast<int>(*rtcp);
    } else if (name == "X-Window") {
      const std::size_t slash = value.find('/');
      if (slash == std::string_view::npos) { bad = true; return; }
      const auto x = detail::to_u64(value.substr(0, slash));
      const auto y = detail::to_u64(value.substr(slash + 1));
      if (!x || !y || *x > *y || *y == 0) { bad = true; return; }
      req.tolerance = dwcs::WindowConstraint{static_cast<std::int64_t>(*x),
                                             static_cast<std::int64_t>(*y)};
    } else if (name == "X-Period-Us") {
      const auto v = detail::to_u64(value);
      if (!v || *v == 0) { bad = true; return; }
      req.period = sim::Time::us(static_cast<std::int64_t>(*v));
    } else if (name == "X-Frame-Bytes") {
      const auto v = detail::to_u64(value);
      if (!v || *v == 0) { bad = true; return; }
      req.frame_bytes = static_cast<std::uint32_t>(*v);
    } else if (name == "X-Frames") {
      const auto v = detail::to_u64(value);
      if (!v) { bad = true; return; }
      req.frames = *v;
    }
    // Unrecognized headers are ignored, as RTSP requires.
  });
  if (bad || first || !have_cseq) return std::nullopt;
  return req;
}

/// Parse one complete response message (the churn client's half).
[[nodiscard]] inline std::optional<RtspResponse> parse_response(
    std::string_view text) {
  RtspResponse resp;
  bool first = true;
  bool bad = false;
  bool have_cseq = false;
  detail::for_each_line(text, [&](std::string_view line) {
    if (bad) return;
    if (first) {
      first = false;
      if (!line.starts_with("RTSP/1.0 ")) { bad = true; return; }
      const std::string_view rest = line.substr(9);
      const std::size_t sp = rest.find(' ');
      const auto status =
          detail::to_u64(sp == std::string_view::npos ? rest
                                                      : rest.substr(0, sp));
      if (!status) { bad = true; return; }
      resp.status = static_cast<int>(*status);
      return;
    }
    const auto header = detail::split_header(line);
    if (!header) { bad = true; return; }
    const auto [name, value] = *header;
    if (name == "CSeq") {
      const auto v = detail::to_u64(value);
      if (!v) { bad = true; return; }
      resp.cseq = *v;
      have_cseq = true;
    } else if (name == "Session") {
      const auto v = parse_session_id(value);
      if (!v) { bad = true; return; }
      resp.session_id = *v;
    } else if (name == "X-Stream") {
      const auto v = detail::to_u64(value);
      if (!v) { bad = true; return; }
      resp.stream = static_cast<dwcs::StreamId>(*v);
      resp.has_stream = true;
    }
  });
  if (bad || first || !have_cseq) return std::nullopt;
  return resp;
}

/// Best-effort Reply-Port extraction from possibly-malformed text: a 400
/// response still needs somewhere to go, and the one header that names the
/// destination must be readable even when the rest of the request is not.
[[nodiscard]] inline std::optional<int> find_reply_port(
    std::string_view text) {
  std::optional<int> port;
  detail::for_each_line(text, [&](std::string_view line) {
    const auto header = detail::split_header(line);
    if (!header || header->first != "Reply-Port") return;
    if (const auto v = detail::to_u64(header->second)) {
      port = static_cast<int>(*v);
    }
  });
  return port;
}

/// Reassembles complete `\r\n\r\n`-terminated messages from a TCP-like byte
/// stream delivered in arbitrary chunks. Keeps at most one partial message
/// of buffered bytes; next() pops complete messages in arrival order.
class MessageBuffer {
 public:
  void append(std::string_view chunk) { buf_.append(chunk); }

  /// Next complete message (terminator included in the consumed bytes,
  /// excluded from the returned text), or nullopt when none is buffered.
  [[nodiscard]] std::optional<std::string> next() {
    const std::size_t end = buf_.find("\r\n\r\n");
    if (end == std::string::npos) return std::nullopt;
    std::string msg = buf_.substr(0, end + 2);  // keep last header's \r\n
    buf_.erase(0, end + 4);
    return msg;
  }

  [[nodiscard]] std::size_t pending_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
};

}  // namespace nistream::session
