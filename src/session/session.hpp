// Per-session state for the RTSP front door.
//
// One Session ties together the three planes a client touches: the RTSP
// control state machine (READY/PLAYING per RFC 2326 §A.1, collapsed to the
// server-relevant states), the DWCS reservation made at SETUP (released
// exactly once, at teardown), and the data-plane identity (scheduler stream
// id + the client's RTP/RTCP ports). Ids are incarnation-prefixed via
// rtsp.hpp's make_session_id so a reborn server never honors a dead
// incarnation's sessions.
#pragma once

#include <cstdint>

#include "dwcs/admission.hpp"
#include "dwcs/types.hpp"
#include "session/rtsp.hpp"
#include "sim/time.hpp"

namespace nistream::session {

/// Server-side control state. kReady covers both freshly-SET-UP and paused
/// sessions (RTSP's Ready state); kPlaying means a pump is live. There is no
/// kClosed — closed sessions are erased, and their ids answer 454.
enum class SessionState { kReady, kPlaying };

struct Session {
  std::uint64_t id = 0;
  int ctl_peer = -1;  // TcpLite peer port of the owning control connection
  SessionState state = SessionState::kReady;
  bool paused = false;       // kReady via PAUSE (resumable pump parked)
  bool ever_played = false;  // distinguishes PAUSE-before-PLAY (455)
  dwcs::StreamId stream = dwcs::kInvalidStream;
  std::uint32_t tenant = 0;  // ingress tenant scope (0 = default tenant)
  dwcs::AdmissionController::Request adm{};  // reservation to release
  int rtp_port = -1;
  int rtcp_port = -1;
  std::uint32_t frame_bytes = 0;  // media bytes per frame, pre-RTP
  sim::Time period = sim::Time::zero();
  std::uint64_t frames = 0;  // media length
  sim::Time last_activity = sim::Time::zero();  // reaper clock
  std::uint64_t pump_id = 0;  // live pump context key; 0 = none
};

}  // namespace nistream::session
