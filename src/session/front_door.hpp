// session::RtspFrontDoor — the NI-resident session control plane.
//
// One control task parses RTSP requests off a TcpLite port and drives
// per-session state machines; admitted sessions get a data-plane pump (an
// RTP-tailed synthetic producer into the DWCS ring) on a pooled wind task.
// The layering mirrors the paper's thesis: control traffic terminates on
// the NI, competes with the data plane for the same i960 cycles
// (ctl_priority vs pump_priority vs the dispatch task), and never touches
// the host.
//
// Invariants the churn bench asserts:
//  * Admission is decided at SETUP, and only there. PLAY/PAUSE/TEARDOWN
//    never consult the AdmissionController, so a session that got its 200
//    can always start — post_play_admission_violations counts any pump
//    start that finds no reservation, and must stay 0.
//  * Every reservation is released exactly once, whatever the exit path:
//    TEARDOWN, end of media followed by idle reaping, control-connection
//    FIN, or the reaper collecting a half-open session.
//  * Session ids are incarnation-prefixed; ids minted by an earlier
//    incarnation answer 454, never touch another session's state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dvcm/stream_service.hpp"
#include "dwcs/admission.hpp"
#include "dwcs/monitor.hpp"
#include "hw/ethernet.hpp"
#include "ingress/tenant.hpp"
#include "net/tcplite.hpp"
#include "net/udp.hpp"
#include "path/frame_path.hpp"
#include "path/rtp_stages.hpp"
#include "rtos/wind.hpp"
#include "session/paths.hpp"
#include "session/rtsp.hpp"
#include "session/session.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace nistream::session {

class RtspFrontDoor {
 public:
  struct Config {
    std::uint32_t incarnation = 1;
    /// wind priorities (0 most urgent). Control runs below the pumps and
    /// the dispatch task: under load, accepted streams keep their deadlines
    /// while new SETUPs queue — the paper's "data plane first" ordering.
    int ctl_priority = 140;
    int pump_priority = 120;
    /// Request-processing CPU: a fixed per-message cost plus a per-byte
    /// parse cost, charged to the control task.
    std::int64_t request_cycles = 1500;
    std::int64_t parse_cycles_per_byte = 4;
    RtpTailParams rtp{};
    /// Sessions not in kPlaying and silent this long are reaped (their
    /// reservation released) — half-open teardowns must not leak admission.
    sim::Time idle_timeout = sim::Time::sec(2);
    sim::Time reap_interval = sim::Time::ms(250);
    /// Storm-adaptive reaping: when more than this many sessions sit idle
    /// (non-playing) at once — a connection storm of half-open SETUPs — the
    /// effective idle timeout shrinks proportionally so the admission pool
    /// drains at storm speed instead of leaking for a full idle_timeout.
    /// 0 disables adaptation. Floor below.
    std::size_t reap_storm_threshold = 256;
    sim::Time min_idle_timeout = sim::Time::ms(100);
    /// Optional multi-tenant directory. When set, SETUP resolves the tenant
    /// from the request URI's first path segment, enforces that tenant's
    /// admission share on top of the global controller, and keys the
    /// violation monitor by (tenant, stream) so per-tenant QoS is separable.
    /// Null keeps the single-tenant behaviour (scope 0 everywhere).
    ingress::TenantDirectory* tenants = nullptr;
    /// Response channel back to each client: bounded retransmit so a
    /// vanished client cannot pin a response sender forever.
    net::TcpLiteSenderParams response_params{
        .window = 8, .rto = sim::Time::ms(20), .max_retx_rounds = 8};
  };

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t bad_requests = 0;       // 400s
    std::uint64_t setups_ok = 0;
    std::uint64_t rejected_453 = 0;       // admission denials (all causes)
    std::uint64_t tenant_rejected_453 = 0;  // of those: tenant budget denials
    std::uint64_t plays = 0;              // cold PLAY (pump started)
    std::uint64_t resumes = 0;            // PLAY on a paused session
    std::uint64_t pauses = 0;
    std::uint64_t teardowns = 0;
    std::uint64_t stale_454 = 0;
    std::uint64_t bad_state_455 = 0;
    std::uint64_t reaped_idle = 0;        // sessions the reaper collected
    std::uint64_t conn_closed = 0;        // sessions closed by control FIN
    std::uint64_t eos = 0;                // pumps that ran the media dry
    std::uint64_t frames_pumped = 0;
    /// Pump starts that found no SETUP-time reservation. Structurally zero:
    /// the bench's acceptance gate.
    std::uint64_t post_play_admission_violations = 0;
  };

  RtspFrontDoor(sim::Engine& engine, hw::EthernetSwitch& ether,
                rtos::WindKernel& kernel, dvcm::StreamService& service,
                net::UdpEndpoint& rtp_out,
                dwcs::AdmissionController& admission,
                dwcs::WindowViolationMonitor* monitor, Config config)
      : engine_{engine}, ether_{ether}, kernel_{kernel}, service_{service},
        rtp_out_{rtp_out}, admission_{admission}, monitor_{monitor},
        config_{config}, inbox_{engine},
        ctl_rx_{engine, ether, net::kNiStackCost,
                net::TcpLiteReceiver::DeliverFrom{
                    [this](const net::Packet& p, int peer, sim::Time at) {
                      on_ctl_bytes(p, peer, at);
                    }}},
        ctl_task_{kernel.spawn("rtsp-ctl", config.ctl_priority)} {
    ctl_rx_.set_on_peer_close(
        [this](int peer, sim::Time) { on_conn_close(peer); });
    control_loop().detach();
    reaper().detach();
  }

  RtspFrontDoor(const RtspFrontDoor&) = delete;
  RtspFrontDoor& operator=(const RtspFrontDoor&) = delete;

  /// The TcpLite port clients SETUP against.
  [[nodiscard]] int control_port() const { return ctl_rx_.port(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t live_sessions() const { return sessions_.size(); }
  [[nodiscard]] std::size_t live_pumps() const { return pumps_.size(); }
  [[nodiscard]] std::uint32_t incarnation() const {
    return config_.incarnation;
  }
  [[nodiscard]] const net::TcpLiteReceiver& control_rx() const {
    return ctl_rx_;
  }

  /// Idle timeout the reaper applies when `idle_depth` sessions sit
  /// non-playing at once. At or below the storm threshold it is the
  /// configured idle_timeout; past it the timeout shrinks in proportion to
  /// the overload (2x the threshold of half-open sessions → half the
  /// timeout), floored at min_idle_timeout so a brief legitimate pause is
  /// never collected instantly. Exposed for the storm-then-reap test.
  [[nodiscard]] sim::Time effective_idle_timeout(std::size_t idle_depth) const {
    if (config_.reap_storm_threshold == 0 ||
        idle_depth <= config_.reap_storm_threshold) {
      return config_.idle_timeout;
    }
    const double scaled =
        config_.idle_timeout.to_us() *
        static_cast<double>(config_.reap_storm_threshold) /
        static_cast<double>(idle_depth);
    sim::Time floor = config_.min_idle_timeout;
    if (config_.idle_timeout < floor) floor = config_.idle_timeout;
    const sim::Time eff = sim::Time::us(scaled);
    return eff < floor ? floor : eff;
  }

 private:
  /// One control connection: reassembly buffer, where responses go, and the
  /// sessions it owns (so a FIN tears them all down).
  struct Connection {
    MessageBuffer buf;
    int reply_port = -1;
    std::unique_ptr<net::TcpLiteSender> tx;
    std::vector<std::uint64_t> sessions;
  };

  /// A live pump: the session path, its gate, and the RTP state that must
  /// survive PAUSE/PLAY. Heap-allocated and keyed by pump_id because the
  /// pump coroutine holds pointers into it across suspensions.
  struct PumpContext {
    path::FramePath path;
    path::PathStats stats;
    path::PumpGate gate;
    path::RtpState rtp;
    rtos::Task* task = nullptr;
    explicit PumpContext(sim::Engine& engine)
        : path{engine}, gate{engine} {}
  };

  struct Pending {
    int peer;
    std::string text;
  };

  void on_ctl_bytes(const net::Packet& p, int peer, sim::Time) {
    // Control bytes ride in the packet body as a string chunk; bytes-on-wire
    // charging already happened in TcpLite. Reassemble per connection, then
    // hand complete messages to the control task.
    Connection& conn = conns_[peer];
    if (const auto* chunk =
            static_cast<const std::string*>(p.body.get())) {
      conn.buf.append(*chunk);
    }
    while (auto msg = conn.buf.next()) {
      inbox_.send(Pending{peer, std::move(*msg)});
    }
  }

  void on_conn_close(int peer) {
    const auto it = conns_.find(peer);
    if (it == conns_.end()) return;
    // Close every session the connection owns — the client FIN'd without
    // TEARDOWN (or after it; then the list is already empty).
    const std::vector<std::uint64_t> owned = std::move(it->second.sessions);
    for (const std::uint64_t sid : owned) {
      if (sessions_.contains(sid)) {
        close_session(sid);
        ++stats_.conn_closed;
      }
    }
    conns_.erase(peer);
  }

  sim::Coro control_loop() {
    for (;;) {
      Pending p = co_await inbox_.receive();
      ++stats_.requests;
      co_await ctl_task_.consume_cycles(
          config_.request_cycles +
          config_.parse_cycles_per_byte *
              static_cast<std::int64_t>(p.text.size()));
      // Learn the response destination even from requests that won't parse:
      // the 400 still has to reach the client.
      if (const auto rp = find_reply_port(p.text)) {
        conns_[p.peer].reply_port = *rp;
      }
      const auto req = parse_request(p.text);
      if (!req) {
        ++stats_.bad_requests;
        respond(p.peer, RtspResponse{.status = 400});
        continue;
      }
      handle(p.peer, *req);
    }
  }

  void handle(int peer, const RtspRequest& req) {
    switch (req.method) {
      case Method::kSetup: return handle_setup(peer, req);
      case Method::kPlay: return handle_play(peer, req);
      case Method::kPause: return handle_pause(peer, req);
      case Method::kTeardown: return handle_teardown(peer, req);
      case Method::kUnknown: break;
    }
    ++stats_.bad_requests;
    respond(peer, RtspResponse{.status = 400, .cseq = req.cseq});
  }

  void handle_setup(int peer, const RtspRequest& req) {
    // RTP framing rides every dispatched packet, so the reservation must
    // cover it — this is the one place control and admission meet.
    const dwcs::AdmissionController::Request adm{
        .tolerance = req.tolerance,
        .period = req.period,
        .mean_frame_bytes = req.frame_bytes + path::kRtpHeaderBytes};
    // Tenant budget first: a tenant over its share is denied even while the
    // NI as a whole has headroom — that is the flood-isolation contract.
    ingress::TenantId tid = 0;
    if (config_.tenants != nullptr) {
      tid = config_.tenants->resolve(ingress::tenant_from_uri(req.uri));
      if (!config_.tenants->would_admit(tid, admission_.link_load(adm),
                                        admission_.cpu_load(adm),
                                        admission_.headroom())) {
        config_.tenants->note_rejected(tid);
        ++stats_.rejected_453;
        ++stats_.tenant_rejected_453;
        respond(peer, RtspResponse{.status = 453, .cseq = req.cseq});
        return;
      }
    }
    if (!admission_.admit(adm)) {
      ++stats_.rejected_453;
      respond(peer, RtspResponse{.status = 453, .cseq = req.cseq});
      return;
    }
    if (config_.tenants != nullptr) {
      config_.tenants->reserve(tid, admission_.link_load(adm),
                               admission_.cpu_load(adm));
    }
    const std::uint64_t sid =
        make_session_id(config_.incarnation, ++session_counter_);
    Session s;
    s.id = sid;
    s.ctl_peer = peer;
    s.tenant = tid;
    s.adm = adm;
    s.rtp_port = req.rtp_port;
    s.rtcp_port = req.rtcp_port;
    s.frame_bytes = req.frame_bytes;
    s.period = req.period;
    s.frames = req.frames;
    s.last_activity = engine_.now();
    s.stream = service_.create_stream(
        dwcs::StreamParams{
            .tolerance = req.tolerance, .period = req.period, .lossy = true},
        req.rtp_port);
    if (config_.tenants != nullptr) {
      config_.tenants->bind_stream(s.stream, tid);
    }
    if (monitor_ != nullptr) {
      monitor_->add_stream({tid, s.stream}, req.tolerance);
    }
    conns_[peer].sessions.push_back(sid);
    sessions_.emplace(sid, s);
    ++stats_.setups_ok;
    respond(peer, RtspResponse{.status = 200,
                               .cseq = req.cseq,
                               .session_id = sid,
                               .stream = s.stream,
                               .has_stream = true});
  }

  void handle_play(int peer, const RtspRequest& req) {
    Session* s = find(req.session_id);
    if (s == nullptr) return stale(peer, req);
    s->last_activity = engine_.now();
    if (s->state == SessionState::kPlaying) {
      ++stats_.bad_state_455;
      respond(peer, RtspResponse{
                        .status = 455, .cseq = req.cseq,
                        .session_id = s->id});
      return;
    }
    if (s->paused && s->pump_id != 0) {
      // Resume the parked pump; sequence/timestamp continue where they were.
      pumps_.at(s->pump_id)->gate.resume();
      s->paused = false;
      s->state = SessionState::kPlaying;
      ++stats_.resumes;
    } else {
      start_pump(*s);
      ++stats_.plays;
    }
    respond(peer, RtspResponse{
                      .status = 200, .cseq = req.cseq, .session_id = s->id});
  }

  void handle_pause(int peer, const RtspRequest& req) {
    Session* s = find(req.session_id);
    if (s == nullptr) return stale(peer, req);
    s->last_activity = engine_.now();
    if (s->state != SessionState::kPlaying || s->pump_id == 0) {
      // PAUSE on a Ready session (never played, already paused, or media
      // done) is a state error per §A.1.
      ++stats_.bad_state_455;
      respond(peer, RtspResponse{
                        .status = 455, .cseq = req.cseq,
                        .session_id = s->id});
      return;
    }
    pumps_.at(s->pump_id)->gate.pause();
    s->state = SessionState::kReady;
    s->paused = true;
    ++stats_.pauses;
    respond(peer, RtspResponse{
                      .status = 200, .cseq = req.cseq, .session_id = s->id});
  }

  void handle_teardown(int peer, const RtspRequest& req) {
    Session* s = find(req.session_id);
    if (s == nullptr) return stale(peer, req);
    const std::uint64_t cseq = req.cseq;
    const std::uint64_t sid = s->id;
    close_session(sid);
    ++stats_.teardowns;
    respond(peer,
            RtspResponse{.status = 200, .cseq = cseq, .session_id = sid});
  }

  void stale(int peer, const RtspRequest& req) {
    ++stats_.stale_454;
    respond(peer, RtspResponse{.status = 454, .cseq = req.cseq});
  }

  [[nodiscard]] Session* find(std::uint64_t sid) {
    if (incarnation_of(sid) != config_.incarnation) return nullptr;
    const auto it = sessions_.find(sid);
    return it == sessions_.end() ? nullptr : &it->second;
  }

  void respond(int peer, const RtspResponse& resp) {
    Connection& conn = conns_[peer];
    if (conn.reply_port < 0) return;  // nowhere to answer; client is mute
    if (!conn.tx) {
      conn.tx = std::make_unique<net::TcpLiteSender>(
          engine_, ether_, net::kNiStackCost, conn.reply_port,
          config_.response_params);
    }
    if (conn.tx->closing() || conn.tx->aborted()) return;
    auto text = std::make_shared<std::string>(format_response(resp));
    net::Packet pkt;
    pkt.bytes = static_cast<std::uint32_t>(text->size());
    pkt.body = std::move(text);
    conn.tx->send(pkt);
  }

  void start_pump(Session& s) {
    if (s.stream == dwcs::kInvalidStream) {
      // No SETUP-time reservation backs this PLAY. Cannot happen by
      // construction; counted so the bench can assert it stayed impossible.
      ++stats_.post_play_admission_violations;
      return;
    }
    const std::uint64_t pid = ++pump_counter_;
    auto ctx = std::make_unique<PumpContext>(engine_);
    ctx->rtp.ssrc = static_cast<std::uint32_t>(s.id ^ (s.id >> 32));
    ctx->path = session_path_synthetic(engine_, acquire_task(*ctx), service_,
                                       ctx->rtp, rtp_out_, s.rtcp_port,
                                       config_.rtp);
    PumpContext* raw = ctx.get();
    pumps_.emplace(pid, std::move(ctx));
    s.pump_id = pid;
    s.state = SessionState::kPlaying;
    s.ever_played = true;
    s.paused = false;
    pump_wrapper(s.id, pid, raw, s.frames, s.frame_bytes, s.stream, s.period)
        .detach();
  }

  rtos::Task& acquire_task(PumpContext& ctx) {
    if (free_tasks_.empty()) {
      ctx.task = &kernel_.spawn(
          "rtsp-pump-" + std::to_string(++task_counter_),
          config_.pump_priority);
    } else {
      ctx.task = free_tasks_.back();
      free_tasks_.pop_back();
    }
    return *ctx.task;
  }

  sim::Coro pump_wrapper(std::uint64_t sid, std::uint64_t pid,
                         PumpContext* ctx, std::uint64_t frames,
                         std::uint32_t bytes, dwcs::StreamId stream,
                         sim::Time period) {
    auto source = path::fixed_frame_source(frames, bytes, {}, stream,
                                           path::Provenance::kSynthetic);
    co_await path::pump(
        ctx->path, std::move(source),
        path::Pacing{.burst_frames = 1,
                     .gap = period,
                     .where = path::Pacing::Where::kBeforeFrame,
                     .grid = true},
        ctx->stats, {}, &ctx->gate);
    on_pump_done(sid, pid);
    // Past this point the coroutine frame must touch only locals: the
    // PumpContext was just destroyed.
  }

  void on_pump_done(std::uint64_t sid, std::uint64_t pid) {
    const auto it = pumps_.find(pid);
    if (it == pumps_.end()) return;
    stats_.frames_pumped += it->second->stats.frames_produced;
    free_tasks_.push_back(it->second->task);
    pumps_.erase(it);
    const auto sit = sessions_.find(sid);
    if (sit != sessions_.end() && sit->second.pump_id == pid) {
      sit->second.pump_id = 0;
      if (sit->second.state == SessionState::kPlaying) {
        // Media ran dry (not a stop): back to Ready until TEARDOWN or reap.
        sit->second.state = SessionState::kReady;
        ++stats_.eos;
      }
      sit->second.paused = false;
      sit->second.last_activity = engine_.now();
    }
  }

  /// Tear down one session: stop its pump (the pump's own completion path
  /// does the context bookkeeping), release the reservation, purge its ring
  /// backlog, and forget it. The dense scheduler stream id itself is never
  /// reused — create_stream ids are append-only, as everywhere else.
  void close_session(std::uint64_t sid) {
    const auto it = sessions_.find(sid);
    if (it == sessions_.end()) return;
    Session& s = it->second;
    if (s.pump_id != 0) pumps_.at(s.pump_id)->gate.stop();
    admission_.release(s.adm);
    if (config_.tenants != nullptr) {
      config_.tenants->release(s.tenant, admission_.link_load(s.adm),
                               admission_.cpu_load(s.adm));
    }
    // Retire BEFORE purging: the frames the purge drops (and any final
    // in-flight frame the stopping pump still enqueues) were abandoned by
    // the closing client — they are churn cost, not a scheduling miss.
    if (monitor_ != nullptr) monitor_->retire({s.tenant, s.stream});
    service_.scheduler().purge_stream(s.stream);
    auto cit = conns_.find(s.ctl_peer);
    if (cit != conns_.end()) {
      std::erase(cit->second.sessions, sid);
    }
    sessions_.erase(it);
  }

  /// Collect sessions that are not playing and have been silent past the
  /// idle timeout: half-open clients (vanished after SETUP or after their
  /// media finished) must not hold admission share forever. The threshold
  /// adapts to storm depth: a SYN-flood of half-open SETUPs shows up as a
  /// deep idle population, and the deeper it is, the faster each member
  /// times out (effective_idle_timeout above).
  sim::Coro reaper() {
    for (;;) {
      co_await sim::Delay{engine_, config_.reap_interval};
      std::size_t idle_depth = 0;
      for (const auto& [sid, s] : sessions_) {
        idle_depth += s.state != SessionState::kPlaying;
      }
      const sim::Time timeout = effective_idle_timeout(idle_depth);
      reap_scratch_.clear();
      for (const auto& [sid, s] : sessions_) {
        if (s.state == SessionState::kPlaying) continue;
        if (engine_.now() - s.last_activity >= timeout) {
          reap_scratch_.push_back(sid);
        }
      }
      for (const std::uint64_t sid : reap_scratch_) {
        close_session(sid);
        ++stats_.reaped_idle;
      }
    }
  }

  sim::Engine& engine_;
  hw::EthernetSwitch& ether_;
  rtos::WindKernel& kernel_;
  dvcm::StreamService& service_;
  net::UdpEndpoint& rtp_out_;
  dwcs::AdmissionController& admission_;
  dwcs::WindowViolationMonitor* monitor_;
  Config config_;
  Stats stats_;
  sim::Mailbox<Pending> inbox_;
  net::TcpLiteReceiver ctl_rx_;
  rtos::Task& ctl_task_;
  // std::map throughout: deterministic iteration order is what makes a
  // same-seed churn replay byte-identical.
  std::map<int, Connection> conns_;
  std::map<std::uint64_t, Session> sessions_;
  std::map<std::uint64_t, std::unique_ptr<PumpContext>> pumps_;
  std::vector<rtos::Task*> free_tasks_;
  std::vector<std::uint64_t> reap_scratch_;
  std::uint32_t session_counter_ = 0;
  std::uint64_t pump_counter_ = 0;
  std::uint64_t task_counter_ = 0;
};

}  // namespace nistream::session
