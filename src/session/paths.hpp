// RTP-tailed variants of the paper's producer paths (see path/paths.hpp).
//
// An RTSP session's data plane is an ordinary Path A/B/C producer with an
// RTP tail spliced in between segmentation and the scheduler ring:
//
//   storage -> segment -> rtp -> rtcp -> [bus] -> enqueue
//
// The RTP packetizer charges the producer CPU and grows the frame by the
// header; the RTCP stage piggybacks periodic sender reports onto the frame
// clock over a side UDP port. The scheduler then paces RTP-framed packets
// exactly as it paces raw ones — DWCS neither knows nor cares what framing
// rides inside a dispatch, which is the point: session control composes
// onto the existing datapath instead of forking it.
#pragma once

#include "dvcm/stream_service.hpp"
#include "hostos/filesystem.hpp"
#include "hostos/host.hpp"
#include "hw/pci.hpp"
#include "hw/scsi_disk.hpp"
#include "net/udp.hpp"
#include "path/frame_path.hpp"
#include "path/paths.hpp"
#include "path/rtp_stages.hpp"
#include "rtos/wind.hpp"

namespace nistream::session {

/// Knobs of the RTP tail, shared by every variant.
struct RtpTailParams {
  std::int64_t rtp_cycles_per_packet = 700;  // header build on the NI CPU
  std::uint32_t ticks_per_frame = path::kRtpTicksPerFrame;
  sim::Time rtcp_interval = sim::Time::ms(500);
  sim::Time backoff = path::kEnqueueBackoff;
};

/// Synthetic session path (no storage stage): segment -> rtp -> rtcp ->
/// enqueue, all on one NI task. This is what the front door pumps — churn
/// workloads stress session lifecycle, not disk mechanics.
inline path::FramePath session_path_synthetic(sim::Engine& engine,
                                              rtos::Task& task,
                                              dvcm::StreamService& service,
                                              path::RtpState& rtp,
                                              net::UdpEndpoint& rtcp_out,
                                              int rtcp_port,
                                              const RtpTailParams& params) {
  path::FramePath p{engine, "session-synthetic"};
  p.stage<path::SegmentStage<rtos::Task>>(task,
                                          path::kSegmentationCyclesPerFrame)
      .stage<path::RtpPacketizeStage<rtos::Task>>(
          task, rtp, params.rtp_cycles_per_packet, params.ticks_per_frame)
      .stage<path::RtcpReportStage>(engine, rtcp_out, rtcp_port, rtp,
                                    params.rtcp_interval)
      .stage<path::EnqueueStage>(engine, service, params.backoff);
  return p;
}

/// Path A with an RTP tail: host filesystem -> host-process segmentation +
/// packetization -> host scheduler ring.
template <typename Fs>
path::FramePath session_path_a(hostos::HostMachine& host,
                               hostos::Process& proc, Fs& fs,
                               dvcm::StreamService& service,
                               path::RtpState& rtp,
                               net::UdpEndpoint& rtcp_out, int rtcp_port,
                               const RtpTailParams& params) {
  path::FramePath p{host.engine(), "session-a"};
  p.template stage<path::FsStage<Fs>>(fs, &host.scheduler(), &proc.thread())
      .template stage<path::SegmentStage<hostos::Process>>(
          proc, path::kSegmentationCyclesPerFrame)
      .template stage<path::RtpPacketizeStage<hostos::Process>>(
          proc, rtp, params.rtp_cycles_per_packet, params.ticks_per_frame)
      .template stage<path::RtcpReportStage>(host.engine(), rtcp_out,
                                             rtcp_port, rtp,
                                             params.rtcp_interval)
      .template stage<path::EnqueueStage>(host.engine(), service,
                                          params.backoff);
  return p;
}

/// Path B with an RTP tail: NI disk -> wind-task segmentation +
/// packetization -> PCI p2p DMA -> scheduler-NI ring. RTP is built before
/// the bus hop so the DMA moves wire-format bytes.
inline path::FramePath session_path_b(sim::Engine& engine, hw::ScsiDisk& disk,
                                      rtos::Task& task, hw::PciBus& bus,
                                      dvcm::StreamService& service,
                                      path::RtpState& rtp,
                                      net::UdpEndpoint& rtcp_out,
                                      int rtcp_port,
                                      const RtpTailParams& params) {
  path::FramePath p{engine, "session-b"};
  p.stage<path::DiskStage<hw::ScsiDisk>>(disk)
      .stage<path::SegmentStage<rtos::Task>>(
          task, path::kSegmentationCyclesPerFrame)
      .stage<path::RtpPacketizeStage<rtos::Task>>(
          task, rtp, params.rtp_cycles_per_packet, params.ticks_per_frame)
      .stage<path::RtcpReportStage>(engine, rtcp_out, rtcp_port, rtp,
                                    params.rtcp_interval)
      .stage<path::PciDmaStage>(bus)
      .stage<path::EnqueueStage>(engine, service, params.backoff);
  return p;
}

/// Path C with an RTP tail: NI disk -> same-card segmentation +
/// packetization -> ring.
inline path::FramePath session_path_c(sim::Engine& engine, hw::ScsiDisk& disk,
                                      rtos::Task& task,
                                      dvcm::StreamService& service,
                                      path::RtpState& rtp,
                                      net::UdpEndpoint& rtcp_out,
                                      int rtcp_port,
                                      const RtpTailParams& params) {
  path::FramePath p{engine, "session-c"};
  p.stage<path::DiskStage<hw::ScsiDisk>>(disk)
      .stage<path::SegmentStage<rtos::Task>>(
          task, path::kSegmentationCyclesPerFrame)
      .stage<path::RtpPacketizeStage<rtos::Task>>(
          task, rtp, params.rtp_cycles_per_packet, params.ticks_per_frame)
      .stage<path::RtcpReportStage>(engine, rtcp_out, rtcp_port, rtp,
                                    params.rtcp_interval)
      .stage<path::EnqueueStage>(engine, service, params.backoff);
  return p;
}

}  // namespace nistream::session
