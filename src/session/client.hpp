// session::RtspChurnClient — one scripted RTSP client lifecycle.
//
// Four behaviors, matching the churn bench's workload axes:
//  * kPolite      — SETUP, PLAY, wait out the media, TEARDOWN, FIN.
//  * kSlowStart   — same protocol, but the SETUP request dribbles in over
//                   many TCP segments (MessageBuffer reassembly stress).
//  * kPauseResume — PAUSE mid-media and PLAY again before finishing.
//  * kVanish      — SETUP + PLAY, then silence forever: no TEARDOWN, no
//                   FIN. The server's idle reaper must recover the session
//                   (half-open teardown).
//
// The RTP data plane lands on a shared apps::MpegClient — the same client
// model the synthetic workloads use (satellite: one client model, not two).
// Control rides TcpLite both ways: this client owns its request sender and
// its response receiver, and names the latter's port in Reply-Port.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "apps/client.hpp"
#include "hw/ethernet.hpp"
#include "net/tcplite.hpp"
#include "net/udp.hpp"
#include "session/rtsp.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace nistream::session {

class RtspChurnClient {
 public:
  enum class Behavior { kPolite, kSlowStart, kPauseResume, kVanish };

  struct Config {
    Behavior behavior = Behavior::kPolite;
    sim::Time arrival = sim::Time::zero();  // when this client SETUPs
    /// Request URI; a tenant-aware server reads the first path segment as
    /// the tenant name ("rtsp://ni/acme/movie" → tenant "acme").
    std::string uri = "rtsp://ni/stream";
    std::uint64_t frames = 8;
    sim::Time period = sim::Time::ms(33);
    dwcs::WindowConstraint tolerance{1, 4};
    std::uint32_t frame_bytes = 1000;
    /// kSlowStart: the SETUP text is sent in this many TCP segments with
    /// `dribble_gap` between them.
    int slow_start_chunks = 4;
    sim::Time dribble_gap = sim::Time::ms(40);
    /// kPauseResume: PAUSE this long after PLAY, resume after pause_for.
    sim::Time pause_after = sim::Time::ms(100);
    sim::Time pause_for = sim::Time::ms(150);
    /// Margin past the nominal media duration before TEARDOWN.
    sim::Time drain_slack = sim::Time::ms(500);
  };

  struct Outcome {
    bool responded_setup = false;
    bool admitted = false;
    bool completed = false;  // lifecycle script ran to its end
    int setup_status = 0;
    double setup_latency_ms = 0;
    std::uint64_t cseq_errors = 0;
  };

  RtspChurnClient(sim::Engine& engine, hw::EthernetSwitch& ether,
                  int control_port, apps::MpegClient& media, int rtcp_port,
                  Config config)
      : engine_{engine}, config_{config}, media_{media},
        rtcp_port_{rtcp_port}, responses_{engine},
        resp_rx_{engine, ether, net::kHostStackCost,
                 net::TcpLiteReceiver::DeliverFrom{
                     [this](const net::Packet& p, int, sim::Time) {
                       on_response_bytes(p);
                     }}},
        ctl_tx_{engine, ether, net::kHostStackCost, control_port,
                net::TcpLiteSenderParams{.window = 8,
                                         .rto = sim::Time::ms(20),
                                         .max_retx_rounds = 8}} {}

  RtspChurnClient(const RtspChurnClient&) = delete;
  RtspChurnClient& operator=(const RtspChurnClient&) = delete;

  /// Kick off the scripted lifecycle (returns immediately; the script runs
  /// on the engine). The client object must outlive the run.
  void start() { run().detach(); }

  [[nodiscard]] const Outcome& outcome() const { return outcome_; }
  [[nodiscard]] std::uint64_t session_id() const { return session_id_; }
  [[nodiscard]] std::uint64_t stream() const { return stream_; }

 private:
  void on_response_bytes(const net::Packet& p) {
    if (const auto* chunk = static_cast<const std::string*>(p.body.get())) {
      buf_.append(*chunk);
    }
    while (auto msg = buf_.next()) {
      if (auto resp = parse_response(*msg)) responses_.send(*resp);
    }
  }

  void send_text(const std::string& text) {
    auto body = std::make_shared<std::string>(text);
    net::Packet pkt;
    pkt.bytes = static_cast<std::uint32_t>(body->size());
    pkt.body = std::move(body);
    ctl_tx_.send(pkt);
  }

  /// kSlowStart sends the text in pieces with a gap between segments — the
  /// server sees a request trickling across many TcpLite deliveries.
  sim::Coro send_dribbled(std::string text) {
    const std::size_t n =
        static_cast<std::size_t>(std::max(config_.slow_start_chunks, 1));
    const std::size_t step = (text.size() + n - 1) / n;
    for (std::size_t pos = 0; pos < text.size(); pos += step) {
      if (pos != 0) co_await sim::Delay{engine_, config_.dribble_gap};
      send_text(text.substr(pos, step));
    }
  }

  /// Send `req` and await the response to its cseq (responses come back in
  /// order on the control connection; a mismatch is counted, not fatal).
  sim::Coro transact(RtspRequest req, RtspResponse* out) {
    req.reply_port = resp_rx_.port();
    req.cseq = ++cseq_;
    const std::string text = format_request(req);
    if (config_.behavior == Behavior::kSlowStart &&
        req.method == Method::kSetup) {
      co_await send_dribbled(text);
    } else {
      send_text(text);
    }
    RtspResponse resp = co_await responses_.receive();
    if (resp.cseq != req.cseq) ++outcome_.cseq_errors;
    *out = resp;
  }

  sim::Coro run() {
    co_await sim::Delay{engine_, config_.arrival};

    RtspRequest setup;
    setup.method = Method::kSetup;
    setup.uri = config_.uri;
    setup.rtp_port = media_.port();
    setup.rtcp_port = rtcp_port_;
    setup.tolerance = config_.tolerance;
    setup.period = config_.period;
    setup.frame_bytes = config_.frame_bytes;
    setup.frames = config_.frames;
    const sim::Time t0 = engine_.now();
    RtspResponse resp;
    co_await transact(setup, &resp);
    outcome_.responded_setup = true;
    outcome_.setup_status = resp.status;
    outcome_.setup_latency_ms = (engine_.now() - t0).to_ms();
    if (resp.status != 200) {
      // 453: over capacity. The polite thing — and what keeps the server's
      // connection table clean — is to FIN the control channel and go away.
      ctl_tx_.close();
      outcome_.completed = true;
      co_return;
    }
    outcome_.admitted = true;
    session_id_ = resp.session_id;
    stream_ = resp.stream;

    RtspRequest play;
    play.method = Method::kPlay;
    play.session_id = session_id_;
    co_await transact(play, &resp);

    if (config_.behavior == Behavior::kVanish) {
      // Half-open: never speaks again, never closes. The server's reaper
      // owns this session's fate now.
      outcome_.completed = true;
      co_return;
    }

    const sim::Time media =
        config_.period * static_cast<std::int64_t>(config_.frames) +
        config_.drain_slack;
    if (config_.behavior == Behavior::kPauseResume) {
      co_await sim::Delay{engine_, config_.pause_after};
      RtspRequest pause;
      pause.method = Method::kPause;
      pause.session_id = session_id_;
      co_await transact(pause, &resp);
      if (resp.status == 200) media_.notify_pause(stream_);
      co_await sim::Delay{engine_, config_.pause_for};
      RtspRequest resume;
      resume.method = Method::kPlay;
      resume.session_id = session_id_;
      co_await transact(resume, &resp);
      if (resp.status == 200) media_.notify_resume(stream_);
    }
    co_await sim::Delay{engine_, media};

    RtspRequest teardown;
    teardown.method = Method::kTeardown;
    teardown.session_id = session_id_;
    co_await transact(teardown, &resp);
    media_.notify_end(stream_, engine_.now());
    ctl_tx_.close();
    outcome_.completed = true;
  }

  sim::Engine& engine_;
  Config config_;
  apps::MpegClient& media_;
  int rtcp_port_;
  MessageBuffer buf_;
  sim::Mailbox<RtspResponse> responses_;
  net::TcpLiteReceiver resp_rx_;
  net::TcpLiteSender ctl_tx_;
  Outcome outcome_;
  std::uint64_t cseq_ = 0;
  std::uint64_t session_id_ = 0;
  std::uint64_t stream_ = 0;
};

}  // namespace nistream::session
