// The DWCS media-scheduler DVCM extension (§3.1 of the paper).
//
// Installs the stream-scheduling service on the NI: registers the media-
// scheduling instruction opcodes (create stream, enqueue frame, attach
// client, query stats), spawns the scheduler task at high wind priority, and
// binds it to one of the board's Ethernet ports. Host applications drive it
// through VcmHostApi; NI-local producers (path C: frames read from the
// board's own disks) call the extension's methods directly — no bus crossing.
#pragma once

#include <cstdint>
#include <memory>

#include "dvcm/runtime.hpp"
#include "dvcm/stream_service.hpp"
#include "hw/calibration.hpp"
#include "net/udp.hpp"

namespace nistream::dvcm {

/// Instruction opcodes of the DWCS extension.
inline constexpr InstructionId kDwcsCreateStream = kExtensionBase + 1;
inline constexpr InstructionId kDwcsEnqueueFrame = kExtensionBase + 2;
inline constexpr InstructionId kDwcsQueryStats = kExtensionBase + 3;

/// Payload of kDwcsCreateStream.
struct CreateStreamRequest {
  dwcs::StreamParams params;
  int client_port = -1;
};

/// Payload of kDwcsEnqueueFrame (w0 carries the stream id).
struct EnqueueFrameRequest {
  std::uint32_t bytes = 0;
  mpeg::FrameType type = mpeg::FrameType::kI;
};

class DwcsExtension final : public ExtensionModule {
 public:
  /// The scheduler task outranks everything else on the board ("the NI
  /// Operating System is dedicated to running the scheduler", §4.2.3).
  static constexpr int kSchedulerTaskPriority = 50;

  DwcsExtension(StreamService::Config config, hw::EthernetSwitch& ether,
                const hw::Calibration& cal = {})
      : config_{config}, ether_{ether}, cal_{cal} {}

  [[nodiscard]] const char* name() const override { return "dwcs-media-sched"; }

  void install(VcmRuntime& runtime) override {
    hw::NicBoard& board = runtime.board();
    service_ = std::make_unique<StreamService>(
        board.engine(), config_, board.cpu(), cal_.ni_int, cal_.ni_softfp,
        &board.memory());
    endpoint_ = std::make_unique<net::UdpEndpoint>(
        board.engine(), ether_, cal_.ethernet.stack_traversal,
        net::UdpEndpoint::Receiver{});

    runtime.registry().add(kDwcsCreateStream, [this, &runtime](
                                                  const hw::I2oMessage& m) {
      const auto req = std::static_pointer_cast<CreateStreamRequest>(m.payload);
      const auto id = service_->create_stream(req->params, req->client_port);
      runtime.reply(m, hw::I2oMessage{.w0 = id});
    });
    runtime.registry().add(kDwcsEnqueueFrame, [this](const hw::I2oMessage& m) {
      const auto req = std::static_pointer_cast<EnqueueFrameRequest>(m.payload);
      (void)service_->enqueue(static_cast<dwcs::StreamId>(m.w0), req->bytes,
                              req->type);
    });
    runtime.registry().add(kDwcsQueryStats, [this, &runtime](
                                                const hw::I2oMessage& m) {
      const auto& st =
          service_->scheduler().stats(static_cast<dwcs::StreamId>(m.w0));
      runtime.reply(m, hw::I2oMessage{.w0 = st.bytes_sent,
                                      .w1 = st.serviced_on_time});
    });

    rtos::Task& task =
        runtime.kernel().spawn("tDwcsSched", kSchedulerTaskPriority);
    service_->run(task, *endpoint_).detach();
  }

  /// Direct access for NI-local producers and for the experiment harnesses.
  [[nodiscard]] StreamService& service() { return *service_; }
  [[nodiscard]] net::UdpEndpoint& endpoint() { return *endpoint_; }

 private:
  StreamService::Config config_;
  hw::EthernetSwitch& ether_;
  hw::Calibration cal_;
  std::unique_ptr<StreamService> service_;
  std::unique_ptr<net::UdpEndpoint> endpoint_;
};

}  // namespace nistream::dvcm
