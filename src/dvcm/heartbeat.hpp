// DVCM heartbeat extension + host-side watchdog.
//
// The liveness protocol the paper's testbed never needed: the host
// periodically invokes the heartbeat instruction; the NI's dispatch task acks
// it as an unsolicited outbound notification (w2 == 0 — call cookies start at
// 1, so the acks bypass the reply pump's pending-call matching). The ack
// carries the probe sequence number and the board's incarnation counter, so
// the watchdog can distinguish "recovered from a hang, state intact" from
// "rebooted, state wiped and needs re-admission".
//
// Because the ack rides the normal path — dispatch task, board CPU charges,
// outbound FIFO — every real failure mode silences it for the right reason:
// a crashed board discards the probe (VcmRuntime's alive() gate), a hung one
// never schedules the dispatch task's reply in time, an I2O fault eats the
// message in either direction. The watchdog cannot be fooled by a dead board
// that "still would have answered".
//
// The host watchdog sends a probe, waits one timeout, and checks the ack
// arrived; `max_missed` consecutive silent probes trip it (so a single
// dropped message never triggers failover). While tripped it keeps probing
// with exponential backoff, and an ack — whenever the board comes back —
// fires the recovery callback with the board's current incarnation.
#pragma once

#include <cstdint>
#include <functional>

#include "dvcm/host_api.hpp"
#include "dvcm/instruction.hpp"
#include "dvcm/runtime.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nistream::dvcm {

/// Heartbeat instruction id (extension range, above the TCP-offload block).
inline constexpr InstructionId kHeartbeatPing = kExtensionBase + 0x400;

/// NI-side half: acks each probe with (w0 = probe seq, w1 = incarnation).
class HeartbeatExtension final : public ExtensionModule {
 public:
  [[nodiscard]] const char* name() const override { return "heartbeat"; }

  void install(VcmRuntime& runtime) override {
    runtime_ = &runtime;
    runtime.registry().add(kHeartbeatPing, [this](const hw::I2oMessage& m) {
      ++acked_;
      hw::I2oMessage ack;
      ack.function = kHeartbeatPing | kReplyFlag;
      ack.w0 = m.w0;  // probe sequence number
      ack.w1 = runtime_->board().health() != nullptr
                   ? runtime_->board().health()->incarnation()
                   : 0;
      // w2 stays 0: unsolicited notification, not a call reply.
      runtime_->board().i2o().post_outbound(std::move(ack));
    });
  }

  [[nodiscard]] std::uint64_t acked() const { return acked_; }

 private:
  VcmRuntime* runtime_ = nullptr;
  std::uint64_t acked_ = 0;
};

struct WatchdogConfig {
  sim::Time interval = sim::Time::ms(100);  // probe period while healthy
  sim::Time timeout = sim::Time::ms(50);    // silence per probe = one miss
  int max_missed = 3;                       // consecutive misses to trip
  double backoff_factor = 2.0;              // probe-interval growth once tripped
  sim::Time max_backoff = sim::Time::ms(1600);
  /// Delay before the first probe. A cluster runs one watchdog per board;
  /// staggering their phases keeps N probe bursts from landing on the same
  /// simulation instant (and, on real hardware, the same PCI cycle).
  sim::Time initial_delay = sim::Time::zero();
};

/// Host-side half. Owns the probe loop; reports through two callbacks:
///   on_trip(now)                — max_missed consecutive probes unanswered
///   on_recovery(now, incarnation) — first ack after a trip
class HostWatchdog {
 public:
  using TripHandler = std::function<void(sim::Time)>;
  using RecoveryHandler = std::function<void(sim::Time, std::uint64_t)>;

  HostWatchdog(sim::Engine& engine, VcmHostApi& api,
               const WatchdogConfig& config = {})
      : engine_{engine}, api_{api}, config_{config} {
    api_.set_notification_handler([this](const hw::I2oMessage& m) {
      if (m.function != (kHeartbeatPing | kReplyFlag)) return;
      last_ack_seq_ = m.w0;
      last_ack_incarnation_ = m.w1;
      ++acks_;
    });
  }

  HostWatchdog(const HostWatchdog&) = delete;
  HostWatchdog& operator=(const HostWatchdog&) = delete;

  void set_on_trip(TripHandler h) { on_trip_ = std::move(h); }
  void set_on_recovery(RecoveryHandler h) { on_recovery_ = std::move(h); }

  /// Spawn the probe loop. Runs until stop().
  void start() {
    running_ = true;
    [](HostWatchdog& self) -> sim::Coro {
      if (self.config_.initial_delay > sim::Time::zero()) {
        co_await sim::Delay{self.engine_, self.config_.initial_delay};
      }
      while (self.running_) {
        const std::uint64_t seq = ++self.probe_seq_;
        co_await self.api_.invoke(kHeartbeatPing, /*w0=*/seq);
        co_await sim::Delay{self.engine_, self.config_.timeout};
        if (!self.running_) co_return;
        if (self.last_ack_seq_ >= seq) {
          self.on_ack();
        } else {
          self.on_miss();
        }
        const sim::Time gap =
            self.probe_gap_ > self.config_.timeout
                ? self.probe_gap_ - self.config_.timeout
                : sim::Time::zero();
        co_await sim::Delay{self.engine_, gap};
      }
    }(*this).detach();
  }

  void stop() { running_ = false; }

  [[nodiscard]] bool tripped() const { return tripped_; }
  [[nodiscard]] int consecutive_missed() const { return missed_; }
  [[nodiscard]] std::uint64_t probes_sent() const { return probe_seq_; }
  [[nodiscard]] std::uint64_t acks_received() const { return acks_; }
  [[nodiscard]] std::uint64_t trips() const { return trips_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] sim::Time tripped_at() const { return tripped_at_; }
  [[nodiscard]] sim::Time recovered_at() const { return recovered_at_; }
  [[nodiscard]] std::uint64_t last_ack_incarnation() const {
    return last_ack_incarnation_;
  }
  [[nodiscard]] const WatchdogConfig& config() const { return config_; }

 private:
  void on_ack() {
    missed_ = 0;
    if (tripped_) {
      tripped_ = false;
      ++recoveries_;
      recovered_at_ = engine_.now();
      probe_gap_ = config_.interval;
      if (on_recovery_) on_recovery_(engine_.now(), last_ack_incarnation_);
    }
  }

  void on_miss() {
    ++missed_;
    if (!tripped_ && missed_ >= config_.max_missed) {
      tripped_ = true;
      ++trips_;
      tripped_at_ = engine_.now();
      if (on_trip_) on_trip_(engine_.now());
    }
    if (tripped_) {
      // Exponential backoff: a dead board should not eat probe bandwidth.
      const double next_us = probe_gap_.to_us() * config_.backoff_factor;
      probe_gap_ = next_us < config_.max_backoff.to_us()
                       ? sim::Time::us(next_us)
                       : config_.max_backoff;
    }
  }

  sim::Engine& engine_;
  VcmHostApi& api_;
  WatchdogConfig config_;
  TripHandler on_trip_;
  RecoveryHandler on_recovery_;
  sim::Time probe_gap_ = config_.interval;
  std::uint64_t probe_seq_ = 0;
  std::uint64_t last_ack_seq_ = 0;
  std::uint64_t last_ack_incarnation_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t trips_ = 0;
  std::uint64_t recoveries_ = 0;
  sim::Time tripped_at_ = sim::Time::zero();
  sim::Time recovered_at_ = sim::Time::zero();
  int missed_ = 0;
  bool tripped_ = false;
  bool running_ = false;
};

}  // namespace nistream::dvcm
