// Host-side DVCM API.
//
// The DVCM "appears to the application program as a memory-mapped device"
// (paper §2): invoking an instruction writes a message frame to the card
// with PIO (charged to the calling process when one is given) and, for
// call-style instructions, waits for the card's reply on the outbound FIFO.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "dvcm/instruction.hpp"
#include "hostos/host.hpp"
#include "hw/i2o.hpp"
#include "sim/coro.hpp"

namespace nistream::dvcm {

class VcmHostApi {
 public:
  VcmHostApi(sim::Engine& engine, hw::I2oChannel& channel)
      : engine_{engine}, channel_{channel} {
    // Reply pump: demultiplexes card replies to pending transactions.
    [](VcmHostApi& self) -> sim::Coro {
      for (;;) {
        const hw::I2oMessage m = co_await self.channel_.outbound().receive();
        const auto it = self.pending_.find(m.w2);
        if (it == self.pending_.end()) {
          // Unsolicited notification (card-initiated, cookie 0 by
          // convention — call cookies start at 1). Heartbeat acks and other
          // async card events arrive here.
          if (self.notification_handler_) self.notification_handler_(m);
          continue;
        }
        it->second->reply = m;
        it->second->done = true;
        if (it->second->waiter) it->second->waiter.resume();
      }
    }(*this).detach();
  }

  VcmHostApi(const VcmHostApi&) = delete;
  VcmHostApi& operator=(const VcmHostApi&) = delete;

  /// Fire-and-forget instruction with scalar argument + bulk payload. When
  /// `proc` is given the PIO posting cost is charged to it (so invocations
  /// compete for host CPU); otherwise the cost appears only as latency.
  ///
  /// API shape note: the message frame is assembled *inside* this plain
  /// function from scalar/shared_ptr arguments, and only the cost-waiting is
  /// a coroutine. Passing an I2oMessage aggregate temporary through a
  /// co_await expression loses its shared_ptr payload reference under
  /// GCC 12's coroutine transform (use-after-free, caught by ASan via the
  /// TcpOffload tests) — hence no I2oMessage crosses this API.
  [[nodiscard]] sim::Coro invoke(InstructionId id, std::uint64_t w0 = 0,
                                 std::shared_ptr<void> payload = nullptr,
                                 hostos::Process* proc = nullptr,
                                 std::uint64_t w1 = 0) {
    hw::I2oMessage msg;
    msg.function = id;
    msg.w0 = w0;
    msg.w1 = w1;
    msg.payload = std::move(payload);
    const sim::Time cost = channel_.post_inbound(std::move(msg));
    ++invocations_;
    return wait_cost(cost, proc);
  }

  /// Call-style instruction: posts the request and suspends until the card
  /// replies. Usage:
  ///   hw::I2oMessage reply;
  ///   co_await api.call(id, &reply, w0, payload, &proc);
  [[nodiscard]] sim::Coro call(InstructionId id, hw::I2oMessage* reply,
                               std::uint64_t w0 = 0,
                               std::shared_ptr<void> payload = nullptr,
                               hostos::Process* proc = nullptr,
                               std::uint64_t w1 = 0) {
    assert(reply != nullptr);
    const std::uint64_t cookie = next_cookie_++;
    hw::I2oMessage msg;
    msg.function = id;
    msg.w0 = w0;
    msg.w1 = w1;
    msg.w2 = cookie;
    msg.payload = std::move(payload);
    auto txn = std::make_unique<Transaction>();
    Transaction* t = txn.get();
    pending_.emplace(cookie, std::move(txn));

    const sim::Time cost = channel_.post_inbound(std::move(msg));
    ++invocations_;
    return wait_reply(cost, proc, t, cookie, reply);
  }

  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }

  /// Receive card-initiated messages that match no pending call (w2 == 0 by
  /// convention). Without a handler they are silently discarded, as before.
  using NotificationHandler = std::function<void(const hw::I2oMessage&)>;
  void set_notification_handler(NotificationHandler h) {
    notification_handler_ = std::move(h);
  }

 private:
  struct Transaction {
    bool done = false;
    hw::I2oMessage reply;
    std::coroutine_handle<> waiter;
  };
  struct Wait {
    Transaction* txn;
    bool await_ready() const noexcept { return txn->done; }
    void await_suspend(std::coroutine_handle<> h) const { txn->waiter = h; }
    void await_resume() const noexcept {}
  };

  sim::Coro wait_cost(sim::Time cost, hostos::Process* proc) {
    if (proc) {
      co_await proc->consume(cost);
    } else {
      co_await sim::Delay{engine_, cost};
    }
  }

  sim::Coro wait_reply(sim::Time cost, hostos::Process* proc, Transaction* t,
                       std::uint64_t cookie, hw::I2oMessage* reply) {
    if (proc) {
      co_await proc->consume(cost);
    } else {
      co_await sim::Delay{engine_, cost};
    }
    co_await Wait{t};
    *reply = t->reply;
    pending_.erase(cookie);
  }

  sim::Engine& engine_;
  hw::I2oChannel& channel_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Transaction>> pending_;
  NotificationHandler notification_handler_;
  std::uint64_t next_cookie_ = 1;
  std::uint64_t invocations_ = 0;
};

}  // namespace nistream::dvcm
