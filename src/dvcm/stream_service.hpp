// The media-stream scheduling service: DWCS + client routing + dispatch loop.
//
// This is the part shared verbatim between the two server organizations the
// paper compares: the host-based scheduler (a Solaris process, Figures 7-8)
// and the NI-based scheduler (a VxWorks task inside the DWCS DVCM extension,
// Figures 9-10). The dispatch loop is paced: each stream's head frame is
// released at its deadline (the configured frame period), which is what
// yields the settling per-stream bandwidth of ~250 kbit/s the paper plots.
//
// CPU realism: every scheduling decision's cycle count comes from the same
// instrumented DWCS code path the microbenchmarks measure (via a
// CpuModelCostHook), converted to time on the machine the loop runs on and
// *consumed through that machine's scheduler*. On a loaded host this
// consumption stretches and dispatch falls behind — that stretching is the
// entire Figure 7/8 effect.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "fault/board_health.hpp"
#include "dwcs/hw_cost_hook.hpp"
#include "dwcs/scheduler.hpp"
#include "hw/memory.hpp"
#include "net/udp.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace nistream::dvcm {

/// Everything a peer needs to re-admit one stream after the machine holding
/// its scheduler state dies: the admission-time parameters plus the send-side
/// sequence position. Queued-but-undispatched frames are NOT part of the
/// checkpoint — they lived in the dead board's RAM and are lost by design
/// (the producer re-enqueues from the source).
struct StreamCheckpoint {
  dwcs::StreamId id = 0;
  dwcs::StreamParams params{};
  int client_port = -1;
  std::uint64_t frames_sent = 0;
};

class StreamService {
 public:
  struct Config {
    /// Full scheduler configuration, including repr selection — setting
    /// repr = ReprKind::kHierarchical (+ hierarchical.shards) here puts the
    /// sharded multi-core representation on the board; NiSchedulerServer
    /// seeds hierarchical.hop_cycles from the board calibration's
    /// interconnect when the config leaves it 0.
    dwcs::DwcsScheduler::Config scheduler{};
    /// Frame-dispatch driver cost beyond the scheduling decision (dequeue,
    /// protocol encapsulation, NIC doorbell). Tables 1-3's "w/o scheduler"
    /// column measures this path: ~30 us at 66 MHz.
    std::int64_t dispatch_cycles = 1900;
    /// Paced mode releases each frame at its deadline (media pacing);
    /// work-conserving mode dispatches as fast as the CPU allows.
    bool paced = true;
  };

  /// `cpu` is the machine the service runs on — its cycle counter prices the
  /// scheduling work. `memory` (optional) is the card pool holding the
  /// single frame copies; pass nullptr for host configurations.
  StreamService(sim::Engine& engine, const Config& config, hw::CpuModel& cpu,
                const hw::ArithCosts& int_costs, const hw::ArithCosts& fp_costs,
                hw::MemoryPool* memory = nullptr)
      : engine_{engine},
        config_{config},
        cpu_{cpu},
        hook_{cpu, int_costs, fp_costs},
        sched_{config.scheduler, hook_},
        memory_{memory},
        work_{engine} {
    // Frames the scheduler drops internally (lossy late drops, purges) never
    // reach the dispatch path, so their card-memory copy must be released
    // here or the pool leaks under sustained lateness.
    sched_.set_drop_hook(
        [this](dwcs::StreamId id, const dwcs::FrameDescriptor& d) {
          if (memory_) memory_->release(d.bytes);
          trace_.record(engine_.now(), "dwcs", "drop", id, d.frame_id);
          if (drop_observer_) drop_observer_(id, d);
        });
  }

  StreamService(const StreamService&) = delete;
  StreamService& operator=(const StreamService&) = delete;

  /// Register a stream and the client port its frames go to.
  dwcs::StreamId create_stream(const dwcs::StreamParams& params,
                               int client_port) {
    const auto id = sched_.create_stream(params, engine_.now());
    streams_.push_back(PerStream{client_port, {}, 0});
    return id;
  }

  /// Producer side. Allocates the frame's single copy in card memory when a
  /// pool is attached; a full ring or an exhausted pool rejects the frame.
  bool enqueue(dwcs::StreamId id, std::uint32_t bytes, mpeg::FrameType type) {
    if (health_ != nullptr && !health_->alive()) {
      // The board holding the queues is down or hung; nothing can be
      // admitted. Counted separately from resource rejections so failover
      // logic can tell "full" from "dead".
      ++rejected_offline_;
      return false;
    }
    dwcs::FrameDescriptor d;
    d.frame_id = next_frame_id_++;
    d.bytes = bytes;
    d.type = type;
    d.enqueued_at = engine_.now();
    if (memory_) {
      const auto addr = memory_->allocate(bytes);
      if (!addr) {
        ++rejected_no_memory_;
        trace_.record(engine_.now(), "dwcs", "reject-memory", id, d.frame_id);
        return false;
      }
      d.frame_addr = *addr;
    }
    if (!sched_.enqueue(id, d, engine_.now())) {
      if (memory_) memory_->release(bytes);
      ++rejected_ring_full_;
      trace_.record(engine_.now(), "dwcs", "reject-ring", id, d.frame_id);
      return false;
    }
    trace_.record(engine_.now(), "dwcs", "enqueue", id, d.frame_id, bytes);
    work_.signal();
    return true;
  }

  /// The dispatch loop. CpuCtx is hostos::Process or rtos::Task — anything
  /// with `consume(sim::Time)` awaitable on the machine's CPU scheduler.
  template <typename CpuCtx>
  sim::Coro run(CpuCtx& ctx, net::UdpEndpoint& endpoint) {
    for (;;) {
      if (stopped_) co_return;
      if (health_ != nullptr && !health_->alive()) {
        // Crashed or hung board: the dispatch task makes no progress. Poll
        // rather than wait on a condition — a crashed board has nobody left
        // to signal it, and 1 ms is far below any frame period.
        co_await sim::Delay{engine_, kHealthPoll};
        continue;
      }
      const auto next = sched_.earliest_backlog_deadline();
      if (!next) {
        co_await work_.wait();
        continue;
      }
      if (config_.paced && *next > engine_.now()) {
        co_await sim::Delay{engine_, *next - engine_.now()};
        continue;  // re-evaluate: new streams may have arrived meanwhile
      }
      // Drain everything currently due as one CPU burst: a real process
      // keeps the CPU while it has work, so the whole batch is a single
      // consume (which the machine's scheduler may slice and delay — that
      // delay is the Figure 7/8 degradation).
      const std::int64_t before = cpu_.cycles();
      // batch_ is a member so its capacity survives iterations: the dispatch
      // loop runs once per frame period and a fresh vector here would put
      // one heap allocation on every frame's critical path.
      batch_.clear();
      auto& batch = batch_;
      for (;;) {
        if (config_.paced) {
          const auto due = sched_.earliest_backlog_deadline();
          if (!due || *due > engine_.now()) break;
        }
        const auto d = sched_.schedule_next(engine_.now());
        if (!d) break;
        batch.push_back(*d);
        if (!config_.paced) break;  // work-conserving: one frame per cycle
      }
      const std::int64_t decision = cpu_.cycles() - before;
      co_await ctx.consume(cpu_.time_of(
          decision +
          config_.dispatch_cycles * static_cast<std::int64_t>(batch.size())));
      for (const auto& d : batch) {
        if (memory_) memory_->release(d.frame.bytes);
        PerStream& ps = streams_[d.stream];
        const double delay_ms = (engine_.now() - d.frame.enqueued_at).to_ms();
        ps.queuing_delay_ms.emplace_back(++ps.frames_sent, delay_ms);

        net::Packet pkt;
        pkt.stream_id = d.stream;
        pkt.seq = d.frame.frame_id;
        pkt.bytes = d.frame.bytes;
        pkt.frame_type = d.frame.type;
        pkt.enqueued_at = d.frame.enqueued_at;
        pkt.dispatched_at = engine_.now();
        endpoint.send(ps.client_port, pkt);
        ++dispatched_;
        trace_.record(engine_.now(), "dwcs", "dispatch", d.stream,
                      d.frame.frame_id, delay_ms);
        if (dispatch_observer_) dispatch_observer_(d.stream, d);
      }
    }
  }

  void stop() {
    stopped_ = true;
    work_.signal();
  }

  /// Attach a trace sink; the service then records "dwcs"-category events
  /// (enqueue / dispatch / reject / drop) for offline analysis.
  void set_trace(sim::TraceSink sink) { trace_ = sink; }

  /// Gate the service on a board's health: while not alive, enqueue rejects
  /// and the dispatch loop stalls. nullptr (the default) means always alive.
  void set_health(fault::BoardHealth* h) { health_ = h; }

  /// QoS observers (nullable). The dispatch observer fires once per frame
  /// put on the wire (Dispatch.late distinguishes on-time from late); the
  /// drop observer fires once per frame the scheduler discarded. Together
  /// they are exactly the per-stream outcome sequence a
  /// dwcs::WindowViolationMonitor wants.
  using DispatchObserver =
      std::function<void(dwcs::StreamId, const dwcs::Dispatch&)>;
  using DropObserver =
      std::function<void(dwcs::StreamId, const dwcs::FrameDescriptor&)>;
  void set_dispatch_observer(DispatchObserver obs) {
    dispatch_observer_ = std::move(obs);
  }
  void set_drop_observer(DropObserver obs) { drop_observer_ = std::move(obs); }

  /// Snapshot every stream's re-admission state (see StreamCheckpoint).
  [[nodiscard]] std::vector<StreamCheckpoint> checkpoint() const {
    std::vector<StreamCheckpoint> out;
    out.reserve(streams_.size());
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const auto id = static_cast<dwcs::StreamId>(i);
      out.push_back({.id = id,
                     .params = sched_.stream_params(id),
                     .client_port = streams_[i].client_port,
                     .frames_sent = streams_[i].frames_sent});
    }
    return out;
  }

  /// Re-admit checkpointed streams into this (fresh) service. Stream ids are
  /// preserved, so the service must not have competing streams already; the
  /// assert enforces the id agreement.
  void restore(const std::vector<StreamCheckpoint>& snap) {
    for (const auto& c : snap) {
      const auto id = create_stream(c.params, c.client_port);
      assert(id == c.id);
      (void)id;
      streams_[c.id].frames_sent = c.frames_sent;
    }
  }

  /// Re-admit one checkpointed stream under a *fresh* local id — cluster
  /// adoption, where the adopting board's id space has nothing to do with
  /// the dead board's. Returns the local id assigned here; the caller (the
  /// cluster control plane's shadow registry) owns the mapping.
  dwcs::StreamId adopt(const StreamCheckpoint& c) {
    const auto id = create_stream(c.params, c.client_port);
    streams_[id].frames_sent = c.frames_sent;
    return id;
  }

  /// Refresh an existing stream from a checkpoint — fail-back onto a board
  /// whose scheduler still has the entry (the simulation keeps the service
  /// object across reboots; only queues and windows were wiped). The frame
  /// counter continues from wherever the stream's last residence left it.
  void readopt(dwcs::StreamId local, const StreamCheckpoint& c) {
    assert(static_cast<std::size_t>(local) < streams_.size());
    streams_[local].frames_sent = c.frames_sent;
  }

  /// Discard every queued frame on every stream — the crash wipe. Frame
  /// memory is released and drops are observed through the drop hook, but no
  /// window adjustments happen and nothing is charged (the CPU that would
  /// pay is the one that died). Returns frames discarded.
  std::size_t purge_backlog() {
    std::size_t purged = 0;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      purged += sched_.purge_stream(static_cast<dwcs::StreamId>(i));
    }
    return purged;
  }

  [[nodiscard]] dwcs::DwcsScheduler& scheduler() { return sched_; }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  [[nodiscard]] std::uint64_t rejected_ring_full() const {
    return rejected_ring_full_;
  }
  [[nodiscard]] std::uint64_t rejected_no_memory() const {
    return rejected_no_memory_;
  }
  [[nodiscard]] std::uint64_t rejected_offline() const {
    return rejected_offline_;
  }
  /// Send-side sequence position of one stream (what a checkpoint of just
  /// this stream would carry — see StreamCheckpoint.frames_sent).
  [[nodiscard]] std::uint64_t frames_sent(dwcs::StreamId id) const {
    return streams_[id].frames_sent;
  }
  /// (frame#, queuing delay ms) points — the y-axis data of Figures 8/10.
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, double>>&
  queuing_delay(dwcs::StreamId id) const {
    return streams_[id].queuing_delay_ms;
  }

 private:
  struct PerStream {
    int client_port;
    std::vector<std::pair<std::uint64_t, double>> queuing_delay_ms;
    std::uint64_t frames_sent;
  };

  static constexpr sim::Time kHealthPoll = sim::Time::ms(1);

  sim::Engine& engine_;
  Config config_;
  hw::CpuModel& cpu_;
  dwcs::CpuModelCostHook hook_;
  dwcs::DwcsScheduler sched_;
  hw::MemoryPool* memory_;
  sim::Condition work_;
  sim::TraceSink trace_;
  std::vector<dwcs::Dispatch> batch_;  // dispatch-loop scratch, capacity reused
  std::vector<PerStream> streams_;
  std::uint64_t next_frame_id_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t rejected_ring_full_ = 0;
  std::uint64_t rejected_no_memory_ = 0;
  std::uint64_t rejected_offline_ = 0;
  fault::BoardHealth* health_ = nullptr;
  DispatchObserver dispatch_observer_;
  DropObserver drop_observer_;
  bool stopped_ = false;
};

}  // namespace nistream::dvcm
