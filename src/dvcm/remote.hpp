// Remote DVCM invocation: the "Distributed" in DVCM.
//
// Paper §1: "for distributed implementations of media streams on the cluster
// server, traffic elimination also occurs for media streams entering the NI
// from the network linking it to other cluster nodes." A DVCM instance on
// one board can invoke instructions on another board across the cluster
// interconnect — a stream producer on node A feeds the DWCS extension on
// node B's scheduler-NI without either host touching a frame.
//
// RemoteVcmPort attaches to a runtime and turns arriving instruction frames
// into registry dispatches (charging the NI CPU for the network-side
// dispatch, like the I2O path does). RemoteVcmClient sends them over the raw
// switched LAN (lossless in the paper's testbed). For a degraded segment,
// ReliableRemoteVcmClient/Port run the same instructions over TcpLite, so
// every instruction arrives exactly once and in order (see
// tests/dvcm/remote_test.cpp).
#pragma once

#include <cstdint>
#include <memory>

#include "dvcm/runtime.hpp"
#include "hw/ethernet.hpp"
#include "net/tcplite.hpp"
#include "sim/coro.hpp"

namespace nistream::dvcm {

/// An instruction in flight between two boards. `wire_bytes` sizes the frame
/// on the interconnect (instruction header + any bulk data that would travel
/// with it); `payload` is the simulation's zero-copy stand-in for that bulk.
struct RemoteInstruction {
  InstructionId id = 0;
  std::uint64_t w0 = 0;
  std::uint64_t w1 = 0;
  std::shared_ptr<void> payload;
};

class RemoteVcmPort {
 public:
  static constexpr std::uint32_t kHeaderBytes = 24;

  RemoteVcmPort(VcmRuntime& runtime, hw::EthernetSwitch& ether,
                sim::Time stack_cost)
      : runtime_{runtime}, engine_{runtime.board().engine()},
        stack_cost_{stack_cost}, inbox_{engine_} {
    port_ = ether.add_port([this](const hw::EthFrame& f) { on_frame(f); });
    // Network-dispatch task: peer of the I2O dispatch task.
    rtos::Task& task = runtime.kernel().spawn("tVcmRemote", 61);
    [](RemoteVcmPort& self, rtos::Task& t) -> sim::Coro {
      for (;;) {
        const auto ri = co_await self.inbox_.receive();
        const std::int64_t before = self.runtime_.board().cpu().cycles();
        hw::I2oMessage msg;
        msg.function = ri->id;
        msg.w0 = ri->w0;
        msg.w1 = ri->w1;
        msg.payload = ri->payload;
        const bool known = self.runtime_.registry().dispatch(msg);
        const std::int64_t handler =
            self.runtime_.board().cpu().cycles() - before;
        co_await t.consume_cycles(VcmRuntime::kDispatchCycles + handler);
        if (known) {
          ++self.dispatched_;
        } else {
          ++self.unknown_;
        }
      }
    }(*this, task)
        .detach();
  }

  RemoteVcmPort(const RemoteVcmPort&) = delete;
  RemoteVcmPort& operator=(const RemoteVcmPort&) = delete;

  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  [[nodiscard]] std::uint64_t unknown_instructions() const { return unknown_; }

 private:
  void on_frame(const hw::EthFrame& f) {
    auto ri = std::static_pointer_cast<RemoteInstruction>(f.payload);
    if (!ri) return;
    engine_.schedule_in(stack_cost_, [this, ri] { inbox_.send(ri); });
  }

  VcmRuntime& runtime_;
  sim::Engine& engine_;
  sim::Time stack_cost_;
  sim::Mailbox<std::shared_ptr<RemoteInstruction>> inbox_;
  int port_ = -1;
  std::uint64_t dispatched_ = 0;
  std::uint64_t unknown_ = 0;
};

class RemoteVcmClient {
 public:
  RemoteVcmClient(sim::Engine& engine, hw::EthernetSwitch& ether,
                  sim::Time stack_cost)
      : engine_{engine}, ether_{ether}, stack_cost_{stack_cost} {
    port_ = ether.add_port([](const hw::EthFrame&) {});
  }

  RemoteVcmClient(const RemoteVcmClient&) = delete;
  RemoteVcmClient& operator=(const RemoteVcmClient&) = delete;

  [[nodiscard]] int port() const { return port_; }

  /// Fire a remote instruction carrying `bulk_bytes` of data on the wire.
  void invoke(int dst_port, InstructionId id, std::uint64_t w0,
              std::shared_ptr<void> payload, std::uint32_t bulk_bytes = 0,
              std::uint64_t w1 = 0) {
    auto ri = std::make_shared<RemoteInstruction>();
    ri->id = id;
    ri->w0 = w0;
    ri->w1 = w1;
    ri->payload = std::move(payload);
    engine_.schedule_in(stack_cost_, [this, dst_port, ri, bulk_bytes] {
      ether_.send(port_, dst_port,
                  hw::EthFrame{.bytes = RemoteVcmPort::kHeaderBytes + bulk_bytes,
                               .tag = ri->id, .payload = ri});
    });
    ++sent_;
  }

  [[nodiscard]] std::uint64_t sent() const { return sent_; }

 private:
  sim::Engine& engine_;
  hw::EthernetSwitch& ether_;
  sim::Time stack_cost_;
  int port_ = -1;
  std::uint64_t sent_ = 0;
};

/// Reliable variant: instructions travel as TcpLite payload bodies.
class ReliableRemoteVcmPort {
 public:
  ReliableRemoteVcmPort(VcmRuntime& runtime, hw::EthernetSwitch& ether,
                        sim::Time stack_cost)
      : runtime_{runtime},
        rx_{runtime.board().engine(), ether, stack_cost,
            [this](const net::Packet& p, sim::Time) { deliver(p); }},
        inbox_{runtime.board().engine()} {
    rtos::Task& task = runtime.kernel().spawn("tVcmRemoteRel", 61);
    [](ReliableRemoteVcmPort& self, rtos::Task& t) -> sim::Coro {
      for (;;) {
        const auto ri = co_await self.inbox_.receive();
        const std::int64_t before = self.runtime_.board().cpu().cycles();
        hw::I2oMessage msg;
        msg.function = ri->id;
        msg.w0 = ri->w0;
        msg.w1 = ri->w1;
        msg.payload = ri->payload;
        const bool known = self.runtime_.registry().dispatch(msg);
        const std::int64_t handler =
            self.runtime_.board().cpu().cycles() - before;
        co_await t.consume_cycles(VcmRuntime::kDispatchCycles + handler);
        if (known) {
          ++self.dispatched_;
        } else {
          ++self.unknown_;
        }
      }
    }(*this, task)
        .detach();
  }

  [[nodiscard]] int port() const { return rx_.port(); }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  [[nodiscard]] std::uint64_t unknown_instructions() const { return unknown_; }

 private:
  void deliver(const net::Packet& p) {
    auto ri = std::static_pointer_cast<RemoteInstruction>(p.body);
    if (ri) inbox_.send(std::move(ri));
  }

  VcmRuntime& runtime_;
  net::TcpLiteReceiver rx_;
  sim::Mailbox<std::shared_ptr<RemoteInstruction>> inbox_;
  std::uint64_t dispatched_ = 0;
  std::uint64_t unknown_ = 0;
};

class ReliableRemoteVcmClient {
 public:
  ReliableRemoteVcmClient(sim::Engine& engine, hw::EthernetSwitch& ether,
                          sim::Time stack_cost, int dst_port,
                          net::TcpLiteSender::Params params =
                              net::TcpLiteSender::Params{
                                  .window = 8, .rto = sim::Time::ms(20)})
      : tx_{engine, ether, stack_cost, dst_port, params} {}

  void invoke(InstructionId id, std::uint64_t w0,
              std::shared_ptr<void> payload, std::uint32_t bulk_bytes = 0,
              std::uint64_t w1 = 0) {
    auto ri = std::make_shared<RemoteInstruction>();
    ri->id = id;
    ri->w0 = w0;
    ri->w1 = w1;
    ri->payload = std::move(payload);
    net::Packet p;
    p.seq = next_seq_++;
    p.bytes = RemoteVcmPort::kHeaderBytes + bulk_bytes;
    p.body = std::move(ri);
    tx_.send(std::move(p));
  }

  [[nodiscard]] net::TcpLiteSender& transport() { return tx_; }

 private:
  net::TcpLiteSender tx_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace nistream::dvcm
