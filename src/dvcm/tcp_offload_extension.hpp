// TCP-offload DVCM extension.
//
// Paper §5: "A number of efforts by industry include I2O cards for RAID
// storage sub-systems and off-loading TCP/IP protocol processing to the NI
// from the host." This extension is that offload as a DVCM instruction set:
// the host posts SEND instructions; the board's TcpLite engine handles
// segmentation, ACK processing and retransmission entirely on the NI — the
// host never sees a timer or a duplicate.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "dvcm/runtime.hpp"
#include "net/tcplite.hpp"

namespace nistream::dvcm {

inline constexpr InstructionId kTcpOpen = kExtensionBase + 0x300;
inline constexpr InstructionId kTcpSend = kExtensionBase + 0x301;
inline constexpr InstructionId kTcpStatus = kExtensionBase + 0x302;

/// Payload of kTcpSend (w0 = connection id).
struct TcpSendRequest {
  net::Packet packet{};
};

class TcpOffloadExtension final : public ExtensionModule {
 public:
  explicit TcpOffloadExtension(hw::EthernetSwitch& ether,
                               net::TcpLiteSender::Params params =
                                   net::TcpLiteSender::Params{
                                       .window = 8,
                                       .rto = sim::Time::ms(20)})
      : ether_{ether}, params_{params} {}

  [[nodiscard]] const char* name() const override { return "tcp-offload"; }

  void install(VcmRuntime& runtime) override {
    runtime_ = &runtime;
    // kTcpOpen: w0 = destination port; reply w0 = connection id.
    runtime.registry().add(kTcpOpen, [this](const hw::I2oMessage& m) {
      const auto cid = next_cid_++;
      connections_.emplace(
          cid, std::make_unique<net::TcpLiteSender>(
                   runtime_->board().engine(), ether_,
                   runtime_->board().ether().params().stack_traversal,
                   static_cast<int>(m.w0), params_));
      runtime_->reply(m, hw::I2oMessage{.w0 = cid});
    });
    // kTcpSend: fire-and-forget reliable send on connection w0.
    runtime.registry().add(kTcpSend, [this](const hw::I2oMessage& m) {
      const auto it = connections_.find(m.w0);
      if (it == connections_.end()) return;
      const auto req = std::static_pointer_cast<TcpSendRequest>(m.payload);
      it->second->send(req->packet);
    });
    // kTcpStatus: reply w0 = acked count, w1 = retransmissions.
    runtime.registry().add(kTcpStatus, [this](const hw::I2oMessage& m) {
      const auto it = connections_.find(m.w0);
      if (it == connections_.end()) {
        runtime_->reply(m, hw::I2oMessage{});
        return;
      }
      runtime_->reply(m, hw::I2oMessage{.w0 = it->second->acked(),
                                        .w1 = it->second->retransmissions()});
    });
  }

  [[nodiscard]] net::TcpLiteSender* connection(std::uint64_t cid) {
    const auto it = connections_.find(cid);
    return it == connections_.end() ? nullptr : it->second.get();
  }

 private:
  hw::EthernetSwitch& ether_;
  net::TcpLiteSender::Params params_;
  VcmRuntime* runtime_ = nullptr;
  std::unordered_map<std::uint64_t, std::unique_ptr<net::TcpLiteSender>>
      connections_;
  std::uint64_t next_cid_ = 1;
};

}  // namespace nistream::dvcm
