// NI-side DVCM runtime.
//
// Runs on the i960 RD board under the wind kernel. A dispatch task drains
// the I2O inbound FIFO and routes each message frame to the extension module
// that registered its instruction opcode (paper §2: "The third set of DVCM
// functions are the extensions that support specific applications' needs").
// Extensions are installed at run time — the paper's "run-time extensions" —
// and may spawn their own NI tasks (the DWCS scheduler extension does).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dvcm/instruction.hpp"
#include "hw/nic_board.hpp"
#include "rtos/wind.hpp"
#include "sim/coro.hpp"

namespace nistream::dvcm {

class VcmRuntime;

/// A loadable DVCM extension. install() registers instruction handlers and
/// spawns any tasks the extension needs.
class ExtensionModule {
 public:
  virtual ~ExtensionModule() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void install(VcmRuntime& runtime) = 0;
};

class VcmRuntime {
 public:
  /// NI-CPU cost of fetching + routing one message frame.
  static constexpr std::int64_t kDispatchCycles = 300;

  VcmRuntime(hw::NicBoard& board, rtos::WindKernel& kernel)
      : board_{board}, kernel_{kernel} {}

  VcmRuntime(const VcmRuntime&) = delete;
  VcmRuntime& operator=(const VcmRuntime&) = delete;

  [[nodiscard]] hw::NicBoard& board() { return board_; }
  [[nodiscard]] rtos::WindKernel& kernel() { return kernel_; }
  [[nodiscard]] InstructionRegistry& registry() { return registry_; }

  void load_extension(std::unique_ptr<ExtensionModule> ext) {
    ext->install(*this);
    extensions_.push_back(std::move(ext));
  }

  [[nodiscard]] const std::vector<std::unique_ptr<ExtensionModule>>&
  extensions() const {
    return extensions_;
  }

  /// Send a reply frame back to the host, echoing the request cookie.
  void reply(const hw::I2oMessage& request, hw::I2oMessage response) {
    response.function = request.function | kReplyFlag;
    response.w2 = request.w2;  // transaction cookie
    board_.i2o().post_outbound(std::move(response));
  }

  /// Start the dispatch task (priority just below the media scheduler so
  /// enqueue processing cannot starve dispatching of frames, §3.1.1's
  /// concurrency requirement).
  void start(int dispatch_priority = 60) {
    rtos::Task& task = kernel_.spawn("tVcmDispatch", dispatch_priority);
    [](VcmRuntime& self, rtos::Task& t) -> sim::Coro {
      for (;;) {
        const hw::I2oMessage msg = co_await self.board_.i2o().inbound().receive();
        if (!self.board_.alive()) {
          // Crashed/hung firmware fetches nothing: the message frame rots in
          // the FIFO from the sender's point of view; here we count it and
          // move on so the mailbox does not grow without bound.
          ++self.dropped_offline_;
          continue;
        }
        // Handlers run the real (instrumented) code; whatever cycles they
        // charge to the board CPU become task time here, plus the fixed
        // fetch/route overhead.
        const std::int64_t before = self.board_.cpu().cycles();
        const bool known = self.registry_.dispatch(msg);
        const std::int64_t handler_cycles = self.board_.cpu().cycles() - before;
        co_await t.consume_cycles(kDispatchCycles + handler_cycles);
        if (known) {
          ++self.dispatched_;
        } else {
          ++self.unknown_;
        }
      }
    }(*this, task).detach();

    // Core instructions every DVCM instance provides.
    registry_.add(kNop, [](const hw::I2oMessage&) {});
    registry_.add(kPing, [this](const hw::I2oMessage& m) {
      reply(m, hw::I2oMessage{.w0 = m.w0, .w1 = m.w1});
    });
    registry_.add(kListExtensions, [this](const hw::I2oMessage& m) {
      reply(m, hw::I2oMessage{.w0 = extensions_.size()});
    });
  }

  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  [[nodiscard]] std::uint64_t unknown_instructions() const { return unknown_; }
  [[nodiscard]] std::uint64_t dropped_offline() const {
    return dropped_offline_;
  }

 private:
  hw::NicBoard& board_;
  rtos::WindKernel& kernel_;
  InstructionRegistry registry_;
  std::vector<std::unique_ptr<ExtensionModule>> extensions_;
  std::uint64_t dispatched_ = 0;
  std::uint64_t unknown_ = 0;
  std::uint64_t dropped_offline_ = 0;
};

}  // namespace nistream::dvcm
