// DVCM instruction-set plumbing.
//
// The DVCM (Distributed Virtual Communication Machine) exposes cluster-wide
// services as "communication instructions" (paper §1-2): host programs
// invoke instruction opcodes that execute on the NI CoProcessor. Extension
// modules register handlers for the opcodes they implement; the registry is
// the NI-side dispatch table.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "hw/i2o.hpp"

namespace nistream::dvcm {

using InstructionId = std::uint32_t;

/// Reply opcodes set this bit and echo the request cookie in w2.
inline constexpr InstructionId kReplyFlag = 0x8000'0000u;

/// Core instruction ids (0x0000_xxxx); extensions allocate above 0x0001_0000.
inline constexpr InstructionId kNop = 0x0000'0001;
inline constexpr InstructionId kPing = 0x0000'0002;
inline constexpr InstructionId kListExtensions = 0x0000'0003;
inline constexpr InstructionId kExtensionBase = 0x0001'0000;

/// Handler executed on the NI dispatch task. The message's `function` is the
/// instruction id; w0..w2 and payload are instruction-defined (w2 carries the
/// caller's transaction cookie when a reply is expected).
using InstructionHandler = std::function<void(const hw::I2oMessage&)>;

class InstructionRegistry {
 public:
  void add(InstructionId id, InstructionHandler handler) {
    handlers_[id] = std::move(handler);
  }

  [[nodiscard]] bool contains(InstructionId id) const {
    return handlers_.contains(id);
  }

  /// Invoke the handler for `msg.function`; returns false when unknown.
  bool dispatch(const hw::I2oMessage& msg) {
    const auto it = handlers_.find(msg.function);
    if (it == handlers_.end()) return false;
    it->second(msg);
    return true;
  }

  [[nodiscard]] std::size_t size() const { return handlers_.size(); }

 private:
  std::unordered_map<InstructionId, InstructionHandler> handlers_;
};

}  // namespace nistream::dvcm
