#include "sim/engine.hpp"

#include <iomanip>
#include <stdexcept>

namespace nistream::sim {

std::ostream& operator<<(std::ostream& os, Time t) {
  // Pick a human-friendly unit: experiments report in us and ms.
  const double us = t.to_us();
  if (us < 1e3) return os << us << "us";
  if (us < 1e6) return os << us / 1e3 << "ms";
  return os << us / 1e6 << "s";
}

EventHandle Engine::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) throw std::logic_error("Engine::schedule_at: time in the past");
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{at, next_seq_++, std::move(fn), alive});
  return EventHandle{std::move(alive)};
}

bool Engine::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the event must be moved out via pop, so
    // copy the cheap parts and move the callable through a const_cast-free
    // extraction: take a copy of the shared flag, then pop.
    Event ev = queue_.top();
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled
    *ev.alive = false;
    now_ = ev.at;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

Time Engine::run() {
  while (step()) {}
  return now_;
}

Time Engine::run_until(Time deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (!*top.alive) { queue_.pop(); continue; }
    if (top.at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace nistream::sim
