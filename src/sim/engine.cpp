#include "sim/engine.hpp"

#include <algorithm>
#include <iomanip>
#include <stdexcept>
#include <utility>

namespace nistream::sim {

std::ostream& operator<<(std::ostream& os, Time t) {
  // Pick a human-friendly unit: experiments report in us and ms.
  const double us = t.to_us();
  if (us < 1e3) return os << us << "us";
  if (us < 1e6) return os << us / 1e3 << "ms";
  return os << us / 1e6 << "s";
}

void Engine::sift_up(std::size_t i) {
  const std::uint32_t moving = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

void Engine::sift_down(std::size_t i) {
  const std::uint32_t moving = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = i * 4 + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

void Engine::pop_top() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Engine::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.armed = false;
  ++s.gen;
  free_.push_back(slot);
}

EventHandle Engine::schedule_at(Time at, InlineEvent fn) {
  if (at < now_) throw std::logic_error("Engine::schedule_at: time in the past");
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.at = at;
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  s.armed = true;
  heap_.push_back(slot);
  sift_up(heap_.size() - 1);
  return EventHandle{this, slot, s.gen};
}

bool Engine::step() {
  while (!heap_.empty()) {
    const std::uint32_t slot = heap_[0];
    pop_top();
    if (!slots_[slot].armed) {  // cancelled: recycle and keep looking
      release(slot);
      continue;
    }
    now_ = slots_[slot].at;
    ++executed_;
    // Move the callable out and free the slot *before* invoking: the
    // callback may schedule new events (which may reuse this slot) or
    // cancel through a stale handle (which the bumped generation defeats).
    InlineEvent fn = std::move(slots_[slot].fn);
    release(slot);
    fn();
    return true;
  }
  return false;
}

Time Engine::run() {
  while (step()) {}
  return now_;
}

Time Engine::run_until(Time deadline) {
  while (!heap_.empty()) {
    const std::uint32_t slot = heap_[0];
    if (!slots_[slot].armed) {
      pop_top();
      release(slot);
      continue;
    }
    if (slots_[slot].at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace nistream::sim
