#include "sim/cpusched.hpp"

#include <algorithm>

namespace nistream::sim {

CpuScheduler::CpuScheduler(Engine& engine, Params p)
    : engine_{engine}, params_{p} {
  assert(p.num_cpus >= 1);
  cpus_.reserve(static_cast<std::size_t>(p.num_cpus));
  for (int i = 0; i < p.num_cpus; ++i) cpus_.emplace_back(p.meter_sample);
}

CpuScheduler::Thread& CpuScheduler::create_thread(std::string name,
                                                  int priority, int affinity) {
  assert(affinity >= -1 && affinity < num_cpus());
  threads_.push_back(std::unique_ptr<Thread>(
      new Thread{std::move(name), priority, affinity}));
  return *threads_.back();
}

void CpuScheduler::set_reservation(Thread& t, double fraction, Time period) {
  assert(fraction > 0.0 && fraction <= 1.0 && period > Time::zero());
  t.budget_per_period_ = Time::us(period.to_us() * fraction);
  t.budget_left_ = t.budget_per_period_;
  // Periodic replenishment; a fresh budget may entitle the thread to
  // preempt, so re-dispatch on every refill.
  const auto replenish = [this, &t, period](auto&& self) -> void {
    engine_.schedule_in(period, [this, &t, period, self] {
      t.budget_left_ = t.budget_per_period_;
      dispatch();
      self(self);
    });
  };
  replenish(replenish);
}

void CpuScheduler::submit(Thread& t, Time amount, std::coroutine_handle<> h) {
  assert(!t.waiter_ && "thread already has an outstanding run()");
  assert(t.running_on_ < 0 && !t.queued_);
  t.remaining_ = amount;
  t.waiter_ = h;
  enqueue(t, /*to_front=*/false);
  dispatch();
}

void CpuScheduler::enqueue(Thread& t, bool to_front) {
  assert(!t.queued_);
  // `seq_` orders threads within a priority class: new arrivals and expired
  // quanta go to the back; preempted threads keep their place at the front.
  t.seq_ = to_front ? 0 : next_seq_++;
  t.queued_ = true;
  ready_.push_back(&t);
}

CpuScheduler::Thread* CpuScheduler::pick_ready(int cpu_idx) const {
  Thread* best = nullptr;
  for (Thread* t : ready_) {
    if (t->affinity_ >= 0 && t->affinity_ != cpu_idx) continue;
    if (!best || effective_priority(*t) < effective_priority(*best) ||
        (effective_priority(*t) == effective_priority(*best) &&
         t->seq_ < best->seq_)) {
      best = t;
    }
  }
  return best;
}

int CpuScheduler::find_preemptable(const Thread& incoming) const {
  // Choose the CPU running the least important current thread that the
  // incoming thread is allowed to run on and strictly outranks.
  int victim = -1;
  for (int i = 0; i < num_cpus(); ++i) {
    const auto& cpu = cpus_[static_cast<std::size_t>(i)];
    if (!cpu.current) continue;  // idle CPUs are handled by dispatch()
    if (incoming.affinity_ >= 0 && incoming.affinity_ != i) continue;
    if (effective_priority(*cpu.current) <= effective_priority(incoming)) {
      continue;
    }
    if (victim < 0 ||
        effective_priority(*cpu.current) >
            effective_priority(
                *cpus_[static_cast<std::size_t>(victim)].current)) {
      victim = i;
    }
  }
  return victim;
}

void CpuScheduler::dispatch() {
  // Fill idle CPUs first.
  for (int i = 0; i < num_cpus(); ++i) {
    if (cpus_[static_cast<std::size_t>(i)].current) continue;
    if (Thread* t = pick_ready(i)) start_slice(i, *t);
  }
  // Then preempt less important work if anything urgent is still queued.
  for (;;) {
    Thread* waiting = nullptr;
    for (Thread* t : ready_) {
      if (!waiting || effective_priority(*t) < effective_priority(*waiting) ||
          (effective_priority(*t) == effective_priority(*waiting) &&
           t->seq_ < waiting->seq_)) {
        waiting = t;
      }
    }
    if (!waiting) return;
    const int victim = find_preemptable(*waiting);
    if (victim < 0) return;
    preempt(victim);
    if (Thread* t = pick_ready(victim)) start_slice(victim, *t);
  }
}

void CpuScheduler::start_slice(int cpu_idx, Thread& t) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_idx)];
  assert(!cpu.current && t.queued_);
  std::erase(ready_, &t);
  t.queued_ = false;
  t.running_on_ = cpu_idx;
  cpu.current = &t;

  const Time cs = (cpu.last != &t) ? params_.context_switch : Time::zero();
  if (cs > Time::zero()) ++switches_;
  cpu.slice_start = engine_.now();
  cpu.run_start = cpu.slice_start + cs;
  cpu.slice_run_len = std::min(params_.quantum, t.remaining_);
  if (t.budget_per_period_ > Time::zero() && t.budget_left_ > Time::zero()) {
    // A reserved slice must not outrun the remaining budget (past it the
    // thread drops back to its ordinary priority).
    cpu.slice_run_len = std::min(cpu.slice_run_len, t.budget_left_);
  }
  cpu.last = &t;
  cpu.slice_event = engine_.schedule_at(
      cpu.run_start + cpu.slice_run_len, [this, cpu_idx] { finish_slice(cpu_idx); });
}

void CpuScheduler::finish_slice(int cpu_idx) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_idx)];
  Thread* t = cpu.current;
  assert(t);
  cpu.meter.add_busy(cpu.slice_start, engine_.now());
  t->cpu_time_ += cpu.slice_run_len;
  t->remaining_ -= cpu.slice_run_len;
  if (t->budget_per_period_ > Time::zero()) {
    t->budget_left_ -= std::min(t->budget_left_, cpu.slice_run_len);
  }
  t->running_on_ = -1;
  cpu.current = nullptr;

  if (t->remaining_ <= Time::zero()) {
    const auto h = t->waiter_;
    t->waiter_ = {};
    engine_.schedule_in(Time::zero(), [h] { h.resume(); });
  } else {
    enqueue(*t, /*to_front=*/false);  // quantum expired: back of the class
  }
  dispatch();
}

void CpuScheduler::preempt(int cpu_idx) {
  Cpu& cpu = cpus_[static_cast<std::size_t>(cpu_idx)];
  Thread* t = cpu.current;
  assert(t);
  cpu.slice_event.cancel();
  const Time now = engine_.now();
  // Work actually accomplished: time past the context-switch lead-in.
  const Time done = now > cpu.run_start ? now - cpu.run_start : Time::zero();
  cpu.meter.add_busy(cpu.slice_start, now);
  t->cpu_time_ += done;
  t->remaining_ -= done;
  if (t->budget_per_period_ > Time::zero()) {
    t->budget_left_ -= std::min(t->budget_left_, done);
  }
  t->running_on_ = -1;
  cpu.current = nullptr;

  if (t->remaining_ <= Time::zero()) {
    // The preempter arrived exactly as the slice would have completed.
    const auto h = t->waiter_;
    t->waiter_ = {};
    engine_.schedule_in(Time::zero(), [h] { h.resume(); });
  } else {
    enqueue(*t, /*to_front=*/true);  // keeps its turn at the head of the class
  }
}

Time CpuScheduler::total_busy() const {
  Time sum = Time::zero();
  for (const auto& cpu : cpus_) sum += cpu.meter.total_busy();
  return sum;
}

TimeSeries CpuScheduler::utilization_series(Time end) const {
  // Average the per-CPU sampled series point-wise; all meters share bucket
  // edges because they share meter_sample.
  std::vector<TimeSeries> per_cpu;
  per_cpu.reserve(cpus_.size());
  std::size_t n_points = 0;
  for (const auto& cpu : cpus_) {
    per_cpu.push_back(cpu.meter.sample(end));
    n_points = std::max(n_points, per_cpu.back().points().size());
  }
  TimeSeries out{"cpu_util"};
  for (std::size_t i = 0; i < n_points; ++i) {
    double sum = 0.0;
    Time t = Time::zero();
    for (const auto& ts : per_cpu) {
      if (i < ts.points().size()) {
        t = ts.points()[i].first;
        sum += ts.points()[i].second;
      }
    }
    out.add(t, sum / static_cast<double>(cpus_.size()));
  }
  return out;
}

}  // namespace nistream::sim
