// Deterministic pseudo-random source for workload generation.
//
// Every stochastic element of an experiment (web-request interarrivals, MPEG
// frame-size noise, disk seek distances) draws from an explicitly seeded Rng
// so that runs are reproducible across platforms and compilers — std::
// distributions are implementation-defined, so the distributions here are
// hand-rolled.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace nistream::sim {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      w = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation, simplified (the tiny
    // modulo bias of the plain multiply-shift is irrelevant here, but we keep
    // the rejection loop for exactness and portability of sequences).
    const __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; simple > fast here).
  double normal(double mu = 0.0, double sigma = 1.0) {
    double u1;
    do { u1 = uniform(); } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * std::numbers::pi * u2);
    return mu + sigma * z;
  }

  /// Lognormal parameterized by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-component streams).
  Rng fork() { return Rng{next_u64()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace nistream::sim
