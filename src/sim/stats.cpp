#include "sim/stats.hpp"

#include <cassert>

namespace nistream::sim {

double TimeSeries::mean_between(Time from, Time to) const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t < from || t > to) continue;
    sum += v;
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::value_at(Time t) const {
  double last = 0.0;
  for (const auto& [pt, v] : points_) {
    if (pt > t) break;
    last = v;
  }
  return last;
}

void TimeSeries::write_csv(std::ostream& os, const std::string& value_label) const {
  os << "time_ms," << value_label << "\n";
  for (const auto& [t, v] : points_) os << t.to_ms() << "," << v << "\n";
}

void RateMeter::record(Time t, std::uint64_t bytes) {
  sample_up_to(t, /*inclusive=*/false);
  events_.emplace_back(t, bytes);
  total_ += bytes;
}

double RateMeter::current_bps(Time t) const {
  // Sum bytes inside (t - window, t]; tail_ is advanced by sample_up_to.
  std::uint64_t bytes = 0;
  const Time lo = t - window_;
  for (std::size_t i = tail_; i < events_.size(); ++i) {
    if (events_[i].first > t) break;
    if (events_[i].first > lo) bytes += events_[i].second;
  }
  const double span = std::min(window_.to_sec(), t.to_sec());
  return span > 0.0 ? static_cast<double>(bytes) * 8.0 / span : 0.0;
}

void RateMeter::sample_up_to(Time t, bool inclusive) {
  while (inclusive ? next_sample_ <= t : next_sample_ < t) {
    // Drop events that have fallen out of the window for this sample point.
    const Time lo = next_sample_ - window_;
    while (tail_ < events_.size() && events_[tail_].first <= lo) ++tail_;
    if (next_sample_ > Time::zero()) {
      series_.add(next_sample_, current_bps(next_sample_));
    }
    next_sample_ += sample_every_;
  }
}

void UtilizationMeter::add_busy(Time start, Time end) {
  if (end <= start) return;
  total_busy_ += end - start;
  // Merge with the previous interval when contiguous: CPU schedulers emit
  // many abutting slices and merging keeps the vector small.
  if (!intervals_.empty() && intervals_.back().second == start) {
    intervals_.back().second = end;
  } else {
    assert(intervals_.empty() || start >= intervals_.back().second);
    intervals_.emplace_back(start, end);
  }
}

TimeSeries UtilizationMeter::sample(Time end, double capacity) const {
  TimeSeries out{"utilization"};
  if (sample_every_ <= Time::zero()) return out;
  std::size_t idx = 0;
  for (Time lo = Time::zero(); lo < end; lo += sample_every_) {
    const Time hi = std::min(lo + sample_every_, end);
    Time busy = Time::zero();
    // Advance past intervals that end before this bucket.
    while (idx < intervals_.size() && intervals_[idx].second <= lo) ++idx;
    for (std::size_t i = idx; i < intervals_.size(); ++i) {
      const auto& [s, e] = intervals_[i];
      if (s >= hi) break;
      busy += std::min(e, hi) - std::max(s, lo);
    }
    const double util = 100.0 * (busy / (hi - lo)) / capacity;
    out.add(hi, util);
  }
  return out;
}

}  // namespace nistream::sim
