// Measurement primitives shared by all experiments.
//
// The paper reports four kinds of data: cumulative/average latencies
// (Tables 1–5), time series of bandwidth (Figures 7, 9), per-frame queuing
// delays (Figures 8, 10) and sampled CPU utilization (Figure 6). The classes
// here back those directly.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nistream::sim {

/// Streaming mean/min/max/variance (Welford). Cheap enough to keep everywhere.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-quantile sample store. Experiments are small (<= a few 100k samples),
/// so keeping the raw samples beats approximate sketches in both simplicity
/// and fidelity.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Quantile q in [0,1] by nearest-rank; 0 if empty.
  [[nodiscard]] double quantile(double q) {
    if (samples_.empty()) return 0.0;
    sort();
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }
  [[nodiscard]] double median() { return quantile(0.5); }
  [[nodiscard]] const std::vector<double>& raw() const { return samples_; }

 private:
  void sort() {
    if (!sorted_) { std::sort(samples_.begin(), samples_.end()); sorted_ = true; }
  }
  std::vector<double> samples_;
  bool sorted_ = true;
};

/// (time, value) series, e.g. bandwidth-vs-time for Figures 7 and 9.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name = {}) : name_{std::move(name)} {}

  void add(Time t, double v) { points_.emplace_back(t, v); }
  [[nodiscard]] const std::vector<std::pair<Time, double>>& points() const {
    return points_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Mean of values with t in [from, to].
  [[nodiscard]] double mean_between(Time from, Time to) const;
  /// Last value at or before t (0 if none).
  [[nodiscard]] double value_at(Time t) const;

  /// Write "t_ms,value" rows. Used by the figure benches to emit data that
  /// plots directly against the paper's figures.
  void write_csv(std::ostream& os, const std::string& value_label) const;

 private:
  std::string name_;
  std::vector<std::pair<Time, double>> points_;
};

/// Sliding-window throughput estimator producing a bandwidth time series in
/// bits/second — the y-axis of Figures 7 and 9.
class RateMeter {
 public:
  /// `window`: averaging window; `sample_every`: series granularity.
  RateMeter(Time window, Time sample_every, std::string name = {})
      : window_{window}, sample_every_{sample_every}, series_{std::move(name)} {}

  /// Record `bytes` delivered at time `t`. Calls must be time-ordered.
  void record(Time t, std::uint64_t bytes);

  /// Flush pending samples up to time `t` (call at end of run).
  void finish(Time t) { sample_up_to(t, /*inclusive=*/true); }

  [[nodiscard]] const TimeSeries& series() const { return series_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_; }

 private:
  /// Emit series samples due before `t` (or at `t` when `inclusive`). An
  /// event recorded exactly at a sample instant counts toward that sample:
  /// record() uses exclusive flushing so the event lands first.
  void sample_up_to(Time t, bool inclusive);
  [[nodiscard]] double current_bps(Time t) const;

  Time window_;
  Time sample_every_;
  Time next_sample_ = Time::zero();
  std::uint64_t total_ = 0;
  std::vector<std::pair<Time, std::uint64_t>> events_;  // (t, bytes)
  std::size_t tail_ = 0;  // first event still inside the window
  TimeSeries series_;
};

/// Busy-time integrator behind the Figure 6 "perfmeter": mark busy/idle
/// transitions, then sample utilization over fixed intervals.
class UtilizationMeter {
 public:
  explicit UtilizationMeter(Time sample_every) : sample_every_{sample_every} {}

  /// Add `busy` time observed within the current sampling position at `now`.
  /// Busy time is credited to the sample intervals it overlaps.
  void add_busy(Time start, Time end);

  /// Produce the utilization series up to `end`, as percent of `capacity`
  /// (capacity = number of CPUs for a whole-machine meter).
  [[nodiscard]] TimeSeries sample(Time end, double capacity = 1.0) const;

  [[nodiscard]] Time total_busy() const { return total_busy_; }

 private:
  Time sample_every_;
  Time total_busy_ = Time::zero();
  std::vector<std::pair<Time, Time>> intervals_;  // merged busy intervals
};

}  // namespace nistream::sim
