// Preemptive multi-CPU scheduler for simulated software.
//
// Both OS models are built on this: hostos configures it as an N-CPU
// time-slicing scheduler (Solaris on the quad Pentium Pro), rtos as a
// single-CPU strict-priority kernel (VxWorks "wind" on the i960 RD). The
// central experiment of the paper — host-based DWCS degrading under web load
// while NI-based DWCS is immune (Figures 6-10) — is a direct consequence of
// how this component arbitrates CPU between the scheduler thread and
// competing work.
//
// Model: a Thread is a priority + affinity context owned by a coroutine
// process. The process calls `co_await sched.run(thread, t)` to consume `t`
// of CPU time; the call returns once the thread has actually received that
// much CPU, however many slices and preemptions that took. Lower priority
// number = more important. Equal priorities round-robin with `quantum`
// slices; a strictly more important thread preempts mid-slice.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace nistream::sim {

class CpuScheduler {
 public:
  struct Params {
    int num_cpus = 1;
    Time quantum = Time::ms(10);
    Time context_switch = Time::zero();
    /// Granularity of the utilization series (Figure 6's perfmeter).
    Time meter_sample = Time::ms(1000);
  };

  class Thread {
   public:
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] int priority() const { return priority_; }
    [[nodiscard]] Time cpu_time() const { return cpu_time_; }

   private:
    friend class CpuScheduler;
    Thread(std::string name, int priority, int affinity)
        : name_{std::move(name)}, priority_{priority}, affinity_{affinity} {}

    std::string name_;
    int priority_;
    int affinity_;  // -1 = any CPU, otherwise pinned (Solaris pbind)
    Time remaining_ = Time::zero();
    std::coroutine_handle<> waiter_{};
    bool queued_ = false;
    int running_on_ = -1;
    std::uint64_t seq_ = 0;
    Time cpu_time_ = Time::zero();
    // Reservation state (zero budget_per_period_ = no reservation).
    Time budget_per_period_ = Time::zero();
    Time budget_left_ = Time::zero();
  };

  CpuScheduler(Engine& engine, Params p);
  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  /// Create a schedulable context. `affinity` pins the thread to one CPU
  /// (the paper binds the host DWCS scheduler with Solaris `pbind`).
  Thread& create_thread(std::string name, int priority, int affinity = -1);

  /// Grant `t` a CPU reservation: `fraction` of one CPU, replenished every
  /// `period` (Jones et al.'s reservation scheduler, discussed in the
  /// paper's §5). While a reserved thread has budget left in the current
  /// period it outranks every ordinary thread, so its service rate is
  /// guaranteed regardless of load; once the budget is spent it competes at
  /// its normal priority.
  void set_reservation(Thread& t, double fraction, Time period);

  /// co_await sched.run(thread, t): consume `t` of CPU time.
  struct RunAwaiter {
    CpuScheduler& sched;
    Thread& thread;
    Time amount;
    bool await_ready() const noexcept { return amount <= Time::zero(); }
    void await_suspend(std::coroutine_handle<> h) {
      sched.submit(thread, amount, h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] RunAwaiter run(Thread& t, Time amount) {
    return RunAwaiter{*this, t, amount};
  }

  [[nodiscard]] int num_cpus() const { return static_cast<int>(cpus_.size()); }
  [[nodiscard]] Time total_busy() const;
  /// Whole-machine utilization series in percent (0-100), averaged over CPUs.
  [[nodiscard]] TimeSeries utilization_series(Time end) const;
  [[nodiscard]] const UtilizationMeter& cpu_meter(int cpu) const {
    return cpus_[static_cast<std::size_t>(cpu)].meter;
  }
  [[nodiscard]] std::uint64_t context_switches() const { return switches_; }

 private:
  struct Cpu {
    Thread* current = nullptr;
    Thread* last = nullptr;  // for context-switch cost accounting
    EventHandle slice_event;
    Time slice_start;      // includes any context-switch lead-in
    Time run_start;        // when useful work begins (slice_start + cs)
    Time slice_run_len;    // useful run time granted this slice
    UtilizationMeter meter;
    explicit Cpu(Time sample) : meter{sample} {}
  };

  void submit(Thread& t, Time amount, std::coroutine_handle<> h);
  void enqueue(Thread& t, bool to_front);
  void dispatch();
  void start_slice(int cpu_idx, Thread& t);
  void finish_slice(int cpu_idx);
  void preempt(int cpu_idx);
  [[nodiscard]] Thread* pick_ready(int cpu_idx) const;
  [[nodiscard]] int find_preemptable(const Thread& incoming) const;
  /// Reservation-aware rank: reserved threads with budget outrank everyone.
  [[nodiscard]] static int effective_priority(const Thread& t) {
    const bool reserved = t.budget_per_period_ > Time::zero() &&
                          t.budget_left_ > Time::zero();
    return reserved ? std::numeric_limits<int>::min() : t.priority_;
  }

  Engine& engine_;
  Params params_;
  std::vector<Cpu> cpus_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<Thread*> ready_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t switches_ = 0;
};

}  // namespace nistream::sim
