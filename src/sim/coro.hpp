// Coroutine-based process layer over the event engine.
//
// Simulated software — VxWorks tasks on the NI (src/rtos), Solaris processes
// on the host (src/hostos), stream producers and clients (src/apps) — is
// written as C++20 coroutines returning sim::Coro. A process co_awaits
// primitives (delay, semaphore, condition) that park it in the Engine's event
// queue; the engine resumes it at the right simulated instant. This keeps
// multi-step protocol logic linear instead of exploding into callback state
// machines.
//
// Allocation model: spawning a process costs zero steady-state allocations.
// Coroutine frames come from a per-thread size-bucketed free list
// (CoroFramePool below), and the completion state shared between the frame
// and its Coro handle is embedded in the same pooled block (16-byte header
// in front of the frame, intrusive refcount) — no shared_ptr control block,
// no second allocation. The pool is thread_local: each bench cell runs its
// engine on one thread, and frames never migrate, so the pool needs no locks.
//
// Lifetime rules (deliberately simple, matching how the experiments run):
//  * Coroutines start eagerly at the call site ("spawn" semantics).
//  * Frames always self-destroy at completion (inside the final awaiter,
//    before the continuation is transferred to). The Coro object holds only
//    shared completion state, never the frame — so no code path can touch a
//    frame after its final suspend. (An earlier design let the owner destroy
//    a finished frame from the Coro destructor; destroying a frame while its
//    final-suspend actor code is still unwinding miscompiles on GCC 12 and
//    corrupted the heap — caught by ASan via the DVCM tests.)
//  * A coroutine suspended on a primitive must not be abandoned before the
//    primitive fires; experiments run their engines to completion, so this
//    holds by construction.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <new>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nistream::sim {

namespace detail {

/// Completion state embedded at the front of every pooled coroutine block.
/// Refcount covers: the frame itself (1, released by promise operator delete)
/// and the Coro handle, if still attached (+1). When it hits zero the whole
/// block — header and frame — returns to the pool.
struct Completion {
  std::coroutine_handle<> continuation{};
  std::uint32_t refs = 0;
  std::uint16_t bucket = 0;  // pool bucket index; kOversizeBucket = plain new
  bool finished = false;
};

/// Header size is one max_align_t unit so the frame behind it keeps maximal
/// alignment (pool blocks are themselves max_align_t-aligned).
inline constexpr std::size_t kCompletionHeaderBytes =
    alignof(std::max_align_t) >= sizeof(Completion) ? alignof(std::max_align_t)
                                                    : sizeof(Completion);
static_assert(kCompletionHeaderBytes % alignof(std::max_align_t) == 0);
static_assert(alignof(Completion) <= alignof(std::max_align_t));

inline constexpr std::uint16_t kOversizeBucket = 0xFFFF;

/// Per-thread allocation counters, readable via coro_pool_stats(). The
/// zero-steady-state-allocation tests key off fresh_blocks/oversize_blocks
/// staying flat while frames keep growing.
struct CoroPoolStats {
  std::uint64_t frames = 0;         // coroutine frames allocated (pool or not)
  std::uint64_t pool_reuses = 0;    // served from a bucket free list
  std::uint64_t fresh_blocks = 0;   // had to touch ::operator new (bucketed)
  std::uint64_t oversize_blocks = 0;  // frame too big for any bucket
  std::uint64_t releases = 0;       // blocks whose refcount hit zero
};

/// Size-bucketed free list for coroutine blocks. 64-byte granularity, 32
/// buckets (up to 2 KiB — every frame in this repository fits well under
/// that); anything larger falls through to plain operator new/delete and is
/// counted, so a frame that silently outgrows the pool shows up in stats
/// rather than quietly re-adding steady-state allocations.
class CoroFramePool {
 public:
  static constexpr std::size_t kGranuleBytes = 64;
  static constexpr std::size_t kBucketCount = 32;

  ~CoroFramePool() {
    for (auto& bucket : free_) {
      for (void* block : bucket) ::operator delete(block);
    }
  }

  void* allocate(std::size_t frame_bytes, std::uint16_t& bucket_out) {
    ++stats_.frames;
    const std::size_t total = kCompletionHeaderBytes + frame_bytes;
    const std::size_t bucket = (total + kGranuleBytes - 1) / kGranuleBytes - 1;
    if (bucket >= kBucketCount) {
      ++stats_.oversize_blocks;
      bucket_out = kOversizeBucket;
      return ::operator new(total);
    }
    bucket_out = static_cast<std::uint16_t>(bucket);
    auto& list = free_[bucket];
    if (!list.empty()) {
      ++stats_.pool_reuses;
      void* block = list.back();
      list.pop_back();
      return block;
    }
    ++stats_.fresh_blocks;
    return ::operator new((bucket + 1) * kGranuleBytes);
  }

  void release(void* block, std::uint16_t bucket) {
    ++stats_.releases;
    if (bucket == kOversizeBucket) {
      ::operator delete(block);
      return;
    }
    free_[bucket].push_back(block);
  }

  [[nodiscard]] const CoroPoolStats& stats() const { return stats_; }

  static CoroFramePool& instance() {
    static thread_local CoroFramePool pool;
    return pool;
  }

 private:
  std::vector<void*> free_[kBucketCount];
  CoroPoolStats stats_;
};

/// Handoff from promise operator new to the promise constructor: the frame is
/// constructed immediately after its block is allocated, on the same thread,
/// so a single thread_local slot is a race-free way for the promise to learn
/// its header address without relying on frame-layout assumptions.
inline thread_local Completion* tl_pending_completion = nullptr;

/// Drop one reference; recycle the block when the count reaches zero.
inline void release_ref(Completion* c) noexcept {
  assert(c->refs > 0);
  if (--c->refs == 0) {
    const std::uint16_t bucket = c->bucket;
    c->~Completion();
    CoroFramePool::instance().release(static_cast<void*>(c), bucket);
  }
}

}  // namespace detail

/// Snapshot of this thread's coroutine-pool counters.
inline detail::CoroPoolStats coro_pool_stats() {
  return detail::CoroFramePool::instance().stats();
}

/// Simulation process handle. Returned by any coroutine process function.
class [[nodiscard]] Coro {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept {
      // Publish completion and grab the continuation *before* destroying the
      // frame: if the process was detached, the frame holds the last
      // reference and h.destroy() recycles the whole block, header included.
      detail::Completion* c = h.promise().completion_;
      c->finished = true;
      const std::coroutine_handle<> next =
          c->continuation ? c->continuation : std::noop_coroutine();
      h.destroy();
      return next;
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {
    detail::Completion* completion_ = nullptr;

    static void* operator new(std::size_t frame_bytes) {
      std::uint16_t bucket = 0;
      void* block =
          detail::CoroFramePool::instance().allocate(frame_bytes, bucket);
      auto* c = ::new (block) detail::Completion{};
      c->refs = 1;  // the frame's own reference
      c->bucket = bucket;
      detail::tl_pending_completion = c;
      return static_cast<std::byte*>(block) + detail::kCompletionHeaderBytes;
    }

    static void operator delete(void* frame) noexcept {
      auto* c = reinterpret_cast<detail::Completion*>(
          static_cast<std::byte*>(frame) - detail::kCompletionHeaderBytes);
      detail::release_ref(c);
    }

    promise_type() : completion_{detail::tl_pending_completion} {
      assert(completion_ != nullptr);
      detail::tl_pending_completion = nullptr;
    }

    Coro get_return_object() {
      ++completion_->refs;  // the Coro handle's reference
      return Coro{completion_};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }  // eager start
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  Coro() = default;
  Coro(Coro&& other) noexcept
      : completion_{std::exchange(other.completion_, nullptr)} {}
  Coro& operator=(Coro&& other) noexcept {
    if (this != &other) {
      drop();
      completion_ = std::exchange(other.completion_, nullptr);
    }
    return *this;
  }
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() { drop(); }

  [[nodiscard]] bool done() const {
    return completion_ == nullptr || completion_->finished;
  }

  /// Let the process run unowned. Frames free themselves on completion, so
  /// this only drops the handle's reference.
  void detach() { drop(); }

  /// Awaiting a Coro suspends the awaiter until the child completes (join).
  bool await_ready() const noexcept { return done(); }
  void await_suspend(std::coroutine_handle<> parent) noexcept {
    assert(completion_ != nullptr && !completion_->continuation &&
           "Coro joined twice");
    completion_->continuation = parent;
  }
  void await_resume() const noexcept {}

 private:
  explicit Coro(detail::Completion* completion) : completion_{completion} {}

  void drop() noexcept {
    if (completion_ != nullptr) {
      detail::release_ref(std::exchange(completion_, nullptr));
    }
  }

  detail::Completion* completion_ = nullptr;
};

/// co_await Delay{engine, d}: resume after `d` of simulated time.
struct Delay {
  Engine& engine;
  Time duration;

  bool await_ready() const noexcept { return duration <= Time::zero(); }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.schedule_in(duration, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// FIFO queue of parked coroutines. A vector with a consumed-prefix index
/// instead of std::deque: pushes reuse the same contiguous buffer once it has
/// grown to the waiter high-water mark, so steady-state park/wake cycles
/// allocate nothing.
class WaiterQueue {
 public:
  void push(std::coroutine_handle<> h) { q_.push_back(h); }

  std::coroutine_handle<> pop() {
    assert(head_ < q_.size());
    std::coroutine_handle<> h = q_[head_++];
    if (head_ == q_.size()) {
      q_.clear();
      head_ = 0;
    }
    return h;
  }

  [[nodiscard]] bool empty() const { return head_ == q_.size(); }
  [[nodiscard]] std::size_t size() const { return q_.size() - head_; }

 private:
  std::vector<std::coroutine_handle<>> q_;
  std::size_t head_ = 0;
};

/// Broadcast condition: all current waiters are resumed on signal().
/// Waiters resume through the event queue at the signalling instant, so
/// wake-up order is deterministic (FIFO by wait order).
class Condition {
 public:
  explicit Condition(Engine& engine) : engine_{engine} {}

  struct Awaiter {
    Condition& cond;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { cond.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{*this}; }

  /// Wake every coroutine currently waiting. The waiter list is swapped into
  /// a member scratch buffer (not a fresh vector) so repeated signal cycles
  /// reuse both buffers' capacity; schedule_in only enqueues, so nothing
  /// re-enters this object while we iterate.
  void signal() {
    scratch_.swap(waiters_);
    for (auto h : scratch_) {
      engine_.schedule_in(Time::zero(), [h] { h.resume(); });
    }
    scratch_.clear();
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::vector<std::coroutine_handle<>> waiters_;
  std::vector<std::coroutine_handle<>> scratch_;
};

/// Counting semaphore with FIFO wake-up.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t initial)
      : engine_{engine}, count_{initial} {}

  struct Awaiter {
    Semaphore& sem;
    bool await_ready() const noexcept {
      if (sem.count_ > 0) {
        --sem.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push(h); }
    void await_resume() const noexcept {}
  };
  Awaiter acquire() { return Awaiter{*this}; }

  void release(std::int64_t n = 1) {
    while (n > 0 && !waiters_.empty()) {
      auto h = waiters_.pop();
      engine_.schedule_in(Time::zero(), [h] { h.resume(); });
      --n;
    }
    count_ += n;
  }

  [[nodiscard]] std::int64_t available() const { return count_; }
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::int64_t count_;
  WaiterQueue waiters_;
};

/// Unbounded typed channel; receivers block while empty.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : sem_{engine, 0} {}

  void send(T v) {
    items_.push_back(std::move(v));
    sem_.release();
  }

  /// co_await mailbox.receive() -> T
  struct Receiver {
    Mailbox& box;
    Semaphore::Awaiter inner;
    bool await_ready() noexcept { return inner.await_ready(); }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    T await_resume() {
      assert(!box.items_.empty());
      T v = std::move(box.items_.front());
      box.items_.pop_front();
      return v;
    }
  };
  Receiver receive() { return Receiver{*this, sem_.acquire()}; }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  Semaphore sem_;
  std::deque<T> items_;
};

}  // namespace nistream::sim
