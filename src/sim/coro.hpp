// Coroutine-based process layer over the event engine.
//
// Simulated software — VxWorks tasks on the NI (src/rtos), Solaris processes
// on the host (src/hostos), stream producers and clients (src/apps) — is
// written as C++20 coroutines returning sim::Coro. A process co_awaits
// primitives (delay, semaphore, condition) that park it in the Engine's event
// queue; the engine resumes it at the right simulated instant. This keeps
// multi-step protocol logic linear instead of exploding into callback state
// machines.
//
// Lifetime rules (deliberately simple, matching how the experiments run):
//  * Coroutines start eagerly at the call site ("spawn" semantics).
//  * Frames always self-destroy at completion (inside the final awaiter,
//    before the continuation is transferred to). The Coro object holds only
//    shared completion state, never the frame — so no code path can touch a
//    frame after its final suspend. (An earlier design let the owner destroy
//    a finished frame from the Coro destructor; destroying a frame while its
//    final-suspend actor code is still unwinding miscompiles on GCC 12 and
//    corrupted the heap — caught by ASan via the DVCM tests.)
//  * A coroutine suspended on a primitive must not be abandoned before the
//    primitive fires; experiments run their engines to completion, so this
//    holds by construction.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nistream::sim {

/// Simulation process handle. Returned by any coroutine process function.
class [[nodiscard]] Coro {
 public:
  /// Completion state shared between the coroutine frame and Coro handles;
  /// outlives the frame.
  struct State {
    bool finished = false;
    std::coroutine_handle<> continuation{};
  };

  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept {
      // Grab everything needed out of the frame, then destroy it. The frame
      // is gone before anyone else runs; the continuation resumes via
      // symmetric transfer.
      const std::shared_ptr<State> state = h.promise().state;
      h.destroy();
      state->finished = true;
      return state->continuation ? state->continuation
                                 : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::shared_ptr<State> state = std::make_shared<State>();

    Coro get_return_object() { return Coro{state}; }
    std::suspend_never initial_suspend() noexcept { return {}; }  // eager start
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  Coro() = default;
  Coro(Coro&&) noexcept = default;
  Coro& operator=(Coro&&) noexcept = default;
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() = default;

  [[nodiscard]] bool done() const { return !state_ || state_->finished; }

  /// Let the process run unowned. Frames free themselves on completion, so
  /// this only drops the handle.
  void detach() { state_.reset(); }

  /// Awaiting a Coro suspends the awaiter until the child completes (join).
  bool await_ready() const noexcept { return done(); }
  void await_suspend(std::coroutine_handle<> parent) noexcept {
    assert(state_ && !state_->continuation && "Coro joined twice");
    state_->continuation = parent;
  }
  void await_resume() const noexcept {}

 private:
  explicit Coro(std::shared_ptr<State> state) : state_{std::move(state)} {}
  std::shared_ptr<State> state_;
};

/// co_await Delay{engine, d}: resume after `d` of simulated time.
struct Delay {
  Engine& engine;
  Time duration;

  bool await_ready() const noexcept { return duration <= Time::zero(); }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.schedule_in(duration, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// Broadcast condition: all current waiters are resumed on signal().
/// Waiters resume through the event queue at the signalling instant, so
/// wake-up order is deterministic (FIFO by wait order).
class Condition {
 public:
  explicit Condition(Engine& engine) : engine_{engine} {}

  struct Awaiter {
    Condition& cond;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { cond.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{*this}; }

  /// Wake every coroutine currently waiting.
  void signal() {
    std::vector<std::coroutine_handle<>> woken;
    woken.swap(waiters_);
    for (auto h : woken) engine_.schedule_in(Time::zero(), [h] { h.resume(); });
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO wake-up.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t initial)
      : engine_{engine}, count_{initial} {}

  struct Awaiter {
    Semaphore& sem;
    bool await_ready() const noexcept {
      if (sem.count_ > 0) {
        --sem.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter acquire() { return Awaiter{*this}; }

  void release(std::int64_t n = 1) {
    while (n > 0 && !waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_.schedule_in(Time::zero(), [h] { h.resume(); });
      --n;
    }
    count_ += n;
  }

  [[nodiscard]] std::int64_t available() const { return count_; }
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded typed channel; receivers block while empty.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : sem_{engine, 0} {}

  void send(T v) {
    items_.push_back(std::move(v));
    sem_.release();
  }

  /// co_await mailbox.receive() -> T
  struct Receiver {
    Mailbox& box;
    Semaphore::Awaiter inner;
    bool await_ready() noexcept { return inner.await_ready(); }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    T await_resume() {
      assert(!box.items_.empty());
      T v = std::move(box.items_.front());
      box.items_.pop_front();
      return v;
    }
  };
  Receiver receive() { return Receiver{*this, sem_.acquire()}; }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  Semaphore sem_;
  std::deque<T> items_;
};

}  // namespace nistream::sim
