// Structured event tracing.
//
// A bounded in-memory trace of typed records (category, label, value) with
// CSV export — the observability layer a real embedded scheduler ships with
// (the paper's authors instrumented their i960 build with timestamp-counter
// probes; this is the equivalent for the simulated build). Tracing is off
// unless a sink is installed, and costs one branch when off.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace nistream::sim {

struct TraceRecord {
  Time at;
  std::string category;  // e.g. "dwcs", "producer", "net"
  std::string label;     // e.g. "dispatch", "drop"
  std::uint64_t a = 0;   // record-defined values (stream id, frame id, ...)
  std::uint64_t b = 0;
  double value = 0.0;    // record-defined measure (bytes, delay ms, ...)
};

/// Bounded FIFO trace sink. Oldest records fall off past `capacity`.
class Trace {
 public:
  explicit Trace(std::size_t capacity = 65536) : capacity_{capacity} {}

  void record(Time at, std::string_view category, std::string_view label,
              std::uint64_t a = 0, std::uint64_t b = 0, double value = 0.0) {
    if (records_.size() == capacity_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back(TraceRecord{at, std::string{category},
                                   std::string{label}, a, b, value});
    ++total_;
  }

  [[nodiscard]] const std::deque<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] std::uint64_t dropped_oldest() const { return dropped_; }
  /// Fraction of recorded events that have fallen off the front. Anything
  /// above 0 means the CSV is a suffix of the run, not the whole story —
  /// chaos runs check this before trusting a trace.
  [[nodiscard]] double drop_rate() const {
    return total_ == 0
               ? 0.0
               : static_cast<double>(dropped_) / static_cast<double>(total_);
  }
  void clear() { records_.clear(); }

  /// Number of records matching a category (and optional label).
  [[nodiscard]] std::size_t count(std::string_view category,
                                  std::string_view label = {}) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
      if (r.category == category && (label.empty() || r.label == label)) ++n;
    }
    return n;
  }

  /// "time_ms,category,label,a,b,value" rows. The leading comment line
  /// carries the truncation counters so a reader can tell a complete trace
  /// from the surviving suffix of one.
  void write_csv(std::ostream& os) const {
    os << "# total=" << total_ << " dropped=" << dropped_
       << " drop_rate=" << drop_rate() << '\n';
    os << "time_ms,category,label,a,b,value\n";
    for (const auto& r : records_) {
      os << r.at.to_ms() << ',' << r.category << ',' << r.label << ',' << r.a
         << ',' << r.b << ',' << r.value << '\n';
    }
  }

 private:
  std::size_t capacity_;
  std::deque<TraceRecord> records_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Nullable trace handle components hold: one branch when tracing is off.
class TraceSink {
 public:
  TraceSink() = default;
  explicit TraceSink(Trace* trace) : trace_{trace} {}

  void record(Time at, std::string_view category, std::string_view label,
              std::uint64_t a = 0, std::uint64_t b = 0,
              double value = 0.0) const {
    if (trace_) trace_->record(at, category, label, a, b, value);
  }
  [[nodiscard]] bool enabled() const { return trace_ != nullptr; }

 private:
  Trace* trace_ = nullptr;
};

}  // namespace nistream::sim
