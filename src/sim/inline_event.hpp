// Fixed-capacity inline callable for engine events.
//
// Every simulated event used to ride in a std::function<void()>, which heap-
// allocates whenever the capture outgrows the small-buffer optimisation and
// always pays a type-erased dispatch. InlineEvent stores the capture inline
// in the event slot itself — the slab recycles the storage along with the
// slot, so scheduling an event allocates nothing, ever. There is deliberately
// NO heap fallback: a capture that does not fit is a compile error, because a
// silent fallback would put an allocation back on the hot path exactly where
// it is least visible.
//
// Captures may hold non-trivial members (shared_ptr payloads, std::function
// callbacks); moves and destruction dispatch through a per-type ops table,
// one pointer per event.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace nistream::sim {

class InlineEvent {
 public:
  /// Capture budget. Sized for the largest capture in the repository (a
  /// net::Packet by value plus a this-pointer); raising it grows every event
  /// slot, so shrink the capture before reaching for this constant.
  static constexpr std::size_t kCaptureBytes = 88;

  InlineEvent() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineEvent> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineEvent(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kCaptureBytes,
                  "event capture exceeds InlineEvent::kCaptureBytes — shrink "
                  "the capture (box large state behind a pointer); there is "
                  "no heap fallback by design");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned event captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event captures must be nothrow-movable (slots relocate "
                  "when the slab grows)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    ops_ = &OpsFor<Fn>::ops;
  }

  InlineEvent(InlineEvent&& other) noexcept : ops_{other.ops_} {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { reset(); }

  /// Destroy the stored capture (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Invoke the stored callable. Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct *dst from *src, then destroy *src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  struct OpsFor {
    static void invoke(void* self) { (*static_cast<Fn*>(self))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* self) noexcept { static_cast<Fn*>(self)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  alignas(std::max_align_t) std::byte storage_[kCaptureBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace nistream::sim
