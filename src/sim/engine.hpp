// Discrete-event simulation engine.
//
// A single Engine owns the simulated clock and a time-ordered queue of
// events. Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break via a monotonically increasing sequence number),
// which makes every experiment in this repository bit-for-bit deterministic.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace nistream::sim {

/// Handle returned by Engine::schedule*; allows cancellation.
///
/// Copyable and cheap: internally a shared flag. Cancelling an already-fired
/// or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call at any point.
  void cancel() { if (alive_) *alive_ = false; }
  [[nodiscard]] bool pending() const { return alive_ && *alive_; }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_{std::move(alive)} {}
  std::shared_ptr<bool> alive_;
};

/// The event engine. Not thread-safe by design: determinism comes first, and
/// every experiment fits comfortably in one thread of a modern machine.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  EventHandle schedule_at(Time at, std::function<void()> fn);

  /// Schedule `fn` after `delay` (must be >= 0).
  EventHandle schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains. Returns the final clock value.
  Time run();

  /// Run until simulated time reaches `deadline` (events at exactly
  /// `deadline` are executed). The clock is advanced to `deadline` even if
  /// the queue drains earlier.
  Time run_until(Time deadline);

  /// Execute exactly one event, if any. Returns false when the queue is empty.
  bool step();

  /// Number of queued entries (cancelled-but-unpopped entries included).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace nistream::sim
