// Discrete-event simulation engine.
//
// A single Engine owns the simulated clock and a time-ordered queue of
// events. Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break via a monotonically increasing sequence number),
// which makes every experiment in this repository bit-for-bit deterministic.
//
// Storage layout: events live in a slab of reusable slots (free-list
// recycling), and the priority queue is an implicit 4-ary heap of slot
// indices. The event payload is an InlineEvent — the capture lives inside
// the slot, recycled with it — so scheduling an event after warm-up
// allocates nothing at all: no std::function heap path, no shared_ptr
// control block per event, no heap churn at 100k in-flight timers.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/inline_event.hpp"
#include "sim/time.hpp"

namespace nistream::sim {

class Engine;

/// Handle returned by Engine::schedule*; allows cancellation.
///
/// Copyable and cheap: a (slot, generation) pair into the engine's slab. The
/// generation check makes cancelling an already-fired or already-cancelled
/// event a no-op even after the slot has been reused for a newer event.
/// Handles must not be used after their Engine is destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call at any point.
  inline void cancel();
  [[nodiscard]] inline bool pending() const;

 private:
  friend class Engine;
  EventHandle(Engine* engine, std::uint32_t slot, std::uint64_t gen)
      : engine_{engine}, slot_{slot}, gen_{gen} {}

  Engine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

/// The event engine. Not thread-safe by design: determinism comes first, and
/// every experiment fits comfortably in one thread of a modern machine.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  EventHandle schedule_at(Time at, InlineEvent fn);

  /// Schedule `fn` after `delay` (must be >= 0).
  EventHandle schedule_in(Time delay, InlineEvent fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains. Returns the final clock value.
  Time run();

  /// Run until simulated time reaches `deadline` (events at exactly
  /// `deadline` are executed). The clock is advanced to `deadline` even if
  /// the queue drains earlier.
  Time run_until(Time deadline);

  /// Execute exactly one event, if any. Returns false when the queue is empty.
  bool step();

  /// Number of queued entries (cancelled-but-unpopped entries included).
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  friend class EventHandle;

  struct Slot {
    Time at = Time::zero();
    std::uint64_t seq = 0;
    std::uint64_t gen = 0;  // bumped on release; stale handles see a mismatch
    InlineEvent fn;
    bool armed = false;  // false = cancelled or fired; popped lazily
  };

  [[nodiscard]] bool earlier(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.at != sb.at) return sa.at < sb.at;
    return sa.seq < sb.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_top();
  /// Return the slot to the free list; invalidates outstanding handles.
  void release(std::uint32_t slot);

  void handle_cancel(std::uint32_t slot, std::uint64_t gen) {
    if (slot < slots_.size() && slots_[slot].gen == gen) {
      slots_[slot].armed = false;  // entry stays heaped, popped lazily
    }
  }
  [[nodiscard]] bool handle_pending(std::uint32_t slot,
                                    std::uint64_t gen) const {
    return slot < slots_.size() && slots_[slot].gen == gen &&
           slots_[slot].armed;
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> heap_;  // slot indices, implicit 4-ary heap
  std::vector<std::uint32_t> free_;  // recycled slot indices
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

inline void EventHandle::cancel() {
  if (engine_ != nullptr) engine_->handle_cancel(slot_, gen_);
}

inline bool EventHandle::pending() const {
  return engine_ != nullptr && engine_->handle_pending(slot_, gen_);
}

}  // namespace nistream::sim
