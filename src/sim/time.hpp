// Simulated-time type for the nistream discrete-event substrate.
//
// All models in src/hw, src/rtos and src/hostos advance a single simulated
// clock owned by sim::Engine. Time is kept as a signed 64-bit count of
// nanoseconds, which gives ~292 years of range — far beyond any experiment in
// the reproduced paper (the longest run, Figure 6, spans 100 seconds).
//
// Cycle <-> time conversion is centralized here so that every CPU model
// rounds the same way (nearest nanosecond).
#pragma once

#include <cstdint>
#include <compare>
#include <ostream>

namespace nistream::sim {

/// A point in simulated time, or a duration, in nanoseconds.
///
/// Time is deliberately a strong type (not a bare int64) so that raw frame
/// counts, byte counts and cycle counts cannot be mixed with timestamps.
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors. Prefer these over the raw-ns constructor.
  [[nodiscard]] static constexpr Time ns(std::int64_t v) { return Time{v}; }
  [[nodiscard]] static constexpr Time us(double v) {
    return Time{static_cast<std::int64_t>(v * 1e3 + (v >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr Time ms(double v) { return us(v * 1e3); }
  [[nodiscard]] static constexpr Time sec(double v) { return us(v * 1e6); }

  /// Duration of `cycles` clock cycles at `hz` (nearest-ns rounding).
  [[nodiscard]] static constexpr Time cycles(std::int64_t n, double hz) {
    return Time{static_cast<std::int64_t>(static_cast<double>(n) * 1e9 / hz + 0.5)};
  }

  /// Largest representable time; used as "never" for idle timers.
  [[nodiscard]] static constexpr Time never() { return Time{INT64_MAX}; }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }

  [[nodiscard]] constexpr std::int64_t raw_ns() const { return ns_; }
  [[nodiscard]] constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  constexpr Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }
  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  /// Ratio of two durations (e.g. utilization computations).
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  friend std::ostream& operator<<(std::ostream& os, Time t);

 private:
  explicit constexpr Time(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

}  // namespace nistream::sim
