// VxWorks-like embedded RTOS model ("wind" kernel) for the i960 RD boards.
//
// The paper's NI-side runtime is an embedded VxWorks configuration: a handful
// of tasks under a strict-priority scheduler, pinned physical memory, a
// system clock tick, and the extras the authors added for this hardware —
// a fixed-point library (src/fixedpt) and timestamp-counter rollover
// management (TimestampCounter below).
//
// The immunity result (Figures 9-10) falls out of this structure: the DWCS
// task is the highest-priority task on a dedicated CPU that runs almost
// nothing else, so its service rate has essentially zero variance regardless
// of host load.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/calibration.hpp"
#include "hw/cpu.hpp"
#include "sim/coro.hpp"
#include "sim/cpusched.hpp"
#include "sim/engine.hpp"

namespace nistream::rtos {

/// Priorities follow VxWorks convention: 0 is most urgent, 255 least.
inline constexpr int kPriorityMax = 0;
inline constexpr int kPriorityMin = 255;

class WindKernel;

/// A spawned task: a priority context whose owning coroutine consumes NI-CPU
/// through it.
class Task {
 public:
  [[nodiscard]] const std::string& name() const { return thread_->name(); }
  [[nodiscard]] int priority() const { return thread_->priority(); }
  [[nodiscard]] sim::Time cpu_time() const { return thread_->cpu_time(); }

  /// co_await task.consume(t): hold the NI CPU for `t` of work.
  [[nodiscard]] sim::CpuScheduler::RunAwaiter consume(sim::Time t);
  /// co_await task.consume_cycles(n): same, expressed in i960 cycles.
  [[nodiscard]] sim::CpuScheduler::RunAwaiter consume_cycles(std::int64_t n);

 private:
  friend class WindKernel;
  Task(WindKernel& kernel, sim::CpuScheduler::Thread& thread)
      : kernel_{&kernel}, thread_{&thread} {}
  WindKernel* kernel_;
  sim::CpuScheduler::Thread* thread_;
};

class WindKernel {
 public:
  /// `cpu` is the board CPU (core 0 on a multi-core board) whose clock rate
  /// converts cycles to time. `num_cores` (>= 1) is the board's scheduling
  /// core count — the wind kernel runs one strict-priority ready queue
  /// across all of them (SMP VxWorks-style), so N per-shard tasks of equal
  /// priority genuinely execute in parallel on an N-core NI.
  WindKernel(sim::Engine& engine, hw::CpuModel& cpu,
             const hw::RtosParams& params = hw::kVxWorks, int num_cores = 1)
      : engine_{engine},
        cpu_{cpu},
        sched_{engine,
               sim::CpuScheduler::Params{
                   .num_cpus = num_cores < 1 ? 1 : num_cores,
                   // VxWorks default: no round-robin time slicing; tasks run
                   // until they block or are preempted by higher priority.
                   // A large quantum models run-to-block.
                   .quantum = sim::Time::sec(10),
                   .context_switch = params.context_switch,
                   .meter_sample = sim::Time::ms(1000)}},
        tick_{params.tick} {}

  WindKernel(const WindKernel&) = delete;
  WindKernel& operator=(const WindKernel&) = delete;

  /// taskSpawn(): create a task context. The caller then runs a coroutine
  /// that consumes CPU through the returned Task.
  Task& spawn(std::string name, int priority) {
    tasks_.push_back(std::unique_ptr<Task>(
        new Task{*this, sched_.create_thread(std::move(name), priority)}));
    return *tasks_.back();
  }

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] hw::CpuModel& cpu() { return cpu_; }
  [[nodiscard]] sim::CpuScheduler& scheduler() { return sched_; }
  [[nodiscard]] int num_cores() const { return sched_.num_cpus(); }
  [[nodiscard]] sim::Time tick() const { return tick_; }
  [[nodiscard]] sim::Time ni_cpu_busy() const { return sched_.total_busy(); }

 private:
  friend class Task;
  sim::Engine& engine_;
  hw::CpuModel& cpu_;
  sim::CpuScheduler sched_;
  sim::Time tick_;
  std::vector<std::unique_ptr<Task>> tasks_;
};

inline sim::CpuScheduler::RunAwaiter Task::consume(sim::Time t) {
  return kernel_->sched_.run(*thread_, t);
}

inline sim::CpuScheduler::RunAwaiter Task::consume_cycles(std::int64_t n) {
  return consume(kernel_->cpu_.time_of(n));
}

/// 32-bit free-running timestamp counter with software rollover extension.
///
/// The i960 RD's timestamp counter is 32 bits wide; at 66 MHz it wraps every
/// ~65 s — shorter than a streaming session. The paper lists "timestamp
/// counter rollover management" among the VxWorks additions; this class is
/// that management: feed it raw counter reads at least once per wrap period
/// and it maintains a monotonic 64-bit extension.
class TimestampCounter {
 public:
  explicit TimestampCounter(double hz = 66e6) : hz_{hz} {}

  /// Raw 32-bit counter value at simulated time `now`.
  [[nodiscard]] std::uint32_t raw(sim::Time now) const {
    const double cycles = now.to_sec() * hz_;
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(cycles));
  }

  /// Extend a raw read into the monotonic 64-bit cycle count. Reads must be
  /// no further than one wrap period (2^32 cycles) apart.
  std::uint64_t extend(std::uint32_t raw_value) {
    if (raw_value < last_raw_) epoch_ += (std::uint64_t{1} << 32);
    last_raw_ = raw_value;
    return epoch_ | raw_value;
  }

  /// Convenience: extended cycles at `now` (also advances rollover state).
  std::uint64_t cycles_at(sim::Time now) { return extend(raw(now)); }

  /// Seconds between two extended counter values.
  [[nodiscard]] double seconds_between(std::uint64_t a, std::uint64_t b) const {
    return static_cast<double>(b - a) / hz_;
  }

  [[nodiscard]] double hz() const { return hz_; }
  /// Time until the 32-bit counter wraps (~65 s at 66 MHz).
  [[nodiscard]] sim::Time wrap_period() const {
    return sim::Time::sec(4294967296.0 / hz_);
  }

 private:
  double hz_;
  std::uint32_t last_raw_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace nistream::rtos
