// Exact fraction type, as used by the paper's fixed-point DWCS port.
//
// The paper (§4.2): "arguments are simply stored as fractions with numerator
// and denominator with divisions implemented as shifts". DWCS loss-tolerances
// are ratios x/y of small integers; comparing two tolerances never needs a
// division at all — cross-multiplication is exact and costs two integer
// multiplies. This is precisely why the fixed-point port loses no scheduling
// quality (paper §4.2): every comparison DWCS makes is computed exactly.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <numeric>
#include <ostream>

namespace nistream::fixedpt {

/// A non-negative rational x/y. y == 0 is permitted only with x == 0 and
/// denotes the "no constraint" value (compares as +infinity tolerance in
/// DWCS terms is NOT what we want — DWCS treats x/y with y=0 as unused, and
/// tolerance 0/y as the tightest). Keep denominators positive elsewhere.
class Fraction {
 public:
  constexpr Fraction() = default;
  constexpr Fraction(std::int64_t num, std::int64_t den) : num_{num}, den_{den} {
    assert(num_ >= 0 && den_ >= 0);
  }

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] constexpr bool is_zero() const { return num_ == 0; }

  /// Exact comparison by cross-multiplication — no division, no rounding.
  /// Both denominators must be > 0.
  [[nodiscard]] friend constexpr std::strong_ordering order(const Fraction& a,
                                                            const Fraction& b) {
    assert(a.den_ > 0 && b.den_ > 0);
    const __int128 lhs = static_cast<__int128>(a.num_) * b.den_;
    const __int128 rhs = static_cast<__int128>(b.num_) * a.den_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  friend constexpr bool operator==(const Fraction& a, const Fraction& b) {
    return order(a, b) == std::strong_ordering::equal;
  }
  friend constexpr bool operator<(const Fraction& a, const Fraction& b) {
    return order(a, b) == std::strong_ordering::less;
  }
  friend constexpr bool operator>(const Fraction& a, const Fraction& b) {
    return order(a, b) == std::strong_ordering::greater;
  }
  friend constexpr bool operator<=(const Fraction& a, const Fraction& b) {
    return !(a > b);
  }
  friend constexpr bool operator>=(const Fraction& a, const Fraction& b) {
    return !(a < b);
  }

  /// Reduce to lowest terms (useful for bounded growth in long runs).
  [[nodiscard]] constexpr Fraction normalized() const {
    if (num_ == 0) return Fraction{0, den_ > 0 ? 1 : 0};
    const std::int64_t g = std::gcd(num_, den_);
    return Fraction{num_ / g, den_ / g};
  }

  /// Approximate real value; only for reporting, never for scheduling.
  [[nodiscard]] constexpr double to_double() const {
    return den_ ? static_cast<double>(num_) / static_cast<double>(den_) : 0.0;
  }

  friend std::ostream& operator<<(std::ostream& os, const Fraction& f) {
    return os << f.num_ << "/" << f.den_;
  }

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

/// "Division implemented as shifts": divide a by b where b is a power of two.
/// The paper's fixed-point port uses this for the few true divisions DWCS
/// needs (windows sized as powers of two make every division a shift).
[[nodiscard]] constexpr std::int64_t shift_divide(std::int64_t a, std::int64_t pow2) {
  assert(pow2 > 0 && (pow2 & (pow2 - 1)) == 0 && "divisor must be a power of two");
  int s = 0;
  for (std::int64_t v = pow2; v > 1; v >>= 1) ++s;
  return a >> s;
}

}  // namespace nistream::fixedpt
